(* The tabv-serve daemon: a persistent, concurrent verification
   service over versioned Wire frames.

   One single-threaded coordinator (this module's select loop) owns
   every socket, the bounded fair scheduler, the warm result cache and
   the request bookkeeping; verification work itself runs on a warm
   worker pool — OCaml domains in-process, or crash-isolated [_worker]
   subprocesses speaking the registered ["serve_request"] op.  The
   coordinator never blocks on work or on a slow client: reads are
   non-blocking through incremental frame streams, writes go through
   per-connection backlogs drained when the socket is writable.

   Life of a request:
   {ol
   {- decode; warm-cacheable requests consult the {!Warm} cache — a
      hit answers immediately with the cached bytes ([warm:true]);}
   {- admission: a job reusing the (connection, id) key of one still
      queued or running is a protocol error; journaled campaigns
      reserve their journal path here — queued or running, one owner
      per path at a time (two writers on one journal would corrupt
      it), so a clashing request is refused; a full queue answers
      [rejected] with retry advice;}
   {- [accepted] with the queue position, then fair round-robin
      scheduling across client connections ({!Sched});}
   {- [started] when a worker picks it up; client disconnect sets the
      request's interrupt flag (in-domain) or SIGKILLs the worker
      (subprocess) and discards the result;}
   {- [result] carries the exact one-shot CLI report bytes (see
      {!Handler}); completed cacheable results warm the cache.}}

   Shutdown (a [shutdown] request, or the caller's [interrupted]
   turning true — the CLI wires SIGINT/SIGTERM to it) drains
   gracefully: listeners close, accepted requests finish, then the
   loop exits and every worker is torn down. *)

module J = Tabv_core.Report_json
module Frame = Tabv_core.Frame
module Metrics = Tabv_obs.Metrics
module Journal = Tabv_campaign.Journal

type executor =
  | In_domain_workers
  | Subprocess_workers

type config = {
  socket : string;  (* Unix-domain socket path *)
  tcp : (string * int) option;  (* optional extra TCP listener *)
  workers : int;
  executor : executor;
  queue_bound : int;
  retry_after_ms : int;  (* base advice in rejected events *)
  warm_bound : int;
  backlog_bound : int;  (* outgoing bytes buffered per connection *)
  frame_bound : int;  (* largest request frame body a client may announce *)
  job_timeout_s : float option;  (* per-request deadline; None = no deadline *)
  conn_idle_timeout_s : float;  (* max silence mid-frame before disconnect *)
  breaker_threshold : int;  (* consecutive worker failures before quarantine *)
  breaker_cooldown_s : float;  (* quarantine length before a half-open probe *)
  shed_watermark : int option;  (* queue depth where low-priority shedding
                                   starts; None = 3/4 of the bound *)
  state_dir : string option;  (* journals for journaled campaigns *)
  journal_gc_age_s : float;  (* stale-journal GC horizon at startup *)
  worker_argv : string array;  (* how to launch a subprocess worker *)
  obs : Metrics.t option;  (* server observability registry *)
}

let default_config ~socket () =
  {
    socket;
    tcp = None;
    workers = 2;
    executor = In_domain_workers;
    queue_bound = 64;
    retry_after_ms = 250;
    warm_bound = 32;
    backlog_bound = 64 * 1024 * 1024;
    frame_bound = 64 * 1024 * 1024;
    job_timeout_s = Some 300.;
    conn_idle_timeout_s = 60.;
    breaker_threshold = 3;
    breaker_cooldown_s = 5.;
    shed_watermark = None;
    state_dir = None;
    journal_gc_age_s = 7. *. 24. *. 3600.;
    worker_argv = [| Sys.executable_name; "_worker" |];
    obs = None;
  }

(* --- bookkeeping types --------------------------------------------- *)

type key = {
  k_conn : int;
  k_req : int;  (* the client-chosen request id *)
}

type queued = {
  q_key : key;
  q_job : Protocol.job;
  q_fingerprint : string;
  q_cacheable : bool;
  q_journal_path : string option;
}

type running = {
  r_queued : queued;
  r_interrupted : bool Atomic.t;
  r_started_at : float;
  mutable r_cancelled : bool;  (* client gone: discard the result *)
  mutable r_deadlined : bool;  (* watchdog already answered and released *)
}

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_stream : Frame.stream;
  c_out : string Queue.t;  (* pending outgoing frames, oldest first *)
  mutable c_out_off : int;  (* bytes of the head frame already written *)
  mutable c_out_len : int;  (* total unwritten bytes across the queue *)
  c_out_bound : int;  (* backlog bytes before the client is dropped *)
  mutable c_overflow : bool;  (* backlog over bound: disconnect pending *)
  mutable c_dead : bool;
  mutable c_frame_deadline : float option;
      (* set while a partial frame sits in [c_stream]: a peer that goes
         silent mid-frame holds a reservation-free connection hostage
         forever unless it is timed out *)
}

(* One in-domain worker: a spawned domain blocking on its mailbox.
   Results come back through a shared outbox plus a self-pipe byte so
   the coordinator's select wakes up. *)
type dtask =
  | Run of running
  | Quit

type dworker = {
  d_idx : int;
  d_lock : Mutex.t;
  d_cond : Condition.t;
  mutable d_task : dtask option;
  mutable d_busy : running option;  (* coordinator-side view *)
  mutable d_domain : unit Domain.t option;
}

(* One subprocess worker (coordinator-side): the live process, its
   pipe ends, and the plain-frame reassembly stream. *)
type proc = {
  p_pid : int;
  p_to : Unix.file_descr;
  p_from : Unix.file_descr;
  p_stream : Frame.stream;
}

type pworker = {
  s_idx : int;
  mutable s_proc : proc option;
  mutable s_busy : running option;
}

type pool =
  | Domains of dworker array * Unix.file_descr * Unix.file_descr
      (* workers, wake-pipe read end, write end *)
  | Processes of pworker array

type t = {
  config : config;
  obs : Metrics.t;
  warm : Warm.t;
  sched : queued Sched.t;
  conns : (int, conn) Hashtbl.t;
  (* Admission-time reservations, queued or running: journal paths
     with exactly one owner each, and every live (conn, id) key. *)
  active_journals : (string, unit) Hashtbl.t;
  inflight : (key, unit) Hashtbl.t;
  outbox : (key * (Handler.outcome, string) result) Queue.t;
  outbox_lock : Mutex.t;
  mutable next_conn : int;
  mutable draining : bool;
  mutable listeners : Unix.file_descr list;
  pool : pool;
  (* One circuit breaker per worker slot, indexed like the pool:
     consecutive infrastructure failures quarantine the slot. *)
  breakers : Sched.Breaker.t array;
  (* instruments *)
  m_requests : Metrics.counter;
  m_rejected : Metrics.counter;
  m_cancelled : Metrics.counter;
  m_failed : Metrics.counter;
  m_served : Metrics.counter;
  m_deadlined : Metrics.counter;
  m_conn_timeouts : Metrics.counter;
  m_latency : Metrics.histogram;
}

(* --- small IO helpers ---------------------------------------------- *)

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let set_cloexec fd = try Unix.set_close_on_exec fd with Unix.Unix_error _ -> ()

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* Append [payload] as one versioned frame to the connection's
   backlog; the select loop drains it when the socket is writable.
   A backlog over the bound marks the connection for disconnect (the
   main loop sweeps it) instead of buffering without limit for a
   client that never reads. *)
let send_frame conn payload =
  if not conn.c_dead && not conn.c_overflow then begin
    let frame = Frame.encode ~version:Protocol.frame_version payload in
    Queue.add frame conn.c_out;
    conn.c_out_len <- conn.c_out_len + String.length frame;
    if conn.c_out_len > conn.c_out_bound then conn.c_overflow <- true
  end

(* Best-effort synchronous flush of the backlog (teardown, protocol
   failures): stops at the first short write or error. *)
let flush_backlog conn =
  try
    let first = ref true in
    Queue.iter
      (fun frame ->
        let off = if !first then conn.c_out_off else 0 in
        first := false;
        write_all conn.c_fd frame off (String.length frame - off))
      conn.c_out
  with Unix.Unix_error _ -> ()

let send_event conn ~id event =
  send_frame conn (J.to_string (Protocol.event_json ~id event))

(* --- in-domain worker pool ----------------------------------------- *)

let dworker_loop state_dir w wake_w outbox outbox_lock =
  let rec loop () =
    Mutex.lock w.d_lock;
    while w.d_task = None do
      Condition.wait w.d_cond w.d_lock
    done;
    let task = Option.get w.d_task in
    w.d_task <- None;
    Mutex.unlock w.d_lock;
    match task with
    | Quit -> ()
    | Run r ->
      let result =
        match
          Handler.execute
            ~interrupted:(fun () -> Atomic.get r.r_interrupted)
            ~state_dir r.r_queued.q_job
        with
        | result -> result
        | exception e -> Error (Printexc.to_string e)
      in
      Mutex.lock outbox_lock;
      Queue.add (r.r_queued.q_key, result) outbox;
      Mutex.unlock outbox_lock;
      (* Wake the coordinator; a full pipe just means it is already
         awash in wakeups. *)
      (try ignore (Unix.write_substring wake_w "x" 0 1) with
       | Unix.Unix_error _ -> ());
      loop ()
  in
  loop ()

(* --- subprocess worker pool ---------------------------------------- *)

let spawn_proc config =
  let req_r, req_w = Unix.pipe ~cloexec:false () in
  let rep_r, rep_w = Unix.pipe ~cloexec:false () in
  set_cloexec req_w;
  set_cloexec rep_r;
  let pid =
    Unix.create_process config.worker_argv.(0) config.worker_argv req_r rep_w
      Unix.stderr
  in
  close_noerr req_r;
  close_noerr rep_w;
  { p_pid = pid; p_to = req_w; p_from = rep_r; p_stream = Frame.stream () }

let kill_proc proc =
  (try Unix.kill proc.p_pid Sys.sigkill with Unix.Unix_error _ -> ());
  close_noerr proc.p_to;
  close_noerr proc.p_from;
  (try ignore (Unix.waitpid [] proc.p_pid) with Unix.Unix_error _ -> ())

(* Reap a worker that closed its pipe, classifying the death for the
   failure message. *)
let reap_proc proc =
  close_noerr proc.p_to;
  close_noerr proc.p_from;
  match Unix.waitpid [] proc.p_pid with
  | _, Unix.WSIGNALED signal ->
    Printf.sprintf "worker killed by signal %d" signal
  | _, Unix.WEXITED code ->
    Printf.sprintf "worker exited with code %d before replying" code
  | _, Unix.WSTOPPED _ -> "worker stopped"
  | exception Unix.Unix_error _ -> "worker vanished"

(* --- server construction ------------------------------------------- *)

let make_pool config =
  match config.executor with
  | In_domain_workers ->
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock wake_r;
    Unix.set_nonblock wake_w;
    let workers =
      Array.init config.workers (fun i ->
          {
            d_idx = i;
            d_lock = Mutex.create ();
            d_cond = Condition.create ();
            d_task = None;
            d_busy = None;
            d_domain = None;
          })
    in
    Domains (workers, wake_r, wake_w)
  | Subprocess_workers ->
    Processes
      (Array.init config.workers (fun i ->
           { s_idx = i; s_proc = None; s_busy = None }))

let listen_unix path =
  (* A leftover socket file makes bind fail, but the file may belong
     to a live daemon just as well as a dead one — probe it with a
     connect before unlinking: a dead daemon's file refuses the
     connection, a live listener accepts (and must not be silently
     unseated by a second `tabv serve` on the same path). *)
  (match Unix.lstat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } ->
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     let verdict =
       match Unix.connect probe (Unix.ADDR_UNIX path) with
       | () -> `Live
       | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
         -> `Dead
       | exception Unix.Unix_error _ -> `Unknown  (* let bind decide *)
     in
     close_noerr probe;
     (match verdict with
      | `Live ->
        failwith
          (Printf.sprintf "a daemon is already listening on %s" path)
      | `Dead -> (try Unix.unlink path with Unix.Unix_error _ -> ())
      | `Unknown -> ())
   | _ -> ()
   | exception Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  set_cloexec fd;
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     close_noerr fd;
     failwith
       (Printf.sprintf "cannot bind %s: %s" path (Unix.error_message e)));
  Unix.listen fd 64;
  fd

let listen_tcp host port =
  let addr =
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> Unix.inet_addr_loopback
    | { Unix.h_addr_list; _ } -> h_addr_list.(0)
    | exception Not_found ->
      (* Not resolvable: accept a literal IP, otherwise a clean error
         (inet_addr_of_string's bare [Failure] names no host). *)
      (try Unix.inet_addr_of_string host
       with Failure _ ->
         failwith (Printf.sprintf "cannot resolve host %s" host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  set_cloexec fd;
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (addr, port))
   with Unix.Unix_error (e, _, _) ->
     close_noerr fd;
     failwith
       (Printf.sprintf "cannot bind %s:%d: %s" host port
          (Unix.error_message e)));
  Unix.listen fd 64;
  fd

let create (config : config) =
  let obs =
    match config.obs with
    | Some m -> m
    | None -> Metrics.create ~enabled:true ()
  in
  let warm = Warm.create ~bound:config.warm_bound in
  let sched =
    Sched.create ?watermark:config.shed_watermark ~bound:config.queue_bound ()
  in
  let conns = Hashtbl.create 16 in
  let breakers =
    Array.init config.workers (fun _ ->
        Sched.Breaker.create ~threshold:config.breaker_threshold
          ~cooldown_s:config.breaker_cooldown_s ())
  in
  let inflight = Hashtbl.create 16 in
  let active_journals = Hashtbl.create 8 in
  Metrics.probe obs "serve.queue_depth" (fun () -> Sched.depth sched);
  Metrics.probe obs "serve.connections_active" (fun () -> Hashtbl.length conns);
  Metrics.probe obs "serve.warm_entries" (fun () -> Warm.size warm);
  Metrics.probe obs "serve.warm_hits" (fun () -> Warm.hits warm);
  Metrics.probe obs "serve.warm_misses" (fun () -> Warm.misses warm);
  Metrics.probe obs "serve.warm_evictions" (fun () -> Warm.evictions warm);
  (* Leak detectors: both must read 0 once the daemon has drained. *)
  Metrics.probe obs "serve.inflight_keys" (fun () -> Hashtbl.length inflight);
  Metrics.probe obs "serve.active_journals" (fun () ->
      Hashtbl.length active_journals);
  Metrics.probe obs "serve.jobs_shed" (fun () -> Sched.shed_count sched);
  Metrics.probe obs "serve.breaker_trips" (fun () ->
      Array.fold_left (fun acc b -> acc + Sched.Breaker.trips b) 0 breakers);
  Metrics.probe obs "serve.breaker_open" (fun () ->
      Array.fold_left
        (fun acc b -> acc + if Sched.Breaker.is_open b then 1 else 0)
        0 breakers);
  (* Stale-journal GC: journals of long-dead campaigns have no
     recovery value and would accumulate forever. *)
  (match config.state_dir with
   | Some dir ->
     ignore (Journal.gc_stale ~dir ~max_age_s:config.journal_gc_age_s ())
   | None -> ());
  {
    config;
    obs;
    warm;
    sched;
    conns;
    active_journals;
    inflight;
    outbox = Queue.create ();
    outbox_lock = Mutex.create ();
    next_conn = 0;
    draining = false;
    listeners = [];
    pool = make_pool config;
    breakers;
    m_requests = Metrics.counter obs "serve.requests_total";
    m_rejected = Metrics.counter obs "serve.requests_rejected";
    m_cancelled = Metrics.counter obs "serve.requests_cancelled";
    m_failed = Metrics.counter obs "serve.requests_failed";
    m_served = Metrics.counter obs "serve.requests_served";
    m_deadlined = Metrics.counter obs "serve.jobs_deadlined";
    m_conn_timeouts = Metrics.counter obs "serve.connections_timed_out";
    m_latency = Metrics.histogram obs "serve.request_latency_ms";
  }

(* --- dispatch ------------------------------------------------------ *)

(* Admission-time reservations ({!t.inflight}, {!t.active_journals})
   are taken when a request is accepted into the queue and released
   exactly once, when it leaves the system: completion, cancellation,
   or being dropped from the queue with its client.  Reserving at
   admission — not at dispatch — is what makes the one-writer-per-
   journal guarantee hold for *queued* requests too: two clashing
   campaigns queued behind busy workers must not both start. *)
let reserve_request t (queued : queued) =
  Hashtbl.replace t.inflight queued.q_key ();
  match queued.q_journal_path with
  | None -> ()
  | Some path -> Hashtbl.replace t.active_journals path ()

let release_request t (queued : queued) =
  Hashtbl.remove t.inflight queued.q_key;
  match queued.q_journal_path with
  | None -> ()
  | Some path -> Hashtbl.remove t.active_journals path

(* Honest backpressure advice: the configured base scaled by how deep
   the queue actually is, so clients retrying a loaded daemon back off
   harder than clients retrying a momentary blip (1x empty .. 5x at
   the bound). *)
let retry_advice_ms t =
  t.config.retry_after_ms
  * (1 + 4 * Sched.depth t.sched / max 1 t.config.queue_bound)

let start_on_dworker w running =
  w.d_busy <- Some running;
  Mutex.lock w.d_lock;
  w.d_task <- Some (Run running);
  Condition.signal w.d_cond;
  Mutex.unlock w.d_lock

let start_on_pworker t w running =
  let proc =
    match w.s_proc with
    | Some proc -> proc
    | None ->
      let proc = spawn_proc t.config in
      w.s_proc <- Some proc;
      proc
  in
  w.s_busy <- Some running;
  let request =
    Handler.worker_request_json ~state_dir:t.config.state_dir
      running.r_queued.q_job
  in
  let frame = Frame.encode (J.to_string request) in
  try write_all proc.p_to frame 0 (String.length frame)
  with Unix.Unix_error _ ->
    (* The worker died between requests (EPIPE with SIGPIPE ignored):
       leave it marked busy — the select loop watches a busy worker's
       reply pipe, sees the EOF, reaps the corpse and fails the
       request through the normal worker-death path. *)
    ()

(* Hand queued requests to idle, non-quarantined workers, telling
   their clients.  A slot whose breaker is open is skipped; an expired
   quarantine admits exactly one half-open probe job. *)
let try_dispatch t =
  let now = Unix.gettimeofday () in
  let breaker_ok idx = Sched.Breaker.available t.breakers.(idx) ~now in
  let idle_slots () =
    match t.pool with
    | Domains (workers, _, _) ->
      Array.to_list workers
      |> List.filter_map (fun w ->
             if w.d_busy = None && breaker_ok w.d_idx then Some (`D w)
             else None)
    | Processes workers ->
      Array.to_list workers
      |> List.filter_map (fun w ->
             if w.s_busy = None && breaker_ok w.s_idx then Some (`P w)
             else None)
  in
  let rec go = function
    | [] -> ()
    | slot :: slots ->
      (match Sched.next t.sched with
       | None -> ()
       | Some (_client, queued) ->
         let running =
           {
             r_queued = queued;
             r_interrupted = Atomic.make false;
             r_started_at = Unix.gettimeofday ();
             r_cancelled = false;
             r_deadlined = false;
           }
         in
         (match Hashtbl.find_opt t.conns queued.q_key.k_conn with
          | Some conn -> send_event conn ~id:queued.q_key.k_req Protocol.Started
          | None -> ());
         (match slot with
          | `D w ->
            Sched.Breaker.probe_started t.breakers.(w.d_idx);
            start_on_dworker w running
          | `P w ->
            Sched.Breaker.probe_started t.breakers.(w.s_idx);
            start_on_pworker t w running);
         go slots)
  in
  go (idle_slots ())

(* --- request admission --------------------------------------------- *)

let handle_request t conn ~id request =
  match request with
  | Protocol.Control Protocol.Ping -> send_event conn ~id Protocol.Pong
  | Protocol.Control Protocol.Stats ->
    send_event conn ~id
      (Protocol.Stats_reply
         (J.Assoc
            [ ( "metrics",
                Tabv_core.Report_json.metrics_snapshot_json
                  (Metrics.snapshot t.obs) ) ]))
  | Protocol.Control Protocol.Invalidate ->
    send_event conn ~id (Protocol.Invalidated { entries = Warm.clear t.warm })
  | Protocol.Control Protocol.Shutdown ->
    send_event conn ~id Protocol.Shutting_down;
    t.draining <- true
  | Protocol.Job job ->
    Metrics.incr t.m_requests;
    let fingerprint = Handler.fingerprint job in
    let cacheable = Handler.cacheable job in
    let warm_hit =
      if cacheable then Warm.find t.warm fingerprint else None
    in
    (match warm_hit with
     | Some entry ->
       Metrics.incr t.m_served;
       send_event conn ~id
         (Protocol.Result
            { ok = entry.Warm.ok; warm = true; report = entry.Warm.report })
     | None ->
       let key = { k_conn = conn.c_id; k_req = id } in
       if Hashtbl.mem t.inflight key then begin
         (* Reusing a live id would cross-wire event delivery and the
            worker bookkeeping keyed on (conn, id). *)
         Metrics.incr t.m_failed;
         send_event conn ~id
           (Protocol.Error
              {
                message =
                  Printf.sprintf
                    "request id %d is already queued or running on this \
                     connection"
                    id;
              })
       end
       else begin
         let journal_path =
           match t.config.state_dir with
           | Some state_dir -> Handler.campaign_journal_path ~state_dir job
           | None -> None
         in
         let journal_clash =
           match journal_path with
           | Some path -> Hashtbl.mem t.active_journals path
           | None -> false
         in
         if journal_clash then begin
           Metrics.incr t.m_rejected;
           send_event conn ~id
             (Protocol.Rejected { retry_after_ms = retry_advice_ms t })
         end
         else begin
           let queued =
             {
               q_key = key;
               q_job = job;
               q_fingerprint = fingerprint;
               q_cacheable = cacheable;
               q_journal_path = journal_path;
             }
           in
           match
             Sched.submit t.sched
               ~priority:(Protocol.job_priority job)
               ~client:conn.c_id queued
           with
           | `Rejected ->
             Metrics.incr t.m_rejected;
             send_event conn ~id
               (Protocol.Rejected { retry_after_ms = retry_advice_ms t })
           | `Displaced (_victim_client, victim, position) ->
             (* The full queue admitted this job by shedding a queued
                lower-priority one: the victim's owner gets an honest
                late [rejected] (its [accepted] was real at the time —
                a retrying client resubmits on either event). *)
             release_request t victim;
             Metrics.incr t.m_rejected;
             (match Hashtbl.find_opt t.conns victim.q_key.k_conn with
              | Some vconn ->
                send_event vconn ~id:victim.q_key.k_req
                  (Protocol.Rejected { retry_after_ms = retry_advice_ms t })
              | None -> ());
             reserve_request t queued;
             send_event conn ~id (Protocol.Accepted { position });
             try_dispatch t
           | `Accepted position ->
             reserve_request t queued;
             send_event conn ~id (Protocol.Accepted { position });
             try_dispatch t
         end
       end)

(* --- result completion --------------------------------------------- *)

let finish_live t running result =
  release_request t running.r_queued;
  let key = running.r_queued.q_key in
  let elapsed_ms =
    int_of_float ((Unix.gettimeofday () -. running.r_started_at) *. 1000.)
  in
  Metrics.observe t.m_latency (max 1 elapsed_ms);
  if running.r_cancelled then Metrics.incr t.m_cancelled
  else begin
    (match result with
     | Ok outcome ->
       Metrics.incr t.m_served;
       if running.r_queued.q_cacheable then
         Warm.add t.warm running.r_queued.q_fingerprint
           { Warm.ok = outcome.Handler.green; report = outcome.Handler.report };
       (match Hashtbl.find_opt t.conns key.k_conn with
        | Some conn ->
          send_event conn ~id:key.k_req
            (Protocol.Result
               {
                 ok = outcome.Handler.green;
                 warm = false;
                 report = outcome.Handler.report;
               })
        | None -> ())
     | Error message ->
       Metrics.incr t.m_failed;
       (match Hashtbl.find_opt t.conns key.k_conn with
        | Some conn ->
          send_event conn ~id:key.k_req (Protocol.Error { message })
        | None -> ()))
  end

let finish t running result =
  if running.r_deadlined then
    (* The deadline watchdog already answered the client and released
       the reservations; the late result (an in-domain job finally
       hitting an interruption point) is dropped on the floor. *)
    ()
  else finish_live t running result

(* Drain the in-domain outbox: match results to their workers, answer
   clients, refill the workers. *)
let drain_outbox t =
  match t.pool with
  | Processes _ -> ()
  | Domains (workers, wake_r, _) ->
    (* Swallow the wakeup bytes. *)
    let buf = Bytes.create 64 in
    let rec swallow () =
      match Unix.read wake_r buf 0 64 with
      | n when n > 0 -> swallow ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error _ -> ()
    in
    swallow ();
    let rec pop () =
      Mutex.lock t.outbox_lock;
      let next =
        if Queue.is_empty t.outbox then None else Some (Queue.take t.outbox)
      in
      Mutex.unlock t.outbox_lock;
      match next with
      | None -> ()
      | Some (key, result) ->
        Array.iter
          (fun w ->
            match w.d_busy with
            | Some running when running.r_queued.q_key = key ->
              w.d_busy <- None;
              (* The domain came back alive: whatever the job's own
                 verdict, the worker infrastructure is healthy. *)
              Sched.Breaker.record_success t.breakers.(w.d_idx);
              finish t running result
            | _ -> ())
          workers;
        pop ()
    in
    pop ();
    try_dispatch t

(* A subprocess worker's pipe turned readable: feed its stream, pop
   complete reply frames, or observe its death. *)
let service_pworker t w =
  match w.s_proc with
  | None -> ()
  | Some proc ->
    let buf = Bytes.create 65536 in
    let died, chunk =
      match Unix.read proc.p_from buf 0 65536 with
      | 0 -> (true, "")
      | n -> (false, Bytes.sub_string buf 0 n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (false, "")
      | exception Unix.Unix_error _ -> (true, "")
    in
    if chunk <> "" then Frame.feed proc.p_stream chunk;
    (* [infra]: the failure indicts the worker itself (garbled pipe,
       malformed reply), not the request — those count against the
       slot's circuit breaker; a clean [{"error":..}] reply is the
       job's own fault and counts as worker success. *)
    let pop () =
      match Frame.pop proc.p_stream with
      | exception Frame.Protocol_error _ ->
        Some (`Infra, Error "worker spoke garbage")
      | None -> None
      | Some payload ->
        (match J.of_string payload with
         | exception J.Parse_error _ ->
           Some (`Infra, Error "unparsable worker reply")
         | json ->
           (match J.member "ok" json with
            | Some payload ->
              (match Handler.decode_worker_reply payload with
               | Ok outcome -> Some (`Sound, Ok outcome)
               | Error e -> Some (`Infra, Error e))
            | None ->
              (match J.member "error" json with
               | Some (J.String message) -> Some (`Sound, Error message)
               | _ -> Some (`Infra, Error "malformed worker reply"))))
    in
    let record_outcome verdict =
      match verdict with
      | `Infra ->
        Sched.Breaker.record_failure t.breakers.(w.s_idx)
          ~now:(Unix.gettimeofday ());
        (* A worker that garbles its pipe has nothing trustworthy left
           to say: kill it and respawn lazily. *)
        kill_proc proc;
        w.s_proc <- None
      | `Sound -> Sched.Breaker.record_success t.breakers.(w.s_idx)
    in
    (match pop () with
     | Some (verdict, result) ->
       (match w.s_busy with
        | Some running ->
          w.s_busy <- None;
          record_outcome verdict;
          finish t running result
        | None -> record_outcome verdict);
       if w.s_proc <> None then ignore (pop ())
     | None ->
       if died then begin
         let message = reap_proc proc in
         w.s_proc <- None;
         match w.s_busy with
         | Some running ->
           w.s_busy <- None;
           Sched.Breaker.record_failure t.breakers.(w.s_idx)
             ~now:(Unix.gettimeofday ());
           finish t running (Error message)
         | None -> ()
       end);
    try_dispatch t

(* --- connection lifecycle ------------------------------------------ *)

let accept_conn t listener =
  match Unix.accept ~cloexec:true listener with
  | exception Unix.Unix_error _ -> ()
  | fd, _addr ->
    Unix.set_nonblock fd;
    let conn =
      {
        c_id = t.next_conn;
        c_fd = fd;
        c_stream =
          Frame.stream ~expect_version:Protocol.frame_version
            ~max_frame:t.config.frame_bound ();
        c_out = Queue.create ();
        c_out_off = 0;
        c_out_len = 0;
        c_out_bound = t.config.backlog_bound;
        c_overflow = false;
        c_dead = false;
        c_frame_deadline = None;
      }
    in
    t.next_conn <- t.next_conn + 1;
    Hashtbl.replace t.conns conn.c_id conn;
    Sched.add_client t.sched conn.c_id;
    send_frame conn (J.to_string Protocol.hello_json)

let disconnect t conn =
 if not conn.c_dead then begin
  conn.c_dead <- true;
  Hashtbl.remove t.conns conn.c_id;
  let dropped = Sched.remove_client t.sched conn.c_id in
  List.iter
    (fun q ->
      Metrics.incr t.m_cancelled;
      release_request t q)
    dropped;
  (* Cancel this client's in-flight work: in-domain requests get their
     interrupt flag (the worker frees itself at the next interruption
     point and the result is discarded); subprocess workers are killed
     outright and respawn lazily. *)
  (match t.pool with
   | Domains (workers, _, _) ->
     Array.iter
       (fun w ->
         match w.d_busy with
         | Some running when running.r_queued.q_key.k_conn = conn.c_id ->
           running.r_cancelled <- true;
           Atomic.set running.r_interrupted true
         | _ -> ())
       workers
   | Processes workers ->
     Array.iter
       (fun w ->
         match w.s_busy with
         | Some running when running.r_queued.q_key.k_conn = conn.c_id ->
           running.r_cancelled <- true;
           release_request t running.r_queued;
           Metrics.incr t.m_cancelled;
           w.s_busy <- None;
           (match w.s_proc with
            | Some proc ->
              kill_proc proc;
              w.s_proc <- None
            | None -> ())
         | _ -> ())
       workers);
  close_noerr conn.c_fd;
  try_dispatch t
 end

let service_conn_read t conn =
  let buf = Bytes.create 65536 in
  let closed =
    match Unix.read conn.c_fd buf 0 65536 with
    | 0 -> true
    | n ->
      Frame.feed conn.c_stream (Bytes.sub_string buf 0 n);
      false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      false
    | exception Unix.Unix_error _ -> true
  in
  let protocol_failure message =
    send_event conn ~id:(-1) (Protocol.Error { message });
    (* Flush best-effort, then drop the connection: after a framing
       error the byte stream has no recoverable structure. *)
    flush_backlog conn;
    Queue.clear conn.c_out;
    conn.c_out_off <- 0;
    conn.c_out_len <- 0;
    disconnect t conn
  in
  let rec pump () =
    if not conn.c_dead then
      match Frame.pop conn.c_stream with
      | exception Frame.Protocol_error message -> protocol_failure message
      | None -> ()
      | Some payload ->
        (match J.of_string payload with
         | exception J.Parse_error { line; col; message } ->
           protocol_failure
             (Printf.sprintf "unparsable request: %d:%d: %s" line col message)
         | json ->
           (match Protocol.request_of_json json with
            | Error message -> send_event conn ~id:(-1) (Protocol.Error { message })
            | Ok (id, request) -> handle_request t conn ~id request);
           pump ())
  in
  pump ();
  if closed && not conn.c_dead then disconnect t conn
  else if not conn.c_dead then begin
    (* Arm the mid-frame watchdog while a partial frame is buffered:
       a peer that goes silent halfway through a request (slow-loris,
       crash mid-write) must not hold the connection open forever.
       A complete quiet connection (empty buffer) may idle freely. *)
    if Frame.stream_length conn.c_stream > 0 then begin
      if conn.c_frame_deadline = None then
        conn.c_frame_deadline <-
          Some (Unix.gettimeofday () +. t.config.conn_idle_timeout_s)
    end
    else conn.c_frame_deadline <- None
  end

(* Drain the backlog frame by frame from the head offset: no
   re-allocation of the remainder, so a slow client costs O(bytes
   actually written), not O(backlog) per writable event. *)
let service_conn_write t conn =
  let rec go () =
    match Queue.peek_opt conn.c_out with
    | None -> ()
    | Some frame ->
      let len = String.length frame - conn.c_out_off in
      (match Unix.write_substring conn.c_fd frame conn.c_out_off len with
       | n ->
         conn.c_out_len <- conn.c_out_len - n;
         if n = len then begin
           ignore (Queue.pop conn.c_out);
           conn.c_out_off <- 0;
           go ()
         end
         else conn.c_out_off <- conn.c_out_off + n
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         ()
       | exception Unix.Unix_error _ -> disconnect t conn)
  in
  go ()

(* --- watchdogs ----------------------------------------------------- *)

(* Per-request deadlines, swept once per select tick.  A subprocess
   job over deadline is SIGKILLed (the campaign watchdog's containment
   boundary) and the slot respawns lazily; an in-domain job can only
   be asked to stop — its interrupt flag is set, the client is
   answered and the reservations released immediately, but the domain
   itself stays pinned until the job reaches an interruption point
   (honest limitation of in-process containment; [--isolate] is the
   strong form).  Either way the error event echoes the deadline. *)
let deadline_error_message t elapsed_s =
  match t.config.job_timeout_s with
  | None -> assert false
  | Some limit ->
    Printf.sprintf
      "deadline exceeded: job ran %.1fs against the %gs --job-timeout"
      elapsed_s limit

let deadline_expire t running ~now =
  running.r_deadlined <- true;
  Atomic.set running.r_interrupted true;
  release_request t running.r_queued;
  Metrics.incr t.m_deadlined;
  Metrics.incr t.m_failed;
  let key = running.r_queued.q_key in
  let elapsed = now -. running.r_started_at in
  match Hashtbl.find_opt t.conns key.k_conn with
  | Some conn ->
    send_event conn ~id:key.k_req
      (Protocol.Error { message = deadline_error_message t elapsed })
  | None -> ()

let enforce_deadlines t =
  match t.config.job_timeout_s with
  | None -> ()
  | Some limit ->
    let now = Unix.gettimeofday () in
    let overdue r =
      (not r.r_deadlined) && (not r.r_cancelled)
      && now -. r.r_started_at > limit
    in
    (match t.pool with
     | Domains (workers, _, _) ->
       Array.iter
         (fun w ->
           match w.d_busy with
           | Some running when overdue running -> deadline_expire t running ~now
           | _ -> ())
         workers
     | Processes workers ->
       Array.iter
         (fun w ->
           match w.s_busy with
           | Some running when overdue running ->
             deadline_expire t running ~now;
             (* The watchdog kill is an infrastructure event on this
                slot: repeated poison pins point at the worker until
                the breaker quarantines it. *)
             Sched.Breaker.record_failure t.breakers.(w.s_idx) ~now;
             w.s_busy <- None;
             (match w.s_proc with
              | Some proc ->
                kill_proc proc;
                w.s_proc <- None
              | None -> ())
           | _ -> ())
         workers)

(* Disconnect peers that went silent mid-frame past the idle
   timeout — their reservations release through the normal disconnect
   path.  Collect first: [disconnect] mutates [t.conns]. *)
let enforce_conn_timeouts t =
  let now = Unix.gettimeofday () in
  Hashtbl.fold
    (fun _ c acc ->
      match c.c_frame_deadline with
      | Some deadline when (not c.c_dead) && now > deadline -> c :: acc
      | _ -> acc)
    t.conns []
  |> List.iter (fun c ->
         Metrics.incr t.m_conn_timeouts;
         disconnect t c)

(* --- the main loop ------------------------------------------------- *)

let pool_busy t =
  match t.pool with
  | Domains (workers, _, _) ->
    Array.exists (fun w -> w.d_busy <> None) workers
  | Processes workers -> Array.exists (fun w -> w.s_busy <> None) workers

let close_listeners t =
  List.iter
    (fun fd ->
      close_noerr fd)
    t.listeners;
  t.listeners <- []

let teardown t =
  close_listeners t;
  Hashtbl.iter
    (fun _ conn ->
      flush_backlog conn;
      close_noerr conn.c_fd)
    t.conns;
  Hashtbl.reset t.conns;
  (match t.pool with
   | Domains (workers, wake_r, wake_w) ->
     Array.iter
       (fun w ->
         Mutex.lock w.d_lock;
         w.d_task <- Some Quit;
         Condition.signal w.d_cond;
         Mutex.unlock w.d_lock)
       workers;
     Array.iter
       (fun w -> Option.iter Domain.join w.d_domain)
       workers;
     close_noerr wake_r;
     close_noerr wake_w
   | Processes workers ->
     Array.iter
       (fun w ->
         (match w.s_proc with
          | Some proc -> kill_proc proc
          | None -> ());
         w.s_proc <- None)
       workers);
  (match Unix.lstat t.config.socket with
   | { Unix.st_kind = Unix.S_SOCK; _ } ->
     (try Unix.unlink t.config.socket with Unix.Unix_error _ -> ())
   | _ -> ()
   | exception Unix.Unix_error _ -> ())

(* [run ?interrupted ?on_ready config] — bind, serve until drained.
   [interrupted] turning true starts a graceful drain (the CLI wires
   SIGINT/SIGTERM to it); [on_ready] fires once the listeners are
   bound (tests and benches synchronize on it). *)
let run ?(interrupted = fun () -> false) ?(on_ready = fun () -> ()) config =
  let t = create config in
  let unix_listener = listen_unix config.socket in
  t.listeners <- [ unix_listener ];
  (match config.tcp with
   | Some (host, port) -> t.listeners <- t.listeners @ [ listen_tcp host port ]
   | None -> ());
  (match t.pool with
   | Domains (workers, _, wake_w) ->
     Array.iter
       (fun w ->
         w.d_domain <-
           Some
             (Domain.spawn (fun () ->
                  dworker_loop config.state_dir w wake_w t.outbox
                    t.outbox_lock)))
       workers
   | Processes _ -> ());
  (* A peer that hangs up must surface as EPIPE on the write — the
     default SIGPIPE disposition would kill the whole daemon the first
     time a backlog flushes into a closed socket.  Restored on exit
     (same save/ignore/restore dance as the campaign executor). *)
  let prev_sigpipe =
    if Sys.os_type = "Win32" then None
    else
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
  in
  let restore_sigpipe () =
    match prev_sigpipe with
    | Some behavior ->
      (try Sys.set_signal Sys.sigpipe behavior with Invalid_argument _ -> ())
    | None -> ()
  in
  on_ready ();
  let rec loop () =
    if interrupted () then t.draining <- true;
    if t.draining then close_listeners t;
    (* Drop clients whose backlog overflowed (collect first: disconnect
       mutates [t.conns]). *)
    Hashtbl.fold
      (fun _ c acc -> if c.c_overflow && not c.c_dead then c :: acc else acc)
      t.conns []
    |> List.iter (fun c -> disconnect t c);
    (* Watchdogs: per-request deadlines, mid-frame silence.  Then a
       dispatch pass — queued work may be waiting on nothing but a
       breaker cooldown expiring, which no fd event announces. *)
    enforce_deadlines t;
    enforce_conn_timeouts t;
    if Sched.depth t.sched > 0 then try_dispatch t;
    let done_ =
      t.draining && Sched.depth t.sched = 0 && not (pool_busy t)
      && Hashtbl.fold (fun _ c acc -> acc && c.c_out_len = 0) t.conns true
    in
    if done_ then ()
    else begin
      let reads =
        t.listeners
        @ Hashtbl.fold (fun _ c acc -> c.c_fd :: acc) t.conns []
        @ (match t.pool with
           | Domains (_, wake_r, _) -> [ wake_r ]
           | Processes workers ->
             Array.to_list workers
             |> List.filter_map (fun w ->
                    match w.s_proc with
                    | Some proc when w.s_busy <> None -> Some proc.p_from
                    | _ -> None))
      in
      let writes =
        Hashtbl.fold
          (fun _ c acc -> if c.c_out_len > 0 then c.c_fd :: acc else acc)
          t.conns []
      in
      let readable, writable, _ =
        match Unix.select reads writes [] 0.2 with
        | sets -> sets
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if List.memq fd t.listeners then accept_conn t fd
          else begin
            match
              Hashtbl.fold
                (fun _ c acc -> if c.c_fd == fd then Some c else acc)
                t.conns None
            with
            | Some conn -> service_conn_read t conn
            | None ->
              (match t.pool with
               | Domains (_, wake_r, _) when fd == wake_r -> drain_outbox t
               | Domains _ -> ()
               | Processes workers ->
                 Array.iter
                   (fun w ->
                     match w.s_proc with
                     | Some proc when proc.p_from == fd -> service_pworker t w
                     | _ -> ())
                   workers)
          end)
        readable;
      List.iter
        (fun fd ->
          match
            Hashtbl.fold
              (fun _ c acc -> if c.c_fd == fd then Some c else acc)
              t.conns None
          with
          | Some conn when not conn.c_dead && conn.c_out_len > 0 ->
            service_conn_write t conn
          | _ -> ())
        writable;
      (* In-domain results may land between selects; poll the outbox
         even without a wakeup byte (cheap, and makes the loop robust
         to a full wake pipe). *)
      (match t.pool with
       | Domains _ ->
         let nonempty =
           Mutex.lock t.outbox_lock;
           let n = not (Queue.is_empty t.outbox) in
           Mutex.unlock t.outbox_lock;
           n
         in
         if nonempty then drain_outbox t
       | Processes _ -> ());
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      teardown t;
      restore_sigpipe ())
    loop;
  t.obs
