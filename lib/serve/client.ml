(* Blocking client for the tabv-serve protocol.

   Connects, validates the server's hello (frame version is checked by
   the stream decoder, application protocol by {!Protocol.check_hello}),
   then exchanges one request at a time: [request] submits a job and
   blocks through the accepted/started progress events until a
   terminal event arrives; [control] does the same for control ops.
   Request ids are allocated per connection. *)

module J = Tabv_core.Report_json
module Frame = Tabv_core.Frame

type endpoint =
  [ `Unix of string  (* socket path *)
  | `Tcp of string * int ]

(* One wire-level step of a (possibly fault-injected) send.
   Structurally compatible with {!Tabv_fault.Fault.Net.action} without
   a library dependency in either direction. *)
type wire_action =
  [ `Chunk of string
  | `Delay_ms of int
  | `Reset ]

type t = {
  fd : Unix.file_descr;
  stream : Frame.stream;
  mutable next_id : int;
  mutable wire : (string -> wire_action list) option;
}

type reply =
  | Result of { ok : bool; warm : bool; report : string }
  | Rejected of { retry_after_ms : int }
  | Failed of string

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

(* [interpose t f] routes every outbound frame through [f] — the
   chaos-harness hook, in the style of [Signal.interpose].  [f]
   receives the encoded frame and answers the wire actions to execute
   instead of the single plain write.  Production paths never install
   one. *)
let interpose t f = t.wire <- Some f

let send t payload =
  let frame = Frame.encode ~version:Protocol.frame_version payload in
  match t.wire with
  | None -> write_all t.fd frame 0 (String.length frame)
  | Some f ->
    let rec exec = function
      | [] -> ()
      | `Chunk s :: rest ->
        write_all t.fd s 0 (String.length s);
        exec rest
      | `Delay_ms ms :: rest ->
        Unix.sleepf (float_of_int ms /. 1000.);
        exec rest
      | `Reset :: _ ->
        (* Injected mid-request connection loss: hard-close both
           directions and surface the same error the caller would see
           from a genuine peer reset. *)
        (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        raise (Unix.Unix_error (Unix.EPIPE, "send", "injected reset"))
    in
    exec (f frame)

(* Next complete frame, reading as needed.  [None] on orderly EOF. *)
let read_frame t =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Frame.pop t.stream with
    | Some payload -> Some payload
    | None ->
      (match Unix.read t.fd buf 0 65536 with
       | 0 -> None
       | n ->
         Frame.feed t.stream (Bytes.sub_string buf 0 n);
         go ())
  in
  go ()

(* Resolve + connect, closing the socket on failure.  Raises [Failure]
   with a presentable message (unresolvable host, connection refused);
   [connect] turns it into the [Error] result. *)
let connect_fd (endpoint : endpoint) =
  let describe () =
    match endpoint with
    | `Unix path -> path
    | `Tcp (host, port) -> Printf.sprintf "%s:%d" host port
  in
  let with_fd fd addr =
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      failwith
        (Printf.sprintf "cannot connect to %s: %s" (describe ())
           (Unix.error_message e))
  in
  match endpoint with
  | `Unix path ->
    with_fd
      (Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0)
      (Unix.ADDR_UNIX path)
  | `Tcp (host, port) ->
    let addr =
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } -> Unix.inet_addr_loopback
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
        (* Not resolvable: accept a literal IP, otherwise a clean
           error (inet_addr_of_string's bare [Failure] names no
           host). *)
        (try Unix.inet_addr_of_string host
         with Failure _ ->
           failwith (Printf.sprintf "cannot resolve host %s" host))
    in
    with_fd
      (Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0)
      (Unix.ADDR_INET (addr, port))

let connect (endpoint : endpoint) =
  (* A socket client must see a peer hangup as an error reply, not a
     process-killing signal: a drained daemon may close the connection
     while a request is still being written. *)
  if Sys.os_type <> "Win32" then
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
  match connect_fd endpoint with
  | exception Failure msg -> Error msg
  | fd ->
  let t =
    { fd; stream = Frame.stream ~expect_version:Protocol.frame_version ();
      next_id = 0; wire = None }
  in
  match read_frame t with
  | None ->
    Unix.close fd;
    Error "server closed the connection before saying hello"
  | exception e ->
    Unix.close fd;
    Error (Printexc.to_string e)
  | Some payload ->
    (match
       match J.of_string payload with
       | exception J.Parse_error _ -> Error "unparsable hello from server"
       | json -> Protocol.check_hello json
     with
     | Ok () -> Ok t
     | Error e ->
       Unix.close fd;
       Error e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* Raw protocol access (tests, benches, multi-request pipelining):
   fire a request without waiting, and read the next event whoever it
   belongs to. *)
let send_request t ~id request =
  send t (J.to_string (Protocol.request_json ~id request))

let next_event t =
  match read_frame t with
  | None -> Error "server closed the connection"
  | exception e -> Error (Printexc.to_string e)
  | Some payload ->
    (match J.of_string payload with
     | exception J.Parse_error _ -> Error "unparsable event from server"
     | json -> Protocol.event_of_json json)

(* Wait for this request's terminal event, skipping progress events
   ([accepted], [started]) and other requests' events. *)
let await_terminal t ~id =
  let rec go () =
    match read_frame t with
    | None -> Failed "server closed the connection mid-request"
    | exception e -> Failed (Printexc.to_string e)
    | Some payload ->
      (match J.of_string payload with
       | exception J.Parse_error _ -> Failed "unparsable event from server"
       | json ->
         (match Protocol.event_of_json json with
          | Error e -> Failed e
          | Ok (event_id, _) when event_id <> id -> go ()
          | Ok (_, Protocol.Result { ok; warm; report }) ->
            Result { ok; warm; report }
          | Ok (_, Protocol.Rejected { retry_after_ms }) ->
            Rejected { retry_after_ms }
          | Ok (_, Protocol.Error { message }) -> Failed message
          | Ok (_, (Protocol.Accepted _ | Protocol.Started)) -> go ()
          | Ok (_, Protocol.Pong)
          | Ok (_, Protocol.Stats_reply _)
          | Ok (_, Protocol.Invalidated _)
          | Ok (_, Protocol.Shutting_down) ->
            Failed "unexpected control event for a job request"))
  in
  go ()

let request t job =
  let id = fresh_id t in
  match send t (J.to_string (Protocol.request_json ~id (Protocol.Job job))) with
  | exception Unix.Unix_error (e, _, _) ->
    Failed
      (Printf.sprintf "cannot reach the server: %s" (Unix.error_message e))
  | () -> await_terminal t ~id

(* Submit with bounded retries on backpressure.  With [backoff_seed]
   the server's advice seeds the campaign executor's decorrelated-
   jitter backoff ({!Tabv_campaign.Executor.backoff_s}) so a fleet of
   clients rejected at the same instant spreads out instead of
   re-stampeding in lockstep; without it the raw advice is honored
   as-is (deterministic, for tests). *)
let retry_delay_s ?backoff_seed ~attempt retry_after_ms =
  let advice = float_of_int retry_after_ms /. 1000. in
  match backoff_seed with
  | None -> advice
  | Some seed ->
    Tabv_campaign.Executor.backoff_s ~seed ~task:0 ~base_s:advice ~attempt

let request_with_retry ?(attempts = 10) ?backoff_seed t job =
  let rec go attempt =
    match request t job with
    | Rejected { retry_after_ms } when attempt < attempts ->
      Unix.sleepf (retry_delay_s ?backoff_seed ~attempt retry_after_ms);
      go (attempt + 1)
    | reply -> reply
  in
  go 1

type control_reply =
  | Pong
  | Stats of J.json
  | Invalidated of int
  | Shutting_down
  | Control_failed of string

let control t op =
  let id = fresh_id t in
  match
    send t (J.to_string (Protocol.request_json ~id (Protocol.Control op)))
  with
  | exception Unix.Unix_error (e, _, _) ->
    Control_failed
      (Printf.sprintf "cannot reach the server: %s" (Unix.error_message e))
  | () ->
  let rec go () =
    match read_frame t with
    | None -> Control_failed "server closed the connection mid-request"
    | exception e -> Control_failed (Printexc.to_string e)
    | Some payload ->
      (match J.of_string payload with
       | exception J.Parse_error _ ->
         Control_failed "unparsable event from server"
       | json ->
         (match Protocol.event_of_json json with
          | Error e -> Control_failed e
          | Ok (event_id, _) when event_id <> id -> go ()
          | Ok (_, Protocol.Pong) -> Pong
          | Ok (_, Protocol.Stats_reply metrics) -> Stats metrics
          | Ok (_, Protocol.Invalidated { entries }) -> Invalidated entries
          | Ok (_, Protocol.Shutting_down) -> Shutting_down
          | Ok (_, Protocol.Error { message }) -> Control_failed message
          | Ok (_, _) -> Control_failed "unexpected job event for a control op"))
  in
  go ()
