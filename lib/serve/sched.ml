(* Bounded fair scheduler: one FIFO per client, round-robin service
   across clients, explicit backpressure — plus the two robustness
   tiers in front of the bound:

   - a {e load-shedding watermark}: once the queue is [watermark] deep
     (default 3/4 of the bound), submissions whose priority is
     strictly below the best work already queued are refused early,
     with honest retry advice, instead of padding out a backlog that
     will starve them anyway;
   - {e displacement at the bound}: a full queue accepts a
     strictly-higher-priority submission by evicting the freshest
     lowest-priority queued (never started) item, which the caller
     must reject back to its owner.

   Fairness is per-connection, not per-request: a client that dumps
   50 requests cannot starve one that sends a single check, because
   [next] rotates a cursor over the clients that have queued work and
   takes one request per visit.  The bound is global (total queued
   across all clients).

   Plain single-threaded data structure — the server's coordinator
   loop is the only caller. *)

type 'a entry = {
  e_priority : int;
  e_item : 'a;
}

type 'a t = {
  bound : int;
  watermark : int;
  queues : (int, 'a entry Queue.t) Hashtbl.t;  (* client id -> its FIFO *)
  mutable rotation : int list;  (* client service order, cursor at head *)
  mutable depth : int;  (* total queued *)
  mutable shed : int;  (* watermark refusals + displacements *)
}

let create ?watermark ~bound () =
  if bound < 1 then invalid_arg "Sched.create: bound must be >= 1";
  let watermark =
    match watermark with
    | None -> max 1 (bound * 3 / 4)
    | Some w ->
      if w < 1 || w > bound then
        invalid_arg "Sched.create: watermark must be in [1, bound]";
      w
  in
  { bound; watermark; queues = Hashtbl.create 16; rotation = []; depth = 0;
    shed = 0 }

let depth t = t.depth
let shed_count t = t.shed

let add_client t client =
  if not (Hashtbl.mem t.queues client) then begin
    Hashtbl.replace t.queues client (Queue.create ());
    t.rotation <- t.rotation @ [ client ]
  end

(* Forget [client]; its queued (never-started) requests come back to
   the caller so their resources can be released. *)
let remove_client t client =
  match Hashtbl.find_opt t.queues client with
  | None -> []
  | Some q ->
    Hashtbl.remove t.queues client;
    t.rotation <- List.filter (fun c -> c <> client) t.rotation;
    let dropped = List.map (fun e -> e.e_item) (List.of_seq (Queue.to_seq q)) in
    t.depth <- t.depth - List.length dropped;
    dropped

(* Highest priority among queued entries ([min_int] when empty). *)
let best_queued_priority t =
  Hashtbl.fold
    (fun _ q best ->
      Queue.fold (fun best e -> max best e.e_priority) best q)
    t.queues min_int

(* Evict the freshest entry of the globally lowest queued priority
   (scanning clients in rotation order), provided that priority is
   strictly below [than].  Rebuilds the victim's FIFO minus the one
   entry — queues are small and bounded, so the O(n) rebuild is
   irrelevant. *)
let displace_lowest t ~than =
  let victim =
    List.fold_left
      (fun acc client ->
        match Hashtbl.find_opt t.queues client with
        | None -> acc
        | Some q ->
          Queue.fold
            (fun acc e ->
              match acc with
              | Some (_, p) when p <= e.e_priority -> acc
              | _ when e.e_priority < than -> Some (client, e.e_priority)
              | _ -> acc)
            acc q)
      None t.rotation
  in
  match victim with
  | None -> None
  | Some (client, priority) ->
    let q = Hashtbl.find t.queues client in
    let entries = List.of_seq (Queue.to_seq q) in
    (* Freshest matching entry: the last one at the victim priority. *)
    let last = ref (-1) in
    List.iteri
      (fun i e -> if e.e_priority = priority then last := i)
      entries;
    let victim = List.nth entries !last in
    Queue.clear q;
    List.iteri (fun i e -> if i <> !last then Queue.add e q) entries;
    t.depth <- t.depth - 1;
    Some (client, victim.e_item)

let submit ?(priority = 0) t ~client item =
  match Hashtbl.find_opt t.queues client with
  | None -> invalid_arg "Sched.submit: unknown client"
  | Some q ->
    if t.depth >= t.bound then begin
      (* Full: only strictly-better work gets in, by displacing the
         freshest lowest-priority queued item. *)
      match displace_lowest t ~than:priority with
      | None -> `Rejected
      | Some (victim_client, victim) ->
        t.shed <- t.shed + 1;
        Queue.add { e_priority = priority; e_item = item } q;
        t.depth <- t.depth + 1;
        `Displaced (victim_client, victim, t.depth)
    end
    else if t.depth >= t.watermark && priority < best_queued_priority t
    then begin
      (* Shedding tier: the backlog is deep and holds strictly better
         work — refuse early with retry advice rather than queue work
         that would starve behind it anyway. *)
      t.shed <- t.shed + 1;
      `Rejected
    end
    else begin
      Queue.add { e_priority = priority; e_item = item } q;
      t.depth <- t.depth + 1;
      `Accepted t.depth
    end

(* The next request under round-robin: advance the cursor past clients
   with empty queues, take one item from the first non-empty one, and
   rotate it to the back so every client with work gets one turn per
   revolution. *)
let next t =
  let rec go visited =
    match t.rotation with
    | [] -> None
    | client :: rest ->
      if visited >= List.length t.rotation then None
      else begin
        t.rotation <- rest @ [ client ];
        match Hashtbl.find_opt t.queues client with
        | Some q when not (Queue.is_empty q) ->
          let e = Queue.take q in
          t.depth <- t.depth - 1;
          Some (client, e.e_item)
        | _ -> go (visited + 1)
      end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Worker circuit breaker                                              *)
(* ------------------------------------------------------------------ *)

(* Consecutive-infrastructure-failure tracking for one worker slot.
   The classic three states:

   - [Closed] — healthy; failures count up, successes reset them.
     [threshold] consecutive failures trip the breaker.
   - [Open] — the slot is quarantined until [cooldown_s] elapses; the
     scheduler must not dispatch to it.
   - [Half_open] — cooldown expired; exactly one probe job may be
     dispatched.  Success re-closes the breaker, failure re-opens it
     (counting a fresh trip and a fresh cooldown).

   "Failure" here means {e worker infrastructure} failure (subprocess
   death, garbage reply, a watchdog kill) — a request-level error
   (bad props, bad manifest) is the job's fault, not the worker's, and
   must be recorded as success.  Time is injected by the caller so the
   logic stays clock-free and directly testable. *)
module Breaker = struct
  type state =
    | Closed
    | Open of { until : float }
    | Half_open

  type t = {
    threshold : int;
    cooldown_s : float;
    mutable failures : int;  (* consecutive, while closed *)
    mutable state : state;
    mutable probing : bool;  (* a half-open probe is in flight *)
    mutable trips : int;
  }

  let create ?(threshold = 3) ?(cooldown_s = 5.) () =
    if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
    if cooldown_s < 0. then
      invalid_arg "Breaker.create: cooldown must be >= 0";
    { threshold; cooldown_s; failures = 0; state = Closed; probing = false;
      trips = 0 }

  let trips t = t.trips
  let is_open t = match t.state with Open _ -> true | _ -> false

  let record_success t =
    t.failures <- 0;
    t.probing <- false;
    t.state <- Closed

  let record_failure t ~now =
    match t.state with
    | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.threshold then begin
        t.trips <- t.trips + 1;
        t.failures <- 0;
        t.state <- Open { until = now +. t.cooldown_s }
      end
    | Half_open ->
      (* The probe failed: straight back to quarantine. *)
      t.trips <- t.trips + 1;
      t.probing <- false;
      t.state <- Open { until = now +. t.cooldown_s }
    | Open _ -> ()

  (* May this slot take a job right now?  Checking an expired [Open]
     transitions to [Half_open] as a side effect — the caller that
     sees [true] and dispatches must call {!probe_started}. *)
  let available t ~now =
    match t.state with
    | Closed -> true
    | Half_open -> not t.probing
    | Open { until } ->
      if now >= until then begin
        t.state <- Half_open;
        t.probing <- false;
        true
      end
      else false

  let probe_started t =
    match t.state with
    | Half_open -> t.probing <- true
    | Closed | Open _ -> ()
end
