(* Bounded fair scheduler: one FIFO per client, round-robin service
   across clients, explicit backpressure.

   Fairness is per-connection, not per-request: a client that dumps
   50 requests cannot starve one that sends a single check, because
   [next] rotates a cursor over the clients that have queued work and
   takes one request per visit.  The bound is global (total queued
   across all clients); a submit over the bound is rejected with
   explicit retry advice rather than queued into unbounded memory.

   Plain single-threaded data structure — the server's coordinator
   loop is the only caller. *)

type 'a t = {
  bound : int;
  queues : (int, 'a Queue.t) Hashtbl.t;  (* client id -> its FIFO *)
  mutable rotation : int list;  (* client service order, cursor at head *)
  mutable depth : int;  (* total queued *)
}

let create ~bound =
  if bound < 1 then invalid_arg "Sched.create: bound must be >= 1";
  { bound; queues = Hashtbl.create 16; rotation = []; depth = 0 }

let depth t = t.depth

let add_client t client =
  if not (Hashtbl.mem t.queues client) then begin
    Hashtbl.replace t.queues client (Queue.create ());
    t.rotation <- t.rotation @ [ client ]
  end

(* Forget [client]; its queued (never-started) requests come back to
   the caller so their resources can be released. *)
let remove_client t client =
  match Hashtbl.find_opt t.queues client with
  | None -> []
  | Some q ->
    Hashtbl.remove t.queues client;
    t.rotation <- List.filter (fun c -> c <> client) t.rotation;
    let dropped = List.of_seq (Queue.to_seq q) in
    t.depth <- t.depth - List.length dropped;
    dropped

let submit t ~client item =
  match Hashtbl.find_opt t.queues client with
  | None -> invalid_arg "Sched.submit: unknown client"
  | Some q ->
    if t.depth >= t.bound then `Rejected
    else begin
      Queue.add item q;
      t.depth <- t.depth + 1;
      `Accepted t.depth
    end

(* The next request under round-robin: advance the cursor past clients
   with empty queues, take one item from the first non-empty one, and
   rotate it to the back so every client with work gets one turn per
   revolution. *)
let next t =
  let rec go visited =
    match t.rotation with
    | [] -> None
    | client :: rest ->
      if visited >= List.length t.rotation then None
      else begin
        t.rotation <- rest @ [ client ];
        match Hashtbl.find_opt t.queues client with
        | Some q when not (Queue.is_empty q) ->
          let item = Queue.take q in
          t.depth <- t.depth - 1;
          Some (client, item)
        | _ -> go (visited + 1)
      end
  in
  go 0
