(* Warm result cache: rendered report text keyed by canonical request
   fingerprint, bounded LRU.

   The daemon's warm state is deliberately the *result*, not live
   checker universes: a cold execution starts from a fresh universe
   (exactly the one-shot CLI's semantics) and the rendered bytes are
   cached verbatim, so a warm hit replays the identical bytes instead
   of re-running — byte-identity across warm/cold is by construction,
   and nothing about cache occupancy can perturb a report.

   Single-threaded by design: every access happens on the server's
   coordinator loop (dispatch and completion both), so no lock. *)

type entry = {
  ok : bool;  (* the request's CLI exit criterion *)
  report : string;  (* exact --report-json file bytes *)
}

type t = {
  bound : int;
  table : (string, entry * int ref) Hashtbl.t;  (* key -> entry, last use *)
  mutable tick : int;  (* recency clock *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~bound =
  if bound < 1 then invalid_arg "Warm.create: bound must be >= 1";
  { bound; table = Hashtbl.create 32; tick = 0; hits = 0; misses = 0;
    evictions = 0 }

let size t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let touch t stamp =
  t.tick <- t.tick + 1;
  stamp := t.tick

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some (entry, stamp) ->
    touch t stamp;
    t.hits <- t.hits + 1;
    Some entry
  | None ->
    t.misses <- t.misses + 1;
    None

(* Evict the least-recently-used entry.  O(n) scan — the bound is
   small (tens), and adds are rare next to the verification work that
   produces them. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key (_, stamp) acc ->
        match acc with
        | Some (_, best) when best <= !stamp -> acc
        | _ -> Some (key, !stamp))
      t.table None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.evictions <- t.evictions + 1
  | None -> ()

let add t key entry =
  (match Hashtbl.find_opt t.table key with
   | Some _ -> Hashtbl.remove t.table key
   | None -> if Hashtbl.length t.table >= t.bound then evict_lru t);
  t.tick <- t.tick + 1;
  Hashtbl.replace t.table key (entry, ref t.tick)

let clear t =
  let n = Hashtbl.length t.table in
  Hashtbl.reset t.table;
  n
