(* The tabv-serve socket protocol: versioned frames carrying JSON
   requests and events.

   Transport: {!Tabv_core.Frame} versioned frames ([frame_version] in
   every header, so mismatched builds fail with a named error instead
   of a garbled stream).  On connect the server speaks first with a
   hello frame naming the application protocol ([protocol_version]);
   the client checks it before sending anything.

   A connection then carries any number of interleaved requests.  The
   client picks a connection-unique [id] per request; every event the
   server emits for that request echoes the [id], so a client can keep
   several requests in flight on one socket. *)

module J = Tabv_core.Report_json
module Wire = Tabv_campaign.Wire

let frame_version = 1
let protocol_version = 1
let hello_name = "tabv-serve"

let ( let* ) = Result.bind

(* --- requests ------------------------------------------------------ *)

(* The verification work a client can submit.  Property sets travel
   inline as property-language source (never paths: the daemon must
   not depend on sharing a filesystem view with the client for
   anything but traces it recorded itself). *)
type job =
  | Check of {
      model : Tabv_duv.Models.t;
      seed : int;
      ops : int;
      props : string option;  (* property-language source, inline *)
      engine : Tabv_sim.Kernel.engine option;
      trace_out : string option;  (* Some path = a record request *)
    }
  | Recheck of {
      trace : string;
      props : string option;
      workers : int;
      retries : int;
    }
  | Campaign of {
      manifest : J.json;
      workers : int;
      retries : int option;  (* manifest default when absent *)
      journal : bool;  (* journal into the daemon's state dir *)
    }
  | Qualify of {
      duv : Tabv_campaign.Campaign.duv;
      levels : Tabv_campaign.Campaign.level list;
      seed : int;
      ops : int;
      workers : int;
      retries : int;
    }

type control =
  | Ping
  | Stats
  | Invalidate  (* drop the warm cache *)
  | Shutdown  (* graceful drain *)

type request =
  | Job of job
  | Control of control

let job_op = function
  | Check { trace_out = None; _ } -> "check"
  | Check { trace_out = Some _; _ } -> "record"
  | Recheck _ -> "recheck"
  | Campaign _ -> "campaign"
  | Qualify _ -> "qualify"

(* Scheduling priority tiers for load shedding, a pure function of the
   job shape so both ends of the wire agree without negotiating:
   interactive single checks outrank trace work, which outranks bulk
   campaigns — when the daemon is overloaded, the bulk work (cheap to
   re-submit, expensive to run) is what gets shed first. *)
let job_priority = function
  | Check { trace_out = None; _ } -> 3
  | Check { trace_out = Some _; _ } | Recheck _ -> 2
  | Campaign _ | Qualify _ -> 1

(* --- request JSON -------------------------------------------------- *)

let opt_field name to_json = function
  | None -> []
  | Some v -> [ (name, to_json v) ]

let job_json job =
  let fields =
    match job with
    | Check { model; seed; ops; props; engine; trace_out } ->
      [ ("op", J.String (job_op job));
        ("model", J.String (Tabv_duv.Models.name model));
        ("seed", J.Int seed); ("ops", J.Int ops) ]
      @ opt_field "props" (fun s -> J.String s) props
      @ opt_field "engine"
          (fun e -> J.String (Tabv_sim.Kernel.engine_name e))
          engine
      @ opt_field "trace_out" (fun s -> J.String s) trace_out
    | Recheck { trace; props; workers; retries } ->
      [ ("op", J.String "recheck"); ("trace", J.String trace) ]
      @ opt_field "props" (fun s -> J.String s) props
      @ [ ("workers", J.Int workers); ("retries", J.Int retries) ]
    | Campaign { manifest; workers; retries; journal } ->
      [ ("op", J.String "campaign"); ("manifest", manifest);
        ("workers", J.Int workers) ]
      @ opt_field "retries" (fun r -> J.Int r) retries
      @ [ ("journal", J.Bool journal) ]
    | Qualify { duv; levels; seed; ops; workers; retries } ->
      [ ("op", J.String "qualify");
        ("duv", J.String (Tabv_campaign.Campaign.duv_name duv));
        ( "levels",
          J.List
            (List.map
               (fun l -> J.String (Tabv_campaign.Campaign.level_name l))
               levels) );
        ("seed", J.Int seed); ("ops", J.Int ops); ("workers", J.Int workers);
        ("retries", J.Int retries) ]
  in
  J.Assoc fields

let control_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Invalidate -> "invalidate"
  | Shutdown -> "shutdown"

let request_json ~id request =
  match request with
  | Job job ->
    (match job_json job with
     | J.Assoc fields -> J.Assoc (("id", J.Int id) :: fields)
     | _ -> assert false)
  | Control c ->
    J.Assoc [ ("id", J.Int id); ("op", J.String (control_name c)) ]

(* --- request decoding ---------------------------------------------- *)

let decode_props what fields =
  match List.assoc_opt "props" fields with
  | None -> Ok None
  | Some (J.String s) -> Ok (Some s)
  | Some _ -> Error (what ^ ".props: expected a string")

let decode_engine what fields =
  match List.assoc_opt "engine" fields with
  | None -> Ok None
  | Some (J.String name) ->
    (match Tabv_sim.Kernel.engine_of_string name with
     | Ok e -> Ok (Some e)
     | Error e -> Error (Printf.sprintf "%s.engine: %s" what e))
  | Some _ -> Error (what ^ ".engine: expected a string")

let int_default what key ~default fields =
  match List.assoc_opt key fields with
  | None -> Ok default
  | Some (J.Int n) -> Ok n
  | Some _ -> Error (Printf.sprintf "%s.%s: expected an integer" what key)

let decode_check what ~record fields =
  let* model_name = Wire.string_field what "model" fields in
  let* model =
    match Tabv_duv.Models.of_name model_name with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "%s: unknown model %S" what model_name)
  in
  let* seed = Wire.int_field what "seed" fields in
  let* ops = Wire.int_field what "ops" fields in
  let* props = decode_props what fields in
  let* engine = decode_engine what fields in
  let* trace_out =
    if not record then Ok None
    else
      let* path = Wire.string_field what "trace_out" fields in
      Ok (Some path)
  in
  Ok (Check { model; seed; ops; props; engine; trace_out })

let decode_job what op fields =
  match op with
  | "check" -> decode_check what ~record:false fields
  | "record" -> decode_check what ~record:true fields
  | "recheck" ->
    let* trace = Wire.string_field what "trace" fields in
    let* props = decode_props what fields in
    let* workers = int_default what "workers" ~default:1 fields in
    let* retries = int_default what "retries" ~default:1 fields in
    Ok (Recheck { trace; props; workers; retries })
  | "campaign" ->
    let* manifest = Wire.field what "manifest" fields in
    let* workers = int_default what "workers" ~default:1 fields in
    let* retries =
      match List.assoc_opt "retries" fields with
      | None -> Ok None
      | Some (J.Int n) -> Ok (Some n)
      | Some _ -> Error (what ^ ".retries: expected an integer")
    in
    let* journal =
      match List.assoc_opt "journal" fields with
      | None -> Ok false
      | Some (J.Bool b) -> Ok b
      | Some _ -> Error (what ^ ".journal: expected a boolean")
    in
    Ok (Campaign { manifest; workers; retries; journal })
  | "qualify" ->
    let* duv_name = Wire.string_field what "duv" fields in
    let* duv =
      match Tabv_campaign.Campaign.duv_of_name duv_name with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "%s: unknown duv %S" what duv_name)
    in
    let* levels =
      let* v = Wire.field what "levels" fields in
      let* items = Wire.open_list (what ^ ".levels") v in
      Wire.map_result
        (fun item ->
          match item with
          | J.String name ->
            (match Tabv_campaign.Campaign.level_of_name name with
             | Some l -> Ok l
             | None -> Error (Printf.sprintf "%s: unknown level %S" what name))
          | _ -> Error (what ^ ".levels: expected strings"))
        items
    in
    let* seed = Wire.int_field what "seed" fields in
    let* ops = Wire.int_field what "ops" fields in
    let* workers = int_default what "workers" ~default:1 fields in
    let* retries = int_default what "retries" ~default:1 fields in
    Ok (Qualify { duv; levels; seed; ops; workers; retries })
  | other -> Error (Printf.sprintf "%s: unknown op %S" what other)

let request_of_json json =
  let what = "request" in
  let* fields = Wire.open_assoc what json in
  let* id = Wire.int_field what "id" fields in
  let* op = Wire.string_field what "op" fields in
  let* request =
    match op with
    | "ping" -> Ok (Control Ping)
    | "stats" -> Ok (Control Stats)
    | "invalidate" -> Ok (Control Invalidate)
    | "shutdown" -> Ok (Control Shutdown)
    | op ->
      let* job = decode_job what op fields in
      Ok (Job job)
  in
  Ok (id, request)

(* --- hello / events ------------------------------------------------ *)

let hello_json =
  J.Assoc
    [ ("hello", J.String hello_name); ("protocol", J.Int protocol_version) ]

let check_hello json =
  let what = "hello" in
  let* fields = Wire.open_assoc what json in
  let* name = Wire.string_field what "hello" fields in
  let* () =
    if name = hello_name then Ok ()
    else Error (Printf.sprintf "not a tabv-serve endpoint (hello %S)" name)
  in
  let* protocol = Wire.int_field what "protocol" fields in
  if protocol = protocol_version then Ok ()
  else
    Error
      (Printf.sprintf
         "serve protocol version mismatch: server speaks v%d, this client \
          speaks v%d"
         protocol protocol_version)

(* Server-to-client events.  [report] in a result event is the exact
   text a one-shot CLI run would have written to its --report-json
   file (trailing newline included) shipped as a JSON string — it is
   never re-encoded, so warm replies are byte-identical to cold ones
   and to the CLI by construction. *)
type event =
  | Accepted of { position : int }
  | Rejected of { retry_after_ms : int }
  | Started
  | Result of { ok : bool; warm : bool; report : string }
  | Error of { message : string }
  | Pong
  | Stats_reply of J.json
  | Invalidated of { entries : int }
  | Shutting_down

let event_json ~id event =
  let fields =
    match event with
    | Accepted { position } ->
      [ ("event", J.String "accepted"); ("position", J.Int position) ]
    | Rejected { retry_after_ms } ->
      [ ("event", J.String "rejected"); ("retry_after_ms", J.Int retry_after_ms) ]
    | Started -> [ ("event", J.String "started") ]
    | Result { ok; warm; report } ->
      [ ("event", J.String "result"); ("ok", J.Bool ok); ("warm", J.Bool warm);
        ("report", J.String report) ]
    | Error { message } ->
      [ ("event", J.String "error"); ("message", J.String message) ]
    | Pong -> [ ("event", J.String "pong") ]
    | Stats_reply metrics ->
      [ ("event", J.String "stats"); ("metrics", metrics) ]
    | Invalidated { entries } ->
      [ ("event", J.String "invalidated"); ("entries", J.Int entries) ]
    | Shutting_down -> [ ("event", J.String "shutting_down") ]
  in
  J.Assoc (("id", J.Int id) :: fields)

let event_of_json json =
  let what = "event" in
  let* fields = Wire.open_assoc what json in
  let* id = Wire.int_field what "id" fields in
  let* kind = Wire.string_field what "event" fields in
  let* event =
    match kind with
    | "accepted" ->
      let* position = Wire.int_field what "position" fields in
      Ok (Accepted { position })
    | "rejected" ->
      let* retry_after_ms = Wire.int_field what "retry_after_ms" fields in
      Ok (Rejected { retry_after_ms })
    | "started" -> Ok Started
    | "result" ->
      let* ok = Wire.bool_field what "ok" fields in
      let* warm = Wire.bool_field what "warm" fields in
      let* report = Wire.string_field what "report" fields in
      Ok (Result { ok; warm; report })
    | "error" ->
      let* message = Wire.string_field what "message" fields in
      Ok (Error { message })
    | "pong" -> Ok Pong
    | "stats" ->
      let* metrics = Wire.field what "metrics" fields in
      Ok (Stats_reply metrics)
    | "invalidated" ->
      let* entries = Wire.int_field what "entries" fields in
      Ok (Invalidated { entries })
    | "shutting_down" -> Ok Shutting_down
    | other -> Error (Printf.sprintf "%s: unknown event %S" what other)
  in
  Ok (id, event)
