(* Request execution: one serve job in, the exact one-shot CLI report
   out.

   The byte-identity contract of the service lives here.  Every job
   executes exactly like its CLI counterpart would in a fresh process:
   the calling domain's checker universe is reset first, the
   properties are built through [Tabv_duv.Models] (the same spec the
   CLI uses), and the report text is rendered with the same emitter
   plus the same trailing newline `tabv ... --report-json FILE` writes.
   The rendered bytes are what travels (and what the warm cache
   stores) — never re-encoded JSON.

   [execute] runs wherever the server's worker pool puts it: a worker
   domain (in-domain pool) or a worker subprocess (the registered
   ["serve_request"] op).  Both paths call exactly this function. *)

module J = Tabv_core.Report_json
module Models = Tabv_duv.Models
module Campaign = Tabv_campaign.Campaign
module Qualify = Tabv_campaign.Qualify
module Recheck = Tabv_campaign.Recheck
module Journal = Tabv_campaign.Journal
module Executor = Tabv_campaign.Executor

type outcome = {
  green : bool;  (* the CLI exit criterion of the request *)
  report : string;  (* exact --report-json file bytes *)
}

(* --- admission-time request identity ------------------------------- *)

(* Canonical fingerprint of a job: digest of its canonical request
   JSON.  Two requests with the same fingerprint are the same
   verification work (model, workload, properties, engine — everything
   that shapes the result travels in the request). *)
let fingerprint job =
  Digest.to_hex (Digest.string (J.to_string (Protocol.job_json job)))

(* Whether a warm cache may answer this job.  Excluded: record (must
   actually write its trace file), journaled campaigns (must actually
   append to their journal), and recheck (the result depends on trace
   file bytes the fingerprint cannot see). *)
let cacheable = function
  | Protocol.Check { trace_out = None; _ } -> true
  | Protocol.Check { trace_out = Some _; _ } -> false
  | Protocol.Recheck _ -> false
  | Protocol.Campaign { journal; _ } -> not journal
  | Protocol.Qualify _ -> true

(* The journal a journaled campaign request appends to, under the
   server's state directory — fingerprinted, so concurrent *distinct*
   campaigns never collide ({!Journal.state_path}).  The server rejects
   concurrent requests mapping to the same path at admission. *)
let campaign_journal_path ~state_dir job =
  match job with
  | Protocol.Campaign { manifest; workers = _; retries; journal = true } ->
    (match Campaign.manifest_of_json manifest with
     | Error _ -> None
     | Ok m ->
       let retries =
         match (retries, m.Campaign.manifest_retries) with
         | Some r, _ -> r
         | None, Some r -> r
         | None, None -> 1
       in
       let fingerprint =
         Campaign.fingerprint ~retries m.Campaign.manifest_jobs
       in
       Some
         (Journal.state_path ~dir:state_dir ~kind:Campaign.journal_kind
            ~fingerprint))
  | _ -> None

(* --- execution ----------------------------------------------------- *)

let render doc = J.to_string doc ^ "\n"

let parse_props = function
  | None -> Ok None
  | Some source ->
    (match Tabv_psl.Parser.file source with
     | properties -> Ok (Some properties)
     | exception Tabv_psl.Parser.Parse_error { line; col; message } ->
       Error (Printf.sprintf "props:%d:%d: %s" line col message))

let ( let* ) = Result.bind

let exec_check ~model ~seed ~ops ~props ~engine ~trace_out =
  let* user = parse_props props in
  let properties, grid_properties = Models.properties_for model user in
  let engine =
    match engine with
    | Some e -> e
    | None -> Tabv_sim.Kernel.get_default_engine ()
  in
  let* writer =
    match trace_out with
    | None -> Ok None
    | Some path ->
      if not (Models.supports_trace model) then
        Error
          (Printf.sprintf "%s records no trace (loosely-timed model)"
             (Models.name model))
      else
        let meta =
          { Tabv_trace.Meta.model = Models.name model; seed; ops;
            engine = Tabv_sim.Kernel.engine_name engine }
        in
        Ok (Some (Tabv_trace.Writer.create ~path meta))
  in
  let result =
    Fun.protect
      ~finally:(fun () -> Option.iter Tabv_trace.Writer.close writer)
      (fun () ->
        Models.run ?trace_writer:writer ~sim_engine:engine model ~seed ~ops
          ~properties ~grid_properties)
  in
  Ok
    {
      green = Tabv_duv.Testbench.total_failures result = 0;
      report = render (Models.verdict_report model ~seed ~ops result);
    }

let exec_recheck ~interrupted ~trace ~props ~workers ~retries =
  let* meta, trace_signals =
    match Recheck.probe trace with
    | probe -> Ok probe
    | exception Tabv_trace.Reader.Format_error { path; message; offset; valid_prefix } ->
      Error
        (Printf.sprintf "%s: %s (at byte %d; verified prefix %d bytes)" path
           message offset valid_prefix)
  in
  let* model =
    match Models.of_name meta.Tabv_trace.Meta.model with
    | Some model -> Ok model
    | None ->
      Error
        (Printf.sprintf "%s: recorded from unknown model %S" trace
           meta.Tabv_trace.Meta.model)
  in
  let* user = parse_props props in
  let properties, grid_properties = Models.properties_for model user in
  let* () =
    if grid_properties = [] then Ok ()
    else
      Error
        (Printf.sprintf
           "%d propert(ies) need full-grid transactions and cannot be \
            re-checked against a recorded trace"
           (List.length grid_properties))
  in
  let* () =
    if properties <> [] then Ok () else Error "no properties to re-check"
  in
  let* () =
    if trace_signals = [] then Ok ()
    else begin
      let missing =
        List.concat_map
          (fun p ->
            List.filter
              (fun s -> not (List.mem s trace_signals))
              (Tabv_psl.Property.signals p))
          properties
        |> List.sort_uniq compare
      in
      if missing = [] then Ok ()
      else
        Error
          (Printf.sprintf "%s: trace does not record signal(s) %s" trace
             (String.concat ", " missing))
    end
  in
  match
    Recheck.run ~interrupted ~workers ~retries ~trace properties
  with
  | result ->
    Ok
      {
        green = Recheck.total_failures result = 0;
        report = render (Recheck.report_json result);
      }
  | exception Tabv_trace.Reader.Format_error { path; message; offset; valid_prefix } ->
    Error
      (Printf.sprintf "%s: %s (at byte %d; verified prefix %d bytes)" path
         message offset valid_prefix)
  | exception Recheck.Chunk_failed message ->
    Error ("chunk failed: " ^ message)

let exec_campaign ~interrupted ~state_dir ~manifest ~workers ~retries ~journal
    =
  let* m = Campaign.manifest_of_json manifest in
  let jobs = m.Campaign.manifest_jobs in
  let* () = if jobs <> [] then Ok () else Error "empty campaign (no jobs)" in
  let* () =
    let rec validate = function
      | [] -> Ok ()
      | job :: rest ->
        let* () = Campaign.validate job in
        validate rest
    in
    validate jobs
  in
  let retries =
    match (retries, m.Campaign.manifest_retries) with
    | Some r, _ -> r
    | None, Some r -> r
    | None, None -> 1
  in
  let* journal =
    if not journal then Ok None
    else
      match state_dir with
      | None -> Error "this server has no state directory (journal requests \
                       need --state-dir)"
      | Some dir ->
        let path =
          Journal.state_path ~dir ~kind:Campaign.journal_kind
            ~fingerprint:(Campaign.fingerprint ~retries jobs)
        in
        (* resume:true doubles as crash recovery: a journal left by a
           previous daemon's in-flight campaign is replayed instead of
           re-run, and a missing file is simply a fresh journal. *)
        (match
           Journal.open_ ~path ~kind:Campaign.journal_kind
             ~fingerprint:(Campaign.fingerprint ~retries jobs) ~resume:true ()
         with
         | Ok j -> Ok (Some j)
         | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  in
  let summary =
    Fun.protect
      ~finally:(fun () -> Option.iter Journal.close journal)
      (fun () -> Campaign.run ~workers ~retries ?journal ~interrupted jobs)
  in
  let* () =
    if summary.Campaign.pending = 0 then Ok ()
    else
      Error
        (Printf.sprintf "interrupted with %d job(s) pending"
           summary.Campaign.pending)
  in
  (* A completed journaled campaign's journal has served its purpose;
     removing it keeps the state directory from accumulating one file
     per historical campaign (crash recovery only needs journals of
     campaigns that did NOT complete). *)
  (match journal with
   | Some _ ->
     (match state_dir with
      | Some dir ->
        let path =
          Journal.state_path ~dir ~kind:Campaign.journal_kind
            ~fingerprint:(Campaign.fingerprint ~retries jobs)
        in
        (try Sys.remove path with Sys_error _ -> ())
      | None -> ())
   | None -> ());
  Ok
    {
      green = Campaign.all_green summary;
      report = render (Campaign.report_json summary);
    }

let exec_qualify ~interrupted ~duv ~levels ~seed ~ops ~workers ~retries =
  match
    Qualify.run ~workers ~retries ~interrupted ~duv ~levels ~seed ~ops ()
  with
  | report ->
    Ok { green = Qualify.ok report; report = render (Qualify.report_json report) }
  | exception Invalid_argument msg -> Error msg
  | exception Qualify.Interrupted -> Error "interrupted before the pool drained"

(* Execute one job in the calling domain (fresh checker universe
   first — one-shot CLI semantics).  [Error] is a request-level
   failure (bad props, bad manifest, missing trace...); unexpected
   exceptions propagate for the caller to classify.

   A failed durable-IO primitive (ENOSPC on a journal append, EIO on
   a trace fsync...) is a request-level failure too, not a daemon
   bug: the client gets an honest error event naming the operation
   and path, the journaled work already fsynced stays on disk for the
   next resume, and the daemon keeps serving. *)
let execute ?(interrupted = fun () -> false) ~state_dir job =
  Tabv_checker.Progression.reset_universe ();
  match
    match job with
    | Protocol.Check { model; seed; ops; props; engine; trace_out } ->
      exec_check ~model ~seed ~ops ~props ~engine ~trace_out
    | Protocol.Recheck { trace; props; workers; retries } ->
      exec_recheck ~interrupted ~trace ~props ~workers ~retries
    | Protocol.Campaign { manifest; workers; retries; journal } ->
      exec_campaign ~interrupted ~state_dir ~manifest ~workers ~retries ~journal
    | Protocol.Qualify { duv; levels; seed; ops; workers; retries } ->
      exec_qualify ~interrupted ~duv ~levels ~seed ~ops ~workers ~retries
  with
  | result -> result
  | exception Tabv_core.Io.Io_error { op; path; error } ->
    Error
      (Printf.sprintf "storage failure: %s on %s: %s (journaled work is \
                       preserved; fix the disk and resubmit)"
         op path (Unix.error_message error))

(* --- the subprocess worker op -------------------------------------- *)

(* [{"op":"serve_request","state_dir":..?,"request":{..}}] — execute
   one serve job inside a [_worker] subprocess.  The reply payload is
   [{"green":b,"report":text}]; request-level failures use the
   worker's standard [{"error":..}] path (via Failure). *)
let worker_op = "serve_request"

let decode_worker_request json =
  let ( let* ) = Result.bind in
  let* fields = Tabv_campaign.Wire.open_assoc worker_op json in
  let* state_dir =
    match List.assoc_opt "state_dir" fields with
    | None -> Ok None
    | Some (J.String dir) -> Ok (Some dir)
    | Some _ -> Error (worker_op ^ ".state_dir: expected a string")
  in
  let* request =
    match List.assoc_opt "request" fields with
    | Some v -> Ok v
    | None -> Error (worker_op ^ ": missing key \"request\"")
  in
  let* job =
    (* The job travels as a full request object with a dummy id. *)
    let* id_req = Protocol.request_of_json request in
    match id_req with
    | _, Protocol.Job job -> Ok job
    | _, Protocol.Control _ -> Error (worker_op ^ ": control ops do not run in workers")
  in
  Ok
    (fun () ->
      match execute ~state_dir job with
      | Ok { green; report } ->
        J.Assoc [ ("green", J.Bool green); ("report", J.String report) ]
      | Error msg -> failwith msg)

let worker_request_json ~state_dir job =
  J.Assoc
    ([ ("op", J.String worker_op) ]
    @ (match state_dir with
       | None -> []
       | Some dir -> [ ("state_dir", J.String dir) ])
    @ [ ("request", Protocol.request_json ~id:0 (Protocol.Job job)) ])

let decode_worker_reply json =
  let ( let* ) = Result.bind in
  let what = worker_op ^ " reply" in
  let* fields = Tabv_campaign.Wire.open_assoc what json in
  let* green = Tabv_campaign.Wire.bool_field what "green" fields in
  let* report = Tabv_campaign.Wire.string_field what "report" fields in
  Ok { green; report }

(* Make the [_worker] serve loop understand serve requests.  Every
   coordinator binary that can host a serve daemon (or its tests)
   calls this before {!Tabv_campaign.Worker.main}. *)
let register_worker_op () =
  Tabv_campaign.Worker.register_op worker_op decode_worker_request
