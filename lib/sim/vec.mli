(** Growable array queue used by the compiled engine's scheduling hot
    paths: push-only writes into a preallocated backing array, indexed
    FIFO draining, and allocation-free steady state (the array only
    grows, never shrinks).  Cleared slots are overwritten with the
    [dummy] element so drained closures are not retained. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** Random access by absolute index in [\[head t, bound t)]. *)
val get : 'a t -> int -> 'a

val head : 'a t -> int
val bound : 'a t -> int

(** Move the drain cursor past the current head element. *)
val advance_head : 'a t -> unit

(** Take the head element and advance past it (unchecked: the caller
    guards with {!is_empty}).  The vacated slot is scrubbed. *)
val pop : 'a t -> 'a

val clear : 'a t -> unit

(** [drain t f] applies [f] to every element in FIFO order, including
    elements pushed while draining, then clears [t]. *)
val drain : 'a t -> ('a -> unit) -> unit

(** [iter t f] applies [f] to the undrained elements without consuming
    them (elements pushed during iteration are not visited). *)
val iter : 'a t -> ('a -> unit) -> unit

(** Append every undrained element of [src] onto [dst], then clear
    [src] (the vector analogue of [Queue.transfer]). *)
val transfer : src:'a t -> dst:'a t -> unit
