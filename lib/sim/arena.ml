(* Dense signal arena.

   The elaborated design's signals do not live in per-signal records:
   each typed signal claims one slot of a flat pool — parallel
   [current] and [next] arrays plus a dirty flag array marking slots
   with a scheduled update.  The pools are monomorphic ([bool], [int],
   [int64] as unboxed-element arrays), so a signal read is one array
   load and an update is a load/compare/store with no allocation and
   no polymorphic comparison.

   The dirty flags are one [bool] array element — one word — per slot,
   not a packed bitset: partition-pool workers set and clear flags of
   their own partition's slots concurrently, and disjoint plain word
   stores are race-free under the OCaml memory model, whereas packed
   bits would need a read-modify-write that can lose a neighbouring
   partition's just-set bit.

   The arena stores values and pending-update flags only; scheduling
   (which slot updates in which delta) stays with the kernel, and the
   [Signal] front-end keeps the per-signal metadata (name, change
   event, interposed transform). *)

type 'a pool = {
  mutable cur : 'a array;
  mutable nxt : 'a array;
  mutable dirty : bool array;  (* per slot: update scheduled *)
  mutable len : int;
  p_dummy : 'a;
}

type t = {
  bools : bool pool;
  ints : int pool;
  int64s : int64 pool;
}

let make_pool ?(capacity = 32) p_dummy =
  {
    cur = Array.make capacity p_dummy;
    nxt = Array.make capacity p_dummy;
    dirty = Array.make capacity false;
    len = 0;
    p_dummy;
  }

let create () =
  { bools = make_pool false; ints = make_pool 0; int64s = make_pool 0L }

let bools t = t.bools
let ints t = t.ints
let int64s t = t.int64s

let alloc pool init =
  let cap = Array.length pool.cur in
  if pool.len = cap then begin
    let grow a =
      let g = Array.make (2 * cap) pool.p_dummy in
      Array.blit a 0 g 0 cap;
      g
    in
    pool.cur <- grow pool.cur;
    pool.nxt <- grow pool.nxt;
    let bits = Array.make (2 * cap) false in
    Array.blit pool.dirty 0 bits 0 (Array.length pool.dirty);
    pool.dirty <- bits
  end;
  let slot = pool.len in
  pool.len <- pool.len + 1;
  pool.cur.(slot) <- init;
  pool.nxt.(slot) <- init;
  slot

let size pool = pool.len

let get pool slot = Array.unsafe_get pool.cur slot
let set_cur pool slot v = Array.unsafe_set pool.cur slot v
let get_next pool slot = Array.unsafe_get pool.nxt slot
let set_next pool slot v = Array.unsafe_set pool.nxt slot v

let dirty pool slot = Array.unsafe_get pool.dirty slot
let set_dirty pool slot = Array.unsafe_set pool.dirty slot true
let clear_dirty pool slot = Array.unsafe_set pool.dirty slot false
