type _ Effect.t +=
  | Wait_ns : Kernel.t * int -> unit Effect.t
  | Wait_event : Event.t -> unit Effect.t
  | Wait_any : Event.t list -> unit Effect.t

let method_process kernel ~name ?(initialize = true) ~sensitivity body =
  let body () =
    Kernel.set_label kernel name;
    body ()
  in
  List.iter (fun ev -> Event.on_event ev body) sensitivity;
  if initialize then Kernel.schedule_now kernel body

let spawn kernel ~name body =
  let open Effect.Deep in
  (* Every resume goes through [label]: the kernel always knows which
     thread process is running, so a contained crash can be attributed
     by name in the [Process_crashed] diagnosis. *)
  let label f () =
    Kernel.set_label kernel name;
    f ()
  in
  let start () =
    match_with body ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait_ns (k, delay) ->
              Some
                (fun (cont : (a, _) continuation) ->
                  Kernel.schedule_after k ~delay (label (fun () -> continue cont ())))
            | Wait_event ev ->
              Some
                (fun (cont : (a, _) continuation) ->
                  (* Blocked on an event: counted so a quiescent end
                     with pending waiters diagnoses as [Starved]. *)
                  let k = Event.kernel ev in
                  Kernel.add_waiter k;
                  Event.once ev
                    (label (fun () ->
                       Kernel.remove_waiter k;
                       continue cont ())))
            | Wait_any events ->
              Some
                (fun (cont : (a, _) continuation) ->
                  (* The continuation may resume only once; later
                     notifications of the other events are ignored.
                     One waiter is counted for the whole group and
                     released on the first resume. *)
                  let k = Event.kernel (List.hd events) in
                  Kernel.add_waiter k;
                  let resumed = ref false in
                  List.iter
                    (fun ev ->
                      Event.once ev
                        (label (fun () ->
                           if not !resumed then begin
                             resumed := true;
                             Kernel.remove_waiter k;
                             continue cont ()
                           end)))
                    events)
            | _ -> None);
      }
  in
  Kernel.schedule_now kernel (label start)

let wait_ns kernel delay =
  if delay < 0 then invalid_arg "Process.wait_ns: negative delay";
  Effect.perform (Wait_ns (kernel, delay))

let wait_event ev = Effect.perform (Wait_event ev)

let wait_any events =
  if events = [] then invalid_arg "Process.wait_any: empty event list";
  Effect.perform (Wait_any events)

let rec wait_until ~on predicate =
  if predicate () then ()
  else begin
    wait_event on;
    wait_until ~on predicate
  end
