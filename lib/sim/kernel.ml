(* Array-backed binary min-heap on (time, seq): earliest time first,
   FIFO among equal times. *)
module Heap = struct
  type entry = {
    time : int;
    seq : int;
    action : unit -> unit;
  }

  type t = {
    mutable data : entry array;
    mutable size : int;
  }

  let dummy = { time = 0; seq = 0; action = ignore }
  let create () = { data = Array.make 64 dummy; size = 0 }

  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h entry =
    if h.size = Array.length h.data then begin
      let grown = Array.make (2 * h.size) dummy in
      Array.blit h.data 0 grown 0 h.size;
      h.data <- grown
    end;
    let rec up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if less h.data.(i) h.data.(parent) then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(parent);
          h.data.(parent) <- tmp;
          up parent
        end
      end
    in
    h.data.(h.size) <- entry;
    h.size <- h.size + 1;
    up (h.size - 1)

  let peek h = if h.size = 0 then None else Some h.data.(0)

  let pop h =
    match peek h with
    | None -> None
    | Some top ->
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy;
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest = ref i in
        if left < h.size && less h.data.(left) h.data.(!smallest) then smallest := left;
        if right < h.size && less h.data.(right) h.data.(!smallest) then smallest := right;
        if !smallest <> i then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0;
      Some top
end

type diagnosis =
  | Completed
  | Starved of { waiting : int }
  | Livelock of { time : int; delta_cycles : int }
  | Budget_exhausted of { steps : int }
  | Process_crashed of { name : string; error : string }

type guard = {
  max_delta_cycles : int option;
  max_steps : int option;
  contain_crashes : bool;
}

let default_guard =
  { max_delta_cycles = Some 1_000_000; max_steps = None; contain_crashes = false }

let unguarded = { max_delta_cycles = None; max_steps = None; contain_crashes = false }

type t = {
  mutable now : int;
  mutable delta : int;
  timed : Heap.t;
  runnable : (unit -> unit) Queue.t;
  next_delta : (unit -> unit) Queue.t;
  mutable updates : (unit -> unit) list;
  mutable seq : int;
  mutable stopping : bool;
  mutable running : bool;
  mutable activations : int;
  mutable deltas : int;
  mutable time_advances : int;
  mutable update_actions : int;
  mutable diagnosis : diagnosis;
  mutable waiters : int;
  mutable label : string;
  mutable watchdog_trips : int;
  mutable contained_crashes : int;
  mutable crash : (string * string) option;  (* first contained crash *)
  metrics : Tabv_obs.Metrics.t;
  eval_timer : Tabv_obs.Metrics.timer;
  update_timer : Tabv_obs.Metrics.timer;
  advance_timer : Tabv_obs.Metrics.timer;
}

let create ?metrics () =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Tabv_obs.Metrics.disabled ()
  in
  let t =
    {
      now = 0;
      delta = 0;
      timed = Heap.create ();
      runnable = Queue.create ();
      next_delta = Queue.create ();
      updates = [];
      seq = 0;
      stopping = false;
      running = false;
      activations = 0;
      deltas = 0;
      time_advances = 0;
      update_actions = 0;
      diagnosis = Completed;
      waiters = 0;
      label = "";
      watchdog_trips = 0;
      contained_crashes = 0;
      crash = None;
      metrics;
      eval_timer = Tabv_obs.Metrics.timer metrics "kernel.eval_phase";
      update_timer = Tabv_obs.Metrics.timer metrics "kernel.update_phase";
      advance_timer = Tabv_obs.Metrics.timer metrics "kernel.advance_phase";
    }
  in
  (* The kernel's own counters stay plain mutable ints on the hot
     path; the registry sees them through pull probes, which only cost
     at snapshot time. *)
  let open Tabv_obs.Metrics in
  probe metrics "kernel.activations" (fun () -> t.activations);
  probe metrics "kernel.delta_cycles" (fun () -> t.deltas);
  probe metrics "kernel.time_advances" (fun () -> t.time_advances);
  probe metrics "kernel.update_actions" (fun () -> t.update_actions);
  probe metrics "kernel.timed_scheduled" (fun () -> t.seq);
  probe metrics "kernel.sim_time_ns" ~combine:`Max (fun () -> t.now);
  probe metrics "kernel.watchdog_trips" (fun () -> t.watchdog_trips);
  probe metrics "kernel.contained_crashes" (fun () -> t.contained_crashes);
  probe metrics "kernel.blocked_waiters" ~combine:`Max (fun () -> t.waiters);
  t

let metrics t = t.metrics

let now t = t.now
let delta t = t.delta

let schedule_at t ~time action =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Kernel.schedule_at: time %d is in the past (now %d)" time t.now);
  t.seq <- t.seq + 1;
  Heap.push t.timed { Heap.time; seq = t.seq; action }

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Kernel.schedule_after: negative delay";
  schedule_at t ~time:(t.now + delay) action

let schedule_now t action = Queue.add action t.runnable
let schedule_next_delta t action = Queue.add action t.next_delta
let request_update t action = t.updates <- action :: t.updates
let stop t = t.stopping <- true
let add_waiter t = t.waiters <- t.waiters + 1
let remove_waiter t = t.waiters <- t.waiters - 1
let waiting_count t = t.waiters
let set_label t name = t.label <- name

let run ?until ?(guard = default_guard) t =
  if t.running then invalid_arg "Kernel.run: already running";
  t.running <- true;
  t.stopping <- false;
  t.crash <- None;
  t.diagnosis <- Completed;
  let steps0 = t.time_advances in
  (* A tripped watchdog ends the run gracefully: the verdict is
     recorded here and surfaced through {!last_diagnosis}. *)
  let tripped = ref None in
  let horizon_ok time =
    match until with
    | None -> true
    | Some h -> time <= h
  in
  let rec loop () =
    if t.stopping || !tripped <> None then ()
    else begin
      (* Evaluation phase. *)
      Tabv_obs.Metrics.start t.eval_timer;
      if guard.contain_crashes then
        while not (Queue.is_empty t.runnable) && not t.stopping do
          let action = Queue.pop t.runnable in
          t.activations <- t.activations + 1;
          try action ()
          with e ->
            (* Contain the crash: the raising process is dead (its
               continuation is lost with the exception), the rest of
               the design keeps simulating, and the first crash is
               attributed to the last labelled process. *)
            t.contained_crashes <- t.contained_crashes + 1;
            if t.crash = None then begin
              let name = if t.label = "" then "<anonymous>" else t.label in
              t.crash <- Some (name, Printexc.to_string e)
            end
        done
      else
        while not (Queue.is_empty t.runnable) && not t.stopping do
          let action = Queue.pop t.runnable in
          t.activations <- t.activations + 1;
          action ()
        done;
      Tabv_obs.Metrics.stop t.eval_timer;
      if t.stopping then ()
      else begin
        (* Update phase (FIFO order of requests). *)
        Tabv_obs.Metrics.start t.update_timer;
        let updates = List.rev t.updates in
        t.updates <- [];
        List.iter
          (fun u ->
            t.update_actions <- t.update_actions + 1;
            u ())
          updates;
        Tabv_obs.Metrics.stop t.update_timer;
        (* Delta notification phase. *)
        if not (Queue.is_empty t.next_delta) then begin
          match guard.max_delta_cycles with
          | Some cap when t.delta >= cap ->
            (* Livelock watchdog: the instant never converges. *)
            t.watchdog_trips <- t.watchdog_trips + 1;
            Queue.clear t.next_delta;
            tripped := Some (Livelock { time = t.now; delta_cycles = t.delta })
          | Some _ | None ->
            Queue.transfer t.next_delta t.runnable;
            t.delta <- t.delta + 1;
            t.deltas <- t.deltas + 1;
            loop ()
        end
        else begin
          (* Advance time to the next timed action, if any. *)
          Tabv_obs.Metrics.start t.advance_timer;
          let advanced =
            match Heap.peek t.timed with
            | Some { Heap.time; _ } when horizon_ok time ->
              (match guard.max_steps with
               | Some cap when t.time_advances - steps0 >= cap ->
                 (* Step-budget watchdog: too many time advances. *)
                 t.watchdog_trips <- t.watchdog_trips + 1;
                 tripped := Some (Budget_exhausted { steps = cap });
                 false
               | Some _ | None ->
                 t.now <- time;
                 t.delta <- 0;
                 t.time_advances <- t.time_advances + 1;
                 let rec drain () =
                   match Heap.peek t.timed with
                   | Some entry when entry.Heap.time = time ->
                     ignore (Heap.pop t.timed);
                     Queue.add entry.Heap.action t.runnable;
                     drain ()
                   | Some _ | None -> ()
                 in
                 drain ();
                 true)
            | Some _ | None -> false
          in
          Tabv_obs.Metrics.stop t.advance_timer;
          if advanced then loop ()
        end
      end
    end
  in
  Fun.protect ~finally:(fun () -> t.running <- false) (fun () -> loop ());
  let ended_by_horizon =
    match Heap.peek t.timed with
    | Some e -> not (horizon_ok e.Heap.time)
    | None -> false
  in
  t.diagnosis <-
    (match t.crash with
    | Some (name, error) -> Process_crashed { name; error }
    | None -> (
      match !tripped with
      | Some d -> d
      | None ->
        if (not t.stopping) && (not ended_by_horizon) && t.waiters > 0 then
          (* Quiescent end with processes still blocked on events that
             can no longer fire: event starvation, not completion. *)
          Starved { waiting = t.waiters }
        else Completed));
  t.now

let last_diagnosis t = t.diagnosis

let diagnosis_to_string = function
  | Completed -> "completed"
  | Starved { waiting } -> Printf.sprintf "starved(waiting=%d)" waiting
  | Livelock { time; delta_cycles } ->
    Printf.sprintf "livelock(time=%d,delta_cycles=%d)" time delta_cycles
  | Budget_exhausted { steps } -> Printf.sprintf "budget_exhausted(steps=%d)" steps
  | Process_crashed { name; error } ->
    Printf.sprintf "process_crashed(%s: %s)" name error

let pp_diagnosis ppf d = Format.pp_print_string ppf (diagnosis_to_string d)

let activation_count t = t.activations
let delta_count t = t.deltas
let time_advance_count t = t.time_advances
let update_action_count t = t.update_actions
let watchdog_trip_count t = t.watchdog_trips
let contained_crash_count t = t.contained_crashes
