(* Array-backed binary min-heap on (time, seq): earliest time first,
   FIFO among equal times. *)
module Heap = struct
  type entry = {
    time : int;
    seq : int;
    action : unit -> unit;
  }

  type t = {
    mutable data : entry array;
    mutable size : int;
  }

  let dummy = { time = 0; seq = 0; action = ignore }
  let create () = { data = Array.make 64 dummy; size = 0 }

  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h entry =
    if h.size = Array.length h.data then begin
      let grown = Array.make (2 * h.size) dummy in
      Array.blit h.data 0 grown 0 h.size;
      h.data <- grown
    end;
    let rec up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if less h.data.(i) h.data.(parent) then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(parent);
          h.data.(parent) <- tmp;
          up parent
        end
      end
    in
    h.data.(h.size) <- entry;
    h.size <- h.size + 1;
    up (h.size - 1)

  let peek h = if h.size = 0 then None else Some h.data.(0)

  let pop h =
    match peek h with
    | None -> None
    | Some top ->
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy;
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest = ref i in
        if left < h.size && less h.data.(left) h.data.(!smallest) then smallest := left;
        if right < h.size && less h.data.(right) h.data.(!smallest) then smallest := right;
        if !smallest <> i then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0;
      Some top
end

(* --- engine selection ------------------------------------------------ *)

type engine =
  | Classic
  | Compiled

let engine_name = function
  | Classic -> "classic"
  | Compiled -> "compiled"

let engine_of_string = function
  | "classic" -> Ok Classic
  | "compiled" -> Ok Compiled
  | s -> Error (Printf.sprintf "unknown engine %S (expected classic or compiled)" s)

(* Process-global default, so frontends (CLI flags, campaign workers)
   select the engine once and every kernel created afterwards follows. *)
let default_engine = ref Classic
let set_default_engine e = default_engine := e
let get_default_engine () = !default_engine

type diagnosis =
  | Completed
  | Starved of { waiting : int }
  | Livelock of { time : int; delta_cycles : int }
  | Budget_exhausted of { steps : int }
  | Process_crashed of { name : string; error : string }

type guard = {
  max_delta_cycles : int option;
  max_steps : int option;
  contain_crashes : bool;
}

let default_guard =
  { max_delta_cycles = Some 1_000_000; max_steps = None; contain_crashes = false }

let unguarded = { max_delta_cycles = None; max_steps = None; contain_crashes = false }

(* --- partition pool -------------------------------------------------- *)

(* Per-partition outbound staging: a worker draining a partition's
   bucket may notify events (next-delta scheduling) and request signal
   updates; both are staged here and merged into the kernel queues — in
   partition order, hence deterministically — after the barrier. *)
type staging = {
  sg_next_f : (unit -> unit) Vec.t;
  sg_next_p : int Vec.t;
  sg_upd : (unit -> unit) Vec.t;
}

type pool = {
  p_partitions : int;
  p_buckets : (unit -> unit) Vec.t array;  (* pending actions, per partition *)
  p_stagings : staging array;
  p_mutex : Mutex.t;
  p_work : Condition.t;
  p_done : Condition.t;
  mutable p_jobs : int list;  (* partition ids awaiting a worker *)
  mutable p_outstanding : int;
  mutable p_shutdown : bool;
  mutable p_error : exn option;  (* first worker exception, re-raised on main *)
  mutable p_domains : unit Domain.t list;
}

(* Which staging record (if any) the current domain writes to.  [None]
   on the main domain, set around each bucket drain on workers. *)
let staging_key : staging option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

type t = {
  mutable now : int;
  mutable delta : int;
  timed : Heap.t;
  (* classic (dynamic reference engine) queues *)
  runnable : (unit -> unit) Queue.t;
  next_delta : (unit -> unit) Queue.t;
  mutable updates : (unit -> unit) list;
  (* compiled engine queues: paired action/partition vectors *)
  crun_f : (unit -> unit) Vec.t;
  crun_p : int Vec.t;
  cnext_f : (unit -> unit) Vec.t;
  cnext_p : int Vec.t;
  mutable cupd : (unit -> unit) Vec.t;
  mutable cupd_spare : (unit -> unit) Vec.t;
  engine : engine;
  arena : Arena.t;
  mutable pre_run : (unit -> unit) list;  (* reversed registration order *)
  mutable pool : pool option;
  mutable seq : int;
  mutable stopping : bool;
  mutable running : bool;
  mutable containing : bool;  (* running with [contain_crashes]? *)
  mutable activations : int;
  mutable deltas : int;
  mutable time_advances : int;
  mutable update_actions : int;
  mutable diagnosis : diagnosis;
  mutable waiters : int;
  mutable label : string;
  mutable watchdog_trips : int;
  mutable contained_crashes : int;
  mutable crash : (string * string) option;  (* first contained crash *)
  metrics : Tabv_obs.Metrics.t;
  eval_timer : Tabv_obs.Metrics.timer;
  update_timer : Tabv_obs.Metrics.timer;
  advance_timer : Tabv_obs.Metrics.timer;
}

let create ?metrics ?engine () =
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Tabv_obs.Metrics.disabled ()
  in
  let engine =
    match engine with
    | Some e -> e
    | None -> !default_engine
  in
  let t =
    {
      now = 0;
      delta = 0;
      timed = Heap.create ();
      runnable = Queue.create ();
      next_delta = Queue.create ();
      updates = [];
      crun_f = Vec.create ~dummy:ignore ();
      crun_p = Vec.create ~dummy:(-1) ();
      cnext_f = Vec.create ~dummy:ignore ();
      cnext_p = Vec.create ~dummy:(-1) ();
      cupd = Vec.create ~dummy:ignore ();
      cupd_spare = Vec.create ~dummy:ignore ();
      engine;
      arena = Arena.create ();
      pre_run = [];
      pool = None;
      seq = 0;
      stopping = false;
      running = false;
      containing = false;
      activations = 0;
      deltas = 0;
      time_advances = 0;
      update_actions = 0;
      diagnosis = Completed;
      waiters = 0;
      label = "";
      watchdog_trips = 0;
      contained_crashes = 0;
      crash = None;
      metrics;
      eval_timer = Tabv_obs.Metrics.timer metrics "kernel.eval_phase";
      update_timer = Tabv_obs.Metrics.timer metrics "kernel.update_phase";
      advance_timer = Tabv_obs.Metrics.timer metrics "kernel.advance_phase";
    }
  in
  (* The kernel's own counters stay plain mutable ints on the hot
     path; the registry sees them through pull probes, which only cost
     at snapshot time. *)
  let open Tabv_obs.Metrics in
  probe metrics "kernel.activations" (fun () -> t.activations);
  probe metrics "kernel.delta_cycles" (fun () -> t.deltas);
  probe metrics "kernel.time_advances" (fun () -> t.time_advances);
  probe metrics "kernel.update_actions" (fun () -> t.update_actions);
  probe metrics "kernel.timed_scheduled" (fun () -> t.seq);
  probe metrics "kernel.sim_time_ns" ~combine:`Max (fun () -> t.now);
  probe metrics "kernel.watchdog_trips" (fun () -> t.watchdog_trips);
  probe metrics "kernel.contained_crashes" (fun () -> t.contained_crashes);
  probe metrics "kernel.blocked_waiters" ~combine:`Max (fun () -> t.waiters);
  t

let metrics t = t.metrics
let engine t = t.engine
let is_compiled t = t.engine = Compiled
let arena t = t.arena
let add_pre_run_hook t f = t.pre_run <- f :: t.pre_run

let now t = t.now
let delta t = t.delta

let schedule_at t ~time action =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Kernel.schedule_at: time %d is in the past (now %d)" time t.now);
  t.seq <- t.seq + 1;
  Heap.push t.timed { Heap.time; seq = t.seq; action }

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Kernel.schedule_after: negative delay";
  schedule_at t ~time:(t.now + delay) action

(* Serial compiled runs keep the partition-tag vectors empty: tags
   only matter to the pooled dispatch loop, so the common case pays a
   single vector push per scheduled action.  [install_pool] re-aligns
   the tag vectors before the first pooled delta. *)
let schedule_now t action =
  match t.engine with
  | Classic -> Queue.add action t.runnable
  | Compiled ->
    Vec.push t.crun_f action;
    (match t.pool with
     | None -> ()
     | Some _ -> Vec.push t.crun_p (-1))

let schedule_next_delta_part t ~part action =
  match t.engine with
  | Classic -> Queue.add action t.next_delta
  | Compiled -> (
    match t.pool with
    | None -> Vec.push t.cnext_f action
    | Some _ -> (
      match !(Domain.DLS.get staging_key) with
      | Some sg ->
        Vec.push sg.sg_next_f action;
        Vec.push sg.sg_next_p part
      | None ->
        Vec.push t.cnext_f action;
        Vec.push t.cnext_p part))

let schedule_next_delta t action = schedule_next_delta_part t ~part:(-1) action

(* One call per event fire instead of one per subscriber: the engine
   and pool dispatch is hoisted out of the fan-out loop.  [fs]/[parts]
   are the event's registration-ordered subscriber arrays, [n] the
   live prefix. *)
let schedule_next_delta_batch t fs parts n =
  match t.engine with
  | Classic ->
    for i = 0 to n - 1 do
      Queue.add (Array.unsafe_get fs i) t.next_delta
    done
  | Compiled -> (
    match t.pool with
    | None ->
      let v = t.cnext_f in
      for i = 0 to n - 1 do
        Vec.push v (Array.unsafe_get fs i)
      done
    | Some _ -> (
      match !(Domain.DLS.get staging_key) with
      | Some sg ->
        for i = 0 to n - 1 do
          Vec.push sg.sg_next_f (Array.unsafe_get fs i);
          Vec.push sg.sg_next_p (Array.unsafe_get parts i)
        done
      | None ->
        for i = 0 to n - 1 do
          Vec.push t.cnext_f (Array.unsafe_get fs i);
          Vec.push t.cnext_p (Array.unsafe_get parts i)
        done))

let request_update t action =
  match t.engine with
  | Classic -> t.updates <- action :: t.updates
  | Compiled -> (
    match t.pool with
    | None -> Vec.push t.cupd action
    | Some _ -> (
      match !(Domain.DLS.get staging_key) with
      | Some sg -> Vec.push sg.sg_upd action
      | None -> Vec.push t.cupd action))

let stop t = t.stopping <- true
let stopping t = t.stopping

(* Block-runner hooks (see {!Elab}): a fused activation block replays
   several process bodies from one scheduled action, so it maintains
   the per-activation bookkeeping the evaluation loop would otherwise
   do — one [add_activation] per extra body, crash containment through
   [containing]/[record_crash] with the same attribution as the
   in-loop handler. *)
let containing t = t.containing
let add_activation t = t.activations <- t.activations + 1

let record_crash t e =
  t.contained_crashes <- t.contained_crashes + 1;
  if t.crash = None then begin
    let name = if t.label = "" then "<anonymous>" else t.label in
    t.crash <- Some (name, Printexc.to_string e)
  end

let add_waiter t = t.waiters <- t.waiters + 1
let remove_waiter t = t.waiters <- t.waiters - 1
let waiting_count t = t.waiters
let set_label t name = t.label <- name

(* --- partition pool management --------------------------------------- *)

let pool_worker pool () =
  let slot = Domain.DLS.get staging_key in
  let rec loop () =
    Mutex.lock pool.p_mutex;
    while pool.p_jobs = [] && not pool.p_shutdown do
      Condition.wait pool.p_work pool.p_mutex
    done;
    match pool.p_jobs with
    | [] -> Mutex.unlock pool.p_mutex  (* shutdown *)
    | p :: rest ->
      pool.p_jobs <- rest;
      Mutex.unlock pool.p_mutex;
      slot := Some pool.p_stagings.(p);
      (try Vec.drain pool.p_buckets.(p) (fun action -> action ())
       with e ->
         Vec.clear pool.p_buckets.(p);
         Mutex.lock pool.p_mutex;
         (match pool.p_error with
          | None -> pool.p_error <- Some e
          | Some _ -> ());
         Mutex.unlock pool.p_mutex);
      slot := None;
      Mutex.lock pool.p_mutex;
      pool.p_outstanding <- pool.p_outstanding - 1;
      if pool.p_outstanding = 0 && pool.p_jobs = [] then
        Condition.signal pool.p_done;
      Mutex.unlock pool.p_mutex;
      loop ()
  in
  loop ()

let install_pool t ~domains ~partitions =
  (match t.pool with
   | Some _ -> invalid_arg "Kernel.install_pool: pool already installed"
   | None -> ());
  if t.running then invalid_arg "Kernel.install_pool: kernel is running";
  if t.engine <> Compiled then
    invalid_arg "Kernel.install_pool: the compiled engine is required";
  if Tabv_obs.Metrics.enabled t.metrics then
    invalid_arg
      "Kernel.install_pool: metrics must be disabled (push counters are not \
       domain-safe)";
  if partitions < 2 then
    invalid_arg "Kernel.install_pool: at least 2 partitions are required";
  if domains < 1 then invalid_arg "Kernel.install_pool: at least 1 domain";
  let pool =
    {
      p_partitions = partitions;
      p_buckets = Array.init partitions (fun _ -> Vec.create ~dummy:ignore ());
      p_stagings =
        Array.init partitions (fun _ ->
            {
              sg_next_f = Vec.create ~dummy:ignore ();
              sg_next_p = Vec.create ~dummy:(-1) ();
              sg_upd = Vec.create ~dummy:ignore ();
            });
      p_mutex = Mutex.create ();
      p_work = Condition.create ();
      p_done = Condition.create ();
      p_jobs = [];
      p_outstanding = 0;
      p_shutdown = false;
      p_error = None;
      p_domains = [];
    }
  in
  pool.p_domains <-
    List.init (min domains partitions) (fun _ -> Domain.spawn (pool_worker pool));
  t.pool <- Some pool;
  (* Serial scheduling leaves the tag vectors empty; re-align them
     with the already-queued actions (all untagged — tags are only
     produced once the pool exists). *)
  Vec.clear t.crun_p;
  for _ = 1 to Vec.length t.crun_f do
    Vec.push t.crun_p (-1)
  done;
  Vec.clear t.cnext_p;
  for _ = 1 to Vec.length t.cnext_f do
    Vec.push t.cnext_p (-1)
  done

let shutdown_pool t =
  match t.pool with
  | None -> ()
  | Some pool ->
    Mutex.lock pool.p_mutex;
    pool.p_shutdown <- true;
    Condition.broadcast pool.p_work;
    Mutex.unlock pool.p_mutex;
    List.iter Domain.join pool.p_domains;
    pool.p_domains <- [];
    t.pool <- None

let pool_active t =
  match t.pool with
  | Some _ -> true
  | None -> false

let pool_domain_count t =
  match t.pool with
  | None -> 0
  | Some pool -> List.length pool.p_domains

(* Dispatch the filled buckets to the workers, wait for the barrier,
   then merge staged work back in partition order (deterministic
   regardless of worker interleaving). *)
let pool_run_buckets t pool =
  let any = ref false in
  Mutex.lock pool.p_mutex;
  for p = pool.p_partitions - 1 downto 0 do
    if not (Vec.is_empty pool.p_buckets.(p)) then begin
      pool.p_jobs <- p :: pool.p_jobs;
      pool.p_outstanding <- pool.p_outstanding + 1;
      any := true
    end
  done;
  if !any then begin
    Condition.broadcast pool.p_work;
    while pool.p_outstanding > 0 || pool.p_jobs <> [] do
      Condition.wait pool.p_done pool.p_mutex
    done
  end;
  let err = pool.p_error in
  pool.p_error <- None;
  Mutex.unlock pool.p_mutex;
  (match err with
   | Some e -> raise e
   | None -> ());
  if !any then
    for p = 0 to pool.p_partitions - 1 do
      let sg = pool.p_stagings.(p) in
      Vec.transfer ~src:sg.sg_next_f ~dst:t.cnext_f;
      Vec.transfer ~src:sg.sg_next_p ~dst:t.cnext_p;
      Vec.transfer ~src:sg.sg_upd ~dst:t.cupd
    done

(* --- shared run epilogue --------------------------------------------- *)

let conclude ?until t tripped =
  let horizon_ok time =
    match until with
    | None -> true
    | Some h -> time <= h
  in
  let ended_by_horizon =
    match Heap.peek t.timed with
    | Some e -> not (horizon_ok e.Heap.time)
    | None -> false
  in
  t.diagnosis <-
    (match t.crash with
    | Some (name, error) -> Process_crashed { name; error }
    | None -> (
      match tripped with
      | Some d -> d
      | None ->
        if (not t.stopping) && (not ended_by_horizon) && t.waiters > 0 then
          (* Quiescent end with processes still blocked on events that
             can no longer fire: event starvation, not completion. *)
          Starved { waiting = t.waiters }
        else Completed));
  t.now

(* --- classic engine: the dynamic reference loop ---------------------- *)

let run_classic ?until ?(guard = default_guard) t =
  if t.running then invalid_arg "Kernel.run: already running";
  t.running <- true;
  t.stopping <- false;
  t.crash <- None;
  t.diagnosis <- Completed;
  let steps0 = t.time_advances in
  (* A tripped watchdog ends the run gracefully: the verdict is
     recorded here and surfaced through {!last_diagnosis}. *)
  let tripped = ref None in
  let horizon_ok time =
    match until with
    | None -> true
    | Some h -> time <= h
  in
  let rec loop () =
    if t.stopping || !tripped <> None then ()
    else begin
      (* Evaluation phase. *)
      Tabv_obs.Metrics.start t.eval_timer;
      if guard.contain_crashes then
        while not (Queue.is_empty t.runnable) && not t.stopping do
          let action = Queue.pop t.runnable in
          t.activations <- t.activations + 1;
          try action ()
          with e ->
            (* Contain the crash: the raising process is dead (its
               continuation is lost with the exception), the rest of
               the design keeps simulating, and the first crash is
               attributed to the last labelled process. *)
            t.contained_crashes <- t.contained_crashes + 1;
            if t.crash = None then begin
              let name = if t.label = "" then "<anonymous>" else t.label in
              t.crash <- Some (name, Printexc.to_string e)
            end
        done
      else
        while not (Queue.is_empty t.runnable) && not t.stopping do
          let action = Queue.pop t.runnable in
          t.activations <- t.activations + 1;
          action ()
        done;
      Tabv_obs.Metrics.stop t.eval_timer;
      if t.stopping then ()
      else begin
        (* Update phase (FIFO order of requests). *)
        Tabv_obs.Metrics.start t.update_timer;
        let updates = List.rev t.updates in
        t.updates <- [];
        List.iter
          (fun u ->
            t.update_actions <- t.update_actions + 1;
            u ())
          updates;
        Tabv_obs.Metrics.stop t.update_timer;
        (* Delta notification phase. *)
        if not (Queue.is_empty t.next_delta) then begin
          match guard.max_delta_cycles with
          | Some cap when t.delta >= cap ->
            (* Livelock watchdog: the instant never converges. *)
            t.watchdog_trips <- t.watchdog_trips + 1;
            Queue.clear t.next_delta;
            tripped := Some (Livelock { time = t.now; delta_cycles = t.delta })
          | Some _ | None ->
            Queue.transfer t.next_delta t.runnable;
            t.delta <- t.delta + 1;
            t.deltas <- t.deltas + 1;
            loop ()
        end
        else begin
          (* Advance time to the next timed action, if any. *)
          Tabv_obs.Metrics.start t.advance_timer;
          let advanced =
            match Heap.peek t.timed with
            | Some { Heap.time; _ } when horizon_ok time ->
              (match guard.max_steps with
               | Some cap when t.time_advances - steps0 >= cap ->
                 (* Step-budget watchdog: too many time advances. *)
                 t.watchdog_trips <- t.watchdog_trips + 1;
                 tripped := Some (Budget_exhausted { steps = cap });
                 false
               | Some _ | None ->
                 t.now <- time;
                 t.delta <- 0;
                 t.time_advances <- t.time_advances + 1;
                 let rec drain () =
                   match Heap.peek t.timed with
                   | Some entry when entry.Heap.time = time ->
                     ignore (Heap.pop t.timed);
                     Queue.add entry.Heap.action t.runnable;
                     drain ()
                   | Some _ | None -> ()
                 in
                 drain ();
                 true)
            | Some _ | None -> false
          in
          Tabv_obs.Metrics.stop t.advance_timer;
          if advanced then loop ()
        end
      end
    end
  in
  Fun.protect ~finally:(fun () -> t.running <- false) (fun () -> loop ());
  conclude ?until t !tripped

(* --- compiled engine: static-schedule loop over the vector queues ----- *)

(* Counter-for-counter mirror of [run_classic]: every [activations],
   [update_actions], [deltas], [time_advances] and watchdog increment
   happens at the same point of the same phase, so reports stay
   byte-identical across engines.  Only the mechanisms differ: vector
   queues instead of [Queue.t]/list accumulators, a double-buffered
   update vector instead of [List.rev], and an optional partition pool
   for eval-phase fan-out. *)
let run_compiled ?until ?(guard = default_guard) t =
  if t.running then invalid_arg "Kernel.run: already running";
  (match t.pool with
   | Some _ when guard.contain_crashes ->
     invalid_arg "Kernel.run: contain_crashes is not supported with a partition pool"
   | _ -> ());
  t.running <- true;
  t.stopping <- false;
  t.containing <- guard.contain_crashes;
  t.crash <- None;
  t.diagnosis <- Completed;
  let steps0 = t.time_advances in
  let tripped = ref None in
  let pool_present =
    match t.pool with
    | Some _ -> true
    | None -> false
  in
  let horizon_ok time =
    match until with
    | None -> true
    | Some h -> time <= h
  in
  let eval_serial () =
    if guard.contain_crashes then
      while (not (Vec.is_empty t.crun_f)) && not t.stopping do
        let action = Vec.pop t.crun_f in
        t.activations <- t.activations + 1;
        try action () with e -> record_crash t e
      done
    else
      while (not (Vec.is_empty t.crun_f)) && not t.stopping do
        let action = Vec.pop t.crun_f in
        t.activations <- t.activations + 1;
        action ()
      done;
    if Vec.is_empty t.crun_f then Vec.clear t.crun_f
  in
  (* With a pool: untagged actions run inline in dispatch order;
     partition-tagged actions are counted at dispatch, bucketed, and
     executed by the workers after the inline pass.  Bucket actions
     only stage next-delta/update work, so one dispatch pass per delta
     normally suffices; the outer loop covers stragglers. *)
  let eval_pooled pool =
    let continue_ = ref true in
    while !continue_ do
      while (not (Vec.is_empty t.crun_f)) && not t.stopping do
        let action = Vec.pop t.crun_f in
        let part = Vec.pop t.crun_p in
        t.activations <- t.activations + 1;
        if part < 0 then action () else Vec.push pool.p_buckets.(part) action
      done;
      if Vec.is_empty t.crun_f then begin
        Vec.clear t.crun_f;
        Vec.clear t.crun_p
      end;
      if t.stopping then begin
        (* An inline action called [stop] mid-dispatch.  The serial
           loops cease draining immediately, so mirror them: discard
           the already-bucketed partition actions rather than running
           them past the stop point (they were counted at dispatch,
           matching the serial activation count for the pre-stop
           prefix). *)
        for p = 0 to pool.p_partitions - 1 do
          Vec.clear pool.p_buckets.(p)
        done;
        continue_ := false
      end
      else begin
        pool_run_buckets t pool;
        continue_ := (not (Vec.is_empty t.crun_f)) && not t.stopping
      end
    done
  in
  let rec loop () =
    if t.stopping || !tripped <> None then ()
    else begin
      (* Evaluation phase. *)
      Tabv_obs.Metrics.start t.eval_timer;
      (match t.pool with
       | None -> eval_serial ()
       | Some pool -> eval_pooled pool);
      Tabv_obs.Metrics.stop t.eval_timer;
      if t.stopping then ()
      else begin
        (* Update phase: swap in the spare vector so requests made by
           the updates themselves land in the next round — the same
           snapshot semantics as the classic engine's [List.rev]. *)
        Tabv_obs.Metrics.start t.update_timer;
        let updates = t.cupd in
        t.cupd <- t.cupd_spare;
        t.cupd_spare <- updates;
        Vec.drain updates (fun u ->
            t.update_actions <- t.update_actions + 1;
            u ());
        Tabv_obs.Metrics.stop t.update_timer;
        (* Delta notification phase. *)
        if not (Vec.is_empty t.cnext_f) then begin
          match guard.max_delta_cycles with
          | Some cap when t.delta >= cap ->
            t.watchdog_trips <- t.watchdog_trips + 1;
            Vec.clear t.cnext_f;
            Vec.clear t.cnext_p;
            tripped := Some (Livelock { time = t.now; delta_cycles = t.delta })
          | Some _ | None ->
            Vec.transfer ~src:t.cnext_f ~dst:t.crun_f;
            Vec.transfer ~src:t.cnext_p ~dst:t.crun_p;
            t.delta <- t.delta + 1;
            t.deltas <- t.deltas + 1;
            loop ()
        end
        else begin
          (* Advance time to the next timed action, if any. *)
          Tabv_obs.Metrics.start t.advance_timer;
          let advanced =
            match Heap.peek t.timed with
            | Some { Heap.time; _ } when horizon_ok time ->
              (match guard.max_steps with
               | Some cap when t.time_advances - steps0 >= cap ->
                 t.watchdog_trips <- t.watchdog_trips + 1;
                 tripped := Some (Budget_exhausted { steps = cap });
                 false
               | Some _ | None ->
                 t.now <- time;
                 t.delta <- 0;
                 t.time_advances <- t.time_advances + 1;
                 let tag = pool_present in
                 let rec drain () =
                   match Heap.peek t.timed with
                   | Some entry when entry.Heap.time = time ->
                     ignore (Heap.pop t.timed);
                     Vec.push t.crun_f entry.Heap.action;
                     if tag then Vec.push t.crun_p (-1);
                     drain ()
                   | Some _ | None -> ()
                 in
                 drain ();
                 true)
            | Some _ | None -> false
          in
          Tabv_obs.Metrics.stop t.advance_timer;
          if advanced then loop ()
        end
      end
    end
  in
  Fun.protect
    ~finally:(fun () ->
      t.running <- false;
      t.containing <- false)
    (fun () -> loop ());
  conclude ?until t !tripped

(* --- engine interface ------------------------------------------------- *)

module type ENGINE = sig
  val name : string
  val run : ?until:int -> ?guard:guard -> t -> int
end

module Classic_engine : ENGINE = struct
  let name = "classic"
  let run = run_classic
end

module Compiled_engine : ENGINE = struct
  let name = "compiled"
  let run = run_compiled
end

let engine_impl : engine -> (module ENGINE) = function
  | Classic -> (module Classic_engine)
  | Compiled -> (module Compiled_engine)

let run ?until ?guard t =
  (* Pre-run hooks first (elaboration compiles the schedule here), in
     registration order. *)
  List.iter (fun hook -> hook ()) (List.rev t.pre_run);
  let (module E : ENGINE) = engine_impl t.engine in
  E.run ?until ?guard t

let last_diagnosis t = t.diagnosis

let diagnosis_to_string = function
  | Completed -> "completed"
  | Starved { waiting } -> Printf.sprintf "starved(waiting=%d)" waiting
  | Livelock { time; delta_cycles } ->
    Printf.sprintf "livelock(time=%d,delta_cycles=%d)" time delta_cycles
  | Budget_exhausted { steps } -> Printf.sprintf "budget_exhausted(steps=%d)" steps
  | Process_crashed { name; error } ->
    Printf.sprintf "process_crashed(%s: %s)" name error

let pp_diagnosis ppf d = Format.pp_print_string ppf (diagnosis_to_string d)

let activation_count t = t.activations
let delta_count t = t.deltas
let time_advance_count t = t.time_advances
let update_action_count t = t.update_actions
let watchdog_trip_count t = t.watchdog_trips
let contained_crash_count t = t.contained_crashes
