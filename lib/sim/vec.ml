(* Growable array queue for the compiled engine's hot paths.

   The dynamic kernel queues closures through [Queue.t] (one heap cell
   per element) and [list] accumulators (one cons per request plus a
   [List.rev] per phase).  The compiled engine replaces both with this
   vector: pushes write into a preallocated array, draining walks an
   index, and [clear] resets the cursor — steady-state operation
   allocates nothing.

   Hot-path accesses use [Array.unsafe_*]: the invariants
   [0 <= head <= len <= Array.length data] are maintained by every
   operation here, and the callers (the kernel loops) never index
   directly.  Elements are overwritten with [dummy] in bulk on
   [clear]/[drain] — not per pop — so drained closures do not leak
   through the backing store without paying a store per element. *)

type 'a t = {
  mutable data : 'a array;
  mutable head : int;  (* next element to drain *)
  mutable len : int;  (* next free slot *)
  dummy : 'a;
}

let create ?(capacity = 64) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; head = 0; len = 0; dummy }

let length t = t.len - t.head
let is_empty t = t.len = t.head

let grow t =
  let grown = Array.make (2 * Array.length t.data) t.dummy in
  Array.blit t.data 0 grown 0 t.len;
  t.data <- grown

let push t x =
  if t.len = Array.length t.data then grow t;
  Array.unsafe_set t.data t.len x;
  t.len <- t.len + 1

let get t i = t.data.(i)
let head t = t.head
let bound t = t.len
let advance_head t = t.head <- t.head + 1

let pop t =
  let x = Array.unsafe_get t.data t.head in
  t.head <- t.head + 1;
  x

let clear t =
  if t.len > 0 then Array.fill t.data 0 t.len t.dummy;
  t.head <- 0;
  t.len <- 0

(* FIFO drain honouring elements pushed *during* the drain (the
   dynamic queues have the same property: an action scheduled from
   inside the evaluation phase runs in the same phase). *)
let drain t f =
  while t.head < t.len do
    let x = Array.unsafe_get t.data t.head in
    t.head <- t.head + 1;
    f x
  done;
  clear t

let iter t f =
  for i = t.head to t.len - 1 do
    f t.data.(i)
  done

let transfer ~src ~dst =
  let n = src.len - src.head in
  if n > 0 then begin
    while dst.len + n > Array.length dst.data do
      grow dst
    done;
    Array.blit src.data src.head dst.data dst.len n;
    dst.len <- dst.len + n
  end;
  clear src
