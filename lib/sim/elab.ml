(* Compile-at-elaboration pipeline.

   An [Elab.t] collects the design declaratively — typed signals,
   method processes with declared sensitivity/read/write sets, leaf
   components — and compiles it once, just before the first kernel
   step (a pre-run hook):

   - the signal→process dependency graph is built from the declared
     write sets and the sensitivity lists (edges run writer → sensitive
     process; clock-edge sensitivity makes a process a root);
   - the graph is levelized with Kahn's algorithm — a combinational
     cycle is an elaboration error, reported with the source positions
     the offending processes were registered at;
   - connected components of the shared-signal relation become
     partitions: two processes land in the same partition iff they
     transitively touch a common signal, so distinct partitions are
     proven independent and may evaluate in parallel
     ({!parallelize});
   - every registered event handler is tagged with its partition, which
     is what the compiled kernel's dispatch loop consumes.

   Registration itself is engine-neutral: the same declarative model
   runs unchanged on the classic engine, where levels and partition
   tags are simply ignored. *)

type pos = string * int * int * int

type packed = Pack : 'a Signal.t -> packed

exception Cycle_error of string

let () =
  Printexc.register_printer (function
    | Cycle_error msg -> Some msg
    | _ -> None)

type sig_info = {
  si_uid : int;
  si_changed : Event.t;
}

type proc = {
  pr_name : string;
  pr_pos : pos option;
  pr_index : int;
  pr_sensitivity : Event.t list;
  pr_reads : int list;  (* signal uids *)
  pr_writes : int list;
  pr_subs : (Event.t * int) list;  (* handler indices, for partition tags *)
  pr_body : unit -> unit;  (* unwrapped body, for fused blocks *)
  mutable pr_level : int;
  mutable pr_part : int;
}

type schedule = {
  sched_levels : int;
  sched_partitions : int;
  sched_processes : (string * int * int) list;  (* name, level, partition *)
}

type t = {
  e_kernel : Kernel.t;
  mutable signals : sig_info list;  (* reversed registration order *)
  mutable procs : proc list;  (* reversed *)
  mutable components : string list;  (* reversed *)
  mutable n_procs : int;
  mutable done_ : bool;
  mutable levels : int;
  mutable n_parts : int;
}

let pos_string = function
  | Some (file, line, _, _) -> Printf.sprintf "%s:%d" file line
  | None -> "<no position>"

(* The serial static schedule: contiguous runs of this design's
   handlers on each sensitivity event collapse into one activation
   block, so a fire pushes a single action per run instead of one per
   process and the evaluation loop dispatches once per block.  The
   block replays the bodies in subscription order — the order the
   classic per-handler path schedules them in — and mirrors the
   evaluation loop's own bookkeeping: one activation count per body, a
   stop poll between bodies, and per-body crash containment when the
   run asks for it (labels are only maintained then; they are
   unobservable otherwise). *)
let activation_block k names bodies =
  let n = Array.length bodies in
  fun () ->
    if Kernel.containing k then begin
      let i = ref 0 in
      while !i < n && not (Kernel.stopping k) do
        if !i > 0 then Kernel.add_activation k;
        Kernel.set_label k (Array.unsafe_get names !i);
        (try (Array.unsafe_get bodies !i) () with e -> Kernel.record_crash k e);
        incr i
      done
    end
    else begin
      let i = ref 0 in
      while !i < n && not (Kernel.stopping k) do
        if !i > 0 then Kernel.add_activation k;
        (Array.unsafe_get bodies !i) ();
        incr i
      done
    end

let fuse_blocks t procs =
  (* Distinct sensitivity events, by physical identity (events embed
     closures, so they are not hashable or comparable). *)
  let events = ref [] in
  Array.iter
    (fun p ->
      List.iter
        (fun (ev, _) -> if not (List.memq ev !events) then events := ev :: !events)
        p.pr_subs)
    procs;
  List.iter
    (fun ev ->
      let subs = ref [] in
      Array.iter
        (fun p ->
          List.iter (fun (e, idx) -> if e == ev then subs := (idx, p) :: !subs) p.pr_subs)
        procs;
      let subs = List.sort (fun (a, _) (b, _) -> compare a b) !subs in
      (* Maximal runs of consecutive handler indices become blocks;
         handlers interleaved with foreign subscriptions stay where
         they are, preserving fire-time order exactly. *)
      let spans = ref [] in
      let rec runs = function
        | [] -> ()
        | (first, p) :: rest ->
          let members = ref [ p ] in
          let last = ref first in
          let rest = ref rest in
          let continue_ = ref true in
          while !continue_ do
            match !rest with
            | (idx, q) :: tail when idx = !last + 1 ->
              members := q :: !members;
              last := idx;
              rest := tail
            | _ -> continue_ := false
          done;
          let members = Array.of_list (List.rev !members) in
          let names = Array.map (fun p -> p.pr_name) members in
          let bodies = Array.map (fun p -> p.pr_body) members in
          spans :=
            ((first, !last), activation_block t.e_kernel names bodies) :: !spans;
          runs !rest
      in
      runs subs;
      Event.fuse ev (List.rev !spans))
    !events

let compile t =
  if not t.done_ then begin
    t.done_ <- true;
    let procs = Array.of_list (List.rev t.procs) in
    let signals = List.rev t.signals in
    let n = Array.length procs in
    (* Writer map: signal uid -> indices of the processes driving it. *)
    let writers = Hashtbl.create 16 in
    Array.iter
      (fun p -> List.iter (fun u -> Hashtbl.add writers u p.pr_index) p.pr_writes)
      procs;
    (* A sensitivity entry is a signal dependency iff it is some
       registered signal's value-change event; clock edges and plain
       events make the process a schedule root. *)
    let signal_of_event ev =
      List.find_opt (fun si -> si.si_changed == ev) signals
    in
    let succs = Array.make n [] in
    let indeg = Array.make n 0 in
    Array.iter
      (fun q ->
        List.iter
          (fun ev ->
            match signal_of_event ev with
            | None -> ()
            | Some si ->
              List.iter
                (fun w ->
                  (* Self-edges are register semantics (a process
                     re-reading the output it drives), not
                     combinational cycles. *)
                  if w <> q.pr_index then begin
                    succs.(w) <- q.pr_index :: succs.(w);
                    indeg.(q.pr_index) <- indeg.(q.pr_index) + 1
                  end)
                (Hashtbl.find_all writers si.si_uid))
          q.pr_sensitivity)
      procs;
    (* Kahn levelization. *)
    let queue = Queue.create () in
    Array.iter
      (fun p -> if indeg.(p.pr_index) = 0 then Queue.add p.pr_index queue)
      procs;
    let seen = ref 0 in
    let max_level = ref 0 in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      incr seen;
      List.iter
        (fun j ->
          if procs.(j).pr_level < procs.(i).pr_level + 1 then begin
            procs.(j).pr_level <- procs.(i).pr_level + 1;
            if procs.(j).pr_level > !max_level then max_level := procs.(j).pr_level
          end;
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then Queue.add j queue)
        succs.(i)
    done;
    if !seen < n then begin
      let stuck =
        List.filter (fun p -> indeg.(p.pr_index) > 0) (Array.to_list procs)
      in
      raise
        (Cycle_error
           (Printf.sprintf
              "Elab.compile: zero-delay combinational cycle through %d \
               process(es): %s"
              (List.length stuck)
              (String.concat ", "
                 (List.map
                    (fun p ->
                      Printf.sprintf "%s (registered at %s)" p.pr_name
                        (pos_string p.pr_pos))
                    stuck))))
    end;
    t.levels <- (if n = 0 then 0 else !max_level + 1);
    (* Partitions: union-find over the touched-signal sets.  Processes
       that declared no reads and no writes stay untagged — nothing is
       proven about them, so they always run on the main domain. *)
    let parent = Hashtbl.create 16 in
    let rec find u =
      match Hashtbl.find_opt parent u with
      | None ->
        Hashtbl.replace parent u u;
        u
      | Some p when p = u -> u
      | Some p ->
        let root = find p in
        Hashtbl.replace parent u root;
        root
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then Hashtbl.replace parent ra rb
    in
    Array.iter
      (fun p ->
        match p.pr_reads @ p.pr_writes with
        | [] -> ()
        | u0 :: rest -> List.iter (fun u -> union u0 u) rest)
      procs;
    let part_ids = Hashtbl.create 16 in
    let n_parts = ref 0 in
    Array.iter
      (fun p ->
        match p.pr_reads @ p.pr_writes with
        | [] -> p.pr_part <- -1
        | u0 :: _ ->
          let root = find u0 in
          p.pr_part <-
            (match Hashtbl.find_opt part_ids root with
             | Some id -> id
             | None ->
               let id = !n_parts in
               incr n_parts;
               Hashtbl.replace part_ids root id;
               id))
      procs;
    t.n_parts <- !n_parts;
    (* Hand the partition tags to the event layer: this is the part of
       the schedule the compiled dispatch loop consumes. *)
    Array.iter
      (fun p ->
        if p.pr_part >= 0 then
          List.iter (fun (ev, idx) -> Event.set_partition ev idx p.pr_part) p.pr_subs)
      procs;
    if Kernel.is_compiled t.e_kernel then fuse_blocks t procs
  end

let create kernel =
  let t =
    {
      e_kernel = kernel;
      signals = [];
      procs = [];
      components = [];
      n_procs = 0;
      done_ = false;
      levels = 0;
      n_parts = 0;
    }
  in
  Kernel.add_pre_run_hook kernel (fun () -> compile t);
  t

let kernel t = t.e_kernel

let register_signal t s =
  t.signals <- { si_uid = Signal.uid s; si_changed = Signal.changed s } :: t.signals

let signal_bool t ?(init = false) name =
  let s = Signal.create_bool t.e_kernel ~name init in
  register_signal t s;
  s

let signal_int t ?(init = 0) name =
  let s = Signal.create_int t.e_kernel ~name init in
  register_signal t s;
  s

let signal_int64 t ?(init = 0L) name =
  let s = Signal.create_int64 t.e_kernel ~name init in
  register_signal t s;
  s

let signal t ?equal ~init name =
  let s = Signal.create t.e_kernel ~name ?equal init in
  register_signal t s;
  s

let process t ~name ?pos ?(initialize = true) ~sensitivity ?(reads = [])
    ?(writes = []) body =
  if t.done_ then
    invalid_arg
      (Printf.sprintf "Elab.process: %s registered after compilation" name);
  let k = t.e_kernel in
  let wrapped () =
    (* Under a partition pool this wrapper runs on worker domains;
       [set_label] would be an unsynchronized cross-domain write to
       the kernel's label field.  Crash containment — the only reader
       of labels — is forbidden with a pool, so the label is
       unobservable there and the write is simply skipped. *)
    if not (Kernel.pool_active k) then Kernel.set_label k name;
    body ()
  in
  let subs = List.map (fun ev -> (ev, Event.subscribe ev wrapped)) sensitivity in
  if initialize then Kernel.schedule_now k wrapped;
  let uid_of (Pack s) = Signal.uid s in
  t.procs <-
    {
      pr_name = name;
      pr_pos = pos;
      pr_index = t.n_procs;
      pr_sensitivity = sensitivity;
      pr_reads = List.map uid_of reads;
      pr_writes = List.map uid_of writes;
      pr_subs = subs;
      pr_body = body;
      pr_level = 0;
      pr_part = -1;
    }
    :: t.procs;
  t.n_procs <- t.n_procs + 1

let component t name = t.components <- name :: t.components
let components t = List.rev t.components

let levels t =
  compile t;
  t.levels

let partition_count t =
  compile t;
  t.n_parts

let schedule t =
  compile t;
  {
    sched_levels = t.levels;
    sched_partitions = t.n_parts;
    sched_processes =
      List.rev_map (fun p -> (p.pr_name, p.pr_level, p.pr_part)) t.procs;
  }

let parallelize t ~domains =
  compile t;
  if
    t.n_parts >= 2
    && Kernel.is_compiled t.e_kernel
    && not (Tabv_obs.Metrics.enabled (Kernel.metrics t.e_kernel))
  then begin
    Kernel.install_pool t.e_kernel ~domains ~partitions:t.n_parts;
    true
  end
  else false
