(** Compile-at-elaboration pipeline.

    The declarative front door to the simulation stack: a design
    registers typed signals, method processes (with sensitivity and
    declared read/write sets) and leaf components on an [Elab.t]; just
    before the first kernel step the design is {e compiled} —

    {ul
    {- the signal→process dependency graph is levelized (Kahn); a
       zero-delay combinational cycle raises {!Cycle_error} carrying
       the source positions of the offending registrations;}
    {- processes are grouped into {e partitions}, the connected
       components of the shared-signal relation: distinct partitions
       provably touch disjoint signals and may evaluate in parallel
       ({!parallelize});}
    {- every registered handler is tagged with its partition for the
       compiled kernel's dispatch loop.}}

    The same registrations run unchanged on the classic engine, where
    levels and tags are simply ignored — which is what makes the
    engines byte-identical in reports. *)

type t

(** [__POS__]-style source position: file, line, start col, end col. *)
type pos = string * int * int * int

(** Existentially packed signal, for read/write declarations. *)
type packed = Pack : 'a Signal.t -> packed

(** Raised by compilation when the dependency graph has a zero-delay
    cycle.  The message names every process on the cycle with the
    position it was registered at. *)
exception Cycle_error of string

(** [create kernel] — one elaboration context per kernel.  Registers a
    pre-run hook so compilation happens automatically before the first
    step of {!Kernel.run}. *)
val create : Kernel.t -> t

val kernel : t -> Kernel.t

(** {2 Declarative registration} *)

val signal_bool : t -> ?init:bool -> string -> bool Signal.t
val signal_int : t -> ?init:int -> string -> int Signal.t
val signal_int64 : t -> ?init:int64 -> string -> int64 Signal.t

(** Generic signal for non-scalar payloads (heap-backed — no arena
    slot, structural equality by default). *)
val signal : t -> ?equal:('a -> 'a -> bool) -> init:'a -> string -> 'a Signal.t

(** [process t ~name ?pos ?initialize ~sensitivity ?reads ?writes body]
    registers a method process: [body] runs once per notification of
    any [sensitivity] event (plus once at time zero unless
    [initialize] is [false]).  [reads]/[writes] declare the signals
    the body touches; they feed levelization and partitioning, and a
    process declaring neither stays untagged (never parallelized).
    Pass [?pos:(__POS__)] so elaboration errors point at the
    registration site.
    @raise Invalid_argument after compilation has run. *)
val process :
  t ->
  name:string ->
  ?pos:pos ->
  ?initialize:bool ->
  sensitivity:Event.t list ->
  ?reads:packed list ->
  ?writes:packed list ->
  (unit -> unit) ->
  unit

(** Register a leaf component with no signals or processes of its own
    (TLM targets/initiators): purely declarative, so every DUV —
    RTL or TLM — appears in the elaborated design. *)
val component : t -> string -> unit

val components : t -> string list

(** {2 Compilation} *)

(** Levelize and partition now (idempotent; otherwise runs from the
    pre-run hook).
    @raise Cycle_error on a zero-delay combinational cycle. *)
val compile : t -> unit

(** Depth of the levelized schedule (0 for an empty design). *)
val levels : t -> int

(** Number of proven-independent partitions. *)
val partition_count : t -> int

type schedule = {
  sched_levels : int;
  sched_partitions : int;
  sched_processes : (string * int * int) list;
      (** process name, level, partition (-1 = untagged), in
          registration order *)
}

(** The compiled schedule, for inspection and tests. *)
val schedule : t -> schedule

(** [parallelize t ~domains] installs a partition pool on the kernel
    when it is safe and worthwhile: compiled engine, disabled metrics
    registry, and at least two proven-independent partitions.  Returns
    whether a pool was installed.  The caller owns the pool lifetime
    ({!Kernel.shutdown_pool}). *)
val parallelize : t -> domains:int -> bool
