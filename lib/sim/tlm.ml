type command =
  | Read
  | Write

type ext = ..

type payload = {
  command : command;
  address : int;
  mutable data : int64;
  mutable response_ok : bool;
  mutable extension : ext option;
}

let make_payload ?(address = 0) ?(data = 0L) ?extension command =
  { command; address; data; response_ok = true; extension }

type transaction = {
  payload : payload;
  start_time : int;
  end_time : int;
}

module Target = struct
  type t = {
    name : string;
    transport : payload -> unit;
  }

  let create _kernel ~name transport = { name; transport }
  let name t = t.name
end

module Initiator = struct
  type t = {
    kernel : Kernel.t;
    name : string;
    mutable target : Target.t option;
    mutable interposer : ((payload -> unit) -> payload -> unit) option;
    mutable observers : (transaction -> unit) list;  (* reversed *)
    mutable completed : int;
    spans : Tabv_obs.Span.t;
    m_starts : Tabv_obs.Metrics.counter;  (* shared per kernel *)
    m_completions : Tabv_obs.Metrics.counter;
    m_duration : Tabv_obs.Metrics.histogram;
  }

  let create kernel ~name =
    let metrics = Kernel.metrics kernel in
    let t =
      {
        kernel;
        name;
        target = None;
        interposer = None;
        observers = [];
        completed = 0;
        spans = Tabv_obs.Span.create ();
        m_starts = Tabv_obs.Metrics.counter metrics "tlm.transaction_starts";
        m_completions = Tabv_obs.Metrics.counter metrics "tlm.transactions";
        m_duration = Tabv_obs.Metrics.histogram metrics "tlm.transaction_ns";
      }
    in
    (* Pull probes: always answer real values, never cost on the hot
       path (the socket keeps its own completion count anyway). *)
    Tabv_obs.Metrics.probe metrics "tlm.completed_transactions" (fun () ->
      t.completed);
    Tabv_obs.Metrics.probe metrics "tlm.span_ns_total" (fun () ->
      Tabv_obs.Span.total_ns t.spans);
    t

  let name t = t.name

  let bind t target =
    match t.target with
    | Some _ -> invalid_arg (Printf.sprintf "Tlm.Initiator.bind: %s already bound" t.name)
    | None -> t.target <- Some target

  let b_transport t payload =
    match t.target with
    | None -> invalid_arg (Printf.sprintf "Tlm.Initiator.b_transport: %s unbound" t.name)
    | Some target ->
      Tabv_obs.Metrics.incr t.m_starts;
      let start_time = Kernel.now t.kernel in
      (* The mutator interposition hook: a fault layer wraps the
         transport call and may corrupt, drop, delay or duplicate the
         transaction without touching initiator or target logic. *)
      (match t.interposer with
      | None -> target.Target.transport payload
      | Some f -> f target.Target.transport payload);
      let end_time = Kernel.now t.kernel in
      t.completed <- t.completed + 1;
      Tabv_obs.Metrics.incr t.m_completions;
      Tabv_obs.Metrics.observe t.m_duration (end_time - start_time);
      if Tabv_obs.Metrics.enabled (Kernel.metrics t.kernel) then
        Tabv_obs.Span.record t.spans ~label:t.name ~start_ns:start_time
          ~stop_ns:end_time;
      let transaction = { payload; start_time; end_time } in
      List.iter (fun observe -> observe transaction) (List.rev t.observers)

  let interpose t f =
    match t.interposer with
    | Some _ ->
      invalid_arg
        (Printf.sprintf "Tlm.Initiator.interpose: %s already has an interposer"
           t.name)
    | None -> t.interposer <- Some f

  let clear_interpose t = t.interposer <- None
  let interposed t = t.interposer <> None
  let on_transaction t observe = t.observers <- observe :: t.observers
  let transaction_count t = t.completed
  let spans t = t.spans
end
