(** Discrete-event simulation kernel (SystemC-style).

    The kernel drives simulation through the classic three-phase loop:
    {ol
    {- {e evaluation}: run every runnable process;}
    {- {e update}: apply requested signal updates;}
    {- {e delta/time advance}: processes woken by updates run in the
       next delta cycle at the same simulation time; when no delta
       activity remains, time advances to the earliest timed action.}}

    Times are in nanoseconds.  The kernel is deterministic: actions
    scheduled for the same instant run in scheduling order. *)

type t

(** {2 Engine selection}

    Two interchangeable execution engines drive the same three-phase
    semantics:
    {ul
    {- [Classic] — the dynamic reference engine: closure queues, list
       accumulators, per-instant allocation.  Unchanged semantics and
       mechanics; the baseline every optimisation is diffed against.}
    {- [Compiled] — the static-schedule engine produced by {!Elab}:
       vector queues, a dense signal arena, preallocated update thunks
       and optional partition-parallel evaluation.}}

    Reports and metrics are byte-identical across engines: the
    compiled loop increments every counter at the same point of the
    same phase, and delta-delayed signal updates make within-delta
    execution order unobservable. *)

type engine =
  | Classic
  | Compiled

val engine_name : engine -> string

(** Parse ["classic" | "compiled"]. *)
val engine_of_string : string -> (engine, string) result

(** Process-global default engine for subsequently created kernels
    (initially [Classic]); set once by frontends ([tabv --engine],
    campaign workers) before any kernel is created. *)
val set_default_engine : engine -> unit

val get_default_engine : unit -> engine

(** How a {!run} ended.  [Completed] covers both an explicit {!stop}
    and reaching the [until] horizon; the other verdicts are the
    degraded-but-structured endings introduced for fault-injection
    campaigns: a quiescent end with processes still blocked on events
    ([Starved]), a tripped delta-cycle watchdog ([Livelock]), an
    exhausted time-advance budget ([Budget_exhausted]) and a contained
    process exception ([Process_crashed], first crash wins). *)
type diagnosis =
  | Completed
  | Starved of { waiting : int }  (** blocked event waiters at the end *)
  | Livelock of { time : int; delta_cycles : int }
  | Budget_exhausted of { steps : int }
  | Process_crashed of { name : string; error : string }

(** Watchdog configuration for one {!run}. *)
type guard = {
  max_delta_cycles : int option;
      (** per-instant delta-cycle cap; tripping yields [Livelock] *)
  max_steps : int option;
      (** per-run time-advance budget; tripping yields [Budget_exhausted] *)
  contain_crashes : bool;
      (** catch exceptions from evaluation-phase actions: the raising
          process dies, the run continues, the diagnosis becomes
          [Process_crashed] *)
}

(** [{ max_delta_cycles = Some 1_000_000; max_steps = None;
    contain_crashes = false }] — a delta cap generous enough that no
    legitimate design trips it, so zero-delay feedback livelocks
    terminate by default. *)
val default_guard : guard

(** All watchdogs off (the pre-diagnosis behaviour: a livelocked
    design hangs). *)
val unguarded : guard

(** [create ?metrics ()] — when [metrics] is given, the kernel
    registers its phase probes ([kernel.activations],
    [kernel.delta_cycles], [kernel.time_advances],
    [kernel.update_actions], [kernel.timed_scheduled],
    [kernel.sim_time_ns], [kernel.watchdog_trips],
    [kernel.contained_crashes], [kernel.blocked_waiters]) and phase
    timers ([kernel.eval_phase], [kernel.update_phase],
    [kernel.advance_phase]) on that registry; components created on
    this kernel ({!Signal}, {!Tlm}) instrument the same registry.
    Without [metrics] a private disabled registry is used: probes
    still answer, push updates are no-ops.

    [engine] fixes the execution engine for the kernel's lifetime
    (default: {!get_default_engine}). *)
val create : ?metrics:Tabv_obs.Metrics.t -> ?engine:engine -> unit -> t

(** The registry this kernel (and everything created on it) reports to. *)
val metrics : t -> Tabv_obs.Metrics.t

(** The engine this kernel was created with. *)
val engine : t -> engine

val is_compiled : t -> bool

(** The kernel's dense signal arena (slots are claimed by the typed
    {!Signal} constructors). *)
val arena : t -> Arena.t

(** Register a hook run at the start of every {!run}, in registration
    order.  {!Elab} uses this to compile the activation schedule before
    the first step. *)
val add_pre_run_hook : t -> (unit -> unit) -> unit

(** Current simulation time (ns). *)
val now : t -> int

(** Current delta cycle within the current instant (0-based). *)
val delta : t -> int

(** Schedule [f] at an absolute time [>= now].
    @raise Invalid_argument if [time < now]. *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** Schedule [f] after [delay >= 0] ns. *)
val schedule_after : t -> delay:int -> (unit -> unit) -> unit

(** Make [f] runnable in the current evaluation phase. *)
val schedule_now : t -> (unit -> unit) -> unit

(** Make [f] runnable in the next delta cycle of the current instant.
    Shim for {!schedule_next_delta_part} with an untagged partition;
    elaborated designs carry partition tags instead (see {!Elab}). *)
val schedule_next_delta : t -> (unit -> unit) -> unit

(** Like {!schedule_next_delta}, tagging the action with the levelized
    partition it belongs to ([-1] = untagged, runs inline on the main
    domain).  Tags are ignored unless a partition pool is installed. *)
val schedule_next_delta_part : t -> part:int -> (unit -> unit) -> unit

(** [schedule_next_delta_batch t fs parts n] schedules the first [n]
    entries of [fs] (with partition tags [parts], parallel arrays) for
    the next delta in one call — {!Event.fire}'s fan-out path, with
    the engine and pool dispatch hoisted out of the subscriber loop.
    The arrays must have at least [n] entries. *)
val schedule_next_delta_batch :
  t -> (unit -> unit) array -> int array -> int -> unit

(** Register an update action for the update phase of the current
    delta (used by {!Signal}). *)
val request_update : t -> (unit -> unit) -> unit

(** Stop the simulation at the end of the current evaluation phase. *)
val stop : t -> unit

(** Has {!stop} been called during the current run?  Fused activation
    blocks (see {!Elab}) poll this between bodies so a [stop] issued
    mid-block halts exactly where the classic per-action loop would. *)
val stopping : t -> bool

(** {2 Block-runner hooks}

    A fused activation block replays several process bodies from one
    scheduled action; these hooks let it keep the per-activation
    bookkeeping identical to the evaluation loop's own. *)

(** Is the current run containing crashes ([guard.contain_crashes])?
    Blocks use this to decide whether to attribute and contain
    per-body exceptions. *)
val containing : t -> bool

(** Count one extra evaluation-phase activation (the loop counts the
    block itself as one; each additional body adds one). *)
val add_activation : t -> unit

(** Contain one process crash: count it and, if it is the first,
    attribute it to the last labelled process — the same bookkeeping
    the evaluation loop does for a crashing queued action. *)
val record_crash : t -> exn -> unit

(** Blocked-process accounting, maintained by {!Process} around event
    waits: a positive count at a quiescent end means event starvation
    (diagnosed as [Starved]), not completion. *)
val add_waiter : t -> unit

val remove_waiter : t -> unit

(** Threads currently blocked on an event wait. *)
val waiting_count : t -> int

(** Name the process about to run, for [Process_crashed] attribution;
    {!Process} calls this before each body/continuation resume. *)
val set_label : t -> string -> unit

(** [run t ()] runs until no activity remains, [stop] is called, a
    watchdog of [guard] (default {!default_guard}) trips, or the
    optional [until] horizon (ns) would be crossed; returns the final
    simulation time.  How the run ended is available from
    {!last_diagnosis}.  Re-entrant calls are rejected.

    Dispatches to the engine fixed at {!create} through the {!ENGINE}
    seam, after running the pre-run hooks. *)
val run : ?until:int -> ?guard:guard -> t -> int

(** {2 Engine seam}

    The two loops behind {!run}.  [run] on a module obtained from
    {!engine_impl} must only be applied to kernels created with the
    matching engine. *)

module type ENGINE = sig
  val name : string
  val run : ?until:int -> ?guard:guard -> t -> int
end

val engine_impl : engine -> (module ENGINE)

(** {2 Partition pool (compiled engine)}

    [install_pool t ~domains ~partitions] attaches a worker-domain
    pool that evaluates partition-tagged actions in parallel within
    each delta cycle.  Requires the compiled engine, a disabled
    metrics registry (push counters are not domain-safe), and at least
    two partitions; [contain_crashes] runs are rejected while a pool
    is installed.  Normally called through {!Elab.parallelize}, which
    first proves the partitions share no signals. *)
val install_pool : t -> domains:int -> partitions:int -> unit

(** Stop and join the worker domains (idempotent).  Must be called
    before the process exits if a pool was installed. *)
val shutdown_pool : t -> unit

val pool_active : t -> bool

(** Worker domains currently attached (0 without a pool). *)
val pool_domain_count : t -> int

(** Diagnosis of the most recent {!run} ([Completed] before any run). *)
val last_diagnosis : t -> diagnosis

val diagnosis_to_string : diagnosis -> string
val pp_diagnosis : Format.formatter -> diagnosis -> unit

(** Number of evaluation-phase process activations so far (a good
    proxy for simulator load, used by the benchmarks). *)
val activation_count : t -> int

(** Number of delta cycles executed so far. *)
val delta_count : t -> int

(** Number of time-advance steps taken so far. *)
val time_advance_count : t -> int

(** Number of update-phase actions applied so far. *)
val update_action_count : t -> int

(** Watchdogs tripped so far (livelock caps and step budgets). *)
val watchdog_trip_count : t -> int

(** Process exceptions contained so far (under [contain_crashes]). *)
val contained_crash_count : t -> int
