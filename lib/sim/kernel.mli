(** Discrete-event simulation kernel (SystemC-style).

    The kernel drives simulation through the classic three-phase loop:
    {ol
    {- {e evaluation}: run every runnable process;}
    {- {e update}: apply requested signal updates;}
    {- {e delta/time advance}: processes woken by updates run in the
       next delta cycle at the same simulation time; when no delta
       activity remains, time advances to the earliest timed action.}}

    Times are in nanoseconds.  The kernel is deterministic: actions
    scheduled for the same instant run in scheduling order. *)

type t

(** [create ?metrics ()] — when [metrics] is given, the kernel
    registers its phase probes ([kernel.activations],
    [kernel.delta_cycles], [kernel.time_advances],
    [kernel.update_actions], [kernel.timed_scheduled],
    [kernel.sim_time_ns]) and phase timers ([kernel.eval_phase],
    [kernel.update_phase], [kernel.advance_phase]) on that registry;
    components created on this kernel ({!Signal}, {!Tlm}) instrument
    the same registry.  Without [metrics] a private disabled registry
    is used: probes still answer, push updates are no-ops. *)
val create : ?metrics:Tabv_obs.Metrics.t -> unit -> t

(** The registry this kernel (and everything created on it) reports to. *)
val metrics : t -> Tabv_obs.Metrics.t

(** Current simulation time (ns). *)
val now : t -> int

(** Current delta cycle within the current instant (0-based). *)
val delta : t -> int

(** Schedule [f] at an absolute time [>= now].
    @raise Invalid_argument if [time < now]. *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** Schedule [f] after [delay >= 0] ns. *)
val schedule_after : t -> delay:int -> (unit -> unit) -> unit

(** Make [f] runnable in the current evaluation phase. *)
val schedule_now : t -> (unit -> unit) -> unit

(** Make [f] runnable in the next delta cycle of the current instant. *)
val schedule_next_delta : t -> (unit -> unit) -> unit

(** Register an update action for the update phase of the current
    delta (used by {!Signal}). *)
val request_update : t -> (unit -> unit) -> unit

(** Stop the simulation at the end of the current evaluation phase. *)
val stop : t -> unit

(** [run t ()] runs until no activity remains, [stop] is called, or
    the optional [until] horizon (ns) would be crossed; returns the
    final simulation time.  Re-entrant calls are rejected. *)
val run : ?until:int -> t -> int

(** Number of evaluation-phase process activations so far (a good
    proxy for simulator load, used by the benchmarks). *)
val activation_count : t -> int

(** Number of delta cycles executed so far. *)
val delta_count : t -> int

(** Number of time-advance steps taken so far. *)
val time_advance_count : t -> int

(** Number of update-phase actions applied so far. *)
val update_action_count : t -> int
