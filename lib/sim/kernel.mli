(** Discrete-event simulation kernel (SystemC-style).

    The kernel drives simulation through the classic three-phase loop:
    {ol
    {- {e evaluation}: run every runnable process;}
    {- {e update}: apply requested signal updates;}
    {- {e delta/time advance}: processes woken by updates run in the
       next delta cycle at the same simulation time; when no delta
       activity remains, time advances to the earliest timed action.}}

    Times are in nanoseconds.  The kernel is deterministic: actions
    scheduled for the same instant run in scheduling order. *)

type t

(** How a {!run} ended.  [Completed] covers both an explicit {!stop}
    and reaching the [until] horizon; the other verdicts are the
    degraded-but-structured endings introduced for fault-injection
    campaigns: a quiescent end with processes still blocked on events
    ([Starved]), a tripped delta-cycle watchdog ([Livelock]), an
    exhausted time-advance budget ([Budget_exhausted]) and a contained
    process exception ([Process_crashed], first crash wins). *)
type diagnosis =
  | Completed
  | Starved of { waiting : int }  (** blocked event waiters at the end *)
  | Livelock of { time : int; delta_cycles : int }
  | Budget_exhausted of { steps : int }
  | Process_crashed of { name : string; error : string }

(** Watchdog configuration for one {!run}. *)
type guard = {
  max_delta_cycles : int option;
      (** per-instant delta-cycle cap; tripping yields [Livelock] *)
  max_steps : int option;
      (** per-run time-advance budget; tripping yields [Budget_exhausted] *)
  contain_crashes : bool;
      (** catch exceptions from evaluation-phase actions: the raising
          process dies, the run continues, the diagnosis becomes
          [Process_crashed] *)
}

(** [{ max_delta_cycles = Some 1_000_000; max_steps = None;
    contain_crashes = false }] — a delta cap generous enough that no
    legitimate design trips it, so zero-delay feedback livelocks
    terminate by default. *)
val default_guard : guard

(** All watchdogs off (the pre-diagnosis behaviour: a livelocked
    design hangs). *)
val unguarded : guard

(** [create ?metrics ()] — when [metrics] is given, the kernel
    registers its phase probes ([kernel.activations],
    [kernel.delta_cycles], [kernel.time_advances],
    [kernel.update_actions], [kernel.timed_scheduled],
    [kernel.sim_time_ns], [kernel.watchdog_trips],
    [kernel.contained_crashes], [kernel.blocked_waiters]) and phase
    timers ([kernel.eval_phase], [kernel.update_phase],
    [kernel.advance_phase]) on that registry; components created on
    this kernel ({!Signal}, {!Tlm}) instrument the same registry.
    Without [metrics] a private disabled registry is used: probes
    still answer, push updates are no-ops. *)
val create : ?metrics:Tabv_obs.Metrics.t -> unit -> t

(** The registry this kernel (and everything created on it) reports to. *)
val metrics : t -> Tabv_obs.Metrics.t

(** Current simulation time (ns). *)
val now : t -> int

(** Current delta cycle within the current instant (0-based). *)
val delta : t -> int

(** Schedule [f] at an absolute time [>= now].
    @raise Invalid_argument if [time < now]. *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** Schedule [f] after [delay >= 0] ns. *)
val schedule_after : t -> delay:int -> (unit -> unit) -> unit

(** Make [f] runnable in the current evaluation phase. *)
val schedule_now : t -> (unit -> unit) -> unit

(** Make [f] runnable in the next delta cycle of the current instant. *)
val schedule_next_delta : t -> (unit -> unit) -> unit

(** Register an update action for the update phase of the current
    delta (used by {!Signal}). *)
val request_update : t -> (unit -> unit) -> unit

(** Stop the simulation at the end of the current evaluation phase. *)
val stop : t -> unit

(** Blocked-process accounting, maintained by {!Process} around event
    waits: a positive count at a quiescent end means event starvation
    (diagnosed as [Starved]), not completion. *)
val add_waiter : t -> unit

val remove_waiter : t -> unit

(** Threads currently blocked on an event wait. *)
val waiting_count : t -> int

(** Name the process about to run, for [Process_crashed] attribution;
    {!Process} calls this before each body/continuation resume. *)
val set_label : t -> string -> unit

(** [run t ()] runs until no activity remains, [stop] is called, a
    watchdog of [guard] (default {!default_guard}) trips, or the
    optional [until] horizon (ns) would be crossed; returns the final
    simulation time.  How the run ended is available from
    {!last_diagnosis}.  Re-entrant calls are rejected. *)
val run : ?until:int -> ?guard:guard -> t -> int

(** Diagnosis of the most recent {!run} ([Completed] before any run). *)
val last_diagnosis : t -> diagnosis

val diagnosis_to_string : diagnosis -> string
val pp_diagnosis : Format.formatter -> diagnosis -> unit

(** Number of evaluation-phase process activations so far (a good
    proxy for simulator load, used by the benchmarks). *)
val activation_count : t -> int

(** Number of delta cycles executed so far. *)
val delta_count : t -> int

(** Number of time-advance steps taken so far. *)
val time_advance_count : t -> int

(** Number of update-phase actions applied so far. *)
val update_action_count : t -> int

(** Watchdogs tripped so far (livelock caps and step budgets). *)
val watchdog_trip_count : t -> int

(** Process exceptions contained so far (under [contain_crashes]). *)
val contained_crash_count : t -> int
