(** Dense signal arena: flat [current]/[next] value arrays plus a
    dirty flag array per typed pool.  Every elaborated
    [bool]/[int]/[int64] signal claims one slot; reads are single
    array loads and pending updates are per-slot flag stores, so the
    compiled engine's signal traffic allocates nothing.  The flags are
    one word per slot (not packed bits) so partition-pool workers
    marking slots of disjoint partitions never read-modify-write
    shared memory.  One arena belongs to one kernel. *)

type 'a pool
type t

val create : unit -> t

(** The three typed pools of the arena. *)
val bools : t -> bool pool

val ints : t -> int pool
val int64s : t -> int64 pool

(** [alloc pool init] claims a fresh slot holding [init] in both the
    current and next arrays, and returns its index. *)
val alloc : 'a pool -> 'a -> int

(** Slots allocated so far. *)
val size : 'a pool -> int

val get : 'a pool -> int -> 'a
val set_cur : 'a pool -> int -> 'a -> unit
val get_next : 'a pool -> int -> 'a
val set_next : 'a pool -> int -> 'a -> unit

(** Pending-update bit of a slot (the arena analogue of the heap
    signal's [update_pending] flag). *)
val dirty : 'a pool -> int -> bool

val set_dirty : 'a pool -> int -> unit
val clear_dirty : 'a pool -> int -> unit
