(** Signals with SystemC [sc_signal] semantics.

    A write stores the next value; the kernel applies it in the update
    phase of the current delta.  When the applied value differs from
    the current one the signal's value-change event is notified, waking
    sensitive processes in the next delta cycle.  Reads always return
    the current (pre-update) value, which is what makes zero-delay
    feedback loops and register semantics deterministic. *)

type 'a t

(** [create kernel ~name ?equal init] — [equal] defaults to structural
    equality.  Values live in the signal record itself; prefer the
    typed constructors below (or {!Elab.signal_bool} & co.) for dense
    arena storage and monomorphic comparison. *)
val create : Kernel.t -> name:string -> ?equal:('a -> 'a -> bool) -> 'a -> 'a t

(** {2 Typed constructors (arena-backed)}

    These claim a slot of the kernel's {!Arena}: current/next values
    live in flat typed arrays, the pending-update flag in a dirty
    bitset, and equality is monomorphic.  Semantics are identical to
    {!create} under both engines. *)

val create_bool : Kernel.t -> name:string -> bool -> bool t
val create_int : Kernel.t -> name:string -> int -> int t
val create_int64 : Kernel.t -> name:string -> int64 -> int64 t

val name : 'a t -> string

(** Stable process-global identifier, keys the elaboration dependency
    graph. *)
val uid : 'a t -> int

val read : 'a t -> 'a

(** The engine-interface read used by tracing and reporting
    ({!Trace_rec}, {!Trace_dump}): identical to {!read}, named to make
    the engine-agnostic observation path explicit. *)
val observe : 'a t -> 'a

(** Schedule [v] as the value after the next update phase. *)
val write : 'a t -> 'a -> unit

(** {2 Interposition (saboteurs)}

    A fault-injection layer may install one {e transform} per signal:
    each update-phase application first passes the driven value
    through the transform, so a saboteur can force, flip or glitch the
    observed value without touching the driving logic.  The honest
    driven value is retained internally — clearing the interposer and
    {!refresh}ing restores it. *)

(** [interpose t f] installs [f] as the signal's transform.
    @raise Invalid_argument if one is already installed (compose
    faults into one transform instead). *)
val interpose : 'a t -> ('a -> 'a) -> unit

val clear_interpose : 'a t -> unit
val interposed : 'a t -> bool

(** Request an update-phase re-application of the last driven value
    even without a new {!write}: this is how a saboteur arms or
    disarms at an instant where the design itself is silent. *)
val refresh : 'a t -> unit

(** Notified each time the value actually changes. *)
val changed : 'a t -> Event.t

(** Number of effective value changes so far. *)
val change_count : 'a t -> int

(** Set the value immediately, bypassing the update phase; only for
    elaboration-time initialisation (raises once simulation time or
    delta has advanced beyond zero activity — see implementation). *)
val force : 'a t -> 'a -> unit
