(** Signals with SystemC [sc_signal] semantics.

    A write stores the next value; the kernel applies it in the update
    phase of the current delta.  When the applied value differs from
    the current one the signal's value-change event is notified, waking
    sensitive processes in the next delta cycle.  Reads always return
    the current (pre-update) value, which is what makes zero-delay
    feedback loops and register semantics deterministic. *)

type 'a t

(** [create kernel ~name ?equal init] — [equal] defaults to structural
    equality. *)
val create : Kernel.t -> name:string -> ?equal:('a -> 'a -> bool) -> 'a -> 'a t

val name : 'a t -> string
val read : 'a t -> 'a

(** Schedule [v] as the value after the next update phase. *)
val write : 'a t -> 'a -> unit

(** {2 Interposition (saboteurs)}

    A fault-injection layer may install one {e transform} per signal:
    each update-phase application first passes the driven value
    through the transform, so a saboteur can force, flip or glitch the
    observed value without touching the driving logic.  The honest
    driven value is retained internally — clearing the interposer and
    {!refresh}ing restores it. *)

(** [interpose t f] installs [f] as the signal's transform.
    @raise Invalid_argument if one is already installed (compose
    faults into one transform instead). *)
val interpose : 'a t -> ('a -> 'a) -> unit

val clear_interpose : 'a t -> unit
val interposed : 'a t -> bool

(** Request an update-phase re-application of the last driven value
    even without a new {!write}: this is how a saboteur arms or
    disarms at an instant where the design itself is silent. *)
val refresh : 'a t -> unit

(** Notified each time the value actually changes. *)
val changed : 'a t -> Event.t

(** Number of effective value changes so far. *)
val change_count : 'a t -> int

(** Set the value immediately, bypassing the update phase; only for
    elaboration-time initialisation (raises once simulation time or
    delta has advanced beyond zero activity — see implementation). *)
val force : 'a t -> 'a -> unit
