(** Transaction-level modelling primitives (TLM-2.0-style generic
    payload and blocking transport).

    An initiator socket is bound to one target socket; a blocking
    transport call runs the target's callback (which may consume
    simulation time via {!Process.wait_ns} when invoked from a thread
    process).  The socket records every completed transaction and
    notifies observers with begin/end timestamps — this is the hook the
    TLM checker wrapper uses to define transaction evaluation points
    (Sec. IV of the paper). *)

type command =
  | Read
  | Write

(** Open extension type: models TLM-2.0 generic-payload extensions.
    DUV models declare their own constructors to carry structured I/O
    bundles through a transaction. *)
type ext = ..

type payload = {
  command : command;
  address : int;
  mutable data : int64;
  mutable response_ok : bool;
  mutable extension : ext option;
}

val make_payload : ?address:int -> ?data:int64 -> ?extension:ext -> command -> payload

(** End-of-transaction observation. *)
type transaction = {
  payload : payload;
  start_time : int;  (** ns, call instant *)
  end_time : int;  (** ns, return instant *)
}

module Target : sig
  type t

  (** [create kernel ~name transport] — [transport] implements the
      target behaviour for one payload. *)
  val create : Kernel.t -> name:string -> (payload -> unit) -> t

  val name : t -> string
end

module Initiator : sig
  type t

  val create : Kernel.t -> name:string -> t
  val name : t -> string

  (** @raise Invalid_argument when already bound. *)
  val bind : t -> Target.t -> unit

  (** Blocking transport.  Runs the target callback; the transaction
      end event fires at the instant the callback returns.
      @raise Invalid_argument when unbound. *)
  val b_transport : t -> payload -> unit

  (** [interpose t f] installs a transaction mutator: every
      {!b_transport} call becomes [f underlying payload] where
      [underlying] is the bound target's transport.  A mutator may
      corrupt the payload, skip the call (dropped response), call it
      twice (duplicate), or consume extra simulation time first —
      without touching initiator or target logic.  Observers and
      timing still see the transaction as one completed call.
      @raise Invalid_argument if one is already installed. *)
  val interpose : t -> ((payload -> unit) -> payload -> unit) -> unit

  val clear_interpose : t -> unit
  val interposed : t -> bool

  (** Subscribe to completed transactions, in completion order. *)
  val on_transaction : t -> (transaction -> unit) -> unit

  (** Transactions completed so far. *)
  val transaction_count : t -> int

  (** The socket's transaction span ring (recorded only while the
      kernel's metrics registry is enabled; bounded, see
      {!Tabv_obs.Span}).  Each completed transaction is one span,
      labelled with the socket name. *)
  val spans : t -> Tabv_obs.Span.t
end
