(** Simulation events.

    Events carry two kinds of subscribers:
    {ul
    {- {e static} subscribers (method-process sensitivity): invoked on
       every notification;}
    {- {e dynamic} subscribers (thread waits): invoked once and then
       removed.}}

    Notifications use delta semantics: subscribers run in the next
    delta cycle of the current instant, never within the notifying
    phase. *)

type t

val create : Kernel.t -> string -> t
val name : t -> string
val kernel : t -> Kernel.t

(** Delta notification: subscribers run in the next delta cycle. *)
val notify : t -> unit

(** Timed notification after [delay >= 0] ns ([delay = 0] is a delta
    notification at the current instant). *)
val notify_after : t -> delay:int -> unit

(** Subscribe statically (persistent). *)
val on_event : t -> (unit -> unit) -> unit

(** Like {!on_event}, returning the subscription's index for later
    {!set_partition} (used by {!Elab} to tag method-process handlers
    with their levelized partition). *)
val subscribe : t -> (unit -> unit) -> int

(** Tag a static subscription with a partition id ([-1] = untagged).
    Only meaningful on the compiled engine with a partition pool.
    @raise Invalid_argument on an unknown subscription index. *)
val set_partition : t -> int -> int -> unit

(** Install the serial fused view of the static subscribers (compiled
    engine, used by {!Elab.compile}): each span [((first, last),
    block)] — sorted, non-overlapping, inclusive handler-index runs —
    is replaced by its single [block] action, handlers outside the
    spans stay in place, so fire-time order is unchanged.  The view is
    consulted only when no partition pool is installed, and is
    invalidated by any later {!subscribe}.
    @raise Invalid_argument on unsorted, overlapping or out-of-range
    spans. *)
val fuse : t -> ((int * int) * (unit -> unit)) list -> unit

(** Subscribe for a single notification. *)
val once : t -> (unit -> unit) -> unit

(** Number of notifications delivered so far. *)
val notification_count : t -> int
