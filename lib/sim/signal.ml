type 'a t = {
  kernel : Kernel.t;
  name : string;
  equal : 'a -> 'a -> bool;
  mutable current : 'a;
  mutable next : 'a;
  mutable update_pending : bool;
  mutable transform : ('a -> 'a) option;  (* saboteur interposition *)
  changed : Event.t;
  mutable changes : int;
  m_writes : Tabv_obs.Metrics.counter;  (* shared per kernel *)
  m_updates : Tabv_obs.Metrics.counter;
}

let create kernel ~name ?(equal = ( = )) init =
  let metrics = Kernel.metrics kernel in
  {
    kernel;
    name;
    equal;
    current = init;
    next = init;
    update_pending = false;
    transform = None;
    changed = Event.create kernel (name ^ ".changed");
    changes = 0;
    m_writes = Tabv_obs.Metrics.counter metrics "signal.writes";
    m_updates = Tabv_obs.Metrics.counter metrics "signal.updates";
  }

let name t = t.name
let read t = t.current

let apply_update t () =
  t.update_pending <- false;
  let next =
    (* The interposition hook: a saboteur sees the driven value and
       may replace it.  [t.next] keeps the honest driven value so a
       disarmed saboteur restores it at the next refresh/update. *)
    match t.transform with
    | None -> t.next
    | Some f -> f t.next
  in
  if not (t.equal t.current next) then begin
    t.current <- next;
    t.changes <- t.changes + 1;
    Tabv_obs.Metrics.incr t.m_updates;
    Event.notify t.changed
  end

let schedule_update t =
  if not t.update_pending then begin
    t.update_pending <- true;
    Kernel.request_update t.kernel (apply_update t)
  end

let write t v =
  t.next <- v;
  Tabv_obs.Metrics.incr t.m_writes;
  schedule_update t

let interpose t f =
  match t.transform with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Signal.interpose: %s already has an interposer" t.name)
  | None -> t.transform <- Some f

let clear_interpose t = t.transform <- None
let interposed t = t.transform <> None

let refresh t = schedule_update t

let changed t = t.changed
let change_count t = t.changes

let force t v =
  t.current <- v;
  t.next <- v
