type 'a t = {
  kernel : Kernel.t;
  name : string;
  equal : 'a -> 'a -> bool;
  mutable current : 'a;
  mutable next : 'a;
  mutable update_pending : bool;
  changed : Event.t;
  mutable changes : int;
  m_writes : Tabv_obs.Metrics.counter;  (* shared per kernel *)
  m_updates : Tabv_obs.Metrics.counter;
}

let create kernel ~name ?(equal = ( = )) init =
  let metrics = Kernel.metrics kernel in
  {
    kernel;
    name;
    equal;
    current = init;
    next = init;
    update_pending = false;
    changed = Event.create kernel (name ^ ".changed");
    changes = 0;
    m_writes = Tabv_obs.Metrics.counter metrics "signal.writes";
    m_updates = Tabv_obs.Metrics.counter metrics "signal.updates";
  }

let name t = t.name
let read t = t.current

let apply_update t () =
  t.update_pending <- false;
  if not (t.equal t.current t.next) then begin
    t.current <- t.next;
    t.changes <- t.changes + 1;
    Tabv_obs.Metrics.incr t.m_updates;
    Event.notify t.changed
  end

let write t v =
  t.next <- v;
  Tabv_obs.Metrics.incr t.m_writes;
  if not t.update_pending then begin
    t.update_pending <- true;
    Kernel.request_update t.kernel (apply_update t)
  end

let changed t = t.changed
let change_count t = t.changes

let force t v =
  t.current <- v;
  t.next <- v
