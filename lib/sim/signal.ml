(* Storage split: a generic signal keeps its value pair in its own
   record ([S_heap]); the typed constructors ([create_bool] & co.)
   claim a slot of the kernel's dense arena instead ([S_slot]), so the
   compiled engine's signal traffic is flat-array loads and stores
   with a dirty-flag slot standing in for the per-signal pending flag.
   Both
   storages behave identically under both engines — the arena is a
   layout change, not a semantics change. *)
type 'a store =
  | S_heap
  | S_slot of {
      pool : 'a Arena.pool;
      slot : int;
    }

type 'a t = {
  kernel : Kernel.t;
  uid : int;  (* process-global, keys the elaboration graph *)
  name : string;
  equal : 'a -> 'a -> bool;
  store : 'a store;
  compiled : bool;
  mutable current : 'a;  (* S_heap storage; initial value for S_slot *)
  mutable next : 'a;
  mutable update_pending : bool;  (* S_heap; S_slot uses the dirty bit *)
  mutable transform : ('a -> 'a) option;  (* saboteur interposition *)
  changed : Event.t;
  mutable changes : int;
  update_thunk : unit -> unit;  (* preallocated, compiled engine only *)
  m_writes : Tabv_obs.Metrics.counter;  (* shared per kernel *)
  m_updates : Tabv_obs.Metrics.counter;
}

let uid_counter = ref 0

let name t = t.name
let uid t = t.uid

let read t =
  match t.store with
  | S_heap -> t.current
  | S_slot { pool; slot } -> Arena.get pool slot

(* The engine-interface read: tracing and reporting go through this
   alias instead of reaching into signal internals, so they are
   agnostic to where the value lives. *)
let observe = read

let get_next t =
  match t.store with
  | S_heap -> t.next
  | S_slot { pool; slot } -> Arena.get_next pool slot

let set_next t v =
  match t.store with
  | S_heap -> t.next <- v
  | S_slot { pool; slot } -> Arena.set_next pool slot v

let set_current t v =
  match t.store with
  | S_heap -> t.current <- v
  | S_slot { pool; slot } -> Arena.set_cur pool slot v

let pending t =
  match t.store with
  | S_heap -> t.update_pending
  | S_slot { pool; slot } -> Arena.dirty pool slot

let set_pending t =
  match t.store with
  | S_heap -> t.update_pending <- true
  | S_slot { pool; slot } -> Arena.set_dirty pool slot

let clear_pending t =
  match t.store with
  | S_heap -> t.update_pending <- false
  | S_slot { pool; slot } -> Arena.clear_dirty pool slot

let apply_update t () =
  clear_pending t;
  let next =
    (* The interposition hook: a saboteur sees the driven value and
       may replace it.  The next slot keeps the honest driven value so
       a disarmed saboteur restores it at the next refresh/update. *)
    match t.transform with
    | None -> get_next t
    | Some f -> f (get_next t)
  in
  if not (t.equal (read t) next) then begin
    set_current t next;
    t.changes <- t.changes + 1;
    Tabv_obs.Metrics.incr t.m_updates;
    Event.notify t.changed
  end

let make kernel ~name ~equal ~store init =
  let metrics = Kernel.metrics kernel in
  incr uid_counter;
  let rec t =
    {
      kernel;
      uid = !uid_counter;
      name;
      equal;
      store;
      compiled = Kernel.is_compiled kernel;
      current = init;
      next = init;
      update_pending = false;
      transform = None;
      changed = Event.create kernel (name ^ ".changed");
      changes = 0;
      update_thunk = (fun () -> apply_update t ());
      m_writes = Tabv_obs.Metrics.counter metrics "signal.writes";
      m_updates = Tabv_obs.Metrics.counter metrics "signal.updates";
    }
  in
  t

let create kernel ~name ?(equal = ( = )) init =
  make kernel ~name ~equal ~store:S_heap init

let bool_equal (a : bool) b = a = b
let int_equal (a : int) b = a = b

let create_bool kernel ~name init =
  let pool = Arena.bools (Kernel.arena kernel) in
  let slot = Arena.alloc pool init in
  make kernel ~name ~equal:bool_equal ~store:(S_slot { pool; slot }) init

let create_int kernel ~name init =
  let pool = Arena.ints (Kernel.arena kernel) in
  let slot = Arena.alloc pool init in
  make kernel ~name ~equal:int_equal ~store:(S_slot { pool; slot }) init

let create_int64 kernel ~name init =
  let pool = Arena.int64s (Kernel.arena kernel) in
  let slot = Arena.alloc pool init in
  make kernel ~name ~equal:Int64.equal ~store:(S_slot { pool; slot }) init

let schedule_update t =
  if not (pending t) then begin
    set_pending t;
    if t.compiled then Kernel.request_update t.kernel t.update_thunk
    else Kernel.request_update t.kernel (apply_update t)
  end

let write t v =
  set_next t v;
  Tabv_obs.Metrics.incr t.m_writes;
  schedule_update t

let interpose t f =
  match t.transform with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Signal.interpose: %s already has an interposer" t.name)
  | None -> t.transform <- Some f

let clear_interpose t = t.transform <- None
let interposed t = t.transform <> None

let refresh t = schedule_update t

let changed t = t.changed
let change_count t = t.changes

let force t v =
  set_current t v;
  set_next t v
