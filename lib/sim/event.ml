type t = {
  kernel : Kernel.t;
  name : string;
  compiled : bool;  (* engine of [kernel], latched at creation *)
  mutable static : (unit -> unit) list;  (* reversed registration order *)
  mutable dynamic : (unit -> unit) list;
  (* Compiled-engine mirror of [static]: registration-ordered handler
     and partition-tag arrays, iterated without allocating on fire. *)
  mutable statics : (unit -> unit) array;
  mutable parts : int array;
  mutable n_static : int;
  (* Serial fused view ({!fuse}): contiguous handler runs collapsed
     into activation blocks.  [n_fused < 0] means no view; any later
     [subscribe] invalidates it.  Only consulted without a partition
     pool, so the tag side needs no fused counterpart. *)
  mutable fstatics : (unit -> unit) array;
  mutable fparts : int array;
  mutable n_fused : int;
  mutable notifications : int;
}

let create kernel name =
  {
    kernel;
    name;
    compiled = Kernel.is_compiled kernel;
    static = [];
    dynamic = [];
    statics = Array.make 4 ignore;
    parts = Array.make 4 (-1);
    n_static = 0;
    fstatics = [||];
    fparts = [||];
    n_fused = -1;
    notifications = 0;
  }

let name t = t.name
let kernel t = t.kernel

let fire t =
  t.notifications <- t.notifications + 1;
  if t.compiled then begin
    (if t.n_fused >= 0 && not (Kernel.pool_active t.kernel) then
       Kernel.schedule_next_delta_batch t.kernel t.fstatics t.fparts t.n_fused
     else
       Kernel.schedule_next_delta_batch t.kernel t.statics t.parts t.n_static);
    if t.dynamic <> [] then begin
      let dynamic = List.rev t.dynamic in
      t.dynamic <- [];
      List.iter (fun f -> Kernel.schedule_next_delta t.kernel f) dynamic
    end
  end
  else begin
    let dynamic = List.rev t.dynamic in
    t.dynamic <- [];
    let static = List.rev t.static in
    List.iter (fun f -> Kernel.schedule_next_delta t.kernel f) static;
    List.iter (fun f -> Kernel.schedule_next_delta t.kernel f) dynamic
  end

let notify t = fire t

let notify_after t ~delay =
  if delay = 0 then fire t
  else Kernel.schedule_after t.kernel ~delay (fun () -> fire t)

let subscribe t f =
  (* Any new handler invalidates a fused view (it would not be part of
     the blocks); fires fall back to the per-handler arrays. *)
  t.n_fused <- -1;
  t.fstatics <- [||];
  t.fparts <- [||];
  t.static <- f :: t.static;
  if t.n_static = Array.length t.statics then begin
    let grown = Array.make (2 * t.n_static) ignore in
    Array.blit t.statics 0 grown 0 t.n_static;
    t.statics <- grown;
    let grown_parts = Array.make (2 * t.n_static) (-1) in
    Array.blit t.parts 0 grown_parts 0 t.n_static;
    t.parts <- grown_parts
  end;
  t.statics.(t.n_static) <- f;
  t.parts.(t.n_static) <- -1;
  t.n_static <- t.n_static + 1;
  t.n_static - 1

let on_event t f = ignore (subscribe t f)

let set_partition t index part =
  if index < 0 || index >= t.n_static then
    invalid_arg "Event.set_partition: no such subscription";
  t.parts.(index) <- part

let fuse t spans =
  (* [spans] is a sorted, non-overlapping list of inclusive index runs
     [(first, last), block]: the fused view keeps every handler outside
     the spans in place and replaces each run with its block, so
     fire-time scheduling order is exactly the per-handler order. *)
  let out = ref [] in
  let n_out = ref 0 in
  let i = ref 0 in
  let rest = ref spans in
  while !i < t.n_static do
    (match !rest with
     | ((first, last), block) :: tail when first = !i ->
       if last < first || last >= t.n_static then
         invalid_arg "Event.fuse: span out of range";
       out := block :: !out;
       rest := tail;
       i := last + 1
     | ((first, _), _) :: _ when first < !i ->
       invalid_arg "Event.fuse: overlapping or unsorted spans"
     | _ ->
       out := t.statics.(!i) :: !out;
       incr i);
    incr n_out
  done;
  if !rest <> [] then invalid_arg "Event.fuse: span out of range";
  let fstatics = Array.make (max !n_out 1) ignore in
  List.iteri (fun j f -> fstatics.(!n_out - 1 - j) <- f) !out;
  t.fstatics <- fstatics;
  (* The fused view is only consulted when no partition pool is
     installed, where tags are ignored — a same-length untagged array
     keeps the batch-scheduling interface uniform. *)
  t.fparts <- Array.make (max !n_out 1) (-1);
  t.n_fused <- !n_out

let once t f = t.dynamic <- f :: t.dynamic
let notification_count t = t.notifications
