(** Hash-consed (interned) LTL terms.

    Structurally equal formulas share one heap node, so {!equal} is
    physical equality (O(1)), every node has a dense unique {!id}
    usable as a hash-table key, and per-term attributes (e.g. whether
    the term contains the timed [next_eps^tau] operator) are computed
    once per distinct term.

    The intern table is domain-local ([Domain.DLS]) and append-only:
    ids are stable for the lifetime of the owning domain.  This is
    what makes the checker's [(state, atom valuation) -> state]
    transition memo sound — a state id observed once always denotes
    the same formula.

    {b Domain safety.} Each domain owns a private interning universe
    (table, id counter, and the scratch slots of the nodes it
    creates), so concurrent workers may intern and progress formulas
    without synchronization.  Terms must not be shared across domains:
    {!equal} is physical equality within one universe only, and the
    {!set_sample} scratch slot is single-writer by the confinement of
    its node to the interning domain. *)

type t = private {
  node : node;
  id : int;  (** dense unique id *)
  hkey : int;  (** precomputed hash *)
  timed : bool;  (** contains [Next_event] *)
  mutable sample_stamp : int;  (** see {!set_sample} *)
  mutable sample_value : bool;
}

and node =
  | Atom of Expr.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next_n of int * t
  | Next_event of Ltl.next_event * t
  | Until of t * t
  | Release of t * t
  | Always of t
  | Eventually of t

(** {2 Smart constructors} *)

val atom : Expr.t -> t

(** [tt ()] / [ff ()] intern the boolean constants in the calling
    domain's universe (functions, not values, so one domain's node —
    and its mutable scratch slot — never leaks into another). *)
val tt : unit -> t

val ff : unit -> t
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val implies : t -> t -> t

(** Collapses nested next chains like {!Ltl.next_n}; [next_n 0 p = p]. *)
val next_n : int -> t -> t

val next_event : Ltl.next_event -> t -> t
val until : t -> t -> t
val release : t -> t -> t
val always : t -> t
val eventually : t -> t

(** {2 Conversion} *)

(** Node-for-node faithful interning: [to_ltl (intern f)] is
    structurally equal to [f]. *)
val intern : Ltl.t -> t

val to_ltl : t -> Ltl.t

(** {2 Accessors} *)

val id : t -> int
val hash : t -> int

(** Physical equality — O(1) thanks to hash-consing. *)
val equal : t -> t -> bool

(** Total order on unique ids (creation order, not structural). *)
val compare : t -> t -> int

(** True iff the term contains a [Next_event] (timed) operator. *)
val is_timed : t -> bool

val node : t -> node
val is_nnf : t -> bool

(** Number of distinct terms interned so far in the calling domain's
    universe. *)
val node_count : unit -> int

(** Replace the calling domain's interning universe with a fresh,
    empty one.  Terms interned before the reset stay structurally
    valid but are no longer canonical: a subsequent {!intern} of an
    equal formula yields a {e different} node, so never mix terms from
    across a reset.  Intended for batch runners (the campaign runner
    resets between jobs so per-job statistics are independent of job
    placement); must only be called when no obligations or monitors
    built from the old universe are still stepped. *)
val reset_universe : unit -> unit

(** {2 Per-instant scratch slot}

    A single cached boolean per node, tagged with an opaque
    caller-owned stamp; external per-instant caches (the checker's
    sampler) use it to answer "value of this atom at the current
    instant" with one load and one compare instead of a hashtable
    probe.  Callers must use globally unique stamps per (cache,
    instant) pair; a mismatched stamp simply means "not cached".
    Nodes start with a stamp no caller can own ([min_int]). *)

val sample_stamp : t -> int

val sample_value : t -> bool
val set_sample : t -> stamp:int -> value:bool -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
