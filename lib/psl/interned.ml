(* Hash-consed LTL terms.

   Every structurally distinct formula is represented by exactly one
   heap node, so equality is physical equality, every node carries a
   dense unique id usable as a hash-table key, and derived attributes
   (timedness, atom sets) are computed once per distinct term instead
   of once per occurrence.  The table is domain-local and append-only:
   terms are never forgotten, which keeps ids stable for the lifetime
   of their domain — exactly what the checker's transition memo needs.

   Domain safety: every domain owns a private interning universe
   (table + id counter) behind [Domain.DLS], so concurrent workers
   (e.g. the campaign runner's job pool) never contend on, or corrupt,
   a shared hashtable.  A term interned on one domain must never be
   mixed with terms interned on another: [equal] is physical equality
   and the mutable per-node scratch slots ([sample_stamp]) are only
   race-free because a node is confined to the domain that interned
   it.  The single-domain fast path is unchanged: [Domain.DLS.get] on
   an initialized key is a handful of loads, no locks, no branches on
   the hot probe itself. *)

type t = {
  node : node;
  id : int;
  hkey : int;
  timed : bool;  (* contains Next_event *)
  mutable sample_stamp : int;
      (* per-instant scratch slot for external atom-value caches (see
         the checker's [Sampler]): a cached boolean tagged by an
         opaque caller-owned stamp.  Living inside the node, a cache
         probe is one load and one compare — no hashtable. *)
  mutable sample_value : bool;
}

and node =
  | Atom of Expr.t
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next_n of int * t
  | Next_event of Ltl.next_event * t
  | Until of t * t
  | Release of t * t
  | Always of t
  | Eventually of t

(* One-level structural equality: children are compared physically,
   which is sound because they are already interned. *)
let node_equal a b =
  match a, b with
  | Atom e1, Atom e2 -> Expr.equal e1 e2
  | Not p1, Not p2 -> p1 == p2
  | And (p1, q1), And (p2, q2) -> p1 == p2 && q1 == q2
  | Or (p1, q1), Or (p2, q2) -> p1 == p2 && q1 == q2
  | Implies (p1, q1), Implies (p2, q2) -> p1 == p2 && q1 == q2
  | Next_n (n1, p1), Next_n (n2, p2) -> n1 = n2 && p1 == p2
  | Next_event (ne1, p1), Next_event (ne2, p2) ->
    ne1.Ltl.tau = ne2.Ltl.tau && ne1.Ltl.eps = ne2.Ltl.eps && p1 == p2
  | Until (p1, q1), Until (p2, q2) -> p1 == p2 && q1 == q2
  | Release (p1, q1), Release (p2, q2) -> p1 == p2 && q1 == q2
  | Always p1, Always p2 -> p1 == p2
  | Eventually p1, Eventually p2 -> p1 == p2
  | ( ( Atom _ | Not _ | And _ | Or _ | Implies _ | Next_n _ | Next_event _
      | Until _ | Release _ | Always _ | Eventually _ ),
      _ ) ->
    false

let node_hash = function
  | Atom e -> Hashtbl.hash (0, Hashtbl.hash e)
  | Not p -> Hashtbl.hash (1, p.id)
  | And (p, q) -> Hashtbl.hash (2, p.id, q.id)
  | Or (p, q) -> Hashtbl.hash (3, p.id, q.id)
  | Implies (p, q) -> Hashtbl.hash (4, p.id, q.id)
  | Next_n (n, p) -> Hashtbl.hash (5, n, p.id)
  | Next_event (ne, p) -> Hashtbl.hash (6, ne.Ltl.tau, ne.Ltl.eps, p.id)
  | Until (p, q) -> Hashtbl.hash (7, p.id, q.id)
  | Release (p, q) -> Hashtbl.hash (8, p.id, q.id)
  | Always p -> Hashtbl.hash (9, p.id)
  | Eventually p -> Hashtbl.hash (10, p.id)

module Table = Hashtbl.Make (struct
  type t = node

  let equal = node_equal
  let hash = node_hash
end)

(* One interning universe per domain.  [counter] is plain mutable
   state (not [Atomic]): it is only ever touched by its owning
   domain. *)
type universe = {
  table : t Table.t;
  mutable counter : int;
}

let fresh_universe () = { table = Table.create 1024; counter = 0 }
let universe_key : universe Domain.DLS.key = Domain.DLS.new_key fresh_universe
let universe () = Domain.DLS.get universe_key

let reset_universe () = Domain.DLS.set universe_key (fresh_universe ())

let node_timed = function
  | Atom _ -> false
  | Next_event _ -> true
  | Not p | Next_n (_, p) | Always p | Eventually p -> p.timed
  | And (p, q) | Or (p, q) | Implies (p, q) | Until (p, q) | Release (p, q) ->
    p.timed || q.timed

let make node =
  let u = universe () in
  (* Exception-based probe: hits (the common case once the formula set
     is warm) allocate nothing. *)
  match Table.find u.table node with
  | t -> t
  | exception Not_found ->
    let id = u.counter in
    u.counter <- id + 1;
    let t =
      {
        node;
        id;
        hkey = node_hash node;
        timed = node_timed node;
        sample_stamp = min_int;
        sample_value = false;
      }
    in
    Table.add u.table node t;
    t

let node_count () = Table.length (universe ()).table

(* --- smart constructors ------------------------------------------- *)

let atom e = make (Atom e)

(* Functions, not values: a top-level [tt] would be interned into the
   initial domain's universe at module-init time and then leak — with
   its mutable scratch slot — into every other domain. *)
let tt () = atom (Expr.Bool true)
let ff () = atom (Expr.Bool false)
let not_ p = make (Not p)
let and_ p q = make (And (p, q))
let or_ p q = make (Or (p, q))
let implies p q = make (Implies (p, q))

let next_n n p =
  if n < 0 then invalid_arg "Interned.next_n: negative count"
  else if n = 0 then p
  else
    match p.node with
    | Next_n (m, inner) -> make (Next_n (n + m, inner))
    | _ -> make (Next_n (n, p))

let next_event ne p = make (Next_event (ne, p))
let until p q = make (Until (p, q))
let release p q = make (Release (p, q))
let always p = make (Always p)
let eventually p = make (Eventually p)

(* --- conversion ---------------------------------------------------- *)

let rec intern (f : Ltl.t) : t =
  match f with
  | Ltl.Atom e -> atom e
  | Ltl.Not p -> not_ (intern p)
  | Ltl.And (p, q) -> and_ (intern p) (intern q)
  | Ltl.Or (p, q) -> or_ (intern p) (intern q)
  | Ltl.Implies (p, q) -> implies (intern p) (intern q)
  | Ltl.Next_n (n, p) -> make (Next_n (n, intern p))
  | Ltl.Next_event (ne, p) -> next_event ne (intern p)
  | Ltl.Until (p, q) -> until (intern p) (intern q)
  | Ltl.Release (p, q) -> release (intern p) (intern q)
  | Ltl.Always p -> always (intern p)
  | Ltl.Eventually p -> eventually (intern p)

let rec to_ltl (t : t) : Ltl.t =
  match t.node with
  | Atom e -> Ltl.Atom e
  | Not p -> Ltl.Not (to_ltl p)
  | And (p, q) -> Ltl.And (to_ltl p, to_ltl q)
  | Or (p, q) -> Ltl.Or (to_ltl p, to_ltl q)
  | Implies (p, q) -> Ltl.Implies (to_ltl p, to_ltl q)
  | Next_n (n, p) -> Ltl.Next_n (n, to_ltl p)
  | Next_event (ne, p) -> Ltl.Next_event (ne, to_ltl p)
  | Until (p, q) -> Ltl.Until (to_ltl p, to_ltl q)
  | Release (p, q) -> Ltl.Release (to_ltl p, to_ltl q)
  | Always p -> Ltl.Always (to_ltl p)
  | Eventually p -> Ltl.Eventually (to_ltl p)

(* --- accessors ----------------------------------------------------- *)

let id t = t.id
let hash t = t.hkey
let sample_stamp t = t.sample_stamp
let sample_value t = t.sample_value

let set_sample t ~stamp ~value =
  t.sample_stamp <- stamp;
  t.sample_value <- value
let equal (a : t) (b : t) = a == b
let compare (a : t) (b : t) = Stdlib.compare a.id b.id
let is_timed t = t.timed
let node t = t.node

let rec is_nnf t =
  match t.node with
  | Atom _ -> true
  | Not { node = Atom _; _ } -> true
  | Not _ | Implies _ -> false
  | Next_n (_, p) | Next_event (_, p) | Always p | Eventually p -> is_nnf p
  | And (p, q) | Or (p, q) | Until (p, q) | Release (p, q) ->
    is_nnf p && is_nnf q

let pp ppf t = Ltl.pp ppf (to_ltl t)
let to_string t = Ltl.to_string (to_ltl t)
