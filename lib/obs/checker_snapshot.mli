(** Per-property checker snapshot.

    The record form of a monitor's statistics, shared by the whole
    stack: [Tabv_checker.Monitor.snapshot] produces it, the
    testbenches expose it per run, and [Tabv_core.Report_json]
    serializes it into the versioned metrics JSON.  [Tabv_core] sits
    below the checker library in the dependency order, which is why
    the record lives in [tabv_obs] rather than in [Monitor] — the
    checker re-exports both record types, so the fields are usable
    under either module path. *)

type failure = {
  property_name : string;
  activation_time : int;  (** when the failing instance fired *)
  failure_time : int;  (** evaluation point that raised the failure *)
}

type t = {
  property_name : string;
  engine : string;
      (** backend actually in use after fallback: ["progression"],
          ["progression-legacy"] or ["automaton"] *)
  activations : int;
  passes : int;
  trivial_passes : int;
  vacuous : bool;  (** evaluated but never non-trivially activated *)
  peak_instances : int;
  peak_distinct_states : int;
      (** peak distinct hash-consed states (interned engine; equals
          [peak_instances] for the legacy/automaton backends) *)
  pending : int;
  steps : int;  (** evaluation points consumed (after context gating) *)
  cache_hits : int;  (** monitor steps answered from the transition memo *)
  cache_misses : int;  (** monitor steps that ran the rewriting *)
  failures : failure list;
}

(** [hits / (hits + misses)], 0 when the checker never stepped. *)
val cache_hit_rate : t -> float

(** Total failures across a snapshot list. *)
val total_failures : t list -> int

val pp_failure : Format.formatter -> failure -> unit
val pp : Format.formatter -> t -> unit
