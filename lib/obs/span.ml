(* Event-span recorder: a bounded ring of (label, start, stop) spans
   in simulation time.  Used by the TLM layer to retain the tail of
   the transaction stream for post-mortem inspection without growing
   with the simulation; totals are kept across the whole run. *)

type span = {
  label : string;
  start_ns : int;
  stop_ns : int;
}

type t = {
  capacity : int;
  ring : span option array;
  mutable next : int;  (* next write position *)
  mutable recorded : int;  (* total record calls *)
  mutable total_ns : int;  (* summed duration of every recorded span *)
}

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; recorded = 0; total_ns = 0 }

let record t ~label ~start_ns ~stop_ns =
  t.ring.(t.next) <- Some { label; start_ns; stop_ns };
  t.next <- (t.next + 1) mod t.capacity;
  t.recorded <- t.recorded + 1;
  t.total_ns <- t.total_ns + (stop_ns - start_ns)

let recorded t = t.recorded
let retained t = min t.recorded t.capacity
let dropped t = t.recorded - retained t
let total_ns t = t.total_ns

let to_list t =
  (* Oldest retained span first. *)
  let n = retained t in
  let start = (t.next - n + t.capacity * 2) mod t.capacity in
  List.init n (fun i ->
    match t.ring.((start + i) mod t.capacity) with
    | Some span -> span
    | None -> assert false)

let pp ppf span =
  Format.fprintf ppf "%s [%d, %d]ns (%dns)" span.label span.start_ns span.stop_ns
    (span.stop_ns - span.start_ns)
