(* Metrics registry: named counters, gauges, histograms, probes and
   phase timers with a deterministic snapshot order.

   Design constraints (see DESIGN.md "Observability"):

   - zero dependencies: the registry lives below every other library
     in the repo so the simulation kernel, the checker engine, and the
     report emitters can all share one currency for runtime statistics;

   - near-zero cost when disabled: every push-style instrument
     (counter/gauge/histogram/timer) carries a shared [enabled] ref
     and its update is a single load-and-branch when the registry is
     off.  Pull-style probes cost nothing on the hot path by
     construction — they are only evaluated when a snapshot is taken;

   - deterministic snapshots: [snapshot] sorts by instrument name and
     contains only simulation-derived integers, never wall-clock
     values.  Two runs with the same seed therefore produce
     byte-identical snapshots.  Timers (which do read a real clock)
     are reported separately by [timers] and are excluded from
     [snapshot] on purpose. *)

type counter = {
  mutable c : int;
  c_on : bool ref;
}

type gauge = {
  mutable g : int;
  g_on : bool ref;
}

(* Power-of-two value histogram: bucket [i] counts observations [v]
   with [bits v = i] (bucket 0 holds v <= 0... 1).  63 buckets cover
   the whole positive [int] range; the summary only reports non-empty
   buckets, keyed by the exclusive upper bound [2^i]. *)
type histogram = {
  mutable n : int;
  mutable sum : int;
  mutable lo : int;
  mutable hi : int;
  buckets : int array;
  h_on : bool ref;
}

type timer = {
  mutable total : float;  (* accumulated seconds *)
  mutable t0 : float;
  mutable running : bool;
  mutable laps : int;
  t_on : bool ref;
  t_timing : bool ref;  (* a clock has been installed *)
  t_clock : (unit -> float) ref;
}

type combine =
  [ `Sum
  | `Max
  ]

type probe = {
  combine : combine;
  mutable sources : (unit -> int) list;  (* registration order, reversed *)
}

type instrument =
  | Counter_i of counter
  | Gauge_i of gauge
  | Histogram_i of histogram
  | Probe_i of probe

type t = {
  on : bool ref;
  instruments : (string, instrument) Hashtbl.t;
  timer_tbl : (string, timer) Hashtbl.t;
  timing : bool ref;
  clock : (unit -> float) ref;
}

(* Timers are off until a clock is installed: reading a wall clock
   (e.g. [Sys.time], a [times(2)] syscall) on a hot path such as the
   kernel's phase loop costs orders of magnitude more than the
   branch-guarded counters, so wall-clock sampling is a separate
   opt-in on top of [enabled]. *)
let create ?(enabled = true) () =
  {
    on = ref enabled;
    instruments = Hashtbl.create 32;
    timer_tbl = Hashtbl.create 8;
    timing = ref false;
    clock = ref (fun () -> 0.);
  }

let disabled () = create ~enabled:false ()
let enabled t = !(t.on)
let set_enabled t flag = t.on := flag

let set_clock t clock =
  t.clock := clock;
  t.timing := true

let timing t = !(t.timing)

let kind_name = function
  | Counter_i _ -> "counter"
  | Gauge_i _ -> "gauge"
  | Histogram_i _ -> "histogram"
  | Probe_i _ -> "probe"

let mismatch name ~want found =
  invalid_arg
    (Printf.sprintf "Metrics: %S is registered as a %s, not a %s" name
       (kind_name found) want)

let register t name make project want =
  match Hashtbl.find_opt t.instruments name with
  | Some found ->
    (match project found with
     | Some instrument -> instrument
     | None -> mismatch name ~want found)
  | None ->
    let fresh = make () in
    Hashtbl.replace t.instruments name fresh;
    (match project fresh with
     | Some instrument -> instrument
     | None -> assert false)

(* --- counters ------------------------------------------------------- *)

let counter t name =
  register t name
    (fun () -> Counter_i { c = 0; c_on = t.on })
    (function Counter_i c -> Some c | _ -> None)
    "counter"

let incr c = if !(c.c_on) then c.c <- c.c + 1
let add c n = if !(c.c_on) then c.c <- c.c + n
let counter_value c = c.c

(* --- gauges --------------------------------------------------------- *)

let gauge t name =
  register t name
    (fun () -> Gauge_i { g = 0; g_on = t.on })
    (function Gauge_i g -> Some g | _ -> None)
    "gauge"

let set g v = if !(g.g_on) then g.g <- v
let record_max g v = if !(g.g_on) && v > g.g then g.g <- v
let gauge_value g = g.g

(* --- histograms ----------------------------------------------------- *)

let histogram t name =
  register t name
    (fun () ->
      Histogram_i
        { n = 0; sum = 0; lo = max_int; hi = min_int;
          buckets = Array.make 63 0; h_on = t.on })
    (function Histogram_i h -> Some h | _ -> None)
    "histogram"

let bucket_index v =
  if v <= 1 then 0
  else begin
    (* index of the highest set bit of [v - 1], + 1: values in
       (2^(i-1), 2^i] land in bucket i. *)
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    bits (v - 1) 0
  end

let observe h v =
  if !(h.h_on) then begin
    h.n <- h.n + 1;
    h.sum <- h.sum + v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v;
    let i = bucket_index v in
    h.buckets.(i) <- h.buckets.(i) + 1
  end

(* --- probes --------------------------------------------------------- *)

let probe t ?(combine = `Sum) name source =
  let p =
    register t name
      (fun () -> Probe_i { combine; sources = [] })
      (function Probe_i p -> Some p | _ -> None)
      "probe"
  in
  if p.combine <> combine then
    invalid_arg
      (Printf.sprintf "Metrics.probe: %S already registered with another combiner"
         name);
  p.sources <- source :: p.sources

(* --- timers --------------------------------------------------------- *)

let timer t name =
  match Hashtbl.find_opt t.timer_tbl name with
  | Some timer -> timer
  | None ->
    let fresh =
      { total = 0.; t0 = 0.; running = false; laps = 0; t_on = t.on;
        t_timing = t.timing; t_clock = t.clock }
    in
    Hashtbl.replace t.timer_tbl name fresh;
    fresh

let start tm =
  if !(tm.t_timing) && !(tm.t_on) && not tm.running then begin
    tm.running <- true;
    tm.t0 <- !(tm.t_clock) ()
  end

let stop tm =
  if tm.running then begin
    tm.running <- false;
    tm.total <- tm.total +. (!(tm.t_clock) () -. tm.t0);
    tm.laps <- tm.laps + 1
  end

let time tm f =
  start tm;
  Fun.protect ~finally:(fun () -> stop tm) f

let timer_seconds tm = tm.total
let timer_laps tm = tm.laps

(* --- snapshots ------------------------------------------------------ *)

type histogram_summary = {
  count : int;
  sum : int;
  min_value : int;  (* 0 when empty *)
  max_value : int;  (* 0 when empty *)
  by_upper_bound : (int * int) list;  (* (exclusive 2^i bound, count) *)
}

type value =
  | Counter of int
  | Gauge of int
  | Histogram of histogram_summary

let summarize h =
  let by_upper_bound = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then
      by_upper_bound := (1 lsl i, h.buckets.(i)) :: !by_upper_bound
  done;
  {
    count = h.n;
    sum = h.sum;
    min_value = (if h.n = 0 then 0 else h.lo);
    max_value = (if h.n = 0 then 0 else h.hi);
    by_upper_bound = !by_upper_bound;
  }

let eval_probe p =
  match p.combine with
  | `Sum -> List.fold_left (fun acc f -> acc + f ()) 0 p.sources
  | `Max -> List.fold_left (fun acc f -> max acc (f ())) 0 p.sources

let value_of = function
  | Counter_i c -> Counter c.c
  | Gauge_i g -> Gauge g.g
  | Histogram_i h -> Histogram (summarize h)
  | Probe_i p -> Gauge (eval_probe p)

type snapshot = (string * value) list

let snapshot t =
  Hashtbl.fold (fun name i acc -> (name, value_of i) :: acc) t.instruments []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- snapshot merging ----------------------------------------------- *)

(* Combining two runs' worth of statistics follows the nature of each
   instrument: counters and histogram populations are additive, gauges
   (and probes, which snapshot as gauges) track peaks so they combine
   with [max].  Merging is name-aligned over the sorted snapshot order,
   so the result is itself a well-formed (sorted, deterministic)
   snapshot — the campaign runner folds per-job snapshots into one
   aggregate with byte-identical JSON regardless of job placement. *)

let merge_histogram (a : histogram_summary) (b : histogram_summary) =
  let rec merge_buckets xs ys =
    match xs, ys with
    | [], rest | rest, [] -> rest
    | (bx, cx) :: tx, (by, cy) :: ty ->
      if bx = by then (bx, cx + cy) :: merge_buckets tx ty
      else if bx < by then (bx, cx) :: merge_buckets tx ys
      else (by, cy) :: merge_buckets xs ty
  in
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      count = a.count + b.count;
      sum = a.sum + b.sum;
      min_value = min a.min_value b.min_value;
      max_value = max a.max_value b.max_value;
      by_upper_bound = merge_buckets a.by_upper_bound b.by_upper_bound;
    }

let merge_value name a b =
  match a, b with
  | Counter x, Counter y -> Counter (x + y)
  | Gauge x, Gauge y -> Gauge (max x y)
  | Histogram x, Histogram y -> Histogram (merge_histogram x y)
  | (Counter _ | Gauge _ | Histogram _), _ ->
    invalid_arg
      (Printf.sprintf "Metrics.merge: %S has mismatched kinds" name)

let merge (a : snapshot) (b : snapshot) : snapshot =
  (* Tolerate unsorted input (snapshots from [snapshot] are already
     sorted; hand-built ones may not be). *)
  let sort s = List.sort (fun (x, _) (y, _) -> compare x y) s in
  let rec go xs ys =
    match xs, ys with
    | [], rest | rest, [] -> rest
    | (nx, vx) :: tx, (ny, vy) :: ty ->
      if nx = ny then (nx, merge_value nx vx vy) :: go tx ty
      else if nx < ny then (nx, vx) :: go tx ys
      else (ny, vy) :: go xs ty
  in
  go (sort a) (sort b)

let merge_all = function
  | [] -> []
  | first :: rest -> List.fold_left merge first rest

let find t name = Option.map value_of (Hashtbl.find_opt t.instruments name)

let timers t =
  Hashtbl.fold (fun name tm acc -> (name, tm.total, tm.laps) :: acc) t.timer_tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let reset t =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | Counter_i c -> c.c <- 0
      | Gauge_i g -> g.g <- 0
      | Histogram_i h ->
        h.n <- 0;
        h.sum <- 0;
        h.lo <- max_int;
        h.hi <- min_int;
        Array.fill h.buckets 0 (Array.length h.buckets) 0
      | Probe_i _ -> ())
    t.instruments;
  Hashtbl.iter
    (fun _ tm ->
      tm.total <- 0.;
      tm.laps <- 0;
      tm.running <- false)
    t.timer_tbl

(* --- printing ------------------------------------------------------- *)

let pp_value ppf = function
  | Counter n -> Format.fprintf ppf "%d" n
  | Gauge n -> Format.fprintf ppf "%d" n
  | Histogram h ->
    Format.fprintf ppf "count=%d sum=%d min=%d max=%d" h.count h.sum h.min_value
      h.max_value

let pp_snapshot ppf snapshot =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "  %-36s %a@." name pp_value v)
    snapshot
