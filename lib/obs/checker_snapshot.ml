(* Per-property checker snapshot: the record form of a monitor's
   end-of-run statistics.

   This record is the single stats currency between the checker layer
   and the report emitters: [Tabv_checker.Monitor.snapshot] produces
   it, testbenches collect it, and [Tabv_core.Report_json] serializes
   it — replacing the previous 12-plain-argument emitter (the core
   library sits below the checker library in the dependency order, so
   the shared record has to live down here). *)

type failure = {
  property_name : string;
  activation_time : int;
  failure_time : int;
}

type t = {
  property_name : string;
  engine : string;  (* "progression" | "progression-legacy" | "automaton" *)
  activations : int;
  passes : int;
  trivial_passes : int;
  vacuous : bool;
  peak_instances : int;
  peak_distinct_states : int;
  pending : int;
  steps : int;
  cache_hits : int;
  cache_misses : int;
  failures : failure list;
}

let cache_hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0. else float_of_int t.cache_hits /. float_of_int total

let total_failures snapshots =
  List.fold_left (fun acc s -> acc + List.length s.failures) 0 snapshots

let pp_failure ppf (f : failure) =
  Format.fprintf ppf "%s: instance fired at %dns failed at %dns" f.property_name
    f.activation_time f.failure_time

let pp ppf s =
  Format.fprintf ppf
    "%-6s activations=%-6d passes=%-6d peak=%-3d pending=%-3d failures=%d%s"
    s.property_name s.activations s.passes s.peak_instances s.pending
    (List.length s.failures)
    (if s.vacuous then "  [vacuous]" else "")
