(** Event-span recorder: a bounded ring of labelled [start, stop]
    spans in simulation time.

    The TLM layer records one span per completed transaction; the ring
    retains the most recent [capacity] spans for inspection while
    {!recorded} and {!total_ns} keep whole-run totals, so memory is
    bounded no matter how long the simulation runs. *)

type span = {
  label : string;
  start_ns : int;
  stop_ns : int;
}

type t

(** @raise Invalid_argument when [capacity <= 0] (default 1024). *)
val create : ?capacity:int -> unit -> t

val record : t -> label:string -> start_ns:int -> stop_ns:int -> unit

(** Total spans recorded over the whole run. *)
val recorded : t -> int

(** Spans still in the ring ([min recorded capacity]). *)
val retained : t -> int

(** Spans evicted by the ring bound. *)
val dropped : t -> int

(** Summed duration of every recorded span (including evicted ones). *)
val total_ns : t -> int

(** Retained spans, oldest first. *)
val to_list : t -> span list

val pp : Format.formatter -> span -> unit
