(** Metrics registry: named counters, gauges, histograms, probes and
    phase timers with a deterministic snapshot order.

    One registry is the single currency for runtime statistics across
    the stack: the simulation kernel registers phase counters, the TLM
    sockets transaction counts, the checker layer activation and cache
    probes, and the report emitters serialize a {!snapshot} into the
    versioned metrics JSON.

    Cost model:
    {ul
    {- push instruments ({!counter}, {!gauge}, {!histogram}, {!timer})
       check one shared [enabled] flag per update — near-zero when the
       registry is disabled;}
    {- pull probes ({!probe}) cost {e nothing} on the hot path: the
       supplied closure is only evaluated when a snapshot is taken, so
       modules that already keep cheap local counters expose them for
       free.}}

    Determinism: {!snapshot} is sorted by name and contains only
    simulation-derived integers; wall-clock {!timers} are reported
    separately and never appear in a snapshot, so snapshots of two
    runs with the same seed are byte-identical once serialized. *)

type t

(** [create ?enabled ()] — a fresh, empty registry (default enabled). *)
val create : ?enabled:bool -> unit -> t

(** [create ~enabled:false ()]: instruments register and probes still
    answer, but every push update is a no-op. *)
val disabled : unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** Install the clock used by timers (seconds) {e and} switch timer
    sampling on.  Until a clock is installed every {!start}/{!stop} is
    a branch-and-return: reading a real clock (e.g. [Sys.time], a
    syscall) on a hot path like the kernel's phase loop would dwarf
    the counter instrumentation, so wall-clock sampling is a separate
    opt-in on top of [enabled].  Dependency-free callers pass
    [Sys.time] (processor time); callers that link [unix] may prefer
    [Unix.gettimeofday]. *)
val set_clock : t -> (unit -> float) -> unit

(** Whether a timer clock has been installed ({!set_clock}). *)
val timing : t -> bool

(** {2 Counters} — monotonically increasing integers. *)

type counter

(** [counter t name] registers (or retrieves) the counter [name].
    @raise Invalid_argument if [name] is registered as another kind. *)
val counter : t -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} — last-value or running-max integers. *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> int -> unit

(** Keep the maximum of all recorded values (peak tracking). *)
val record_max : gauge -> int -> unit

val gauge_value : gauge -> int

(** {2 Histograms} — power-of-two value histograms. *)

type histogram

val histogram : t -> string -> histogram

(** Record one observation.  Bucketing is by powers of two: an
    observation [v] lands in the bucket with exclusive upper bound
    [2^i] where [2^(i-1) < v <= 2^i] ([v <= 1] lands in the bound-1
    bucket). *)
val observe : histogram -> int -> unit

(** {2 Probes} — pull-style gauges evaluated at snapshot time.

    Several probes may share one name; their values are combined with
    [combine] ([`Sum] by default, [`Max] for peaks).  Probes answer
    even on a disabled registry (they never cost anything on the hot
    path).
    @raise Invalid_argument on kind or combiner mismatch. *)
val probe : t -> ?combine:[ `Sum | `Max ] -> string -> (unit -> int) -> unit

(** {2 Timers} — accumulated real-time phases, excluded from snapshots.

    Timers only sample once {!set_clock} has been called on their
    registry (and it is enabled); otherwise they stay at zero. *)

type timer

val timer : t -> string -> timer

(** No-op on a disabled or clockless registry; nested starts are
    ignored. *)
val start : timer -> unit

val stop : timer -> unit

(** [time tm f] runs [f] between {!start} and {!stop} (exception-safe). *)
val time : timer -> (unit -> 'a) -> 'a

val timer_seconds : timer -> float
val timer_laps : timer -> int

(** {2 Snapshots} *)

type histogram_summary = {
  count : int;
  sum : int;
  min_value : int;  (** 0 when empty *)
  max_value : int;  (** 0 when empty *)
  by_upper_bound : (int * int) list;
      (** non-empty buckets as [(exclusive 2^i bound, count)], ascending *)
}

type value =
  | Counter of int
  | Gauge of int  (** gauges and probes *)
  | Histogram of histogram_summary

(** A registry snapshot: instrument values keyed by name, sorted by
    name, deterministic (no wall-clock values). *)
type snapshot = (string * value) list

(** All instruments, sorted by name; probes are evaluated here.
    Deterministic: no wall-clock values. *)
val snapshot : t -> snapshot

(** [merge a b] combines two snapshots name-by-name: counters and
    histograms (count, sum, per-bucket populations) are summed, gauges
    and probes keep the maximum (peak semantics), min/max histogram
    bounds widen, and names present in only one input pass through
    unchanged.  Inputs are re-sorted if needed; the result is a
    well-formed sorted snapshot, so merging is associative and
    independent of fold order up to that sort.
    @raise Invalid_argument when one name carries different kinds. *)
val merge : snapshot -> snapshot -> snapshot

(** Fold {!merge} over a list ([[]] for the empty list). *)
val merge_all : snapshot list -> snapshot

val find : t -> string -> value option

(** All timers as [(name, seconds, laps)], sorted by name. *)
val timers : t -> (string * float * int) list

(** Zero every instrument and timer; probes are left registered. *)
val reset : t -> unit

val pp_value : Format.formatter -> value -> unit
val pp_snapshot : Format.formatter -> (string * value) list -> unit
