open Tabv_sim
module J = Tabv_core.Report_json

type signal_fault =
  | Stuck_at_0 of { from_ns : int }
  | Stuck_at_1 of { from_ns : int }
  | Bit_flip of { bit : int; at_ns : int }
  | Glitch of { bit : int; from_ns : int; duration_ns : int }

type tlm_fault =
  | Corrupt_field of { field : string; fault : signal_fault }
  | Corrupt_data of { index : int; bit : int }
  | Drop of { index : int }
  | Extra_delay of { index : int; delay_ns : int }
  | Duplicate of { index : int }
  | Hang of { index : int }

type hard_failure =
  | Abort
  | Alloc_storm
  | Busy_loop

type chaos =
  | Crash of { at_ns : int; name : string }
  | Livelock_loop of { at_ns : int }
  | Hard of { at_ns : int; failure : hard_failure }

type injection =
  | Signal_fault of { signal : string; fault : signal_fault }
  | Tlm_mutation of { socket : string; fault : tlm_fault }
  | Chaos of chaos

type plan = {
  plan_name : string;
  injections : injection list;
}

let no_faults = { plan_name = "no-faults"; injections = [] }
let plan ~name injections = { plan_name = name; injections }
let is_empty p = p.injections = []
let injection_count p = List.length p.injections
let equal_plan (a : plan) (b : plan) = a = b

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let signal_fault_json = function
  | Stuck_at_0 { from_ns } ->
    J.Assoc [ ("kind", J.String "stuck_at_0"); ("from_ns", J.Int from_ns) ]
  | Stuck_at_1 { from_ns } ->
    J.Assoc [ ("kind", J.String "stuck_at_1"); ("from_ns", J.Int from_ns) ]
  | Bit_flip { bit; at_ns } ->
    J.Assoc [ ("kind", J.String "bit_flip"); ("bit", J.Int bit); ("at_ns", J.Int at_ns) ]
  | Glitch { bit; from_ns; duration_ns } ->
    J.Assoc
      [ ("kind", J.String "glitch");
        ("bit", J.Int bit);
        ("from_ns", J.Int from_ns);
        ("duration_ns", J.Int duration_ns)
      ]

let tlm_fault_json = function
  | Corrupt_field { field; fault } ->
    J.Assoc
      [ ("kind", J.String "corrupt_field");
        ("field", J.String field);
        ("fault", signal_fault_json fault)
      ]
  | Corrupt_data { index; bit } ->
    J.Assoc
      [ ("kind", J.String "corrupt_data"); ("index", J.Int index); ("bit", J.Int bit) ]
  | Drop { index } -> J.Assoc [ ("kind", J.String "drop"); ("index", J.Int index) ]
  | Extra_delay { index; delay_ns } ->
    J.Assoc
      [ ("kind", J.String "extra_delay");
        ("index", J.Int index);
        ("delay_ns", J.Int delay_ns)
      ]
  | Duplicate { index } ->
    J.Assoc [ ("kind", J.String "duplicate"); ("index", J.Int index) ]
  | Hang { index } -> J.Assoc [ ("kind", J.String "hang"); ("index", J.Int index) ]

let hard_failure_name = function
  | Abort -> "abort"
  | Alloc_storm -> "alloc_storm"
  | Busy_loop -> "busy_loop"

let hard_failure_of_name = function
  | "abort" -> Some Abort
  | "alloc_storm" -> Some Alloc_storm
  | "busy_loop" -> Some Busy_loop
  | _ -> None

let chaos_json = function
  | Crash { at_ns; name } ->
    J.Assoc
      [ ("kind", J.String "crash"); ("at_ns", J.Int at_ns); ("name", J.String name) ]
  | Livelock_loop { at_ns } ->
    J.Assoc [ ("kind", J.String "livelock"); ("at_ns", J.Int at_ns) ]
  | Hard { at_ns; failure } ->
    J.Assoc
      [ ("kind", J.String (hard_failure_name failure)); ("at_ns", J.Int at_ns) ]

let injection_json = function
  | Signal_fault { signal; fault } ->
    J.Assoc
      [ ("kind", J.String "signal");
        ("signal", J.String signal);
        ("fault", signal_fault_json fault)
      ]
  | Tlm_mutation { socket; fault } ->
    J.Assoc
      [ ("kind", J.String "tlm");
        ("socket", J.String socket);
        ("fault", tlm_fault_json fault)
      ]
  | Chaos c -> J.Assoc [ ("kind", J.String "chaos"); ("fault", chaos_json c) ]

let plan_json p =
  J.Assoc
    [ ("plan", J.String p.plan_name);
      ("injections", J.List (List.map injection_json p.injections))
    ]

let pp_plan ppf p = Format.pp_print_string ppf (J.to_string (plan_json p))

(* Decoding: a small result-monad reader over the document model. *)

let ( let* ) = Result.bind

let assoc = function
  | J.Assoc kvs -> Ok kvs
  | _ -> Error "fault plan: expected an object"

let key name kvs =
  match List.assoc_opt name kvs with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "fault plan: missing key %S" name)

let int_key name kvs =
  let* v = key name kvs in
  match v with
  | J.Int n -> Ok n
  | _ -> Error (Printf.sprintf "fault plan: key %S must be an integer" name)

let string_key name kvs =
  let* v = key name kvs in
  match v with
  | J.String s -> Ok s
  | _ -> Error (Printf.sprintf "fault plan: key %S must be a string" name)

let signal_fault_of_json j =
  let* kvs = assoc j in
  let* kind = string_key "kind" kvs in
  match kind with
  | "stuck_at_0" ->
    let* from_ns = int_key "from_ns" kvs in
    Ok (Stuck_at_0 { from_ns })
  | "stuck_at_1" ->
    let* from_ns = int_key "from_ns" kvs in
    Ok (Stuck_at_1 { from_ns })
  | "bit_flip" ->
    let* bit = int_key "bit" kvs in
    let* at_ns = int_key "at_ns" kvs in
    Ok (Bit_flip { bit; at_ns })
  | "glitch" ->
    let* bit = int_key "bit" kvs in
    let* from_ns = int_key "from_ns" kvs in
    let* duration_ns = int_key "duration_ns" kvs in
    Ok (Glitch { bit; from_ns; duration_ns })
  | other -> Error (Printf.sprintf "fault plan: unknown signal fault kind %S" other)

let tlm_fault_of_json j =
  let* kvs = assoc j in
  let* kind = string_key "kind" kvs in
  match kind with
  | "corrupt_field" ->
    let* field = string_key "field" kvs in
    let* f = key "fault" kvs in
    let* fault = signal_fault_of_json f in
    Ok (Corrupt_field { field; fault })
  | "corrupt_data" ->
    let* index = int_key "index" kvs in
    let* bit = int_key "bit" kvs in
    Ok (Corrupt_data { index; bit })
  | "drop" ->
    let* index = int_key "index" kvs in
    Ok (Drop { index })
  | "extra_delay" ->
    let* index = int_key "index" kvs in
    let* delay_ns = int_key "delay_ns" kvs in
    Ok (Extra_delay { index; delay_ns })
  | "duplicate" ->
    let* index = int_key "index" kvs in
    Ok (Duplicate { index })
  | "hang" ->
    let* index = int_key "index" kvs in
    Ok (Hang { index })
  | other -> Error (Printf.sprintf "fault plan: unknown tlm fault kind %S" other)

let chaos_of_json j =
  let* kvs = assoc j in
  let* kind = string_key "kind" kvs in
  match kind with
  | "crash" ->
    let* at_ns = int_key "at_ns" kvs in
    let* name = string_key "name" kvs in
    Ok (Crash { at_ns; name })
  | "livelock" ->
    let* at_ns = int_key "at_ns" kvs in
    Ok (Livelock_loop { at_ns })
  | other ->
    (match hard_failure_of_name other with
     | Some failure ->
       let* at_ns = int_key "at_ns" kvs in
       Ok (Hard { at_ns; failure })
     | None -> Error (Printf.sprintf "fault plan: unknown chaos kind %S" other))

let injection_of_json j =
  let* kvs = assoc j in
  let* kind = string_key "kind" kvs in
  match kind with
  | "signal" ->
    let* signal = string_key "signal" kvs in
    let* f = key "fault" kvs in
    let* fault = signal_fault_of_json f in
    Ok (Signal_fault { signal; fault })
  | "tlm" ->
    let* socket = string_key "socket" kvs in
    let* f = key "fault" kvs in
    let* fault = tlm_fault_of_json f in
    Ok (Tlm_mutation { socket; fault })
  | "chaos" ->
    let* f = key "fault" kvs in
    let* fault = chaos_of_json f in
    Ok (Chaos fault)
  | other -> Error (Printf.sprintf "fault plan: unknown injection kind %S" other)

let plan_of_json j =
  let* kvs = assoc j in
  let* plan_name = string_key "plan" kvs in
  let* injections = key "injections" kvs in
  let* items =
    match injections with
    | J.List items -> Ok items
    | _ -> Error "fault plan: key \"injections\" must be an array"
  in
  let rec decode acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
      let* inj = injection_of_json item in
      decode (inj :: acc) rest
  in
  let* injections = decode [] items in
  Ok { plan_name; injections }

let plan_of_string s =
  match J.of_string s with
  | exception J.Parse_error { line; col; message } ->
    Error (Printf.sprintf "fault plan: %d:%d: %s" line col message)
  | j -> plan_of_json j

let diagnosis_json (d : Kernel.diagnosis) =
  match d with
  | Kernel.Completed -> J.Assoc [ ("kind", J.String "completed") ]
  | Kernel.Starved { waiting } ->
    J.Assoc [ ("kind", J.String "starved"); ("waiting", J.Int waiting) ]
  | Kernel.Livelock { time; delta_cycles } ->
    J.Assoc
      [ ("kind", J.String "livelock");
        ("time", J.Int time);
        ("delta_cycles", J.Int delta_cycles)
      ]
  | Kernel.Budget_exhausted { steps } ->
    J.Assoc [ ("kind", J.String "budget_exhausted"); ("steps", J.Int steps) ]
  | Kernel.Process_crashed { name; error } ->
    J.Assoc
      [ ("kind", J.String "process_crashed");
        ("process", J.String name);
        ("error", J.String error)
      ]

(* ------------------------------------------------------------------ *)
(* Seeded generation                                                   *)
(* ------------------------------------------------------------------ *)

let generate ~seed ~signals ~sockets ~horizon_ns ~count =
  let name = Printf.sprintf "generated-%d" seed in
  if signals = [] && sockets = [] then { plan_name = name; injections = [] }
  else begin
    let st = Random.State.make [| 0x7ab5; seed |] in
    let instant () = Random.State.int st (max 1 horizon_ns) in
    let pick_signal () =
      let signal, width =
        List.nth signals (Random.State.int st (List.length signals))
      in
      let bit = Random.State.int st (max 1 width) in
      let fault =
        match Random.State.int st 4 with
        | 0 -> Stuck_at_0 { from_ns = instant () }
        | 1 -> Stuck_at_1 { from_ns = instant () }
        | 2 -> Bit_flip { bit; at_ns = instant () }
        | _ ->
          let from_ns = instant () in
          let duration_ns = 1 + Random.State.int st (max 1 (horizon_ns - from_ns)) in
          Glitch { bit; from_ns; duration_ns }
      in
      Signal_fault { signal; fault }
    in
    let pick_tlm () =
      let socket = List.nth sockets (Random.State.int st (List.length sockets)) in
      let index = Random.State.int st 16 in
      let fault =
        match Random.State.int st 4 with
        | 0 -> Corrupt_data { index; bit = Random.State.int st 64 }
        | 1 -> Drop { index }
        | 2 -> Extra_delay { index; delay_ns = 1 + Random.State.int st 50 }
        | _ -> Duplicate { index }
      in
      Tlm_mutation { socket; fault }
    in
    (* Build in index order: [List.init] has unspecified evaluation
       order, which would break seeded determinism. *)
    let rec draw acc n =
      if n = 0 then List.rev acc
      else begin
        let inj =
          if sockets = [] then pick_signal ()
          else if signals = [] then pick_tlm ()
          else if Random.State.int st 3 < 2 then pick_signal ()
          else pick_tlm ()
        in
        draw (inj :: acc) (n - 1)
      end
    in
    { plan_name = name; injections = draw [] count }
  end

(* ------------------------------------------------------------------ *)
(* Binding and installation                                            *)
(* ------------------------------------------------------------------ *)

type target =
  | Bool_signal of bool Signal.t
  | Int_signal of { signal : int Signal.t; width : int }
  | Int64_signal of { signal : int64 Signal.t; width : int }

type lens = {
  get : unit -> int64;
  set : int64 -> unit;
  width : int;
}

type socket_binding = {
  initiator : Tlm.Initiator.t;
  fields : (string * lens) list;
}

type binding = {
  kernel : Kernel.t;
  signals : (string * target) list;
  sockets : (string * socket_binding) list;
}

type installed = {
  mutable triggered_count : int;
  armed_count : int;
}

let armed inst = inst.armed_count
let triggered inst = inst.triggered_count
let trigger inst = inst.triggered_count <- inst.triggered_count + 1
let ones width = if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
let mask width v = Int64.logand v (ones width)

(* One saboteur application over the int64 bits view.  Triggering is
   counted only when the fault actually alters the value: an armed
   stuck-at on a signal already at that value is latent, which is the
   honest qualification verdict. *)
let apply_signal_fault inst ~now ~width bits fault =
  match fault with
  | Stuck_at_0 { from_ns } ->
    if now >= from_ns then begin
      if bits <> 0L then trigger inst;
      0L
    end
    else bits
  | Stuck_at_1 { from_ns } ->
    if now >= from_ns then begin
      let v = ones width in
      if bits <> v then trigger inst;
      v
    end
    else bits
  | Bit_flip { bit; at_ns } ->
    if now = at_ns && bit < width then begin
      trigger inst;
      mask width (Int64.logxor bits (Int64.shift_left 1L bit))
    end
    else bits
  | Glitch { bit; from_ns; duration_ns } ->
    if now >= from_ns && now < from_ns + duration_ns && bit < width then begin
      trigger inst;
      mask width (Int64.logxor bits (Int64.shift_left 1L bit))
    end
    else bits

(* Instants at which a fault arms or disarms: the saboteur needs an
   update-phase application there even if the design writes nothing,
   so each boundary schedules a {!Signal.refresh}. *)
let boundaries = function
  | Stuck_at_0 { from_ns } | Stuck_at_1 { from_ns } -> [ from_ns ]
  | Bit_flip { at_ns; _ } -> [ at_ns; at_ns + 1 ]
  | Glitch { from_ns; duration_ns; _ } -> [ from_ns; from_ns + duration_ns ]

let install_signal kernel inst target faults =
  let transform_bits width bits =
    let now = Kernel.now kernel in
    List.fold_left (fun b f -> apply_signal_fault inst ~now ~width b f) bits faults
  in
  let refresh =
    match target with
    | Bool_signal s ->
      Signal.interpose s (fun v ->
        Int64.logand (transform_bits 1 (if v then 1L else 0L)) 1L <> 0L);
      fun () -> Signal.refresh s
    | Int_signal { signal; width } ->
      Signal.interpose signal (fun v -> Int64.to_int (transform_bits width (Int64.of_int v)));
      fun () -> Signal.refresh signal
    | Int64_signal { signal; width } ->
      Signal.interpose signal (fun v -> transform_bits width v);
      fun () -> Signal.refresh signal
  in
  List.iter
    (fun fault ->
      List.iter
        (fun time -> if time >= Kernel.now kernel then Kernel.schedule_at kernel ~time refresh)
        (boundaries fault))
    faults

let install_socket kernel inst sb faults =
  List.iter
    (function
      | Corrupt_field { field; _ } when not (List.mem_assoc field sb.fields) ->
        invalid_arg
          (Printf.sprintf "Fault.install: unknown field %S on socket %s" field
             (Tlm.Initiator.name sb.initiator))
      | _ -> ())
    faults;
  let count = ref 0 in
  Tlm.Initiator.interpose sb.initiator (fun transport payload ->
    let i = !count in
    incr count;
    (* Pre-transport mutations: timing first, then the call itself. *)
    List.iter
      (function
        | Extra_delay { index; delay_ns } when index = i ->
          trigger inst;
          Process.wait_ns kernel delay_ns
        | Hang { index } when index = i ->
          trigger inst;
          (* An event nobody ever notifies: the initiator thread
             blocks forever and the run ends [Starved]. *)
          Process.wait_event (Event.create kernel "fault.hang")
        | _ -> ())
      faults;
    let dropped = List.exists (function Drop { index } -> index = i | _ -> false) faults in
    if dropped then begin
      trigger inst;
      payload.Tlm.response_ok <- false
    end
    else begin
      transport payload;
      List.iter
        (function
          | Duplicate { index } when index = i ->
            trigger inst;
            transport payload
          | _ -> ())
        faults
    end;
    (* Post-transport corruption: visible to the abstracted property
       suite because the checker samples one delta later. *)
    List.iter
      (function
        | Corrupt_data { index; bit } when index = i ->
          trigger inst;
          payload.Tlm.data <- Int64.logxor payload.Tlm.data (Int64.shift_left 1L bit)
        | Corrupt_field { field; fault } ->
          let lens = List.assoc field sb.fields in
          let v = lens.get () in
          let v' = apply_signal_fault inst ~now:(Kernel.now kernel) ~width:lens.width v fault in
          if v' <> v then lens.set v'
        | _ -> ())
      faults)

(* Hard failures: crash classes that in-process exception catching
   provably cannot contain.  They exist to validate the process-level
   isolation of the campaign subprocess executor (lib/campaign):

   - [Abort] raises SIGABRT in the current process — no OCaml handler
     runs, the OS terminates the process (containment = fork
     boundary);
   - [Alloc_storm] grows the live heap monotonically and never
     returns.  It is rate-limited (~64 MiB/s) so that in tests the
     executor's wall-clock watchdog, not the machine's OOM killer, is
     the expected containment;
   - [Busy_loop] spins inside one scheduled action without ever
     yielding to the kernel, so the delta-cycle and step-budget
     watchdogs never get a chance to trip — only an external
     wall-clock watchdog (SIGKILL) contains it. *)
let execute_hard_failure = function
  | Abort ->
    Unix.kill (Unix.getpid ()) Sys.sigabrt;
    (* Unreachable: SIGABRT's default disposition terminates. *)
    assert false
  | Alloc_storm ->
    let hoard = ref [] in
    let rec grow () =
      hoard := Bytes.create 65536 :: !hoard;
      Unix.sleepf 0.001;
      grow ()
    in
    grow ()
  | Busy_loop ->
    let x = ref 0 in
    let rec spin () =
      x := !x lxor 1;
      spin ()
    in
    spin ()

let install_chaos kernel inst = function
  | Crash { at_ns; name } ->
    Kernel.schedule_at kernel ~time:at_ns (fun () ->
      trigger inst;
      Kernel.set_label kernel name;
      failwith (Printf.sprintf "injected crash: %s" name))
  | Livelock_loop { at_ns } ->
    Kernel.schedule_at kernel ~time:at_ns (fun () ->
      trigger inst;
      let rec spin () = Kernel.schedule_next_delta kernel spin in
      spin ())
  | Hard { at_ns; failure } ->
    Kernel.schedule_at kernel ~time:at_ns (fun () ->
      trigger inst;
      execute_hard_failure failure)

let install binding plan =
  let inst = { triggered_count = 0; armed_count = List.length plan.injections } in
  (* Group per signal / per socket (first-appearance order) so each
     carrier gets exactly one composite interposer. *)
  let by_signal = ref [] and by_socket = ref [] in
  let push groups name fault =
    match List.assoc_opt name !groups with
    | Some faults -> faults := fault :: !faults
    | None -> groups := !groups @ [ (name, ref [ fault ]) ]
  in
  List.iter
    (function
      | Signal_fault { signal; fault } ->
        if not (List.mem_assoc signal binding.signals) then
          invalid_arg (Printf.sprintf "Fault.install: unknown signal %S" signal);
        push by_signal signal fault
      | Tlm_mutation { socket; fault } ->
        if not (List.mem_assoc socket binding.sockets) then
          invalid_arg (Printf.sprintf "Fault.install: unknown socket %S" socket);
        push by_socket socket fault
      | Chaos c -> install_chaos binding.kernel inst c)
    plan.injections;
  List.iter
    (fun (name, faults) ->
      install_signal binding.kernel inst (List.assoc name binding.signals)
        (List.rev !faults))
    !by_signal;
  List.iter
    (fun (name, faults) ->
      install_socket binding.kernel inst (List.assoc name binding.sockets)
        (List.rev !faults))
    !by_socket;
  if plan.injections <> [] then begin
    let metrics = Kernel.metrics binding.kernel in
    Tabv_obs.Metrics.probe metrics "fault.armed" (fun () -> inst.armed_count);
    Tabv_obs.Metrics.probe metrics "fault.triggered" (fun () -> inst.triggered_count)
  end;
  inst

(* ------------------------------------------------------------------ *)
(* Wire/transport fault plans                                          *)
(* ------------------------------------------------------------------ *)

(* The same deterministic-saboteur philosophy one layer up: instead of
   corrupting DUV signals, corrupt the byte stream a serve client
   writes to the daemon.  A plan names {e which} outbound frame (0, 1,
   2, ... counted across the client's whole life, reconnects included)
   suffers {e what}; [arm]/[apply] turn one encoded frame into the
   wire actions a fault-aware sender executes.  Nothing here touches a
   socket — the client owns the fd and interprets the actions — so the
   vocabulary stays pure, JSON round-trippable, and testable without
   a daemon. *)
module Net = struct
  type fault =
    | Torn_frame of { frame : int; pieces : int }
        (* split one frame into [pieces] separate writes *)
    | Truncated_header of { frame : int; keep : int }
        (* write only the first [keep] header bytes, then reset *)
    | Corrupt_length of { frame : int; digit : int }
        (* rewrite hex digit [digit] of the length prefix *)
    | Corrupt_version of { frame : int }
        (* overwrite the version field with 0xff *)
    | Slow_loris of { frame : int; delay_ms : int }
        (* dribble the frame out in tiny delayed writes *)
    | Reset_mid_frame of { frame : int; after : int }
        (* write [after] bytes of the frame, then reset *)
    | Delay_frame of { frame : int; delay_ms : int }
        (* hold the whole frame back [delay_ms], then send intact *)
    | Duplicate_frame of { frame : int }
        (* send the frame twice back-to-back *)
    | Handshake_garbage of { bytes : int }
        (* [bytes] of non-protocol noise before the first frame *)

  type plan = {
    plan_name : string;
    faults : fault list;
  }

  let no_faults = { plan_name = "no-net-faults"; faults = [] }
  let plan ~name faults = { plan_name = name; faults }
  let is_empty p = p.faults = []
  let fault_count p = List.length p.faults

  let fault_json = function
    | Torn_frame { frame; pieces } ->
      J.Assoc
        [ ("kind", J.String "torn_frame");
          ("frame", J.Int frame);
          ("pieces", J.Int pieces)
        ]
    | Truncated_header { frame; keep } ->
      J.Assoc
        [ ("kind", J.String "truncated_header");
          ("frame", J.Int frame);
          ("keep", J.Int keep)
        ]
    | Corrupt_length { frame; digit } ->
      J.Assoc
        [ ("kind", J.String "corrupt_length");
          ("frame", J.Int frame);
          ("digit", J.Int digit)
        ]
    | Corrupt_version { frame } ->
      J.Assoc [ ("kind", J.String "corrupt_version"); ("frame", J.Int frame) ]
    | Slow_loris { frame; delay_ms } ->
      J.Assoc
        [ ("kind", J.String "slow_loris");
          ("frame", J.Int frame);
          ("delay_ms", J.Int delay_ms)
        ]
    | Reset_mid_frame { frame; after } ->
      J.Assoc
        [ ("kind", J.String "reset_mid_frame");
          ("frame", J.Int frame);
          ("after", J.Int after)
        ]
    | Delay_frame { frame; delay_ms } ->
      J.Assoc
        [ ("kind", J.String "delay_frame");
          ("frame", J.Int frame);
          ("delay_ms", J.Int delay_ms)
        ]
    | Duplicate_frame { frame } ->
      J.Assoc [ ("kind", J.String "duplicate_frame"); ("frame", J.Int frame) ]
    | Handshake_garbage { bytes } ->
      J.Assoc [ ("kind", J.String "handshake_garbage"); ("bytes", J.Int bytes) ]

  let plan_json p =
    J.Assoc
      [ ("plan", J.String p.plan_name);
        ("faults", J.List (List.map fault_json p.faults))
      ]

  let fault_of_json j =
    let* kvs = assoc j in
    let* kind = string_key "kind" kvs in
    match kind with
    | "torn_frame" ->
      let* frame = int_key "frame" kvs in
      let* pieces = int_key "pieces" kvs in
      Ok (Torn_frame { frame; pieces })
    | "truncated_header" ->
      let* frame = int_key "frame" kvs in
      let* keep = int_key "keep" kvs in
      Ok (Truncated_header { frame; keep })
    | "corrupt_length" ->
      let* frame = int_key "frame" kvs in
      let* digit = int_key "digit" kvs in
      Ok (Corrupt_length { frame; digit })
    | "corrupt_version" ->
      let* frame = int_key "frame" kvs in
      Ok (Corrupt_version { frame })
    | "slow_loris" ->
      let* frame = int_key "frame" kvs in
      let* delay_ms = int_key "delay_ms" kvs in
      Ok (Slow_loris { frame; delay_ms })
    | "reset_mid_frame" ->
      let* frame = int_key "frame" kvs in
      let* after = int_key "after" kvs in
      Ok (Reset_mid_frame { frame; after })
    | "delay_frame" ->
      let* frame = int_key "frame" kvs in
      let* delay_ms = int_key "delay_ms" kvs in
      Ok (Delay_frame { frame; delay_ms })
    | "duplicate_frame" ->
      let* frame = int_key "frame" kvs in
      Ok (Duplicate_frame { frame })
    | "handshake_garbage" ->
      let* bytes = int_key "bytes" kvs in
      Ok (Handshake_garbage { bytes })
    | other -> Error (Printf.sprintf "net fault plan: unknown kind %S" other)

  let plan_of_json j =
    let* kvs = assoc j in
    let* plan_name = string_key "plan" kvs in
    let* faults = key "faults" kvs in
    let* items =
      match faults with
      | J.List items -> Ok items
      | _ -> Error "net fault plan: key \"faults\" must be an array"
    in
    let rec decode acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        let* f = fault_of_json item in
        decode (f :: acc) rest
    in
    let* faults = decode [] items in
    Ok { plan_name; faults }

  (* Seeded generation, same contract as the DUV-level {!generate}:
     identical [(seed, frames, count)] always yields the identical
     plan, and faults are drawn in index order. *)
  let generate ~seed ~frames ~count =
    let name = Printf.sprintf "net-generated-%d" seed in
    if frames < 1 || count < 1 then { plan_name = name; faults = [] }
    else begin
      let st = Random.State.make [| 0x7ab5; 0x0e7; seed |] in
      let pick () =
        let frame = Random.State.int st frames in
        match Random.State.int st 9 with
        | 0 -> Torn_frame { frame; pieces = 2 + Random.State.int st 6 }
        | 1 -> Truncated_header { frame; keep = 1 + Random.State.int st 9 }
        | 2 -> Corrupt_length { frame; digit = Random.State.int st 8 }
        | 3 -> Corrupt_version { frame }
        | 4 -> Slow_loris { frame; delay_ms = 1 + Random.State.int st 5 }
        | 5 -> Reset_mid_frame { frame; after = 1 + Random.State.int st 16 }
        | 6 -> Delay_frame { frame; delay_ms = 1 + Random.State.int st 20 }
        | 7 -> Duplicate_frame { frame }
        | _ -> Handshake_garbage { bytes = 1 + Random.State.int st 64 }
      in
      let rec draw acc n =
        if n = 0 then List.rev acc else draw (pick () :: acc) (n - 1)
      in
      { plan_name = name; faults = draw [] count }
    end

  (* --- arming and application --------------------------------------- *)

  (* What a fault-aware sender does with one frame, in order.  [`Reset]
     hard-closes the connection (and the sender treats the request as
     failed); anything after a [`Reset] is unreachable by
     construction. *)
  type action =
    [ `Chunk of string  (* write these bytes *)
    | `Delay_ms of int  (* sleep before the next action *)
    | `Reset  (* shut the socket down, both directions *)
    ]

  type armed = {
    armed_plan : plan;
    mutable next_frame : int;  (* frames seen so far, reconnect-proof *)
    mutable net_triggered : int;
  }

  let arm p = { armed_plan = p; next_frame = 0; net_triggered = 0 }
  let armed_faults a = fault_count a.armed_plan
  let net_triggered a = a.net_triggered
  let frames_sent a = a.next_frame

  (* Deterministic non-protocol noise.  The first byte is never a hex
     digit, so a reader fails on the very first header decode instead
     of wandering into ambiguity. *)
  let garbage_bytes n =
    String.init n (fun i ->
      let alphabet = "#garbage?noise!" in
      alphabet.[i mod String.length alphabet])

  let split_into ~pieces s =
    let len = String.length s in
    let pieces = max 1 (min pieces len) in
    let base = len / pieces and extra = len mod pieces in
    let rec go acc off i =
      if i = pieces then List.rev acc
      else begin
        let size = base + if i < extra then 1 else 0 in
        go (String.sub s off size :: acc) (off + size) (i + 1)
      end
    in
    go [] 0 0

  let rewrite s pos c =
    let b = Bytes.of_string s in
    Bytes.set b pos c;
    Bytes.to_string b

  let hex_digit v = "0123456789abcdef".[v land 0xf]

  let hex_value = function
    | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
    | _ -> None

  (* Turn one encoded frame (versioned header assumed — the serve
     protocol always versions its sockets) into wire actions.  At most
     one fault fires per frame, the first in plan order; handshake
     garbage additionally precedes frame 0.  Every fault that fires
     counts as triggered. *)
  let apply a frame_bytes =
    let n = a.next_frame in
    a.next_frame <- n + 1;
    let len = String.length frame_bytes in
    let prelude =
      if n > 0 then []
      else
        List.concat_map
          (function
            | Handshake_garbage { bytes } when bytes > 0 ->
              a.net_triggered <- a.net_triggered + 1;
              [ `Chunk (garbage_bytes bytes) ]
            | _ -> [])
          a.armed_plan.faults
    in
    let targets_this_frame = function
      | Torn_frame { frame; _ }
      | Truncated_header { frame; _ }
      | Corrupt_length { frame; _ }
      | Corrupt_version { frame }
      | Slow_loris { frame; _ }
      | Reset_mid_frame { frame; _ }
      | Delay_frame { frame; _ }
      | Duplicate_frame { frame } -> frame = n
      | Handshake_garbage _ -> false
    in
    let actions =
      match List.find_opt targets_this_frame a.armed_plan.faults with
      | None -> [ `Chunk frame_bytes ]
      | Some fault ->
        a.net_triggered <- a.net_triggered + 1;
        (match fault with
         | Torn_frame { pieces; _ } ->
           List.map (fun p -> `Chunk p) (split_into ~pieces frame_bytes)
         | Truncated_header { keep; _ } ->
           let keep =
             max 1 (min keep (min (len - 1) (Tabv_core.Frame.versioned_header_length - 1)))
           in
           [ `Chunk (String.sub frame_bytes 0 keep); `Reset ]
         | Corrupt_length { digit; _ } when len >= Tabv_core.Frame.versioned_header_length ->
           (* Digits 0-7 of the 8-hex length field sit at header
              offsets 2-9; bump the digit's value so the announced
              length is provably wrong, then reset — the stream past a
              lied-about length is unrecoverable garbage either way. *)
           let digit = (abs digit) mod 8 in
           let pos = 2 + digit in
           let v =
             match hex_value frame_bytes.[pos] with
             | Some v -> v
             | None -> 0
           in
           [ `Chunk (rewrite frame_bytes pos (hex_digit ((v + 1 + digit) mod 16)));
             `Reset
           ]
         | Corrupt_length _ -> [ `Chunk frame_bytes ]
         | Corrupt_version _ when len >= Tabv_core.Frame.versioned_header_length ->
           [ `Chunk (rewrite (rewrite frame_bytes 0 'f') 1 'f'); `Reset ]
         | Corrupt_version _ -> [ `Chunk frame_bytes ]
         | Slow_loris { delay_ms; _ } ->
           (* Byte-ish dribble, capped at 32 writes so a huge frame
              cannot turn one fault into minutes of sleeping. *)
           List.concat_map
             (fun p -> [ `Delay_ms delay_ms; `Chunk p ])
             (split_into ~pieces:32 frame_bytes)
         | Reset_mid_frame { after; _ } ->
           let after = max 1 (min after (len - 1)) in
           [ `Chunk (String.sub frame_bytes 0 after); `Reset ]
         | Delay_frame { delay_ms; _ } ->
           [ `Delay_ms delay_ms; `Chunk frame_bytes ]
         | Duplicate_frame _ -> [ `Chunk frame_bytes; `Chunk frame_bytes ]
         | Handshake_garbage _ -> [ `Chunk frame_bytes ])
    in
    (prelude @ actions : action list)
end

(* --- filesystem fault plans --------------------------------------- *)

module Io = struct
  type fault =
    | Short_write of { op : int; keep : int }
        (* write op [op] keeps only [keep] bytes, then ENOSPC *)
    | Enospc_after of { bytes : int }
        (* cumulative in-scope writes past [bytes] hit ENOSPC *)
    | Write_eio of { op : int }  (* write op [op] fails with EIO *)
    | Fsync_eio of { op : int }  (* fsync op [op] fails with EIO *)
    | Fsync_lie of { op : int }
        (* fsync op [op] acks without syncing — durable prefix stalls *)
    | Rename_fail of { op : int }  (* rename op [op] fails with EIO *)
    | Power_cut of { op : int }
        (* everything from write op [op] on fails with EIO *)

  type plan = {
    plan_name : string;
    scope : string;
    faults : fault list;
  }

  let no_faults = { plan_name = "no-io-faults"; scope = ""; faults = [] }
  let plan ~name ~scope faults = { plan_name = name; scope; faults }
  let is_empty p = p.faults = []
  let fault_count p = List.length p.faults

  let fault_json = function
    | Short_write { op; keep } ->
      J.Assoc
        [ ("kind", J.String "short_write");
          ("op", J.Int op);
          ("keep", J.Int keep)
        ]
    | Enospc_after { bytes } ->
      J.Assoc [ ("kind", J.String "enospc_after"); ("bytes", J.Int bytes) ]
    | Write_eio { op } ->
      J.Assoc [ ("kind", J.String "write_eio"); ("op", J.Int op) ]
    | Fsync_eio { op } ->
      J.Assoc [ ("kind", J.String "fsync_eio"); ("op", J.Int op) ]
    | Fsync_lie { op } ->
      J.Assoc [ ("kind", J.String "fsync_lie"); ("op", J.Int op) ]
    | Rename_fail { op } ->
      J.Assoc [ ("kind", J.String "rename_fail"); ("op", J.Int op) ]
    | Power_cut { op } ->
      J.Assoc [ ("kind", J.String "power_cut"); ("op", J.Int op) ]

  let plan_json p =
    J.Assoc
      [ ("plan", J.String p.plan_name);
        ("scope", J.String p.scope);
        ("faults", J.List (List.map fault_json p.faults))
      ]

  let fault_of_json j =
    let* kvs = assoc j in
    let* kind = string_key "kind" kvs in
    match kind with
    | "short_write" ->
      let* op = int_key "op" kvs in
      let* keep = int_key "keep" kvs in
      Ok (Short_write { op; keep })
    | "enospc_after" ->
      let* bytes = int_key "bytes" kvs in
      Ok (Enospc_after { bytes })
    | "write_eio" ->
      let* op = int_key "op" kvs in
      Ok (Write_eio { op })
    | "fsync_eio" ->
      let* op = int_key "op" kvs in
      Ok (Fsync_eio { op })
    | "fsync_lie" ->
      let* op = int_key "op" kvs in
      Ok (Fsync_lie { op })
    | "rename_fail" ->
      let* op = int_key "op" kvs in
      Ok (Rename_fail { op })
    | "power_cut" ->
      let* op = int_key "op" kvs in
      Ok (Power_cut { op })
    | other -> Error (Printf.sprintf "io fault plan: unknown kind %S" other)

  let plan_of_json j =
    let* kvs = assoc j in
    let* plan_name = string_key "plan" kvs in
    let* scope = string_key "scope" kvs in
    let* faults = key "faults" kvs in
    let* items =
      match faults with
      | J.List items -> Ok items
      | _ -> Error "io fault plan: key \"faults\" must be an array"
    in
    let rec decode acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        let* f = fault_of_json item in
        decode (f :: acc) rest
    in
    let* faults = decode [] items in
    Ok { plan_name; scope; faults }

  let generate ~seed ~scope ~ops ~count =
    let name = Printf.sprintf "io-generated-%d" seed in
    if ops < 1 || count < 1 then { plan_name = name; scope; faults = [] }
    else begin
      let st = Random.State.make [| 0x10f5; 0xd15c; seed |] in
      let pick () =
        let op = Random.State.int st ops in
        match Random.State.int st 7 with
        | 0 -> Short_write { op; keep = Random.State.int st 16 }
        | 1 -> Enospc_after { bytes = Random.State.int st 4096 }
        | 2 -> Write_eio { op }
        | 3 -> Fsync_eio { op }
        | 4 -> Fsync_lie { op }
        | 5 -> Rename_fail { op }
        | _ -> Power_cut { op }
      in
      let rec draw acc n =
        if n = 0 then List.rev acc else draw (pick () :: acc) (n - 1)
      in
      { plan_name = name; scope; faults = draw [] count }
    end

  (* --- arming ------------------------------------------------------ *)

  type file_state = {
    mutable flushed : int;  (* offset after the last allowed write *)
    mutable durable : int;  (* offset at the last honest fsync *)
    mutable boundaries : int list;  (* post-write offsets, reversed *)
  }

  type armed = {
    armed_plan : plan;
    files : (string, file_state) Hashtbl.t;
    mutable writes : int;
    mutable fsyncs : int;
    mutable renames : int;
    mutable dead : bool;  (* a Power_cut fired *)
    mutable io_triggered : int;
    lock : Mutex.t;  (* the hook is consulted from worker domains *)
  }

  let arm p =
    {
      armed_plan = p;
      files = Hashtbl.create 8;
      writes = 0;
      fsyncs = 0;
      renames = 0;
      dead = false;
      io_triggered = 0;
      lock = Mutex.create ();
    }

  let armed_faults a = fault_count a.armed_plan
  let io_triggered a = a.io_triggered

  let locked a f =
    Mutex.lock a.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock a.lock) f

  (* A [.tmp] sibling of an in-scope path is in scope too, so
     temp+rename commits face the same faults as the final file. *)
  let in_scope a path =
    let scope = a.armed_plan.scope in
    scope = ""
    || Filename.check_suffix path scope
    || Tabv_core.Io.is_temp_path path
       && Filename.check_suffix
            (Filename.chop_suffix path Tabv_core.Io.temp_suffix)
            scope

  let file_state a path =
    match Hashtbl.find_opt a.files path with
    | Some st -> st
    | None ->
      let st = { flushed = 0; durable = 0; boundaries = [] } in
      Hashtbl.add a.files path st;
      st

  let write_boundaries a path =
    locked a (fun () ->
        match Hashtbl.find_opt a.files path with
        | None -> []
        | Some st -> List.rev st.boundaries)

  let durable_prefix a path =
    locked a (fun () ->
        match Hashtbl.find_opt a.files path with
        | None -> 0
        | Some st -> st.durable)

  let fired a = a.io_triggered <- a.io_triggered + 1

  (* At most one fault fires per operation — the first in plan order
     that targets it; [Enospc_after] and an armed [Power_cut] are
     standing conditions rather than indexed ops. *)
  let on_write a ~path ~offset ~len =
    if not (in_scope a path) then Tabv_core.Io.Write_through
    else
      locked a (fun () ->
          let st = file_state a path in
          (* A reopened file (append after resume) starts past the
             recorded offsets: adopt the caller's offset. *)
          if offset > st.flushed then st.flushed <- offset;
          let n = a.writes in
          a.writes <- n + 1;
          if a.dead then Tabv_core.Io.Write_error Unix.EIO
          else begin
            let allow () =
              st.flushed <- offset + len;
              st.boundaries <- st.flushed :: st.boundaries;
              Tabv_core.Io.Write_through
            in
            let decide = function
              | Short_write { op; keep } when op = n ->
                fired a;
                let keep = max 0 (min keep len) in
                st.flushed <- offset + keep;
                Some (Tabv_core.Io.Write_short { bytes = keep; error = Unix.ENOSPC })
              | Write_eio { op } when op = n ->
                fired a;
                Some (Tabv_core.Io.Write_error Unix.EIO)
              | Power_cut { op } when op <= n ->
                fired a;
                a.dead <- true;
                Some (Tabv_core.Io.Write_error Unix.EIO)
              | Enospc_after { bytes } when offset + len > bytes ->
                fired a;
                if offset >= bytes then
                  Some (Tabv_core.Io.Write_error Unix.ENOSPC)
                else begin
                  let keep = bytes - offset in
                  st.flushed <- offset + keep;
                  Some
                    (Tabv_core.Io.Write_short
                       { bytes = keep; error = Unix.ENOSPC })
                end
              | _ -> None
            in
            match List.find_map decide a.armed_plan.faults with
            | Some d -> d
            | None -> allow ()
          end)

  let on_fsync a ~path =
    if not (in_scope a path) then Tabv_core.Io.Fsync_through
    else
      locked a (fun () ->
          let st = file_state a path in
          let n = a.fsyncs in
          a.fsyncs <- n + 1;
          if a.dead then Tabv_core.Io.Fsync_error Unix.EIO
          else begin
            let decide = function
              | Fsync_eio { op } when op = n ->
                fired a;
                Some (Tabv_core.Io.Fsync_error Unix.EIO)
              | Fsync_lie { op } when op = n ->
                fired a;
                Some Tabv_core.Io.Fsync_lost
              | _ -> None
            in
            match List.find_map decide a.armed_plan.faults with
            | Some d -> d
            | None ->
              st.durable <- st.flushed;
              Tabv_core.Io.Fsync_through
          end)

  let on_rename a ~src ~dst =
    ignore src;
    if not (in_scope a dst) then Tabv_core.Io.Op_through
    else
      locked a (fun () ->
          let n = a.renames in
          a.renames <- n + 1;
          if a.dead then Tabv_core.Io.Op_error Unix.EIO
          else begin
            let decide = function
              | Rename_fail { op } when op = n ->
                fired a;
                Some (Tabv_core.Io.Op_error Unix.EIO)
              | _ -> None
            in
            match List.find_map decide a.armed_plan.faults with
            | Some d -> d
            | None -> Tabv_core.Io.Op_through
          end)

  let on_close a ~path =
    if (not (in_scope a path)) || not a.dead then Tabv_core.Io.Op_through
    else Tabv_core.Io.Op_error Unix.EIO

  let hook a =
    {
      Tabv_core.Io.on_write = (fun ~path ~offset ~len -> on_write a ~path ~offset ~len);
      on_fsync = (fun ~path -> on_fsync a ~path);
      on_rename = (fun ~src ~dst -> on_rename a ~src ~dst);
      on_close = (fun ~path -> on_close a ~path);
    }

  let install a = Tabv_core.Io.interpose (hook a)
  let uninstall () = Tabv_core.Io.clear_interpose ()
end
