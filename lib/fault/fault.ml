open Tabv_sim
module J = Tabv_core.Report_json

type signal_fault =
  | Stuck_at_0 of { from_ns : int }
  | Stuck_at_1 of { from_ns : int }
  | Bit_flip of { bit : int; at_ns : int }
  | Glitch of { bit : int; from_ns : int; duration_ns : int }

type tlm_fault =
  | Corrupt_field of { field : string; fault : signal_fault }
  | Corrupt_data of { index : int; bit : int }
  | Drop of { index : int }
  | Extra_delay of { index : int; delay_ns : int }
  | Duplicate of { index : int }
  | Hang of { index : int }

type hard_failure =
  | Abort
  | Alloc_storm
  | Busy_loop

type chaos =
  | Crash of { at_ns : int; name : string }
  | Livelock_loop of { at_ns : int }
  | Hard of { at_ns : int; failure : hard_failure }

type injection =
  | Signal_fault of { signal : string; fault : signal_fault }
  | Tlm_mutation of { socket : string; fault : tlm_fault }
  | Chaos of chaos

type plan = {
  plan_name : string;
  injections : injection list;
}

let no_faults = { plan_name = "no-faults"; injections = [] }
let plan ~name injections = { plan_name = name; injections }
let is_empty p = p.injections = []
let injection_count p = List.length p.injections
let equal_plan (a : plan) (b : plan) = a = b

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let signal_fault_json = function
  | Stuck_at_0 { from_ns } ->
    J.Assoc [ ("kind", J.String "stuck_at_0"); ("from_ns", J.Int from_ns) ]
  | Stuck_at_1 { from_ns } ->
    J.Assoc [ ("kind", J.String "stuck_at_1"); ("from_ns", J.Int from_ns) ]
  | Bit_flip { bit; at_ns } ->
    J.Assoc [ ("kind", J.String "bit_flip"); ("bit", J.Int bit); ("at_ns", J.Int at_ns) ]
  | Glitch { bit; from_ns; duration_ns } ->
    J.Assoc
      [ ("kind", J.String "glitch");
        ("bit", J.Int bit);
        ("from_ns", J.Int from_ns);
        ("duration_ns", J.Int duration_ns)
      ]

let tlm_fault_json = function
  | Corrupt_field { field; fault } ->
    J.Assoc
      [ ("kind", J.String "corrupt_field");
        ("field", J.String field);
        ("fault", signal_fault_json fault)
      ]
  | Corrupt_data { index; bit } ->
    J.Assoc
      [ ("kind", J.String "corrupt_data"); ("index", J.Int index); ("bit", J.Int bit) ]
  | Drop { index } -> J.Assoc [ ("kind", J.String "drop"); ("index", J.Int index) ]
  | Extra_delay { index; delay_ns } ->
    J.Assoc
      [ ("kind", J.String "extra_delay");
        ("index", J.Int index);
        ("delay_ns", J.Int delay_ns)
      ]
  | Duplicate { index } ->
    J.Assoc [ ("kind", J.String "duplicate"); ("index", J.Int index) ]
  | Hang { index } -> J.Assoc [ ("kind", J.String "hang"); ("index", J.Int index) ]

let hard_failure_name = function
  | Abort -> "abort"
  | Alloc_storm -> "alloc_storm"
  | Busy_loop -> "busy_loop"

let hard_failure_of_name = function
  | "abort" -> Some Abort
  | "alloc_storm" -> Some Alloc_storm
  | "busy_loop" -> Some Busy_loop
  | _ -> None

let chaos_json = function
  | Crash { at_ns; name } ->
    J.Assoc
      [ ("kind", J.String "crash"); ("at_ns", J.Int at_ns); ("name", J.String name) ]
  | Livelock_loop { at_ns } ->
    J.Assoc [ ("kind", J.String "livelock"); ("at_ns", J.Int at_ns) ]
  | Hard { at_ns; failure } ->
    J.Assoc
      [ ("kind", J.String (hard_failure_name failure)); ("at_ns", J.Int at_ns) ]

let injection_json = function
  | Signal_fault { signal; fault } ->
    J.Assoc
      [ ("kind", J.String "signal");
        ("signal", J.String signal);
        ("fault", signal_fault_json fault)
      ]
  | Tlm_mutation { socket; fault } ->
    J.Assoc
      [ ("kind", J.String "tlm");
        ("socket", J.String socket);
        ("fault", tlm_fault_json fault)
      ]
  | Chaos c -> J.Assoc [ ("kind", J.String "chaos"); ("fault", chaos_json c) ]

let plan_json p =
  J.Assoc
    [ ("plan", J.String p.plan_name);
      ("injections", J.List (List.map injection_json p.injections))
    ]

let pp_plan ppf p = Format.pp_print_string ppf (J.to_string (plan_json p))

(* Decoding: a small result-monad reader over the document model. *)

let ( let* ) = Result.bind

let assoc = function
  | J.Assoc kvs -> Ok kvs
  | _ -> Error "fault plan: expected an object"

let key name kvs =
  match List.assoc_opt name kvs with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "fault plan: missing key %S" name)

let int_key name kvs =
  let* v = key name kvs in
  match v with
  | J.Int n -> Ok n
  | _ -> Error (Printf.sprintf "fault plan: key %S must be an integer" name)

let string_key name kvs =
  let* v = key name kvs in
  match v with
  | J.String s -> Ok s
  | _ -> Error (Printf.sprintf "fault plan: key %S must be a string" name)

let signal_fault_of_json j =
  let* kvs = assoc j in
  let* kind = string_key "kind" kvs in
  match kind with
  | "stuck_at_0" ->
    let* from_ns = int_key "from_ns" kvs in
    Ok (Stuck_at_0 { from_ns })
  | "stuck_at_1" ->
    let* from_ns = int_key "from_ns" kvs in
    Ok (Stuck_at_1 { from_ns })
  | "bit_flip" ->
    let* bit = int_key "bit" kvs in
    let* at_ns = int_key "at_ns" kvs in
    Ok (Bit_flip { bit; at_ns })
  | "glitch" ->
    let* bit = int_key "bit" kvs in
    let* from_ns = int_key "from_ns" kvs in
    let* duration_ns = int_key "duration_ns" kvs in
    Ok (Glitch { bit; from_ns; duration_ns })
  | other -> Error (Printf.sprintf "fault plan: unknown signal fault kind %S" other)

let tlm_fault_of_json j =
  let* kvs = assoc j in
  let* kind = string_key "kind" kvs in
  match kind with
  | "corrupt_field" ->
    let* field = string_key "field" kvs in
    let* f = key "fault" kvs in
    let* fault = signal_fault_of_json f in
    Ok (Corrupt_field { field; fault })
  | "corrupt_data" ->
    let* index = int_key "index" kvs in
    let* bit = int_key "bit" kvs in
    Ok (Corrupt_data { index; bit })
  | "drop" ->
    let* index = int_key "index" kvs in
    Ok (Drop { index })
  | "extra_delay" ->
    let* index = int_key "index" kvs in
    let* delay_ns = int_key "delay_ns" kvs in
    Ok (Extra_delay { index; delay_ns })
  | "duplicate" ->
    let* index = int_key "index" kvs in
    Ok (Duplicate { index })
  | "hang" ->
    let* index = int_key "index" kvs in
    Ok (Hang { index })
  | other -> Error (Printf.sprintf "fault plan: unknown tlm fault kind %S" other)

let chaos_of_json j =
  let* kvs = assoc j in
  let* kind = string_key "kind" kvs in
  match kind with
  | "crash" ->
    let* at_ns = int_key "at_ns" kvs in
    let* name = string_key "name" kvs in
    Ok (Crash { at_ns; name })
  | "livelock" ->
    let* at_ns = int_key "at_ns" kvs in
    Ok (Livelock_loop { at_ns })
  | other ->
    (match hard_failure_of_name other with
     | Some failure ->
       let* at_ns = int_key "at_ns" kvs in
       Ok (Hard { at_ns; failure })
     | None -> Error (Printf.sprintf "fault plan: unknown chaos kind %S" other))

let injection_of_json j =
  let* kvs = assoc j in
  let* kind = string_key "kind" kvs in
  match kind with
  | "signal" ->
    let* signal = string_key "signal" kvs in
    let* f = key "fault" kvs in
    let* fault = signal_fault_of_json f in
    Ok (Signal_fault { signal; fault })
  | "tlm" ->
    let* socket = string_key "socket" kvs in
    let* f = key "fault" kvs in
    let* fault = tlm_fault_of_json f in
    Ok (Tlm_mutation { socket; fault })
  | "chaos" ->
    let* f = key "fault" kvs in
    let* fault = chaos_of_json f in
    Ok (Chaos fault)
  | other -> Error (Printf.sprintf "fault plan: unknown injection kind %S" other)

let plan_of_json j =
  let* kvs = assoc j in
  let* plan_name = string_key "plan" kvs in
  let* injections = key "injections" kvs in
  let* items =
    match injections with
    | J.List items -> Ok items
    | _ -> Error "fault plan: key \"injections\" must be an array"
  in
  let rec decode acc = function
    | [] -> Ok (List.rev acc)
    | item :: rest ->
      let* inj = injection_of_json item in
      decode (inj :: acc) rest
  in
  let* injections = decode [] items in
  Ok { plan_name; injections }

let plan_of_string s =
  match J.of_string s with
  | exception J.Parse_error { line; col; message } ->
    Error (Printf.sprintf "fault plan: %d:%d: %s" line col message)
  | j -> plan_of_json j

let diagnosis_json (d : Kernel.diagnosis) =
  match d with
  | Kernel.Completed -> J.Assoc [ ("kind", J.String "completed") ]
  | Kernel.Starved { waiting } ->
    J.Assoc [ ("kind", J.String "starved"); ("waiting", J.Int waiting) ]
  | Kernel.Livelock { time; delta_cycles } ->
    J.Assoc
      [ ("kind", J.String "livelock");
        ("time", J.Int time);
        ("delta_cycles", J.Int delta_cycles)
      ]
  | Kernel.Budget_exhausted { steps } ->
    J.Assoc [ ("kind", J.String "budget_exhausted"); ("steps", J.Int steps) ]
  | Kernel.Process_crashed { name; error } ->
    J.Assoc
      [ ("kind", J.String "process_crashed");
        ("process", J.String name);
        ("error", J.String error)
      ]

(* ------------------------------------------------------------------ *)
(* Seeded generation                                                   *)
(* ------------------------------------------------------------------ *)

let generate ~seed ~signals ~sockets ~horizon_ns ~count =
  let name = Printf.sprintf "generated-%d" seed in
  if signals = [] && sockets = [] then { plan_name = name; injections = [] }
  else begin
    let st = Random.State.make [| 0x7ab5; seed |] in
    let instant () = Random.State.int st (max 1 horizon_ns) in
    let pick_signal () =
      let signal, width =
        List.nth signals (Random.State.int st (List.length signals))
      in
      let bit = Random.State.int st (max 1 width) in
      let fault =
        match Random.State.int st 4 with
        | 0 -> Stuck_at_0 { from_ns = instant () }
        | 1 -> Stuck_at_1 { from_ns = instant () }
        | 2 -> Bit_flip { bit; at_ns = instant () }
        | _ ->
          let from_ns = instant () in
          let duration_ns = 1 + Random.State.int st (max 1 (horizon_ns - from_ns)) in
          Glitch { bit; from_ns; duration_ns }
      in
      Signal_fault { signal; fault }
    in
    let pick_tlm () =
      let socket = List.nth sockets (Random.State.int st (List.length sockets)) in
      let index = Random.State.int st 16 in
      let fault =
        match Random.State.int st 4 with
        | 0 -> Corrupt_data { index; bit = Random.State.int st 64 }
        | 1 -> Drop { index }
        | 2 -> Extra_delay { index; delay_ns = 1 + Random.State.int st 50 }
        | _ -> Duplicate { index }
      in
      Tlm_mutation { socket; fault }
    in
    (* Build in index order: [List.init] has unspecified evaluation
       order, which would break seeded determinism. *)
    let rec draw acc n =
      if n = 0 then List.rev acc
      else begin
        let inj =
          if sockets = [] then pick_signal ()
          else if signals = [] then pick_tlm ()
          else if Random.State.int st 3 < 2 then pick_signal ()
          else pick_tlm ()
        in
        draw (inj :: acc) (n - 1)
      end
    in
    { plan_name = name; injections = draw [] count }
  end

(* ------------------------------------------------------------------ *)
(* Binding and installation                                            *)
(* ------------------------------------------------------------------ *)

type target =
  | Bool_signal of bool Signal.t
  | Int_signal of { signal : int Signal.t; width : int }
  | Int64_signal of { signal : int64 Signal.t; width : int }

type lens = {
  get : unit -> int64;
  set : int64 -> unit;
  width : int;
}

type socket_binding = {
  initiator : Tlm.Initiator.t;
  fields : (string * lens) list;
}

type binding = {
  kernel : Kernel.t;
  signals : (string * target) list;
  sockets : (string * socket_binding) list;
}

type installed = {
  mutable triggered_count : int;
  armed_count : int;
}

let armed inst = inst.armed_count
let triggered inst = inst.triggered_count
let trigger inst = inst.triggered_count <- inst.triggered_count + 1
let ones width = if width >= 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
let mask width v = Int64.logand v (ones width)

(* One saboteur application over the int64 bits view.  Triggering is
   counted only when the fault actually alters the value: an armed
   stuck-at on a signal already at that value is latent, which is the
   honest qualification verdict. *)
let apply_signal_fault inst ~now ~width bits fault =
  match fault with
  | Stuck_at_0 { from_ns } ->
    if now >= from_ns then begin
      if bits <> 0L then trigger inst;
      0L
    end
    else bits
  | Stuck_at_1 { from_ns } ->
    if now >= from_ns then begin
      let v = ones width in
      if bits <> v then trigger inst;
      v
    end
    else bits
  | Bit_flip { bit; at_ns } ->
    if now = at_ns && bit < width then begin
      trigger inst;
      mask width (Int64.logxor bits (Int64.shift_left 1L bit))
    end
    else bits
  | Glitch { bit; from_ns; duration_ns } ->
    if now >= from_ns && now < from_ns + duration_ns && bit < width then begin
      trigger inst;
      mask width (Int64.logxor bits (Int64.shift_left 1L bit))
    end
    else bits

(* Instants at which a fault arms or disarms: the saboteur needs an
   update-phase application there even if the design writes nothing,
   so each boundary schedules a {!Signal.refresh}. *)
let boundaries = function
  | Stuck_at_0 { from_ns } | Stuck_at_1 { from_ns } -> [ from_ns ]
  | Bit_flip { at_ns; _ } -> [ at_ns; at_ns + 1 ]
  | Glitch { from_ns; duration_ns; _ } -> [ from_ns; from_ns + duration_ns ]

let install_signal kernel inst target faults =
  let transform_bits width bits =
    let now = Kernel.now kernel in
    List.fold_left (fun b f -> apply_signal_fault inst ~now ~width b f) bits faults
  in
  let refresh =
    match target with
    | Bool_signal s ->
      Signal.interpose s (fun v ->
        Int64.logand (transform_bits 1 (if v then 1L else 0L)) 1L <> 0L);
      fun () -> Signal.refresh s
    | Int_signal { signal; width } ->
      Signal.interpose signal (fun v -> Int64.to_int (transform_bits width (Int64.of_int v)));
      fun () -> Signal.refresh signal
    | Int64_signal { signal; width } ->
      Signal.interpose signal (fun v -> transform_bits width v);
      fun () -> Signal.refresh signal
  in
  List.iter
    (fun fault ->
      List.iter
        (fun time -> if time >= Kernel.now kernel then Kernel.schedule_at kernel ~time refresh)
        (boundaries fault))
    faults

let install_socket kernel inst sb faults =
  List.iter
    (function
      | Corrupt_field { field; _ } when not (List.mem_assoc field sb.fields) ->
        invalid_arg
          (Printf.sprintf "Fault.install: unknown field %S on socket %s" field
             (Tlm.Initiator.name sb.initiator))
      | _ -> ())
    faults;
  let count = ref 0 in
  Tlm.Initiator.interpose sb.initiator (fun transport payload ->
    let i = !count in
    incr count;
    (* Pre-transport mutations: timing first, then the call itself. *)
    List.iter
      (function
        | Extra_delay { index; delay_ns } when index = i ->
          trigger inst;
          Process.wait_ns kernel delay_ns
        | Hang { index } when index = i ->
          trigger inst;
          (* An event nobody ever notifies: the initiator thread
             blocks forever and the run ends [Starved]. *)
          Process.wait_event (Event.create kernel "fault.hang")
        | _ -> ())
      faults;
    let dropped = List.exists (function Drop { index } -> index = i | _ -> false) faults in
    if dropped then begin
      trigger inst;
      payload.Tlm.response_ok <- false
    end
    else begin
      transport payload;
      List.iter
        (function
          | Duplicate { index } when index = i ->
            trigger inst;
            transport payload
          | _ -> ())
        faults
    end;
    (* Post-transport corruption: visible to the abstracted property
       suite because the checker samples one delta later. *)
    List.iter
      (function
        | Corrupt_data { index; bit } when index = i ->
          trigger inst;
          payload.Tlm.data <- Int64.logxor payload.Tlm.data (Int64.shift_left 1L bit)
        | Corrupt_field { field; fault } ->
          let lens = List.assoc field sb.fields in
          let v = lens.get () in
          let v' = apply_signal_fault inst ~now:(Kernel.now kernel) ~width:lens.width v fault in
          if v' <> v then lens.set v'
        | _ -> ())
      faults)

(* Hard failures: crash classes that in-process exception catching
   provably cannot contain.  They exist to validate the process-level
   isolation of the campaign subprocess executor (lib/campaign):

   - [Abort] raises SIGABRT in the current process — no OCaml handler
     runs, the OS terminates the process (containment = fork
     boundary);
   - [Alloc_storm] grows the live heap monotonically and never
     returns.  It is rate-limited (~64 MiB/s) so that in tests the
     executor's wall-clock watchdog, not the machine's OOM killer, is
     the expected containment;
   - [Busy_loop] spins inside one scheduled action without ever
     yielding to the kernel, so the delta-cycle and step-budget
     watchdogs never get a chance to trip — only an external
     wall-clock watchdog (SIGKILL) contains it. *)
let execute_hard_failure = function
  | Abort ->
    Unix.kill (Unix.getpid ()) Sys.sigabrt;
    (* Unreachable: SIGABRT's default disposition terminates. *)
    assert false
  | Alloc_storm ->
    let hoard = ref [] in
    let rec grow () =
      hoard := Bytes.create 65536 :: !hoard;
      Unix.sleepf 0.001;
      grow ()
    in
    grow ()
  | Busy_loop ->
    let x = ref 0 in
    let rec spin () =
      x := !x lxor 1;
      spin ()
    in
    spin ()

let install_chaos kernel inst = function
  | Crash { at_ns; name } ->
    Kernel.schedule_at kernel ~time:at_ns (fun () ->
      trigger inst;
      Kernel.set_label kernel name;
      failwith (Printf.sprintf "injected crash: %s" name))
  | Livelock_loop { at_ns } ->
    Kernel.schedule_at kernel ~time:at_ns (fun () ->
      trigger inst;
      let rec spin () = Kernel.schedule_next_delta kernel spin in
      spin ())
  | Hard { at_ns; failure } ->
    Kernel.schedule_at kernel ~time:at_ns (fun () ->
      trigger inst;
      execute_hard_failure failure)

let install binding plan =
  let inst = { triggered_count = 0; armed_count = List.length plan.injections } in
  (* Group per signal / per socket (first-appearance order) so each
     carrier gets exactly one composite interposer. *)
  let by_signal = ref [] and by_socket = ref [] in
  let push groups name fault =
    match List.assoc_opt name !groups with
    | Some faults -> faults := fault :: !faults
    | None -> groups := !groups @ [ (name, ref [ fault ]) ]
  in
  List.iter
    (function
      | Signal_fault { signal; fault } ->
        if not (List.mem_assoc signal binding.signals) then
          invalid_arg (Printf.sprintf "Fault.install: unknown signal %S" signal);
        push by_signal signal fault
      | Tlm_mutation { socket; fault } ->
        if not (List.mem_assoc socket binding.sockets) then
          invalid_arg (Printf.sprintf "Fault.install: unknown socket %S" socket);
        push by_socket socket fault
      | Chaos c -> install_chaos binding.kernel inst c)
    plan.injections;
  List.iter
    (fun (name, faults) ->
      install_signal binding.kernel inst (List.assoc name binding.signals)
        (List.rev !faults))
    !by_signal;
  List.iter
    (fun (name, faults) ->
      install_socket binding.kernel inst (List.assoc name binding.sockets)
        (List.rev !faults))
    !by_socket;
  if plan.injections <> [] then begin
    let metrics = Kernel.metrics binding.kernel in
    Tabv_obs.Metrics.probe metrics "fault.armed" (fun () -> inst.armed_count);
    Tabv_obs.Metrics.probe metrics "fault.triggered" (fun () -> inst.triggered_count)
  end;
  inst
