(** Deterministic, seedable fault injection for qualification
    campaigns.

    A {!plan} is a pure description of design bugs to inject — signal
    saboteurs, TLM transaction mutators and kernel-level chaos — that
    serializes to/from the campaign manifest JSON and compiles, via
    {!install}, onto a concrete design through the {!Tabv_sim.Signal}
    and {!Tabv_sim.Tlm} interposition hooks.  No DUV logic is touched:
    saboteurs transform driven signal values in the update phase,
    mutators wrap the blocking-transport call, and chaos injections
    are scheduled kernel actions.  Everything is a function of the
    plan and the simulation schedule, so a replay of the same plan on
    the same design is bit-identical.

    The point (after Bombieri et al.'s re-use argument): inject the
    same conceptual fault at RTL and at the abstracted TLM levels and
    check that the rewritten property suite still detects it. *)

(** {2 Fault vocabulary} *)

(** A saboteur on one signal (or, inside {!Corrupt_field}, on one
    observable field).  Times are absolute instants in ns. *)
type signal_fault =
  | Stuck_at_0 of { from_ns : int }  (** all bits forced to 0 from [from_ns] on *)
  | Stuck_at_1 of { from_ns : int }  (** all bits forced to 1 from [from_ns] on *)
  | Bit_flip of { bit : int; at_ns : int }
      (** XOR of one bit during the single instant [at_ns] *)
  | Glitch of { bit : int; from_ns : int; duration_ns : int }
      (** XOR of one bit during \[[from_ns], [from_ns + duration_ns]) *)

(** A mutator on one initiator socket.  [index] is the 0-based count
    of transactions issued through that socket. *)
type tlm_fault =
  | Corrupt_field of { field : string; fault : signal_fault }
      (** after each transport call, pass the named observable field
          (bound by a {!lens}) through [fault] *)
  | Corrupt_data of { index : int; bit : int }
      (** flip one bit of [payload.data] after transaction [index] *)
  | Drop of { index : int }
      (** transaction [index] never reaches the target; its
          [response_ok] is cleared *)
  | Extra_delay of { index : int; delay_ns : int }
      (** transaction [index] consumes [delay_ns] extra ns first *)
  | Duplicate of { index : int }  (** transaction [index] is sent twice *)
  | Hang of { index : int }
      (** transaction [index] blocks forever (the initiator thread
          waits on an event that never fires — ends as [Starved]) *)

(** Hard failures: crash classes that no in-process exception handler
    can contain.  They exist to validate process-level isolation (the
    campaign subprocess executor): in-domain catching provably cannot
    survive them. *)
type hard_failure =
  | Abort  (** raise SIGABRT in the current process — immediate death *)
  | Alloc_storm
      (** grow the live heap monotonically, never returning
          (rate-limited to ~64 MiB/s so a wall-clock watchdog, not the
          OOM killer, is the expected containment in tests) *)
  | Busy_loop
      (** spin inside one action without yielding — invisible to the
          kernel's delta/step watchdogs, only an external wall-clock
          watchdog (SIGKILL) contains it *)

(** Kernel-level chaos, for exercising the watchdogs. *)
type chaos =
  | Crash of { at_ns : int; name : string }
      (** a labelled action raises at [at_ns] (ends as
          [Process_crashed] under [contain_crashes]) *)
  | Livelock_loop of { at_ns : int }
      (** an action reschedules itself every delta cycle from [at_ns]
          (ends as [Livelock] via the delta cap) *)
  | Hard of { at_ns : int; failure : hard_failure }
      (** an action executes {!execute_hard_failure} at [at_ns] *)

type injection =
  | Signal_fault of { signal : string; fault : signal_fault }
  | Tlm_mutation of { socket : string; fault : tlm_fault }
  | Chaos of chaos

type plan = {
  plan_name : string;
  injections : injection list;
}

(** ["abort"] / ["alloc_storm"] / ["busy_loop"] (also the JSON chaos
    kinds). *)
val hard_failure_name : hard_failure -> string

val hard_failure_of_name : string -> hard_failure option

(** Execute one hard failure {e in the calling process} — never
    returns normally.  [Abort] terminates the process via SIGABRT;
    [Alloc_storm] and [Busy_loop] never terminate on their own.  Used
    by kernel chaos injections ({!chaos}) and by the campaign runner's
    deterministic per-job chaos hook. *)
val execute_hard_failure : hard_failure -> 'a

val no_faults : plan
val plan : name:string -> injection list -> plan
val is_empty : plan -> bool
val injection_count : plan -> int
val equal_plan : plan -> plan -> bool
val pp_plan : Format.formatter -> plan -> unit

(** {2 JSON (campaign manifests and reports)} *)

(** [{"plan": name, "injections": [{"kind": ..}, ..]}] — deterministic
    key order, round-trips through {!plan_of_json}. *)
val plan_json : plan -> Tabv_core.Report_json.json

val plan_of_json : Tabv_core.Report_json.json -> (plan, string) result

(** Parse a JSON string into a plan ([Error] on malformed JSON too). *)
val plan_of_string : string -> (plan, string) result

(** A {!Tabv_sim.Kernel.diagnosis} as a JSON object, e.g.
    [{"kind":"livelock","time":40,"delta_cycles":1000000}]. *)
val diagnosis_json : Tabv_sim.Kernel.diagnosis -> Tabv_core.Report_json.json

(** {2 Seeded generation}

    [generate ~seed ~signals ~sockets ~horizon_ns ~count] draws
    [count] injections over the given signal (name, width) and socket
    namespaces with all instants inside [horizon_ns].  Pure function
    of its arguments (private PRNG), so campaign workers regenerate
    identical plans from the manifest seed.  Only terminating,
    self-contained faults are drawn (no [Hang], no [Corrupt_field],
    no chaos — those are named explicitly in plans). *)
val generate :
  seed:int ->
  signals:(string * int) list ->
  sockets:string list ->
  horizon_ns:int ->
  count:int ->
  plan

(** {2 Binding and installation} *)

(** A signal a saboteur can attach to, with its bit width. *)
type target =
  | Bool_signal of bool Tabv_sim.Signal.t
  | Int_signal of { signal : int Tabv_sim.Signal.t; width : int }
  | Int64_signal of { signal : int64 Tabv_sim.Signal.t; width : int }

(** A named observable field for {!Corrupt_field}: getter/setter over
    an [int64] view plus the field's width.  DUV adapters point these
    at the model's observables record so corruption is visible to the
    property checkers, whatever the payload shape. *)
type lens = {
  get : unit -> int64;
  set : int64 -> unit;
  width : int;
}

type socket_binding = {
  initiator : Tabv_sim.Tlm.Initiator.t;
  fields : (string * lens) list;
}

(** What a plan's names resolve against for one concrete design. *)
type binding = {
  kernel : Tabv_sim.Kernel.t;
  signals : (string * target) list;
  sockets : (string * socket_binding) list;
}

type installed

(** Compile the plan onto the design: installs one composite transform
    per sabotaged signal ({!Tabv_sim.Signal.interpose}) with refreshes
    scheduled at every fault boundary instant, one mutator per socket
    ({!Tabv_sim.Tlm.Initiator.interpose}), and schedules chaos
    actions.  Registers [fault.armed] / [fault.triggered] probes on
    the kernel's metrics registry.
    @raise Invalid_argument when the plan names a signal, socket or
    field absent from the binding (plans are written per abstraction
    level). *)
val install : binding -> plan -> installed

(** Number of injections compiled in. *)
val armed : installed -> int

(** Total fault activations so far: a saboteur application that
    changed a value, or a mutator/chaos firing.  [0] at the end of a
    run means the fault was {e latent} — never exercised. *)
val triggered : installed -> int

(** {2 Wire/transport fault plans}

    The same deterministic-saboteur philosophy one layer up the stack:
    instead of corrupting DUV signals, corrupt the length-prefixed
    byte stream a [tabv serve] client writes to the daemon.  A plan
    names {e which} outbound frame (0-based, counted across the
    client's whole life — reconnects included) suffers {e what};
    {!Net.arm}/{!Net.apply} turn one encoded frame into the wire
    {!Net.action}s a fault-aware sender executes.  Nothing in here
    touches a socket: the sender owns the fd and interprets the
    actions, so the vocabulary stays pure, JSON round-trippable, and
    testable without a daemon. *)
module Net : sig
  type fault =
    | Torn_frame of { frame : int; pieces : int }
        (** split the frame into [pieces] separate writes *)
    | Truncated_header of { frame : int; keep : int }
        (** write only the first [keep] header bytes, then reset *)
    | Corrupt_length of { frame : int; digit : int }
        (** rewrite hex digit [digit] (0-7) of the length prefix to a
            different digit, then reset (the stream past a lied-about
            length is unrecoverable) *)
    | Corrupt_version of { frame : int }
        (** overwrite the version field with [0xff], then reset *)
    | Slow_loris of { frame : int; delay_ms : int }
        (** dribble the frame out in up to 32 delayed writes *)
    | Reset_mid_frame of { frame : int; after : int }
        (** write [after] bytes of the frame, then reset *)
    | Delay_frame of { frame : int; delay_ms : int }
        (** hold the whole frame back [delay_ms], then send intact *)
    | Duplicate_frame of { frame : int }
        (** send the frame twice back-to-back *)
    | Handshake_garbage of { bytes : int }
        (** [bytes] of non-protocol noise before frame 0 (first byte
            is never a hex digit, so the reader fails instantly) *)

  type plan = {
    plan_name : string;
    faults : fault list;
  }

  val no_faults : plan
  val plan : name:string -> fault list -> plan
  val is_empty : plan -> bool
  val fault_count : plan -> int

  (** [{"plan": name, "faults": [{"kind": ..}, ..]}]; round-trips
      through {!plan_of_json}. *)
  val plan_json : plan -> Tabv_core.Report_json.json

  val plan_of_json : Tabv_core.Report_json.json -> (plan, string) result

  (** [generate ~seed ~frames ~count] draws [count] faults over frames
      [0 .. frames-1].  Pure function of its arguments (private PRNG,
      drawn in index order), like the DUV-level {!generate}. *)
  val generate : seed:int -> frames:int -> count:int -> plan

  (** One wire-level step of a faulted send, in order.  [`Reset]
      hard-closes the connection (both directions) and the sender
      treats the request as failed; actions after a [`Reset] are
      unreachable by construction. *)
  type action =
    [ `Chunk of string  (** write these bytes *)
    | `Delay_ms of int  (** sleep before the next action *)
    | `Reset  (** shut the socket down *)
    ]

  (** Mutable per-sender state: the outbound frame counter and the
      trigger count.  One [armed] per chaos client, surviving its
      reconnects. *)
  type armed

  val arm : plan -> armed

  (** [apply a frame_bytes] — the wire actions for the next outbound
      frame (versioned header assumed, as on every serve socket).  At
      most one fault fires per frame — the first in plan order —
      plus any handshake garbage before frame 0.  An unfaulted frame
      is exactly [[`Chunk frame_bytes]]. *)
  val apply : armed -> string -> action list

  val armed_faults : armed -> int

  (** Faults that actually fired so far (latent faults target frames
      never sent). *)
  val net_triggered : armed -> int

  val frames_sent : armed -> int
end

(** {2 Filesystem fault plans}

    The same methodology one layer {e down}: corrupt the durable-IO
    primitives every journal, trace and report write goes through
    ({!Tabv_core.Io}).  A plan names {e which} operation (0-based,
    counted per kind across all in-scope files) suffers {e what};
    {!Io.arm} compiles it into a {!Tabv_core.Io.hook} that
    {!Io.install} interposes globally.  The armed state additionally
    records every in-scope {e write boundary} (the flushed offset
    after each allowed chunk) and the {e durable prefix} (the offset
    at the last honest fsync) — the raw material for power-cut
    simulation: a crash image is the file truncated at a boundary, a
    lying-disk image is the file truncated to the durable prefix.
    Arming an empty plan is the pure observer the recovery soak uses
    to enumerate truncation points. *)
module Io : sig
  type fault =
    | Short_write of { op : int; keep : int }
        (** write op [op] persists only its first [keep] bytes, then
            fails with [ENOSPC] — a torn record *)
    | Enospc_after of { bytes : int }
        (** a full disk: cumulative in-scope writes past [bytes]
            bytes are cut short / refused with [ENOSPC] *)
    | Write_eio of { op : int }  (** write op [op] fails with [EIO] *)
    | Fsync_eio of { op : int }  (** fsync op [op] fails with [EIO] *)
    | Fsync_lie of { op : int }
        (** fsync op [op] reports success without syncing: the durable
            prefix does not advance, so a crash image drops the
            acknowledged bytes *)
    | Rename_fail of { op : int }
        (** rename op [op] fails with [EIO] — a torn
            temp+rename commit, leaving the [.tmp] orphan behind *)
    | Power_cut of { op : int }
        (** the machine dies at write op [op]: that write and every
            in-scope primitive after it fail with [EIO]; the harness
            then resumes from a truncated crash image *)

  type plan = {
    plan_name : string;
    scope : string;
        (** path suffix the plan applies to ([""] = every path); a
            [.tmp] sibling of an in-scope path is in scope too *)
    faults : fault list;
  }

  val no_faults : plan
  val plan : name:string -> scope:string -> fault list -> plan
  val is_empty : plan -> bool
  val fault_count : plan -> int

  (** [{"plan": name, "scope": suffix, "faults": [{"kind": ..}, ..]}];
      round-trips through {!plan_of_json}. *)
  val plan_json : plan -> Tabv_core.Report_json.json

  val plan_of_json : Tabv_core.Report_json.json -> (plan, string) result

  (** [generate ~seed ~scope ~ops ~count] draws [count] faults over
      operation indices [0 .. ops-1].  Pure function of its arguments
      (private PRNG, drawn in order), like the DUV-level
      {!val:generate}. *)
  val generate : seed:int -> scope:string -> ops:int -> count:int -> plan

  (** Mutable bookkeeping shared by one compiled plan: per-path write
      boundaries and durable prefixes, per-kind operation counters,
      the trigger count.  Thread-safe — journal appends consult the
      hook from worker domains. *)
  type armed

  val arm : plan -> armed

  (** The compiled hook; [install] interposes it globally. *)
  val hook : armed -> Tabv_core.Io.hook

  val install : armed -> unit

  (** Clears the global interpose hook. *)
  val uninstall : unit -> unit

  val armed_faults : armed -> int

  (** Faults that actually fired so far. *)
  val io_triggered : armed -> int

  (** In-scope flushed offsets of [path] after each allowed write,
      ascending — every prefix of the file a crash could leave
      behind. *)
  val write_boundaries : armed -> string -> int list

  (** Flushed offset of [path] at its last honest fsync (what an
      fsync-lie crash image keeps). *)
  val durable_prefix : armed -> string -> int
end
