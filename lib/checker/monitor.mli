open Tabv_psl

(** Property monitor: manages checker instances for one property.

    Mirrors the wrapper behaviour of Sec. IV of the paper:
    {ol
    {- {e activation}: for an [always body] property a fresh checker
       instance of [body] is activated at every evaluation point that
       satisfies the property's context gate; trivially-true instances
       are not registered;}
    {- {e evaluation}: every evaluation point steps all live
       instances; an instance whose timed obligation was skipped past
       raises a failure (handled inside {!Progression});}
    {- {e reset and reuse}: completed instances are retired (the
       paper's fixed-size array [C] becomes a multiset of hash-consed
       states mapping each distinct residual state to the activation
       times currently in it — identical live instances collapse and
       are stepped once, while failure attribution per activation time
       is preserved).}}

    For properties that are not of the form [always body], a single
    instance of the whole formula is activated at the first evaluation
    point. *)

(** Re-export of {!Tabv_obs.Checker_snapshot.failure}: the same record
    flows from the monitor through the testbenches into the report
    emitters without conversion. *)
type failure = Tabv_obs.Checker_snapshot.failure = {
  property_name : string;
  activation_time : int;  (** when the failing instance fired *)
  failure_time : int;  (** evaluation point that raised the failure *)
}

type t

(** Checker synthesis backend: interned formula rewriting with a
    memoized transition cache ({!Progression}, the default), the
    original tree-rewriting engine ([`Progression_legacy], kept as the
    executable reference for equivalence testing and benchmarking), or
    the explicit-state tabling of {!Automaton}.  [`Automaton] falls
    back to [`Progression] when the body cannot be tabled (timed
    [next_eps^tau] operators, too many atoms, state blow-up). *)
type engine =
  [ `Progression
  | `Progression_legacy
  | `Automaton
  ]

(** [create ?engine ?sampler property] prepares a monitor (default
    engine: [`Progression]).  The formula is normalised (boolean
    demotion + NNF) internally, so any parser output is accepted.  The
    context gate is taken from the property's context
    ([Edge_and]/[Trans_and] expressions).  When [sampler] is given,
    atom evaluations are shared with every other monitor holding the
    same sampler (one evaluation per distinct atom per instant);
    otherwise the monitor owns a private sampler. *)
val create : ?engine:engine -> ?sampler:Sampler.t -> Property.t -> t

(** The engine actually in use (after any fallback). *)
val engine : t -> engine

val property : t -> Property.t

(** Opt this monitor into delta-replay memoization: every subsequent
    {!step} records its counter deltas for {!step_stuttered} /
    {!replay}.  Off by default so live checking does not pay the
    per-step capture; offline re-checking pools
    ([Offline.Monitors.init]) turn it on. *)
val enable_memo : t -> unit

(** Consume one evaluation point.  [lookup] samples the observable
    environment at this instant.  [stuttered] declares that the
    caller knows every signal this monitor reads (formula atoms and
    context gate) holds the same value as at the previous evaluation
    point; it never changes the step's outcome, it only certifies the
    recorded counter deltas as steady so a later {!step_stuttered}
    may replay them (meaningful only under {!enable_memo}). *)
val step : ?stuttered:bool -> t -> time:int -> (string -> Expr.value option) -> unit

(** Stutter fast path: consume one evaluation point whose relevant
    valuation is unchanged since the previous point {e without}
    re-evaluating anything, by re-applying the previous step's counter
    deltas.  Sound only when the previous step touched nothing but
    counters (no live obligations before or after, no failure
    recorded — or a gated-out no-op) and its cache counters are in
    the steady regime (the step was itself taken with
    [~stuttered:true], or it ran without a single cache miss);
    returns [false] otherwise, and the caller must fall back to
    {!step}. *)
val step_stuttered : t -> time:int -> bool

(** [can_replay t] is true when the memoized counter deltas of the
    previous step are replayable under the conditions documented at
    {!step_stuttered} — i.e. a [step_stuttered] call right now would
    succeed.  Lets a caller test the whole pool once at the start of a
    stutter run and then batch. *)
val can_replay : t -> bool

(** [replay t ~count] applies the memoized deltas [count] times in
    O(1), equivalent to [count] successful {!step_stuttered} calls.
    Precondition: {!can_replay}[ t] held when the run started and no
    other step was taken since.  Raises [Invalid_argument] if the
    monitor has never stepped. *)
val replay : t -> count:int -> unit

(** End-of-simulation summary, deterministically ordered:
    chronological by failure time, and within one evaluation point in
    ascending activation-time order — independent of the internal
    instance representation. *)
val failures : t -> failure list

(** Live (pending) instances right now (activation count, i.e. the
    multiset cardinality — not the number of distinct states). *)
val live_instances : t -> int

(** Peak number of simultaneously live instances — the size the
    paper's preallocated instance array would need. *)
val peak_instances : t -> int

(** Distinct hash-consed states currently live (equals
    {!live_instances} for the legacy/automaton engines). *)
val distinct_states : t -> int

(** Peak number of simultaneously live distinct states — the size the
    interned engine's state multiset actually needs, usually far below
    {!peak_instances}. *)
val peak_distinct_states : t -> int

(** Total instances activated (excluding trivially-true ones). *)
val activations : t -> int

(** Instances that completed with a pass verdict (including trivial
    ones). *)
val passes : t -> int

(** Activation attempts that were trivially true at the firing point
    (e.g. an implication whose antecedent did not hold).  A property
    whose every evaluation point was trivial passed {e vacuously}. *)
val trivial_passes : t -> int

(** True when a {e temporal} property was evaluated but never
    non-trivially activated — e.g. an implication whose antecedent
    never fired: a vacuous pass that deserves a warning.  Pure boolean
    invariants resolve instantly by nature and are never flagged. *)
val vacuous : t -> bool

(** Evaluation points consumed (after context gating). *)
val steps : t -> int

(** Pending instances are inconclusive at end of simulation. *)
val pending : t -> int

(** {2 Transition-cache statistics} (interned engine; zero otherwise) *)

(** Steps of this monitor answered from the shared transition memo. *)
val cache_hits : t -> int

(** Steps of this monitor that ran the rewriting (including states
    with too many atoms to memoize). *)
val cache_misses : t -> int

(** [hits / (hits + misses)], 0 if the monitor never stepped. *)
val cache_hit_rate : t -> float

(** The per-instant atom sampler this monitor evaluates through. *)
val sampler : t -> Sampler.t

(** The wrapper's "evaluation table" (Sec. IV): the next required
    evaluation instant of every live instance that is waiting on a
    timed [next_eps^tau] obligation, sorted ascending. *)
val evaluation_table : t -> int list

(** The backend in use, as the string stored in snapshots:
    ["progression"], ["progression-legacy"] or ["automaton"]. *)
val engine_string : t -> string

(** One-shot record of every counter above plus the deterministic
    failure list — the single stats currency consumed by
    [Tabv_core.Report_json] and the testbenches. *)
val snapshot : t -> Tabv_obs.Checker_snapshot.t

val pp_failure : Format.formatter -> failure -> unit
