open Tabv_psl

(* The failure record is shared with the report layer through
   [Tabv_obs.Checker_snapshot] (tabv_core sits below this library in
   the dependency order); re-exporting the definition keeps the fields
   usable under both module paths. *)
type failure = Tabv_obs.Checker_snapshot.failure = {
  property_name : string;
  activation_time : int;
  failure_time : int;
}

type engine =
  [ `Progression
  | `Progression_legacy
  | `Automaton
  ]

(* The synthesis backends share the monitor through two live-instance
   representations:
   - the interned engine keeps a multiset of hash-consed states, each
     carrying the activation times that reached it (the paper's array
     [C] becomes [state -> activation times]);
   - the legacy and automaton engines keep the original list of live
     instances, one per activation. *)

type backend =
  | Interned_backend of Progression.t  (* initial obligation *)
  | Legacy_backend
  | Auto_backend of Automaton.t

type list_obligation =
  | Legacy_ob of Progression.Legacy.t
  | Auto_ob of Automaton.state

type instance = {
  activated_at : int;
  mutable obligation : list_obligation;
}

(* One distinct live state of the interned engine with every
   activation time currently in that state (ascending; activation
   times are unique per monitor, so no counts are needed beyond the
   list length). *)
type live_state = {
  state : Progression.t;
  mutable activations_at : int list;
}

(* Counter deltas of the most recent {!step}, for the stutter fast
   path: when the caller knows the relevant valuation is unchanged
   since the previous evaluation point, a step whose outcome cannot
   depend on anything else (no live obligations before or after, no
   failure recorded — or a gated-out no-op) is a pure function of the
   valuation and can be replayed by re-applying its deltas.  The
   [stuttered] flag records that the memoized step itself ran on an
   unchanged valuation, so its cache-counter deltas are already in
   the steady (memo-warm) regime and replaying them is exact; a step
   with zero cache misses is in that regime regardless (repeating it
   is guaranteed to hit the just-written memo entries again). *)
type step_memo = {
  m_steps : int;
  m_activations : int;
  m_passes : int;
  m_trivial : int;
  m_hits : int;
  m_misses : int;
  m_eligible : bool;
  m_stuttered : bool;
}

type t = {
  property : Property.t;
  body : Ltl.t;
  temporal_body : bool;  (* vacuity only makes sense for temporal bodies *)
  backend : backend;
  repeating : bool;  (* outer [always]: activate per evaluation point *)
  gate : Expr.t option;
  gate_atom : Interned.t option;  (* gate as interned atom, for sharing *)
  sampler : Sampler.t;
  mutable live : live_state list;  (* interned engine, insertion order *)
  mutable instances : instance list;  (* legacy/auto engines, newest first *)
  mutable started : bool;
  mutable failures : failure list;  (* unordered; sorted on read *)
  mutable activations : int;
  mutable passes : int;
  mutable peak : int;
  mutable peak_distinct : int;
  mutable steps : int;
  mutable trivial_passes : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  (* Delta-replay memoization is opt-in (offline re-checking pools):
     live checking must not pay the per-step capture. *)
  mutable memo_enabled : bool;
  mutable memo : step_memo option;
}

let gate_of_context = function
  | Context.Clock (Context.Base_clock | Context.Edge _ | Context.Named_edge _) ->
    None
  | Context.Clock
      (Context.Edge_and (_, gate) | Context.Named_edge_and (_, _, gate)) ->
    Some gate
  | Context.Transaction Context.Base_trans -> None
  | Context.Transaction (Context.Trans_and gate) -> Some gate

let create ?(engine = `Progression) ?sampler property =
  let normalized = Nnf.convert (Ltl.demote_booleans property.Property.formula) in
  let repeating, body =
    match normalized with
    | Ltl.Always body -> (true, body)
    | other -> (false, other)
  in
  let interned_backend () = Interned_backend (Progression.of_formula body) in
  let backend =
    match engine with
    | `Progression -> interned_backend ()
    | `Progression_legacy -> Legacy_backend
    | `Automaton ->
      (* Bound the table so pathological bodies fall back to the
         interned rewriting backend instead of exploding at synthesis
         time. *)
      (match Automaton.compile ~max_states:256 body with
       | automaton -> Auto_backend automaton
       | exception Automaton.Unsupported _ -> interned_backend ())
  in
  let gate = gate_of_context property.Property.context in
  let gate_atom = Option.map Interned.atom gate in
  let sampler =
    match sampler with
    | Some s -> s
    | None -> Sampler.create ()
  in
  (* Batched sampling: hand the monitor's atom set to the sampler up
     front.  Progression only rewrites the registered formula, so the
     atom set is closed under stepping; the interned backend is the
     one that reads atoms through the sampler, and the gate is
     sampler-read on every backend. *)
  (match backend with
   | Interned_backend _ ->
     ignore
       (Ltl.map_atoms
          (fun e ->
            Sampler.register sampler (Interned.atom e);
            e)
          body)
   | Legacy_backend | Auto_backend _ -> ());
  Option.iter (Sampler.register sampler) gate_atom;
  {
    property;
    body;
    temporal_body = not (Simple_subset.is_boolean body);
    backend;
    repeating;
    gate;
    gate_atom;
    sampler;
    live = [];
    instances = [];
    started = false;
    failures = [];
    activations = 0;
    passes = 0;
    peak = 0;
    peak_distinct = 0;
    steps = 0;
    trivial_passes = 0;
    cache_hits = 0;
    cache_misses = 0;
    memo_enabled = false;
    memo = None;
  }

let property t = t.property

let engine t =
  match t.backend with
  | Interned_backend _ -> `Progression
  | Legacy_backend -> `Progression_legacy
  | Auto_backend _ -> `Automaton

let record_failure t ~activation_time ~failure_time =
  t.failures <-
    { property_name = t.property.Property.name; activation_time; failure_time }
    :: t.failures

(* --- interned engine: multiset of hash-consed states --------------- *)

let rec merge_sorted a b =
  match a, b with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
    if x <= y then x :: merge_sorted xs b else y :: merge_sorted a ys

let step_interned t ~time lookup initial =
  (* One DLS lookup per step: every state of the multiset steps, and
     every counter snapshot reads, through this handle. *)
  let stats = Progression.handle () in
  let hits0 = Progression.handle_hits stats in
  let misses0 = Progression.handle_misses stats in
  let bypassed0 = Progression.handle_bypassed stats in
  (* One atom-evaluation closure per instant, reused across the whole
     multiset (and feeding the shared sampler). *)
  let eval = Sampler.eval_atom t.sampler ~time lookup in
  (* New multiset, newest-first; merged by physical equality — states
     are hash-consed, so [==] is structural identity.  A linear scan
     beats a per-step hashtable: the distinct-state count is small by
     construction (that is the point of the multiset). *)
  let merged = ref [] in
  let merged_count = ref 0 in
  let add state activations_at =
    let rec insert = function
      | [] ->
        merged := { state; activations_at } :: !merged;
        incr merged_count
      | ls :: rest ->
        if ls.state == state then
          ls.activations_at <- merge_sorted ls.activations_at activations_at
        else insert rest
    in
    insert !merged
  in
  let resolve state activations_at =
    match Progression.verdict state with
    | Some true -> t.passes <- t.passes + List.length activations_at
    | Some false ->
      List.iter
        (fun activation_time ->
          record_failure t ~activation_time ~failure_time:time)
        activations_at
    | None -> add state activations_at
  in
  (* Evaluation: each distinct state is stepped once, no matter how
     many live instances sit in it. *)
  List.iter
    (fun ls ->
      resolve
        (Progression.step_atoms_in stats ~time eval ls.state)
        ls.activations_at)
    t.live;
  (* Activation of a new instance. *)
  let activate () =
    let ob = Progression.step_atoms_in stats ~time eval initial in
    match Progression.verdict ob with
    | Some true ->
      t.passes <- t.passes + 1;
      t.trivial_passes <- t.trivial_passes + 1
    | Some false ->
      t.activations <- t.activations + 1;
      record_failure t ~activation_time:time ~failure_time:time
    | None ->
      t.activations <- t.activations + 1;
      add ob [ time ]
  in
  if t.repeating then activate ()
  else if not t.started then activate ();
  t.live <- List.rev !merged;
  t.cache_hits <- t.cache_hits + (Progression.handle_hits stats - hits0);
  t.cache_misses <-
    t.cache_misses
    + (Progression.handle_misses stats - misses0)
    + (Progression.handle_bypassed stats - bypassed0);
  if !merged_count > t.peak_distinct then t.peak_distinct <- !merged_count

(* --- legacy / automaton engines: list of live instances ------------ *)

let fresh_list_obligation t =
  match t.backend with
  | Legacy_backend -> Legacy_ob (Progression.Legacy.of_formula t.body)
  | Auto_backend automaton -> Auto_ob (Automaton.initial automaton)
  | Interned_backend _ -> assert false

(* Per-evaluation-point context: the automaton backend evaluates the
   atoms once and every instance steps by table lookup. *)
type step_context =
  | Legacy_ctx
  | Auto_ctx of int

let step_context t lookup =
  match t.backend with
  | Legacy_backend | Interned_backend _ -> Legacy_ctx
  | Auto_backend automaton -> Auto_ctx (Automaton.valuation automaton lookup)

let step_list_obligation t ~time lookup ctx = function
  | Legacy_ob ob -> Legacy_ob (Progression.Legacy.step ~time lookup ob)
  | Auto_ob state ->
    (match t.backend, ctx with
     | Auto_backend automaton, Auto_ctx v ->
       Auto_ob (Automaton.step_valuation automaton state v)
     | (Legacy_backend | Interned_backend _ | Auto_backend _), _ ->
       assert false)

let list_obligation_verdict t = function
  | Legacy_ob ob -> Progression.Legacy.verdict ob
  | Auto_ob state ->
    (match t.backend with
     | Auto_backend automaton -> Automaton.verdict automaton state
     | Legacy_backend | Interned_backend _ -> assert false)

let record_outcome t ~time instance =
  match list_obligation_verdict t instance.obligation with
  | Some true ->
    t.passes <- t.passes + 1;
    false
  | Some false ->
    record_failure t ~activation_time:instance.activated_at ~failure_time:time;
    false
  | None -> true

let step_list t ~time lookup =
  let ctx = step_context t lookup in
  (* Evaluation of live instances. *)
  let survivors =
    List.filter
      (fun instance ->
        instance.obligation <-
          step_list_obligation t ~time lookup ctx instance.obligation;
        record_outcome t ~time instance)
      t.instances
  in
  t.instances <- survivors;
  (* Activation of a new instance. *)
  let activate () =
    let obligation =
      step_list_obligation t ~time lookup ctx (fresh_list_obligation t)
    in
    match list_obligation_verdict t obligation with
    | Some true ->
      t.passes <- t.passes + 1;
      t.trivial_passes <- t.trivial_passes + 1
    | Some false ->
      t.activations <- t.activations + 1;
      record_failure t ~activation_time:time ~failure_time:time
    | None ->
      t.activations <- t.activations + 1;
      t.instances <- { activated_at = time; obligation } :: t.instances
  in
  if t.repeating then activate ()
  else if not t.started then activate ();
  let distinct = List.length t.instances in
  if distinct > t.peak_distinct then t.peak_distinct <- distinct

(* --- shared step entry point --------------------------------------- *)

let live_instances t =
  match t.backend with
  | Interned_backend _ ->
    List.fold_left (fun acc ls -> acc + List.length ls.activations_at) 0 t.live
  | Legacy_backend | Auto_backend _ -> List.length t.instances

let step_core t ~time lookup =
  let gated_out =
    match t.gate_atom with
    | None -> false
    | Some gate -> not (Sampler.eval_atom t.sampler ~time lookup gate)
  in
  if not gated_out then begin
    t.steps <- t.steps + 1;
    (match t.backend with
     | Interned_backend initial -> step_interned t ~time lookup initial
     | Legacy_backend | Auto_backend _ -> step_list t ~time lookup);
    t.started <- true;
    let live = live_instances t in
    if live > t.peak then t.peak <- live
  end

let enable_memo t = t.memo_enabled <- true

let step ?(stuttered = false) t ~time lookup =
  if not t.memo_enabled then step_core t ~time lookup
  else begin
    let live_before = t.live == [] && t.instances == [] in
    let steps0 = t.steps in
    let activations0 = t.activations in
    let passes0 = t.passes in
    let trivial0 = t.trivial_passes in
    let hits0 = t.cache_hits in
    let misses0 = t.cache_misses in
    let failures0 = t.failures in
    step_core t ~time lookup;
    let live_after = t.live == [] && t.instances == [] in
    let d_steps = t.steps - steps0 in
    t.memo <-
      Some
        {
          m_steps = d_steps;
          m_activations = t.activations - activations0;
          m_passes = t.passes - passes0;
          m_trivial = t.trivial_passes - trivial0;
          m_hits = t.cache_hits - hits0;
          m_misses = t.cache_misses - misses0;
          (* Replayable iff the step touched nothing but counters: no
             failure was recorded (failure records carry the evaluation
             time) and no live obligation existed before or after (a
             gated-out step, [d_steps = 0], is a no-op either way). *)
          m_eligible =
            t.failures == failures0
            && (d_steps = 0 || (live_before && live_after));
          m_stuttered = stuttered;
        }
  end

let can_replay t =
  match t.memo with
  | Some m -> m.m_eligible && (m.m_stuttered || m.m_misses = 0)
  | None -> false

let replay t ~count =
  if count > 0 then
    match t.memo with
    | Some m ->
      t.steps <- t.steps + (count * m.m_steps);
      t.activations <- t.activations + (count * m.m_activations);
      t.passes <- t.passes + (count * m.m_passes);
      t.trivial_passes <- t.trivial_passes + (count * m.m_trivial);
      t.cache_hits <- t.cache_hits + (count * m.m_hits);
      t.cache_misses <- t.cache_misses + (count * m.m_misses)
    | None -> invalid_arg "Monitor.replay: no step to replay"

let step_stuttered t ~time:_ =
  if can_replay t then begin
    replay t ~count:1;
    true
  end
  else false

(* --- reporting ------------------------------------------------------ *)

(* Failures are reported deterministically: chronological by failure
   time, and inside one evaluation point in activation-time order —
   independent of the internal instance representation. *)
let failures t =
  List.stable_sort
    (fun a b ->
      match compare a.failure_time b.failure_time with
      | 0 -> compare a.activation_time b.activation_time
      | c -> c)
    (List.rev t.failures)

let peak_instances t = t.peak
let activations t = t.activations
let passes t = t.passes
let steps t = t.steps
let pending t = live_instances t

let distinct_states t =
  match t.backend with
  | Interned_backend _ -> List.length t.live
  | Legacy_backend | Auto_backend _ -> List.length t.instances

let peak_distinct_states t = t.peak_distinct
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses

let cache_hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0. else float_of_int t.cache_hits /. float_of_int total

let sampler t = t.sampler

let evaluation_table t =
  match t.backend with
  | Interned_backend _ ->
    List.sort compare
      (List.concat_map
         (fun ls ->
           match Progression.next_evaluation_time ls.state with
           | Some target -> List.map (fun _ -> target) ls.activations_at
           | None -> [])
         t.live)
  | Legacy_backend | Auto_backend _ ->
    List.sort compare
      (List.filter_map
         (fun instance ->
           match instance.obligation with
           | Legacy_ob ob -> Progression.Legacy.next_evaluation_time ob
           | Auto_ob _ -> None)
         t.instances)

let trivial_passes t = t.trivial_passes
let vacuous t = t.temporal_body && t.steps > 0 && t.activations = 0

let engine_string t =
  match engine t with
  | `Progression -> "progression"
  | `Progression_legacy -> "progression-legacy"
  | `Automaton -> "automaton"

let snapshot t =
  {
    Tabv_obs.Checker_snapshot.property_name = t.property.Property.name;
    engine = engine_string t;
    activations = t.activations;
    passes = t.passes;
    trivial_passes = t.trivial_passes;
    vacuous = vacuous t;
    peak_instances = t.peak;
    peak_distinct_states = t.peak_distinct;
    pending = live_instances t;
    steps = t.steps;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    failures = failures t;
  }

let pp_failure ppf f =
  Format.fprintf ppf "%s: instance fired at %dns failed at %dns" f.property_name
    f.activation_time f.failure_time
