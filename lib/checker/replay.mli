open Tabv_psl

(** Offline assertion checking: replay recorded evaluation traces
    (e.g. parsed from a VCD file) through property monitors, without
    re-running a simulation.

    Every trace entry is treated as one evaluation point: a clock edge
    for clock-context properties, a transaction instant for
    transaction-context ones.  Context gates and [next_eps^tau] timing
    work exactly as in live checking, because monitors only ever see
    (time, environment) pairs. *)

(** Per-property replay outcome. *)
type outcome = {
  property : Property.t;
  monitor : Monitor.t;
}

(** [run ?engine properties trace] replays the whole trace through a
    fresh monitor per property.  All monitors share one evaluation
    sampler, so each distinct atom is evaluated once per trace entry
    no matter how many properties mention it.

    @deprecated This is a shim over {!Offline.Monitors} (the
    [OFFLINE_CHECKER] instance), kept for source compatibility.  It
    requires the whole trace in memory; new code should use
    [Offline.Run(Offline.Monitors)] — [over_file] streams a stored
    trace through {!Tabv_trace.Reader} in bounded memory. *)
val run : ?engine:Monitor.engine -> Property.t list -> Trace.t -> outcome list
[@@alert deprecated "use Offline.Run(Offline.Monitors) instead"]

(** True iff no monitor recorded a failure. *)
val all_passed : outcome list -> bool

val pp_outcome : Format.formatter -> outcome -> unit
