open Tabv_psl

(** Offline assertion checking: replay recorded evaluation traces
    (e.g. parsed from a VCD file) through property monitors, without
    re-running a simulation.

    Every trace entry is treated as one evaluation point: a clock edge
    for clock-context properties, a transaction instant for
    transaction-context ones.  Context gates and [next_eps^tau] timing
    work exactly as in live checking, because monitors only ever see
    (time, environment) pairs. *)

(** Per-property replay outcome. *)
type outcome = {
  property : Property.t;
  monitor : Monitor.t;
}

(** [run ?engine properties trace] replays the whole trace through a
    fresh monitor per property.  All monitors share one evaluation
    sampler, so each distinct atom is evaluated once per trace entry
    no matter how many properties mention it. *)
val run : ?engine:Monitor.engine -> Property.t list -> Trace.t -> outcome list

(** True iff no monitor recorded a failure. *)
val all_passed : outcome list -> bool

val pp_outcome : Format.formatter -> outcome -> unit
