open Tabv_psl

exception Not_in_nnf of Ltl.t

(* ================================================================== *)
(* Legacy reference engine: the original tree-rewriting progression.   *)
(* Kept verbatim as the executable specification — the equivalence     *)
(* tests and the bench compare the interned engine against it.         *)
(* ================================================================== *)

module Legacy = struct
  type t =
    | True
    | False
    | Formula of Ltl.t  (* progressed at every evaluation point *)
    | At of int * Ltl.t  (* progress formula exactly at absolute time *)
    | And of t * t
    | Or of t * t

  let ob_and a b =
    match a, b with
    | False, _ | _, False -> False
    | True, x | x, True -> x
    | _ -> if a = b then a else And (a, b)

  let ob_or a b =
    match a, b with
    | True, _ | _, True -> True
    | False, x | x, False -> x
    | _ -> if a = b then a else Or (a, b)

  let of_formula f =
    if not (Ltl.is_nnf f) then raise (Not_in_nnf f);
    Formula f

  let rec is_true = function
    | True -> true
    | False | Formula _ | At _ -> false
    | And (a, b) -> is_true a && is_true b
    | Or (a, b) -> is_true a || is_true b

  let rec is_false = function
    | False -> true
    | True | Formula _ | At _ -> false
    | And (a, b) -> is_false a || is_false b
    | Or (a, b) -> is_false a && is_false b

  let rec has_timed_wait = function
    | At _ -> true
    | True | False | Formula _ -> false
    | And (a, b) | Or (a, b) -> has_timed_wait a || has_timed_wait b

  let rec next_evaluation_time = function
    | At (target, _) -> Some target
    | True | False | Formula _ -> None
    | And (a, b) | Or (a, b) ->
      (match next_evaluation_time a, next_evaluation_time b with
       | None, t | t, None -> t
       | Some x, Some y -> Some (min x y))

  (* Progress a formula at the evaluation point [time]. *)
  let rec progress ~time lookup f =
    match f with
    | Ltl.Atom e -> if Expr.eval lookup e then True else False
    | Ltl.Not (Ltl.Atom e) -> if Expr.eval lookup e then False else True
    | Ltl.Not _ | Ltl.Implies _ -> raise (Not_in_nnf f)
    | Ltl.And (p, q) ->
      ob_and (progress ~time lookup p) (progress ~time lookup q)
    | Ltl.Or (p, q) -> ob_or (progress ~time lookup p) (progress ~time lookup q)
    | Ltl.Next_n (1, p) -> Formula p
    | Ltl.Next_n (n, p) -> Formula (Ltl.next_n (n - 1) p)
    | Ltl.Next_event (ne, p) -> At (time + ne.Ltl.eps, p)
    | Ltl.Until (p, q) ->
      ob_or (progress ~time lookup q)
        (ob_and (progress ~time lookup p) (Formula f))
    | Ltl.Release (p, q) ->
      ob_and (progress ~time lookup q)
        (ob_or (progress ~time lookup p) (Formula f))
    | Ltl.Always p -> ob_and (progress ~time lookup p) (Formula f)
    | Ltl.Eventually p -> ob_or (progress ~time lookup p) (Formula f)

  let rec step ~time lookup ob =
    match ob with
    | True -> True
    | False -> False
    | Formula f -> progress ~time lookup f
    | At (target, f) ->
      if time < target then ob
      else if time = target then progress ~time lookup f
      else False (* no observable event at the required instant *)
    | And (a, b) -> ob_and (step ~time lookup a) (step ~time lookup b)
    | Or (a, b) -> ob_or (step ~time lookup a) (step ~time lookup b)

  let verdict ob =
    if is_true ob then Some true else if is_false ob then Some false else None

  let rec pp ppf = function
    | True -> Format.pp_print_string ppf "T"
    | False -> Format.pp_print_string ppf "F"
    | Formula f -> Format.fprintf ppf "{%a}" Ltl.pp f
    | At (target, f) -> Format.fprintf ppf "at[%dns]{%a}" target Ltl.pp f
    | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
    | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
end

let step_reference = Legacy.step

(* ================================================================== *)
(* Interned engine: hash-consed obligations + memoized transitions.    *)
(* ================================================================== *)

(* Obligations are hash-consed exactly like Interned formulas: a state
   is one heap node with a dense id, so identical live instances
   collapse by construction and the transition memo can key on the id. *)

type t = {
  onode : onode;
  oid : int;
  has_at : bool;  (* contains a timed [At] wait *)
  otimed : bool;  (* stepping depends on the current time *)
  mutable memo : memo_entry;
      (* transition memo, inlined into the hash-consed state so the
         hot path is one pointer load instead of a hashtable probe *)
}

and onode =
  | OTrue
  | OFalse
  | OFormula of Interned.t
  | OAt of int * Interned.t
  | OAnd of t * t
  | OOr of t * t

(* For an obligation without timed parts, the result of one step is a
   pure function of the values of the atoms the progression reads —
   and because progression never short-circuits, the set and order of
   atoms read is fixed per state.  The memo therefore stores, per
   state, the atom read-set (discovered on the first miss) and a table
   from packed atom valuations to successor states: the paper's
   explicit checker automaton, built lazily and only over reachable
   states. *)
and memo_entry =
  | No_memo  (* state not stepped yet *)
  | Transitions of {
      atoms : Interned.t array;  (* unique atoms read, first-read order *)
      results : (int, t) Hashtbl.t;  (* packed valuation -> successor *)
    }
  | Unmemoizable  (* more than [max_memo_atoms] distinct atoms *)

let onode_equal a b =
  match a, b with
  | OTrue, OTrue | OFalse, OFalse -> true
  | OFormula f1, OFormula f2 -> f1 == f2
  | OAt (t1, f1), OAt (t2, f2) -> t1 = t2 && f1 == f2
  | OAnd (a1, b1), OAnd (a2, b2) -> a1 == a2 && b1 == b2
  | OOr (a1, b1), OOr (a2, b2) -> a1 == a2 && b1 == b2
  | (OTrue | OFalse | OFormula _ | OAt _ | OAnd _ | OOr _), _ -> false

let onode_hash = function
  | OTrue -> 0
  | OFalse -> 1
  | OFormula f -> Hashtbl.hash (2, Interned.id f)
  | OAt (target, f) -> Hashtbl.hash (3, target, Interned.id f)
  | OAnd (a, b) -> Hashtbl.hash (4, a.oid, b.oid)
  | OOr (a, b) -> Hashtbl.hash (5, a.oid, b.oid)

module Ob_table = Hashtbl.Make (struct
  type t = onode

  let equal = onode_equal
  let hash = onode_hash
end)

(* The canonical True/False states are shared by every domain: they
   are safe to share because they are the only obligations whose
   [memo] field is never written (stepping True/False returns the
   state itself before touching the memo), so they carry no mutable
   state in practice.  Sharing them keeps [is_true]/[is_false] a
   physical comparison against one node, domain-independent. *)
let ob_true = { onode = OTrue; oid = 0; has_at = false; otimed = false; memo = No_memo }

let ob_false =
  { onode = OFalse; oid = 1; has_at = false; otimed = false; memo = No_memo }

(* Per-domain obligation universe: hash-cons table, id counter and the
   transition-memo statistics all live behind [Domain.DLS], mirroring
   [Interned]'s per-domain formula universe, so concurrent campaign
   workers build their checker automata without sharing (or
   corrupting) any table.  Fresh universes are pre-seeded with the
   shared True/False states. *)
type stats_record = {
  mutable hits : int;
  mutable misses : int;
  mutable bypassed : int;
  mutable transitions : int;
}

type universe = {
  ob_table : t Ob_table.t;
  mutable ob_counter : int;
  ustats : stats_record;
}

let fresh_universe () =
  let ob_table = Ob_table.create 1024 in
  Ob_table.add ob_table OTrue ob_true;
  Ob_table.add ob_table OFalse ob_false;
  {
    ob_table;
    ob_counter = 2;
    ustats = { hits = 0; misses = 0; bypassed = 0; transitions = 0 };
  }

let universe_key : universe Domain.DLS.key = Domain.DLS.new_key fresh_universe
let universe () = Domain.DLS.get universe_key

(* Fresh obligation universe *and* fresh interned-formula universe for
   the calling domain: one call gives a batch runner a cold, isolated
   checker world per job. *)
let reset_universe () =
  Domain.DLS.set universe_key (fresh_universe ());
  Interned.reset_universe ()

let onode_has_at = function
  | OTrue | OFalse | OFormula _ -> false
  | OAt _ -> true
  | OAnd (a, b) | OOr (a, b) -> a.has_at || b.has_at

let onode_timed = function
  | OTrue | OFalse -> false
  | OFormula f -> Interned.is_timed f
  | OAt _ -> true
  | OAnd (a, b) | OOr (a, b) -> a.otimed || b.otimed

let make onode =
  let u = universe () in
  (* Exception-based probe: hits allocate nothing. *)
  match Ob_table.find u.ob_table onode with
  | ob -> ob
  | exception Not_found ->
    let oid = u.ob_counter in
    u.ob_counter <- oid + 1;
    let ob =
      {
        onode;
        oid;
        has_at = onode_has_at onode;
        otimed = onode_timed onode;
        memo = No_memo;
      }
    in
    Ob_table.add u.ob_table onode ob;
    ob

let formula f = make (OFormula f)
let at target f = make (OAt (target, f))

(* Conjunction/disjunction with unit/absorption laws and O(1)
   duplicate collapse.  Binary operands are ordered by id: [and]/[or]
   are commutative, so canonicalizing the operand order makes states
   reached through different evaluation orders coincide. *)
let ob_and a b =
  match a.onode, b.onode with
  | OFalse, _ | _, OFalse -> ob_false
  | OTrue, _ -> b
  | _, OTrue -> a
  | _ ->
    if a == b then a
    else if a.oid <= b.oid then make (OAnd (a, b))
    else make (OAnd (b, a))

let ob_or a b =
  match a.onode, b.onode with
  | OTrue, _ | _, OTrue -> ob_true
  | OFalse, _ -> b
  | _, OFalse -> a
  | _ ->
    if a == b then a
    else if a.oid <= b.oid then make (OOr (a, b))
    else make (OOr (b, a))

let id ob = ob.oid

let of_formula f =
  if not (Ltl.is_nnf f) then raise (Not_in_nnf f);
  formula (Interned.intern f)

let of_interned f =
  if not (Interned.is_nnf f) then raise (Not_in_nnf (Interned.to_ltl f));
  formula f

(* Thanks to the absorption laws in [ob_and]/[ob_or], OTrue/OFalse can
   only ever appear as the root of an obligation. *)
let is_true ob = ob == ob_true
let is_false ob = ob == ob_false

let verdict ob =
  if is_true ob then Some true else if is_false ob then Some false else None

let has_timed_wait ob = ob.has_at

let rec next_evaluation_time ob =
  match ob.onode with
  | OAt (target, _) -> Some target
  | OTrue | OFalse | OFormula _ -> None
  | OAnd (a, b) | OOr (a, b) ->
    if not ob.has_at then None
    else (
      match next_evaluation_time a, next_evaluation_time b with
      | None, t | t, None -> t
      | Some x, Some y -> Some (min x y))

(* --- transition memo ---------------------------------------------- *)

let max_memo_atoms = 62

type cache_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_bypassed : int;
  distinct_states : int;
  distinct_transitions : int;
  interned_formulas : int;
}

let cache_stats () =
  let u = universe () in
  {
    cache_hits = u.ustats.hits;
    cache_misses = u.ustats.misses;
    cache_bypassed = u.ustats.bypassed;
    (* The pre-seeded True/False states count, exactly as they did
       when they were interned at module-init time. *)
    distinct_states = Ob_table.length u.ob_table;
    distinct_transitions = u.ustats.transitions;
    interned_formulas = Interned.node_count ();
  }

(* --- progression over interned terms ------------------------------- *)

(* [eval] evaluates an interned [Atom] node at the current instant; it
   is the only window through which progression observes the DUV, so
   wrapping it (recording, per-instant caching) captures exactly the
   atoms read. *)
let rec progress ~time eval f =
  match Interned.node f with
  | Interned.Atom _ -> if eval f then ob_true else ob_false
  | Interned.Not inner ->
    (match Interned.node inner with
     | Interned.Atom _ -> if eval inner then ob_false else ob_true
     | _ -> raise (Not_in_nnf (Interned.to_ltl f)))
  | Interned.Implies _ -> raise (Not_in_nnf (Interned.to_ltl f))
  | Interned.And (p, q) ->
    ob_and (progress ~time eval p) (progress ~time eval q)
  | Interned.Or (p, q) -> ob_or (progress ~time eval p) (progress ~time eval q)
  | Interned.Next_n (1, p) -> formula p
  | Interned.Next_n (n, p) -> formula (Interned.next_n (n - 1) p)
  | Interned.Next_event (ne, p) -> at (time + ne.Ltl.eps) p
  | Interned.Until (p, q) ->
    ob_or (progress ~time eval q) (ob_and (progress ~time eval p) (formula f))
  | Interned.Release (p, q) ->
    ob_and (progress ~time eval q) (ob_or (progress ~time eval p) (formula f))
  | Interned.Always p -> ob_and (progress ~time eval p) (formula f)
  | Interned.Eventually p -> ob_or (progress ~time eval p) (formula f)

(* Structural step without memoization (used to compute misses). *)
let rec compute ~time eval ob =
  match ob.onode with
  | OTrue | OFalse -> ob
  | OFormula f -> progress ~time eval f
  | OAt (target, f) ->
    if time < target then ob
    else if time = target then progress ~time eval f
    else ob_false
  | OAnd (a, b) -> ob_and (compute ~time eval a) (compute ~time eval b)
  | OOr (a, b) -> ob_or (compute ~time eval a) (compute ~time eval b)

exception Too_many_atoms

(* Memoized step of an untimed obligation.  The hot path — a state
   already carrying its transition table — costs one pointer load, one
   atom-evaluation pass to pack the valuation bits, and one
   exception-based hashtable probe; nothing is allocated on a hit. *)
let step_untimed_in stats ~time eval ob =
  match ob.memo with
  | Transitions { atoms; results } ->
    let n = Array.length atoms in
    let rec pack i acc =
      if i >= n then acc
      else
        pack (i + 1)
          (if eval (Array.unsafe_get atoms i) then acc lor (1 lsl i) else acc)
    in
    let bits = pack 0 0 in
    (match Hashtbl.find results bits with
     | successor ->
       stats.hits <- stats.hits + 1;
       successor
     | exception Not_found ->
       stats.misses <- stats.misses + 1;
       let successor = compute ~time eval ob in
       stats.transitions <- stats.transitions + 1;
       Hashtbl.add results bits successor;
       successor)
  | Unmemoizable ->
    stats.bypassed <- stats.bypassed + 1;
    compute ~time eval ob
  | No_memo ->
    (match ob.onode with
     | OTrue | OFalse -> ob
     | _ ->
       (* First visit: run the progression with a recording evaluator
          to discover the atom read-set, then seed the entry. *)
       stats.misses <- stats.misses + 1;
       let read : (int, int) Hashtbl.t = Hashtbl.create 8 in
       let order = ref [] in
       let count = ref 0 in
       let bits = ref 0 in
       let recording atom =
         let v = eval atom in
         let id = Interned.id atom in
         if not (Hashtbl.mem read id) then begin
           if !count >= max_memo_atoms then raise Too_many_atoms;
           Hashtbl.add read id !count;
           order := atom :: !order;
           if v then bits := !bits lor (1 lsl !count);
           incr count
         end;
         v
       in
       (match compute ~time recording ob with
        | successor ->
          let atoms = Array.of_list (List.rev !order) in
          let results = Hashtbl.create 8 in
          stats.transitions <- stats.transitions + 1;
          Hashtbl.add results !bits successor;
          ob.memo <- Transitions { atoms; results };
          successor
        | exception Too_many_atoms ->
          ob.memo <- Unmemoizable;
          stats.bypassed <- stats.bypassed + 1;
          compute ~time eval ob))

(* Full step: timed parts recurse structurally (their transitions
   depend on absolute time and cannot be tabled); every untimed
   subtree reached on the way goes through the memo. *)
let rec step_eval_in stats ~time eval ob =
  if not ob.otimed then step_untimed_in stats ~time eval ob
  else
    match ob.onode with
    | OTrue | OFalse -> ob
    | OFormula f -> progress ~time eval f
    | OAt (target, f) ->
      if time < target then ob
      else if time = target then progress ~time eval f
      else ob_false
    | OAnd (a, b) ->
      ob_and
        (step_eval_in stats ~time eval a)
        (step_eval_in stats ~time eval b)
    | OOr (a, b) ->
      ob_or
        (step_eval_in stats ~time eval a)
        (step_eval_in stats ~time eval b)

let eval_of_lookup lookup atom =
  match Interned.node atom with
  | Interned.Atom e -> Expr.eval lookup e
  | _ -> assert false

let step ~time lookup ob =
  step_eval_in (universe ()).ustats ~time (eval_of_lookup lookup) ob

let step_sampled sampler ~time lookup ob =
  step_eval_in (universe ()).ustats ~time
    (Sampler.eval_atom sampler ~time lookup)
    ob

(* Caller-supplied atom evaluator: lets a monitor build one evaluation
   closure per instant and reuse it across its whole state multiset. *)
let step_atoms ~time eval ob = step_eval_in (universe ()).ustats ~time eval ob

(* A handle is the calling domain's live statistics record itself:
   grabbing it once per monitor step replaces the per-state (and
   per-counter-read) [Domain.DLS] lookups of the naive API with plain
   field accesses — the DLS get is ~10ns, which multiplied by every
   live state of every monitor at every instant was a measurable slice
   of the interned engine's hot path. *)
type handle = stats_record

let handle () = (universe ()).ustats
let handle_hits (h : handle) = h.hits
let handle_misses (h : handle) = h.misses
let handle_bypassed (h : handle) = h.bypassed
let step_atoms_in (h : handle) ~time eval ob = step_eval_in h ~time eval ob

let raw_hits () = (universe ()).ustats.hits
let raw_misses () = (universe ()).ustats.misses
let raw_bypassed () = (universe ()).ustats.bypassed

let rec pp ppf ob =
  match ob.onode with
  | OTrue -> Format.pp_print_string ppf "T"
  | OFalse -> Format.pp_print_string ppf "F"
  | OFormula f -> Format.fprintf ppf "{%a}" Interned.pp f
  | OAt (target, f) -> Format.fprintf ppf "at[%dns]{%a}" target Interned.pp f
  | OAnd (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | OOr (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
