open Tabv_psl

(** Pluggable offline checkers over stored evaluation traces.

    An [OFFLINE_CHECKER] is the module shape every consumer of a
    recorded trace implements (the Arbitrar-style [init] / [on_entry]
    / [finalize] contract): configure, fold one {!Tabv_trace.Entry.t}
    at a time, summarize.  The driver {!Run} then provides the three
    ways of feeding one — an entry sequence, an in-memory
    {!Tabv_psl.Trace.t}, or a trace file streamed through
    {!Tabv_trace.Reader} in O(signal-count) memory.

    Three built-in instances:
    {ul
    {- {!Monitors} — the interned-LTL property monitors (what live
       checking attaches to a simulation);}
    {- {!Cover} — the coverage summary over a monitor pool;}
    {- {!Stats} — structural trace statistics (evaluation points, time
       range, per-signal change counts, span latencies).}}

    {!Replay.run} is a deprecated shim over {!Monitors}. *)

module type OFFLINE_CHECKER = sig
  type config
  type state
  type result

  val name : string

  (** Fresh state for one pass over one trace. *)
  val init : config -> state

  (** Fold one entry.  Entries arrive in file order: sample times are
      strictly increasing, and sample-vs-span interleaving is not
      specified (the two are independent streams). *)
  val on_entry : state -> Tabv_trace.Entry.t -> unit

  val finalize : state -> result
end

module Run (C : OFFLINE_CHECKER) : sig
  val over_seq : C.config -> Tabv_trace.Entry.t Seq.t -> C.result
  val over_trace : C.config -> Trace.t -> C.result

  (** Streaming: the whole file is never materialized.
      @raise Tabv_trace.Reader.Format_error on a damaged file. *)
  val over_file : C.config -> string -> C.result
end

(** {1 Built-in instances} *)

(** The interned-LTL monitor pool as an offline checker: one fresh
    monitor per property, all sharing one evaluation sampler (each
    distinct atom is evaluated once per entry across the pool, exactly
    as in live checking).  Span entries are ignored — monitors consume
    evaluation points only. *)
module Monitors : sig
  type monitor_config = {
    engine : Monitor.engine option;
    stutter : bool;
        (** enable the stutter fast path (support masks, counter-delta
            replay, batched stutter runs).  On by default; the verdicts
            and snapshots are byte-identical either way.  Turn it off
            to isolate the per-step checker-engine cost, as the
            checker-cache benchmark does. *)
    properties : Property.t list;
  }

  include
    OFFLINE_CHECKER
      with type config = monitor_config
       and type result = (Property.t * Monitor.t) list

  val config : ?engine:Monitor.engine -> ?stutter:bool -> Property.t list -> config

  (** Per-property counters in property order, ready for reporting. *)
  val snapshots : result -> Tabv_obs.Checker_snapshot.t list
end

(** Coverage collector: the same monitor pool, finalized into the
    sign-off {!Coverage.summary}. *)
module Cover : sig
  include
    OFFLINE_CHECKER
      with type config = Monitors.monitor_config
       and type result = Coverage.summary

  val config : ?engine:Monitor.engine -> ?stutter:bool -> Property.t list -> config
end

(** Structural statistics of a trace, no properties involved. *)
module Stats : sig
  type signal_stat = {
    signal : string;
    changes : int;  (** samples whose value differs from the previous one *)
  }

  type span_stat = {
    label : string;
    count : int;
    total_latency : int;  (** summed end-start, ns *)
    max_latency : int;
  }

  type stats = {
    samples : int;
    spans : int;
    first_time : int;  (** 0 when the trace has no samples *)
    last_time : int;
    signals : signal_stat list;  (** in dictionary (sample) order *)
    span_labels : span_stat list;  (** sorted by label *)
  }

  include OFFLINE_CHECKER with type config = unit and type result = stats

  val stats_json : stats -> Tabv_core.Report_json.json
  val pp : Format.formatter -> stats -> unit
end
