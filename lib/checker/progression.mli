open Tabv_psl

(** Checker synthesis by formula progression (rewriting) over
    hash-consed terms.

    A property instance is an {e obligation}; consuming one evaluation
    point (a clock event at RTL, a transaction event at TLM) rewrites
    the obligation into a residual obligation using the standard
    progression rules:
    {v
      prog(p until q)   = prog(q) or (prog(p) and (p until q))
      prog(p release q) = prog(q) and (prog(p) or (p release q))
      prog(always p)    = prog(p) and always p
      prog(eventually p)= prog(p) or eventually p
      prog(next[1] p)   = p    (wait one more event)
    v}

    The paper's [next_eps^tau] operator progresses into a timed
    obligation [at target] with [target = now + eps] (Def. III.3):
    subsequent events leave it untouched while earlier than [target],
    evaluate the operand at exactly [target], and {e fail} it when an
    event arrives past [target] without one at [target] — exactly the
    wrapper behaviour of Sec. IV.

    {2 Interning and the transition memo}

    Obligations are hash-consed: each distinct residual formula is one
    heap node with a dense unique id, so identical live instances
    collapse into one state.  For {e untimed} states the result of one
    step is a pure function of the values of the atoms the progression
    reads, and the atom read-set of a fixed state is itself fixed (the
    progression never short-circuits); a domain-global
    [(state, atom valuation) -> state] memo therefore tables the
    transition relation lazily, building the paper's explicit checker
    automaton over reachable states only.  Timed ([at]) waits depend
    on absolute instants and always take the direct rewriting path;
    the untimed subtrees beneath them still hit the memo.

    {2 Domain safety}

    The obligation hash-cons table, the transition memo and its
    statistics are all domain-local ([Domain.DLS]), mirroring
    {!Interned}: concurrent workers (e.g. the campaign runner's job
    domains) each build a private checker automaton with no shared
    mutable state.  Obligations must not flow between domains.  The
    canonical True/False states are the one deliberate exception —
    they are shared so {!is_true}/{!is_false} stay a single physical
    comparison, which is safe because those two states never mutate
    (their transition memo is never written). *)

type t

exception Not_in_nnf of Ltl.t

(** Initial obligation of a formula.
    @raise Not_in_nnf on formulas outside negation normal form. *)
val of_formula : Ltl.t -> t

(** Initial obligation of an already-interned formula (no re-interning
    walk).  @raise Not_in_nnf like {!of_formula}. *)
val of_interned : Interned.t -> t

(** Unique id of the hash-consed state (structurally equal obligations
    share one id — usable as a multiset key). *)
val id : t -> int

val is_true : t -> bool
val is_false : t -> bool

(** True when the obligation still contains a timed [at] node, i.e. a
    [next_eps^tau] wait. *)
val has_timed_wait : t -> bool

(** Earliest pending timed-evaluation instant, if any — the wrapper's
    "evaluation table" entry for this instance. *)
val next_evaluation_time : t -> int option

(** [step ~time lookup ob] consumes the evaluation point at [time]
    (signals sampled through [lookup]). *)
val step : time:int -> (string -> Expr.value option) -> t -> t

(** Like {!step}, but atom evaluations go through the shared
    per-instant {!Sampler} cache, so several monitors stepping at the
    same instant sample each distinct atom once. *)
val step_sampled :
  Sampler.t -> time:int -> (string -> Expr.value option) -> t -> t

(** [step_atoms ~time eval ob] steps with a caller-supplied atom
    evaluator ([eval] receives interned [Atom] nodes).  This is the
    allocation-free fast path: a monitor builds one evaluation closure
    per instant (e.g. [Sampler.eval_atom sampler ~time lookup]) and
    reuses it for every state of its multiset. *)
val step_atoms : time:int -> (Interned.t -> bool) -> t -> t

(** Obligation verdict at end of simulation: [Some true] iff resolved
    true, [Some false] iff resolved false, [None] when still pending
    (inconclusive). *)
val verdict : t -> bool option

val pp : Format.formatter -> t -> unit

(** {2 Transition-cache statistics} *)

type cache_stats = {
  cache_hits : int;  (** steps answered from the transition memo *)
  cache_misses : int;  (** steps that had to run the rewriting *)
  cache_bypassed : int;  (** steps of states with too many atoms *)
  distinct_states : int;  (** hash-consed obligations ever created *)
  distinct_transitions : int;  (** memoized (state, valuation) pairs *)
  interned_formulas : int;  (** hash-consed LTL terms ever created *)
}

(** Domain-global counters (the memo is shared by every monitor of the
    calling domain, so a caller interested in per-monitor attribution
    snapshots this before and after stepping — see {!Monitor}). *)
val cache_stats : unit -> cache_stats

(** Replace the calling domain's obligation universe (hash-cons table,
    transition memo, statistics) {e and} its interned-formula universe
    ({!Interned.reset_universe}) with fresh, empty ones.  The campaign
    runner calls this at the start of every job so a job's cache
    statistics depend only on the job itself, never on which worker it
    landed on or what ran there before.  Must only be called between
    runs, when no live monitor or obligation from the old universe
    will be stepped again. *)
val reset_universe : unit -> unit

(** Allocation-free raw counters, for per-step attribution on the hot
    path ({!cache_stats} builds a record and measures table sizes). *)
val raw_hits : unit -> int

val raw_misses : unit -> int
val raw_bypassed : unit -> int

(** {2 Batched stepping}

    Each of {!step}, {!step_sampled}, {!step_atoms} and the raw
    counters above performs one [Domain.DLS] lookup to reach the
    calling domain's universe.  That lookup is cheap but not free, and
    a monitor pays it once per live state per instant plus six times
    per step for the before/after counter snapshots.  A {!handle}
    amortises all of that to a single lookup per monitor step: grab it
    once, then step every state and read every counter through it. *)

(** The calling domain's live statistics record.  Valid until the next
    {!reset_universe}; must not be shared across domains. *)
type handle

(** One [Domain.DLS] lookup. *)
val handle : unit -> handle

val handle_hits : handle -> int
val handle_misses : handle -> int
val handle_bypassed : handle -> int

(** {!step_atoms} with the universe lookup hoisted out: counts cache
    traffic into [handle] with plain field writes. *)
val step_atoms_in : handle -> time:int -> (Interned.t -> bool) -> t -> t

(** {2 Reference engine} *)

(** The original, non-interned tree-rewriting engine, kept as the
    executable specification.  [Progression] and [Legacy] must agree
    on verdicts, failure times and instance accounting on every trace;
    [test/test_interned.ml] checks this property-based, and the bench
    harness measures the speedup of the interned engine against it. *)
module Legacy : sig
  type t

  val of_formula : Ltl.t -> t
  val is_true : t -> bool
  val is_false : t -> bool
  val has_timed_wait : t -> bool
  val next_evaluation_time : t -> int option
  val step : time:int -> (string -> Expr.value option) -> t -> t
  val verdict : t -> bool option
  val pp : Format.formatter -> t -> unit
end

(** Alias for [Legacy.step]. *)
val step_reference :
  time:int -> (string -> Expr.value option) -> Legacy.t -> Legacy.t
