type t = Checker.t

let attach ?engine ?sampler kernel initiator property ~lookup =
  Checker.attach
    (Checker.Attach.spec ?engine ?sampler (Checker.Attach.transaction initiator))
    kernel property ~lookup

let attach_unabstracted ?engine ?sampler kernel initiator property ~lookup =
  Checker.attach
    (Checker.Attach.spec ?engine ?sampler
       (Checker.Attach.transaction_unabstracted initiator))
    kernel property ~lookup

let attach_grid ?engine ?sampler kernel ~clock_period ?(phase = 1) property
    ~lookup =
  Checker.attach
    (Checker.Attach.spec ?engine ?sampler
       (Checker.Attach.grid ~phase ~clock_period ()))
    kernel property ~lookup

let monitor = Checker.monitor
let failures = Checker.failures
let array_size = Checker.array_size
