open Tabv_psl
open Tabv_sim

type t = {
  monitor : Monitor.t;
  max_eps : int;
  mutable step_scheduled_for : int;  (* instant with a pending step, -1 if none *)
}

(* Several transactions may end at the same instant; Def. III.2's
   transaction context evaluates the property once per instant, on the
   final observable state, exactly as an RTL checker evaluates once
   per clock edge.  The step is deferred by one delta cycle so every
   same-instant mirror update lands first. *)
let schedule_step t kernel lookup =
  let now = Kernel.now kernel in
  if t.step_scheduled_for <> now then begin
    t.step_scheduled_for <- now;
    Kernel.schedule_next_delta kernel (fun () ->
      Monitor.step t.monitor ~time:now lookup)
  end

let attach ?engine ?sampler kernel initiator property ~lookup =
  (match property.Property.context with
   | Context.Transaction _ -> ()
   | Context.Clock _ ->
     invalid_arg
       (Printf.sprintf "Wrapper.attach: property %s has a clock context"
          property.Property.name));
  let monitor = Monitor.create ?engine ?sampler property in
  let max_eps = Ltl.max_eps property.Property.formula in
  let t = { monitor; max_eps; step_scheduled_for = -1 } in
  Tlm.Initiator.on_transaction initiator (fun _transaction ->
    schedule_step t kernel lookup);
  t

let attach_unabstracted ?engine ?sampler kernel initiator property ~lookup =
  (match property.Property.context with
   | Context.Clock _ -> ()
   | Context.Transaction _ ->
     invalid_arg
       (Printf.sprintf
          "Wrapper.attach_unabstracted: property %s already has a transaction context"
          property.Property.name));
  let monitor = Monitor.create ?engine ?sampler property in
  let max_eps = Ltl.max_eps property.Property.formula in
  let t = { monitor; max_eps; step_scheduled_for = -1 } in
  Tlm.Initiator.on_transaction initiator (fun _transaction ->
    schedule_step t kernel lookup);
  t

let attach_grid ?engine ?sampler kernel ~clock_period ?(phase = 1) property
    ~lookup =
  if clock_period <= 0 then
    invalid_arg "Wrapper.attach_grid: clock_period must be positive";
  (match property.Property.context with
   | Context.Transaction _ -> ()
   | Context.Clock _ ->
     invalid_arg
       (Printf.sprintf "Wrapper.attach_grid: property %s has a clock context"
          property.Property.name));
  let monitor = Monitor.create ?engine ?sampler property in
  let max_eps = Ltl.max_eps property.Property.formula in
  let rec tick () =
    Monitor.step monitor ~time:(Kernel.now kernel) lookup;
    Kernel.schedule_after kernel ~delay:clock_period tick
  in
  Kernel.schedule_at kernel ~time:phase tick;
  { monitor; max_eps; step_scheduled_for = -1 }

let monitor t = t.monitor
let failures t = Monitor.failures t.monitor

let array_size t ~clock_period =
  if clock_period <= 0 then invalid_arg "Wrapper.array_size: clock_period must be positive";
  (t.max_eps + clock_period - 1) / clock_period
