open Tabv_psl
open Tabv_sim

module Attach = struct
  type mode =
    | Clock_edge of {
        clock : Clock.t;
        clocks : (string * Clock.t) list;
      }
    | Transaction of Tlm.Initiator.t
    | Transaction_unabstracted of Tlm.Initiator.t
    | Grid of {
        clock_period : int;
        phase : int;
      }

  type spec = {
    engine : Monitor.engine option;
    sampler : Sampler.t option;
    mode : mode;
    metrics : Tabv_obs.Metrics.t option;
  }

  let spec ?engine ?sampler ?metrics mode = { engine; sampler; mode; metrics }
  let clock_edge ?(clocks = []) clock = Clock_edge { clock; clocks }
  let transaction initiator = Transaction initiator
  let transaction_unabstracted initiator = Transaction_unabstracted initiator

  let grid ?(phase = 1) ~clock_period () =
    if clock_period <= 0 then
      invalid_arg "Checker.Attach.grid: clock_period must be positive";
    Grid { clock_period; phase }
end

type t = {
  monitor : Monitor.t;
  max_eps : int;
  mutable step_scheduled_for : int;  (* instant with a pending step, -1 if none *)
}

(* Every step goes through the batched sampler: priming reads the
   environment once per evaluation point and fans the valuations out
   to all monitors sharing the sampler (idempotent per instant), so
   the per-monitor step is answered from the cache. *)
let step_primed monitor ~time lookup =
  Sampler.prime (Monitor.sampler monitor) ~time lookup;
  Monitor.step monitor ~time lookup

(* Several transactions may end at the same instant; Def. III.2's
   transaction context evaluates the property once per instant, on the
   final observable state, exactly as an RTL checker evaluates once
   per clock edge.  The step is deferred by one delta cycle so every
   same-instant mirror update lands first. *)
let schedule_step t kernel lookup =
  let now = Kernel.now kernel in
  if t.step_scheduled_for <> now then begin
    t.step_scheduled_for <- now;
    Kernel.schedule_next_delta kernel (fun () ->
      step_primed t.monitor ~time:now lookup)
  end

let require_transaction_context ~what property =
  match property.Property.context with
  | Context.Transaction _ -> ()
  | Context.Clock _ ->
    invalid_arg
      (Printf.sprintf "Checker.attach (%s): property %s has a clock context"
         what property.Property.name)

let require_clock_context ~what property =
  match property.Property.context with
  | Context.Clock _ -> ()
  | Context.Transaction _ ->
    invalid_arg
      (Printf.sprintf
         "Checker.attach (%s): property %s has a transaction context" what
         property.Property.name)

(* One pull-probe set per attached checker.  [Metrics.probe] appends,
   so every checker on the kernel contributes to the same registry
   names: `Sum` combiners total across properties, `Max` keeps the
   worst-case instance pressure. *)
let register_metrics metrics monitor =
  let module M = Tabv_obs.Metrics in
  if M.enabled metrics then begin
    M.incr (M.counter metrics "checker.monitors");
    let sum name f = M.probe metrics ~combine:`Sum name f
    and max name f = M.probe metrics ~combine:`Max name f in
    sum "checker.activations" (fun () -> Monitor.activations monitor);
    sum "checker.passes" (fun () -> Monitor.passes monitor);
    sum "checker.trivial_passes" (fun () -> Monitor.trivial_passes monitor);
    sum "checker.steps" (fun () -> Monitor.steps monitor);
    sum "checker.pending" (fun () -> Monitor.pending monitor);
    sum "checker.cache_hits" (fun () -> Monitor.cache_hits monitor);
    sum "checker.cache_misses" (fun () -> Monitor.cache_misses monitor);
    sum "checker.failures" (fun () -> List.length (Monitor.failures monitor));
    max "checker.peak_instances" (fun () -> Monitor.peak_instances monitor);
    max "checker.peak_distinct_states" (fun () ->
      Monitor.peak_distinct_states monitor)
  end

let attach (spec : Attach.spec) kernel property ~lookup =
  let { Attach.engine; sampler; mode; metrics } = spec in
  (* Validate the property context against the requested mode before
     synthesizing anything. *)
  (match mode with
   | Attach.Transaction _ -> require_transaction_context ~what:"transaction" property
   | Attach.Transaction_unabstracted _ ->
     require_clock_context ~what:"unabstracted" property
   | Attach.Grid { clock_period; _ } ->
     if clock_period <= 0 then
       invalid_arg "Checker.attach: clock_period must be positive";
     require_transaction_context ~what:"grid" property
   | Attach.Clock_edge _ -> require_clock_context ~what:"clock-edge" property);
  let monitor = Monitor.create ?engine ?sampler property in
  let max_eps = Ltl.max_eps property.Property.formula in
  let t = { monitor; max_eps; step_scheduled_for = -1 } in
  (match mode with
   | Attach.Transaction initiator | Attach.Transaction_unabstracted initiator ->
     Tlm.Initiator.on_transaction initiator (fun _transaction ->
       schedule_step t kernel lookup)
   | Attach.Grid { clock_period; phase } ->
     let rec tick () =
       step_primed monitor ~time:(Kernel.now kernel) lookup;
       Kernel.schedule_after kernel ~delay:clock_period tick
     in
     Kernel.schedule_at kernel ~time:phase tick
   | Attach.Clock_edge { clock; clocks } ->
     let sampling_clock, edge =
       match property.Property.context with
       | Context.Clock Context.Base_clock -> (clock, Context.Posedge)
       | Context.Clock (Context.Edge e)
       | Context.Clock (Context.Edge_and (e, _)) -> (clock, e)
       | Context.Clock
           (Context.Named_edge (name, e) | Context.Named_edge_and (name, e, _))
         ->
         (match List.assoc_opt name clocks with
          | Some named_clock -> (named_clock, e)
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Checker.attach: property %s names unknown clock %S"
                 property.Property.name name))
       | Context.Transaction _ -> assert false (* validated above *)
     in
     let sample () = step_primed monitor ~time:(Kernel.now kernel) lookup in
     (match edge with
      | Context.Posedge -> Event.on_event (Clock.posedge sampling_clock) sample
      | Context.Negedge -> Event.on_event (Clock.negedge sampling_clock) sample
      | Context.Any_edge ->
        Event.on_event (Clock.posedge sampling_clock) sample;
        Event.on_event (Clock.negedge sampling_clock) sample));
  let metrics =
    match metrics with
    | Some m -> m
    | None -> Kernel.metrics kernel
  in
  register_metrics metrics monitor;
  t

let monitor t = t.monitor
let failures t = Monitor.failures t.monitor
let snapshot t = Monitor.snapshot t.monitor

let array_size t ~clock_period =
  if clock_period <= 0 then
    invalid_arg "Checker.array_size: clock_period must be positive";
  (t.max_eps + clock_period - 1) / clock_period
