(** Detection attribution for fault-qualification runs.

    Given the per-property checker snapshots of a clean {e baseline}
    run and a {e faulted} run of the same workload, attribute each
    property a verdict for that fault:
    {ul
    {- [Detected] — the property failed (more) under the fault;}
    {- [Missed] — the fault was exercised but the property did not
       object;}
    {- [Latent] — the fault was never exercised ([triggered = 0]), so
       the run says nothing about it.}}

    The detection matrix of a qualification campaign is one verdict
    per (fault, property) pair; a suite {e detects} a fault when at
    least one of its properties does. *)

type verdict =
  | Detected
  | Missed
  | Latent

val verdict_to_string : verdict -> string

type property_verdict = {
  property : string;
  verdict : verdict;
  baseline_failures : int;
  fault_failures : int;
}

(** [classify ~triggered ~baseline ~faulted] — one verdict per faulted
    snapshot, in faulted order.  A property absent from the baseline
    counts zero baseline failures. *)
val classify :
  triggered:int ->
  baseline:Tabv_obs.Checker_snapshot.t list ->
  faulted:Tabv_obs.Checker_snapshot.t list ->
  property_verdict list

(** At least one [Detected]. *)
val detected : property_verdict list -> bool

(** Suite verdict: [Detected] if any property detects, else [Latent]
    if the fault never triggered, else [Missed]. *)
val summary : property_verdict list -> verdict
