open Tabv_psl
open Tabv_sim

type t = {
  monitor : Monitor.t;
}

let attach ?engine ?sampler ?(clocks = []) kernel clock property ~lookup =
  let sampling_clock, edge =
    match property.Property.context with
    | Context.Clock Context.Base_clock -> (clock, Context.Posedge)
    | Context.Clock (Context.Edge e) | Context.Clock (Context.Edge_and (e, _)) ->
      (clock, e)
    | Context.Clock
        (Context.Named_edge (name, e) | Context.Named_edge_and (name, e, _)) ->
      (match List.assoc_opt name clocks with
       | Some named_clock -> (named_clock, e)
       | None ->
         invalid_arg
           (Printf.sprintf "Rtl_checker.attach: property %s names unknown clock %S"
              property.Property.name name))
    | Context.Transaction _ ->
      invalid_arg
        (Printf.sprintf
           "Rtl_checker.attach: property %s has a transaction context"
           property.Property.name)
  in
  let monitor = Monitor.create ?engine ?sampler property in
  let sample () = Monitor.step monitor ~time:(Kernel.now kernel) lookup in
  (match edge with
   | Context.Posedge -> Event.on_event (Clock.posedge sampling_clock) sample
   | Context.Negedge -> Event.on_event (Clock.negedge sampling_clock) sample
   | Context.Any_edge ->
     Event.on_event (Clock.posedge sampling_clock) sample;
     Event.on_event (Clock.negedge sampling_clock) sample);
  { monitor }

let monitor t = t.monitor
let failures t = Monitor.failures t.monitor
