type t = Checker.t

let attach ?engine ?sampler ?(clocks = []) kernel clock property ~lookup =
  Checker.attach
    (Checker.Attach.spec ?engine ?sampler
       (Checker.Attach.clock_edge ~clocks clock))
    kernel property ~lookup

let monitor = Checker.monitor
let failures = Checker.failures
