type verdict =
  | Detected
  | Missed
  | Latent

let verdict_to_string = function
  | Detected -> "detected"
  | Missed -> "missed"
  | Latent -> "latent"

type property_verdict = {
  property : string;
  verdict : verdict;
  baseline_failures : int;
  fault_failures : int;
}

let failures (s : Tabv_obs.Checker_snapshot.t) = List.length s.failures

let classify ~triggered ~baseline ~faulted =
  List.map
    (fun (f : Tabv_obs.Checker_snapshot.t) ->
      let baseline_failures =
        match
          List.find_opt
            (fun (b : Tabv_obs.Checker_snapshot.t) ->
              b.property_name = f.property_name)
            baseline
        with
        | Some b -> failures b
        | None -> 0
      in
      let fault_failures = failures f in
      let verdict =
        if triggered = 0 then Latent
        else if fault_failures > baseline_failures then Detected
        else Missed
      in
      { property = f.property_name; verdict; baseline_failures; fault_failures })
    faulted

let detected verdicts = List.exists (fun v -> v.verdict = Detected) verdicts

let summary verdicts =
  if detected verdicts then Detected
  else if List.for_all (fun v -> v.verdict = Latent) verdicts then Latent
  else Missed
