open Tabv_psl

module type OFFLINE_CHECKER = sig
  type config
  type state
  type result

  val name : string
  val init : config -> state
  val on_entry : state -> Tabv_trace.Entry.t -> unit
  val finalize : state -> result
end

module Run (C : OFFLINE_CHECKER) = struct
  let over_seq config entries =
    let state = C.init config in
    Seq.iter (fun entry -> C.on_entry state entry) entries;
    C.finalize state

  let over_trace config trace =
    over_seq config (Tabv_trace.Entry.of_trace trace)

  let over_file config path =
    Tabv_trace.Reader.with_file path (fun reader ->
        over_seq config (Tabv_trace.Reader.to_seq reader))
end

module Monitors = struct
  type monitor_config = {
    engine : Monitor.engine option;
    stutter : bool;
    properties : Property.t list;
  }

  type config = monitor_config

  type state = {
    pool : (Property.t * Monitor.t) list;
    (* Support mask per monitor: bit [min i 62] for every dictionary
       position [i] of a signal the property reads (formula atoms and
       context gate).  Built from the first sample's env; positions
       beyond 62 share one overflow bit, erring toward stepping. *)
    mutable slots : (Monitor.t * int) list;
    mutable prev_env : (string * Expr.value) list;
    mutable have_prev : bool;
    (* Samples whose replay has been deferred: when the env is
       physically unchanged and every monitor in the pool is
       replay-capable, whole stutter runs collapse to one counter that
       is flushed as [Monitor.replay ~count] at the next real step (or
       at finalize).  Spans do not interrupt a run. *)
    mutable batched : int;
    (* [false] disables the whole stutter machinery (masks, memo,
       batching): every entry takes a real step.  The verdicts are
       identical either way; benchmarks that isolate the per-step
       engine cost need the undiluted path. *)
    stutter : bool;
  }

  type result = (Property.t * Monitor.t) list

  let name = "monitors"

  let config ?engine ?(stutter = true) properties =
    { engine; stutter; properties }

  let init { engine; stutter; properties } =
    (* One shared sampler across the pool, as in live checking and the
       historical Replay.run: each distinct atom is evaluated once per
       entry no matter how many properties mention it. *)
    let sampler = Sampler.create () in
    let pool =
      List.map
        (fun p ->
          let m = Monitor.create ?engine ~sampler p in
          if stutter then Monitor.enable_memo m;
          (p, m))
        properties
    in
    { pool; slots = []; prev_env = []; have_prev = false; batched = 0; stutter }

  let build_slots pool env =
    let bit_of name =
      let rec find i = function
        | [] -> 0  (* absent from the trace: the value never changes *)
        | (n, _) :: rest ->
          if String.equal n name then 1 lsl min i 62 else find (i + 1) rest
      in
      find 0 env
    in
    List.map
      (fun (p, m) ->
        ( m,
          List.fold_left
            (fun acc s -> acc lor bit_of s)
            0 (Property.signals p) ))
      pool

  (* Bitmask of dictionary positions whose value differs between two
     same-shape envs; [-1] (every bit) when the shapes disagree. *)
  let changed_mask prev env =
    let rec walk i acc prev env =
      match prev, env with
      | [], [] -> acc
      | (_, v1) :: prev', (_, v2) :: env' ->
        let acc =
          if v1 == v2 || v1 = v2 then acc else acc lor (1 lsl min i 62)
        in
        walk (i + 1) acc prev' env'
      | [], _ :: _ | _ :: _, [] -> -1
    in
    walk 0 0 prev env

  let flush state =
    if state.batched > 0 then begin
      List.iter
        (fun (m, _) -> Monitor.replay m ~count:state.batched)
        state.slots;
      state.batched <- 0
    end

  let on_entry state = function
    | Tabv_trace.Entry.Span _ -> ()
    | Tabv_trace.Entry.Sample { time; env } when not state.stutter ->
      if not state.have_prev then begin
        state.slots <- build_slots state.pool env;
        state.have_prev <- true
      end;
      let lookup name = List.assoc_opt name env in
      List.iter (fun (monitor, _) -> Monitor.step monitor ~time lookup) state.slots
    | Tabv_trace.Entry.Sample { time; env } ->
      if
        state.have_prev
        && env == state.prev_env
        && (state.batched > 0
            || List.for_all (fun (m, _) -> Monitor.can_replay m) state.slots)
      then
        (* Deep stutter: the reader re-emitted the previous env and the
           whole pool is replayable — defer, the run flushes in O(pool)
           no matter how long it gets. *)
        state.batched <- state.batched + 1
      else begin
        flush state;
        if not state.have_prev then state.slots <- build_slots state.pool env;
        let changed =
          if not state.have_prev then -1
          else if env == state.prev_env then 0
          else changed_mask state.prev_env env
        in
        state.prev_env <- env;
        state.have_prev <- true;
        let lookup name = List.assoc_opt name env in
        List.iter
          (fun (monitor, mask) ->
            if changed land mask = 0 then begin
              (* Stutter: every signal this monitor reads is unchanged.
                 Replay the previous step's deltas when the memo allows,
                 otherwise take a real step that certifies the memo. *)
              if not (Monitor.step_stuttered monitor ~time) then
                Monitor.step ~stuttered:true monitor ~time lookup
            end
            else Monitor.step monitor ~time lookup)
          state.slots
      end

  let finalize state =
    flush state;
    state.pool

  let snapshots result = List.map (fun (_, m) -> Monitor.snapshot m) result
end

module Cover = struct
  type config = Monitors.monitor_config
  type state = Monitors.state
  type result = Coverage.summary

  let name = "coverage"
  let config = Monitors.config
  let init = Monitors.init
  let on_entry = Monitors.on_entry

  let finalize state = Coverage.summarize (List.map snd (Monitors.finalize state))
end

module Stats = struct
  type signal_stat = { signal : string; changes : int }

  type span_stat = {
    label : string;
    count : int;
    total_latency : int;
    max_latency : int;
  }

  type stats = {
    samples : int;
    spans : int;
    first_time : int;
    last_time : int;
    signals : signal_stat list;
    span_labels : span_stat list;
  }

  type config = unit

  type state = {
    mutable s_samples : int;
    mutable s_spans : int;
    mutable s_first : int;
    mutable s_last : int;
    (* Dictionary order of the first sample, change counts and last
       value per signal. *)
    mutable s_order : string list;  (* reversed *)
    s_changes : (string, int ref * Expr.value ref) Hashtbl.t;
    s_spans_tbl : (string, (int ref * int ref * int ref)) Hashtbl.t;
  }

  type result = stats

  let name = "trace-stats"

  let init () =
    {
      s_samples = 0;
      s_spans = 0;
      s_first = 0;
      s_last = 0;
      s_order = [];
      s_changes = Hashtbl.create 16;
      s_spans_tbl = Hashtbl.create 8;
    }

  let on_entry state = function
    | Tabv_trace.Entry.Sample { time; env } ->
      if state.s_samples = 0 then state.s_first <- time;
      state.s_last <- time;
      state.s_samples <- state.s_samples + 1;
      List.iter
        (fun (signal, value) ->
          match Hashtbl.find_opt state.s_changes signal with
          | None ->
            state.s_order <- signal :: state.s_order;
            Hashtbl.add state.s_changes signal (ref 0, ref value)
          | Some (changes, last) ->
            if !last <> value then begin
              incr changes;
              last := value
            end)
        env
    | Tabv_trace.Entry.Span { label; start_time; end_time } ->
      state.s_spans <- state.s_spans + 1;
      let latency = end_time - start_time in
      (match Hashtbl.find_opt state.s_spans_tbl label with
       | None -> Hashtbl.add state.s_spans_tbl label (ref 1, ref latency, ref latency)
       | Some (count, total, max_l) ->
         incr count;
         total := !total + latency;
         if latency > !max_l then max_l := latency)

  let finalize state =
    let signals =
      List.rev_map
        (fun signal ->
          let changes, _ = Hashtbl.find state.s_changes signal in
          { signal; changes = !changes })
        state.s_order
    in
    let span_labels =
      Hashtbl.fold
        (fun label (count, total, max_l) acc ->
          { label; count = !count; total_latency = !total; max_latency = !max_l }
          :: acc)
        state.s_spans_tbl []
      |> List.sort (fun a b -> String.compare a.label b.label)
    in
    {
      samples = state.s_samples;
      spans = state.s_spans;
      first_time = state.s_first;
      last_time = state.s_last;
      signals;
      span_labels;
    }

  let stats_json stats =
    let open Tabv_core.Report_json in
    Assoc
      [ ("samples", Int stats.samples);
        ("spans", Int stats.spans);
        ("first_time", Int stats.first_time);
        ("last_time", Int stats.last_time);
        ( "signals",
          List
            (List.map
               (fun s -> Assoc [ ("name", String s.signal); ("changes", Int s.changes) ])
               stats.signals) );
        ( "span_labels",
          List
            (List.map
               (fun s ->
                 Assoc
                   [ ("label", String s.label);
                     ("count", Int s.count);
                     ("total_latency_ns", Int s.total_latency);
                     ("max_latency_ns", Int s.max_latency) ])
               stats.span_labels) ) ]

  let pp ppf stats =
    Format.fprintf ppf
      "@[<v>%d evaluation points over [%d,%d] ns, %d spans" stats.samples
      stats.first_time stats.last_time stats.spans;
    List.iter
      (fun s -> Format.fprintf ppf "@,  %-16s %d changes" s.signal s.changes)
      stats.signals;
    List.iter
      (fun s ->
        Format.fprintf ppf "@,  span %-11s %d, mean latency %.1f ns, max %d ns"
          s.label s.count
          (if s.count = 0 then 0. else float_of_int s.total_latency /. float_of_int s.count)
          s.max_latency)
      stats.span_labels;
    Format.fprintf ppf "@]"
end
