open Tabv_psl

type outcome = {
  property : Property.t;
  monitor : Monitor.t;
}

module Monitors_run = Offline.Run (Offline.Monitors)

let run ?engine properties trace =
  (* Deprecated shim: one Offline.Monitors pass over the in-memory
     trace.  New code should drive Offline directly (over_file for
     stored traces, which streams in bounded memory). *)
  List.map
    (fun (property, monitor) -> { property; monitor })
    (Monitors_run.over_trace (Offline.Monitors.config ?engine properties) trace)

let all_passed outcomes =
  List.for_all (fun outcome -> Monitor.failures outcome.monitor = []) outcomes

let pp_outcome ppf outcome =
  let failures = Monitor.failures outcome.monitor in
  Format.fprintf ppf "%-8s %s (%d activations, %d passes, %d pending%s)"
    outcome.property.Property.name
    (if failures = [] then "pass" else Printf.sprintf "FAIL (%d)" (List.length failures))
    (Monitor.activations outcome.monitor)
    (Monitor.passes outcome.monitor)
    (Monitor.pending outcome.monitor)
    (if Monitor.vacuous outcome.monitor then ", vacuous" else "")
