open Tabv_psl

type outcome = {
  property : Property.t;
  monitor : Monitor.t;
}

let run ?engine properties trace =
  (* One shared sampler for the whole replay: every monitor sees the
     same (time, environment) pairs, so each distinct atom is
     evaluated once per trace entry across all properties. *)
  let sampler = Sampler.create () in
  let outcomes =
    List.map
      (fun p -> { property = p; monitor = Monitor.create ?engine ~sampler p })
      properties
  in
  for i = 0 to Trace.length trace - 1 do
    let entry = Trace.get trace i in
    List.iter
      (fun outcome ->
        Monitor.step outcome.monitor ~time:entry.Trace.time (Trace.lookup entry))
      outcomes
  done;
  outcomes

let all_passed outcomes =
  List.for_all (fun outcome -> Monitor.failures outcome.monitor = []) outcomes

let pp_outcome ppf outcome =
  let failures = Monitor.failures outcome.monitor in
  Format.fprintf ppf "%-8s %s (%d activations, %d passes, %d pending%s)"
    outcome.property.Property.name
    (if failures = [] then "pass" else Printf.sprintf "FAIL (%d)" (List.length failures))
    (Monitor.activations outcome.monitor)
    (Monitor.passes outcome.monitor)
    (Monitor.pending outcome.monitor)
    (if Monitor.vacuous outcome.monitor then ", vacuous" else "")
