open Tabv_psl
open Tabv_sim

(** TLM checker wrapper (Sec. IV of the paper).

    The wrapper executes checkers at the correct simulation instants:
    it subscribes to the end of every transaction of an initiator
    socket and steps the property's {!Monitor} there.  Timed
    [next_eps^tau] obligations are handled by the progression engine:
    a transaction earlier than the required instant is ignored by the
    pending obligation, one at exactly the instant evaluates the
    operand, and one past it raises the failure.

    The paper sizes a preallocated instance array [C] by the property
    lifetime; [array_size] reports that bound, and
    {!Monitor.peak_instances} the high-water mark actually reached.

    This module is a backward-compatible shim over {!Checker.attach}
    with {!Checker.Attach.Transaction} /
    {!Checker.Attach.Transaction_unabstracted} / {!Checker.Attach.Grid}
    modes; new code should use {!Checker} directly (it additionally
    takes a metrics registry). *)

type t = Checker.t

(** [attach kernel initiator property ~lookup] synthesizes the wrapper
    for a TLM property and hooks it to the socket's end-of-transaction
    events.  [engine] selects the checker backend (see
    {!Monitor.engine}); when [sampler] is given, all wrappers sharing
    it evaluate each distinct atom once per instant (the paper's
    wrapper pool samples the environment once per evaluation point).
    @raise Invalid_argument when the property has a clock context. *)
val attach :
  ?engine:Monitor.engine ->
  ?sampler:Sampler.t ->
  Kernel.t ->
  Tlm.Initiator.t ->
  Property.t ->
  lookup:(string -> Expr.value option) ->
  t

(** Attach a checker synthesized from an {e unabstracted} RTL property
    directly to transaction events, treating each transaction end as if
    it were a clock event.  This is the reuse the paper evaluates on
    TLM-CA models (where one transaction per cycle makes it sound) and
    shows to be incorrect on more abstract models. *)
val attach_unabstracted :
  ?engine:Monitor.engine ->
  ?sampler:Sampler.t ->
  Kernel.t ->
  Tlm.Initiator.t ->
  Property.t ->
  lookup:(string -> Expr.value option) ->
  t

(** Grid-mode wrapper (an extension over the paper; see DESIGN.md).

    Properties whose [next_eps^tau] operators sit under [until]/
    [release] (the paper's [q2]) cannot be discharged on sparse
    approximately-timed traces under the strict Def. III.3 semantics:
    the iterating operator re-anchors the timed operand at every
    event, and no transaction exists at the required instants.

    The grid wrapper fixes this by evaluating the property at every
    instant of the reference RTL clock grid ([phase + k *
    clock_period]), sampling the {e persistent} TLM observable state
    instead of waiting for transactions.  [phase] defaults to 1 ns
    past the grid so that same-instant transactions complete before
    sampling.  The cost is one evaluation per clock period — an
    ablation the benchmark quantifies. *)
val attach_grid :
  ?engine:Monitor.engine ->
  ?sampler:Sampler.t ->
  Kernel.t ->
  clock_period:int ->
  ?phase:int ->
  Property.t ->
  lookup:(string -> Expr.value option) ->
  t

val monitor : t -> Monitor.t
val failures : t -> Monitor.failure list

(** Lifetime bound of one checker instance: the maximum number of
    instants with transactions in [(t_fire, t_end]] given the
    reference RTL clock period — [max_eps / clock_period] (Sec. IV,
    point 1; 17 for the paper's [q3] at 10 ns). *)
val array_size : t -> clock_period:int -> int
