open Tabv_psl
open Tabv_sim

(** Unified checker attachment.

    One entry point replaces the optional-argument triplication that
    used to be spread over [Wrapper.attach], [Wrapper.attach_unabstracted],
    [Wrapper.attach_grid] and [Rtl_checker.attach]: every way of
    hooking a property {!Monitor} to a simulation is an
    {!Attach.mode}, and everything else a checker needs — backend
    engine, shared atom sampler, metrics registry — travels in one
    {!Attach.spec} record.

    The legacy modules remain as thin shims over this module, so
    existing call sites keep compiling; new code should build an
    {!Attach.spec} and call {!attach}. *)

module Attach : sig
  (** How evaluation points are generated (Sec. III/IV of the paper):

      - [Clock_edge]: RTL checker semantics — sample at clock events;
        the property's clock context selects the edge and, for named
        contexts ([@clkB_pos]), the matching entry of [clocks].
      - [Transaction]: TLM wrapper semantics — step at the end of
        every transaction of the initiator socket (once per instant).
      - [Transaction_unabstracted]: the paper's reuse experiment — an
        {e unabstracted} RTL property stepped at transaction ends as
        if they were clock edges (sound on TLM-CA only).
      - [Grid]: sample the persistent TLM observable state on the
        reference RTL clock grid [phase + k * clock_period] (see
        DESIGN.md; for [until]-iterated timed operators on sparse
        traces). *)
  type mode =
    | Clock_edge of {
        clock : Clock.t;
        clocks : (string * Clock.t) list;
      }
    | Transaction of Tlm.Initiator.t
    | Transaction_unabstracted of Tlm.Initiator.t
    | Grid of {
        clock_period : int;
        phase : int;
      }

  (** The full attachment request.  [engine] defaults to the monitor's
      default backend, [sampler] to a private per-monitor sampler, and
      [metrics] to the kernel's registry ({!Kernel.metrics}) — pass an
      explicit registry only to segregate instrumentation. *)
  type spec = {
    engine : Monitor.engine option;
    sampler : Sampler.t option;
    mode : mode;
    metrics : Tabv_obs.Metrics.t option;
  }

  val spec :
    ?engine:Monitor.engine ->
    ?sampler:Sampler.t ->
    ?metrics:Tabv_obs.Metrics.t ->
    mode ->
    spec

  (** Mode constructors. *)

  val clock_edge : ?clocks:(string * Clock.t) list -> Clock.t -> mode

  val transaction : Tlm.Initiator.t -> mode
  val transaction_unabstracted : Tlm.Initiator.t -> mode

  (** [phase] defaults to 1 ns past the grid so same-instant
      transactions complete before sampling.
      @raise Invalid_argument when [clock_period <= 0]. *)
  val grid : ?phase:int -> clock_period:int -> unit -> mode
end

type t

(** [attach spec kernel property ~lookup] synthesizes the checker and
    hooks it to the evaluation-point source selected by [spec.mode].

    When the effective metrics registry is enabled, the checker
    registers pull probes so the registry totals checker activity
    across every property on the kernel: [checker.monitors],
    [checker.activations], [checker.passes], [checker.trivial_passes],
    [checker.steps], [checker.pending], [checker.cache_hits],
    [checker.cache_misses], [checker.failures] (sums) and
    [checker.peak_instances], [checker.peak_distinct_states]
    (maxima).

    @raise Invalid_argument when the property context does not match
    the mode (clock context on a transaction/grid mode, transaction
    context on a clock-edge/unabstracted mode), when a named clock is
    absent from [clocks], or when a grid period is not positive. *)
val attach :
  Attach.spec ->
  Kernel.t ->
  Property.t ->
  lookup:(string -> Expr.value option) ->
  t

val monitor : t -> Monitor.t
val failures : t -> Monitor.failure list

(** {!Monitor.snapshot} of the underlying monitor. *)
val snapshot : t -> Tabv_obs.Checker_snapshot.t

(** Lifetime bound of one checker instance: the maximum number of
    instants with transactions in [(t_fire, t_end]] given the
    reference RTL clock period — [max_eps / clock_period] (Sec. IV,
    point 1; 17 for the paper's [q3] at 10 ns). *)
val array_size : t -> clock_period:int -> int
