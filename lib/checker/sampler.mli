open Tabv_psl

(** Shared evaluation-point sampler.

    A per-instant cache of atomic-proposition values, stored inside
    the interned atom nodes themselves (a stamped scratch slot, see
    {!Interned.set_sample}) so a cache hit is one load and one
    compare.  N monitors attached to the same socket/clock share one
    sampler, so each distinct atom is evaluated once per instant
    instead of once per live checker instance per monitor (the paper's
    wrapper samples the environment once per evaluation point; this
    generalizes that to a whole wrapper pool).

    The cache is invalidated whenever [time] changes; it must only be
    shared by monitors that observe the same environment within one
    delta phase of an instant. *)

type t

val create : unit -> t

(** [eval_atom t ~time lookup atom] evaluates the interned [Atom] node
    [atom] at instant [time], caching per (instant, atom id).
    @raise Invalid_argument if [atom] is not an [Atom] node.
    @raise Expr.Eval_error like {!Expr.eval}. *)
val eval_atom :
  t -> time:int -> (string -> Expr.value option) -> Interned.t -> bool

(** {2 Batched sampling}

    {!Monitor.create} registers every atom of its (normalized) formula
    plus its gate; the attach layer calls {!prime} once per evaluation
    point, which evaluates all registered atoms in one pass over the
    environment and fans the valuations out to every attached monitor
    through the per-instant cache. *)

(** Register an [Atom] node for batched priming (idempotent per node;
    interned nodes are hash-consed, so physical identity applies). *)
val register : t -> Interned.t -> unit

(** [prime t ~time lookup] evaluates every registered atom at [time]
    (idempotent per instant).  Accounting is routed through
    {!eval_atom}, so queries/evals stay engine-independent. *)
val prime : t -> time:int -> (string -> Expr.value option) -> unit

(** Number of atoms registered for priming. *)
val registered_atoms : t -> int

(** Atom evaluations requested so far (including cache hits). *)
val queries : t -> int

(** Atom evaluations actually performed (cache misses). *)
val evals : t -> int

(** Fraction of atom queries answered from the per-instant cache. *)
val hit_rate : t -> float
