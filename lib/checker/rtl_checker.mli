open Tabv_psl
open Tabv_sim

(** RTL checker: a {!Monitor} sampled at clock events.

    The property's clock context selects the edge ([@clk_pos],
    [@clk_neg], [@clk] = both edges, the base context defaults to the
    positive edge); a gated context additionally filters evaluation
    points inside the monitor.

    Because edge events are delivered with delta semantics, the checker
    samples signal values {e before} the register updates of the same
    edge — the standard pre-edge sampling of RTL assertion checkers.

    This module is a backward-compatible shim over {!Checker.attach}
    with a {!Checker.Attach.Clock_edge} mode; new code should use
    {!Checker} directly (it additionally takes a metrics registry). *)

type t = Checker.t

(** [attach ?engine ?sampler ?clocks kernel clock property ~lookup]
    synthesizes the checker (default backend: interned formula
    progression; [`Automaton] selects the explicit-state backend with
    automatic fallback) and hooks it to the clock.  Checkers given the
    same [sampler] evaluate each distinct atom once per instant.
    Properties with a {e named} clock context ([@clkB_pos]) sample the
    matching entry of [clocks] instead of the default [clock].
    @raise Invalid_argument when the property has a transaction
    context (use {!Wrapper} instead), or names a clock absent from
    [clocks]. *)
val attach :
  ?engine:Monitor.engine ->
  ?sampler:Sampler.t ->
  ?clocks:(string * Clock.t) list ->
  Kernel.t ->
  Clock.t ->
  Property.t ->
  lookup:(string -> Expr.value option) ->
  t

val monitor : t -> Monitor.t
val failures : t -> Monitor.failure list
