open Tabv_psl

(* Shared evaluation-point sampler.

   All monitors attached to the same observation point (a socket's
   end-of-transaction stream, a clock edge) see the same environment
   at a given instant, so each distinct atomic proposition needs to be
   evaluated exactly once per instant — not once per live checker
   instance per monitor.  The sampler is that per-instant cache: atoms
   are keyed by their interned node id and invalidated whenever the
   instant changes.

   Sharing discipline: a sampler may be shared by every monitor whose
   evaluation points observe the same environment within one delta
   phase (signal updates in the simulator are delta-delayed, so values
   are stable while the handlers of one instant run).  Monitors
   sampling at different phases of the same instant (e.g. a grid
   wrapper vs. a strict transaction wrapper) should use separate
   samplers. *)

(* Cached values live inside the interned atom nodes themselves
   ({!Interned.set_sample}): each node carries one (stamp, value)
   pair, and the sampler owns a globally unique stamp per instant.  A
   cache hit is then one load and one integer compare — no hashtable
   on the hot path.  Stamps come from a process-global counter, so two
   samplers active at the same instant never mistake each other's
   values (they just overwrite the slot, which only costs a
   re-evaluation).

   The stamp counter is domain-local ([Domain.DLS]), matching the
   interning universe: stamps only need to be unique among the
   samplers of one domain because interned nodes — and hence the
   scratch slots the stamps tag — are confined to the domain that
   created them. *)

let stamp_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let fresh_stamp () =
  let global_stamp = Domain.DLS.get stamp_key in
  incr global_stamp;
  !global_stamp

type t = {
  mutable now : int;  (* instant of the cached values *)
  mutable stamp : int;  (* stamp tagging this sampler's values at [now] *)
  mutable queries : int;  (* atom evaluations requested *)
  mutable evals : int;  (* atom evaluations actually performed *)
  mutable atoms : Interned.t list;  (* registered for batched priming *)
  mutable primed : int;  (* stamp the batch pass last ran for *)
}

let create () =
  {
    now = min_int;
    stamp = fresh_stamp ();
    queries = 0;
    evals = 0;
    atoms = [];
    primed = 0;
  }

let refresh t ~time =
  if t.now <> time then begin
    t.now <- time;
    t.stamp <- fresh_stamp ()
  end

let expr_of atom =
  match Interned.node atom with
  | Interned.Atom e -> e
  | _ -> invalid_arg "Sampler.eval_atom: not an atom node"

let eval_atom t ~time lookup atom =
  refresh t ~time;
  t.queries <- t.queries + 1;
  if Interned.sample_stamp atom = t.stamp then Interned.sample_value atom
  else begin
    let v = Expr.eval lookup (expr_of atom) in
    t.evals <- t.evals + 1;
    Interned.set_sample atom ~stamp:t.stamp ~value:v;
    v
  end

(* Batched sampling: monitors register their atom sets at creation;
   the attach layer then primes the sampler once per evaluation point,
   so the environment (signal arena or transaction mirror) is read in
   one pass and every monitor's step is answered from the cache.
   Priming goes through [eval_atom], so the query/eval accounting is
   identical on every engine and whether or not a caller primes. *)

let register t atom =
  if not (List.memq atom t.atoms) then t.atoms <- atom :: t.atoms

let prime t ~time lookup =
  refresh t ~time;
  if t.primed <> t.stamp then begin
    t.primed <- t.stamp;
    List.iter (fun atom -> ignore (eval_atom t ~time lookup atom)) t.atoms
  end

let registered_atoms t = List.length t.atoms

let queries t = t.queries
let evals t = t.evals

let hit_rate t =
  if t.queries = 0 then 0. else float_of_int (t.queries - t.evals) /. float_of_int t.queries
