open Tabv_psl

type t =
  | Sample of { time : int; env : (string * Expr.value) list }
  | Span of { label : string; start_time : int; end_time : int }

let of_trace trace =
  Seq.map
    (fun e -> Sample { time = e.Trace.time; env = e.Trace.env })
    (Seq.init (Trace.length trace) (Trace.get trace))

let to_trace entries =
  Trace.of_list
    (Seq.fold_left
       (fun acc entry ->
         match entry with
         | Sample { time; env } -> { Trace.time; env } :: acc
         | Span _ -> acc)
       [] entries
    |> List.rev)

let pp ppf = function
  | Sample { time; env } ->
    Format.fprintf ppf "@[<h>#%d %a@]" time
      (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf (n, v) ->
           Format.fprintf ppf "%s=%a" n Expr.pp_value v))
      env
  | Span { label; start_time; end_time } ->
    Format.fprintf ppf "span %s [%d,%d]" label start_time end_time
