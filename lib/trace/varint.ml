exception Corrupt of string

let rec write_uint buf v =
  let low = v land 0x7f in
  (* [lsr] is a logical shift, so a negative int drains to 0 after at
     most 9 rounds instead of looping on sign bits. *)
  let rest = v lsr 7 in
  if rest = 0 then Buffer.add_char buf (Char.chr low)
  else begin
    Buffer.add_char buf (Char.chr (low lor 0x80));
    write_uint buf rest
  end

let write_zigzag buf v =
  write_uint buf ((v lsl 1) lxor (v asr (Sys.int_size - 1)))

(* Raw decode of the full 63-bit pattern: the 9th byte (shift 56)
   carries bits 56..62, so bit 6 of that byte lands on the OCaml int
   sign bit.  Only [read_zigzag] may see it — zigzagged negatives of
   large magnitude legitimately occupy all 63 bits. *)
let read_raw next =
  let rec go shift acc =
    if shift >= Sys.int_size then raise (Corrupt "varint wider than 63 bits");
    let byte = Char.code (next ()) in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_uint next =
  let u = read_raw next in
  (* A set sign bit means the encoding exceeded the 62 magnitude bits
     a non-negative int can carry; the write side never produces it
     for a uint field, so fail loudly instead of handing a negative
     (or silently wrapped) value to call sites that expect a count,
     length, or delta. *)
  if u < 0 then raise (Corrupt "uint varint exceeds 62 bits");
  u

let read_zigzag next =
  let u = read_raw next in
  (u lsr 1) lxor (- (u land 1))
