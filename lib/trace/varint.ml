exception Corrupt of string

let rec write_uint buf v =
  let low = v land 0x7f in
  (* [lsr] is a logical shift, so a negative int drains to 0 after at
     most 9 rounds instead of looping on sign bits. *)
  let rest = v lsr 7 in
  if rest = 0 then Buffer.add_char buf (Char.chr low)
  else begin
    Buffer.add_char buf (Char.chr (low lor 0x80));
    write_uint buf rest
  end

let write_zigzag buf v =
  write_uint buf ((v lsl 1) lxor (v asr (Sys.int_size - 1)))

let read_uint next =
  let rec go shift acc =
    if shift >= Sys.int_size then raise (Corrupt "varint wider than 63 bits");
    let byte = Char.code (next ()) in
    let acc = acc lor ((byte land 0x7f) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_zigzag next =
  let u = read_uint next in
  (u lsr 1) lxor (- (u land 1))
