type t = { model : string; seed : int; ops : int; engine : string }

let equal a b = a = b

(* Version-prefixed so a format bump invalidates stored fingerprints
   along with the files themselves. *)
let fingerprint t =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "tabv-trace-v1\x00%s\x00%d\x00%d\x00%s" t.model t.seed
          t.ops t.engine))

let pp ppf t =
  Format.fprintf ppf "%s seed=%d ops=%d engine=%s (fingerprint %s)" t.model
    t.seed t.ops t.engine (fingerprint t)
