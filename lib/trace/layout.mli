(** Byte-level layout constants shared by {!Writer} and {!Reader}.

    File = magic (8 bytes, version in the last byte) · blocks, where
    each block — the meta header included — is one record followed by
    the CRC32 of its bytes ({!crc_bytes}, little-endian).  Records are
    tagged; samples are delta-timed and change-masked (a bitmask of
    the dictionary entries whose value changed, then the changed bool
    values bit-packed and the changed ints as zigzag varints).  The
    file is only complete once the [tag_end] record — carrying the
    total sample/span counts — has been written; a reader that hits
    EOF first reports truncation, and one that hits a failed CRC
    reports corruption at that block with the verified prefix. *)

val magic : string
(** ["tabvtrc"] + the format version byte; 8 bytes. *)

val version : int

val crc_bytes : int
(** Width of the little-endian CRC32 closing every block (4). *)

val tag_dict : char
val tag_sample : char
val tag_label : char
val tag_span : char
val tag_end : char

val kind_bool : char
val kind_int : char

(** Refuse pathological length fields early instead of allocating. *)
val max_string : int

val max_dictionary : int
