open Tabv_psl
module Crc32 = Tabv_core.Crc32

type dict_entry = { name : string; kind : char }

type t = {
  io : Tabv_core.Io.t;
  buf : Buffer.t;  (* staging area for one record *)
  mutable dict : dict_entry array;  (* [||] until the first sample *)
  mutable dict_written : bool;
  mutable prev_values : Expr.value array;  (* last committed sample *)
  mutable have_prev : bool;
  mutable prev_time : int;
  mutable pending : (int * Expr.value array) option;
  labels : (string, int) Hashtbl.t;
  mutable next_label : int;
  mutable prev_span_start : int;
  mutable n_samples : int;
  mutable n_spans : int;
  mutable bytes : int;
  mutable closed : bool;
}

let crc_le crc =
  String.init Layout.crc_bytes (fun i -> Char.chr ((crc lsr (8 * i)) land 0xff))

(* One staged record = one CRC-framed block = one IO chunk (a single
   write boundary under the fault hook): body bytes, then the CRC of
   the body, little-endian. *)
let flush_buf t =
  let body = Buffer.contents t.buf in
  Buffer.clear t.buf;
  Tabv_core.Io.write t.io body;
  Tabv_core.Io.write t.io (crc_le (Crc32.string body));
  Tabv_core.Io.flush t.io;
  t.bytes <- t.bytes + String.length body + Layout.crc_bytes

let write_string buf s =
  Varint.write_uint buf (String.length s);
  Buffer.add_string buf s

let create ~path meta =
  let io = Tabv_core.Io.create path in
  let buf = Buffer.create 1024 in
  let t =
    {
      io;
      buf;
      dict = [||];
      dict_written = false;
      prev_values = [||];
      have_prev = false;
      prev_time = 0;
      pending = None;
      labels = Hashtbl.create 8;
      next_label = 0;
      prev_span_start = 0;
      n_samples = 0;
      n_spans = 0;
      bytes = 0;
      closed = false;
    }
  in
  (* The magic is raw (its own chunk, no CRC — a reader must be able
     to recognize the format before trusting any framing); the meta
     header is the first CRC-framed block. *)
  Tabv_core.Io.write io Layout.magic;
  Tabv_core.Io.flush io;
  t.bytes <- String.length Layout.magic;
  write_string buf meta.Meta.model;
  Varint.write_zigzag buf meta.Meta.seed;
  Varint.write_uint buf meta.Meta.ops;
  write_string buf meta.Meta.engine;
  flush_buf t;
  t

let check_open t = if t.closed then invalid_arg "Trace writer: already closed"

let kind_of_value = function
  | Expr.VBool _ -> Layout.kind_bool
  | Expr.VInt _ -> Layout.kind_int

let write_dict t env =
  t.dict <-
    Array.of_list
      (List.map (fun (name, v) -> { name; kind = kind_of_value v }) env);
  if Array.length t.dict > Layout.max_dictionary then
    invalid_arg "Trace writer: too many signals";
  Buffer.add_char t.buf Layout.tag_dict;
  Varint.write_uint t.buf (Array.length t.dict);
  Array.iter
    (fun e ->
      write_string t.buf e.name;
      Buffer.add_char t.buf e.kind)
    t.dict;
  flush_buf t

(* Turn an environment into a dictionary-aligned value array, checking
   that the signal set, order and kinds are stable across the run. *)
let values_of_env t env =
  let n = Array.length t.dict in
  let values = Array.make n (Expr.VBool false) in
  let i = ref 0 in
  List.iter
    (fun (name, v) ->
      if !i >= n then invalid_arg "Trace writer: sample has extra signals";
      let e = t.dict.(!i) in
      if not (String.equal e.name name) then
        invalid_arg
          (Printf.sprintf "Trace writer: signal %d is %S, dictionary says %S"
             !i name e.name);
      if kind_of_value v <> e.kind then
        invalid_arg (Printf.sprintf "Trace writer: signal %S changed kind" name);
      values.(!i) <- v;
      incr i)
    env;
  if !i <> n then invalid_arg "Trace writer: sample is missing signals";
  values

(* Encode the pending sample: delta time, change mask, then the
   changed bool values bit-packed and the changed ints as zigzag
   varints, all in dictionary order. *)
let commit t time values =
  let n = Array.length t.dict in
  Buffer.add_char t.buf Layout.tag_sample;
  if t.have_prev then Varint.write_uint t.buf (time - t.prev_time)
  else begin
    if time < 0 then invalid_arg "Trace writer: negative time";
    Varint.write_uint t.buf time
  end;
  let changed i =
    (not t.have_prev) || values.(i) <> t.prev_values.(i)
  in
  let add_bits test count =
    let byte = ref 0 and fill = ref 0 in
    for i = 0 to count - 1 do
      if test i then byte := !byte lor (1 lsl !fill);
      incr fill;
      if !fill = 8 then begin
        Buffer.add_char t.buf (Char.chr !byte);
        byte := 0;
        fill := 0
      end
    done;
    if !fill > 0 then Buffer.add_char t.buf (Char.chr !byte)
  in
  add_bits changed n;
  (* Bool values of the changed entries, bit-packed in dict order. *)
  let changed_bools = ref [] in
  for i = n - 1 downto 0 do
    if changed i && t.dict.(i).kind = Layout.kind_bool then
      changed_bools := i :: !changed_bools
  done;
  let changed_bools = Array.of_list !changed_bools in
  add_bits
    (fun j ->
      match values.(changed_bools.(j)) with
      | Expr.VBool b -> b
      | Expr.VInt _ -> assert false)
    (Array.length changed_bools);
  for i = 0 to n - 1 do
    if changed i && t.dict.(i).kind = Layout.kind_int then
      match values.(i) with
      | Expr.VInt v -> Varint.write_zigzag t.buf v
      | Expr.VBool _ -> assert false
  done;
  flush_buf t;
  t.prev_values <- values;
  t.have_prev <- true;
  t.prev_time <- time

let flush_pending t =
  match t.pending with
  | None -> ()
  | Some (time, values) ->
    t.pending <- None;
    commit t time values

let sample t ~time env =
  check_open t;
  if not t.dict_written then begin
    write_dict t env;
    t.dict_written <- true
  end;
  let values = values_of_env t env in
  (match t.pending with
   | Some (pending_time, _) when time = pending_time ->
     (* Last-wins within an instant, as in Trace_rec. *)
     t.pending <- Some (time, values)
   | Some (pending_time, _) when time < pending_time ->
     invalid_arg
       (Printf.sprintf "Trace writer: time went backwards (%d after %d)" time
          pending_time)
   | Some _ ->
     flush_pending t;
     t.pending <- Some (time, values);
     t.n_samples <- t.n_samples + 1
   | None ->
     if t.have_prev && time <= t.prev_time then
       invalid_arg
         (Printf.sprintf "Trace writer: time went backwards (%d after %d)" time
            t.prev_time);
     t.pending <- Some (time, values);
     t.n_samples <- t.n_samples + 1)

let span t ~label ~start_time ~end_time =
  check_open t;
  if end_time < start_time then
    invalid_arg "Trace writer: span ends before it starts";
  let id =
    match Hashtbl.find_opt t.labels label with
    | Some id -> id
    | None ->
      let id = t.next_label in
      t.next_label <- id + 1;
      Hashtbl.add t.labels label id;
      (* Its own block: the reader resolves label ids at block
         boundaries, so a label may never share a CRC frame with the
         span that first uses it. *)
      Buffer.add_char t.buf Layout.tag_label;
      write_string t.buf label;
      flush_buf t;
      id
  in
  Buffer.add_char t.buf Layout.tag_span;
  Varint.write_uint t.buf id;
  Varint.write_zigzag t.buf (start_time - t.prev_span_start);
  Varint.write_uint t.buf (end_time - start_time);
  t.prev_span_start <- start_time;
  t.n_spans <- t.n_spans + 1;
  flush_buf t

let samples t = t.n_samples
let spans t = t.n_spans
let bytes_written t = t.bytes

let close t =
  if not t.closed then begin
    t.closed <- true;
    match
      flush_pending t;
      Buffer.add_char t.buf Layout.tag_end;
      Varint.write_uint t.buf t.n_samples;
      Varint.write_uint t.buf t.n_spans;
      flush_buf t;
      Tabv_core.Io.fsync t.io
    with
    | () -> Tabv_core.Io.close t.io
    | exception e ->
      (* Release the descriptor even when the end record cannot be
         written (an injected IO fault); the file is then a trace
         without an end record — torn, and refused by the reader. *)
      Tabv_core.Io.close_noerr t.io;
      raise e
  end

let with_file ~path meta f =
  let t = create ~path meta in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
