open Tabv_psl

(** One stored evaluation point.

    A trace file carries two independent streams: atom-valuation
    samples (one per evaluation point, strictly increasing times) and
    transaction spans (begin/end timestamps of completed TLM
    transactions).  Relative order is guaranteed {e within} each
    stream only; offline checkers must not rely on sample-vs-span
    interleaving. *)
type t =
  | Sample of { time : int; env : (string * Expr.value) list }
  | Span of { label : string; start_time : int; end_time : int }

(** The samples of an in-memory evaluation trace, in order (no
    spans — {!Tabv_psl.Trace.t} does not carry them). *)
val of_trace : Trace.t -> t Seq.t

(** Collect the sample entries back into an in-memory trace.
    @raise Trace.Non_monotonic like {!Tabv_psl.Trace.of_list}. *)
val to_trace : t Seq.t -> Trace.t

val pp : Format.formatter -> t -> unit
