open Tabv_psl

exception Format_error of { path : string; message : string }

type dict_entry = { name : string; kind : char }

type t = {
  ic : in_channel;
  path : string;
  meta : Meta.t;
  mutable dict : dict_entry array;
  mutable dict_read : bool;
  mutable values : Expr.value array;  (* current valuation *)
  mutable env_cache : (string * Expr.value) list;  (* last emitted env *)
  mutable have_prev : bool;
  mutable prev_time : int;
  mutable labels : string array;
  mutable prev_span_start : int;
  mutable n_samples : int;
  mutable n_spans : int;
  mutable finished : bool;
  mutable closed : bool;
}

let corrupt t message = raise (Format_error { path = t.path; message })

(* All reads funnel through [byte]; a clean EOF is only legal where
   [next] checks for it explicitly, so [byte] maps EOF to truncation. *)
let byte t () =
  match input_char t.ic with
  | c -> c
  | exception End_of_file -> corrupt t "truncated (unexpected end of file)"

let read_uint t =
  match Varint.read_uint (byte t) with
  | v -> v
  | exception Varint.Corrupt msg -> corrupt t msg

let read_zigzag t =
  match Varint.read_zigzag (byte t) with
  | v -> v
  | exception Varint.Corrupt msg -> corrupt t msg

let read_string t =
  let len = read_uint t in
  if len < 0 || len > Layout.max_string then corrupt t "oversized string field";
  let b = Bytes.create len in
  match really_input t.ic b 0 len with
  | () -> Bytes.unsafe_to_string b
  | exception End_of_file -> corrupt t "truncated (unexpected end of file)"

let open_file path =
  let ic = open_in_bin path in
  let t =
    {
      ic;
      path;
      meta = { Meta.model = ""; seed = 0; ops = 0; engine = "" };
      dict = [||];
      dict_read = false;
      values = [||];
      env_cache = [];
      have_prev = false;
      prev_time = 0;
      labels = [||];
      prev_span_start = 0;
      n_samples = 0;
      n_spans = 0;
      finished = false;
      closed = false;
    }
  in
  try
    let magic = Bytes.create (String.length Layout.magic) in
    (match really_input ic magic 0 (Bytes.length magic) with
     | () -> ()
     | exception End_of_file -> corrupt t "not a tabv trace (file too short)");
    let magic = Bytes.unsafe_to_string magic in
    let prefix = String.sub Layout.magic 0 (String.length Layout.magic - 1) in
    if not (String.length magic > 0 && String.sub magic 0 (String.length prefix) = prefix)
    then corrupt t "not a tabv trace (bad magic)";
    let version = Char.code magic.[String.length magic - 1] in
    if version <> Layout.version then
      corrupt t
        (Printf.sprintf "unsupported trace format version %d (this tabv reads %d)"
           version Layout.version);
    let model = read_string t in
    let seed = read_zigzag t in
    let ops = read_uint t in
    let engine = read_string t in
    { t with meta = { Meta.model; seed; ops; engine } }
  with e ->
    close_in_noerr ic;
    raise e

let meta t = t.meta
let signals t = Array.to_list (Array.map (fun e -> e.name) t.dict)
let samples t = t.n_samples
let spans t = t.n_spans

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_in_noerr t.ic
  end

let read_dict t =
  if t.dict_read then corrupt t "duplicate signal dictionary";
  let n = read_uint t in
  if n < 0 || n > Layout.max_dictionary then
    corrupt t "oversized signal dictionary";
  t.dict <-
    Array.init n (fun _ ->
        let name = read_string t in
        let kind = byte t () in
        if kind <> Layout.kind_bool && kind <> Layout.kind_int then
          corrupt t "unknown signal kind";
        { name; kind });
  t.dict_read <- true;
  t.values <- Array.make n (Expr.VBool false)

let read_bits t count =
  let bytes = (count + 7) / 8 in
  let packed = Bytes.create bytes in
  (match really_input t.ic packed 0 bytes with
   | () -> ()
   | exception End_of_file -> corrupt t "truncated (unexpected end of file)");
  fun i -> Char.code (Bytes.get packed (i / 8)) land (1 lsl (i mod 8)) <> 0

let read_sample t =
  if not t.dict_read then corrupt t "sample before signal dictionary";
  let dt = read_uint t in
  let time =
    if t.have_prev then begin
      if dt <= 0 then corrupt t "non-increasing sample time";
      t.prev_time + dt
    end
    else dt
  in
  let first = not t.have_prev in
  let n = Array.length t.dict in
  let changed = read_bits t n in
  let changed_bools = ref [] in
  let changed_ints = ref 0 in
  for i = n - 1 downto 0 do
    if changed i then
      if t.dict.(i).kind = Layout.kind_bool then
        changed_bools := i :: !changed_bools
      else incr changed_ints
  done;
  let changed_bools = Array.of_list !changed_bools in
  let bool_bits = read_bits t (Array.length changed_bools) in
  Array.iteri
    (fun j i -> t.values.(i) <- Expr.VBool (bool_bits j))
    changed_bools;
  for i = 0 to n - 1 do
    if changed i && t.dict.(i).kind = Layout.kind_int then
      t.values.(i) <- Expr.VInt (read_zigzag t)
  done;
  if (not t.have_prev) && n > 0 then
    (* The first sample must carry every signal. *)
    for i = 0 to n - 1 do
      if not (changed i) then corrupt t "first sample is missing signals"
    done;
  t.have_prev <- true;
  t.prev_time <- time;
  t.n_samples <- t.n_samples + 1;
  (* A change-mask-0 sample re-emits the previous env, physically —
     no allocation, and downstream consumers (the offline stutter
     fast path) can detect stuttering with one pointer compare. *)
  let env =
    if (not first) && Array.length changed_bools = 0 && !changed_ints = 0 then
      t.env_cache
    else List.init n (fun i -> (t.dict.(i).name, t.values.(i)))
  in
  t.env_cache <- env;
  Entry.Sample { time; env }

let read_span t =
  let id = read_uint t in
  if id < 0 || id >= Array.length t.labels then corrupt t "unknown span label";
  let start_time = t.prev_span_start + read_zigzag t in
  let duration = read_uint t in
  if duration < 0 then corrupt t "negative span duration";
  t.prev_span_start <- start_time;
  t.n_spans <- t.n_spans + 1;
  Entry.Span { label = t.labels.(id); start_time; end_time = start_time + duration }

let read_end t =
  let want_samples = read_uint t in
  let want_spans = read_uint t in
  if want_samples <> t.n_samples || want_spans <> t.n_spans then
    corrupt t
      (Printf.sprintf
         "end record disagrees with contents (%d/%d samples, %d/%d spans)"
         t.n_samples want_samples t.n_spans want_spans);
  (match input_char t.ic with
   | _ -> corrupt t "trailing bytes after end record"
   | exception End_of_file -> ());
  t.finished <- true

let rec next t =
  if t.finished || t.closed then None
  else
    match input_char t.ic with
    | exception End_of_file ->
      corrupt t "truncated (no end record)"
    | tag when tag = Layout.tag_dict ->
      read_dict t;
      next t
    | tag when tag = Layout.tag_sample -> Some (read_sample t)
    | tag when tag = Layout.tag_label ->
      t.labels <- Array.append t.labels [| read_string t |];
      next t
    | tag when tag = Layout.tag_span -> Some (read_span t)
    | tag when tag = Layout.tag_end ->
      read_end t;
      None
    | tag -> corrupt t (Printf.sprintf "unknown record tag 0x%02x" (Char.code tag))

let to_seq t =
  let rec seq () =
    match next t with
    | None -> Seq.Nil
    | Some entry -> Seq.Cons (entry, seq)
  in
  seq

let with_file path f =
  let t = open_file path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let read_trace path =
  with_file path (fun t ->
      let entries = ref [] in
      let rec drain () =
        match next t with
        | None -> ()
        | Some (Entry.Sample { time; env }) ->
          entries := { Trace.time; env } :: !entries;
          drain ()
        | Some (Entry.Span _) -> drain ()
      in
      drain ();
      (t.meta, Trace.of_list (List.rev !entries)))
