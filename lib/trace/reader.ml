open Tabv_psl
module Crc32 = Tabv_core.Crc32

exception
  Format_error of {
    path : string;
    message : string;
    offset : int;
    valid_prefix : int;
  }

type dict_entry = { name : string; kind : char }

type t = {
  ic : in_channel;
  path : string;
  meta : Meta.t;
  tbl : int array;  (* cached CRC table for the per-byte fold *)
  mutable dict : dict_entry array;
  mutable dict_read : bool;
  mutable values : Expr.value array;  (* current valuation *)
  mutable env_cache : (string * Expr.value) list;  (* last emitted env *)
  mutable have_prev : bool;
  mutable prev_time : int;
  mutable labels : string array;
  mutable prev_span_start : int;
  mutable n_samples : int;
  mutable n_spans : int;
  mutable pos : int;  (* bytes consumed *)
  mutable crc : int;  (* raw CRC register of the current block *)
  mutable last_good : int;  (* offset after the last verified block *)
  mutable finished : bool;
  mutable closed : bool;
}

let corrupt t message =
  raise
    (Format_error
       { path = t.path; message; offset = t.pos; valid_prefix = t.last_good })

(* All reads funnel through [byte] / [really_read]: they keep [pos]
   and the running block CRC, so corruption reports carry the exact
   offset and the verified (salvageable) prefix.  A clean EOF is only
   legal where [next] checks for it explicitly, so EOF maps to
   truncation.  [t.crc] holds the raw (uncomplemented) register —
   see {!Crc32.Raw} — so the per-byte fold is one table lookup. *)
let byte t () =
  match input_char t.ic with
  | c ->
    t.pos <- t.pos + 1;
    t.crc <-
      Array.unsafe_get t.tbl ((t.crc lxor Char.code c) land 0xFF)
      lxor (t.crc lsr 8);
    c
  | exception End_of_file -> corrupt t "truncated (unexpected end of file)"

let really_read t len =
  let b = Bytes.create len in
  match really_input t.ic b 0 len with
  | () ->
    let s = Bytes.unsafe_to_string b in
    t.pos <- t.pos + len;
    t.crc <- Crc32.Raw.feed_string t.tbl t.crc s ~pos:0 ~len;
    s
  | exception End_of_file -> corrupt t "truncated (unexpected end of file)"

(* The 4 CRC bytes closing a block: compared against the running CRC
   of the block's body, excluded from it themselves.  A verified block
   extends the salvageable prefix. *)
let end_block t =
  let expect = Crc32.Raw.finish t.crc in
  let b = Bytes.create Layout.crc_bytes in
  (match really_input t.ic b 0 Layout.crc_bytes with
   | () -> t.pos <- t.pos + Layout.crc_bytes
   | exception End_of_file -> corrupt t "truncated (unexpected end of file)");
  let stored = ref 0 in
  for i = Layout.crc_bytes - 1 downto 0 do
    stored := (!stored lsl 8) lor Char.code (Bytes.get b i)
  done;
  if !stored <> expect then corrupt t "record checksum mismatch";
  t.crc <- Crc32.Raw.start;
  t.last_good <- t.pos

let read_uint t =
  match Varint.read_uint (byte t) with
  | v -> v
  | exception Varint.Corrupt msg -> corrupt t msg

let read_zigzag t =
  match Varint.read_zigzag (byte t) with
  | v -> v
  | exception Varint.Corrupt msg -> corrupt t msg

let read_string t =
  let len = read_uint t in
  if len < 0 || len > Layout.max_string then corrupt t "oversized string field";
  really_read t len

let open_file path =
  let ic = open_in_bin path in
  let t =
    {
      ic;
      path;
      meta = { Meta.model = ""; seed = 0; ops = 0; engine = "" };
      dict = [||];
      dict_read = false;
      values = [||];
      env_cache = [];
      have_prev = false;
      prev_time = 0;
      labels = [||];
      prev_span_start = 0;
      n_samples = 0;
      n_spans = 0;
      pos = 0;
      tbl = Crc32.Raw.table ();
      crc = Crc32.Raw.start;
      last_good = 0;
      finished = false;
      closed = false;
    }
  in
  try
    let magic = Bytes.create (String.length Layout.magic) in
    (match really_input ic magic 0 (Bytes.length magic) with
     | () -> t.pos <- Bytes.length magic
     | exception End_of_file -> corrupt t "not a tabv trace (file too short)");
    let magic = Bytes.unsafe_to_string magic in
    let prefix = String.sub Layout.magic 0 (String.length Layout.magic - 1) in
    if not (String.length magic > 0 && String.sub magic 0 (String.length prefix) = prefix)
    then corrupt t "not a tabv trace (bad magic)";
    let version = Char.code magic.[String.length magic - 1] in
    if version <> Layout.version then
      corrupt t
        (Printf.sprintf "unsupported trace format version %d (this tabv reads %d)"
           version Layout.version);
    (* The meta header is the first CRC-framed block. *)
    let model = read_string t in
    let seed = read_zigzag t in
    let ops = read_uint t in
    let engine = read_string t in
    end_block t;
    { t with meta = { Meta.model; seed; ops; engine } }
  with e ->
    close_in_noerr ic;
    raise e

let meta t = t.meta
let signals t = Array.to_list (Array.map (fun e -> e.name) t.dict)
let samples t = t.n_samples
let spans t = t.n_spans
let valid_prefix t = t.last_good

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_in_noerr t.ic
  end

let read_dict t =
  if t.dict_read then corrupt t "duplicate signal dictionary";
  let n = read_uint t in
  if n < 0 || n > Layout.max_dictionary then
    corrupt t "oversized signal dictionary";
  t.dict <-
    Array.init n (fun _ ->
        let name = read_string t in
        let kind = byte t () in
        if kind <> Layout.kind_bool && kind <> Layout.kind_int then
          corrupt t "unknown signal kind";
        { name; kind });
  t.dict_read <- true;
  t.values <- Array.make n (Expr.VBool false)

let read_bits t count =
  let bytes = (count + 7) / 8 in
  let packed = really_read t bytes in
  fun i -> Char.code packed.[i / 8] land (1 lsl (i mod 8)) <> 0

let read_sample t =
  if not t.dict_read then corrupt t "sample before signal dictionary";
  let dt = read_uint t in
  let time =
    if t.have_prev then begin
      if dt <= 0 then corrupt t "non-increasing sample time";
      t.prev_time + dt
    end
    else dt
  in
  let first = not t.have_prev in
  let n = Array.length t.dict in
  let changed = read_bits t n in
  let changed_bools = ref [] in
  let changed_ints = ref 0 in
  for i = n - 1 downto 0 do
    if changed i then
      if t.dict.(i).kind = Layout.kind_bool then
        changed_bools := i :: !changed_bools
      else incr changed_ints
  done;
  let changed_bools = Array.of_list !changed_bools in
  let bool_bits = read_bits t (Array.length changed_bools) in
  Array.iteri
    (fun j i -> t.values.(i) <- Expr.VBool (bool_bits j))
    changed_bools;
  for i = 0 to n - 1 do
    if changed i && t.dict.(i).kind = Layout.kind_int then
      t.values.(i) <- Expr.VInt (read_zigzag t)
  done;
  if (not t.have_prev) && n > 0 then
    (* The first sample must carry every signal. *)
    for i = 0 to n - 1 do
      if not (changed i) then corrupt t "first sample is missing signals"
    done;
  t.have_prev <- true;
  t.prev_time <- time;
  t.n_samples <- t.n_samples + 1;
  (* A change-mask-0 sample re-emits the previous env, physically —
     no allocation, and downstream consumers (the offline stutter
     fast path) can detect stuttering with one pointer compare. *)
  let env =
    if (not first) && Array.length changed_bools = 0 && !changed_ints = 0 then
      t.env_cache
    else List.init n (fun i -> (t.dict.(i).name, t.values.(i)))
  in
  t.env_cache <- env;
  Entry.Sample { time; env }

let read_span t =
  let id = read_uint t in
  if id < 0 || id >= Array.length t.labels then corrupt t "unknown span label";
  let start_time = t.prev_span_start + read_zigzag t in
  let duration = read_uint t in
  if duration < 0 then corrupt t "negative span duration";
  t.prev_span_start <- start_time;
  t.n_spans <- t.n_spans + 1;
  Entry.Span { label = t.labels.(id); start_time; end_time = start_time + duration }

let read_end t =
  let want_samples = read_uint t in
  let want_spans = read_uint t in
  if want_samples <> t.n_samples || want_spans <> t.n_spans then
    corrupt t
      (Printf.sprintf
         "end record disagrees with contents (%d/%d samples, %d/%d spans)"
         t.n_samples want_samples t.n_spans want_spans);
  end_block t;
  (match input_char t.ic with
   | _ ->
     t.pos <- t.pos + 1;
     corrupt t "trailing bytes after end record"
   | exception End_of_file -> ());
  t.finished <- true

(* Each tag opens a new CRC-framed block; the entry is only surfaced
   once [end_block] has verified it, so a corrupted record can never
   escape as decoded data. *)
let rec next t =
  if t.finished || t.closed then None
  else begin
    t.crc <- Crc32.Raw.start;
    match input_char t.ic with
    | exception End_of_file ->
      corrupt t "truncated (no end record)"
    | tag ->
      t.pos <- t.pos + 1;
      t.crc <-
        Array.unsafe_get t.tbl ((t.crc lxor Char.code tag) land 0xFF)
        lxor (t.crc lsr 8);
      if tag = Layout.tag_dict then begin
        read_dict t;
        end_block t;
        next t
      end
      else if tag = Layout.tag_sample then begin
        let entry = read_sample t in
        end_block t;
        Some entry
      end
      else if tag = Layout.tag_label then begin
        let label = read_string t in
        end_block t;
        t.labels <- Array.append t.labels [| label |];
        next t
      end
      else if tag = Layout.tag_span then begin
        let entry = read_span t in
        end_block t;
        Some entry
      end
      else if tag = Layout.tag_end then begin
        read_end t;
        None
      end
      else corrupt t (Printf.sprintf "unknown record tag 0x%02x" (Char.code tag))
  end

let to_seq t =
  let rec seq () =
    match next t with
    | None -> Seq.Nil
    | Some entry -> Seq.Cons (entry, seq)
  in
  seq

let with_file path f =
  let t = open_file path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let read_trace path =
  with_file path (fun t ->
      let entries = ref [] in
      let rec drain () =
        match next t with
        | None -> ()
        | Some (Entry.Sample { time; env }) ->
          entries := { Trace.time; env } :: !entries;
          drain ()
        | Some (Entry.Span _) -> drain ()
      in
      drain ();
      (t.meta, Trace.of_list (List.rev !entries)))
