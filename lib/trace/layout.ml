(* Version 2: every record after the 8-byte magic — the meta header
   included — is a CRC32-framed block: the record bytes followed by 4
   little-endian CRC bytes over them.  A reader verifies the CRC at
   each block boundary before surfacing the decoded entry, so a
   flipped bit or a torn tail is detected at the damaged block, and
   everything before it is a salvageable prefix. *)
let version = 2
let magic = "tabvtrc" ^ String.make 1 (Char.chr version)
let crc_bytes = 4
let tag_dict = '\x01'
let tag_sample = '\x02'
let tag_label = '\x03'
let tag_span = '\x04'
let tag_end = '\xfe'
let kind_bool = '\x00'
let kind_int = '\x01'
let max_string = 1 lsl 20
let max_dictionary = 1 lsl 16
