(** LEB128-style variable-length integer codec over the full 63-bit
    native [int] range.

    [write_uint]/[read_uint] treat the int as its 63-bit pattern (so a
    negative int round-trips, at up to 9 bytes); [write_zigzag]/
    [read_zigzag] map small-magnitude signed values to short encodings
    first.  Readers raise {!Corrupt} on overlong or truncated input. *)

exception Corrupt of string

val write_uint : Buffer.t -> int -> unit
val write_zigzag : Buffer.t -> int -> unit

(** [read_uint next] pulls bytes from [next] (which raises
    [End_of_file] when exhausted).
    @raise Corrupt on an encoding wider than 63 bits.
    @raise End_of_file like [next]. *)
val read_uint : (unit -> char) -> int

val read_zigzag : (unit -> char) -> int
