(** LEB128-style variable-length integer codec over the native [int]
    range.

    [write_uint]/[read_uint] carry non-negative ints (62 magnitude
    bits); [write_zigzag]/[read_zigzag] carry signed ints over the
    full 63-bit pattern, mapping small magnitudes to short encodings.
    Readers raise {!Corrupt} on overlong or truncated input. *)

exception Corrupt of string

val write_uint : Buffer.t -> int -> unit
val write_zigzag : Buffer.t -> int -> unit

(** [read_uint next] pulls bytes from [next] (which raises
    [End_of_file] when exhausted).
    @raise Corrupt on an encoding wider than 63 bits, or one whose
    value does not fit the 62 non-negative magnitude bits (a decoded
    uint is never negative).
    @raise End_of_file like [next]. *)
val read_uint : (unit -> char) -> int

val read_zigzag : (unit -> char) -> int
