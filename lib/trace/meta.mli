(** Run-identification header of a trace file.

    The tuple identifies the exact simulation that produced the
    evaluation points: the DUV model and abstraction level (the
    [model] name, e.g. ["des56-tlm-at"]), the seeded workload and its
    size, and the simulation kernel engine.  Offline re-checking
    reports stamp these fields into their ["run"] section, which is
    what makes a recheck report byte-comparable to the live check of
    the same run. *)
type t = {
  model : string;  (** CLI model name (DUV + abstraction level) *)
  seed : int;  (** workload seed *)
  ops : int;  (** workload size (operations / pixels) *)
  engine : string;  (** simulation kernel engine name *)
}

val equal : t -> t -> bool

(** Stable hex digest of the tuple (plus the format version) — the
    trace fingerprint quoted by mismatch diagnostics. *)
val fingerprint : t -> string

(** ["des56-rtl seed=42 ops=200 engine=classic (fingerprint ...)"] *)
val pp : Format.formatter -> t -> unit
