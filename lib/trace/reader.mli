open Tabv_psl

(** Streaming binary trace reader.

    Memory is bounded by the signal dictionary (the current valuation
    is kept for change-mask decoding), not by the trace length — a
    multi-gigabyte campaign trace replays in O(signal count) live
    words.  Every structural problem — wrong magic, unsupported
    version, truncation (EOF before the end record), a failed
    per-block CRC, counts that do not match the end record, trailing
    bytes — raises {!Format_error} with the offending path, the byte
    [offset] of the damage, and the [valid_prefix]: the byte length of
    the CRC-verified prefix before it, i.e. exactly what a salvage
    tool may keep.  A damaged file is refused, never silently misread,
    and a decoded entry is only ever surfaced after its block's CRC
    has verified. *)

type t

exception
  Format_error of {
    path : string;
    message : string;
    offset : int;  (** byte position at which the damage was detected *)
    valid_prefix : int;
        (** bytes of verified, salvageable prefix before the damage *)
  }

(** Open the file and decode the header.
    @raise Format_error on a non-trace file or unsupported version.
    @raise Sys_error like [open_in_bin]. *)
val open_file : string -> t

val meta : t -> Meta.t

(** Signal dictionary, in sample order — [[]] until the first sample
    record has been read (or for an empty trace). *)
val signals : t -> string list

(** Next entry, [None] once the end record has been consumed.
    @raise Format_error on corruption or truncation. *)
val next : t -> Entry.t option

(** Samples/spans decoded so far. *)
val samples : t -> int

val spans : t -> int

(** Bytes of CRC-verified prefix consumed so far — what {!Format_error}
    would report as [valid_prefix] if the next block were damaged. *)
val valid_prefix : t -> int

val close : t -> unit

(** One-shot ephemeral sequence of the remaining entries (consuming
    [t]; do not reuse after forcing). *)
val to_seq : t -> Entry.t Seq.t

(** [with_file path f] opens, runs [f], closes (also on exception). *)
val with_file : string -> (t -> 'a) -> 'a

(** Convenience: stream the whole file once, returning the meta and
    the materialized sample trace (spans discarded).  For tooling and
    tests — re-checking should stay on the streaming path. *)
val read_trace : string -> Meta.t * Trace.t
