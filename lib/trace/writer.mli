open Tabv_psl

(** Streaming binary trace writer.

    Create one per recorded run, feed it {!sample}/{!span} calls from
    the testbench hooks (the same hooks that feed the in-memory
    {!Tabv_sim.Trace_rec} recorder), and {!close} it when the
    simulation ends.  Memory is O(signal count): only the previous
    valuation (for change masks) and at most one pending sample are
    retained.

    Same-instant samples overwrite each other (last-wins), matching
    {!Tabv_sim.Trace_rec.sample}: a TLM run may complete several
    transactions in one instant and checkers observe the final
    environment of the instant.  The pending-sample buffer is what
    makes this streamable — a sample is only encoded once a strictly
    later one (or {!close}) proves it final.

    Every record is written as one CRC32-framed block through
    {!Tabv_core.Io} (one write boundary per record under the
    [Fault.Io] hook), and {!close} fsyncs before releasing the file —
    a crash mid-run leaves a trace whose verified prefix is exactly
    the committed records. *)
type t

(** [create ~path meta] opens [path] for writing and emits the header.
    @raise Tabv_core.Io.Io_error when the file cannot be created or
    written. *)
val create : path:string -> Meta.t -> t

(** Record the full environment at [time].  The first sample fixes the
    signal dictionary (names, order, bool/int kinds); every later
    sample must present the same signals in the same order.
    @raise Invalid_argument on time going backwards, a dictionary
    mismatch, or a value changing kind. *)
val sample : t -> time:int -> (string * Expr.value) list -> unit

(** Record one completed transaction span.
    @raise Invalid_argument if [end_time < start_time]. *)
val span : t -> label:string -> start_time:int -> end_time:int -> unit

(** Samples committed so far (the pending one counts). *)
val samples : t -> int

val spans : t -> int

(** Bytes written so far (header included; pending sample excluded). *)
val bytes_written : t -> int

(** Flush the pending sample, write the end record (sample/span
    totals — the reader's truncation check) and close the file.
    Idempotent. *)
val close : t -> unit

(** [with_file ~path meta f] = create, run [f], close (also on
    exception). *)
val with_file : path:string -> Meta.t -> (t -> 'a) -> 'a
