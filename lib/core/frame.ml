(* Length-prefixed frame protocol shared by every tabv peer-to-peer
   channel: the subprocess-executor worker pipes ([Tabv_campaign.Wire]
   re-exports this module) and the [tabv serve] client sockets.

   Two header formats share one decoder infrastructure:

   - {e plain} — 8 lowercase hex digits (payload byte length) + '\n'.
     The historical worker-pipe header; both ends are always the same
     binary, so no version negotiation is needed.
   - {e versioned} — 2 lowercase hex digits (protocol version) +
     8 lowercase hex digits (payload byte length) + '\n'.  Used on
     sockets where the two ends may be different tabv builds: every
     frame names the protocol it speaks, and a mismatch surfaces as a
     {!Protocol_error} naming both versions instead of a garbled
     stream.

   Both are fixed-width so a reader consumes an exact header before
   the body — no scanning, no ambiguity with payload bytes. *)

let header_length = 9
let versioned_header_length = 11

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | _ -> None

(* [hex_field s off len] decodes [len] lowercase hex digits of [s]
   starting at [off]; [None] on any non-hex byte. *)
let hex_field s off len =
  let rec go acc i =
    if i = len then Some acc
    else
      match hex_value s.[off + i] with
      | Some v -> go ((acc * 16) + v) (i + 1)
      | None -> None
  in
  go 0 0

let encode ?version payload =
  match version with
  | None -> Printf.sprintf "%08x\n%s" (String.length payload) payload
  | Some v ->
    if v < 0 || v > 0xff then
      invalid_arg "Frame.encode: version must be in [0, 255]";
    Printf.sprintf "%02x%08x\n%s" v (String.length payload) payload

let decode_header header =
  if String.length header <> header_length || header.[8] <> '\n' then None
  else hex_field header 0 8

let decode_versioned_header header =
  if
    String.length header <> versioned_header_length
    || header.[versioned_header_length - 1] <> '\n'
  then None
  else
    match (hex_field header 0 2, hex_field header 2 8) with
    | Some v, Some len -> Some (v, len)
    | _ -> None

exception Protocol_error of string

let version_mismatch ~got ~expected =
  Protocol_error
    (Printf.sprintf
       "frame protocol version mismatch: peer speaks v%d, this side speaks \
        v%d"
       got expected)

let write ?version oc payload =
  output_string oc (encode ?version payload);
  flush oc

(* Blocking channel read of one frame; [None] on a clean EOF at a
   frame boundary. *)
let read ?expect_version ic =
  let hlen =
    match expect_version with
    | None -> header_length
    | Some _ -> versioned_header_length
  in
  match really_input_string ic hlen with
  | exception End_of_file -> None
  | header ->
    let len =
      match expect_version with
      | None ->
        (match decode_header header with
         | Some len -> len
         | None -> failwith "frame: malformed header")
      | Some expected ->
        (match decode_versioned_header header with
         | Some (v, _) when v <> expected ->
           raise (version_mismatch ~got:v ~expected)
         | Some (_, len) -> len
         | None -> failwith "frame: malformed versioned header")
    in
    (match really_input_string ic len with
     | payload -> Some payload
     | exception End_of_file -> failwith "frame: truncated body")

(* Incremental frame accumulator for non-blocking reads: feed raw
   chunks, pop complete frames.

   [max_frame] bounds the body length a header may announce.  Without
   it a single corrupted (or hostile) length prefix — "ffffffff\n" —
   would make the decoder buffer 4 GiB before ever popping a frame;
   with it the oversized header is a {!Protocol_error} the moment it
   is decoded, while the buffered bytes are still tiny.

   [xform] is an interpose hook in the style of [Signal.interpose]:
   fault-injection harnesses rewrite raw inbound chunks (tear, drop,
   corrupt) before the decoder sees them.  Production paths never set
   it, so the cost when unarmed is one option check per feed. *)
type stream = {
  mutable buffered : string;
  expect_version : int option;
  max_frame : int option;
  mutable xform : (string -> string) option;
}

let stream ?expect_version ?max_frame () =
  (match max_frame with
   | Some m when m < 0 -> invalid_arg "Frame.stream: max_frame must be >= 0"
   | _ -> ());
  { buffered = ""; expect_version; max_frame; xform = None }

let stream_length s = String.length s.buffered
let interpose s f = s.xform <- Some f

let feed s chunk =
  let chunk =
    match s.xform with
    | None -> chunk
    | Some f -> f chunk
  in
  if chunk <> "" then s.buffered <- s.buffered ^ chunk

let pop s =
  let len = String.length s.buffered in
  let hlen =
    match s.expect_version with
    | None -> header_length
    | Some _ -> versioned_header_length
  in
  if len < hlen then None
  else begin
    let body =
      match s.expect_version with
      | None ->
        (match decode_header (String.sub s.buffered 0 hlen) with
         | Some body -> body
         | None -> raise (Protocol_error "malformed frame header"))
      | Some expected ->
        (match decode_versioned_header (String.sub s.buffered 0 hlen) with
         | Some (v, _) when v <> expected ->
           raise (version_mismatch ~got:v ~expected)
         | Some (_, body) -> body
         | None -> raise (Protocol_error "malformed versioned frame header"))
    in
    (match s.max_frame with
     | Some bound when body > bound ->
       raise
         (Protocol_error
            (Printf.sprintf
               "frame body of %d bytes exceeds the %d-byte frame bound" body
               bound))
     | _ -> ());
    if len < hlen + body then None
    else begin
      let payload = String.sub s.buffered hlen body in
      s.buffered <- String.sub s.buffered (hlen + body) (len - hlen - body);
      Some payload
    end
  end
