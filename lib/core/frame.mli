(** Length-prefixed frame protocol shared by every tabv peer-to-peer
    channel: the subprocess-executor worker pipes
    ({!Tabv_campaign.Wire} re-exports this module) and the
    [tabv serve] client sockets.

    Two fixed-width header formats:

    {ul
    {- {e plain} — 8 lowercase hex digits (payload byte length) +
       ['\n'].  The historical worker-pipe header; both pipe ends are
       always the same binary, so no version negotiation is needed.}
    {- {e versioned} — 2 lowercase hex digits (protocol version) +
       8 lowercase hex digits (payload byte length) + ['\n'].  Used on
       sockets where the two ends may be different tabv builds: every
       frame names the protocol it speaks, and a mismatch surfaces as
       a {!Protocol_error} naming both versions instead of a garbled
       stream.}} *)

(** Plain header byte length (8 hex digits + newline). *)
val header_length : int

(** Versioned header byte length (2 + 8 hex digits + newline). *)
val versioned_header_length : int

(** [encode ?version payload] — one whole frame.  Plain header when
    [version] is absent; versioned otherwise.
    @raise Invalid_argument when [version] is outside [[0, 255]]. *)
val encode : ?version:int -> string -> string

(** [None] on anything that is not 8 hex digits + newline. *)
val decode_header : string -> int option

(** [(version, length)], or [None] on a malformed header. *)
val decode_versioned_header : string -> (int * int) option

exception Protocol_error of string

(** The error both the channel reader and the incremental decoder
    raise on a version-field mismatch (as {!Protocol_error}). *)
val version_mismatch : got:int -> expected:int -> exn

(** Write one frame and flush.  [version] selects the header format
    and must match what the peer's reader expects. *)
val write : ?version:int -> out_channel -> string -> unit

(** Blocking read of one frame.  [None] on a clean EOF at a frame
    boundary.  With [expect_version] the versioned header is read and
    the version field checked.
    @raise Protocol_error on a version mismatch.
    @raise Failure on a malformed header or truncated body. *)
val read : ?expect_version:int -> in_channel -> string option

(** {2 Incremental frame accumulator}

    For non-blocking reads: feed raw chunks, pop complete frames. *)

type stream

(** [stream ?expect_version ?max_frame ()] — a fresh decoder.  With
    [expect_version] it decodes versioned headers and checks the
    version field of every frame.  With [max_frame] any header
    announcing a body longer than [max_frame] bytes is a
    {!Protocol_error} the moment the header is decoded — without it a
    single corrupted length prefix would make the decoder buffer up to
    4 GiB waiting for a body that never comes.
    @raise Invalid_argument when [max_frame < 0]. *)
val stream : ?expect_version:int -> ?max_frame:int -> unit -> stream

(** Bytes currently buffered (useful to detect a partial trailing
    frame after EOF). *)
val stream_length : stream -> int

(** [interpose s f] rewrites every subsequently fed chunk through [f]
    before the decoder sees it — a fault-injection hook in the style
    of [Signal.interpose] (tear, truncate, corrupt raw inbound bytes).
    Production paths never install one; the unarmed cost is one option
    check per {!feed}. *)
val interpose : stream -> (string -> string) -> unit

val feed : stream -> string -> unit

(** Pop the next complete frame, if any.
    @raise Protocol_error on a malformed buffered header, a version
    mismatch, or a body length over the stream's [max_frame]. *)
val pop : stream -> string option
