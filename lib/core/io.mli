(** Durable-file IO seam.

    Every byte the system intends to survive a crash — campaign
    journals, binary traces, report JSON, serve state files — is
    written through this module instead of raw [Out_channel]s.  That
    buys two things:

    {ul
    {- One place that implements the crash-consistency idioms
       correctly: buffered writes flushed as whole records,
       [fsync]-before-ack, and temp-file + [fsync] + atomic-[rename]
       ({!write_file_atomic}).}
    {- An {e interpose hook} — the same methodology as
       [Signal.interpose] and [Frame.interpose] — that lets [Fault.Io]
       compile seeded filesystem-fault plans (short writes, ENOSPC,
       EIO, lying fsyncs, power cuts) onto the real write path with
       zero cost when no hook is installed.}}

    Failures surface as {!Io_error} carrying the operation, the path
    and the underlying [Unix.error]; callers never see a raw
    [Unix.Unix_error] from this module.

    Thread-safety: a {!t} is single-writer (callers serialize, e.g.
    [Journal] holds its mutex across append+fsync); the interpose hook
    is global and read atomically, so installing/clearing from one
    domain while another writes is well-defined. *)

(** A failed durable-IO primitive.  [op] is one of ["write"],
    ["fsync"], ["rename"], ["close"], ["open"]. *)
exception Io_error of { op : string; path : string; error : Unix.error }

(** A buffered writable file. *)
type t

(** {2 Interpose hook} *)

(** Verdict for one flushed write of [len] bytes at [offset]. *)
type write_decision =
  | Write_through  (** perform the write *)
  | Write_short of { bytes : int; error : Unix.error }
      (** write only the first [bytes] bytes, then fail with [error] —
          a torn write, as left by ENOSPC or a power cut *)
  | Write_error of Unix.error  (** write nothing, fail with [error] *)

(** Verdict for one [fsync]. *)
type fsync_decision =
  | Fsync_through  (** perform the fsync *)
  | Fsync_error of Unix.error  (** fail with [error] *)
  | Fsync_lost
      (** report success {e without} syncing — a lying disk cache; the
          data is not durable and a simulated crash may drop it *)

(** Verdict for a rename or close. *)
type op_decision = Op_through | Op_error of Unix.error

type hook = {
  on_write : path:string -> offset:int -> len:int -> write_decision;
      (** consulted once per flushed chunk; [offset] is the number of
          bytes already flushed to this file by its {!t} *)
  on_fsync : path:string -> fsync_decision;
  on_rename : src:string -> dst:string -> op_decision;
  on_close : path:string -> op_decision;
}

(** Install [hook] globally (replacing any previous one).  Affects
    every subsequent primitive until {!clear_interpose}. *)
val interpose : hook -> unit

val clear_interpose : unit -> unit

(** Whether a hook is currently installed. *)
val interposed : unit -> bool

(** {2 Writable files} *)

(** Create/truncate [path] for writing. *)
val create : string -> t

(** Open [path] for appending (created if missing); the write offset
    reported to the hook starts at the current file size. *)
val append : string -> t

val path : t -> string

(** Bytes flushed to the file so far (the hook-visible offset). *)
val flushed : t -> int

(** Stage bytes in the buffer — no syscall, no hook consultation. *)
val write : t -> string -> unit

(** Push staged bytes to the file as one chunk (one hook decision). *)
val flush : t -> unit

(** {!flush}, then [fsync] (one hook decision each). *)
val fsync : t -> unit

(** Flush and close.  The descriptor is released even when the flush
    or the hook fails (the exception is re-raised after). *)
val close : t -> unit

(** Close, suppressing every error (the descriptor is released). *)
val close_noerr : t -> unit

(** {2 Whole-file helpers} *)

(** Atomic rename (consults the hook). *)
val rename : src:string -> dst:string -> unit

(** Suffix appended by {!temp_path} ([".tmp"]). *)
val temp_suffix : string

(** The sibling temp path for [path] ([path ^ ".tmp"]). *)
val temp_path : string -> string

val is_temp_path : string -> bool

(** [write_file_atomic ~path data] — write [data] to
    [temp_path path], [fsync] it, atomically [rename] it over [path],
    then best-effort [fsync] the directory.  On any failure the temp
    file is unlinked and the previous contents of [path] (if any) are
    untouched: readers see either the old file or the new one, never
    a torn mix. *)
val write_file_atomic : path:string -> string -> unit
