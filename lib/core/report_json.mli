(** Machine-readable (JSON) form of the methodology reports, for
    integration into verification flows and CI.

    The emitter is self-contained (no JSON library dependency) and
    produces deterministic, valid JSON: strings are escaped per RFC
    8259, keys appear in a fixed order. *)

(** Minimal JSON document model. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN/infinities print as [null] (RFC 8259) *)
  | String of string
  | List of json list
  | Assoc of (string * json) list

val to_string : json -> string

(** Raised by {!of_string} with 1-based position information. *)
exception Parse_error of { line : int; col : int; message : string }

(** Parse one RFC 8259 document (the inverse of {!to_string}, used for
    campaign manifests and read-back reports).  Numbers without
    fraction or exponent parse as [Int], all others as [Float].
    [\uXXXX] escapes are fully decoded to UTF-8, including
    supplementary-plane surrogate pairs ([😀] is the four
    UTF-8 bytes of U+1F600); unpaired surrogates are rejected.
    @raise Parse_error on malformed input. *)
val of_string : string -> json

(** [member key json] is the value of [key] when [json] is an [Assoc]
    containing it, [None] otherwise. *)
val member : string -> json -> json option

(** Per-property checker statistics as JSON, from the shared
    {!Tabv_obs.Checker_snapshot.t} record ([Monitor.snapshot] produces
    it directly).  Same keys as the legacy {!checker_stat_json}, plus
    ["engine"] and ["steps"]; [cache_hit_rate] is derived. *)
val checker_snapshot_json : Tabv_obs.Checker_snapshot.t -> json

(** Universe-independent subset of {!checker_snapshot_json}: same keys
    minus the transition-memo counters ([cache_hits], [cache_misses],
    [cache_hit_rate]), which depend on what else shares the
    process-wide checker universe and would make reports diverge
    across worker counts. *)
val checker_verdict_json : Tabv_obs.Checker_snapshot.t -> json

(** Version stamped into the ["schema"] key of {!verdict_report_json}. *)
val verdict_schema_version : int

(** The deterministic per-run verdict report shared by
    [tabv check --report-json], [tabv record --report-json] and
    [tabv recheck --report-json]:
    [{"schema":1,"run":{..},"properties":[..]}] with one
    {!checker_verdict_json} per property.  The contract: re-checking a
    recorded trace — any worker count, either executor — must emit
    bytes identical to the live check of the same run. *)
val verdict_report_json :
  run:(string * json) list ->
  properties:Tabv_obs.Checker_snapshot.t list ->
  unit ->
  json

(** Deprecated: use {!checker_snapshot_json}.  This legacy emitter
    takes the 12 statistics as plain labelled arguments (the record
    now lives in [Tabv_obs.Checker_snapshot]); it is kept only so
    pre-existing integrations keep compiling and will be removed.
    [failures] is [(activation_time, failure_time)] pairs in report
    order. *)
val checker_stat_json :
  property_name:string ->
  activations:int ->
  passes:int ->
  trivial_passes:int ->
  vacuous:bool ->
  peak_instances:int ->
  peak_distinct_states:int ->
  pending:int ->
  cache_hits:int ->
  cache_misses:int ->
  failures:(int * int) list ->
  unit ->
  json

(** Process-global transition-memo statistics as JSON (the checker
    engine's [cache_stats] record, field by field). *)
val engine_cache_json :
  cache_hits:int ->
  cache_misses:int ->
  cache_bypassed:int ->
  distinct_states:int ->
  distinct_transitions:int ->
  interned_formulas:int ->
  unit ->
  json

(** One {!Tabv_obs.Metrics.value} as tagged JSON:
    [{"kind":"counter","value":n}], [{"kind":"gauge","value":n}], or a
    histogram object with [count]/[sum]/[min]/[max] and cumulative-free
    per-bucket [{"le":bound,"count":n}] entries. *)
val metrics_value_json : Tabv_obs.Metrics.value -> json

(** A whole registry snapshot as one JSON object, preserving the
    snapshot's (sorted, deterministic) name order. *)
val metrics_snapshot_json : (string * Tabv_obs.Metrics.value) list -> json

(** Version stamped into the ["schema"] key of {!metrics_json}. *)
val metrics_schema_version : int

(** The versioned observability document emitted by
    [tabv check --metrics-json]:
    [{"schema":1,"run":{..},"metrics":{..},"properties":[..],"engine":{..}}].
    [run] is caller-supplied run identification (model, seed,
    simulated time, operation counts), [metrics] a registry snapshot,
    [properties] per-property {!checker_snapshot_json} documents and
    [engine] the {!engine_cache_json} document.  Every value is
    derived from simulation state — never wall-clock — so the document
    is byte-identical across runs with the same seed. *)
val metrics_json :
  run:(string * json) list ->
  metrics:(string * Tabv_obs.Metrics.value) list ->
  properties:json list ->
  engine:json ->
  unit ->
  json

(** One methodology report as JSON: input/output properties (printed
    in the property language), pipeline stages, applied Fig. 4 rules,
    substitutions, and review flags. *)
val of_report : Methodology.report -> json

(** A whole property set's reports: [{"clock_period": ..,
    "abstracted_signals": [..], "properties": [..]}]. *)
val of_reports : Methodology.report list -> json
