(** Machine-readable (JSON) form of the methodology reports, for
    integration into verification flows and CI.

    The emitter is self-contained (no JSON library dependency) and
    produces deterministic, valid JSON: strings are escaped per RFC
    8259, keys appear in a fixed order. *)

(** Minimal JSON document model. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN/infinities print as [null] (RFC 8259) *)
  | String of string
  | List of json list
  | Assoc of (string * json) list

val to_string : json -> string

(** Per-property checker statistics as JSON.  Plain arguments because
    [tabv_core] sits below the checker library; callers plug in the
    [Monitor] accessors (see [bin/tabv --stats] and the bench
    harness).  [failures] is [(activation_time, failure_time)] pairs
    in report order; [cache_hit_rate] is derived. *)
val checker_stat_json :
  property_name:string ->
  activations:int ->
  passes:int ->
  trivial_passes:int ->
  vacuous:bool ->
  peak_instances:int ->
  peak_distinct_states:int ->
  pending:int ->
  cache_hits:int ->
  cache_misses:int ->
  failures:(int * int) list ->
  unit ->
  json

(** Process-global transition-memo statistics as JSON (the checker
    engine's [cache_stats] record, field by field). *)
val engine_cache_json :
  cache_hits:int ->
  cache_misses:int ->
  cache_bypassed:int ->
  distinct_states:int ->
  distinct_transitions:int ->
  interned_formulas:int ->
  unit ->
  json

(** One methodology report as JSON: input/output properties (printed
    in the property language), pipeline stages, applied Fig. 4 rules,
    substitutions, and review flags. *)
val of_report : Methodology.report -> json

(** A whole property set's reports: [{"clock_period": ..,
    "abstracted_signals": [..], "properties": [..]}]. *)
val of_reports : Methodology.report list -> json
