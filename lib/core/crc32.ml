(* Table-driven reflected CRC-32.  The per-byte state kept in the
   accumulator is the complemented register, so intermediate values
   are themselves valid CRCs of the prefix — that is what lets the
   trace reader fold over bytes as it consumes them. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let table = Lazy.force table in
  let c = ref (lnot crc land 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  lnot !c land 0xFFFFFFFF

let string s = update 0 s ~pos:0 ~len:(String.length s)

let byte crc c =
  let table = Lazy.force table in
  let r = lnot crc land 0xFFFFFFFF in
  let r = table.((r lxor Char.code c) land 0xFF) lxor (r lsr 8) in
  lnot r land 0xFFFFFFFF

(* The uncomplemented shift register, for hot streaming folds (the
   trace reader consumes millions of bytes one at a time; the
   finalizing complements of [byte] would double its per-byte cost).
   [finish] recovers the CRC [update]/[byte] would have produced. *)
module Raw = struct
  let table () = Lazy.force table
  let start = 0xFFFFFFFF

  let feed_string tbl raw s ~pos ~len =
    let r = ref raw in
    for i = pos to pos + len - 1 do
      r :=
        Array.unsafe_get tbl ((!r lxor Char.code (String.unsafe_get s i)) land 0xFF)
        lxor (!r lsr 8)
    done;
    !r

  let finish raw = lnot raw land 0xFFFFFFFF
end

let to_hex crc = Printf.sprintf "%08x" (crc land 0xFFFFFFFF)

let of_hex s =
  if String.length s <> 8 then None
  else begin
    let ok = ref true in
    String.iter
      (fun c ->
        match c with
        | '0' .. '9' | 'a' .. 'f' -> ()
        | _ -> ok := false)
      s;
    if !ok then int_of_string_opt ("0x" ^ s) else None
  end
