(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

    The checksum that frames durable storage records: journal lines
    ({!Journal}) and trace blocks ([lib/trace]) carry one so that a
    torn or corrupted record is detected on read-back instead of
    replayed as garbage.  Incremental: [update] composes, so a reader
    can fold the CRC over bytes as it consumes them and compare at the
    record boundary without buffering. *)

(** [update crc s ~pos ~len] extends [crc] (initially [0]) with
    [s.[pos .. pos+len-1]].  The running value is the finalized CRC of
    everything fed so far — no separate [finish] step. *)
val update : int -> string -> pos:int -> len:int -> int

(** [string s] is [update 0 s ~pos:0 ~len:(String.length s)]. *)
val string : string -> int

(** [byte crc c] extends [crc] with the single byte [c]. *)
val byte : int -> char -> int

(** The uncomplemented shift register, for hot streaming folds where
    the finalizing complements of {!byte} are measurable (the trace
    reader folds one byte per call over whole files).  A caller keeps
    [start], advances it per byte with
    [tbl.((raw lxor Char.code c) land 0xFF) lxor (raw lsr 8)] against
    the [table ()] it cached, and {!Raw.finish} recovers exactly the
    value {!update}/{!byte} would have produced. *)
module Raw : sig
  (** The forced 256-entry table (allocate-free after the first
      call). *)
  val table : unit -> int array

  (** Register value for an empty input. *)
  val start : int

  (** Fold a substring into the register (the open-coded per-byte
      step, batched). *)
  val feed_string : int array -> int -> string -> pos:int -> len:int -> int

  (** The finalized CRC of everything fed. *)
  val finish : int -> int
end

(** Lowercase 8-digit hex rendering ([%08x]) — the journal line
    framing format. *)
val to_hex : int -> string

(** Inverse of {!to_hex}: [None] unless the string is exactly 8
    lowercase hex digits. *)
val of_hex : string -> int option
