(* The production path must stay indistinguishable from a plain
   buffered channel: one [Atomic.get] per flushed chunk is the entire
   cost of the seam when no hook is installed.  All the interesting
   behaviour — torn writes, lying fsyncs — lives in the hook, which
   only [Fault.Io] and the durability tests ever install. *)

exception Io_error of { op : string; path : string; error : Unix.error }

type write_decision =
  | Write_through
  | Write_short of { bytes : int; error : Unix.error }
  | Write_error of Unix.error

type fsync_decision = Fsync_through | Fsync_error of Unix.error | Fsync_lost
type op_decision = Op_through | Op_error of Unix.error

type hook = {
  on_write : path:string -> offset:int -> len:int -> write_decision;
  on_fsync : path:string -> fsync_decision;
  on_rename : src:string -> dst:string -> op_decision;
  on_close : path:string -> op_decision;
}

let current_hook : hook option Atomic.t = Atomic.make None
let interpose h = Atomic.set current_hook (Some h)
let clear_interpose () = Atomic.set current_hook None
let interposed () = Atomic.get current_hook <> None

type t = {
  path : string;
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable buf_len : int;
  mutable offset : int;
  mutable closed : bool;
}

let io_error ~op ~path error = raise (Io_error { op; path; error })

let wrap ~op ~path f =
  try f () with Unix.Unix_error (error, _, _) -> io_error ~op ~path error

let open_file ~op path flags =
  let fd = wrap ~op ~path (fun () -> Unix.openfile path flags 0o644) in
  { path; fd; buf = Bytes.create 8192; buf_len = 0; offset = 0; closed = false }

let create path =
  open_file ~op:"open" path Unix.[ O_WRONLY; O_CREAT; O_TRUNC ]

let append path =
  let t = open_file ~op:"open" path Unix.[ O_WRONLY; O_CREAT; O_APPEND ] in
  t.offset <-
    wrap ~op:"open" ~path (fun () -> Unix.lseek t.fd 0 Unix.SEEK_END);
  t

let path t = t.path
let flushed t = t.offset

let check_open t op =
  if t.closed then
    invalid_arg (Printf.sprintf "Io.%s: %s is closed" op t.path)

(* Staged bytes are kept in a growable [Bytes.t] written in place by
   {!flush}: no per-chunk copy, so the hookless path does exactly the
   work a buffered channel would. *)
let write t s =
  check_open t "write";
  let slen = String.length s in
  let need = t.buf_len + slen in
  if need > Bytes.length t.buf then begin
    let cap = ref (Bytes.length t.buf) in
    while need > !cap do
      cap := !cap * 2
    done;
    let grown = Bytes.create !cap in
    Bytes.blit t.buf 0 grown 0 t.buf_len;
    t.buf <- grown
  end;
  Bytes.blit_string s 0 t.buf t.buf_len slen;
  t.buf_len <- need

(* Loop over genuine short writes from the kernel; the [Write_short]
   fault below is about simulated ones. *)
let write_all fd path b pos len =
  let written = ref 0 in
  while !written < len do
    let n =
      try Unix.write fd b (pos + !written) (len - !written)
      with Unix.Unix_error (error, _, _) -> io_error ~op:"write" ~path error
    in
    written := !written + n
  done

let flush t =
  check_open t "flush";
  let len = t.buf_len in
  if len > 0 then begin
    (* Consume the staged bytes up front (matching a channel, whose
       buffer empties even when the write errors); the data survives in
       [t.buf] until the next [write] because nothing re-enters. *)
    t.buf_len <- 0;
    match Atomic.get current_hook with
    | None ->
      write_all t.fd t.path t.buf 0 len;
      t.offset <- t.offset + len
    | Some h -> (
      match h.on_write ~path:t.path ~offset:t.offset ~len with
      | Write_through ->
        write_all t.fd t.path t.buf 0 len;
        t.offset <- t.offset + len
      | Write_short { bytes; error } ->
        let bytes = max 0 (min bytes len) in
        write_all t.fd t.path t.buf 0 bytes;
        t.offset <- t.offset + bytes;
        io_error ~op:"write" ~path:t.path error
      | Write_error error -> io_error ~op:"write" ~path:t.path error)
  end

let fd_fsync t =
  try Unix.fsync t.fd
  with Unix.Unix_error (error, _, _) -> io_error ~op:"fsync" ~path:t.path error

let fsync t =
  flush t;
  match Atomic.get current_hook with
  | None -> fd_fsync t
  | Some h -> (
    match h.on_fsync ~path:t.path with
    | Fsync_through -> fd_fsync t
    | Fsync_error error -> io_error ~op:"fsync" ~path:t.path error
    | Fsync_lost -> ())

let close t =
  if not t.closed then begin
    let release () = t.closed <- true;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    in
    (try flush t with e -> release (); raise e);
    let decision =
      match Atomic.get current_hook with
      | None -> Op_through
      | Some h -> h.on_close ~path:t.path
    in
    release ();
    match decision with
    | Op_through -> ()
    | Op_error error -> io_error ~op:"close" ~path:t.path error
  end

let close_noerr t =
  if not t.closed then begin
    t.closed <- true;
    (try write_all t.fd t.path t.buf 0 t.buf_len with _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let rename ~src ~dst =
  let decision =
    match Atomic.get current_hook with
    | None -> Op_through
    | Some h -> h.on_rename ~src ~dst
  in
  match decision with
  | Op_through -> wrap ~op:"rename" ~path:dst (fun () -> Unix.rename src dst)
  | Op_error error -> io_error ~op:"rename" ~path:dst error

let temp_suffix = ".tmp"
let temp_path path = path ^ temp_suffix
let is_temp_path path = Filename.check_suffix path temp_suffix

(* Not all filesystems support fsync on a directory fd; the rename is
   already atomic, the directory sync only hastens its durability. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let write_file_atomic ~path data =
  let tmp = temp_path path in
  let remove_tmp () = try Sys.remove tmp with Sys_error _ -> () in
  let t = create tmp in
  (try
     write t data;
     fsync t;
     close t
   with e ->
     close_noerr t;
     remove_tmp ();
     raise e);
  (try rename ~src:tmp ~dst:path
   with e ->
     remove_tmp ();
     raise e);
  fsync_dir (Filename.dirname path)
