open Tabv_psl

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Assoc of (string * json) list

let escape buffer s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s

let to_string json =
  let buffer = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buffer "null"
    | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
    | Int n -> Buffer.add_string buffer (string_of_int n)
    | Float f ->
      (* RFC 8259 has no NaN/Infinity literal. *)
      (match Float.classify_float f with
       | Float.FP_nan | Float.FP_infinite -> Buffer.add_string buffer "null"
       | Float.FP_zero | Float.FP_subnormal | Float.FP_normal ->
         Buffer.add_string buffer (Printf.sprintf "%.6g" f))
    | String s ->
      Buffer.add_char buffer '"';
      escape buffer s;
      Buffer.add_char buffer '"'
    | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          emit item)
        items;
      Buffer.add_char buffer ']'
    | Assoc fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buffer ',';
          emit (String key);
          Buffer.add_char buffer ':';
          emit value)
        fields;
      Buffer.add_char buffer '}'
  in
  emit json;
  Buffer.contents buffer

(* --- parsing ---------------------------------------------------------

   A small recursive-descent RFC 8259 parser, self-contained like the
   emitter above.  It exists for the inputs the toolbox reads back —
   campaign manifests and previously emitted reports — so it accepts
   exactly the document model [to_string] produces: numbers without
   fraction/exponent parse as [Int], all others as [Float]; [\uXXXX]
   escapes outside ASCII are transcribed as UTF-8. *)

exception Parse_error of { line : int; col : int; message : string }

type parser_state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the current line's first byte *)
}

let parse_fail st message =
  raise (Parse_error { line = st.line; col = st.pos - st.bol + 1; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   | Some _ | None -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some found when found = c -> advance st
  | Some found ->
    parse_fail st (Printf.sprintf "expected '%c', found '%c'" c found)
  | None -> parse_fail st (Printf.sprintf "expected '%c', found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.input && String.sub st.input st.pos n = word
  then begin
    for _ = 1 to n do
      advance st
    done;
    value
  end
  else parse_fail st (Printf.sprintf "invalid literal (expected %s)" word)

let utf8_of_code buffer code =
  (* Transcribe one Unicode scalar value to UTF-8 bytes (1..4 bytes;
     the caller guarantees [code <= 0x10FFFF] and no surrogates). *)
  if code < 0x80 then Buffer.add_char buffer (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buffer (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end

(* Exactly four hex digits (strict: [int_of_string "0x.."] would also
   accept underscores). *)
let hex4 st =
  if st.pos + 4 > String.length st.input then parse_fail st "truncated \\u escape";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> parse_fail st "invalid \\u escape"
  in
  let code = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
     | Some c -> code := (!code lsl 4) lor digit c
     | None -> parse_fail st "truncated \\u escape");
    advance st
  done;
  !code

let is_high_surrogate code = code >= 0xD800 && code <= 0xDBFF
let is_low_surrogate code = code >= 0xDC00 && code <= 0xDFFF

(* One [\uXXXX] escape, the [\u] already consumed.  A high surrogate
   must be followed by [\uXXXX] with a low surrogate; the pair is
   combined into one supplementary-plane scalar (RFC 8259 §7).
   Unpaired surrogates are rejected — they have no UTF-8 encoding. *)
let parse_unicode_escape st buffer =
  let code = hex4 st in
  if is_low_surrogate code then parse_fail st "unpaired low surrogate"
  else if is_high_surrogate code then begin
    (match (peek st, st.pos + 1 < String.length st.input) with
     | (Some '\\', true) when st.input.[st.pos + 1] = 'u' ->
       advance st;
       advance st
     | _ -> parse_fail st "unpaired high surrogate");
    let low = hex4 st in
    if not (is_low_surrogate low) then parse_fail st "unpaired high surrogate";
    let scalar = 0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00) in
    utf8_of_code buffer scalar
  end
  else utf8_of_code buffer code

let parse_string_body st =
  expect st '"';
  let buffer = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> parse_fail st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buffer
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> Buffer.add_char buffer '"'; advance st
       | Some '\\' -> Buffer.add_char buffer '\\'; advance st
       | Some '/' -> Buffer.add_char buffer '/'; advance st
       | Some 'b' -> Buffer.add_char buffer '\b'; advance st
       | Some 'f' -> Buffer.add_char buffer '\012'; advance st
       | Some 'n' -> Buffer.add_char buffer '\n'; advance st
       | Some 'r' -> Buffer.add_char buffer '\r'; advance st
       | Some 't' -> Buffer.add_char buffer '\t'; advance st
       | Some 'u' ->
         advance st;
         parse_unicode_escape st buffer
       | Some c -> parse_fail st (Printf.sprintf "invalid escape '\\%c'" c)
       | None -> parse_fail st "unterminated escape");
      loop ()
    | Some c when Char.code c < 0x20 -> parse_fail st "raw control character in string"
    | Some c ->
      Buffer.add_char buffer c;
      advance st;
      loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let integral = ref true in
  if peek st = Some '-' then advance st;
  let rec digits () =
    match peek st with
    | Some '0' .. '9' ->
      advance st;
      digits ()
    | Some _ | None -> ()
  in
  digits ();
  (match peek st with
   | Some '.' ->
     integral := false;
     advance st;
     digits ()
   | Some _ | None -> ());
  (match peek st with
   | Some ('e' | 'E') ->
     integral := false;
     advance st;
     (match peek st with
      | Some ('+' | '-') -> advance st
      | Some _ | None -> ());
     digits ()
   | Some _ | None -> ());
  let text = String.sub st.input start (st.pos - start) in
  if !integral then
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> parse_fail st (Printf.sprintf "invalid number %S" text)
  else
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_fail st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_fail st "unexpected end of input"
  | Some '"' -> String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let item = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (item :: acc)
        | Some ']' ->
          advance st;
          List.rev (item :: acc)
        | Some c -> parse_fail st (Printf.sprintf "expected ',' or ']', found '%c'" c)
        | None -> parse_fail st "unterminated array"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Assoc []
    end
    else begin
      let field () =
        skip_ws st;
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        (key, value)
      in
      let rec fields acc =
        let f = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields (f :: acc)
        | Some '}' ->
          advance st;
          List.rev (f :: acc)
        | Some c -> parse_fail st (Printf.sprintf "expected ',' or '}', found '%c'" c)
        | None -> parse_fail st "unterminated object"
      in
      Assoc (fields [])
    end
  | Some c -> parse_fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string input =
  let st = { input; pos = 0; line = 1; bol = 0 } in
  let value = parse_value st in
  skip_ws st;
  (match peek st with
   | Some c -> parse_fail st (Printf.sprintf "trailing content '%c'" c)
   | None -> ());
  value

(* --- accessors ------------------------------------------------------- *)

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | _ -> None

(* --- checker statistics ---------------------------------------------

   [tabv_core] sits below the checker library in the dependency order,
   so the emitters speak the shared [Tabv_obs.Checker_snapshot]
   currency; {!Monitor.snapshot} plugs in directly (see [bin/tabv] and
   the bench harness). *)

let failure_json (f : Tabv_obs.Checker_snapshot.failure) =
  Assoc
    [ ("activation_time_ns", Int f.activation_time);
      ("failure_time_ns", Int f.failure_time) ]

let checker_snapshot_json (s : Tabv_obs.Checker_snapshot.t) =
  Assoc
    [ ("property", String s.property_name);
      ("engine", String s.engine);
      ("activations", Int s.activations);
      ("passes", Int s.passes);
      ("trivial_passes", Int s.trivial_passes);
      ("vacuous", Bool s.vacuous);
      ("peak_instances", Int s.peak_instances);
      ("peak_distinct_states", Int s.peak_distinct_states);
      ("pending", Int s.pending);
      ("steps", Int s.steps);
      ("cache_hits", Int s.cache_hits);
      ("cache_misses", Int s.cache_misses);
      ("cache_hit_rate", Float (Tabv_obs.Checker_snapshot.cache_hit_rate s));
      ("failures", List (List.map failure_json s.failures)) ]

(* The verdict subset of a snapshot: every field above that only
   depends on the property and the evaluation points it saw.  The
   transition-memo counters (cache_hits/cache_misses and the derived
   rate) are excluded on purpose — they depend on what else shares the
   process-wide checker universe, so a 4-worker recheck would diverge
   from a 1-worker one.  Everything here is universe-independent,
   which is what makes a live check and an offline recheck of the same
   run byte-comparable. *)
let checker_verdict_json (s : Tabv_obs.Checker_snapshot.t) =
  Assoc
    [ ("property", String s.property_name);
      ("engine", String s.engine);
      ("activations", Int s.activations);
      ("passes", Int s.passes);
      ("trivial_passes", Int s.trivial_passes);
      ("vacuous", Bool s.vacuous);
      ("peak_instances", Int s.peak_instances);
      ("peak_distinct_states", Int s.peak_distinct_states);
      ("pending", Int s.pending);
      ("steps", Int s.steps);
      ("failures", List (List.map failure_json s.failures)) ]

let verdict_schema_version = 1

let verdict_report_json ~run ~properties () =
  Assoc
    [ ("schema", Int verdict_schema_version);
      ("run", Assoc run);
      ("properties", List (List.map checker_verdict_json properties)) ]

let checker_stat_json ~property_name ~activations ~passes ~trivial_passes
    ~vacuous ~peak_instances ~peak_distinct_states ~pending ~cache_hits
    ~cache_misses ~failures () =
  let total = cache_hits + cache_misses in
  let hit_rate =
    if total = 0 then 0. else float_of_int cache_hits /. float_of_int total
  in
  Assoc
    [ ("property", String property_name);
      ("activations", Int activations);
      ("passes", Int passes);
      ("trivial_passes", Int trivial_passes);
      ("vacuous", Bool vacuous);
      ("peak_instances", Int peak_instances);
      ("peak_distinct_states", Int peak_distinct_states);
      ("pending", Int pending);
      ("cache_hits", Int cache_hits);
      ("cache_misses", Int cache_misses);
      ("cache_hit_rate", Float hit_rate);
      ( "failures",
        List
          (List.map
             (fun (activation_time, failure_time) ->
               Assoc
                 [ ("activation_time_ns", Int activation_time);
                   ("failure_time_ns", Int failure_time) ])
             failures) ) ]

let engine_cache_json ~cache_hits ~cache_misses ~cache_bypassed ~distinct_states
    ~distinct_transitions ~interned_formulas () =
  let total = cache_hits + cache_misses + cache_bypassed in
  let hit_rate =
    if total = 0 then 0. else float_of_int cache_hits /. float_of_int total
  in
  Assoc
    [ ("cache_hits", Int cache_hits);
      ("cache_misses", Int cache_misses);
      ("cache_bypassed", Int cache_bypassed);
      ("cache_hit_rate", Float hit_rate);
      ("distinct_states", Int distinct_states);
      ("distinct_transitions", Int distinct_transitions);
      ("interned_formulas", Int interned_formulas) ]

(* --- metrics registry ----------------------------------------------- *)

let metrics_value_json (v : Tabv_obs.Metrics.value) =
  match v with
  | Tabv_obs.Metrics.Counter n ->
    Assoc [ ("kind", String "counter"); ("value", Int n) ]
  | Tabv_obs.Metrics.Gauge n ->
    Assoc [ ("kind", String "gauge"); ("value", Int n) ]
  | Tabv_obs.Metrics.Histogram h ->
    Assoc
      [ ("kind", String "histogram");
        ("count", Int h.Tabv_obs.Metrics.count);
        ("sum", Int h.Tabv_obs.Metrics.sum);
        ("min", Int h.Tabv_obs.Metrics.min_value);
        ("max", Int h.Tabv_obs.Metrics.max_value);
        ( "buckets",
          List
            (List.map
               (fun (upper_bound, count) ->
                 Assoc [ ("le", Int upper_bound); ("count", Int count) ])
               h.Tabv_obs.Metrics.by_upper_bound) ) ]

let metrics_snapshot_json snapshot =
  Assoc (List.map (fun (name, v) -> (name, metrics_value_json v)) snapshot)

let metrics_schema_version = 1

let metrics_json ~run ~metrics ~properties ~engine () =
  Assoc
    [ ("schema", Int metrics_schema_version);
      ("run", Assoc run);
      ("metrics", metrics_snapshot_json metrics);
      ("properties", List properties);
      ("engine", engine) ]

let property_json p =
  Assoc
    [ ("name", String p.Property.name);
      ("formula", String (Ltl.to_string p.Property.formula));
      ("context", String (Context.to_string p.Property.context)) ]

let classification_string = function
  | Signal_abstraction.Unchanged -> "unchanged"
  | Signal_abstraction.Weakened -> "weakened"
  | Signal_abstraction.Needs_review -> "needs_review"

let of_report (r : Methodology.report) =
  Assoc
    [ ("input", property_json r.Methodology.input);
      ("nnf", String (Ltl.to_string r.Methodology.nnf));
      ( "signal_abstraction",
        Assoc
          [ ( "classification",
              String
                (classification_string
                   r.Methodology.signal_abstraction.Signal_abstraction.classification)
            );
            ( "applied_rules",
              List
                (List.map
                   (fun (rule : Signal_abstraction.applied_rule) ->
                     String rule.Signal_abstraction.rule)
                   r.Methodology.signal_abstraction.Signal_abstraction.applied) ) ] );
      ( "substitutions",
        List
          (List.map
             (fun s ->
               Assoc
                 [ ("tau", Int s.Next_substitution.tau);
                   ("cycles", Int s.Next_substitution.cycles);
                   ("eps_ns", Int s.Next_substitution.eps) ])
             r.Methodology.substitutions) );
      ( "simple_subset_warnings",
        List
          (List.map
             (fun (v : Simple_subset.violation) ->
               String (v.Simple_subset.path ^ ": " ^ v.Simple_subset.message))
             r.Methodology.simple_subset_violations) );
      ("requires_review", Bool r.Methodology.requires_review);
      ( "needs_dense_trace",
        match r.Methodology.output with
        | Some q -> Bool (Methodology.needs_dense_trace q.Property.formula)
        | None -> Null );
      ( "output",
        match r.Methodology.output with
        | Some q -> property_json q
        | None -> Null ) ]

let of_reports reports =
  let clock_period, abstracted_signals =
    match reports with
    | r :: _ -> (r.Methodology.clock_period, r.Methodology.abstracted_signals)
    | [] -> (0, [])
  in
  Assoc
    [ ("clock_period_ns", Int clock_period);
      ("abstracted_signals", List (List.map (fun s -> String s) abstracted_signals));
      ("properties", List (List.map of_report reports)) ]
