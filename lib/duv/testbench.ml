open Tabv_psl
open Tabv_sim
open Tabv_checker

type checker_stat = Tabv_obs.Checker_snapshot.t = {
  property_name : string;
  engine : string;
  activations : int;
  passes : int;
  trivial_passes : int;
  vacuous : bool;
  peak_instances : int;
  peak_distinct_states : int;
  pending : int;
  steps : int;
  cache_hits : int;
  cache_misses : int;
  failures : Monitor.failure list;
}

type run_result = {
  sim_time_ns : int;
  kernel_activations : int;
  delta_cycles : int;
  transactions : int;
  completed_ops : int;
  outputs : int64 list;
  checker_stats : checker_stat list;
  metrics : (string * Tabv_obs.Metrics.value) list;
  trace : Trace.t option;
  diagnosis : Kernel.diagnosis;
  faults_triggered : int;
}

let total_failures result =
  Tabv_obs.Checker_snapshot.total_failures result.checker_stats

let pp_checker_stat = Tabv_obs.Checker_snapshot.pp
let stat_of_monitor = Monitor.snapshot
let cache_hit_rate = Tabv_obs.Checker_snapshot.cache_hit_rate

let metrics_json ?(run = []) result =
  let open Tabv_core.Report_json in
  let run =
    run
    @ [ ("sim_time_ns", Int result.sim_time_ns);
        ("kernel_activations", Int result.kernel_activations);
        ("delta_cycles", Int result.delta_cycles);
        ("transactions", Int result.transactions);
        ("completed_ops", Int result.completed_ops);
        ("failures", Int (total_failures result));
        ("diagnosis", Tabv_fault.Fault.diagnosis_json result.diagnosis);
        ("faults_triggered", Int result.faults_triggered) ]
  in
  let cache = Progression.cache_stats () in
  let engine =
    engine_cache_json ~cache_hits:cache.Progression.cache_hits
      ~cache_misses:cache.Progression.cache_misses
      ~cache_bypassed:cache.Progression.cache_bypassed
      ~distinct_states:cache.Progression.distinct_states
      ~distinct_transitions:cache.Progression.distinct_transitions
      ~interned_formulas:cache.Progression.interned_formulas ()
  in
  metrics_json ~run ~metrics:result.metrics
    ~properties:(List.map checker_snapshot_json result.checker_stats)
    ~engine ()

(* --- checker-pool plumbing ------------------------------------------ *)

(* One shared atom sampler per checker pool; when the kernel's metrics
   registry is live its counters are published as pull probes (summed
   across pools). *)
let pool_sampler kernel =
  let sampler = Sampler.create () in
  let metrics = Kernel.metrics kernel in
  if Tabv_obs.Metrics.enabled metrics then begin
    Tabv_obs.Metrics.probe metrics ~combine:`Sum "checker.sampler.queries"
      (fun () -> Sampler.queries sampler);
    Tabv_obs.Metrics.probe metrics ~combine:`Sum "checker.sampler.evals"
      (fun () -> Sampler.evals sampler)
  end;
  sampler

(* Attach one property pool through the unified entry point. *)
let attach_pool ?engine kernel mode sampler properties ~lookup =
  List.map
    (fun p ->
      Checker.attach (Checker.Attach.spec ?engine ~sampler mode) kernel p ~lookup)
    properties

let metrics_snapshot kernel =
  let m = Kernel.metrics kernel in
  if Tabv_obs.Metrics.enabled m then Tabv_obs.Metrics.snapshot m else []

(* --- trace-writer plumbing ------------------------------------------ *)

(* The streaming binary writer taps the exact hooks that feed the
   in-memory Trace_rec recorder (posedge process at RTL, transaction
   completion at TLM), so a stored trace carries the same evaluation
   points a live checker pool saw.  Disarmed (None) costs nothing; an
   armed kernel metrics registry additionally publishes the writer's
   volume counters as pull probes. *)
let arm_writer kernel = function
  | None -> ()
  | Some writer ->
    let metrics = Kernel.metrics kernel in
    if Tabv_obs.Metrics.enabled metrics then begin
      Tabv_obs.Metrics.probe metrics ~combine:`Sum "trace.samples" (fun () ->
          Tabv_trace.Writer.samples writer);
      Tabv_obs.Metrics.probe metrics ~combine:`Sum "trace.spans" (fun () ->
          Tabv_trace.Writer.spans writer);
      Tabv_obs.Metrics.probe metrics ~combine:`Sum "trace.bytes" (fun () ->
          Tabv_trace.Writer.bytes_written writer)
    end

let write_sample writer ~time env =
  match writer with
  | None -> ()
  | Some w -> Tabv_trace.Writer.sample w ~time env

let span_label transaction =
  match transaction.Tlm.payload.Tlm.command with
  | Tlm.Read -> "read"
  | Tlm.Write -> "write"

(* Sample at the transaction end (last-wins within an instant, exactly
   like the Trace_rec hook) and record the begin/end span. *)
let write_transaction writer transaction env =
  match writer with
  | None -> ()
  | Some w ->
    Tabv_trace.Writer.sample w ~time:transaction.Tlm.end_time env;
    Tabv_trace.Writer.span w ~label:(span_label transaction)
      ~start_time:transaction.Tlm.start_time
      ~end_time:transaction.Tlm.end_time

(* --- fault-plan plumbing -------------------------------------------- *)

(* Compile an optional fault plan onto the design through its binding.
   [None] (the default) touches nothing: no interposition is installed
   and the run is byte-identical to a build without the fault
   subsystem. *)
let install_plan binding = function
  | None -> None
  | Some plan when Tabv_fault.Fault.is_empty plan -> None
  | Some plan -> Some (Tabv_fault.Fault.install binding plan)

let faults_triggered_of = function
  | None -> 0
  | Some installed -> Tabv_fault.Fault.triggered installed

let period = 10

(* --- DES56 / RTL --- *)

let run_des56_rtl ?(properties = []) ?engine ?sim_engine ?metrics ?(record_trace = false)
    ?trace_writer ?(gap_cycles = 2) ?fault ?fault_plan ?guard ops =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let clock = Clock.create kernel ~name:"clk" ~period () in
  let model = Des56_rtl.create ?fault kernel clock in
  let faults = install_plan (Duv_fault.des56_rtl_binding kernel model) fault_plan in
  let lookup = Des56_rtl.lookup model in
  (* All checkers sample the same environment at the same edges: share
     one evaluation-point sampler so each distinct atom is evaluated
     once per instant across the whole checker pool. *)
  let sampler = pool_sampler kernel in
  let checkers =
    attach_pool ?engine kernel (Checker.Attach.clock_edge clock) sampler
      properties ~lookup
  in
  let recorder = Trace_rec.create () in
  if record_trace then
    Process.method_process kernel ~name:"trace" ~initialize:false
      ~sensitivity:[ Clock.posedge clock ]
      (fun () -> Trace_rec.sample recorder ~time:(Kernel.now kernel) (Des56_rtl.env model));
  arm_writer kernel trace_writer;
  if trace_writer <> None then
    Process.method_process kernel ~name:"trace_bin" ~initialize:false
      ~sensitivity:[ Clock.posedge clock ]
      (fun () ->
        write_sample trace_writer ~time:(Kernel.now kernel) (Des56_rtl.env model));
  let outputs = ref [] in
  Process.method_process kernel ~name:"collect" ~initialize:false
    ~sensitivity:[ Clock.posedge clock ]
    (fun () ->
      if Signal.read (Des56_rtl.rdy model) then
        outputs := Signal.read (Des56_rtl.out model) :: !outputs);
  Process.spawn kernel ~name:"driver" (fun () ->
    let negedge = Clock.negedge clock in
    Process.wait_event negedge;
    List.iter
      (fun op ->
        Signal.write (Des56_rtl.ds model) true;
        Signal.write (Des56_rtl.decrypt model) op.Des56_iface.decrypt;
        Signal.write (Des56_rtl.key model) op.Des56_iface.key;
        Signal.write (Des56_rtl.indata model) op.Des56_iface.indata;
        Process.wait_event negedge;
        Signal.write (Des56_rtl.ds model) false;
        for _ = 1 to Des56_iface.latency + gap_cycles do
          Process.wait_event negedge
        done)
      ops;
    (* Drain the last result and one extra evaluation point. *)
    for _ = 1 to 3 do
      Process.wait_event negedge
    done;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = 0;
    completed_ops = Des56_rtl.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = metrics_snapshot kernel;
    trace = (if record_trace then Some (Trace_rec.to_trace recorder) else None);
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = faults_triggered_of faults;
  }

(* --- DES56 / TLM-CA --- *)

let run_des56_tlm_ca ?(properties = []) ?engine ?sim_engine ?metrics ?(record_trace = false)
    ?trace_writer ?(gap_cycles = 2) ?fault_plan ?guard ops =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let model = Des56_tlm_ca.create kernel in
  let initiator = Tlm.Initiator.create kernel ~name:"des56_ca_init" in
  Tlm.Initiator.bind initiator (Des56_tlm_ca.target model);
  let faults =
    install_plan
      (Duv_fault.des56_tlm_binding kernel initiator (Des56_tlm_ca.observables model))
      fault_plan
  in
  let lookup = Des56_tlm_ca.lookup model in
  let recorder = Trace_rec.create () in
  if record_trace then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      Trace_rec.sample recorder ~time:transaction.Tlm.end_time
        (Des56_iface.env_of (Des56_tlm_ca.observables model)));
  arm_writer kernel trace_writer;
  if trace_writer <> None then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      write_transaction trace_writer transaction
        (Des56_iface.env_of (Des56_tlm_ca.observables model)));
  let sampler = pool_sampler kernel in
  let checkers =
    attach_pool ?engine kernel
      (Checker.Attach.transaction_unabstracted initiator)
      sampler properties ~lookup
  in
  let outputs = ref [] in
  Process.spawn kernel ~name:"driver" (fun () ->
    Process.wait_ns kernel period;
    let send_frame frame =
      let payload = Tlm.make_payload ~extension:(Des56_iface.Frame frame) Tlm.Write in
      Tlm.Initiator.b_transport initiator payload;
      if frame.Des56_iface.f_rdy then outputs := frame.Des56_iface.f_out :: !outputs;
      Process.wait_ns kernel period
    in
    (* Idle frames hold the previously driven input values, exactly as
       the RTL signals do between strobes. *)
    let held = ref (Des56_iface.make_frame ()) in
    let idle_frame () =
      let h = !held in
      Des56_iface.make_frame ~decrypt:h.Des56_iface.f_decrypt ~key:h.Des56_iface.f_key
        ~indata:h.Des56_iface.f_indata ()
    in
    List.iter
      (fun op ->
        let frame =
          Des56_iface.make_frame ~ds:true ~decrypt:op.Des56_iface.decrypt
            ~key:op.Des56_iface.key ~indata:op.Des56_iface.indata ()
        in
        held := frame;
        send_frame frame;
        for _ = 1 to Des56_iface.latency + gap_cycles do
          send_frame (idle_frame ())
        done)
      ops;
    for _ = 1 to 3 do
      send_frame (idle_frame ())
    done;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = Tlm.Initiator.transaction_count initiator;
    completed_ops = Des56_tlm_ca.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = metrics_snapshot kernel;
    trace = (if record_trace then Some (Trace_rec.to_trace recorder) else None);
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = faults_triggered_of faults;
  }

(* --- DES56 / TLM-AT --- *)

let run_des56_tlm_at ?(properties = []) ?(grid_properties = []) ?engine ?sim_engine ?metrics
    ?(record_trace = false) ?trace_writer ?(gap_cycles = 2) ?model_latency_ns
    ?fault_plan ?guard ops =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let model = Des56_tlm_at.create ?latency_ns:model_latency_ns kernel in
  let initiator = Tlm.Initiator.create kernel ~name:"des56_at_init" in
  Tlm.Initiator.bind initiator (Des56_tlm_at.target model);
  let faults =
    install_plan
      (Duv_fault.des56_tlm_binding kernel initiator (Des56_tlm_at.observables model))
      fault_plan
  in
  let lookup = Des56_tlm_at.lookup model in
  let recorder = Trace_rec.create () in
  if record_trace then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      Trace_rec.sample recorder ~time:transaction.Tlm.end_time
        (Des56_iface.env_of (Des56_tlm_at.observables model)));
  arm_writer kernel trace_writer;
  if trace_writer <> None then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      write_transaction trace_writer transaction
        (Des56_iface.env_of (Des56_tlm_at.observables model)));
  (* Strict wrappers sample in the deferred-delta phase of transaction
     instants; grid wrappers sample on the clock grid.  The two pools
     observe different instants, so each gets its own shared sampler. *)
  let sampler = pool_sampler kernel in
  let grid_sampler = pool_sampler kernel in
  let checkers =
    attach_pool ?engine kernel (Checker.Attach.transaction initiator) sampler
      properties ~lookup
    @ attach_pool ?engine kernel
        (Checker.Attach.grid ~clock_period:Des56_iface.clock_period ())
        grid_sampler grid_properties ~lookup
  in
  let outputs = ref [] in
  Process.spawn kernel ~name:"driver" (fun () ->
    Process.wait_ns kernel period;
    let transport extension =
      Tlm.Initiator.b_transport initiator (Tlm.make_payload ~extension Tlm.Write)
    in
    List.iter
      (fun op ->
        transport
          (Des56_iface.At_write
             {
               Des56_iface.a_decrypt = op.Des56_iface.decrypt;
               a_key = op.Des56_iface.key;
               a_indata = op.Des56_iface.indata;
             });
        Process.wait_ns kernel period;
        transport Des56_iface.At_idle;
        (* Blocking read: the target returns at its completion
           instant, which is the strobe time plus the model latency. *)
        let response = { Des56_iface.a_out = 0L; a_rdy = false } in
        transport (Des56_iface.At_read response);
        if response.Des56_iface.a_rdy then
          outputs := response.Des56_iface.a_out :: !outputs;
        Process.wait_ns kernel period;
        transport (Des56_iface.At_status { Des56_iface.a_out = 0L; a_rdy = false });
        Process.wait_ns kernel (gap_cycles * period))
      ops;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = Tlm.Initiator.transaction_count initiator;
    completed_ops = Des56_tlm_at.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = metrics_snapshot kernel;
    trace = (if record_trace then Some (Trace_rec.to_trace recorder) else None);
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = faults_triggered_of faults;
  }

(* --- DES56 / TLM-LT --- *)

let run_des56_tlm_lt ?(properties = []) ?engine ?sim_engine ?metrics ?(gap_cycles = 2)
    ?fault_plan ?guard ops =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let model = Des56_tlm_lt.create kernel in
  let initiator = Tlm.Initiator.create kernel ~name:"des56_lt_init" in
  Tlm.Initiator.bind initiator (Des56_tlm_lt.target model);
  let faults =
    install_plan
      (Duv_fault.des56_tlm_binding kernel initiator (Des56_tlm_lt.observables model))
      fault_plan
  in
  let lookup = Des56_tlm_lt.lookup model in
  let sampler = pool_sampler kernel in
  let checkers =
    attach_pool ?engine kernel (Checker.Attach.transaction initiator) sampler
      properties ~lookup
  in
  let outputs = ref [] in
  Process.spawn kernel ~name:"driver" (fun () ->
    Process.wait_ns kernel period;
    let transport extension =
      let payload = Tlm.make_payload ~extension Tlm.Write in
      Tlm.Initiator.b_transport initiator payload;
      payload
    in
    List.iter
      (fun op ->
        let payload =
          transport
            (Des56_iface.At_write
               {
                 Des56_iface.a_decrypt = op.Des56_iface.decrypt;
                 a_key = op.Des56_iface.key;
                 a_indata = op.Des56_iface.indata;
               })
        in
        outputs := payload.Tlm.data :: !outputs;
        Process.wait_ns kernel period;
        ignore (transport Des56_iface.At_idle);
        Process.wait_ns kernel (gap_cycles * period))
      ops;
    Process.wait_ns kernel period;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = Tlm.Initiator.transaction_count initiator;
    completed_ops = Des56_tlm_lt.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = metrics_snapshot kernel;
    trace = None;
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = faults_triggered_of faults;
  }

(* --- ColorConv --- *)

let pack_ycbcr { Colorconv.y; cb; cr } =
  Int64.of_int (y lor (cb lsl 8) lor (cr lsl 16))

let run_colorconv_rtl ?(properties = []) ?engine ?sim_engine ?metrics ?(record_trace = false)
    ?trace_writer ?(gap_cycles = 2) ?fault_plan ?guard bursts =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let clock = Clock.create kernel ~name:"clk" ~period () in
  let model = Colorconv_rtl.create kernel clock in
  let faults =
    install_plan (Duv_fault.colorconv_rtl_binding kernel model) fault_plan
  in
  let lookup = Colorconv_rtl.lookup model in
  let sampler = pool_sampler kernel in
  let checkers =
    attach_pool ?engine kernel (Checker.Attach.clock_edge clock) sampler
      properties ~lookup
  in
  let recorder = Trace_rec.create () in
  if record_trace then
    Process.method_process kernel ~name:"trace" ~initialize:false
      ~sensitivity:[ Clock.posedge clock ]
      (fun () ->
        Trace_rec.sample recorder ~time:(Kernel.now kernel) (Colorconv_rtl.env model));
  arm_writer kernel trace_writer;
  if trace_writer <> None then
    Process.method_process kernel ~name:"trace_bin" ~initialize:false
      ~sensitivity:[ Clock.posedge clock ]
      (fun () ->
        write_sample trace_writer ~time:(Kernel.now kernel)
          (Colorconv_rtl.env model));
  let outputs = ref [] in
  Process.method_process kernel ~name:"collect" ~initialize:false
    ~sensitivity:[ Clock.posedge clock ]
    (fun () ->
      if Signal.read (Colorconv_rtl.ovalid model) then
        outputs :=
          pack_ycbcr
            {
              Colorconv.y = Signal.read (Colorconv_rtl.y model);
              cb = Signal.read (Colorconv_rtl.cb model);
              cr = Signal.read (Colorconv_rtl.cr model);
            }
          :: !outputs);
  Process.spawn kernel ~name:"driver" (fun () ->
    let negedge = Clock.negedge clock in
    Process.wait_event negedge;
    List.iter
      (fun burst ->
        List.iter
          (fun pixel ->
            Signal.write (Colorconv_rtl.dv model) true;
            Signal.write (Colorconv_rtl.r model) pixel.Colorconv.r;
            Signal.write (Colorconv_rtl.g model) pixel.Colorconv.g;
            Signal.write (Colorconv_rtl.b model) pixel.Colorconv.b;
            Process.wait_event negedge)
          burst;
        Signal.write (Colorconv_rtl.dv model) false;
        for _ = 1 to gap_cycles do
          Process.wait_event negedge
        done)
      bursts;
    for _ = 1 to Colorconv_iface.latency + 2 do
      Process.wait_event negedge
    done;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = 0;
    completed_ops = Colorconv_rtl.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = metrics_snapshot kernel;
    trace = (if record_trace then Some (Trace_rec.to_trace recorder) else None);
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = faults_triggered_of faults;
  }

let run_colorconv_tlm_ca ?(properties = []) ?engine ?sim_engine ?metrics
    ?(record_trace = false) ?trace_writer ?(gap_cycles = 2) ?fault_plan ?guard
    bursts =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let model = Colorconv_tlm_ca.create kernel in
  let initiator = Tlm.Initiator.create kernel ~name:"colorconv_ca_init" in
  Tlm.Initiator.bind initiator (Colorconv_tlm_ca.target model);
  let faults =
    install_plan
      (Duv_fault.colorconv_tlm_binding kernel initiator
         (Colorconv_tlm_ca.observables model))
      fault_plan
  in
  let lookup = Colorconv_tlm_ca.lookup model in
  let recorder = Trace_rec.create () in
  if record_trace then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      Trace_rec.sample recorder ~time:transaction.Tlm.end_time
        (Colorconv_iface.env_of (Colorconv_tlm_ca.observables model)));
  arm_writer kernel trace_writer;
  if trace_writer <> None then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      write_transaction trace_writer transaction
        (Colorconv_iface.env_of (Colorconv_tlm_ca.observables model)));
  let sampler = pool_sampler kernel in
  let checkers =
    attach_pool ?engine kernel
      (Checker.Attach.transaction_unabstracted initiator)
      sampler properties ~lookup
  in
  let outputs = ref [] in
  Process.spawn kernel ~name:"driver" (fun () ->
    Process.wait_ns kernel period;
    let send_frame frame =
      let payload = Tlm.make_payload ~extension:(Colorconv_iface.Frame frame) Tlm.Write in
      Tlm.Initiator.b_transport initiator payload;
      if frame.Colorconv_iface.c_ovalid then
        outputs :=
          pack_ycbcr
            {
              Colorconv.y = frame.Colorconv_iface.c_y;
              cb = frame.Colorconv_iface.c_cb;
              cr = frame.Colorconv_iface.c_cr;
            }
          :: !outputs;
      Process.wait_ns kernel period
    in
    let held = ref (Colorconv_iface.make_frame ()) in
    let idle_frame () =
      let h = !held in
      Colorconv_iface.make_frame ~r:h.Colorconv_iface.c_r ~g:h.Colorconv_iface.c_g
        ~b:h.Colorconv_iface.c_b ()
    in
    List.iter
      (fun burst ->
        List.iter
          (fun pixel ->
            let frame =
              Colorconv_iface.make_frame ~dv:true ~r:pixel.Colorconv.r
                ~g:pixel.Colorconv.g ~b:pixel.Colorconv.b ()
            in
            held := frame;
            send_frame frame)
          burst;
        for _ = 1 to gap_cycles do
          send_frame (idle_frame ())
        done)
      bursts;
    for _ = 1 to Colorconv_iface.latency + 2 do
      send_frame (idle_frame ())
    done;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = Tlm.Initiator.transaction_count initiator;
    completed_ops = Colorconv_tlm_ca.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = metrics_snapshot kernel;
    trace = (if record_trace then Some (Trace_rec.to_trace recorder) else None);
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = faults_triggered_of faults;
  }

(* TLM-AT agenda: precomputed transaction schedule with deterministic
   ordering at shared instants (reads resolve timed obligations before
   same-instant writes fire new ones). *)
type cc_action =
  | Cc_read
  | Cc_status
  | Cc_write of Colorconv.pixel
  | Cc_idle

let cc_priority = function
  | Cc_idle -> 0
  | Cc_status -> 1
  | Cc_read -> 2
  | Cc_write _ -> 3

let run_colorconv_tlm_at ?(properties = []) ?(grid_properties = []) ?engine ?sim_engine
    ?metrics ?(record_trace = false) ?trace_writer ?(gap_cycles = 2) ?fault_plan
    ?guard bursts =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let model = Colorconv_tlm_at.create kernel in
  let initiator = Tlm.Initiator.create kernel ~name:"colorconv_at_init" in
  Tlm.Initiator.bind initiator (Colorconv_tlm_at.target model);
  let faults =
    install_plan
      (Duv_fault.colorconv_tlm_binding kernel initiator
         (Colorconv_tlm_at.observables model))
      fault_plan
  in
  let lookup = Colorconv_tlm_at.lookup model in
  let recorder = Trace_rec.create () in
  if record_trace then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      Trace_rec.sample recorder ~time:transaction.Tlm.end_time
        (Colorconv_iface.env_of (Colorconv_tlm_at.observables model)));
  arm_writer kernel trace_writer;
  if trace_writer <> None then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      write_transaction trace_writer transaction
        (Colorconv_iface.env_of (Colorconv_tlm_at.observables model)));
  let sampler = pool_sampler kernel in
  let grid_sampler = pool_sampler kernel in
  let checkers =
    attach_pool ?engine kernel (Checker.Attach.transaction initiator) sampler
      properties ~lookup
    @ attach_pool ?engine kernel
        (Checker.Attach.grid ~clock_period:Colorconv_iface.clock_period ())
        grid_sampler grid_properties ~lookup
  in
  let latency_ns = Colorconv_iface.latency * period in
  (* Build the agenda. *)
  let agenda = ref [] in
  let add time action = agenda := (time, action) :: !agenda in
  let start = ref period in
  List.iter
    (fun burst ->
      let n = List.length burst in
      List.iteri
        (fun i pixel ->
          let wt = !start + (i * period) in
          add wt (Cc_write pixel);
          add (wt + latency_ns) Cc_read)
        burst;
      let last_write = !start + ((n - 1) * period) in
      add (last_write + period) Cc_idle;
      add (last_write + latency_ns + period) Cc_status;
      start := last_write + period + (gap_cycles * period))
    bursts;
  let agenda =
    List.stable_sort
      (fun (t1, a1) (t2, a2) ->
        if t1 <> t2 then compare t1 t2 else compare (cc_priority a1) (cc_priority a2))
      !agenda
  in
  let outputs = ref [] in
  Process.spawn kernel ~name:"driver" (fun () ->
    let transport extension =
      Tlm.Initiator.b_transport initiator (Tlm.make_payload ~extension Tlm.Write)
    in
    List.iter
      (fun (time, action) ->
        let now = Kernel.now kernel in
        if time > now then Process.wait_ns kernel (time - now);
        match action with
        | Cc_write pixel -> transport (Colorconv_iface.At_write pixel)
        | Cc_idle -> transport Colorconv_iface.At_idle
        | Cc_read ->
          let response =
            { Colorconv_iface.a_valid = false; a_y = 0; a_cb = 0; a_cr = 0 }
          in
          transport (Colorconv_iface.At_read response);
          if response.Colorconv_iface.a_valid then
            outputs :=
              pack_ycbcr
                {
                  Colorconv.y = response.Colorconv_iface.a_y;
                  cb = response.Colorconv_iface.a_cb;
                  cr = response.Colorconv_iface.a_cr;
                }
              :: !outputs
        | Cc_status ->
          transport
            (Colorconv_iface.At_status
               { Colorconv_iface.a_valid = false; a_y = 0; a_cb = 0; a_cr = 0 }))
      agenda;
    (* Let the deferred same-instant checker step of the last
       transaction run before stopping. *)
    Process.wait_ns kernel period;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = Tlm.Initiator.transaction_count initiator;
    completed_ops = Colorconv_tlm_at.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = metrics_snapshot kernel;
    trace = (if record_trace then Some (Trace_rec.to_trace recorder) else None);
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = faults_triggered_of faults;
  }
