(* The built-in DUV model catalog as one first-class enumeration.

   `tabv check` / `record` / `recheck` and the `tabv serve` request
   handler must agree on everything that shapes a run — the model
   names, the interface signals a property may mention, which property
   set a run attaches (including the Methodology III.1 abstraction on
   the approximately-timed models) and which testbench entry point
   drives it — because the byte-identity contracts (record+recheck ==
   live check; served report == one-shot CLI report) depend on the two
   paths building runs identically.  This module is that single
   spec; [bin/cli.ml] and [lib/serve] are both thin clients of it. *)

open Tabv_psl

type t =
  | Des56_rtl
  | Des56_ca
  | Des56_at
  | Des56_lt
  | Colorconv_rtl
  | Colorconv_ca
  | Colorconv_at
  | Memctrl_rtl
  | Memctrl_ca
  | Memctrl_at

let names =
  [ ("des56-rtl", Des56_rtl); ("des56-tlm-ca", Des56_ca);
    ("des56-tlm-at", Des56_at); ("des56-tlm-lt", Des56_lt);
    ("colorconv-rtl", Colorconv_rtl); ("colorconv-tlm-ca", Colorconv_ca);
    ("colorconv-tlm-at", Colorconv_at); ("memctrl-rtl", Memctrl_rtl);
    ("memctrl-tlm-ca", Memctrl_ca); ("memctrl-tlm-at", Memctrl_at) ]

let name model = fst (List.find (fun (_, m) -> m = model) names)
let of_name n = List.assoc_opt n names

let known_signals = function
  | Des56_rtl | Des56_ca | Des56_at | Des56_lt -> Des56_iface.signal_names
  | Colorconv_rtl | Colorconv_ca | Colorconv_at -> Colorconv_iface.signal_names
  | Memctrl_rtl | Memctrl_ca | Memctrl_at -> Memctrl_iface.signal_names

(* Split the automatically-safe abstractions into strict-wrapper
   properties and grid-wrapper ones (timed operators under
   until/release need the full clock grid). *)
let abstract_for_at ~abstracted_signals properties =
  let reports =
    Tabv_core.Methodology.abstract_all ~clock_period:10 ~abstracted_signals
      properties
  in
  List.fold_left
    (fun (strict, grid) r ->
      match r.Tabv_core.Methodology.output with
      | Some q when not r.Tabv_core.Methodology.requires_review ->
        if Tabv_core.Methodology.needs_dense_trace q.Property.formula then
          (strict, q :: grid)
        else (q :: strict, grid)
      | Some _ | None -> (strict, grid))
    ([], []) reports
  |> fun (strict, grid) -> (List.rev strict, List.rev grid)

(* The property sets a run actually attaches for [model], given the
   optional user property set: [(properties, grid_properties)] in
   attach (= report) order. *)
let properties_for model user =
  let rtl_or builtin =
    match user with
    | Some properties -> properties
    | None -> builtin
  in
  match model with
  | Des56_rtl | Des56_ca -> (rtl_or Des56_props.all, [])
  | Des56_at ->
    (match user with
     | Some properties ->
       abstract_for_at ~abstracted_signals:Des56_props.abstracted_signals
         properties
     | None -> (Des56_props.tlm_reviewed (), []))
  | Des56_lt ->
    (* Boolean invariants only: the LT model is not timing equivalent,
       timed properties would fail by design. *)
    (match user with
     | Some properties ->
       ( List.filter
           (fun p -> Simple_subset.is_boolean p.Property.formula)
           (fst
              (abstract_for_at
                 ~abstracted_signals:Des56_props.abstracted_signals properties)),
         [] )
     | None ->
       ( [ Property.make ~name:"lt_inv"
             ~context:(Context.Transaction Context.Base_trans)
             (Parser.formula_only "always(!rdy || ds)") ],
         [] ))
  | Colorconv_rtl | Colorconv_ca -> (rtl_or Colorconv_props.all, [])
  | Colorconv_at ->
    (match user with
     | Some properties ->
       abstract_for_at ~abstracted_signals:Colorconv_props.abstracted_signals
         properties
     | None -> (Colorconv_props.tlm_reviewed (), []))
  | Memctrl_rtl | Memctrl_ca -> (rtl_or Memctrl_props.all, [])
  | Memctrl_at ->
    (match user with
     | Some properties ->
       ( fst
           (abstract_for_at
              ~abstracted_signals:Memctrl_props.abstracted_signals properties),
         [] )
     | None -> (Memctrl_props.tlm_auto_safe (), []))

(* Drive [model] over its seeded workload with [properties] attached
   (and, on the AT models, [grid_properties] under the grid wrapper).
   [trace_writer] taps the checker evaluation points into a binary
   trace; [sim_engine] overrides the process-wide kernel engine
   default for exactly this run (the serve daemon threads it here so
   concurrent requests with different engines never race on the
   global default). *)
let run ?metrics ?trace_writer ?sim_engine model ~seed ~ops ~properties
    ~grid_properties =
  match model with
  | Des56_rtl ->
    Testbench.run_des56_rtl ?metrics ?trace_writer ?sim_engine ~properties
      (Workload.des56 ~seed ~count:ops ())
  | Des56_ca ->
    Testbench.run_des56_tlm_ca ?metrics ?trace_writer ?sim_engine ~properties
      (Workload.des56 ~seed ~count:ops ())
  | Des56_at ->
    Testbench.run_des56_tlm_at ?metrics ?trace_writer ?sim_engine ~properties
      ~grid_properties
      (Workload.des56 ~seed ~count:ops ())
  | Des56_lt ->
    Testbench.run_des56_tlm_lt ?metrics ?sim_engine ~properties
      (Workload.des56 ~seed ~count:ops ())
  | Colorconv_rtl ->
    Testbench.run_colorconv_rtl ?metrics ?trace_writer ?sim_engine ~properties
      (Workload.colorconv ~seed ~count:ops ())
  | Colorconv_ca ->
    Testbench.run_colorconv_tlm_ca ?metrics ?trace_writer ?sim_engine
      ~properties
      (Workload.colorconv ~seed ~count:ops ())
  | Colorconv_at ->
    Testbench.run_colorconv_tlm_at ?metrics ?trace_writer ?sim_engine
      ~properties ~grid_properties
      (Workload.colorconv ~seed ~count:ops ())
  | Memctrl_rtl ->
    Memctrl_testbench.run_rtl ?metrics ?trace_writer ?sim_engine ~properties
      (Workload.memctrl ~seed ~count:ops ())
  | Memctrl_ca ->
    Memctrl_testbench.run_tlm_ca ?metrics ?trace_writer ?sim_engine ~properties
      (Workload.memctrl ~seed ~count:ops ())
  | Memctrl_at ->
    Memctrl_testbench.run_tlm_at ?metrics ?trace_writer ?sim_engine ~properties
      (Workload.memctrl ~seed ~count:ops ())

(* The LT model records nothing: it exists to violate timing
   equivalence, so a trace of it would not replay meaningfully. *)
let supports_trace = function
  | Des56_lt -> false
  | Des56_rtl | Des56_ca | Des56_at | Colorconv_rtl | Colorconv_ca
  | Colorconv_at | Memctrl_rtl | Memctrl_ca | Memctrl_at ->
    true

(* The deterministic verdict report of one run: run identification
   plus per-property counters in attach order.  `recheck` builds the
   same document from the trace meta + merged snapshots; the serve
   daemon from a warm or cold execution — all must be byte-identical
   to the live one-shot check. *)
let verdict_report model ~seed ~ops result =
  let open Tabv_core.Report_json in
  verdict_report_json
    ~run:
      [ ("model", String (name model)); ("seed", Int seed); ("ops", Int ops) ]
    ~properties:result.Testbench.checker_stats ()
