open Tabv_sim

type t = {
  target : Tlm.Target.t;
  obs : Des56_iface.observables;
  (* Output registers (pre-edge view returned by the next frame). *)
  mutable out_reg : int64;
  mutable rdy_reg : bool;
  mutable rdy_nc_reg : bool;
  mutable rdy_nnc_reg : bool;
  (* Operation in flight. *)
  mutable busy : bool;
  mutable countdown : int;
  mutable result : int64;
  mutable completed : int;
}

let advance t (frame : Des56_iface.frame) =
  (* One-cycle pulses. *)
  t.rdy_reg <- false;
  t.rdy_nc_reg <- false;
  t.rdy_nnc_reg <- false;
  if t.busy then begin
    t.countdown <- t.countdown - 1;
    (match t.countdown with
     | 2 -> t.rdy_nnc_reg <- true
     | 1 -> t.rdy_nc_reg <- true
     | 0 ->
       t.out_reg <- t.result;
       t.rdy_reg <- true;
       t.busy <- false;
       t.completed <- t.completed + 1
     | _ -> ())
  end
  else if frame.Des56_iface.f_ds then begin
    t.busy <- true;
    (* The load edge plus 16 rounds: rdy visible 17 frames later. *)
    t.countdown <- Des56_iface.latency - 1;
    t.result <-
      Des.process ~decrypt:frame.Des56_iface.f_decrypt ~key:frame.Des56_iface.f_key
        frame.Des56_iface.f_indata
  end

let create kernel =
  let el = Elab.create kernel in
  Elab.component el "des56_tlm_ca";
  let obs = Des56_iface.create_observables () in
  let t_ref = ref None in
  let transport payload =
    match !t_ref with
    | None -> assert false
    | Some t ->
      (match payload.Tlm.extension with
       | Some (Des56_iface.Frame frame) ->
         (* Pre-edge outputs. *)
         frame.Des56_iface.f_out <- t.out_reg;
         frame.Des56_iface.f_rdy <- t.rdy_reg;
         frame.Des56_iface.f_rdy_next_cycle <- t.rdy_nc_reg;
         frame.Des56_iface.f_rdy_next_next_cycle <- t.rdy_nnc_reg;
         (* Mirror the observable interface as seen at this cycle. *)
         t.obs.Des56_iface.ds <- frame.Des56_iface.f_ds;
         t.obs.Des56_iface.decrypt_obs <- frame.Des56_iface.f_decrypt;
         t.obs.Des56_iface.key_obs <- frame.Des56_iface.f_key;
         t.obs.Des56_iface.indata <- frame.Des56_iface.f_indata;
         t.obs.Des56_iface.out <- t.out_reg;
         t.obs.Des56_iface.rdy <- t.rdy_reg;
         t.obs.Des56_iface.rdy_next_cycle <- t.rdy_nc_reg;
         t.obs.Des56_iface.rdy_next_next_cycle <- t.rdy_nnc_reg;
         (* Advance one cycle. *)
         advance t frame
       | Some _ | None ->
         payload.Tlm.response_ok <- false)
  in
  let target = Tlm.Target.create kernel ~name:"des56_tlm_ca" transport in
  let t =
    {
      target;
      obs;
      out_reg = 0L;
      rdy_reg = false;
      rdy_nc_reg = false;
      rdy_nnc_reg = false;
      busy = false;
      countdown = 0;
      result = 0L;
      completed = 0;
    }
  in
  t_ref := Some t;
  t

let target t = t.target
let observables t = t.obs
let lookup t = Des56_iface.lookup t.obs
let completed t = t.completed
