open Tabv_sim

type t = {
  target : Tlm.Target.t;
  obs : Des56_iface.observables;
  mutable completed : int;
}

let create kernel =
  let el = Elab.create kernel in
  Elab.component el "des56_tlm_lt";
  let obs = Des56_iface.create_observables () in
  let t_ref = ref None in
  let transport payload =
    match !t_ref with
    | None -> assert false
    | Some t ->
      (match payload.Tlm.extension with
       | Some (Des56_iface.At_write request) ->
         (* Loosely timed: compute and deliver within the call. *)
         let result =
           Des.process ~decrypt:request.Des56_iface.a_decrypt
             ~key:request.Des56_iface.a_key request.Des56_iface.a_indata
         in
         t.completed <- t.completed + 1;
         t.obs.Des56_iface.ds <- true;
         t.obs.Des56_iface.decrypt_obs <- request.Des56_iface.a_decrypt;
         t.obs.Des56_iface.key_obs <- request.Des56_iface.a_key;
         t.obs.Des56_iface.indata <- request.Des56_iface.a_indata;
         t.obs.Des56_iface.out <- result;
         t.obs.Des56_iface.rdy <- true;
         payload.Tlm.data <- result
       | Some Des56_iface.At_idle ->
         t.obs.Des56_iface.ds <- false;
         t.obs.Des56_iface.rdy <- false
       | Some (Des56_iface.At_read _ | Des56_iface.At_status _) | Some _ | None ->
         payload.Tlm.response_ok <- false)
  in
  let target = Tlm.Target.create kernel ~name:"des56_tlm_lt" transport in
  let t = { target; obs; completed = 0 } in
  t_ref := Some t;
  t

let target t = t.target
let observables t = t.obs
let lookup t = Des56_iface.lookup t.obs
let completed t = t.completed
