open Tabv_sim

(* The pipeline boundary registers are kernel signals: each clock edge
   reads the previous boundary's (pre-edge) payload and schedules the
   staged payload into the next boundary, exactly like an RTL register
   chain. *)
type t = {
  dv : bool Signal.t;
  r : int Signal.t;
  g : int Signal.t;
  b : int Signal.t;
  ovalid : bool Signal.t;
  y : int Signal.t;
  cb : int Signal.t;
  cr : int Signal.t;
  valids : bool Signal.t array;
  pipe : Colorconv.stage_state option Signal.t array;  (* boundary k: after stage k *)
  mutable completed : int;
}

let create kernel clock =
  let el = Elab.create kernel in
  let t =
    {
      dv = Elab.signal_bool el "dv";
      r = Elab.signal_int el "r";
      g = Elab.signal_int el "g";
      b = Elab.signal_int el "b";
      ovalid = Elab.signal_bool el "ovalid";
      y = Elab.signal_int el "y";
      cb = Elab.signal_int el "cb";
      cr = Elab.signal_int el "cr";
      valids =
        Array.init 7 (fun i -> Elab.signal_bool el (Printf.sprintf "v%d" (i + 1)));
      pipe =
        (* Structured payloads stay heap-backed: the generic
           constructor has no arena pool for option payloads. *)
        Array.init 7 (fun i ->
            Elab.signal el ~init:None (Printf.sprintf "pipe%d" i));
      completed = 0;
    }
  in
  let on_posedge () =
    (* Final stage and output registers, from the pre-edge boundary 6. *)
    (match Signal.read t.pipe.(6) with
     | Some state ->
       let { Colorconv.y; cb; cr } = Colorconv.stage_out (Colorconv.stage 7 state) in
       Signal.write t.y y;
       Signal.write t.cb cb;
       Signal.write t.cr cr;
       Signal.write t.ovalid true;
       t.completed <- t.completed + 1
     | None -> Signal.write t.ovalid false);
    (* Register chain: boundary k latches staged boundary k-1. *)
    for slot = 6 downto 1 do
      let staged =
        match Signal.read t.pipe.(slot - 1) with
        | Some state -> Some (Colorconv.stage slot state)
        | None -> None
      in
      Signal.write t.pipe.(slot) staged;
      Signal.write t.valids.(slot) (staged <> None)
    done;
    let admitted =
      if Signal.read t.dv then
        Some
          (Colorconv.stage_in
             { Colorconv.r = Signal.read t.r; g = Signal.read t.g; b = Signal.read t.b })
      else None
    in
    Signal.write t.pipe.(0) admitted;
    Signal.write t.valids.(0) (admitted <> None)
  in
  Elab.process el ~name:"colorconv_rtl" ~pos:__POS__ ~initialize:false
    ~sensitivity:[ Clock.posedge clock ]
    ~reads:
      ([ Elab.Pack t.dv; Elab.Pack t.r; Elab.Pack t.g; Elab.Pack t.b ]
      @ Array.to_list (Array.map (fun s -> Elab.Pack s) t.pipe))
    ~writes:
      ([ Elab.Pack t.ovalid; Elab.Pack t.y; Elab.Pack t.cb; Elab.Pack t.cr ]
      @ Array.to_list (Array.map (fun s -> Elab.Pack s) t.valids)
      @ Array.to_list (Array.map (fun s -> Elab.Pack s) t.pipe))
    on_posedge;
  t

let dv t = t.dv
let r t = t.r
let g t = t.g
let b t = t.b
let ovalid t = t.ovalid
let y t = t.y
let cb t = t.cb
let cr t = t.cr
let valids t = t.valids

(* Observation paths read through the engine interface
   ([Signal.observe]), keeping traces and lookups engine-agnostic. *)
let bindings t =
  [ ("dv", fun () -> Duv_util.vbool (Signal.observe t.dv));
    ("r", fun () -> Duv_util.vint (Signal.observe t.r));
    ("g", fun () -> Duv_util.vint (Signal.observe t.g));
    ("b", fun () -> Duv_util.vint (Signal.observe t.b));
    ("ovalid", fun () -> Duv_util.vbool (Signal.observe t.ovalid));
    ("y", fun () -> Duv_util.vint (Signal.observe t.y));
    ("cb", fun () -> Duv_util.vint (Signal.observe t.cb));
    ("cr", fun () -> Duv_util.vint (Signal.observe t.cr)) ]
  @ Array.to_list
      (Array.mapi
         (fun i signal ->
           (Printf.sprintf "v%d" (i + 1), fun () -> Duv_util.vbool (Signal.observe signal)))
         t.valids)

let lookup t = Duv_util.lookup_of (bindings t)
let env t = List.map (fun (name, thunk) -> (name, thunk ())) (bindings t)
let completed t = t.completed
