open Tabv_sim

type t = {
  kernel : Kernel.t;
  target : Tlm.Target.t;
  obs : Des56_iface.observables;
  latency_ns : int;
  mutable ready_time : int;
  mutable result : int64;
  mutable have_op : bool;
  mutable completed : int;
}

let op_latency_ns = Des56_iface.latency * Des56_iface.clock_period

let create ?(latency_ns = op_latency_ns) kernel =
  let el = Elab.create kernel in
  Elab.component el "des56_tlm_at";
  let obs = Des56_iface.create_observables () in
  let t_ref = ref None in
  let transport payload =
    match !t_ref with
    | None -> assert false
    | Some t ->
      (match payload.Tlm.extension with
       | Some (Des56_iface.At_write request) ->
         t.result <-
           Des.process ~decrypt:request.Des56_iface.a_decrypt
             ~key:request.Des56_iface.a_key request.Des56_iface.a_indata;
         t.ready_time <- Kernel.now t.kernel + t.latency_ns;
         t.have_op <- true;
         (* Observable state at the strobe instant. *)
         t.obs.Des56_iface.ds <- true;
         t.obs.Des56_iface.decrypt_obs <- request.Des56_iface.a_decrypt;
         t.obs.Des56_iface.key_obs <- request.Des56_iface.a_key;
         t.obs.Des56_iface.indata <- request.Des56_iface.a_indata;
         t.obs.Des56_iface.rdy <- false
       | Some Des56_iface.At_idle ->
         t.obs.Des56_iface.ds <- false
       | Some (Des56_iface.At_read response) ->
         if not t.have_op then payload.Tlm.response_ok <- false
         else begin
           let now = Kernel.now t.kernel in
           if now < t.ready_time then Process.wait_ns t.kernel (t.ready_time - now);
           response.Des56_iface.a_out <- t.result;
           response.Des56_iface.a_rdy <- true;
           t.have_op <- false;
           t.completed <- t.completed + 1;
           t.obs.Des56_iface.ds <- false;
           t.obs.Des56_iface.out <- t.result;
           t.obs.Des56_iface.rdy <- true
         end
       | Some (Des56_iface.At_status response) ->
         response.Des56_iface.a_rdy <- false;
         t.obs.Des56_iface.ds <- false;
         t.obs.Des56_iface.rdy <- false
       | Some _ | None -> payload.Tlm.response_ok <- false)
  in
  let target = Tlm.Target.create kernel ~name:"des56_tlm_at" transport in
  let t =
    {
      kernel;
      target;
      obs;
      latency_ns;
      ready_time = 0;
      result = 0L;
      have_op = false;
      completed = 0;
    }
  in
  t_ref := Some t;
  t

let target t = t.target
let observables t = t.obs
let lookup t = Des56_iface.lookup t.obs
let completed t = t.completed
