open Tabv_sim

type slot = {
  result : Colorconv.ycbcr;
}

type t = {
  target : Tlm.Target.t;
  obs : Colorconv_iface.observables;
  (* Pipeline occupancy: slot k mirrors the RTL pipe register k. *)
  slots : slot option array;  (* length 7 *)
  (* Output registers (pre-edge view). *)
  mutable ovalid_reg : bool;
  mutable y_reg : int;
  mutable cb_reg : int;
  mutable cr_reg : int;
  mutable completed : int;
}

let advance t (frame : Colorconv_iface.frame) =
  (* Output stage: slot 6 completes. *)
  (match t.slots.(6) with
   | Some { result } ->
     t.y_reg <- result.Colorconv.y;
     t.cb_reg <- result.Colorconv.cb;
     t.cr_reg <- result.Colorconv.cr;
     t.ovalid_reg <- true;
     t.completed <- t.completed + 1
   | None -> t.ovalid_reg <- false);
  for slot = 6 downto 1 do
    t.slots.(slot) <- t.slots.(slot - 1)
  done;
  t.slots.(0) <-
    (if frame.Colorconv_iface.c_dv then
       Some
         {
           result =
             Colorconv.convert
               { Colorconv.r = frame.Colorconv_iface.c_r;
                 g = frame.Colorconv_iface.c_g;
                 b = frame.Colorconv_iface.c_b };
         }
     else None)

let create kernel =
  let el = Elab.create kernel in
  Elab.component el "colorconv_tlm_ca";
  let obs = Colorconv_iface.create_observables () in
  let t_ref = ref None in
  let transport payload =
    match !t_ref with
    | None -> assert false
    | Some t ->
      (match payload.Tlm.extension with
       | Some (Colorconv_iface.Frame frame) ->
         (* Pre-edge outputs. *)
         frame.Colorconv_iface.c_ovalid <- t.ovalid_reg;
         frame.Colorconv_iface.c_y <- t.y_reg;
         frame.Colorconv_iface.c_cb <- t.cb_reg;
         frame.Colorconv_iface.c_cr <- t.cr_reg;
         frame.Colorconv_iface.c_valids <-
           Array.map (fun slot -> slot <> None) t.slots;
         (* Mirror. *)
         t.obs.Colorconv_iface.dv <- frame.Colorconv_iface.c_dv;
         t.obs.Colorconv_iface.r <- frame.Colorconv_iface.c_r;
         t.obs.Colorconv_iface.g <- frame.Colorconv_iface.c_g;
         t.obs.Colorconv_iface.b <- frame.Colorconv_iface.c_b;
         t.obs.Colorconv_iface.ovalid <- t.ovalid_reg;
         t.obs.Colorconv_iface.y <- t.y_reg;
         t.obs.Colorconv_iface.cb <- t.cb_reg;
         t.obs.Colorconv_iface.cr <- t.cr_reg;
         t.obs.Colorconv_iface.valids <- Array.copy frame.Colorconv_iface.c_valids;
         advance t frame
       | Some _ | None -> payload.Tlm.response_ok <- false)
  in
  let target = Tlm.Target.create kernel ~name:"colorconv_tlm_ca" transport in
  let t =
    {
      target;
      obs;
      slots = Array.make 7 None;
      ovalid_reg = false;
      y_reg = 0;
      cb_reg = 0;
      cr_reg = 0;
      completed = 0;
    }
  in
  t_ref := Some t;
  t

let target t = t.target
let observables t = t.obs
let lookup t = Colorconv_iface.lookup t.obs
let completed t = t.completed
