open Tabv_sim

type pending =
  | No_op
  | Op of {
      is_write : bool;
      addr : int;
      wdata : int;
      mutable remaining : int;
    }

type t = {
  target : Tlm.Target.t;
  obs : Memctrl_iface.observables;
  memory : int array;
  (* Output registers: the pre-edge view returned by the next frame. *)
  mutable ack_reg : bool;
  mutable ack_nc_reg : bool;
  mutable rdata_reg : int;
  mutable pending : pending;
  mutable completed : int;
}

(* Mirrors the RTL state machine of {!Memctrl_rtl}: the capture frame
   counts as the first cycle. *)
let advance t (frame : Memctrl_iface.frame) =
  t.ack_reg <- false;
  t.ack_nc_reg <- false;
  match t.pending with
  | Op op ->
    op.remaining <- op.remaining - 1;
    if op.remaining = 1 then t.ack_nc_reg <- true
    else if op.remaining = 0 then begin
      if op.is_write then t.memory.(op.addr) <- op.wdata
      else t.rdata_reg <- t.memory.(op.addr);
      t.ack_reg <- true;
      t.completed <- t.completed + 1;
      t.pending <- No_op
    end
  | No_op ->
    if frame.Memctrl_iface.m_req then begin
      let is_write = frame.Memctrl_iface.m_we in
      let latency =
        if is_write then Memctrl_iface.write_latency else Memctrl_iface.read_latency
      in
      let remaining = latency - 1 in
      t.pending <-
        Op
          {
            is_write;
            addr = frame.Memctrl_iface.m_addr land (Memctrl_iface.address_space - 1);
            wdata = frame.Memctrl_iface.m_wdata;
            remaining;
          };
      if remaining = 1 then t.ack_nc_reg <- true
    end

let create kernel =
  let el = Elab.create kernel in
  Elab.component el "memctrl_tlm_ca";
  let obs = Memctrl_iface.create_observables () in
  let t_ref = ref None in
  let transport payload =
    match !t_ref with
    | None -> assert false
    | Some t ->
      (match payload.Tlm.extension with
       | Some (Memctrl_iface.Frame frame) ->
         frame.Memctrl_iface.m_ack <- t.ack_reg;
         frame.Memctrl_iface.m_ack_next_cycle <- t.ack_nc_reg;
         frame.Memctrl_iface.m_rdata <- t.rdata_reg;
         t.obs.Memctrl_iface.req <- frame.Memctrl_iface.m_req;
         t.obs.Memctrl_iface.we <- frame.Memctrl_iface.m_we;
         t.obs.Memctrl_iface.addr <- frame.Memctrl_iface.m_addr;
         t.obs.Memctrl_iface.wdata <- frame.Memctrl_iface.m_wdata;
         t.obs.Memctrl_iface.ack <- t.ack_reg;
         t.obs.Memctrl_iface.ack_next_cycle <- t.ack_nc_reg;
         t.obs.Memctrl_iface.rdata <- t.rdata_reg;
         advance t frame
       | Some _ | None -> payload.Tlm.response_ok <- false)
  in
  let target = Tlm.Target.create kernel ~name:"memctrl_tlm_ca" transport in
  let t =
    {
      target;
      obs;
      memory = Array.make Memctrl_iface.address_space 0;
      ack_reg = false;
      ack_nc_reg = false;
      rdata_reg = 0;
      pending = No_op;
      completed = 0;
    }
  in
  t_ref := Some t;
  t

let target t = t.target
let observables t = t.obs
let lookup t = Memctrl_iface.lookup t.obs
let completed t = t.completed
let peek t address = t.memory.(address land (Memctrl_iface.address_space - 1))
