open Tabv_sim

type t = {
  kernel : Kernel.t;
  target : Tlm.Target.t;
  obs : Colorconv_iface.observables;
  pending : (int * Colorconv.ycbcr) Queue.t;  (* (ready_time, result) *)
  mutable completed : int;
}

let pixel_latency_ns = Colorconv_iface.latency * Colorconv_iface.clock_period

let create kernel =
  let el = Elab.create kernel in
  Elab.component el "colorconv_tlm_at";
  let obs = Colorconv_iface.create_observables () in
  let t_ref = ref None in
  let transport payload =
    match !t_ref with
    | None -> assert false
    | Some t ->
      (match payload.Tlm.extension with
       | Some (Colorconv_iface.At_write pixel) ->
         let ready_time = Kernel.now t.kernel + pixel_latency_ns in
         Queue.add (ready_time, Colorconv.convert pixel) t.pending;
         t.obs.Colorconv_iface.dv <- true;
         t.obs.Colorconv_iface.r <- pixel.Colorconv.r;
         t.obs.Colorconv_iface.g <- pixel.Colorconv.g;
         t.obs.Colorconv_iface.b <- pixel.Colorconv.b
       | Some Colorconv_iface.At_idle -> t.obs.Colorconv_iface.dv <- false
       | Some (Colorconv_iface.At_read response) ->
         if Queue.is_empty t.pending then payload.Tlm.response_ok <- false
         else begin
           let ready_time, result = Queue.pop t.pending in
           let now = Kernel.now t.kernel in
           if now < ready_time then Process.wait_ns t.kernel (ready_time - now);
           response.Colorconv_iface.a_valid <- true;
           response.Colorconv_iface.a_y <- result.Colorconv.y;
           response.Colorconv_iface.a_cb <- result.Colorconv.cb;
           response.Colorconv_iface.a_cr <- result.Colorconv.cr;
           t.completed <- t.completed + 1;
           t.obs.Colorconv_iface.ovalid <- true;
           t.obs.Colorconv_iface.y <- result.Colorconv.y;
           t.obs.Colorconv_iface.cb <- result.Colorconv.cb;
           t.obs.Colorconv_iface.cr <- result.Colorconv.cr
         end
       | Some (Colorconv_iface.At_status response) ->
         response.Colorconv_iface.a_valid <- false;
         t.obs.Colorconv_iface.ovalid <- false
       | Some _ | None -> payload.Tlm.response_ok <- false)
  in
  let target = Tlm.Target.create kernel ~name:"colorconv_tlm_at" transport in
  let t = { kernel; target; obs; pending = Queue.create (); completed = 0 } in
  t_ref := Some t;
  t

let target t = t.target
let observables t = t.obs
let lookup t = Colorconv_iface.lookup t.obs
let completed t = t.completed
