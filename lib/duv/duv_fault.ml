open Tabv_sim
open Tabv_fault

type duv =
  | Des56
  | Colorconv
  | Memctrl

type level =
  | Rtl
  | Tlm_ca
  | Tlm_at
  | Tlm_lt

let duv_to_string = function
  | Des56 -> "des56"
  | Colorconv -> "colorconv"
  | Memctrl -> "memctrl"

let level_to_string = function
  | Rtl -> "rtl"
  | Tlm_ca -> "tlm-ca"
  | Tlm_at -> "tlm-at"
  | Tlm_lt -> "tlm-lt"

(* {2 Lens helpers} *)

let bool_lens get set =
  { Fault.get = (fun () -> if get () then 1L else 0L);
    set = (fun v -> set (Int64.logand v 1L <> 0L));
    width = 1
  }

let int_lens ~width get set =
  { Fault.get = (fun () -> Int64.of_int (get ()));
    set = (fun v -> set (Int64.to_int v));
    width
  }

let int64_lens get set = { Fault.get; set; width = 64 }

(* {2 Bindings} *)

let des56_rtl_binding kernel (m : Des56_rtl.t) =
  { Fault.kernel;
    signals =
      [ ("ds", Fault.Bool_signal (Des56_rtl.ds m));
        ("decrypt", Fault.Bool_signal (Des56_rtl.decrypt m));
        ("key", Fault.Int64_signal { signal = Des56_rtl.key m; width = 64 });
        ("indata", Fault.Int64_signal { signal = Des56_rtl.indata m; width = 64 });
        ("out", Fault.Int64_signal { signal = Des56_rtl.out m; width = 64 });
        ("rdy", Fault.Bool_signal (Des56_rtl.rdy m));
        ("rdy_next_cycle", Fault.Bool_signal (Des56_rtl.rdy_next_cycle m));
        ("rdy_next_next_cycle", Fault.Bool_signal (Des56_rtl.rdy_next_next_cycle m))
      ];
    sockets = []
  }

let des56_tlm_binding kernel initiator (obs : Des56_iface.observables) =
  let fields =
    [ ("ds", bool_lens (fun () -> obs.ds) (fun v -> obs.ds <- v));
      ( "decrypt_obs",
        bool_lens (fun () -> obs.decrypt_obs) (fun v -> obs.decrypt_obs <- v) );
      ("key_obs", int64_lens (fun () -> obs.key_obs) (fun v -> obs.key_obs <- v));
      ("indata", int64_lens (fun () -> obs.indata) (fun v -> obs.indata <- v));
      ("out", int64_lens (fun () -> obs.out) (fun v -> obs.out <- v));
      ("rdy", bool_lens (fun () -> obs.rdy) (fun v -> obs.rdy <- v));
      ( "rdy_next_cycle",
        bool_lens (fun () -> obs.rdy_next_cycle) (fun v -> obs.rdy_next_cycle <- v) );
      ( "rdy_next_next_cycle",
        bool_lens
          (fun () -> obs.rdy_next_next_cycle)
          (fun v -> obs.rdy_next_next_cycle <- v) )
    ]
  in
  { Fault.kernel;
    signals = [];
    sockets = [ (Tlm.Initiator.name initiator, { Fault.initiator; fields }) ]
  }

let colorconv_rtl_binding kernel (m : Colorconv_rtl.t) =
  let valids = Colorconv_rtl.valids m in
  let valid_signals =
    Array.to_list
      (Array.mapi
         (fun i s -> (Printf.sprintf "v%d" (i + 1), Fault.Bool_signal s))
         valids)
  in
  { Fault.kernel;
    signals =
      [ ("dv", Fault.Bool_signal (Colorconv_rtl.dv m));
        ("r", Fault.Int_signal { signal = Colorconv_rtl.r m; width = 8 });
        ("g", Fault.Int_signal { signal = Colorconv_rtl.g m; width = 8 });
        ("b", Fault.Int_signal { signal = Colorconv_rtl.b m; width = 8 });
        ("ovalid", Fault.Bool_signal (Colorconv_rtl.ovalid m));
        ("y", Fault.Int_signal { signal = Colorconv_rtl.y m; width = 8 });
        ("cb", Fault.Int_signal { signal = Colorconv_rtl.cb m; width = 8 });
        ("cr", Fault.Int_signal { signal = Colorconv_rtl.cr m; width = 8 })
      ]
      @ valid_signals;
    sockets = []
  }

let colorconv_tlm_binding kernel initiator (obs : Colorconv_iface.observables) =
  let valid_fields =
    List.init 7 (fun i ->
        ( Printf.sprintf "v%d" (i + 1),
          bool_lens (fun () -> obs.valids.(i)) (fun v -> obs.valids.(i) <- v) ))
  in
  let fields =
    [ ("dv", bool_lens (fun () -> obs.dv) (fun v -> obs.dv <- v));
      ("r", int_lens ~width:8 (fun () -> obs.r) (fun v -> obs.r <- v));
      ("g", int_lens ~width:8 (fun () -> obs.g) (fun v -> obs.g <- v));
      ("b", int_lens ~width:8 (fun () -> obs.b) (fun v -> obs.b <- v));
      ("ovalid", bool_lens (fun () -> obs.ovalid) (fun v -> obs.ovalid <- v));
      ("y", int_lens ~width:8 (fun () -> obs.y) (fun v -> obs.y <- v));
      ("cb", int_lens ~width:8 (fun () -> obs.cb) (fun v -> obs.cb <- v));
      ("cr", int_lens ~width:8 (fun () -> obs.cr) (fun v -> obs.cr <- v))
    ]
    @ valid_fields
  in
  { Fault.kernel;
    signals = [];
    sockets = [ (Tlm.Initiator.name initiator, { Fault.initiator; fields }) ]
  }

let memctrl_rtl_binding kernel (m : Memctrl_rtl.t) =
  { Fault.kernel;
    signals =
      [ ("req", Fault.Bool_signal (Memctrl_rtl.req m));
        ("we", Fault.Bool_signal (Memctrl_rtl.we m));
        ("addr", Fault.Int_signal { signal = Memctrl_rtl.addr m; width = 8 });
        ("wdata", Fault.Int_signal { signal = Memctrl_rtl.wdata m; width = 16 });
        ("ack", Fault.Bool_signal (Memctrl_rtl.ack m));
        ("ack_next_cycle", Fault.Bool_signal (Memctrl_rtl.ack_next_cycle m));
        ("rdata", Fault.Int_signal { signal = Memctrl_rtl.rdata m; width = 16 })
      ];
    sockets = []
  }

let memctrl_tlm_binding kernel initiator (obs : Memctrl_iface.observables) =
  let fields =
    [ ("req", bool_lens (fun () -> obs.req) (fun v -> obs.req <- v));
      ("we", bool_lens (fun () -> obs.we) (fun v -> obs.we <- v));
      ("addr", int_lens ~width:8 (fun () -> obs.addr) (fun v -> obs.addr <- v));
      ("wdata", int_lens ~width:16 (fun () -> obs.wdata) (fun v -> obs.wdata <- v));
      ("ack", bool_lens (fun () -> obs.ack) (fun v -> obs.ack <- v));
      ( "ack_next_cycle",
        bool_lens (fun () -> obs.ack_next_cycle) (fun v -> obs.ack_next_cycle <- v) );
      ("rdata", int_lens ~width:16 (fun () -> obs.rdata) (fun v -> obs.rdata <- v))
    ]
  in
  { Fault.kernel;
    signals = [];
    sockets = [ (Tlm.Initiator.name initiator, { Fault.initiator; fields }) ]
  }

(* {2 Sockets} *)

let socket_for duv level =
  match (duv, level) with
  | _, Rtl -> None
  | Des56, Tlm_ca -> Some "des56_ca_init"
  | Des56, Tlm_at -> Some "des56_at_init"
  | Des56, Tlm_lt -> Some "des56_lt_init"
  | Colorconv, Tlm_ca -> Some "colorconv_ca_init"
  | Colorconv, Tlm_at -> Some "colorconv_at_init"
  | Colorconv, Tlm_lt -> None
  | Memctrl, Tlm_ca -> Some "memctrl_ca_init"
  | Memctrl, Tlm_at -> Some "memctrl_at_init"
  | Memctrl, Tlm_lt -> None

(* {2 Named fault catalog}

   Each named fault is one conceptual design bug, compiled to the
   level-appropriate injection.  At RTL the fault is a saboteur on the
   port signal; at the TLM levels it is a [Corrupt_field] mutator on
   the initiator socket targeting the same-named observable — the
   state the TLM property checkers sample.  [None] marks a level where
   the fault's carrier was abstracted away (e.g. the pipeline
   stage-valids at TLM-AT) or where the model keeps no comparable
   observable (TLM-LT). *)

let signal_plan ~name ~signal fault =
  Fault.plan ~name [ Fault.Signal_fault { signal; fault } ]

let field_plan ~name ~socket ~field fault =
  Fault.plan ~name
    [ Fault.Tlm_mutation { socket; fault = Fault.Corrupt_field { field; fault } } ]

(* One clock period, ns (all three DUVs use the same reference clock). *)
let period = 10

(* DES56: rdy is written at the edge ending round 16 (t = 160 for an
   op strobed at t = 0 with the standard testbench schedule) and is
   sampled by the checkers one period later.  The RTL glitch window
   [170, 180) covers the update instant of the first result; the TLM
   window [180, 190) covers the transaction-end instant where the
   lens applies.  Both corrupt exactly one observation of [rdy]. *)
let des56_rtl_glitch_from = 17 * period
let des56_tlm_glitch_from = 18 * period

let des56_fault_names =
  [ "out_stuck0"; "rdy_nc_stuck0"; "rdy_glitch"; "key_flip"; "out_stuck0_late" ]

let des56_plan_for level name =
  let socket = socket_for Des56 level in
  match (name, level, socket) with
  (* Datapath bug: the result bus reads all-zeroes. *)
  | "out_stuck0", Rtl, _ ->
    Some (signal_plan ~name ~signal:"out" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "out_stuck0", (Tlm_ca | Tlm_at), Some socket ->
    Some (field_plan ~name ~socket ~field:"out" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "out_stuck0", _, _ -> None
  (* The early-warning flag never asserts (abstracted away at AT/LT). *)
  | "rdy_nc_stuck0", Rtl, _ ->
    Some
      (signal_plan ~name ~signal:"rdy_next_cycle" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "rdy_nc_stuck0", Tlm_ca, Some socket ->
    Some
      (field_plan ~name ~socket ~field:"rdy_next_cycle"
         (Fault.Stuck_at_0 { from_ns = 0 }))
  | "rdy_nc_stuck0", _, _ -> None
  (* A one-observation glitch on the completion handshake. *)
  | "rdy_glitch", Rtl, _ ->
    Some
      (signal_plan ~name ~signal:"rdy"
         (Fault.Glitch { bit = 0; from_ns = des56_rtl_glitch_from; duration_ns = period }))
  | "rdy_glitch", (Tlm_ca | Tlm_at), Some socket ->
    Some
      (field_plan ~name ~socket ~field:"rdy"
         (Fault.Glitch { bit = 0; from_ns = des56_tlm_glitch_from; duration_ns = period }))
  | "rdy_glitch", _, _ -> None
  (* A transient key-bus upset mid-operation: functionally corrupting
     but invisible to the interface properties — the canonical miss. *)
  | "key_flip", Rtl, _ ->
    Some (signal_plan ~name ~signal:"key" (Fault.Bit_flip { bit = 5; at_ns = 4 * period }))
  | "key_flip", (Tlm_ca | Tlm_at), Some socket ->
    Some
      (field_plan ~name ~socket ~field:"key_obs"
         (Fault.Bit_flip { bit = 5; at_ns = 4 * period }))
  | "key_flip", _, _ -> None
  (* Same bug as out_stuck0, armed long after the workload ends: the
     canonical latent fault (never exercised). *)
  | "out_stuck0_late", Rtl, _ ->
    Some (signal_plan ~name ~signal:"out" (Fault.Stuck_at_0 { from_ns = 1_000_000_000 }))
  | "out_stuck0_late", (Tlm_ca | Tlm_at), Some socket ->
    Some
      (field_plan ~name ~socket ~field:"out"
         (Fault.Stuck_at_0 { from_ns = 1_000_000_000 }))
  | "out_stuck0_late", _, _ -> None
  | _ ->
    invalid_arg (Printf.sprintf "Duv_fault.plan_for: unknown des56 fault %S" name)

let colorconv_fault_names = [ "ovalid_stuck0"; "y_stuck1"; "v3_stuck0" ]

let colorconv_plan_for level name =
  let socket = socket_for Colorconv level in
  match (name, level, socket) with
  (* Output handshake dead: no pixel is ever flagged valid. *)
  | "ovalid_stuck0", Rtl, _ ->
    Some (signal_plan ~name ~signal:"ovalid" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "ovalid_stuck0", (Tlm_ca | Tlm_at), Some socket ->
    Some (field_plan ~name ~socket ~field:"ovalid" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "ovalid_stuck0", _, _ -> None
  (* Luma bus stuck high: 255 is outside the ITU-R range [16, 235]. *)
  | "y_stuck1", Rtl, _ ->
    Some (signal_plan ~name ~signal:"y" (Fault.Stuck_at_1 { from_ns = 0 }))
  | "y_stuck1", (Tlm_ca | Tlm_at), Some socket ->
    Some (field_plan ~name ~socket ~field:"y" (Fault.Stuck_at_1 { from_ns = 0 }))
  | "y_stuck1", _, _ -> None
  (* A mid-pipeline occupancy flag dies; its carrier (v3) is removed
     by the RTL-to-TLM-AT abstraction. *)
  | "v3_stuck0", Rtl, _ ->
    Some (signal_plan ~name ~signal:"v3" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "v3_stuck0", Tlm_ca, Some socket ->
    Some (field_plan ~name ~socket ~field:"v3" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "v3_stuck0", _, _ -> None
  | _ ->
    invalid_arg (Printf.sprintf "Duv_fault.plan_for: unknown colorconv fault %S" name)

let memctrl_fault_names = [ "ack_stuck0"; "ack_nc_stuck0"; "rdata_stuck1" ]

let memctrl_plan_for level name =
  let socket = socket_for Memctrl level in
  match (name, level, socket) with
  (* Completion handshake dead at every level. *)
  | "ack_stuck0", Rtl, _ ->
    Some (signal_plan ~name ~signal:"ack" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "ack_stuck0", (Tlm_ca | Tlm_at), Some socket ->
    Some (field_plan ~name ~socket ~field:"ack" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "ack_stuck0", _, _ -> None
  (* Early-warning flag dead (abstracted away at TLM-AT). *)
  | "ack_nc_stuck0", Rtl, _ ->
    Some
      (signal_plan ~name ~signal:"ack_next_cycle" (Fault.Stuck_at_0 { from_ns = 0 }))
  | "ack_nc_stuck0", Tlm_ca, Some socket ->
    Some
      (field_plan ~name ~socket ~field:"ack_next_cycle"
         (Fault.Stuck_at_0 { from_ns = 0 }))
  | "ack_nc_stuck0", _, _ -> None
  (* Read-data bus stuck high: corrupts data but no interface property
     checks read values against an oracle — a designed-in miss. *)
  | "rdata_stuck1", Rtl, _ ->
    Some (signal_plan ~name ~signal:"rdata" (Fault.Stuck_at_1 { from_ns = 0 }))
  | "rdata_stuck1", (Tlm_ca | Tlm_at), Some socket ->
    Some (field_plan ~name ~socket ~field:"rdata" (Fault.Stuck_at_1 { from_ns = 0 }))
  | "rdata_stuck1", _, _ -> None
  | _ ->
    invalid_arg (Printf.sprintf "Duv_fault.plan_for: unknown memctrl fault %S" name)

let fault_names = function
  | Des56 -> des56_fault_names
  | Colorconv -> colorconv_fault_names
  | Memctrl -> memctrl_fault_names

let plan_for duv level name =
  match duv with
  | Des56 -> des56_plan_for level name
  | Colorconv -> colorconv_plan_for level name
  | Memctrl -> memctrl_plan_for level name

(* {2 Chaos / resilience plans} *)

let crash_plan ~at_ns ~name =
  Fault.plan ~name:"chaos-crash" [ Fault.Chaos (Fault.Crash { at_ns; name }) ]

let livelock_plan ~at_ns =
  Fault.plan ~name:"chaos-livelock" [ Fault.Chaos (Fault.Livelock_loop { at_ns }) ]

let hang_plan duv level ~index =
  Option.map
    (fun socket ->
      Fault.plan ~name:"chaos-hang"
        [ Fault.Tlm_mutation { socket; fault = Fault.Hang { index } } ])
    (socket_for duv level)
