open Tabv_sim
open Tabv_fault

(** Per-DUV fault adapters: bindings that make each model injectable
    through the generic {!Fault} subsystem, plus a catalog of named
    cross-level faults for qualification campaigns.

    A binding resolves a {!Fault.plan}'s names against one concrete
    design: at RTL the property signals become saboteur targets; at
    the TLM levels the initiator socket takes the mutators and the
    model's {e observables} record provides the {!Fault.lens}es for
    [Corrupt_field] — corruption lands on exactly the state the
    property checkers sample (one delta after transport), so no DUV
    logic is touched at any level.

    The catalog names conceptual design bugs ("out_stuck0",
    "rdy_glitch", ...) and compiles each into the level-appropriate
    plan; {!plan_for} answers [None] where the fault's carrier was
    abstracted away at that level (e.g. [rdy_next_cycle] at TLM-AT). *)

type duv =
  | Des56
  | Colorconv
  | Memctrl

type level =
  | Rtl
  | Tlm_ca
  | Tlm_at
  | Tlm_lt

val duv_to_string : duv -> string
val level_to_string : level -> string

(** {2 Bindings} *)

val des56_rtl_binding : Kernel.t -> Des56_rtl.t -> Fault.binding

(** [des56_tlm_binding kernel initiator obs] — works for CA, AT and LT
    models alike (they share the observables record). *)
val des56_tlm_binding :
  Kernel.t -> Tlm.Initiator.t -> Des56_iface.observables -> Fault.binding

val colorconv_rtl_binding : Kernel.t -> Colorconv_rtl.t -> Fault.binding

val colorconv_tlm_binding :
  Kernel.t -> Tlm.Initiator.t -> Colorconv_iface.observables -> Fault.binding

val memctrl_rtl_binding : Kernel.t -> Memctrl_rtl.t -> Fault.binding

val memctrl_tlm_binding :
  Kernel.t -> Tlm.Initiator.t -> Memctrl_iface.observables -> Fault.binding

(** {2 Named fault catalog} *)

(** Fault names for one DUV, in canonical (report) order. *)
val fault_names : duv -> string list

(** The level-appropriate plan for a named fault; [None] when the
    fault has no carrier at that level.
    @raise Invalid_argument on an unknown fault name. *)
val plan_for : duv -> level -> string -> Fault.plan option

(** Initiator socket name of the given TLM testbench ([None] at RTL
    or for levels a DUV does not implement). *)
val socket_for : duv -> level -> string option

(** {2 Chaos / resilience plans} *)

val crash_plan : at_ns:int -> name:string -> Fault.plan
val livelock_plan : at_ns:int -> Fault.plan

(** A [Hang] mutator on the DUV's initiator socket (TLM levels only):
    the driver blocks forever and the run ends [Starved] — the
    deadlock scenario. *)
val hang_plan : duv -> level -> index:int -> Fault.plan option
