open Tabv_sim
open Tabv_checker

let period = Memctrl_iface.clock_period

let reference_reads ops =
  let memory = Array.make Memctrl_iface.address_space 0 in
  List.filter_map
    (fun op ->
      match op with
      | Memctrl_iface.Write { addr; wdata } ->
        memory.(addr land (Memctrl_iface.address_space - 1)) <- wdata;
        None
      | Memctrl_iface.Read { addr } ->
        Some memory.(addr land (Memctrl_iface.address_space - 1)))
    ops

let op_latency = function
  | Memctrl_iface.Write _ -> Memctrl_iface.write_latency
  | Memctrl_iface.Read _ -> Memctrl_iface.read_latency

let run_rtl ?(properties = []) ?engine ?sim_engine ?metrics ?trace_writer
    ?(gap_cycles = 2) ?fault_plan ?guard ops =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let clock = Clock.create kernel ~name:"clk" ~period () in
  let model = Memctrl_rtl.create kernel clock in
  let faults =
    Testbench.install_plan (Duv_fault.memctrl_rtl_binding kernel model) fault_plan
  in
  let lookup = Memctrl_rtl.lookup model in
  let sampler = Testbench.pool_sampler kernel in
  let checkers =
    Testbench.attach_pool ?engine kernel (Checker.Attach.clock_edge clock)
      sampler properties ~lookup
  in
  Testbench.arm_writer kernel trace_writer;
  if trace_writer <> None then
    Process.method_process kernel ~name:"trace_bin" ~initialize:false
      ~sensitivity:[ Clock.posedge clock ]
      (fun () ->
        Testbench.write_sample trace_writer ~time:(Kernel.now kernel)
          (Memctrl_rtl.env model));
  let outputs = ref [] in
  Process.spawn kernel ~name:"driver" (fun () ->
    let negedge = Clock.negedge clock in
    Process.wait_event negedge;
    List.iter
      (fun op ->
        (match op with
         | Memctrl_iface.Write { addr; wdata } ->
           Signal.write (Memctrl_rtl.req model) true;
           Signal.write (Memctrl_rtl.we model) true;
           Signal.write (Memctrl_rtl.addr model) addr;
           Signal.write (Memctrl_rtl.wdata model) wdata
         | Memctrl_iface.Read { addr } ->
           Signal.write (Memctrl_rtl.req model) true;
           Signal.write (Memctrl_rtl.we model) false;
           Signal.write (Memctrl_rtl.addr model) addr);
        Process.wait_event negedge;
        Signal.write (Memctrl_rtl.req model) false;
        for _ = 1 to op_latency op + gap_cycles do
          Process.wait_event negedge
        done;
        match op with
        | Memctrl_iface.Read _ ->
          outputs := Int64.of_int (Signal.read (Memctrl_rtl.rdata model)) :: !outputs
        | Memctrl_iface.Write _ -> ())
      ops;
    for _ = 1 to 3 do
      Process.wait_event negedge
    done;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    Testbench.sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = 0;
    completed_ops = Memctrl_rtl.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = Testbench.metrics_snapshot kernel;
    trace = None;
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = Testbench.faults_triggered_of faults;
  }

let run_tlm_ca ?(properties = []) ?engine ?sim_engine ?metrics ?trace_writer
    ?(gap_cycles = 2) ?fault_plan ?guard ops =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let model = Memctrl_tlm_ca.create kernel in
  let initiator = Tlm.Initiator.create kernel ~name:"memctrl_ca_init" in
  Tlm.Initiator.bind initiator (Memctrl_tlm_ca.target model);
  let faults =
    Testbench.install_plan
      (Duv_fault.memctrl_tlm_binding kernel initiator
         (Memctrl_tlm_ca.observables model))
      fault_plan
  in
  let lookup = Memctrl_tlm_ca.lookup model in
  let sampler = Testbench.pool_sampler kernel in
  let checkers =
    Testbench.attach_pool ?engine kernel
      (Checker.Attach.transaction_unabstracted initiator)
      sampler properties ~lookup
  in
  Testbench.arm_writer kernel trace_writer;
  if trace_writer <> None then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      Testbench.write_transaction trace_writer transaction
        (Memctrl_iface.env_of (Memctrl_tlm_ca.observables model)));
  let outputs = ref [] in
  Process.spawn kernel ~name:"driver" (fun () ->
    Process.wait_ns kernel period;
    let send_frame frame want_read =
      let payload = Tlm.make_payload ~extension:(Memctrl_iface.Frame frame) Tlm.Write in
      Tlm.Initiator.b_transport initiator payload;
      if want_read && frame.Memctrl_iface.m_ack then
        outputs := Int64.of_int frame.Memctrl_iface.m_rdata :: !outputs;
      Process.wait_ns kernel period
    in
    List.iter
      (fun op ->
        let is_read =
          match op with
          | Memctrl_iface.Read _ -> true
          | Memctrl_iface.Write _ -> false
        in
        (match op with
         | Memctrl_iface.Write { addr; wdata } ->
           send_frame (Memctrl_iface.make_frame ~req:true ~we:true ~addr ~wdata ()) false
         | Memctrl_iface.Read { addr } ->
           send_frame (Memctrl_iface.make_frame ~req:true ~addr ()) false);
        for _ = 1 to op_latency op + gap_cycles do
          send_frame (Memctrl_iface.make_frame ()) is_read
        done)
      ops;
    for _ = 1 to 3 do
      send_frame (Memctrl_iface.make_frame ()) false
    done;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    Testbench.sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = Tlm.Initiator.transaction_count initiator;
    completed_ops = Memctrl_tlm_ca.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = Testbench.metrics_snapshot kernel;
    trace = None;
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = Testbench.faults_triggered_of faults;
  }

let run_tlm_at ?(properties = []) ?engine ?sim_engine ?metrics ?trace_writer
    ?(gap_cycles = 2) ?write_latency_ns ?read_latency_ns ?fault_plan ?guard ops =
  let kernel = Kernel.create ?metrics ?engine:sim_engine () in
  let model = Memctrl_tlm_at.create ?write_latency_ns ?read_latency_ns kernel in
  let initiator = Tlm.Initiator.create kernel ~name:"memctrl_at_init" in
  Tlm.Initiator.bind initiator (Memctrl_tlm_at.target model);
  let faults =
    Testbench.install_plan
      (Duv_fault.memctrl_tlm_binding kernel initiator
         (Memctrl_tlm_at.observables model))
      fault_plan
  in
  let lookup = Memctrl_tlm_at.lookup model in
  let sampler = Testbench.pool_sampler kernel in
  let checkers =
    Testbench.attach_pool ?engine kernel
      (Checker.Attach.transaction initiator)
      sampler properties ~lookup
  in
  Testbench.arm_writer kernel trace_writer;
  if trace_writer <> None then
    Tlm.Initiator.on_transaction initiator (fun transaction ->
      Testbench.write_transaction trace_writer transaction
        (Memctrl_iface.env_of (Memctrl_tlm_at.observables model)));
  let outputs = ref [] in
  Process.spawn kernel ~name:"driver" (fun () ->
    Process.wait_ns kernel period;
    let transport extension =
      Tlm.Initiator.b_transport initiator (Tlm.make_payload ~extension Tlm.Write)
    in
    List.iter
      (fun op ->
        (match op with
         | Memctrl_iface.Write { addr; wdata } ->
           transport (Memctrl_iface.At_write { w_addr = addr; w_data = wdata })
         | Memctrl_iface.Read { addr } ->
           transport (Memctrl_iface.At_read_req { r_addr = addr }));
        Process.wait_ns kernel period;
        transport Memctrl_iface.At_idle;
        let response = { Memctrl_iface.a_ack = false; a_rdata = 0 } in
        transport (Memctrl_iface.At_collect response);
        (match op with
         | Memctrl_iface.Read _ when response.Memctrl_iface.a_ack ->
           outputs := Int64.of_int response.Memctrl_iface.a_rdata :: !outputs
         | Memctrl_iface.Read _ | Memctrl_iface.Write _ -> ());
        Process.wait_ns kernel period;
        transport (Memctrl_iface.At_status { Memctrl_iface.a_ack = false; a_rdata = 0 });
        Process.wait_ns kernel (gap_cycles * period))
      ops;
    Process.wait_ns kernel period;
    Kernel.stop kernel);
  let sim_time_ns = Kernel.run ?guard kernel in
  {
    Testbench.sim_time_ns;
    kernel_activations = Kernel.activation_count kernel;
    delta_cycles = Kernel.delta_count kernel;
    transactions = Tlm.Initiator.transaction_count initiator;
    completed_ops = Memctrl_tlm_at.completed model;
    outputs = List.rev !outputs;
    checker_stats = List.map Checker.snapshot checkers;
    metrics = Testbench.metrics_snapshot kernel;
    trace = None;
    diagnosis = Kernel.last_diagnosis kernel;
    faults_triggered = Testbench.faults_triggered_of faults;
  }
