open Tabv_sim

(** DES56 RTL model: round-per-cycle datapath on the simulation
    kernel.

    A method process sensitive to the positive clock edge implements
    the controller and the Feistel datapath, one round per cycle:
    {v
      edge e0        : ds sampled high -> IP, key schedule  (load)
      edges e0+1..16 : one Feistel round each
      edge  e0+16    : writes out / rdy        (visible at e0+17)
      edge  e0+15    : writes rdy_next_cycle   (visible at e0+16)
      edge  e0+14    : writes rdy_next_next_cycle (visible at e0+15)
    v}

    Checkers and trace recorders sampling at the positive edge see
    pre-edge values, so [rdy] is observed exactly [latency] evaluation
    points after [ds] — the timing the Fig. 3 properties assert. *)

type t

(** Injectable design bugs, for ABV demonstrations and negative
    tests.

    Deprecated shim: these named variants predate the generic
    {!Tabv_fault.Fault} subsystem.  [Rdy_next_cycle_stuck_low] and
    [Result_zeroed] are now implemented as stuck-at-0 saboteurs
    installed through the {!Tabv_sim.Signal} interposition hook
    (identical observable behaviour); only the timing fault
    [Rdy_one_cycle_late] remains behavioural.  New code should pass a
    [Fault.plan] to the testbench run functions instead. *)
type fault =
  | Rdy_one_cycle_late
      (** result and [rdy] delivered at cycle 18 instead of 17 *)
  | Rdy_next_cycle_stuck_low  (** the early-warning flag never asserts *)
  | Result_zeroed  (** datapath bug: [out] forced to 0 *)

(** [?fault] is the deprecated shim described above. *)
val create : ?fault:fault -> Kernel.t -> Clock.t -> t

(* Input ports (driven by the testbench). *)
val ds : t -> bool Signal.t
val decrypt : t -> bool Signal.t
val key : t -> int64 Signal.t
val indata : t -> int64 Signal.t

(* Output ports. *)
val out : t -> int64 Signal.t
val rdy : t -> bool Signal.t
val rdy_next_cycle : t -> bool Signal.t
val rdy_next_next_cycle : t -> bool Signal.t

(** Property-layer view of the current (pre-edge) port values. *)
val lookup : t -> string -> Tabv_psl.Expr.value option

(** Environment snapshot for trace recording. *)
val env : t -> (string * Tabv_psl.Expr.value) list

(** Operations completed since creation. *)
val completed : t -> int
