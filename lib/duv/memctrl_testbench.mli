open Tabv_psl
open Tabv_checker

(** Testbenches for the MemCtrl IP (RTL and TLM-AT). *)

(** Expected read-data sequence for a workload (reference model). *)
val reference_reads : Memctrl_iface.op list -> int list

val run_rtl :
  ?properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?gap_cycles:int ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Memctrl_iface.op list ->
  Testbench.run_result

(** Cycle-accurate TLM: the unabstracted RTL properties are reused
    as-is (one frame transaction per clock period). *)
val run_tlm_ca :
  ?properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?gap_cycles:int ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Memctrl_iface.op list ->
  Testbench.run_result

(** [write_latency_ns]/[read_latency_ns] override the model latencies
    (defaults 20/30 ns) to emulate a wrong abstraction. *)
val run_tlm_at :
  ?properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?gap_cycles:int ->
  ?write_latency_ns:int ->
  ?read_latency_ns:int ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Memctrl_iface.op list ->
  Testbench.run_result
