(** The built-in DUV model catalog.

    One first-class enumeration of every model `tabv` can drive, with
    the plumbing every entry point shares: model names, the interface
    signals a property may mention, which property set a run attaches
    (including the Methodology III.1 abstraction on the
    approximately-timed models) and which testbench drives it.

    [bin/cli.ml] (one-shot subcommands) and {!Tabv_serve} (the
    verification service) are both thin clients of this module — the
    byte-identity contracts (record + recheck == live check; served
    report == one-shot CLI report) depend on every path building runs
    identically. *)

type t =
  | Des56_rtl
  | Des56_ca
  | Des56_at
  | Des56_lt
  | Colorconv_rtl
  | Colorconv_ca
  | Colorconv_at
  | Memctrl_rtl
  | Memctrl_ca
  | Memctrl_at

(** CLI-name / model pairs, in documentation order. *)
val names : (string * t) list

val name : t -> string
val of_name : string -> t option

(** The interface signal names properties may mention on this model
    (for linting user property files). *)
val known_signals : t -> string list

(** Split the automatically-safe Methodology III.1 abstractions of
    [properties] into strict-wrapper properties and grid-wrapper ones
    (timed operators under until/release need the full clock grid).
    Clock period 10 ns. *)
val abstract_for_at :
  abstracted_signals:string list ->
  Tabv_psl.Property.t list ->
  Tabv_psl.Property.t list * Tabv_psl.Property.t list

(** [properties_for model user] — the [(properties, grid_properties)]
    a run actually attaches, in attach (= report) order, given the
    optional user property set. *)
val properties_for :
  t ->
  Tabv_psl.Property.t list option ->
  Tabv_psl.Property.t list * Tabv_psl.Property.t list

(** Drive [model] over its seeded workload.  [trace_writer] taps the
    checker evaluation points into a binary trace; [sim_engine]
    overrides the process-wide kernel engine default for exactly this
    run (the serve daemon threads it here so concurrent requests with
    different engines never race on the global default). *)
val run :
  ?metrics:Tabv_obs.Metrics.t ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  t ->
  seed:int ->
  ops:int ->
  properties:Tabv_psl.Property.t list ->
  grid_properties:Tabv_psl.Property.t list ->
  Testbench.run_result

(** Whether `tabv record` accepts this model (the LT model is not
    timing equivalent, so a trace of it would not replay
    meaningfully). *)
val supports_trace : t -> bool

(** The deterministic verdict report of one run: run identification
    plus per-property counters in attach order.  Every producer of
    this document (live check, recheck-from-trace, the serve daemon
    warm or cold) must be byte-identical. *)
val verdict_report :
  t -> seed:int -> ops:int -> Testbench.run_result -> Tabv_core.Report_json.json
