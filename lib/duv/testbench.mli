open Tabv_psl
open Tabv_checker

(** Testbenches: drive each DUV model over a workload, optionally with
    checkers attached and/or an evaluation trace recorded.

    Conventions shared by all testbenches (clock period 10 ns):
    {ul
    {- RTL: inputs are driven on the falling edge, sampled at the next
       rising edge; checkers and the trace recorder sample at rising
       edges;}
    {- TLM-CA: one cycle-frame transaction per 10 ns, so checkers see
       exactly one evaluation point per clock cycle;}
    {- TLM-AT: transactions only at the instants where the preserved
       I/O signals change (strobe rise, strobe fall, result ready,
       ready fall).}} *)

(** Re-export of {!Tabv_obs.Checker_snapshot.t}: per-property checker
    statistics are one shared record from monitor to JSON report. *)
type checker_stat = Tabv_obs.Checker_snapshot.t = {
  property_name : string;
  engine : string;  (** backend actually used (after any fallback) *)
  activations : int;
  passes : int;
  trivial_passes : int;
  vacuous : bool;  (** evaluated but never non-trivially activated *)
  peak_instances : int;
  peak_distinct_states : int;
      (** peak distinct hash-consed states (interned engine; equals
          [peak_instances] for the legacy/automaton backends) *)
  pending : int;
  steps : int;  (** evaluation points consumed (after context gating) *)
  cache_hits : int;  (** monitor steps answered from the transition memo *)
  cache_misses : int;  (** monitor steps that ran the rewriting *)
  failures : Monitor.failure list;
}

type run_result = {
  sim_time_ns : int;
  kernel_activations : int;
  delta_cycles : int;
  transactions : int;  (** 0 for RTL runs *)
  completed_ops : int;
  outputs : int64 list;  (** DES56 results / packed YCbCr pixels, in order *)
  checker_stats : checker_stat list;
  metrics : (string * Tabv_obs.Metrics.value) list;
      (** end-of-run registry snapshot; [[]] unless the run was given
          an enabled {!Tabv_obs.Metrics.t} *)
  trace : Trace.t option;
  diagnosis : Tabv_sim.Kernel.diagnosis;
      (** how the simulation ended ([Completed] for a clean stop;
          [Starved]/[Livelock]/[Budget_exhausted]/[Process_crashed]
          under fault injection or a tripped {!Tabv_sim.Kernel.guard}) *)
  faults_triggered : int;
      (** activations of the run's {!Tabv_fault.Fault.plan}; [0] when
          no plan was given or the plan was latent (never exercised) *)
}

(** Total failures across all checkers. *)
val total_failures : run_result -> int

(** Snapshot a monitor's counters (used by sibling testbenches, e.g.
    {!Memctrl_testbench}); alias of {!Monitor.snapshot}. *)
val stat_of_monitor : Monitor.t -> checker_stat

(** [hits / (hits + misses)], 0 when the checker never stepped. *)
val cache_hit_rate : checker_stat -> float

val pp_checker_stat : Format.formatter -> checker_stat -> unit

(** The versioned observability document for one run
    ({!Tabv_core.Report_json.metrics_json}): run counters, the
    registry snapshot, per-property checker snapshots and the
    process-global engine cache statistics.  [run] prepends run
    identification fields (model name, seed, ...) to the ["run"]
    section. *)
val metrics_json :
  ?run:(string * Tabv_core.Report_json.json) list ->
  run_result ->
  Tabv_core.Report_json.json

(** {1 Checker-pool plumbing}

    Shared by the sibling testbenches (e.g. {!Memctrl_testbench}). *)

(** A fresh shared atom sampler whose query/eval counters are
    published on the kernel's metrics registry (when enabled) as the
    summed probes [checker.sampler.queries] / [checker.sampler.evals]. *)
val pool_sampler : Tabv_sim.Kernel.t -> Sampler.t

(** Attach every property through the unified {!Checker.attach} entry
    point with one shared mode/sampler. *)
val attach_pool :
  ?engine:Monitor.engine ->
  Tabv_sim.Kernel.t ->
  Checker.Attach.mode ->
  Sampler.t ->
  Property.t list ->
  lookup:(string -> Expr.value option) ->
  Checker.t list

(** End-of-run registry snapshot; [[]] when the kernel's registry is
    disabled (so default runs never pay for snapshotting). *)
val metrics_snapshot :
  Tabv_sim.Kernel.t -> (string * Tabv_obs.Metrics.value) list

(** {1 Trace-writer plumbing}

    Every testbench accepts an optional streaming binary
    {!Tabv_trace.Writer.t} ([?trace_writer]) fed from the same hooks
    as the in-memory recorder; disarmed runs pay nothing.  These
    helpers are shared with the sibling testbenches. *)

(** Publish a writer's volume counters ([trace.samples]/[trace.spans]/
    [trace.bytes]) as pull probes when the kernel's registry is armed;
    no-op for [None] or a disabled registry. *)
val arm_writer : Tabv_sim.Kernel.t -> Tabv_trace.Writer.t option -> unit

(** Feed one evaluation point to an optional writer. *)
val write_sample :
  Tabv_trace.Writer.t option ->
  time:int ->
  (string * Expr.value) list ->
  unit

(** Feed one completed transaction to an optional writer: a sample at
    the transaction end (last-wins within an instant) plus a
    begin/end span labelled by the TLM command. *)
val write_transaction :
  Tabv_trace.Writer.t option ->
  Tabv_sim.Tlm.transaction ->
  (string * Expr.value) list ->
  unit

(** Compile an optional fault plan onto a design binding; [None] or an
    empty plan installs nothing (zero overhead on fault-free runs). *)
val install_plan :
  Tabv_fault.Fault.binding ->
  Tabv_fault.Fault.plan option ->
  Tabv_fault.Fault.installed option

(** Fault activations of an installed plan; [0] for [None]. *)
val faults_triggered_of : Tabv_fault.Fault.installed option -> int

(** {1 DES56} *)

(** [gap_cycles] idle cycles between operations (default 2);
    [fault] injects a design bug (see {!Des56_rtl.fault});
    [engine] selects the checker synthesis backend; [sim_engine]
    the simulation kernel engine (default:
    {!Tabv_sim.Kernel.get_default_engine}) — all run functions take
    both, and every report is byte-identical across kernel engines. *)
val run_des56_rtl :
  ?properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?record_trace:bool ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?gap_cycles:int ->
  ?fault:Des56_rtl.fault ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Des56_iface.op list ->
  run_result

(** RTL properties applied {e unabstracted} to the cycle-accurate TLM
    model (the paper's TLM-CA rows). *)
val run_des56_tlm_ca :
  ?properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?record_trace:bool ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?gap_cycles:int ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Des56_iface.op list ->
  run_result

(** Abstracted (transaction-context) properties on the
    approximately-timed model.  The driver issues the blocking read
    right after the strobe-fall instant, so the read-end event lands
    exactly at the model's completion time — [model_latency_ns]
    different from 170 models a wrongly abstracted TLM model. *)
val run_des56_tlm_at :
  ?properties:Property.t list ->
  ?grid_properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?record_trace:bool ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?gap_cycles:int ->
  ?model_latency_ns:int ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Des56_iface.op list ->
  run_result
(** [grid_properties] are checked with the grid-mode wrapper
    ({!Wrapper.attach_grid}), which handles until-based timed
    properties such as the paper's [q2]. *)

(** Loosely-timed model: operations complete within the write call;
    deliberately {e not} timing equivalent, so timed abstracted
    properties are expected to fail (Theorem III.2's precondition). *)
val run_des56_tlm_lt :
  ?properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?gap_cycles:int ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Des56_iface.op list ->
  run_result

(** {1 ColorConv} *)

val run_colorconv_rtl :
  ?properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?record_trace:bool ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?gap_cycles:int ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Colorconv.pixel list list ->
  run_result

val run_colorconv_tlm_ca :
  ?properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?record_trace:bool ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?gap_cycles:int ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Colorconv.pixel list list ->
  run_result

val run_colorconv_tlm_at :
  ?properties:Property.t list ->
  ?grid_properties:Property.t list ->
  ?engine:Monitor.engine ->
  ?sim_engine:Tabv_sim.Kernel.engine ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?record_trace:bool ->
  ?trace_writer:Tabv_trace.Writer.t ->
  ?gap_cycles:int ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  Colorconv.pixel list list ->
  run_result

(** Pack a converted pixel as [y lor (cb lsl 8) lor (cr lsl 16)] for
    the [outputs] list. *)
val pack_ycbcr : Colorconv.ycbcr -> int64
