open Tabv_sim

type pending =
  | No_op
  | Op of {
      is_write : bool;
      addr : int;
      wdata : int;
      ready_time : int;
    }

type t = {
  kernel : Kernel.t;
  target : Tlm.Target.t;
  obs : Memctrl_iface.observables;
  write_latency_ns : int;
  read_latency_ns : int;
  memory : int array;
  mutable pending : pending;
  mutable completed : int;
}

let create ?write_latency_ns ?read_latency_ns kernel =
  let el = Elab.create kernel in
  Elab.component el "memctrl_tlm_at";
  let default l = l * Memctrl_iface.clock_period in
  let write_latency_ns =
    Option.value write_latency_ns ~default:(default Memctrl_iface.write_latency)
  in
  let read_latency_ns =
    Option.value read_latency_ns ~default:(default Memctrl_iface.read_latency)
  in
  let obs = Memctrl_iface.create_observables () in
  let t_ref = ref None in
  let transport payload =
    match !t_ref with
    | None -> assert false
    | Some t ->
      (match payload.Tlm.extension with
       | Some (Memctrl_iface.At_write { w_addr; w_data }) ->
         t.pending <-
           Op
             {
               is_write = true;
               addr = w_addr land (Memctrl_iface.address_space - 1);
               wdata = w_data;
               ready_time = Kernel.now t.kernel + t.write_latency_ns;
             };
         t.obs.Memctrl_iface.req <- true;
         t.obs.Memctrl_iface.we <- true;
         t.obs.Memctrl_iface.addr <- w_addr;
         t.obs.Memctrl_iface.wdata <- w_data;
         t.obs.Memctrl_iface.ack <- false
       | Some (Memctrl_iface.At_read_req { r_addr }) ->
         t.pending <-
           Op
             {
               is_write = false;
               addr = r_addr land (Memctrl_iface.address_space - 1);
               wdata = 0;
               ready_time = Kernel.now t.kernel + t.read_latency_ns;
             };
         t.obs.Memctrl_iface.req <- true;
         t.obs.Memctrl_iface.we <- false;
         t.obs.Memctrl_iface.addr <- r_addr;
         t.obs.Memctrl_iface.ack <- false
       | Some Memctrl_iface.At_idle -> t.obs.Memctrl_iface.req <- false
       | Some (Memctrl_iface.At_collect response) ->
         (match t.pending with
          | No_op -> payload.Tlm.response_ok <- false
          | Op op ->
            let now = Kernel.now t.kernel in
            if now < op.ready_time then Process.wait_ns t.kernel (op.ready_time - now);
            if op.is_write then t.memory.(op.addr) <- op.wdata
            else begin
              response.Memctrl_iface.a_rdata <- t.memory.(op.addr);
              t.obs.Memctrl_iface.rdata <- t.memory.(op.addr)
            end;
            response.Memctrl_iface.a_ack <- true;
            t.pending <- No_op;
            t.completed <- t.completed + 1;
            t.obs.Memctrl_iface.req <- false;
            t.obs.Memctrl_iface.ack <- true)
       | Some (Memctrl_iface.At_status response) ->
         response.Memctrl_iface.a_ack <- false;
         t.obs.Memctrl_iface.ack <- false
       | Some _ | None -> payload.Tlm.response_ok <- false)
  in
  let target = Tlm.Target.create kernel ~name:"memctrl_tlm_at" transport in
  let t =
    {
      kernel;
      target;
      obs;
      write_latency_ns;
      read_latency_ns;
      memory = Array.make Memctrl_iface.address_space 0;
      pending = No_op;
      completed = 0;
    }
  in
  t_ref := Some t;
  t

let target t = t.target
let observables t = t.obs
let lookup t = Memctrl_iface.lookup t.obs
let completed t = t.completed
let peek t address = t.memory.(address land (Memctrl_iface.address_space - 1))
