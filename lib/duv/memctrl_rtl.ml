open Tabv_sim

type pending =
  | No_op
  | Op of {
      is_write : bool;
      addr : int;
      wdata : int;
      mutable remaining : int;  (* cycles until ack is written *)
    }

type t = {
  req : bool Signal.t;
  we : bool Signal.t;
  addr : int Signal.t;
  wdata : int Signal.t;
  ack : bool Signal.t;
  ack_next_cycle : bool Signal.t;
  rdata : int Signal.t;
  memory : int array;
  mutable pending : pending;
  mutable completed : int;
}

let create kernel clock =
  let el = Elab.create kernel in
  let t =
    {
      req = Elab.signal_bool el "req";
      we = Elab.signal_bool el "we";
      addr = Elab.signal_int el "addr";
      wdata = Elab.signal_int el "wdata";
      ack = Elab.signal_bool el "ack";
      ack_next_cycle = Elab.signal_bool el "ack_next_cycle";
      rdata = Elab.signal_int el "rdata";
      memory = Array.make Memctrl_iface.address_space 0;
      pending = No_op;
      completed = 0;
    }
  in
  let on_posedge () =
    Signal.write t.ack false;
    Signal.write t.ack_next_cycle false;
    match t.pending with
    | Op op ->
      op.remaining <- op.remaining - 1;
      if op.remaining = 1 then Signal.write t.ack_next_cycle true
      else if op.remaining = 0 then begin
        if op.is_write then t.memory.(op.addr) <- op.wdata
        else Signal.write t.rdata t.memory.(op.addr);
        Signal.write t.ack true;
        t.completed <- t.completed + 1;
        t.pending <- No_op
      end
    | No_op ->
      if Signal.read t.req then begin
        let is_write = Signal.read t.we in
        let latency =
          if is_write then Memctrl_iface.write_latency else Memctrl_iface.read_latency
        in
        (* The capture edge counts as the first cycle: ack is visible
           exactly [latency] evaluation points after the request. *)
        let remaining = latency - 1 in
        t.pending <-
          Op
            {
              is_write;
              addr = Signal.read t.addr land (Memctrl_iface.address_space - 1);
              wdata = Signal.read t.wdata;
              remaining;
            };
        if remaining = 1 then Signal.write t.ack_next_cycle true
      end
  in
  Elab.process el ~name:"memctrl_rtl" ~pos:__POS__ ~initialize:false
    ~sensitivity:[ Clock.posedge clock ]
    ~reads:[ Elab.Pack t.req; Elab.Pack t.we; Elab.Pack t.addr; Elab.Pack t.wdata ]
    ~writes:[ Elab.Pack t.ack; Elab.Pack t.ack_next_cycle; Elab.Pack t.rdata ]
    on_posedge;
  t

let req t = t.req
let we t = t.we
let addr t = t.addr
let wdata t = t.wdata
let ack t = t.ack
let ack_next_cycle t = t.ack_next_cycle
let rdata t = t.rdata

(* Observation paths read through the engine interface
   ([Signal.observe]), keeping traces and lookups engine-agnostic. *)
let bindings t =
  [ ("req", fun () -> Duv_util.vbool (Signal.observe t.req));
    ("we", fun () -> Duv_util.vbool (Signal.observe t.we));
    ("addr", fun () -> Duv_util.vint (Signal.observe t.addr));
    ("wdata", fun () -> Duv_util.vint (Signal.observe t.wdata));
    ("ack", fun () -> Duv_util.vbool (Signal.observe t.ack));
    ("ack_next_cycle", fun () -> Duv_util.vbool (Signal.observe t.ack_next_cycle));
    ("rdata", fun () -> Duv_util.vint (Signal.observe t.rdata)) ]

let lookup t = Duv_util.lookup_of (bindings t)
let env t = List.map (fun (name, thunk) -> (name, thunk ())) (bindings t)
let completed t = t.completed
let peek t address = t.memory.(address land (Memctrl_iface.address_space - 1))
