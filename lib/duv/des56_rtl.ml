open Tabv_sim

type state =
  | Idle
  | Busy of {
      mutable round_index : int;  (* rounds already performed *)
      mutable l : int64;
      mutable r : int64;
      keys : int64 array;  (* in processing order *)
    }

type fault =
  | Rdy_one_cycle_late
  | Rdy_next_cycle_stuck_low
  | Result_zeroed

type t = {
  late_rdy : bool;  (* the one behavioural (timing) legacy fault *)
  ds : bool Signal.t;
  decrypt : bool Signal.t;
  key : int64 Signal.t;
  indata : int64 Signal.t;
  out : int64 Signal.t;
  rdy : bool Signal.t;
  rdy_next_cycle : bool Signal.t;
  rdy_next_next_cycle : bool Signal.t;
  mutable state : state;
  mutable completed : int;
}

let create ?fault kernel clock =
  let el = Elab.create kernel in
  let t =
    {
      late_rdy = fault = Some Rdy_one_cycle_late;
      ds = Elab.signal_bool el "ds";
      decrypt = Elab.signal_bool el "decrypt";
      key = Elab.signal_int64 el "key";
      indata = Elab.signal_int64 el "indata";
      out = Elab.signal_int64 el "out";
      rdy = Elab.signal_bool el "rdy";
      rdy_next_cycle = Elab.signal_bool el "rdy_next_cycle";
      rdy_next_next_cycle = Elab.signal_bool el "rdy_next_next_cycle";
      state = Idle;
      completed = 0;
    }
  in
  let on_posedge () =
    (* Default deassertions; overwritten below when flags are due. *)
    Signal.write t.rdy false;
    Signal.write t.rdy_next_cycle false;
    Signal.write t.rdy_next_next_cycle false;
    match t.state with
    | Idle ->
      if Signal.read t.ds then begin
        let l, r = Des.initial_permutation (Signal.read t.indata) in
        let keys = Des.round_keys (Signal.read t.key) in
        let keys =
          if Signal.read t.decrypt then Array.init 16 (fun i -> keys.(15 - i)) else keys
        in
        t.state <- Busy { round_index = 0; l; r; keys }
      end
    | Busy b ->
      if b.round_index < 16 then begin
        let l', r' = Des.round (b.l, b.r) ~key:b.keys.(b.round_index) in
        b.l <- l';
        b.r <- r'
      end;
      b.round_index <- b.round_index + 1;
      let finish_round = if t.late_rdy then 17 else 16 in
      (match b.round_index with
       | 14 -> Signal.write t.rdy_next_next_cycle true
       | 15 -> Signal.write t.rdy_next_cycle true
       | n when n = finish_round ->
         Signal.write t.out (Des.final_swap_permutation (b.l, b.r));
         Signal.write t.rdy true;
         t.completed <- t.completed + 1;
         t.state <- Idle
       | _ -> ())
  in
  Elab.process el ~name:"des56_rtl" ~pos:__POS__ ~initialize:false
    ~sensitivity:[ Clock.posedge clock ]
    ~reads:[ Elab.Pack t.ds; Elab.Pack t.decrypt; Elab.Pack t.key; Elab.Pack t.indata ]
    ~writes:
      [ Elab.Pack t.out;
        Elab.Pack t.rdy;
        Elab.Pack t.rdy_next_cycle;
        Elab.Pack t.rdy_next_next_cycle
      ]
    on_posedge;
  (* Deprecated [?fault] shim: the two value faults are expressed as
     generic stuck-at saboteurs on the ports (the behaviour the
     hard-coded variants used to hack into the datapath); only the
     timing fault remains behavioural. *)
  (match fault with
  | None | Some Rdy_one_cycle_late -> ()
  | Some Rdy_next_cycle_stuck_low ->
    let binding =
      { Tabv_fault.Fault.kernel;
        signals = [ ("rdy_next_cycle", Tabv_fault.Fault.Bool_signal t.rdy_next_cycle) ];
        sockets = []
      }
    in
    ignore
      (Tabv_fault.Fault.install binding
         (Tabv_fault.Fault.plan ~name:"des56-legacy-rdy-nc-stuck0"
            [ Tabv_fault.Fault.Signal_fault
                { signal = "rdy_next_cycle";
                  fault = Tabv_fault.Fault.Stuck_at_0 { from_ns = 0 }
                }
            ]))
  | Some Result_zeroed ->
    let binding =
      { Tabv_fault.Fault.kernel;
        signals =
          [ ("out", Tabv_fault.Fault.Int64_signal { signal = t.out; width = 64 }) ];
        sockets = []
      }
    in
    ignore
      (Tabv_fault.Fault.install binding
         (Tabv_fault.Fault.plan ~name:"des56-legacy-result-zeroed"
            [ Tabv_fault.Fault.Signal_fault
                { signal = "out"; fault = Tabv_fault.Fault.Stuck_at_0 { from_ns = 0 } }
            ])));
  t

let ds t = t.ds
let decrypt t = t.decrypt
let key t = t.key
let indata t = t.indata
let out t = t.out
let rdy t = t.rdy
let rdy_next_cycle t = t.rdy_next_cycle
let rdy_next_next_cycle t = t.rdy_next_next_cycle

(* Observation paths go through [Signal.observe] — the engine
   interface read — so lookups, traces and VCD dumps are agnostic to
   where the engine stores the value. *)
let lookup t =
  Duv_util.lookup_of
    [ ("ds", fun () -> Duv_util.vbool (Signal.observe t.ds));
      ("decrypt", fun () -> Duv_util.vbool (Signal.observe t.decrypt));
      ("key", fun () -> Duv_util.vdata (Signal.observe t.key));
      ("indata", fun () -> Duv_util.vdata (Signal.observe t.indata));
      ("out", fun () -> Duv_util.vdata (Signal.observe t.out));
      ("rdy", fun () -> Duv_util.vbool (Signal.observe t.rdy));
      ("rdy_next_cycle", fun () -> Duv_util.vbool (Signal.observe t.rdy_next_cycle));
      ("rdy_next_next_cycle", fun () -> Duv_util.vbool (Signal.observe t.rdy_next_next_cycle)) ]

let env t =
  [ ("ds", Duv_util.vbool (Signal.observe t.ds));
    ("decrypt", Duv_util.vbool (Signal.observe t.decrypt));
    ("key", Duv_util.vdata (Signal.observe t.key));
    ("indata", Duv_util.vdata (Signal.observe t.indata));
    ("out", Duv_util.vdata (Signal.observe t.out));
    ("rdy", Duv_util.vbool (Signal.observe t.rdy));
    ("rdy_next_cycle", Duv_util.vbool (Signal.observe t.rdy_next_cycle));
    ("rdy_next_next_cycle", Duv_util.vbool (Signal.observe t.rdy_next_next_cycle)) ]

let completed t = t.completed
