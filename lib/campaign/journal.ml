(* Write-ahead journal for resumable campaigns.  See journal.mli for
   the durability and fingerprint contracts; the implementation notes
   here are about the failure modes.

   Append path: one line = one record, framed as

     <crc32 of body, 8 hex digits> SP <body JSON> NL

   staged as a single chunk through {!Tabv_core.Io} (so the fault
   hook sees one write boundary per record) and fsynced before
   [append] returns.  The line is built before any byte reaches the
   file, so a crash can only truncate the *last* line, never
   interleave two — and the CRC catches everything subtler than a
   clean truncation: a torn tail that still ends in '\n', a flipped
   bit from a dying disk, a lied-about fsync.

   Read-back path (resume): lines are split on '\n'; the first line
   that is incomplete, fails its CRC, or does not parse as a record
   ends the valid prefix — the file is truncated back to the last
   valid record and the dropped jobs simply re-run (they are
   deterministic functions of the job spec, so the resumed report
   stays byte-identical).  Only the header is load-bearing beyond
   that: a corrupted or mismatched header is an error, because
   without it the journal cannot be proven to belong to this
   campaign. *)

module J = Tabv_core.Report_json
module Crc32 = Tabv_core.Crc32

let journal_schema_version = 2

type t = {
  path : string;
  kind : string;
  mutable io : Tabv_core.Io.t option;
  mutable replayed : (int * J.json) list;
  mutable count : int;
  truncated_bytes : int;
  lock : Mutex.t;
}

let fingerprint_of_string s = Digest.to_hex (Digest.string s)

let header_json ~kind ~fingerprint =
  J.Assoc
    [ ("journal", J.Int journal_schema_version);
      ("kind", J.String kind);
      ("fingerprint", J.String fingerprint) ]

let ( let* ) = Result.bind

(* CRC line framing: "%08x %s". *)
let frame body = Crc32.to_hex (Crc32.string body) ^ " " ^ body

let unframe line =
  if String.length line >= 9 && line.[8] = ' ' then
    match Crc32.of_hex (String.sub line 0 8) with
    | Some crc ->
      let body = String.sub line 9 (String.length line - 9) in
      if Crc32.string body = crc then Some body else None
    | None -> None
  else None

let parse_line what line =
  match J.of_string line with
  | json -> Ok json
  | exception J.Parse_error { line = l; col; message } ->
    Error (Printf.sprintf "%s: %d:%d: %s" what l col message)

let check_header ~kind ~fingerprint line =
  let* json = parse_line "journal header" line in
  let str key =
    match J.member key json with
    | Some (J.String s) -> Ok s
    | _ -> Error (Printf.sprintf "journal header: missing key %S" key)
  in
  let* () =
    match J.member "journal" json with
    | Some (J.Int v) when v = journal_schema_version -> Ok ()
    | Some (J.Int v) ->
      Error (Printf.sprintf "journal header: unsupported version %d" v)
    | _ -> Error "journal header: missing key \"journal\""
  in
  let* k = str "kind" in
  let* () =
    if k = kind then Ok ()
    else Error (Printf.sprintf "journal is a %S journal, expected %S" k kind)
  in
  let* fp = str "fingerprint" in
  if fp = fingerprint then Ok ()
  else
    Error
      "journal fingerprint does not match this job list (different manifest, \
       retries or code version) — refusing to graft results across campaigns"

let parse_record index line =
  let what = Printf.sprintf "journal record %d" index in
  let* json = parse_line what line in
  match (J.member "id" json, J.member "record" json) with
  | Some (J.Int id), Some record when id >= 0 -> Ok (id, record)
  | _ -> Error (what ^ ": expected {\"id\":n,\"record\":..}")

(* Complete (newline-terminated) lines of [text].  A dangling fragment
   after the last '\n' is excluded. *)
let complete_lines text =
  let rec go acc start =
    match String.index_from_opt text start '\n' with
    | None -> List.rev acc
    | Some i -> go (String.sub text start (i - start) :: acc) (i + 1)
  in
  go [] 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [(records, valid_prefix_bytes)]; [valid_prefix_bytes = 0] means not
   even the header line survived (a crash before the first header
   fsync completed) — the journal restarts from scratch.  The valid
   prefix ends at the first incomplete, CRC-failing or unparsable
   record line; everything after it is a crash artifact or corruption
   and is dropped (its jobs deterministically re-run). *)
let scan ~kind ~fingerprint text =
  match complete_lines text with
  | [] -> Ok ([], 0)
  | header :: records ->
    let* hbody =
      match unframe header with
      | Some body -> Ok body
      | None ->
        (* An incomplete first line would not have reached us (no
           '\n'); a complete header that fails its CRC is corruption
           of the one line that binds the journal to a campaign. *)
        Error "journal header: checksum mismatch (corrupted journal header)"
    in
    let* () = check_header ~kind ~fingerprint hbody in
    let rec go acc index offset = function
      | [] -> (List.rev acc, offset)
      | line :: rest -> (
        match unframe line with
        | None -> (List.rev acc, offset)
        | Some body -> (
          match parse_record index body with
          | Error _ -> (List.rev acc, offset)
          | Ok r ->
            go (r :: acc) (index + 1) (offset + String.length line + 1) rest))
    in
    Ok (go [] 0 (String.length header + 1) records)

let dedup_by_id records =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (id, _) ->
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    records
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let write_line io line =
  Tabv_core.Io.write io (frame line ^ "\n");
  Tabv_core.Io.fsync io

let open_ ?obs ~path ~kind ~fingerprint ~resume () =
  let* replayed, valid_len, total_len =
    if resume && Sys.file_exists path then begin
      (* An unreadable path (a directory, bad permissions) is an
         honest [Error], not an escaped exception. *)
      let* text =
        match read_file path with
        | text -> Ok text
        | exception Sys_error msg -> Error ("journal: " ^ msg)
      in
      let* records, valid_len = scan ~kind ~fingerprint text in
      if valid_len < String.length text && valid_len > 0 then
        (* Drop the torn / corrupt suffix before reopening. *)
        Unix.truncate path valid_len;
      Ok (dedup_by_id records, valid_len, String.length text)
    end
    else Ok ([], 0, 0)
  in
  let fresh = valid_len = 0 in
  (* Opening has a [Result] interface, so storage failures here come
     back as [Error]; once the journal is open, append-path faults
     stay exceptional ([Io_error]) so a mid-campaign ENOSPC aborts the
     run instead of being absorbed. *)
  let* io =
    match
      if fresh then begin
        (* The header commits atomically (temp + fsync + rename): a
           crash during creation leaves either no journal or a complete
           one-line journal, never a torn header. *)
        Tabv_core.Io.write_file_atomic ~path
          (frame (J.to_string (header_json ~kind ~fingerprint)) ^ "\n");
        Tabv_core.Io.append path
      end
      else Tabv_core.Io.append path
    with
    | io -> Ok io
    | exception Tabv_core.Io.Io_error { op; error; _ } ->
      Error
        (Printf.sprintf "journal: %s %s: %s" op path (Unix.error_message error))
  in
  let t =
    {
      path;
      kind;
      io = Some io;
      replayed;
      count = List.length replayed;
      truncated_bytes = total_len - valid_len;
      lock = Mutex.create ();
    }
  in
  (match obs with
   | None -> ()
   | Some registry ->
     Tabv_obs.Metrics.probe registry ~combine:`Max (kind ^ ".journal_records")
       (fun () -> t.count));
  Ok t

let replayed t = t.replayed
let records t = t.count
let truncated_bytes t = t.truncated_bytes

let append t ~id record =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.io with
      | None -> invalid_arg (Printf.sprintf "Journal.append: %s is closed" t.path)
      | Some io ->
        let line = J.to_string (J.Assoc [ ("id", J.Int id); ("record", record) ]) in
        write_line io line;
        t.count <- t.count + 1)

(* Collision-safe journal path for concurrent requests sharing one
   state directory: the fingerprint already uniquely identifies the
   job list, so it names the file.  Two concurrent *identical*
   campaigns would still collide — the serve daemon rejects those at
   admission instead of interleaving their appends. *)
let journal_extension = ".journal"

let state_path ~dir ~kind ~fingerprint =
  Filename.concat dir (kind ^ "-" ^ fingerprint ^ journal_extension)

let gc_stale ?now ~dir ~max_age_s () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else begin
    let now =
      match now with
      | Some t -> t
      | None -> Unix.gettimeofday ()
    in
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun entry ->
           (* Orphaned [*.tmp] siblings (a crash between temp-write
              and rename) are swept regardless of age: gc runs at
              boot, before any concurrent writer exists. *)
           let stale_journal = Filename.check_suffix entry journal_extension in
           let orphan_tmp = Tabv_core.Io.is_temp_path entry in
           if not (stale_journal || orphan_tmp) then None
           else begin
             let path = Filename.concat dir entry in
             match Unix.stat path with
             | { Unix.st_kind = Unix.S_REG; st_mtime; _ }
               when orphan_tmp || now -. st_mtime > max_age_s ->
               (match Unix.unlink path with
                | () -> Some path
                | exception Unix.Unix_error _ -> None)
             | _ | (exception Unix.Unix_error _) -> None
           end)
  end

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.io with
      | None -> ()
      | Some io ->
        t.io <- None;
        Tabv_core.Io.close_noerr io)
