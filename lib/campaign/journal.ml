(* Write-ahead journal for resumable campaigns.  See journal.mli for
   the durability and fingerprint contracts; the implementation notes
   here are about the failure modes.

   Append path: one line = one record, written with a single
   [output_string], then [flush] + [Unix.fsync].  The line is built
   before any byte reaches the channel, so a crash can only truncate
   the *last* line, never interleave two.

   Read-back path (resume): lines are split on '\n'; a final fragment
   without a terminating newline is a truncated append — the file is
   truncated back to the last complete line and the job the fragment
   belonged to simply re-runs.  A malformed line *before* a
   well-formed one, however, is corruption — not a crash artifact —
   and is reported as an error. *)

module J = Tabv_core.Report_json

let journal_schema_version = 1

type t = {
  path : string;
  kind : string;
  mutable oc : out_channel option;
  mutable replayed : (int * J.json) list;
  mutable count : int;
  lock : Mutex.t;
}

let fingerprint_of_string s = Digest.to_hex (Digest.string s)

let header_json ~kind ~fingerprint =
  J.Assoc
    [ ("journal", J.Int journal_schema_version);
      ("kind", J.String kind);
      ("fingerprint", J.String fingerprint) ]

let ( let* ) = Result.bind

let parse_line what line =
  match J.of_string line with
  | json -> Ok json
  | exception J.Parse_error { line = l; col; message } ->
    Error (Printf.sprintf "%s: %d:%d: %s" what l col message)

let check_header ~kind ~fingerprint line =
  let* json = parse_line "journal header" line in
  let str key =
    match J.member key json with
    | Some (J.String s) -> Ok s
    | _ -> Error (Printf.sprintf "journal header: missing key %S" key)
  in
  let* () =
    match J.member "journal" json with
    | Some (J.Int v) when v = journal_schema_version -> Ok ()
    | Some (J.Int v) ->
      Error (Printf.sprintf "journal header: unsupported version %d" v)
    | _ -> Error "journal header: missing key \"journal\""
  in
  let* k = str "kind" in
  let* () =
    if k = kind then Ok ()
    else Error (Printf.sprintf "journal is a %S journal, expected %S" k kind)
  in
  let* fp = str "fingerprint" in
  if fp = fingerprint then Ok ()
  else
    Error
      "journal fingerprint does not match this job list (different manifest, \
       retries or code version) — refusing to graft results across campaigns"

let parse_record index line =
  let what = Printf.sprintf "journal record %d" index in
  let* json = parse_line what line in
  match (J.member "id" json, J.member "record" json) with
  | Some (J.Int id), Some record when id >= 0 -> Ok (id, record)
  | _ -> Error (what ^ ": expected {\"id\":n,\"record\":..}")

(* Complete (newline-terminated) lines of [text], with the byte length
   of that valid prefix.  A dangling fragment after the last '\n' is
   excluded from both. *)
let complete_lines text =
  let rec go acc start =
    match String.index_from_opt text start '\n' with
    | None -> (List.rev acc, start)
    | Some i -> go (String.sub text start (i - start) :: acc) (i + 1)
  in
  go [] 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [(records, valid_prefix_bytes)]; [valid_prefix_bytes = 0] means not
   even the header line survived (a crash before the first fsync
   completed) — the journal restarts from scratch. *)
let scan ~kind ~fingerprint text =
  match complete_lines text with
  | [], _ -> Ok ([], 0)
  | header :: records, valid_len ->
    let* () = check_header ~kind ~fingerprint header in
    let* records =
      let rec go acc index = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let* r = parse_record index line in
          go (r :: acc) (index + 1) rest
      in
      go [] 0 records
    in
    Ok (records, valid_len)

let dedup_by_id records =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (id, _) ->
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    records
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let write_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let open_ ?obs ~path ~kind ~fingerprint ~resume () =
  let* replayed, valid_len =
    if resume && Sys.file_exists path then begin
      let text = read_file path in
      let* records, valid_len = scan ~kind ~fingerprint text in
      if valid_len < String.length text then
        (* Drop the torn trailing append before reopening. *)
        Unix.truncate path valid_len;
      Ok (dedup_by_id records, valid_len)
    end
    else Ok ([], 0)
  in
  let fresh = valid_len = 0 in
  let oc =
    if fresh then open_out_bin path
    else open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
  in
  if fresh then write_line oc (J.to_string (header_json ~kind ~fingerprint));
  let t =
    {
      path;
      kind;
      oc = Some oc;
      replayed;
      count = List.length replayed;
      lock = Mutex.create ();
    }
  in
  (match obs with
   | None -> ()
   | Some registry ->
     Tabv_obs.Metrics.probe registry ~combine:`Max (kind ^ ".journal_records")
       (fun () -> t.count));
  Ok t

let replayed t = t.replayed
let records t = t.count

let append t ~id record =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.oc with
      | None -> invalid_arg (Printf.sprintf "Journal.append: %s is closed" t.path)
      | Some oc ->
        let line = J.to_string (J.Assoc [ ("id", J.Int id); ("record", record) ]) in
        write_line oc line;
        t.count <- t.count + 1)

(* Collision-safe journal path for concurrent requests sharing one
   state directory: the fingerprint already uniquely identifies the
   job list, so it names the file.  Two concurrent *identical*
   campaigns would still collide — the serve daemon rejects those at
   admission instead of interleaving their appends. *)
let journal_extension = ".journal"

let state_path ~dir ~kind ~fingerprint =
  Filename.concat dir (kind ^ "-" ^ fingerprint ^ journal_extension)

let gc_stale ?now ~dir ~max_age_s () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else begin
    let now =
      match now with
      | Some t -> t
      | None -> Unix.gettimeofday ()
    in
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun entry ->
           if not (Filename.check_suffix entry journal_extension) then None
           else begin
             let path = Filename.concat dir entry in
             match Unix.stat path with
             | { Unix.st_kind = Unix.S_REG; st_mtime; _ }
               when now -. st_mtime > max_age_s ->
               (match Unix.unlink path with
                | () -> Some path
                | exception Unix.Unix_error _ -> None)
             | _ | (exception Unix.Unix_error _) -> None
           end)
  end

let close t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        close_out_noerr oc)
