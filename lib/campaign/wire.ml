(* Wire codecs for process-isolated campaign execution.

   The subprocess executor ships jobs to forked workers and results
   back over pipes, and the write-ahead journal persists completed
   results between runs.  Both speak the same currency: the exact JSON
   the deterministic reports are built from, so a result that
   round-trips through a worker pipe or a journal line is
   field-for-field identical to one produced in-process — the
   byte-identity guarantees of the report depend on it.

   This module holds the generic halves: decoding the shared
   observability records (checker snapshots, metrics snapshots, kernel
   diagnoses — the emitters live in [Tabv_core.Report_json] and
   [Tabv_fault.Fault]) and the length-prefixed frame protocol.
   Campaign- and qualify-specific payload codecs live next to their
   types in [Campaign] and [Qualify]. *)

module J = Tabv_core.Report_json
module Snapshot = Tabv_obs.Checker_snapshot
module Metrics = Tabv_obs.Metrics
module Kernel = Tabv_sim.Kernel

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

let open_assoc what = function
  | J.Assoc fields -> Ok fields
  | _ -> Error (what ^ ": expected an object")

let open_list what = function
  | J.List items -> Ok items
  | _ -> Error (what ^ ": expected an array")

let field what key fields =
  match List.assoc_opt key fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing key %S" what key)

let int_field what key fields =
  let* v = field what key fields in
  match v with
  | J.Int n -> Ok n
  | _ -> Error (Printf.sprintf "%s: key %S must be an integer" what key)

let string_field what key fields =
  let* v = field what key fields in
  match v with
  | J.String s -> Ok s
  | _ -> Error (Printf.sprintf "%s: key %S must be a string" what key)

let bool_field what key fields =
  let* v = field what key fields in
  match v with
  | J.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s: key %S must be a boolean" what key)

(* --- checker snapshots ---------------------------------------------- *)

(* Inverse of {!Tabv_core.Report_json.checker_snapshot_json}.  The
   emitted failure entries carry only the two instants; the property
   name is reattached from the enclosing snapshot.  The derived
   ["cache_hit_rate"] float is ignored (it is recomputed from the
   integer fields on re-emission, so nothing lossy crosses the wire). *)
let checker_snapshot_of_json json =
  let what = "checker snapshot" in
  let* fields = open_assoc what json in
  let* property_name = string_field what "property" fields in
  let* engine = string_field what "engine" fields in
  let* activations = int_field what "activations" fields in
  let* passes = int_field what "passes" fields in
  let* trivial_passes = int_field what "trivial_passes" fields in
  let* vacuous = bool_field what "vacuous" fields in
  let* peak_instances = int_field what "peak_instances" fields in
  let* peak_distinct_states = int_field what "peak_distinct_states" fields in
  let* pending = int_field what "pending" fields in
  let* steps = int_field what "steps" fields in
  let* cache_hits = int_field what "cache_hits" fields in
  let* cache_misses = int_field what "cache_misses" fields in
  let* failure_items =
    let* v = field what "failures" fields in
    open_list (what ^ ".failures") v
  in
  let* failures =
    map_result
      (fun item ->
        let what = what ^ ".failure" in
        let* fields = open_assoc what item in
        let* activation_time = int_field what "activation_time_ns" fields in
        let* failure_time = int_field what "failure_time_ns" fields in
        Ok { Snapshot.property_name; activation_time; failure_time })
      failure_items
  in
  Ok
    {
      Snapshot.property_name;
      engine;
      activations;
      passes;
      trivial_passes;
      vacuous;
      peak_instances;
      peak_distinct_states;
      pending;
      steps;
      cache_hits;
      cache_misses;
      failures;
    }

(* --- metrics snapshots ---------------------------------------------- *)

(* Inverse of {!Tabv_core.Report_json.metrics_snapshot_json}. *)
let metrics_value_of_json json =
  let what = "metrics value" in
  let* fields = open_assoc what json in
  let* kind = string_field what "kind" fields in
  match kind with
  | "counter" ->
    let* v = int_field what "value" fields in
    Ok (Metrics.Counter v)
  | "gauge" ->
    let* v = int_field what "value" fields in
    Ok (Metrics.Gauge v)
  | "histogram" ->
    let* count = int_field what "count" fields in
    let* sum = int_field what "sum" fields in
    let* min_value = int_field what "min" fields in
    let* max_value = int_field what "max" fields in
    let* bucket_items =
      let* v = field what "buckets" fields in
      open_list (what ^ ".buckets") v
    in
    let* by_upper_bound =
      map_result
        (fun item ->
          let what = what ^ ".bucket" in
          let* fields = open_assoc what item in
          let* le = int_field what "le" fields in
          let* n = int_field what "count" fields in
          Ok (le, n))
        bucket_items
    in
    Ok (Metrics.Histogram { Metrics.count; sum; min_value; max_value; by_upper_bound })
  | other -> Error (Printf.sprintf "%s: unknown kind %S" what other)

let metrics_snapshot_of_json json =
  let* fields = open_assoc "metrics snapshot" json in
  map_result
    (fun (name, v) ->
      let* value = metrics_value_of_json v in
      Ok (name, value))
    fields

(* --- kernel diagnoses ----------------------------------------------- *)

(* Inverse of {!Tabv_fault.Fault.diagnosis_json}. *)
let diagnosis_of_json json =
  let what = "diagnosis" in
  let* fields = open_assoc what json in
  let* kind = string_field what "kind" fields in
  match kind with
  | "completed" -> Ok Kernel.Completed
  | "starved" ->
    let* waiting = int_field what "waiting" fields in
    Ok (Kernel.Starved { waiting })
  | "livelock" ->
    let* time = int_field what "time" fields in
    let* delta_cycles = int_field what "delta_cycles" fields in
    Ok (Kernel.Livelock { time; delta_cycles })
  | "budget_exhausted" ->
    let* steps = int_field what "steps" fields in
    Ok (Kernel.Budget_exhausted { steps })
  | "process_crashed" ->
    let* name = string_field what "process" fields in
    let* error = string_field what "error" fields in
    Ok (Kernel.Process_crashed { name; error })
  | other -> Error (Printf.sprintf "%s: unknown kind %S" what other)

(* --- framing ---------------------------------------------------------

   The length-prefixed frame protocol itself now lives in
   {!Tabv_core.Frame} (it is shared with the [tabv serve] socket
   protocol, which additionally uses Frame's versioned headers); this
   module re-exports the plain-header subset the worker pipes speak so
   the executor and worker keep one import. *)

module Frame = Tabv_core.Frame

let header_length = Frame.header_length
let encode_frame payload = Frame.encode payload
let decode_header = Frame.decode_header
let write_frame oc payload = Frame.write oc payload

(* [None] on a clean EOF at a frame boundary.
   @raise Failure on a malformed header or truncated body. *)
let read_frame ic = Frame.read ic

(* Incremental frame accumulator for the coordinator's non-blocking
   reads: feed raw chunks, pop complete frames. *)
type stream = Frame.stream

let stream () = Frame.stream ()
let stream_length = Frame.stream_length
let feed = Frame.feed

exception Protocol_error = Frame.Protocol_error

let pop = Frame.pop
