(** Write-ahead journal for resumable campaigns.

    An append-only file of {e completed} job results, one
    CRC32-framed JSONL record per line:
    {v
    <crc32 of body, 8 hex digits> SP <body JSON>
    v}
    The first line's body is a header binding the journal to one job
    list:
    {v
    {"journal":2,"kind":"campaign","fingerprint":"<hex digest>"}
    v}
    and every following body is one record:
    {v
    {"id":<job id>,"record":<result JSON>}
    v}
    The header is committed atomically (temp file + [fsync] + rename),
    and each append is flushed as one chunk and [fsync]ed before
    {!append} returns, so a record is either durably on disk or absent.
    On resume, the valid prefix ends at the first incomplete,
    CRC-failing or unparsable record line: the file is truncated back
    to the last valid record and the dropped jobs re-run — a torn
    append, a flipped bit or a lied-about fsync can cost work, but can
    never replay garbage.  A corrupted {e header} is an error (the one
    line that proves the journal belongs to this campaign cannot be
    salvaged).

    Only completed results are journaled.  Crashed / killed / timed-out
    jobs re-run on resume: they are deterministic functions of the job
    spec, so the resumed report stays byte-identical to an
    uninterrupted run — which is the whole contract.  For the same
    reason the record payloads are the exact JSON the report is built
    from ({!Wire} round-trip), never wall-clock values.

    The [fingerprint] is a digest of the canonical job-list JSON (plus
    anything else that changes results, e.g. the retry budget).
    Opening with [~resume:true] against a different fingerprint is an
    error — a journal must never graft results from one campaign onto
    another.

    All file IO goes through {!Tabv_core.Io}, so [Fault.Io] plans
    (ENOSPC, EIO, lying fsyncs, power cuts) apply to the journal
    exactly as to every other durable artifact; IO failures surface
    as [Tabv_core.Io.Io_error]. *)

type t

(** [open_ ?obs ~path ~kind ~fingerprint ~resume ()].

    With [resume = false]: truncate/create [path] and write a fresh
    header.  With [resume = true]: read [path] back (missing file =
    empty journal), verify header [kind] and [fingerprint], collect
    the replayable records from the valid prefix (truncating any
    torn / corrupt suffix), and reopen for appending.  [Error] on a
    corrupted or malformed header, wrong kind, or fingerprint
    mismatch — never an exception for bad file contents.

    [obs] registers a [<kind>.journal_records] probe (current record
    count, replayed ones included) on the given registry. *)
val open_ :
  ?obs:Tabv_obs.Metrics.t ->
  path:string ->
  kind:string ->
  fingerprint:string ->
  resume:bool ->
  unit ->
  (t, string) result

(** Records read back by [open_ ~resume:true], ascending [id].
    Duplicate ids keep the first occurrence. *)
val replayed : t -> (int * Tabv_core.Report_json.json) list

(** Number of records currently in the journal (replayed + appended). *)
val records : t -> int

(** Bytes of torn / corrupt suffix dropped by [open_ ~resume:true]
    ([0] when the file was clean or absent).  The dropped records'
    jobs re-run, so this is lost work, not lost results. *)
val truncated_bytes : t -> int

(** Durably append one completed record ([flush] + [fsync]).
    Thread-safe (the executor's completion callbacks may fire from a
    coordinator loop interleaved with replay accounting). *)
val append : t -> id:int -> Tabv_core.Report_json.json -> unit

(** Close the underlying file (idempotent, never raises). *)
val close : t -> unit

(** Canonical fingerprint helper: hex MD5 digest of a canonical
    description string. *)
val fingerprint_of_string : string -> string

(** {2 Shared state directories}

    The serve daemon journals every journaled request into one state
    directory; these helpers keep concurrent requests from colliding
    and the directory from accumulating dead journals. *)

(** [state_path ~dir ~kind ~fingerprint] —
    [dir/<kind>-<fingerprint>.journal].  The fingerprint uniquely
    identifies the job list, so concurrent {e distinct} requests get
    distinct files; identical concurrent requests must be rejected at
    admission instead (interleaved appends from two writers would
    corrupt the record stream). *)
val state_path : dir:string -> kind:string -> fingerprint:string -> string

(** [gc_stale ?now ~dir ~max_age_s ()] — delete every [*.journal]
    regular file in [dir] not modified in the last [max_age_s]
    seconds, plus every orphaned [*.tmp] file regardless of age (a
    temp file with no writer is the debris of a crash between
    temp-write and rename; gc runs at boot, before any concurrent
    writer exists).  Returns the deleted paths (sorted).  A missing
    [dir] is an empty result; entries that vanish or fail to stat
    mid-scan are skipped.  [now] (seconds since the epoch) defaults to
    the current time — tests pass it for determinism. *)
val gc_stale : ?now:float -> dir:string -> max_age_s:float -> unit -> string list
