(* Pluggable campaign executors.  See executor.mli for the contract.

   The in-domain pool is the historical one: an atomic queue index,
   one result slot per task, every attempt wrapped in [try/with].

   The subprocess pool is a single-threaded coordinator around
   [Unix.select]: each worker is a forked re-execution of the current
   binary speaking the {!Wire} frame protocol over its stdin/stdout,
   with exactly one outstanding request at a time.  Death of any kind
   — crash, abort, OOM kill, watchdog SIGKILL — surfaces as EOF on the
   worker's pipe plus a [waitpid] status, so containment is the OS's,
   not [try/with]'s. *)

module J = Tabv_core.Report_json

type kind =
  | In_domain
  | Subprocess

type config = {
  c_kind : kind;
  job_timeout_s : float option;
  backoff_base_s : float;
  backoff_seed : int;
  worker_argv : string array;
  obs : Tabv_obs.Metrics.t option;
  obs_prefix : string;
}

let config ?job_timeout_s ?(backoff_base_s = 0.) ?(backoff_seed = 0) ?worker_argv
    ?obs ?(obs_prefix = "campaign") kind =
  let worker_argv =
    match worker_argv with
    | Some argv ->
      if Array.length argv = 0 then
        invalid_arg "Executor.config: worker_argv must not be empty";
      argv
    | None -> [| Sys.executable_name; "_worker" |]
  in
  (match job_timeout_s with
   | Some t when t <= 0. ->
     invalid_arg "Executor.config: job_timeout_s must be positive"
   | _ -> ());
  if backoff_base_s < 0. then
    invalid_arg "Executor.config: backoff_base_s must be >= 0";
  { c_kind = kind; job_timeout_s; backoff_base_s; backoff_seed; worker_argv;
    obs; obs_prefix }

let kind_of c = c.c_kind

let kind_name = function
  | In_domain -> "in-domain"
  | Subprocess -> "subprocess"

type failure =
  | Crashed of { error : string }
  | Killed of { signal : int }
  | Timed_out

let failure_to_string = function
  | Crashed { error } -> "crashed: " ^ error
  | Killed { signal } -> Printf.sprintf "killed by signal %d" signal
  | Timed_out -> "wall-clock watchdog expired"

type 'a outcome =
  | Done of 'a
  | Failed of failure

type 'a task_result = {
  attempts : int;
  outcome : 'a outcome;
}

type 'a tasks = {
  count : int;
  skip : int -> bool;
  execute : int -> attempt:int -> 'a;
  request : int -> attempt:int -> J.json;
  decode : int -> J.json -> ('a, string) result;
  on_result : int -> 'a task_result -> unit;
}

(* Deterministic decorrelated-jitter retry delay (AWS architecture
   blog vintage): d1 = base, dn = min(cap, base + u * (3 * d(n-1) -
   base)) where u in [0, 1) is a hash of (seed, task, n).  Compared to
   plain exponential-with-fixed-jitter, successive delays from
   different seeds decorrelate quickly — a fleet of clients rejected
   at the same instant does not re-stampede on the same schedule.
   Only *when* a retry runs depends on this — never what it produces.
   Shared with the serve client's backpressure retries, which is why
   it lives in the interface. *)
let backoff_s ~seed ~task ~base_s ~attempt =
  if base_s <= 0. || attempt < 1 then 0.
  else begin
    let cap = 32. *. base_s in
    let frac n =
      float_of_int (Hashtbl.hash (seed, task, n) land 0xFFFF) /. 65536.
    in
    let rec grow d n =
      if n > attempt then d
      else grow (Float.min cap (base_s +. (frac n *. ((3. *. d) -. base_s)))) (n + 1)
    in
    grow base_s 2
  end

let backoff config ~task ~attempt =
  backoff_s ~seed:config.backoff_seed ~task ~base_s:config.backoff_base_s
    ~attempt

let respawn_counter config =
  match config.obs with
  | None -> None
  | Some m -> Some (Tabv_obs.Metrics.counter m (config.obs_prefix ^ ".workers_respawned"))

let timeout_counter config =
  match config.obs with
  | None -> None
  | Some m -> Some (Tabv_obs.Metrics.counter m (config.obs_prefix ^ ".jobs_timed_out"))

let bump = Option.iter Tabv_obs.Metrics.incr

(* --- in-domain pool -------------------------------------------------- *)

let run_in_domain config ~workers ~retries ~interrupted tasks =
  let n = tasks.count in
  let slots : 'a task_result option array = Array.make n None in
  let next = Atomic.make 0 in
  (* Workers are always spawned domains (even for [workers = 1]) so
     the caller's interning universe is never touched by execution. *)
  let worker () =
    let rec loop () =
      if not (interrupted ()) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          if not (tasks.skip i) then begin
            let rec attempt_loop attempt =
              match tasks.execute i ~attempt with
              | v -> { attempts = attempt; outcome = Done v }
              | exception e ->
                let error = Printexc.to_string e in
                if attempt > retries then
                  { attempts = attempt; outcome = Failed (Crashed { error }) }
                else begin
                  let d = backoff config ~task:i ~attempt in
                  if d > 0. then Unix.sleepf d;
                  attempt_loop (attempt + 1)
                end
            in
            let r = attempt_loop 1 in
            slots.(i) <- Some r;
            tasks.on_result i r
          end;
          loop ()
        end
      end
    in
    loop ()
  in
  let domains = List.init workers (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  slots

(* --- subprocess pool ------------------------------------------------- *)

(* OCaml's [Sys.sig*] values are an internal negative encoding; worker
   death is reported with POSIX numbers so reports and logs mean the
   same thing everywhere. *)
let posix_signal n =
  if n > 0 then n
  else if n = Sys.sighup then 1
  else if n = Sys.sigint then 2
  else if n = Sys.sigquit then 3
  else if n = Sys.sigill then 4
  else if n = Sys.sigtrap then 5
  else if n = Sys.sigabrt then 6
  else if n = Sys.sigbus then 7
  else if n = Sys.sigfpe then 8
  else if n = Sys.sigkill then 9
  else if n = Sys.sigusr1 then 10
  else if n = Sys.sigsegv then 11
  else if n = Sys.sigusr2 then 12
  else if n = Sys.sigpipe then 13
  else if n = Sys.sigalrm then 14
  else if n = Sys.sigterm then 15
  else if n = Sys.sigchld then 17
  else if n = Sys.sigcont then 18
  else if n = Sys.sigstop then 19
  else if n = Sys.sigtstp then 20
  else if n = Sys.sigttin then 21
  else if n = Sys.sigttou then 22
  else if n = Sys.sigurg then 23
  else if n = Sys.sigxcpu then 24
  else if n = Sys.sigxfsz then 25
  else if n = Sys.sigvtalrm then 26
  else if n = Sys.sigprof then 27
  else if n = Sys.sigpoll then 29
  else if n = Sys.sigsys then 31
  else -n

type worker_state = {
  mutable pid : int;
  mutable to_w : Unix.file_descr;
  mutable from_w : Unix.file_descr;
  mutable stream : Wire.stream;
  mutable current : (int * int) option;  (* (task, attempt) in flight *)
  mutable deadline : float;  (* watchdog expiry; [infinity] when idle *)
  mutable alive : bool;
}

let spawn_process argv =
  (* Both pipes are close-on-exec end to end: [create_process] dup2s
     the child's ends onto fds 0/1 (which clears the flag on the
     copies), so the worker inherits nothing else — in particular not
     the write end of {e its own} stdin pipe (which would swallow the
     EOF that tells it to shut down) and not another worker's ends
     (which would postpone the EOF that signals that worker's
     death). *)
  let req_read, req_write = Unix.pipe ~cloexec:true () in
  let rsp_read, rsp_write = Unix.pipe ~cloexec:true () in
  let pid =
    try Unix.create_process argv.(0) argv req_read rsp_write Unix.stderr
    with e ->
      Unix.close req_read; Unix.close req_write;
      Unix.close rsp_read; Unix.close rsp_write;
      raise e
  in
  Unix.close req_read;
  Unix.close rsp_write;
  (pid, req_write, rsp_read)

let spawn_worker argv =
  let pid, to_w, from_w = spawn_process argv in
  { pid; to_w; from_w; stream = Wire.stream (); current = None;
    deadline = infinity; alive = true }

let respawn argv w =
  let pid, to_w, from_w = spawn_process argv in
  w.pid <- pid;
  w.to_w <- to_w;
  w.from_w <- from_w;
  w.stream <- Wire.stream ();
  w.current <- None;
  w.deadline <- infinity;
  w.alive <- true

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let reap w =
  (* The worker is dead or dying: release our pipe ends and collect
     the exit status (after a SIGKILL the zombie is immediate). *)
  close_noerr w.to_w;
  close_noerr w.from_w;
  w.alive <- false;
  match Unix.waitpid [] w.pid with
  | _, status -> status
  | exception Unix.Unix_error _ -> Unix.WEXITED 127

let kill_noerr pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let n = Unix.write_substring fd s off (len - off) in
      go (off + n)
    end
  in
  go 0

let run_subprocess config ~workers ~retries ~interrupted tasks =
  let n = tasks.count in
  let slots : 'a task_result option array = Array.make n None in
  let respawned = respawn_counter config in
  let timed_out = timeout_counter config in
  (* Pending work: (task, attempt, not_before).  Retries re-enter here
     with their backoff delay; order never affects results. *)
  let pending = ref [] in
  let remaining = ref 0 in
  for i = n - 1 downto 0 do
    if not (tasks.skip i) then begin
      pending := (i, 1, 0.) :: !pending;
      incr remaining
    end
  done;
  if !remaining = 0 then slots
  else begin
    let prev_sigpipe =
      (* A worker dying between our [select] and our request write
         must surface as a failed attempt, not kill the campaign. *)
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let pool = Array.init (min workers !remaining) (fun _ -> spawn_worker config.worker_argv) in
    let finish task result =
      slots.(task) <- Some result;
      tasks.on_result task result;
      decr remaining
    in
    let fail_attempt task attempt failure =
      if attempt > retries then
        finish task { attempts = attempt; outcome = Failed failure }
      else begin
        let d = backoff config ~task ~attempt in
        pending := (task, attempt + 1, Unix.gettimeofday () +. d) :: !pending
      end
    in
    let worker_died w =
      let status = reap w in
      (match w.current with
       | None -> ()
       | Some (task, attempt) ->
         let failure =
           match status with
           | Unix.WSIGNALED sg -> Killed { signal = posix_signal sg }
           | Unix.WEXITED code ->
             Crashed
               { error =
                   Printf.sprintf "worker exited with code %d before replying" code }
           | Unix.WSTOPPED sg ->
             Crashed { error = Printf.sprintf "worker stopped by signal %d" (posix_signal sg) }
         in
         w.current <- None;
         fail_attempt task attempt failure);
      if !remaining > 0 then begin
        respawn config.worker_argv w;
        bump respawned
      end
    in
    let handle_reply w frame =
      match w.current with
      | None ->
        (* An unsolicited frame is a protocol violation: replace the
           worker, nothing was in flight so nothing fails. *)
        kill_noerr w.pid;
        ignore (reap w);
        if !remaining > 0 then begin
          respawn config.worker_argv w;
          bump respawned
        end
      | Some (task, attempt) ->
        w.current <- None;
        w.deadline <- infinity;
        (match J.of_string frame with
         | exception J.Parse_error _ ->
           fail_attempt task attempt
             (Crashed { error = "worker protocol error: unparsable reply" })
         | json ->
           (match (J.member "ok" json, J.member "error" json) with
            | Some payload, _ ->
              (match tasks.decode task payload with
               | Ok v -> finish task { attempts = attempt; outcome = Done v }
               | Error e ->
                 fail_attempt task attempt
                   (Crashed { error = "worker protocol error: " ^ e }))
            | None, Some (J.String error) ->
              fail_attempt task attempt (Crashed { error })
            | None, _ ->
              fail_attempt task attempt
                (Crashed { error = "worker protocol error: reply without ok/error" })))
    in
    let send w task attempt =
      let payload = J.to_string (tasks.request task ~attempt) in
      w.current <- Some (task, attempt);
      w.deadline <-
        (match config.job_timeout_s with
         | None -> infinity
         | Some t -> Unix.gettimeofday () +. t);
      match write_all w.to_w (Wire.encode_frame payload) with
      | () -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
        (* Worker already dead; its EOF is (or will be) readable and
           the death handler re-queues the attempt. *)
        ()
    in
    (* Pop the ready pending task with the lowest index (stable,
       debuggable order; results don't depend on it). *)
    let pop_ready now =
      let ready, rest =
        List.partition (fun (_, _, nb) -> nb <= now) !pending
      in
      match List.sort (fun (a, _, _) (b, _, _) -> compare a b) ready with
      | [] -> None
      | ((task, attempt, _) as chosen) :: _ ->
        pending := List.filter (fun p -> p != chosen) ready @ rest;
        Some (task, attempt)
    in
    let assign now =
      Array.iter
        (fun w ->
          if w.alive && w.current = None then
            match pop_ready now with
            | Some (task, attempt) -> send w task attempt
            | None -> ())
        pool
    in
    let abort_all () =
      Array.iter
        (fun w ->
          if w.alive then begin
            kill_noerr w.pid;
            ignore (reap w)
          end)
        pool
    in
    let shutdown () =
      (* Closing a worker's stdin makes its serve loop see EOF and
         exit cleanly; then reap. *)
      Array.iter (fun w -> if w.alive then close_noerr w.to_w) pool;
      Array.iter (fun w -> if w.alive then begin
        close_noerr w.from_w;
        w.alive <- false;
        (try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
      end) pool
    in
    let rec loop () =
      if interrupted () then abort_all ()
      else if !remaining = 0 then shutdown ()
      else begin
        let now = Unix.gettimeofday () in
        assign now;
        (* Watchdogs: SIGKILL any worker past its deadline. *)
        Array.iter
          (fun w ->
            if w.alive && w.deadline <= now then begin
              (match w.current with
               | Some (task, attempt) ->
                 w.current <- None;
                 bump timed_out;
                 fail_attempt task attempt Timed_out
               | None -> ());
              kill_noerr w.pid;
              ignore (reap w);
              if !remaining > 0 then begin
                respawn config.worker_argv w;
                bump respawned
              end
            end)
          pool;
        let busy_fds =
          Array.to_list pool
          |> List.filter_map (fun w -> if w.alive && w.current <> None then Some w.from_w else None)
        in
        let timeout =
          let next_deadline =
            Array.fold_left
              (fun acc w -> if w.alive then min acc w.deadline else acc)
              infinity pool
          in
          let next_retry =
            List.fold_left (fun acc (_, _, nb) -> min acc nb) infinity !pending
          in
          let horizon = min next_deadline next_retry in
          if horizon = infinity then 0.2
          else Float.max 0. (Float.min 0.2 (horizon -. now))
        in
        let readable =
          if busy_fds = [] then begin
            (* Nothing in flight: either retries are cooling down or
               every task is terminal.  Sleep to the horizon. *)
            if !remaining > 0 && timeout > 0. then Unix.sleepf timeout;
            []
          end
          else
            match Unix.select busy_fds [] [] timeout with
            | readable, _, _ -> readable
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            match
              Array.to_list pool
              |> List.find_opt (fun w -> w.alive && w.from_w == fd)
            with
            | None -> ()
            | Some w ->
              let buf = Bytes.create 65536 in
              (match Unix.read w.from_w buf 0 (Bytes.length buf) with
               | 0 -> worker_died w
               | n ->
                 Wire.feed w.stream (Bytes.sub_string buf 0 n);
                 let rec drain () =
                   match Wire.pop w.stream with
                   | Some frame ->
                     handle_reply w frame;
                     drain ()
                   | None -> ()
                   | exception Wire.Protocol_error _ ->
                     (* Garbage on the pipe: replace the worker; the
                        in-flight attempt fails and retries. *)
                     (match w.current with
                      | Some (task, attempt) ->
                        w.current <- None;
                        fail_attempt task attempt
                          (Crashed { error = "worker protocol error: bad frame" })
                      | None -> ());
                     kill_noerr w.pid;
                     ignore (reap w);
                     if !remaining > 0 then begin
                       respawn config.worker_argv w;
                       bump respawned
                     end
                 in
                 drain ()
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
          readable;
        loop ()
      end
    in
    Fun.protect
      ~finally:(fun () ->
        (match prev_sigpipe with
         | Some behavior -> (try Sys.set_signal Sys.sigpipe behavior with Invalid_argument _ -> ())
         | None -> ());
        (* Never leak workers, whatever happened above. *)
        Array.iter
          (fun w ->
            if w.alive then begin
              kill_noerr w.pid;
              ignore (reap w)
            end)
          pool)
      loop;
    slots
  end

(* --- entry point ----------------------------------------------------- *)

let run config ~workers ~retries ?(interrupted = fun () -> false) tasks =
  if retries < 0 then invalid_arg "Executor.run: retries must be >= 0";
  if workers < 1 then invalid_arg "Executor.run: workers must be >= 1";
  match config.c_kind with
  | In_domain -> run_in_domain config ~workers ~retries ~interrupted tasks
  | Subprocess -> run_subprocess config ~workers ~retries ~interrupted tasks
