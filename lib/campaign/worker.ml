(* The subprocess executor's worker half: a frame server over
   stdin/stdout.  See worker.mli for the protocol. *)

module J = Tabv_core.Report_json

let ( let* ) = Result.bind

(* The coordinator ships its engine selection in every request
   ([sim_engine]); the worker mirrors it into the process-wide default
   so the subprocess simulates on the same engine an in-process run
   would.  Absent field = leave the default (classic) alone, which
   keeps old journals and hand-written requests working. *)
let decode_sim_engine what fields =
  match List.assoc_opt "sim_engine" fields with
  | None -> Ok (fun () -> ())
  | Some (J.String name) ->
    (match Tabv_sim.Kernel.engine_of_string name with
     | Ok engine -> Ok (fun () -> Tabv_sim.Kernel.set_default_engine engine)
     | Error e -> Error (Printf.sprintf "%s.sim_engine: %s" what e))
  | Some _ -> Error (what ^ ".sim_engine: expected a string")

(* Ops registered by layers above this library (lib/serve adds
   "serve_request"): name -> decoder-to-thunk.  A registry rather than
   a match arm because lib/serve depends on this library, not the
   other way around; coordinators register before [main]. *)
let extra_ops : (string, J.json -> (unit -> J.json, string) result) Hashtbl.t =
  Hashtbl.create 4

let register_op name decode = Hashtbl.replace extra_ops name decode

(* Decode a request into a thunk.  Decoding is separated from
   execution so malformed requests answer [{"error":..}] without
   running anything. *)
let decode_request json =
  let what = "request" in
  let* fields = Wire.open_assoc what json in
  let* op = Wire.string_field what "op" fields in
  match op with
  | "campaign_job" ->
    let* attempt = Wire.int_field what "attempt" fields in
    let* metrics = Wire.bool_field what "metrics" fields in
    let* job =
      let* v = Wire.field what "job" fields in
      Campaign.job_spec_of_json v
    in
    let* set_engine = decode_sim_engine what fields in
    Ok
      (fun () ->
        set_engine ();
        Campaign.payload_json
          (Campaign.exec_job ~attempt ~metrics_enabled:metrics job))
  | "qualify_job" ->
    let* duv =
      let* name = Wire.string_field what "duv" fields in
      match Campaign.duv_of_name name with
      | Some duv -> Ok duv
      | None -> Error (Printf.sprintf "%s: unknown duv %S" what name)
    in
    let* levels =
      let* v = Wire.field what "levels" fields in
      let* items = Wire.open_list (what ^ ".levels") v in
      Wire.map_result
        (fun item ->
          match item with
          | J.String name ->
            (match Campaign.level_of_name name with
             | Some level -> Ok level
             | None -> Error (Printf.sprintf "%s: unknown level %S" what name))
          | _ -> Error (what ^ ".levels: expected strings"))
        items
    in
    let* seed = Wire.int_field what "seed" fields in
    let* ops = Wire.int_field what "ops" fields in
    let* index = Wire.int_field what "index" fields in
    let* set_engine = decode_sim_engine what fields in
    Ok
      (fun () ->
        set_engine ();
        Qualify.qrun_json (Qualify.exec_index ~duv ~levels ~seed ~ops index))
  | "recheck_job" ->
    let* trace = Wire.string_field what "trace" fields in
    let* sources =
      let* v = Wire.field what "properties" fields in
      let* items = Wire.open_list (what ^ ".properties") v in
      Wire.map_result
        (fun item ->
          match item with
          | J.String source -> Ok source
          | _ -> Error (what ^ ".properties: expected strings"))
        items
    in
    Ok
      (fun () ->
        (* Property sources travel as re-parseable property-language
           lines; parse errors surface as the worker's [{"error":..}]
           reply through the exception path below. *)
        let properties =
          List.concat_map
            (fun source -> Tabv_psl.Parser.file source)
            sources
        in
        Recheck.payload_json (Recheck.exec_chunk ~trace ~properties))
  | other ->
    (match Hashtbl.find_opt extra_ops other with
     | Some decode -> decode json
     | None -> Error (Printf.sprintf "%s: unknown op %S" what other))

let reply_of_request payload =
  match J.of_string payload with
  | exception J.Parse_error { line; col; message } ->
    J.Assoc
      [ ( "error",
          J.String (Printf.sprintf "worker: unparsable request: %d:%d: %s" line col message) )
      ]
  | json ->
    (match decode_request json with
     | Error e -> J.Assoc [ ("error", J.String ("worker: " ^ e)) ]
     | Ok execute ->
       (* An ordinary exception here must read exactly like the
          in-domain executor's [Crashed] record — [Printexc.to_string]
          both places — so the two executors stay byte-identical.
          Hard failures never reach the [with]: the process dies and
          the coordinator classifies the corpse. *)
       (match execute () with
        | result -> J.Assoc [ ("ok", result) ]
        | exception e -> J.Assoc [ ("error", J.String (Printexc.to_string e)) ]))

let serve ic oc =
  let rec loop () =
    match Wire.read_frame ic with
    | None -> ()
    | Some payload ->
      Wire.write_frame oc (J.to_string (reply_of_request payload));
      loop ()
  in
  loop ()

let main () =
  set_binary_mode_in stdin true;
  set_binary_mode_out stdout true;
  serve stdin stdout
