(** Pluggable campaign executors: where jobs physically run.

    Both campaign flavours ({!Campaign}, {!Qualify}) describe their
    work as an indexed array of deterministic tasks and hand it to one
    of two executors:

    {ul
    {- {!In_domain} — the historical pool of spawned OCaml [Domain]s.
       Cheap, but an attempt is contained only as far as [try/with]
       reaches: a segfault, an abort, unbounded allocation or a
       non-yielding busy loop takes the whole campaign process with
       it.}
    {- {!Subprocess} — a pool of forked OS worker processes (the
       binary re-executes itself with a hidden [_worker] argv hook)
       exchanging requests and replies as length-prefixed JSON frames
       over pipes ({!Wire}).  The OS is the containment boundary:
       a worker death of {e any} kind is observed as EOF + [waitpid]
       status, classified as {!Killed} / {!Crashed}, and the worker is
       respawned.  A per-task wall-clock watchdog SIGKILLs workers
       that exceed [job_timeout_s] ({!Timed_out}).}}

    Failed attempts are retried up to [retries] times under seeded
    decorrelated-jitter backoff ({!backoff_s}: capped growth from
    [backoff_base_s] with a deterministic per-(seed, task, attempt)
    jitter).  Task {e results}
    stay deterministic either way: what executes, how often it is
    attempted on a deterministic failure, and everything a task
    returns are pure functions of the task — wall-clock only decides
    {e when} retries happen, never {e what} they produce.

    The executor reports how each task ended; turning failures into
    report rows (and keeping wall-clock metadata out of them) is the
    caller's business. *)

type kind =
  | In_domain
  | Subprocess

type config

(** [config ?job_timeout_s ?backoff_base_s ?backoff_seed ?worker_argv
    ?obs ?obs_prefix kind].

    [job_timeout_s] — per-attempt wall-clock watchdog ({!Subprocess}
    only; ignored in-domain where a stuck domain cannot be killed).
    [backoff_base_s] (default [0.]) — base retry delay; [0.] retries
    immediately.  [backoff_seed] (default [0]) seeds the jitter.
    [worker_argv] (default [[| Sys.executable_name; "_worker" |]]) —
    how to launch a worker; test binaries point it at themselves.
    [obs] registers [<obs_prefix>.workers_respawned] and
    [<obs_prefix>.jobs_timed_out] counters ([obs_prefix] default
    ["campaign"]); this registry is runner-level observability and
    must never be merged into a deterministic report. *)
val config :
  ?job_timeout_s:float ->
  ?backoff_base_s:float ->
  ?backoff_seed:int ->
  ?worker_argv:string array ->
  ?obs:Tabv_obs.Metrics.t ->
  ?obs_prefix:string ->
  kind ->
  config

val kind_of : config -> kind
val kind_name : kind -> string

(** [backoff_s ~seed ~task ~base_s ~attempt] — the deterministic
    decorrelated-jitter retry delay used between attempts: [d1 =
    base_s], [dn = min (32 * base_s) (base_s + u * (3 * d(n-1) -
    base_s))] with [u] in [[0, 1)] hashed from [(seed, task, n)].
    Pure function of its arguments; [0.] when [base_s <= 0.] or
    [attempt < 1].  Exposed because the serve client reuses it for
    backpressure retries — distinct seeds decorrelate a fleet of
    clients rejected at the same instant, where fixed server advice
    would re-stampede them in lockstep. *)
val backoff_s : seed:int -> task:int -> base_s:float -> attempt:int -> float

(** How a task ultimately failed (after all retries). *)
type failure =
  | Crashed of { error : string }
      (** an exception ({!In_domain}) or a worker [{"error":..}] reply
          / clean worker exit before replying ({!Subprocess}) *)
  | Killed of { signal : int }
      (** worker terminated by [signal] (POSIX numbering) —
          {!Subprocess} only *)
  | Timed_out  (** wall-clock watchdog expired — {!Subprocess} only *)

val failure_to_string : failure -> string

type 'a outcome =
  | Done of 'a
  | Failed of failure

type 'a task_result = {
  attempts : int;
      (** attempts actually made; on [Done] the succeeding attempt's
          number, on [Failed] [retries + 1] *)
  outcome : 'a outcome;
}

(** One campaign's work, as the executor sees it.  All callbacks must
    be pure functions of the task index (plus [attempt]) — that is the
    determinism contract that makes retries and resumes invisible in
    reports. *)
type 'a tasks = {
  count : int;
  skip : int -> bool;
      (** journaled tasks to leave untouched (slot stays [None]) *)
  execute : int -> attempt:int -> 'a;
      (** {!In_domain}: run the task, raising on failure *)
  request : int -> attempt:int -> Tabv_core.Report_json.json;
      (** {!Subprocess}: the request document shipped to a worker *)
  decode : int -> Tabv_core.Report_json.json -> ('a, string) result;
      (** {!Subprocess}: decode a worker's [ok] reply payload *)
  on_result : int -> 'a task_result -> unit;
      (** fired once per task as it reaches a terminal result, in
          completion order (journal appends live here); may be called
          concurrently from worker domains under {!In_domain} *)
}

(** [run config ~workers ~retries ?interrupted tasks] executes every
    non-skipped task and returns one slot per task — [None] for
    skipped tasks and for tasks not run because [interrupted ()]
    turned true (polled between jobs in-domain, continuously in the
    subprocess select loop; on interrupt, subprocess workers are
    SIGKILLed and in-flight tasks also land [None]).
    @raise Invalid_argument when [retries < 0] or [workers < 1]. *)
val run :
  config ->
  workers:int ->
  retries:int ->
  ?interrupted:(unit -> bool) ->
  'a tasks ->
  'a task_result option array
