(* Fault-qualification campaigns.

   One qualification run = per requested level, a clean baseline plus
   one faulted run per applicable catalog fault, all executed on the
   same pluggable {!Executor} as plain campaigns (fresh checker
   universe before every job).  Verdict attribution, coverage,
   cross-level regressions and the resilience scenarios are folded
   after the pool drains, so the report is a pure function of
   (duv, levels, seed, ops) — whatever executor ran it, and whether or
   not it was resumed from a journal. *)

open Tabv_duv
module Detect = Tabv_checker.Detect
module Fault = Tabv_fault.Fault
module Kernel = Tabv_sim.Kernel
module J = Tabv_core.Report_json

let ( let* ) = Result.bind

(* Delta cap fixed (so a livelock diagnosis reports the same
   [delta_cycles] everywhere), step budget off, crashes contained. *)
let job_guard =
  { Kernel.max_delta_cycles = Some 10_000; max_steps = None; contain_crashes = true }

let fault_duv = function
  | Campaign.Des56 -> Duv_fault.Des56
  | Campaign.Colorconv -> Duv_fault.Colorconv
  | Campaign.Memctrl -> Duv_fault.Memctrl

let fault_level = function
  | Campaign.Rtl -> Duv_fault.Rtl
  | Campaign.Tlm_ca -> Duv_fault.Tlm_ca
  | Campaign.Tlm_at -> Duv_fault.Tlm_at
  | Campaign.Tlm_lt -> Duv_fault.Tlm_lt

let diagnosis_kind = function
  | Kernel.Completed -> "completed"
  | Kernel.Starved _ -> "starved"
  | Kernel.Livelock _ -> "livelock"
  | Kernel.Budget_exhausted _ -> "budget_exhausted"
  | Kernel.Process_crashed _ -> "process_crashed"

(* --- report model --------------------------------------------------- *)

type fault_outcome =
  | No_carrier
  | Qualified of {
      plan : Fault.plan;
      triggered : int;
      diagnosis : Kernel.diagnosis;
      verdicts : Detect.property_verdict list;
      verdict : Detect.verdict;
    }

type fault_row = {
  fault : string;
  outcome : fault_outcome;
}

type level_report = {
  level : Campaign.level;
  baseline_failures : int;
  baseline_diagnosis : Kernel.diagnosis;
  rows : fault_row list;
  detected : int;
  missed : int;
  latent : int;
  applicable : int;
  coverage : float;
}

type scenario = {
  scenario : string;
  scenario_level : Campaign.level;
  expected : string;
  diagnosis : Kernel.diagnosis;
  matched : bool;
}

type report = {
  duv : Campaign.duv;
  seed : int;
  ops : int;
  levels : level_report list;
  resilience : scenario list;
  regressions : string list;
}

(* --- the job pool --------------------------------------------------- *)

exception Interrupted

type pool_job =
  | Baseline of Campaign.level
  | Fault_run of {
      level : Campaign.level;
      fault : string;
      plan : Fault.plan;
    }
  | Scenario_run of {
      name : string;
      level : Campaign.level;
      plan : Fault.plan;
      expected : string;
    }

let exec_pool_job ~duv ~seed ~ops = function
  | Baseline level -> Campaign.run_level duv level ~seed ~ops ~guard:job_guard
  | Fault_run { level; plan; _ } ->
    Campaign.run_level duv level ~seed ~ops ~fault_plan:plan ~guard:job_guard
  | Scenario_run { level; plan; _ } ->
    (* The scenarios assert termination diagnoses, not property
       verdicts: run bare (no checkers). *)
    Campaign.run_level ~selection:Campaign.No_checkers duv level ~seed ~ops
      ~fault_plan:plan ~guard:job_guard

let dedup levels =
  List.fold_left
    (fun acc level -> if List.mem level acc then acc else level :: acc)
    [] levels
  |> List.rev

let scenarios_for ~fduv levels =
  let first = List.hd levels in
  let chaos =
    [ ( "crash",
        first,
        Duv_fault.crash_plan ~at_ns:45 ~name:"qualify_crash",
        "process_crashed" );
      ("livelock", first, Duv_fault.livelock_plan ~at_ns:45, "livelock")
    ]
  in
  let deadlock =
    List.find_map
      (fun level ->
        Option.map
          (fun plan -> ("deadlock", level, plan, "starved"))
          (Duv_fault.hang_plan fduv (fault_level level) ~index:2))
      levels
  in
  chaos @ Option.to_list deadlock

(* The whole job matrix as a deterministic function of (duv, levels):
   plans are pure descriptions, compiled up front in (level-major,
   catalog) order, scenarios last.  A worker process regenerates the
   identical array from the request parameters and picks one index. *)
let pool_jobs ~duv ~levels =
  let fduv = fault_duv duv in
  let names = Duv_fault.fault_names fduv in
  let fault_jobs =
    List.concat_map
      (fun level ->
        Baseline level
        :: List.filter_map
             (fun fault ->
               Option.map
                 (fun plan -> Fault_run { level; fault; plan })
                 (Duv_fault.plan_for fduv (fault_level level) fault))
             names)
      levels
  in
  let scenario_jobs =
    List.map
      (fun (name, level, plan, expected) ->
        Scenario_run { name; level; plan; expected })
      (scenarios_for ~fduv levels)
  in
  Array.of_list (fault_jobs @ scenario_jobs)

(* --- execution payloads --------------------------------------------- *)

type qrun = {
  q_checker_stats : Tabv_obs.Checker_snapshot.t list;
  q_faults_triggered : int;
  q_diagnosis : Kernel.diagnosis;
}

let qrun_of_run (r : Testbench.run_result) =
  {
    q_checker_stats = r.Testbench.checker_stats;
    q_faults_triggered = r.Testbench.faults_triggered;
    q_diagnosis = r.Testbench.diagnosis;
  }

let qrun_json q =
  J.Assoc
    [ ("faults_triggered", J.Int q.q_faults_triggered);
      ("diagnosis", Fault.diagnosis_json q.q_diagnosis);
      ("properties", J.List (List.map J.checker_snapshot_json q.q_checker_stats))
    ]

let qrun_of_json json =
  let what = "qualify payload" in
  let* fields = Wire.open_assoc what json in
  let* q_faults_triggered = Wire.int_field what "faults_triggered" fields in
  let* q_diagnosis =
    let* v = Wire.field what "diagnosis" fields in
    Wire.diagnosis_of_json v
  in
  let* q_checker_stats =
    let* v = Wire.field what "properties" fields in
    let* items = Wire.open_list (what ^ ".properties") v in
    Wire.map_result Wire.checker_snapshot_of_json items
  in
  Ok { q_checker_stats; q_faults_triggered; q_diagnosis }

let exec_index ~duv ~levels ~seed ~ops index =
  let jobs = pool_jobs ~duv ~levels in
  if index < 0 || index >= Array.length jobs then
    invalid_arg (Printf.sprintf "Qualify.exec_index: index %d out of range" index);
  (* Fresh interning + obligation universes per job: snapshots depend
     only on the job, not on its worker placement. *)
  Tabv_checker.Progression.reset_universe ();
  qrun_of_run (exec_pool_job ~duv ~seed ~ops jobs.(index))

(* --- worker protocol ------------------------------------------------- *)

let request_json ~duv ~levels ~seed ~ops ~index =
  J.Assoc
    [ ("op", J.String "qualify_job");
      ("duv", J.String (Campaign.duv_name duv));
      ( "levels",
        J.List (List.map (fun l -> J.String (Campaign.level_name l)) levels) );
      ("seed", J.Int seed);
      ("ops", J.Int ops);
      ("index", J.Int index);
      ( "sim_engine",
        J.String
          (Tabv_sim.Kernel.engine_name (Tabv_sim.Kernel.get_default_engine ())) ) ]

(* --- journals -------------------------------------------------------- *)

let journal_kind = "qualify"

let params_json ~duv ~levels ~seed ~ops =
  J.Assoc
    [ ("kind", J.String journal_kind);
      ("duv", J.String (Campaign.duv_name duv));
      ( "levels",
        J.List (List.map (fun l -> J.String (Campaign.level_name l)) levels) );
      ("seed", J.Int seed);
      ("ops", J.Int ops) ]

let fingerprint ~duv ~levels ~seed ~ops =
  Journal.fingerprint_of_string
    (J.to_string (params_json ~duv:(duv : Campaign.duv) ~levels:(dedup levels) ~seed ~ops))

(* --- running --------------------------------------------------------- *)

let run ?(workers = 1) ?(retries = 1) ?exec ?journal ?interrupted ~duv ~levels
    ~seed ~ops () =
  let levels = dedup levels in
  if levels = [] then invalid_arg "Qualify.run: no levels";
  List.iter
    (fun level ->
      match Campaign.validate (Campaign.job ~duv ~level ~seed ~ops ()) with
      | Ok () -> ()
      | Error reason -> invalid_arg ("Qualify.run: " ^ reason))
    levels;
  let exec =
    match exec with
    | Some config -> config
    | None -> Executor.config Executor.In_domain
  in
  let fduv = fault_duv duv in
  let names = Duv_fault.fault_names fduv in
  let jobs = pool_jobs ~duv ~levels in
  let n = Array.length jobs in
  let replayed_tbl : (int, qrun) Hashtbl.t = Hashtbl.create 16 in
  (match journal with
   | None -> ()
   | Some jr ->
     List.iter
       (fun (id, record) ->
         if id < n then
           match qrun_of_json record with
           | Ok q -> Hashtbl.replace replayed_tbl id q
           | Error e ->
             invalid_arg (Printf.sprintf "Qualify.run: journal record %d: %s" id e))
       (Journal.replayed jr));
  let tasks =
    {
      Executor.count = n;
      skip = (fun i -> Hashtbl.mem replayed_tbl i);
      execute = (fun i ~attempt:_ -> exec_index ~duv ~levels ~seed ~ops i);
      request = (fun i ~attempt:_ -> request_json ~duv ~levels ~seed ~ops ~index:i);
      decode = (fun _ json -> qrun_of_json json);
      on_result =
        (fun i r ->
          match journal, r.Executor.outcome with
          | Some jr, Executor.Done q -> Journal.append jr ~id:i (qrun_json q)
          | _ -> ());
    }
  in
  let slots = Executor.run exec ~workers ~retries ?interrupted tasks in
  let result i =
    match Hashtbl.find_opt replayed_tbl i with
    | Some q -> q
    | None ->
      (match slots.(i) with
       | Some { Executor.outcome = Executor.Done q; _ } -> q
       | Some { Executor.outcome = Executor.Failed failure; _ } ->
         (* A job the executor could not complete still gets a row:
            deterministic failures produce the same synthetic crash
            diagnosis on every run. *)
         {
           q_checker_stats = [];
           q_faults_triggered = 0;
           q_diagnosis =
             Kernel.Process_crashed
               { name = "qualify-job"; error = Executor.failure_to_string failure };
         }
       | None -> raise Interrupted)
  in
  (* --- fold the matrix --- *)
  let level_reports = ref [] in
  let rtl_detected = ref [] and ca_missed = ref [] in
  let i = ref 0 in
  List.iter
    (fun level ->
      let baseline = result !i in
      incr i;
      let rows =
        List.map
          (fun fault ->
            match Duv_fault.plan_for fduv (fault_level level) fault with
            | None -> { fault; outcome = No_carrier }
            | Some plan ->
              let r = result !i in
              incr i;
              let verdicts =
                Detect.classify
                  ~triggered:r.q_faults_triggered
                  ~baseline:baseline.q_checker_stats
                  ~faulted:r.q_checker_stats
              in
              let verdict = Detect.summary verdicts in
              (match level, verdict with
               | Campaign.Rtl, Detect.Detected ->
                 rtl_detected := fault :: !rtl_detected
               | Campaign.Tlm_ca, (Detect.Missed | Detect.Latent) ->
                 ca_missed := fault :: !ca_missed
               | _ -> ());
              {
                fault;
                outcome =
                  Qualified
                    {
                      plan;
                      triggered = r.q_faults_triggered;
                      diagnosis = r.q_diagnosis;
                      verdicts;
                      verdict;
                    };
              })
          names
      in
      let count v =
        List.length
          (List.filter
             (fun row ->
               match row.outcome with
               | Qualified q -> q.verdict = v
               | No_carrier -> false)
             rows)
      in
      let detected = count Detect.Detected in
      let missed = count Detect.Missed in
      let latent = count Detect.Latent in
      let applicable = detected + missed + latent in
      let coverage =
        let denominator = applicable - latent in
        if denominator <= 0 then 1.0
        else float_of_int detected /. float_of_int denominator
      in
      level_reports :=
        {
          level;
          baseline_failures =
            Tabv_obs.Checker_snapshot.total_failures baseline.q_checker_stats;
          baseline_diagnosis = baseline.q_diagnosis;
          rows;
          detected;
          missed;
          latent;
          applicable;
          coverage;
        }
        :: !level_reports)
    levels;
  let resilience =
    List.map
      (fun (name, level, _plan, expected) ->
        let r = result !i in
        incr i;
        let diagnosis = r.q_diagnosis in
        {
          scenario = name;
          scenario_level = level;
          expected;
          diagnosis;
          matched = diagnosis_kind diagnosis = expected;
        })
      (scenarios_for ~fduv levels)
  in
  (* The re-use claim, falsifiable: a fault the RTL suite detects,
     whose TLM-CA carrier exists, must be detected at TLM-CA too. *)
  let regressions =
    List.filter (fun fault -> List.mem fault !ca_missed) (List.rev !rtl_detected)
  in
  { duv; seed; ops; levels = List.rev !level_reports; resilience; regressions }

let ok report =
  report.regressions = [] && List.for_all (fun s -> s.matched) report.resilience

(* --- deterministic report ------------------------------------------- *)

let qualify_schema_version = 1

let verdict_json (v : Detect.property_verdict) =
  let open J in
  Assoc
    [ ("property", String v.Detect.property);
      ("verdict", String (Detect.verdict_to_string v.Detect.verdict));
      ("baseline_failures", Int v.Detect.baseline_failures);
      ("fault_failures", Int v.Detect.fault_failures) ]

let row_json row =
  let open J in
  match row.outcome with
  | No_carrier ->
    Assoc [ ("fault", String row.fault); ("status", String "no-carrier") ]
  | Qualified q ->
    Assoc
      [ ("fault", String row.fault);
        ("status", String "qualified");
        ("verdict", String (Detect.verdict_to_string q.verdict));
        ("triggered", Int q.triggered);
        ("diagnosis", Fault.diagnosis_json q.diagnosis);
        ("plan", Fault.plan_json q.plan);
        ("properties", List (List.map verdict_json q.verdicts)) ]

let level_json l =
  let open J in
  Assoc
    [ ("level", String (Campaign.level_name l.level));
      ("baseline_failures", Int l.baseline_failures);
      ("baseline_diagnosis", Fault.diagnosis_json l.baseline_diagnosis);
      ("faults", List (List.map row_json l.rows));
      ( "coverage",
        Assoc
          [ ("detected", Int l.detected);
            ("missed", Int l.missed);
            ("latent", Int l.latent);
            ("applicable", Int l.applicable);
            ("score", Float l.coverage) ] ) ]

let scenario_json s =
  let open J in
  Assoc
    [ ("scenario", String s.scenario);
      ("level", String (Campaign.level_name s.scenario_level));
      ("expected", String s.expected);
      ("diagnosis", Fault.diagnosis_json s.diagnosis);
      ("matched", Bool s.matched) ]

let report_json report =
  let open J in
  Assoc
    [ ("schema", Int qualify_schema_version);
      ( "qualify",
        Assoc
          [ ("duv", String (Campaign.duv_name report.duv));
            ("seed", Int report.seed);
            ("ops", Int report.ops) ] );
      ("levels", List (List.map level_json report.levels));
      ("resilience", List (List.map scenario_json report.resilience));
      ("regressions", List (List.map (fun f -> String f) report.regressions));
      ("ok", Bool (ok report)) ]

(* --- printing ------------------------------------------------------- *)

let verdict_cell = function
  | No_carrier -> "-"
  | Qualified { verdict = Detect.Detected; _ } -> "D"
  | Qualified { verdict = Detect.Missed; _ } -> "M"
  | Qualified { verdict = Detect.Latent; _ } -> "L"

let pp_report ppf report =
  let fduv = fault_duv report.duv in
  let names = Duv_fault.fault_names fduv in
  Format.fprintf ppf "detection matrix (%s, seed=%d, ops=%d)@."
    (Campaign.duv_name report.duv) report.seed report.ops;
  Format.fprintf ppf "%-16s" "fault";
  List.iter
    (fun l -> Format.fprintf ppf " %8s" (Campaign.level_name l.level))
    report.levels;
  Format.fprintf ppf "@.";
  List.iter
    (fun fault ->
      Format.fprintf ppf "%-16s" fault;
      List.iter
        (fun l ->
          let row = List.find (fun r -> r.fault = fault) l.rows in
          Format.fprintf ppf " %8s" (verdict_cell row.outcome))
        report.levels;
      Format.fprintf ppf "@.")
    names;
  List.iter
    (fun l ->
      Format.fprintf ppf
        "%s: %d detected, %d missed, %d latent of %d applicable (coverage %.2f)@."
        (Campaign.level_name l.level) l.detected l.missed l.latent l.applicable
        l.coverage)
    report.levels;
  List.iter
    (fun s ->
      Format.fprintf ppf "resilience %-9s @@%s: expected %s, got %s%s@."
        s.scenario
        (Campaign.level_name s.scenario_level)
        s.expected
        (Kernel.diagnosis_to_string s.diagnosis)
        (if s.matched then "" else "  <- MISMATCH"))
    report.resilience;
  (match report.regressions with
   | [] -> ()
   | faults ->
     Format.fprintf ppf "cross-level regressions (RTL detected, TLM-CA missed):@.";
     List.iter (fun f -> Format.fprintf ppf "  %s@." f) faults);
  Format.fprintf ppf "verdict: %s@." (if ok report then "OK" else "FAILED")
