(** Multicore verification-campaign runner.

    A {e campaign} is the paper's evaluation as a first-class object:
    a declarative job matrix (DUV x abstraction level x workload seed
    x property selection x transaction count) executed on a pluggable
    {!Executor} — either the historical pool of spawned OCaml
    [Domain]s, or a pool of crash-isolated worker subprocesses.  Each
    job runs a fresh simulation kernel and a fresh metrics registry
    end-to-end through the existing testbench entry points; a failing
    job is retried under a bounded policy and recorded as a
    crashed / killed / timed-out outcome, so one diverging job never
    kills the campaign.

    {2 Determinism}

    The merged results — and {!report_json} — are byte-identical
    regardless of worker count, executor kind, and journal resumes:
    {ul
    {- results are merged sorted by job id, never by completion
       order;}
    {- every job starts from a fresh checker universe
       ({!Tabv_checker.Progression.reset_universe}), so transition
       cache statistics depend only on the job, not on which worker
       (domain {e or} process) it landed on or what ran there before;}
    {- a job's contribution to the report is exactly its
       {!exec_payload}, which round-trips losslessly through the
       worker pipes and the write-ahead journal;}
    {- wall-clock measurements, the worker count, the executor kind
       and the replay count are reported by {!val-run} but
       deliberately excluded from {!report_json}, mirroring the
       metrics-registry rule that snapshots never contain wall-clock
       values.}}

    {2 Crash containment}

    Under {!Executor.In_domain}, containment is [try/with]: an
    exception becomes [Crashed], but aborts, unbounded allocation and
    non-yielding loops take the whole process down.  Under
    {!Executor.Subprocess} the OS is the boundary: any worker death is
    classified ([Killed] with the POSIX signal, [Crashed] on a clean
    exit, [Timed_out] when the wall-clock watchdog fired) and the
    campaign keeps running. *)

(** {1 Job model} *)

type duv =
  | Des56
  | Colorconv
  | Memctrl

type level =
  | Rtl
  | Tlm_ca
  | Tlm_at
  | Tlm_lt  (** DES56 only: loosely-timed, boolean invariants only *)

(** Which slice of the level's built-in property set to attach.
    [Take n] keeps the first [n] (the paper's 1-checker / 5-checker
    columns); [No_checkers] runs the bare testbench (the "w/out c."
    columns). *)
type selection =
  | All
  | Take of int
  | No_checkers

(** What an armed [chaos] attempt does.  [Chaos_raise] raises an
    ordinary exception — containable by any executor.  [Chaos_hard]
    executes a {!Tabv_fault.Fault.hard_failure} (abort / allocation
    storm / busy loop) that no in-process handler survives: it exists
    to prove, in tests, that only the subprocess executor contains
    what [try/with] provably cannot. *)
type chaos_kind =
  | Chaos_raise
  | Chaos_hard of Tabv_fault.Fault.hard_failure

type job = {
  duv : duv;
  level : level;
  seed : int;  (** workload seed *)
  ops : int;  (** workload size (operations / pixels) *)
  selection : selection;
  chaos : int;
      (** test/diagnostic hook: deterministically fail the first
          [chaos] attempts of this job (0 = never).  With
          [chaos <= retries] the job completes on a retry; with
          [chaos > retries] it fails — both paths are exercised by
          the test suite and stay deterministic. *)
  chaos_kind : chaos_kind;  (** how an armed attempt fails *)
}

(** [job ?selection ?chaos ?chaos_kind ~duv ~level ~seed ~ops ()] with
    [selection] defaulting to [All], [chaos] to [0] and [chaos_kind]
    to [Chaos_raise]. *)
val job :
  ?selection:selection -> ?chaos:int -> ?chaos_kind:chaos_kind -> duv:duv ->
  level:level -> seed:int -> ops:int -> unit -> job

val duv_name : duv -> string
val level_name : level -> string
val selection_name : selection -> string
val chaos_kind_name : chaos_kind -> string
val duv_of_name : string -> duv option
val level_of_name : string -> level option
val selection_of_name : string -> selection option
val chaos_kind_of_name : string -> chaos_kind option

(** [Error reason] for combinations the testbenches cannot run
    (currently: [Tlm_lt] on anything but DES56). *)
val validate : job -> (unit, string) result

(** The built-in property suite a campaign attaches at one (DUV,
    level): the Fig. 3 sets at RTL/TLM-CA, the abstracted
    (auto-safe + reviewed) sets at TLM-AT, the boolean invariant at
    TLM-LT.  @raise Invalid_argument on [Tlm_lt] off DES56. *)
val builtin_properties : duv -> level -> Tabv_psl.Property.t list

(** One (DUV, level) run through the matching testbench entry point —
    the primitive under both campaign jobs and {!Qualify} fault runs.
    [fault_plan] and [guard] are forwarded to the testbench (see
    {!Tabv_duv.Testbench}); defaults run clean and unguarded.
    @raise Invalid_argument on [Tlm_lt] off DES56. *)
val run_level :
  ?selection:selection ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  duv ->
  level ->
  seed:int ->
  ops:int ->
  Tabv_duv.Testbench.run_result

(** Deterministic matrix expansion: DUV-major, then level, then seed
    order; invalid combinations ([Tlm_lt] off DES56) are skipped, so a
    matrix may name [Tlm_lt] once and only DES56 picks it up. *)
val expand_matrix :
  ?selection:selection ->
  duvs:duv list -> levels:level list -> seeds:int list -> ops:int -> unit ->
  job list

(** {1 Manifests} *)

type manifest = {
  manifest_jobs : job list;
  manifest_retries : int option;  (** overridden by [run ~retries] *)
}

(** Parse a campaign manifest document:
    {v
    { "retries": 1,
      "jobs":   [ {"duv":"des56","level":"rtl","seed":1,"ops":40,
                   "props":"all"} ],
      "matrix": { "duvs":   ["des56","colorconv"],
                  "levels": ["rtl","tlm-ca","tlm-at"],
                  "seeds":  [1,2],
                  "ops":    40,
                  "props":  "all" } }
    v}
    Explicit ["jobs"] come first, then the expanded ["matrix"] (both
    optional, at least one required).  ["props"] is ["all"], ["none"]
    or an integer [n] (= take the first [n]); jobs additionally accept
    ["chaos": k] and ["chaos_kind": "raise" | "abort" | "alloc_storm"
    | "busy_loop"].  Unknown keys are rejected. *)
val manifest_of_json : Tabv_core.Report_json.json -> (manifest, string) result

(** {!manifest_of_json} o {!Tabv_core.Report_json.of_string}, folding
    parse errors into [Error]. *)
val manifest_of_string : string -> (manifest, string) result

(** One job in canonical manifest form (keys [duv] / [level] / [seed]
    / [ops] / [props] / [chaos] (+ [chaos_kind] when not [raise])) —
    the unit worker requests and journal fingerprints are built
    from. *)
val job_spec_json : job -> Tabv_core.Report_json.json

(** Inverse of {!job_spec_json} (also accepts any manifest job
    object). *)
val job_spec_of_json : Tabv_core.Report_json.json -> (job, string) result

(** {1 Execution payloads}

    The deterministic product of one completed job — exactly what the
    report is built from, and therefore exactly what crosses a worker
    pipe ([{"ok": payload}] reply frames) and lands in the write-ahead
    journal. *)

type exec_payload = {
  p_sim_time_ns : int;
  p_kernel_activations : int;
  p_delta_cycles : int;
  p_transactions : int;
  p_completed_ops : int;
  p_checker_stats : Tabv_obs.Checker_snapshot.t list;
  p_metrics : Tabv_obs.Metrics.snapshot;
  p_diagnosis : Tabv_sim.Kernel.diagnosis;
}

(** Execute one attempt of one job in the calling domain/process:
    resets the checker universe, arms the chaos hook
    ([attempt <= chaos]), runs the testbench.  Raises on [Chaos_raise]
    chaos; {e does not return} on armed [Chaos_hard] chaos.  This is
    the single execution primitive shared by the in-domain executor
    and the [_worker] serve loop. *)
val exec_job : attempt:int -> metrics_enabled:bool -> job -> exec_payload

val payload_json : exec_payload -> Tabv_core.Report_json.json
val payload_of_json : Tabv_core.Report_json.json -> (exec_payload, string) result

(** The [{"op":"campaign_job",..}] request document the subprocess
    executor ships to a worker for one attempt of one job. *)
val request_json :
  attempt:int -> metrics:bool -> job -> Tabv_core.Report_json.json

(** {1 Journals} *)

(** The {!Journal.open_} [~kind] campaign journals use. *)
val journal_kind : string

(** Journal fingerprint of a job list under a retry budget: a digest
    of the canonical spec JSON, so a journal can only ever resume the
    exact campaign that wrote it. *)
val fingerprint : retries:int -> job list -> string

(** {1 Running} *)

type outcome =
  | Completed
  | Crashed of { error : string }  (** last attempt's exception *)
  | Killed of { signal : int }
      (** worker terminated by [signal] (POSIX numbering) — subprocess
          executor only *)
  | Timed_out  (** per-job wall-clock watchdog — subprocess only *)

type job_result = {
  job_id : int;  (** index in the submitted job list *)
  job : job;
  outcome : outcome;
  attempts : int;  (** 1 = first attempt succeeded *)
  sim_time_ns : int;
  kernel_activations : int;
  delta_cycles : int;
  transactions : int;
  completed_ops : int;
  failures : int;  (** property failures (0 when not completed) *)
  checker_stats : Tabv_obs.Checker_snapshot.t list;
  metrics : Tabv_obs.Metrics.snapshot;
  diagnosis : Tabv_sim.Kernel.diagnosis;
      (** how the job's simulation ended; a synthetic
          [Process_crashed] when the job itself failed *)
  wall_seconds : float;
      (** indicative only (in-domain: the successful attempt; 0 for
          subprocess / replayed / failed jobs); excluded from JSON *)
}

type summary = {
  results : job_result list;  (** ascending [job_id]; pending jobs absent *)
  workers : int;
  retries : int;
  completed : int;
  crashed : int;
  killed : int;  (** subprocess executor only *)
  timed_out : int;  (** subprocess executor only *)
  replayed : int;  (** results taken from the journal, not re-run *)
  pending : int;  (** jobs not run because the campaign was interrupted *)
  total_failures : int;
  total_sim_time_ns : int;
  total_activations : int;
  total_delta_cycles : int;
  total_transactions : int;
  total_completed_ops : int;
  checker_activations : int;
  checker_passes : int;
  checker_cache_hits : int;
  checker_cache_misses : int;
  failures_by_property : (string * int) list;
      (** properties with at least one failure, sorted by name *)
  merged_metrics : Tabv_obs.Metrics.snapshot;
      (** {!Tabv_obs.Metrics.merge_all} of the per-job snapshots *)
  wall_seconds : float;  (** excluded from JSON *)
}

(** [run ?workers ?retries ?clock ?metrics ?exec ?journal ?interrupted
    jobs] executes the campaign on [workers] workers (default 1) with
    up to [retries] retries per failing job (default 1).

    [clock] (seconds, default [fun () -> 0.]) feeds only the wall-time
    fields; pass [Unix.gettimeofday] from binaries that link [unix].
    [metrics] (default [true]) attaches a fresh enabled registry to
    every job.

    [exec] selects the executor (default
    [Executor.config Executor.In_domain]); see {!Executor} for the
    subprocess pool, watchdog and backoff knobs.

    [journal] must have been opened with {!journal_kind} and
    {!fingerprint} over exactly [jobs] and [retries]: its replayed
    records substitute for their jobs (which are skipped), and every
    newly completed job is durably appended before the campaign moves
    on.  A fresh-vs-resumed pair of runs produces byte-identical
    {!report_json}.

    [interrupted] is polled during execution; once it returns [true],
    no further job starts (subprocess workers are killed), completed
    results keep their journal records, and unstarted jobs are
    reported as [pending].

    @raise Invalid_argument if any job fails {!validate}, on a
    negative retry budget, or on an undecodable journal record. *)
val run :
  ?workers:int ->
  ?retries:int ->
  ?clock:(unit -> float) ->
  ?metrics:bool ->
  ?exec:Executor.config ->
  ?journal:Journal.t ->
  ?interrupted:(unit -> bool) ->
  job list ->
  summary

(** True iff no property failed, no job crashed / was killed / timed
    out, and nothing is pending (the CLI's exit criterion). *)
val all_green : summary -> bool

(** The deterministic campaign report: schema-versioned, sorted by job
    id, free of wall-clock values, of the worker count, of the
    executor kind and of replay provenance — running the same job list
    with any [?workers], either executor, or across an
    interrupt/resume yields byte-identical output. *)
val report_json : summary -> Tabv_core.Report_json.json

(** Human-oriented per-job table and aggregate roll-up (includes wall
    times and replay/pending counts — not deterministic). *)
val pp_summary : Format.formatter -> summary -> unit
