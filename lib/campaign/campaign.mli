(** Multicore verification-campaign runner.

    A {e campaign} is the paper's evaluation as a first-class object:
    a declarative job matrix (DUV x abstraction level x workload seed
    x property selection x transaction count) executed by a fixed pool
    of OCaml [Domain]s pulling jobs from a shared atomically-indexed
    queue.  Each job runs a fresh simulation kernel and a fresh
    metrics registry end-to-end through the existing testbench entry
    points; per-job exceptions are caught and recorded as a crashed
    outcome under a bounded retry policy, so one diverging job never
    kills the campaign.

    {2 Determinism}

    The merged results — and {!report_json} — are byte-identical
    regardless of worker count and completion order:
    {ul
    {- results are merged sorted by job id, never by completion
       order;}
    {- every job starts from a fresh per-domain checker universe
       ({!Tabv_checker.Progression.reset_universe}), so transition
       cache statistics depend only on the job, not on which worker it
       landed on or what ran there before;}
    {- wall-clock measurements (and the worker count itself) are
       reported by {!val-run} but deliberately excluded from
       {!report_json}, mirroring the metrics-registry rule that
       snapshots never contain wall-clock values.}}

    {2 Domain safety}

    Workers are always spawned domains (even with one worker), so the
    caller's interning universe is never touched.  All cross-domain
    communication is the atomic queue index and one result slot per
    job, written by exactly one worker and read after [Domain.join]. *)

(** {1 Job model} *)

type duv =
  | Des56
  | Colorconv
  | Memctrl

type level =
  | Rtl
  | Tlm_ca
  | Tlm_at
  | Tlm_lt  (** DES56 only: loosely-timed, boolean invariants only *)

(** Which slice of the level's built-in property set to attach.
    [Take n] keeps the first [n] (the paper's 1-checker / 5-checker
    columns); [No_checkers] runs the bare testbench (the "w/out c."
    columns). *)
type selection =
  | All
  | Take of int
  | No_checkers

type job = {
  duv : duv;
  level : level;
  seed : int;  (** workload seed *)
  ops : int;  (** workload size (operations / pixels) *)
  selection : selection;
  chaos : int;
      (** test/diagnostic hook: deterministically raise on the first
          [chaos] attempts of this job (0 = never).  With
          [chaos <= retries] the job completes on a retry; with
          [chaos > retries] it crashes — both paths are exercised by
          the test suite and stay deterministic. *)
}

(** [job ?selection ?chaos ~duv ~level ~seed ~ops ()] with [selection]
    defaulting to [All] and [chaos] to [0]. *)
val job :
  ?selection:selection -> ?chaos:int -> duv:duv -> level:level -> seed:int ->
  ops:int -> unit -> job

val duv_name : duv -> string
val level_name : level -> string
val selection_name : selection -> string
val duv_of_name : string -> duv option
val level_of_name : string -> level option
val selection_of_name : string -> selection option

(** [Error reason] for combinations the testbenches cannot run
    (currently: [Tlm_lt] on anything but DES56). *)
val validate : job -> (unit, string) result

(** The built-in property suite a campaign attaches at one (DUV,
    level): the Fig. 3 sets at RTL/TLM-CA, the abstracted
    (auto-safe + reviewed) sets at TLM-AT, the boolean invariant at
    TLM-LT.  @raise Invalid_argument on [Tlm_lt] off DES56. *)
val builtin_properties : duv -> level -> Tabv_psl.Property.t list

(** One (DUV, level) run through the matching testbench entry point —
    the primitive under both campaign jobs and {!Qualify} fault runs.
    [fault_plan] and [guard] are forwarded to the testbench (see
    {!Tabv_duv.Testbench}); defaults run clean and unguarded.
    @raise Invalid_argument on [Tlm_lt] off DES56. *)
val run_level :
  ?selection:selection ->
  ?metrics:Tabv_obs.Metrics.t ->
  ?fault_plan:Tabv_fault.Fault.plan ->
  ?guard:Tabv_sim.Kernel.guard ->
  duv ->
  level ->
  seed:int ->
  ops:int ->
  Tabv_duv.Testbench.run_result

(** Deterministic matrix expansion: DUV-major, then level, then seed
    order; invalid combinations ([Tlm_lt] off DES56) are skipped, so a
    matrix may name [Tlm_lt] once and only DES56 picks it up. *)
val expand_matrix :
  ?selection:selection ->
  duvs:duv list -> levels:level list -> seeds:int list -> ops:int -> unit ->
  job list

(** {1 Manifests} *)

type manifest = {
  manifest_jobs : job list;
  manifest_retries : int option;  (** overridden by [run ~retries] *)
}

(** Parse a campaign manifest document:
    {v
    { "retries": 1,
      "jobs":   [ {"duv":"des56","level":"rtl","seed":1,"ops":40,
                   "props":"all"} ],
      "matrix": { "duvs":   ["des56","colorconv"],
                  "levels": ["rtl","tlm-ca","tlm-at"],
                  "seeds":  [1,2],
                  "ops":    40,
                  "props":  "all" } }
    v}
    Explicit ["jobs"] come first, then the expanded ["matrix"] (both
    optional, at least one required).  ["props"] is ["all"], ["none"]
    or an integer [n] (= take the first [n]); jobs additionally accept
    ["chaos": k].  Unknown keys are rejected. *)
val manifest_of_json : Tabv_core.Report_json.json -> (manifest, string) result

(** {!manifest_of_json} o {!Tabv_core.Report_json.of_string}, folding
    parse errors into [Error]. *)
val manifest_of_string : string -> (manifest, string) result

(** {1 Running} *)

type outcome =
  | Completed
  | Crashed of { error : string }  (** last attempt's exception *)

type job_result = {
  job_id : int;  (** index in the submitted job list *)
  job : job;
  outcome : outcome;
  attempts : int;  (** 1 = first attempt succeeded *)
  sim_time_ns : int;
  kernel_activations : int;
  delta_cycles : int;
  transactions : int;
  completed_ops : int;
  failures : int;  (** property failures (0 when crashed) *)
  checker_stats : Tabv_obs.Checker_snapshot.t list;
  metrics : Tabv_obs.Metrics.snapshot;
  diagnosis : Tabv_sim.Kernel.diagnosis;
      (** how the job's simulation ended; a synthetic
          [Process_crashed] when the job itself crashed *)
  wall_seconds : float;  (** all attempts; excluded from JSON *)
}

type summary = {
  results : job_result list;  (** ascending [job_id] *)
  workers : int;
  retries : int;
  completed : int;
  crashed : int;
  total_failures : int;
  total_sim_time_ns : int;
  total_activations : int;
  total_delta_cycles : int;
  total_transactions : int;
  total_completed_ops : int;
  checker_activations : int;
  checker_passes : int;
  checker_cache_hits : int;
  checker_cache_misses : int;
  failures_by_property : (string * int) list;
      (** properties with at least one failure, sorted by name *)
  merged_metrics : Tabv_obs.Metrics.snapshot;
      (** {!Tabv_obs.Metrics.merge_all} of the per-job snapshots *)
  wall_seconds : float;  (** excluded from JSON *)
}

(** [run ?workers ?retries ?clock ?metrics jobs] executes the campaign
    on [workers] spawned domains (default 1) with up to [retries]
    retries per crashing job (default 1).  [clock] (seconds, default
    [fun () -> 0.]) feeds only the wall-time fields; pass
    [Unix.gettimeofday] from binaries that link [unix].  [metrics]
    (default [true]) attaches a fresh enabled registry to every job.
    @raise Invalid_argument if any job fails {!validate}. *)
val run :
  ?workers:int ->
  ?retries:int ->
  ?clock:(unit -> float) ->
  ?metrics:bool ->
  job list ->
  summary

(** True iff no property failed and no job crashed (the CLI's exit
    criterion). *)
val all_green : summary -> bool

(** The deterministic campaign report: schema-versioned, sorted by job
    id, free of wall-clock values and of the worker count — running
    the same job list with any [?workers] yields byte-identical
    output. *)
val report_json : summary -> Tabv_core.Report_json.json

(** Human-oriented per-job table and aggregate roll-up (includes wall
    times — not deterministic). *)
val pp_summary : Format.formatter -> summary -> unit
