open Tabv_psl

(** Offline parallel re-checking of stored traces.

    Simulate once ([tabv record]), check many: an arbitrary property
    set is replayed against a recorded binary trace through the shared
    campaign executors — worker domains in-process or crash-isolated
    worker subprocesses — with the property set split into contiguous
    per-worker chunks.  Each chunk streams the trace independently
    through [Offline.Run(Offline.Monitors)] (bounded memory) with a
    fresh checker universe, so the merged per-property verdicts are
    byte-identical for any worker count and either executor — and to
    the live check of the same run. *)

type result = {
  meta : Tabv_trace.Meta.t;
  snapshots : Tabv_obs.Checker_snapshot.t list;
      (** per-property counters, in input property order *)
  samples : int;  (** evaluation points replayed *)
  spans : int;
}

(** A chunk died (worker crash / undecodable reply); carries the
    executor's failure description. *)
exception Chunk_failed of string

(** The re-parseable property-language line for one property (what the
    subprocess request carries; [Parser.file] reads it back). *)
val property_source : Property.t -> string

(** Replay [properties] over the trace in one pass in this domain
    (fresh checker universe first).  Returns (samples, spans,
    snapshots).  The building block both executors run.
    @raise Tabv_trace.Reader.Format_error on a damaged file. *)
val exec_chunk :
  trace:string ->
  properties:Property.t list ->
  int * int * Tabv_obs.Checker_snapshot.t list

(** The [ok] reply payload for one executed chunk (what the subprocess
    worker sends back; the inverse of the executor's [decode]). *)
val payload_json :
  int * int * Tabv_obs.Checker_snapshot.t list -> Tabv_core.Report_json.json

(** Open the trace, decode the header and scan just far enough to know
    the signal dictionary (first sample record): [(meta, signals)].
    The CLI's fingerprint/lint gate.
    @raise Tabv_trace.Reader.Format_error like {!Tabv_trace.Reader}. *)
val probe : string -> Tabv_trace.Meta.t * string list

(** [run ?exec ?interrupted ~workers ~retries ~trace properties]
    re-checks the property set against the stored trace.
    @raise Chunk_failed when a chunk fails after its retries.
    @raise Invalid_argument when [workers < 1] or [retries < 0].
    @raise Tabv_trace.Reader.Format_error on a damaged file. *)
val run :
  ?exec:Executor.config ->
  ?interrupted:(unit -> bool) ->
  workers:int ->
  retries:int ->
  trace:string ->
  Property.t list ->
  result

(** The deterministic verdict report
    ({!Tabv_core.Report_json.verdict_report_json}) with the run
    section taken from the trace meta — byte-identical to the live
    [tabv check --report-json] of the recorded run. *)
val report_json : result -> Tabv_core.Report_json.json

val total_failures : result -> int
