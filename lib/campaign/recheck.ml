open Tabv_psl
module J = Tabv_core.Report_json

type result = {
  meta : Tabv_trace.Meta.t;
  snapshots : Tabv_obs.Checker_snapshot.t list;
  samples : int;
  spans : int;
}

exception Chunk_failed of string

let property_source p =
  Format.asprintf "property %s = %a %a;" p.Property.name Ltl.pp
    p.Property.formula Context.pp p.Property.context

module Monitors_run = Tabv_checker.Offline.Run (Tabv_checker.Offline.Monitors)

let exec_chunk ~trace ~properties =
  (* Fresh universe per chunk, as Campaign.exec_job does per job: the
     verdict fields are universe-independent anyway, but a bounded
     per-chunk universe also keeps long recheck runs from accreting
     interned state. *)
  Tabv_checker.Progression.reset_universe ();
  Tabv_trace.Reader.with_file trace (fun reader ->
      let monitors =
        Monitors_run.over_seq
          (Tabv_checker.Offline.Monitors.config properties)
          (Tabv_trace.Reader.to_seq reader)
      in
      ( Tabv_trace.Reader.samples reader,
        Tabv_trace.Reader.spans reader,
        Tabv_checker.Offline.Monitors.snapshots monitors ))

let probe path =
  Tabv_trace.Reader.with_file path (fun reader ->
      (* The dictionary precedes the first sample, but spans may come
         first — scan until the dictionary shows up (or the trace ends
         without samples, which legitimately has no signals). *)
      let rec scan () =
        match Tabv_trace.Reader.signals reader with
        | _ :: _ as signals -> signals
        | [] ->
          (match Tabv_trace.Reader.next reader with
           | Some _ -> scan ()
           | None -> [])
      in
      let signals = scan () in
      (Tabv_trace.Reader.meta reader, signals))

(* Contiguous balanced chunks: chunk i gets every property, in order,
   exactly once across chunks.  Chunk boundaries are a function of
   (count, chunks) only, so the merged snapshot order is independent
   of scheduling. *)
let chunk_bounds ~chunks count =
  let base = count / chunks and extra = count mod chunks in
  List.init chunks (fun i ->
      let start = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (start, len))

let sub_list start len items =
  List.filteri (fun i _ -> i >= start && i < start + len) items

let request_json ~trace ~properties =
  J.Assoc
    [ ("op", J.String "recheck_job");
      ("trace", J.String trace);
      ( "properties",
        J.List (List.map (fun p -> J.String (property_source p)) properties) )
    ]

let payload_json (samples, spans, snapshots) =
  J.Assoc
    [ ("samples", J.Int samples);
      ("spans", J.Int spans);
      ("properties", J.List (List.map J.checker_snapshot_json snapshots)) ]

let payload_of_json json =
  let ( let* ) = Result.bind in
  let what = "recheck reply" in
  let* fields = Wire.open_assoc what json in
  let* samples = Wire.int_field what "samples" fields in
  let* spans = Wire.int_field what "spans" fields in
  let* props = Wire.field what "properties" fields in
  let* items = Wire.open_list (what ^ ".properties") props in
  let* snapshots = Wire.map_result Wire.checker_snapshot_of_json items in
  Ok (samples, spans, snapshots)

let run ?(exec = Executor.config Executor.In_domain) ?interrupted ~workers
    ~retries ~trace properties =
  if workers < 1 then invalid_arg "Recheck.run: workers must be >= 1";
  (* Validate the file before spinning up any executor, so a damaged
     trace fails with its Format_error, not a chunk failure. *)
  let meta, _signals = probe trace in
  let count = List.length properties in
  let chunks = max 1 (min workers count) in
  if chunks = 1 && Executor.kind_of exec = Executor.In_domain then begin
    (* One in-domain chunk needs no worker pool: stream in the calling
       domain.  Byte-identity with the pooled path is pinned by the
       worker-count-independence tests. *)
    let samples, spans, snapshots = exec_chunk ~trace ~properties in
    { meta; snapshots; samples; spans }
  end
  else begin
  let bounds = chunk_bounds ~chunks count in
  let chunk_props =
    List.map (fun (start, len) -> sub_list start len properties) bounds
  in
  let chunk_array = Array.of_list chunk_props in
  let tasks =
    {
      Executor.count = chunks;
      skip = (fun _ -> false);
      execute =
        (fun index ~attempt:_ ->
          exec_chunk ~trace ~properties:chunk_array.(index));
      request =
        (fun index ~attempt:_ ->
          request_json ~trace ~properties:chunk_array.(index));
      decode = (fun _index json -> payload_of_json json);
      on_result = (fun _ _ -> ());
    }
  in
  let results = Executor.run exec ~workers ~retries ?interrupted tasks in
  let samples = ref 0 and spans = ref 0 in
  let snapshots =
    List.concat
      (List.mapi
         (fun index _ ->
           match results.(index) with
           | None -> raise (Chunk_failed "interrupted before completion")
           | Some { Executor.outcome = Executor.Failed failure; _ } ->
             raise (Chunk_failed (Executor.failure_to_string failure))
           | Some { Executor.outcome = Executor.Done (s, sp, snaps); _ } ->
             (* Every chunk reads the whole trace; the totals are the
                per-chunk counts, not their sum. *)
             samples := s;
             spans := sp;
             snaps)
         chunk_props)
  in
  { meta; snapshots; samples = !samples; spans = !spans }
  end

let report_json result =
  J.verdict_report_json
    ~run:
      [ ("model", J.String result.meta.Tabv_trace.Meta.model);
        ("seed", J.Int result.meta.Tabv_trace.Meta.seed);
        ("ops", J.Int result.meta.Tabv_trace.Meta.ops) ]
    ~properties:result.snapshots ()

let total_failures result =
  Tabv_obs.Checker_snapshot.total_failures result.snapshots
