(** The subprocess executor's worker half.

    A worker is the same binary re-executed with a hidden [_worker]
    first argument; {!main} turns the process into a frame server:
    read one length-prefixed JSON request from stdin, execute it,
    write one [{"ok": payload}] or [{"error": message}] reply frame to
    stdout, repeat until EOF (the coordinator closing our stdin is the
    shutdown signal).

    Ordinary exceptions during execution become [{"error": ..}]
    replies whose message is exactly what the in-domain executor would
    have recorded ([Printexc.to_string]) — that is what keeps reports
    byte-identical across executors.  Hard failures (abort, allocation
    storm, busy loop, segfaults) never produce a reply: the
    coordinator observes the process's death instead.

    Requests:
    {ul
    {- [{"op":"campaign_job","attempt":n,"metrics":b,"job":{..}}] —
       one attempt of one {!Campaign} job
       ({!Campaign.request_json});}
    {- [{"op":"qualify_job","duv":..,"levels":[..],"seed":n,"ops":n,
       "index":i}] — one {!Qualify} pool job by index
       ({!Qualify.request_json});}
    {- any op added with {!register_op} (the serve daemon registers
       ["serve_request"]).}} *)

(** [register_op name decode] — extend the request vocabulary.
    [decode] receives the whole request object and returns the
    execution thunk (or a decode error, answered as [{"error":..}]).
    Layers above this library register their ops before {!main};
    re-registering a name replaces the previous decoder. *)
val register_op :
  string ->
  (Tabv_core.Report_json.json ->
   (unit -> Tabv_core.Report_json.json, string) result) ->
  unit

(** Serve requests from [ic] to [oc] until EOF on [ic].
    @raise Failure on a malformed frame (a broken coordinator). *)
val serve : in_channel -> out_channel -> unit

(** [serve stdin stdout] with both channels in binary mode — the
    entire behaviour of [<binary> _worker].  Every binary that can act
    as a campaign coordinator (the CLI, the test runner, the bench
    runner) dispatches to this before any other argument parsing. *)
val main : unit -> unit
