(** Wire codecs for process-isolated campaign execution.

    The subprocess executor ships jobs to forked workers and results
    back over pipes; the write-ahead journal persists completed
    results between runs.  Both speak the exact JSON the deterministic
    reports are built from, so a result that round-trips through a
    worker pipe or a journal line is field-for-field identical to one
    produced in-process.

    This module holds the generic halves: decoders for the shared
    observability records (whose emitters live in
    {!Tabv_core.Report_json} and {!Tabv_fault.Fault}) and the
    length-prefixed frame protocol.  Campaign- and qualify-specific
    payload codecs live next to their types in [Campaign] and
    [Qualify]. *)

(** {2 Result-monad helpers (shared by the payload codecs)} *)

val map_result : ('a -> ('b, string) result) -> 'a list -> ('b list, string) result

val open_assoc :
  string -> Tabv_core.Report_json.json -> ((string * Tabv_core.Report_json.json) list, string) result

val open_list :
  string -> Tabv_core.Report_json.json -> (Tabv_core.Report_json.json list, string) result

val field :
  string -> string -> (string * Tabv_core.Report_json.json) list ->
  (Tabv_core.Report_json.json, string) result

val int_field :
  string -> string -> (string * Tabv_core.Report_json.json) list -> (int, string) result

val string_field :
  string -> string -> (string * Tabv_core.Report_json.json) list -> (string, string) result

val bool_field :
  string -> string -> (string * Tabv_core.Report_json.json) list -> (bool, string) result

(** {2 Observability record decoders} *)

(** Inverse of {!Tabv_core.Report_json.checker_snapshot_json}.  The
    derived ["cache_hit_rate"] float is ignored (it is recomputed from
    the integer fields on re-emission, so nothing lossy crosses the
    wire). *)
val checker_snapshot_of_json :
  Tabv_core.Report_json.json -> (Tabv_obs.Checker_snapshot.t, string) result

(** Inverse of {!Tabv_core.Report_json.metrics_snapshot_json}. *)
val metrics_snapshot_of_json :
  Tabv_core.Report_json.json ->
  ((string * Tabv_obs.Metrics.value) list, string) result

(** Inverse of {!Tabv_fault.Fault.diagnosis_json}. *)
val diagnosis_of_json :
  Tabv_core.Report_json.json -> (Tabv_sim.Kernel.diagnosis, string) result

(** {2 Length-prefixed frames}

    8 lowercase hex digits (payload byte length) + ['\n'] + payload.
    Fixed-width, so both sides read an exact header before the body —
    no scanning, no ambiguity with payload bytes.

    These are re-exports of the plain-header subset of
    {!Tabv_core.Frame}, which owns the protocol (and adds the
    versioned headers the [tabv serve] socket protocol uses); kept
    here so the executor, worker and journal share one import. *)

val header_length : int

val encode_frame : string -> string

(** [None] on anything that is not 8 hex digits + newline. *)
val decode_header : string -> int option

(** Write one frame and flush. *)
val write_frame : out_channel -> string -> unit

(** Blocking read of one frame.  [None] on a clean EOF at a frame
    boundary.
    @raise Failure on a malformed header or truncated body. *)
val read_frame : in_channel -> string option

(** {2 Incremental frame accumulator}

    For the coordinator's non-blocking reads: feed raw chunks, pop
    complete frames. *)

type stream

val stream : unit -> stream

(** Bytes currently buffered (useful to detect a partial trailing
    frame after EOF). *)
val stream_length : stream -> int

val feed : stream -> string -> unit

exception Protocol_error of string

(** Pop the next complete frame, if any.
    @raise Protocol_error on a malformed buffered header. *)
val pop : stream -> string option
