(** Fault-qualification campaigns: the detection matrix.

    A qualification run asks, for one DUV, whether each property suite
    still {e detects} the catalog's conceptual design bugs
    ({!Tabv_duv.Duv_fault}) after RTL-to-TLM abstraction.  Per
    requested level it runs one clean baseline plus one faulted run
    per applicable catalog fault (all jobs on a {!Campaign}-style
    domain pool), attributes per-property verdicts with
    {!Tabv_checker.Detect}, and folds everything into one
    deterministic report:

    {ul
    {- the {b detection matrix} — fault x property ->
       detected / missed / latent, per level;}
    {- per-level {b fault coverage} — detected / (applicable - latent);}
    {- {b cross-level regressions} — faults detected by the RTL suite
       whose TLM-CA carrier exists but whose TLM-CA suite misses them
       (the paper's re-use claim, falsifiable);}
    {- {b resilience scenarios} — seeded crash / livelock / deadlock
       injections, each required to terminate with the matching
       structured {!Tabv_sim.Kernel.diagnosis}.}}

    Reports are byte-identical for any worker count, either
    {!Executor} kind, and across journal interrupt/resume cycles: jobs
    land in slots indexed by position, every job starts from a fresh
    checker universe, each result round-trips losslessly through the
    worker pipes and the write-ahead journal, and all watchdog caps
    are fixed. *)

(** The guard every qualification job runs under: delta-cap 10k (so a
    livelock diagnosis is worker-independent), crash containment on. *)
val job_guard : Tabv_sim.Kernel.guard

(** {1 Report model} *)

type fault_outcome =
  | No_carrier
      (** the fault's carrier was abstracted away at this level *)
  | Qualified of {
      plan : Tabv_fault.Fault.plan;
      triggered : int;
      diagnosis : Tabv_sim.Kernel.diagnosis;
      verdicts : Tabv_checker.Detect.property_verdict list;
      verdict : Tabv_checker.Detect.verdict;  (** suite verdict *)
    }

type fault_row = {
  fault : string;
  outcome : fault_outcome;
}

type level_report = {
  level : Campaign.level;
  baseline_failures : int;
  baseline_diagnosis : Tabv_sim.Kernel.diagnosis;
  rows : fault_row list;  (** catalog order *)
  detected : int;
  missed : int;
  latent : int;
  applicable : int;  (** rows with a carrier *)
  coverage : float;  (** detected / (applicable - latent); 1.0 if none *)
}

type scenario = {
  scenario : string;  (** "crash" | "livelock" | "deadlock" *)
  scenario_level : Campaign.level;
  expected : string;  (** diagnosis kind *)
  diagnosis : Tabv_sim.Kernel.diagnosis;
  matched : bool;
}

type report = {
  duv : Campaign.duv;
  seed : int;
  ops : int;
  levels : level_report list;  (** in requested order *)
  resilience : scenario list;
  regressions : string list;
      (** faults detected at RTL, carried but missed at TLM-CA *)
}

(** {1 Execution payloads} *)

(** The deterministic product of one pool job — what crosses a worker
    pipe and lands in the journal. *)
type qrun = {
  q_checker_stats : Tabv_obs.Checker_snapshot.t list;
  q_faults_triggered : int;
  q_diagnosis : Tabv_sim.Kernel.diagnosis;
}

val qrun_json : qrun -> Tabv_core.Report_json.json
val qrun_of_json : Tabv_core.Report_json.json -> (qrun, string) result

(** Execute pool job [index] of the deterministic job matrix derived
    from [(duv, levels)] in the calling domain/process (levels must
    already be deduplicated — pass what {!fingerprint} was computed
    over).  Resets the checker universe first.  This is the execution
    primitive shared by the in-domain executor and the [_worker] serve
    loop: a worker regenerates the identical matrix from the request
    parameters and picks one index.
    @raise Invalid_argument on an out-of-range index. *)
val exec_index :
  duv:Campaign.duv ->
  levels:Campaign.level list ->
  seed:int ->
  ops:int ->
  int ->
  qrun

(** {1 Journals} *)

(** The {!Journal.open_} [~kind] qualification journals use. *)
val journal_kind : string

(** Journal fingerprint of one qualification run's parameters (levels
    are deduplicated first, mirroring {!run}). *)
val fingerprint :
  duv:Campaign.duv ->
  levels:Campaign.level list ->
  seed:int ->
  ops:int ->
  string

(** {1 Running} *)

(** Raised by {!run} when [interrupted] fired before the pool drained:
    a partial detection matrix is meaningless, so there is no partial
    report — completed jobs stay journaled and a [--resume] re-run
    finishes the rest. *)
exception Interrupted

(** [run ?workers ?retries ?exec ?journal ?interrupted ~duv ~levels
    ~seed ~ops ()] — the full qualification campaign (default: 1
    worker, 1 retry, in-domain executor).  Levels are deduplicated,
    kept in first-appearance order; resilience scenarios run
    crash + livelock on the first level and deadlock on the first
    level with an initiator socket (skipped when none).

    [journal] must have been opened with {!journal_kind} and
    {!fingerprint}; replayed records substitute for their pool jobs
    and completed jobs are durably appended as they finish.  A job the
    executor could not complete (crashed / killed / timed out after
    all retries) contributes a synthetic [Process_crashed] result
    rather than aborting the campaign.
    @raise Invalid_argument on an empty or invalid level list.
    @raise Interrupted when [interrupted] fired mid-pool. *)
val run :
  ?workers:int ->
  ?retries:int ->
  ?exec:Executor.config ->
  ?journal:Journal.t ->
  ?interrupted:(unit -> bool) ->
  duv:Campaign.duv ->
  levels:Campaign.level list ->
  seed:int ->
  ops:int ->
  unit ->
  report

(** No cross-level regressions and every resilience scenario matched
    (the CLI's exit criterion). *)
val ok : report -> bool

(** Deterministic, schema-versioned report (no wall clock, no worker
    count). *)
val report_json : report -> Tabv_core.Report_json.json

(** Human-oriented matrix rendering. *)
val pp_report : Format.formatter -> report -> unit
