(** Fault-qualification campaigns: the detection matrix.

    A qualification run asks, for one DUV, whether each property suite
    still {e detects} the catalog's conceptual design bugs
    ({!Tabv_duv.Duv_fault}) after RTL-to-TLM abstraction.  Per
    requested level it runs one clean baseline plus one faulted run
    per applicable catalog fault (all jobs on a {!Campaign}-style
    domain pool), attributes per-property verdicts with
    {!Tabv_checker.Detect}, and folds everything into one
    deterministic report:

    {ul
    {- the {b detection matrix} — fault x property ->
       detected / missed / latent, per level;}
    {- per-level {b fault coverage} — detected / (applicable - latent);}
    {- {b cross-level regressions} — faults detected by the RTL suite
       whose TLM-CA carrier exists but whose TLM-CA suite misses them
       (the paper's re-use claim, falsifiable);}
    {- {b resilience scenarios} — seeded crash / livelock / deadlock
       injections, each required to terminate with the matching
       structured {!Tabv_sim.Kernel.diagnosis}.}}

    Reports are byte-identical for any worker count: jobs land in
    slots indexed by position, every job starts from a fresh
    per-domain checker universe, and all watchdog caps are fixed. *)

(** The guard every qualification job runs under: delta-cap 10k (so a
    livelock diagnosis is worker-independent), crash containment on. *)
val job_guard : Tabv_sim.Kernel.guard

(** {1 Report model} *)

type fault_outcome =
  | No_carrier
      (** the fault's carrier was abstracted away at this level *)
  | Qualified of {
      plan : Tabv_fault.Fault.plan;
      triggered : int;
      diagnosis : Tabv_sim.Kernel.diagnosis;
      verdicts : Tabv_checker.Detect.property_verdict list;
      verdict : Tabv_checker.Detect.verdict;  (** suite verdict *)
    }

type fault_row = {
  fault : string;
  outcome : fault_outcome;
}

type level_report = {
  level : Campaign.level;
  baseline_failures : int;
  baseline_diagnosis : Tabv_sim.Kernel.diagnosis;
  rows : fault_row list;  (** catalog order *)
  detected : int;
  missed : int;
  latent : int;
  applicable : int;  (** rows with a carrier *)
  coverage : float;  (** detected / (applicable - latent); 1.0 if none *)
}

type scenario = {
  scenario : string;  (** "crash" | "livelock" | "deadlock" *)
  scenario_level : Campaign.level;
  expected : string;  (** diagnosis kind *)
  diagnosis : Tabv_sim.Kernel.diagnosis;
  matched : bool;
}

type report = {
  duv : Campaign.duv;
  seed : int;
  ops : int;
  levels : level_report list;  (** in requested order *)
  resilience : scenario list;
  regressions : string list;
      (** faults detected at RTL, carried but missed at TLM-CA *)
}

(** {1 Running} *)

(** [run ?workers ~duv ~levels ~seed ~ops ()] — the full qualification
    campaign on a domain pool (default 1 worker).  Levels are
    deduplicated, kept in first-appearance order; resilience scenarios
    run crash + livelock on the first level and deadlock on the first
    level with an initiator socket (skipped when none).
    @raise Invalid_argument on an empty or invalid level list. *)
val run :
  ?workers:int ->
  duv:Campaign.duv ->
  levels:Campaign.level list ->
  seed:int ->
  ops:int ->
  unit ->
  report

(** No cross-level regressions and every resilience scenario matched
    (the CLI's exit criterion). *)
val ok : report -> bool

(** Deterministic, schema-versioned report (no wall clock, no worker
    count). *)
val report_json : report -> Tabv_core.Report_json.json

(** Human-oriented matrix rendering. *)
val pp_report : Format.formatter -> report -> unit
