(* Multicore verification-campaign runner.

   One campaign = the paper's evaluation matrix as data: every job
   names a DUV, an abstraction level, a workload (seed, size) and a
   property selection, and the jobs execute on a pluggable
   {!Executor} — the in-domain pool of spawned domains, or a pool of
   crash-isolated worker subprocesses.  See campaign.mli for the
   determinism contracts; the short version is that every job starts
   from a fresh checker universe, a job's result is a pure function of
   its spec, and everything reported in JSON is simulation-derived (no
   wall clock, no worker count, no executor kind). *)

open Tabv_psl
open Tabv_checker
open Tabv_duv
module J = Tabv_core.Report_json

(* --- job model ------------------------------------------------------ *)

type duv =
  | Des56
  | Colorconv
  | Memctrl

type level =
  | Rtl
  | Tlm_ca
  | Tlm_at
  | Tlm_lt

type selection =
  | All
  | Take of int
  | No_checkers

type chaos_kind =
  | Chaos_raise
  | Chaos_hard of Tabv_fault.Fault.hard_failure

type job = {
  duv : duv;
  level : level;
  seed : int;
  ops : int;
  selection : selection;
  chaos : int;
  chaos_kind : chaos_kind;
}

let job ?(selection = All) ?(chaos = 0) ?(chaos_kind = Chaos_raise) ~duv ~level
    ~seed ~ops () =
  { duv; level; seed; ops; selection; chaos; chaos_kind }

let duv_name = function
  | Des56 -> "des56"
  | Colorconv -> "colorconv"
  | Memctrl -> "memctrl"

let level_name = function
  | Rtl -> "rtl"
  | Tlm_ca -> "tlm-ca"
  | Tlm_at -> "tlm-at"
  | Tlm_lt -> "tlm-lt"

let selection_name = function
  | All -> "all"
  | Take n -> string_of_int n
  | No_checkers -> "none"

let chaos_kind_name = function
  | Chaos_raise -> "raise"
  | Chaos_hard f -> Tabv_fault.Fault.hard_failure_name f

let duv_of_name = function
  | "des56" -> Some Des56
  | "colorconv" -> Some Colorconv
  | "memctrl" -> Some Memctrl
  | _ -> None

let level_of_name = function
  | "rtl" -> Some Rtl
  | "tlm-ca" -> Some Tlm_ca
  | "tlm-at" -> Some Tlm_at
  | "tlm-lt" -> Some Tlm_lt
  | _ -> None

let selection_of_name = function
  | "all" -> Some All
  | "none" -> Some No_checkers
  | s ->
    (match int_of_string_opt s with
     | Some n when n >= 0 -> Some (Take n)
     | Some _ | None -> None)

let chaos_kind_of_name = function
  | "raise" -> Some Chaos_raise
  | s -> Option.map (fun f -> Chaos_hard f) (Tabv_fault.Fault.hard_failure_of_name s)

let job_name job =
  Printf.sprintf "%s/%s seed=%d ops=%d props=%s" (duv_name job.duv)
    (level_name job.level) job.seed job.ops (selection_name job.selection)

let validate job =
  match job.duv, job.level with
  | (Colorconv | Memctrl), Tlm_lt ->
    Error
      (Printf.sprintf "%s: loosely-timed level exists only for des56"
         (job_name job))
  | _ ->
    if job.ops <= 0 then Error (job_name job ^ ": ops must be positive")
    else if job.seed < 0 then Error (job_name job ^ ": seed must be >= 0")
    else if job.chaos < 0 then Error (job_name job ^ ": chaos must be >= 0")
    else Ok ()

let expand_matrix ?(selection = All) ~duvs ~levels ~seeds ~ops () =
  List.concat_map
    (fun duv ->
      List.concat_map
        (fun level ->
          match duv, level with
          | (Colorconv | Memctrl), Tlm_lt -> []
          | _ ->
            List.map
              (fun seed ->
                { duv; level; seed; ops; selection; chaos = 0;
                  chaos_kind = Chaos_raise })
              seeds)
        levels)
    duvs

(* --- manifests ------------------------------------------------------ *)

type manifest = {
  manifest_jobs : job list;
  manifest_retries : int option;
}

(* Small result-monad helpers for manifest decoding. *)
let ( let* ) r f = Result.bind r f

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
    let* y = f x in
    let* ys = map_result f xs in
    Ok (y :: ys)

let open_assoc what = function
  | J.Assoc fields -> Ok fields
  | _ -> Error (what ^ ": expected an object")

let open_list what = function
  | J.List items -> Ok items
  | _ -> Error (what ^ ": expected an array")

let open_int what = function
  | J.Int n -> Ok n
  | _ -> Error (what ^ ": expected an integer")

let open_string what = function
  | J.String s -> Ok s
  | _ -> Error (what ^ ": expected a string")

let check_keys what allowed fields =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) fields with
  | Some (k, _) -> Error (Printf.sprintf "%s: unknown key %S" what k)
  | None -> Ok ()

let selection_of_json what = function
  | J.String s ->
    (match selection_of_name s with
     | Some sel -> Ok sel
     | None ->
       Error (Printf.sprintf "%s: props must be \"all\", \"none\" or n" what))
  | J.Int n when n >= 0 -> Ok (Take n)
  | _ -> Error (Printf.sprintf "%s: props must be \"all\", \"none\" or n" what)

let job_of_json_what what json =
  let* fields = open_assoc what json in
  let* () =
    check_keys what
      [ "duv"; "level"; "seed"; "ops"; "props"; "chaos"; "chaos_kind" ]
      fields
  in
  let field key = List.assoc_opt key fields in
  let* duv =
    match field "duv" with
    | None -> Error (what ^ ": missing \"duv\"")
    | Some v ->
      let* name = open_string (what ^ ".duv") v in
      (match duv_of_name name with
       | Some duv -> Ok duv
       | None -> Error (Printf.sprintf "%s: unknown duv %S" what name))
  in
  let* level =
    match field "level" with
    | None -> Error (what ^ ": missing \"level\"")
    | Some v ->
      let* name = open_string (what ^ ".level") v in
      (match level_of_name name with
       | Some level -> Ok level
       | None -> Error (Printf.sprintf "%s: unknown level %S" what name))
  in
  let* seed =
    match field "seed" with
    | None -> Ok 0
    | Some v -> open_int (what ^ ".seed") v
  in
  let* ops =
    match field "ops" with
    | None -> Error (what ^ ": missing \"ops\"")
    | Some v -> open_int (what ^ ".ops") v
  in
  let* selection =
    match field "props" with
    | None -> Ok All
    | Some v -> selection_of_json what v
  in
  let* chaos =
    match field "chaos" with
    | None -> Ok 0
    | Some v -> open_int (what ^ ".chaos") v
  in
  let* chaos_kind =
    match field "chaos_kind" with
    | None -> Ok Chaos_raise
    | Some v ->
      let* name = open_string (what ^ ".chaos_kind") v in
      (match chaos_kind_of_name name with
       | Some k -> Ok k
       | None ->
         Error
           (Printf.sprintf
              "%s: chaos_kind must be \"raise\", \"abort\", \"alloc_storm\" or \
               \"busy_loop\" (got %S)"
              what name))
  in
  let job = { duv; level; seed; ops; selection; chaos; chaos_kind } in
  let* () = validate job in
  Ok job

let job_of_json index json =
  job_of_json_what (Printf.sprintf "jobs[%d]" index) json

let job_spec_of_json json = job_of_json_what "job" json

(* Canonical job spec: the manifest-format object a worker request and
   the journal fingerprint are built from. *)
let job_spec_json job =
  J.Assoc
    ([ ("duv", J.String (duv_name job.duv));
       ("level", J.String (level_name job.level));
       ("seed", J.Int job.seed);
       ("ops", J.Int job.ops);
       ("props", J.String (selection_name job.selection));
       ("chaos", J.Int job.chaos) ]
    @
    match job.chaos_kind with
    | Chaos_raise -> []
    | Chaos_hard _ ->
      [ ("chaos_kind", J.String (chaos_kind_name job.chaos_kind)) ])

let matrix_of_json json =
  let what = "matrix" in
  let* fields = open_assoc what json in
  let* () = check_keys what [ "duvs"; "levels"; "seeds"; "ops"; "props" ] fields in
  let field key = List.assoc_opt key fields in
  let names what_key of_name = function
    | J.List items ->
      map_result
        (fun item ->
          let* name = open_string what_key item in
          match of_name name with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "%s: unknown value %S" what_key name))
        items
    | _ -> Error (what_key ^ ": expected an array of strings")
  in
  let* duvs =
    match field "duvs" with
    | None -> Error "matrix: missing \"duvs\""
    | Some v -> names "matrix.duvs" duv_of_name v
  in
  let* levels =
    match field "levels" with
    | None -> Error "matrix: missing \"levels\""
    | Some v -> names "matrix.levels" level_of_name v
  in
  let* seeds =
    match field "seeds" with
    | None -> Ok [ 0 ]
    | Some v ->
      let* items = open_list "matrix.seeds" v in
      map_result (open_int "matrix.seeds") items
  in
  let* ops =
    match field "ops" with
    | None -> Error "matrix: missing \"ops\""
    | Some v -> open_int "matrix.ops" v
  in
  let* selection =
    match field "props" with
    | None -> Ok All
    | Some v -> selection_of_json what v
  in
  let jobs = expand_matrix ~selection ~duvs ~levels ~seeds ~ops () in
  let* () =
    match List.find_map (fun j -> Result.fold ~ok:(fun () -> None) ~error:Option.some (validate j)) jobs with
    | Some e -> Error e
    | None -> Ok ()
  in
  Ok jobs

let manifest_of_json json =
  let* fields = open_assoc "manifest" json in
  let* () = check_keys "manifest" [ "retries"; "jobs"; "matrix" ] fields in
  let field key = List.assoc_opt key fields in
  let* manifest_retries =
    match field "retries" with
    | None -> Ok None
    | Some v ->
      let* n = open_int "retries" v in
      if n < 0 then Error "retries: must be >= 0" else Ok (Some n)
  in
  let* explicit =
    match field "jobs" with
    | None -> Ok []
    | Some v ->
      let* items = open_list "jobs" v in
      map_result (fun (i, j) -> job_of_json i j) (List.mapi (fun i j -> (i, j)) items)
  in
  let* expanded =
    match field "matrix" with
    | None -> Ok []
    | Some v -> matrix_of_json v
  in
  match explicit @ expanded with
  | [] -> Error "manifest: no jobs (provide \"jobs\" and/or \"matrix\")"
  | manifest_jobs -> Ok { manifest_jobs; manifest_retries }

let manifest_of_string text =
  match J.of_string text with
  | json -> manifest_of_json json
  | exception J.Parse_error { line; col; message } ->
    Error (Printf.sprintf "%d:%d: %s" line col message)

(* --- single-job execution ------------------------------------------- *)

exception Chaos

let () =
  Printexc.register_printer (function
    | Chaos -> Some "chaos: injected crash"
    | _ -> None)

(* DES56/LT checks boolean invariants only — the loosely-timed model
   is deliberately not timing equivalent (Theorem III.2's
   precondition), so timed abstracted properties would fail by
   design.  Same built-in invariant as [tabv check -m des56-tlm-lt]. *)
let lt_invariant () =
  [ Property.make ~name:"lt_inv"
      ~context:(Context.Transaction Context.Base_trans)
      (Parser.formula_only "always(!rdy || ds)") ]

let builtin_properties duv level =
  match duv, level with
  | Des56, (Rtl | Tlm_ca) -> Des56_props.all
  | Des56, Tlm_at -> Des56_props.tlm_reviewed ()
  | Des56, Tlm_lt -> lt_invariant ()
  | Colorconv, (Rtl | Tlm_ca) -> Colorconv_props.all
  | Colorconv, Tlm_at -> Colorconv_props.tlm_reviewed ()
  | Memctrl, (Rtl | Tlm_ca) -> Memctrl_props.all
  | Memctrl, Tlm_at -> Memctrl_props.tlm_auto_safe ()
  | (Colorconv | Memctrl), Tlm_lt ->
    (* Rejected by [validate] before any job runs. *)
    invalid_arg "Campaign: tlm-lt is only defined for des56"

let select selection properties =
  match selection with
  | All -> properties
  | No_checkers -> []
  | Take n -> List.filteri (fun i _ -> i < n) properties

(* One (DUV, level) run through the matching testbench entry point.
   The qualification runner calls this directly with a fault plan and
   a watchdog guard; plain campaign jobs go through [run_testbench]
   with neither. *)
let run_level ?(selection = All) ?metrics ?fault_plan ?guard duv level ~seed ~ops
    =
  let properties = select selection (builtin_properties duv level) in
  match duv with
  | Des56 ->
    let workload = Workload.des56 ~seed ~count:ops () in
    (match level with
     | Rtl -> Testbench.run_des56_rtl ?metrics ?fault_plan ?guard ~properties workload
     | Tlm_ca ->
       Testbench.run_des56_tlm_ca ?metrics ?fault_plan ?guard ~properties workload
     | Tlm_at ->
       Testbench.run_des56_tlm_at ?metrics ?fault_plan ?guard ~properties workload
     | Tlm_lt ->
       Testbench.run_des56_tlm_lt ?metrics ?fault_plan ?guard ~properties workload)
  | Colorconv ->
    let bursts = Workload.colorconv ~seed ~count:ops () in
    (match level with
     | Rtl -> Testbench.run_colorconv_rtl ?metrics ?fault_plan ?guard ~properties bursts
     | Tlm_ca ->
       Testbench.run_colorconv_tlm_ca ?metrics ?fault_plan ?guard ~properties bursts
     | Tlm_at ->
       Testbench.run_colorconv_tlm_at ?metrics ?fault_plan ?guard ~properties bursts
     | Tlm_lt -> invalid_arg "Campaign: tlm-lt is only defined for des56")
  | Memctrl ->
    let workload = Workload.memctrl ~seed ~count:ops () in
    (match level with
     | Rtl -> Memctrl_testbench.run_rtl ?metrics ?fault_plan ?guard ~properties workload
     | Tlm_ca ->
       Memctrl_testbench.run_tlm_ca ?metrics ?fault_plan ?guard ~properties workload
     | Tlm_at ->
       Memctrl_testbench.run_tlm_at ?metrics ?fault_plan ?guard ~properties workload
     | Tlm_lt -> invalid_arg "Campaign: tlm-lt is only defined for des56")

let run_testbench job ~metrics =
  run_level ~selection:job.selection ?metrics job.duv job.level ~seed:job.seed
    ~ops:job.ops

(* --- execution payloads --------------------------------------------- *)

(* Everything a completed job contributes to the report, and nothing
   else: the payload is the unit that crosses a worker pipe and lands
   in the journal, so a result is field-for-field identical whether it
   was produced in-process, in a subprocess, or replayed from disk. *)
type exec_payload = {
  p_sim_time_ns : int;
  p_kernel_activations : int;
  p_delta_cycles : int;
  p_transactions : int;
  p_completed_ops : int;
  p_checker_stats : Tabv_obs.Checker_snapshot.t list;
  p_metrics : Tabv_obs.Metrics.snapshot;
  p_diagnosis : Tabv_sim.Kernel.diagnosis;
}

let payload_of_run (r : Testbench.run_result) =
  {
    p_sim_time_ns = r.Testbench.sim_time_ns;
    p_kernel_activations = r.Testbench.kernel_activations;
    p_delta_cycles = r.Testbench.delta_cycles;
    p_transactions = r.Testbench.transactions;
    p_completed_ops = r.Testbench.completed_ops;
    p_checker_stats = r.Testbench.checker_stats;
    p_metrics = r.Testbench.metrics;
    p_diagnosis = r.Testbench.diagnosis;
  }

let payload_json p =
  J.Assoc
    [ ("sim_time_ns", J.Int p.p_sim_time_ns);
      ("kernel_activations", J.Int p.p_kernel_activations);
      ("delta_cycles", J.Int p.p_delta_cycles);
      ("transactions", J.Int p.p_transactions);
      ("completed_ops", J.Int p.p_completed_ops);
      ("diagnosis", Tabv_fault.Fault.diagnosis_json p.p_diagnosis);
      ("properties", J.List (List.map J.checker_snapshot_json p.p_checker_stats));
      ("metrics", J.metrics_snapshot_json p.p_metrics) ]

let payload_of_json json =
  let what = "job payload" in
  let* fields = Wire.open_assoc what json in
  let* p_sim_time_ns = Wire.int_field what "sim_time_ns" fields in
  let* p_kernel_activations = Wire.int_field what "kernel_activations" fields in
  let* p_delta_cycles = Wire.int_field what "delta_cycles" fields in
  let* p_transactions = Wire.int_field what "transactions" fields in
  let* p_completed_ops = Wire.int_field what "completed_ops" fields in
  let* p_diagnosis =
    let* v = Wire.field what "diagnosis" fields in
    Wire.diagnosis_of_json v
  in
  let* p_checker_stats =
    let* v = Wire.field what "properties" fields in
    let* items = Wire.open_list (what ^ ".properties") v in
    Wire.map_result Wire.checker_snapshot_of_json items
  in
  let* p_metrics =
    let* v = Wire.field what "metrics" fields in
    Wire.metrics_snapshot_of_json v
  in
  Ok
    {
      p_sim_time_ns;
      p_kernel_activations;
      p_delta_cycles;
      p_transactions;
      p_completed_ops;
      p_checker_stats;
      p_metrics;
      p_diagnosis;
    }

let exec_job ~attempt ~metrics_enabled job =
  (* Fresh interning + obligation universes per attempt: job
     statistics become placement-independent (the determinism
     contract) and a crashed attempt's half-built tables are
     discarded rather than inherited by the retry. *)
  Progression.reset_universe ();
  if attempt <= job.chaos then begin
    match job.chaos_kind with
    | Chaos_raise -> raise Chaos
    | Chaos_hard failure -> Tabv_fault.Fault.execute_hard_failure failure
  end;
  let metrics =
    if metrics_enabled then Some (Tabv_obs.Metrics.create ~enabled:true ())
    else None
  in
  payload_of_run (run_testbench job ~metrics)

(* --- worker protocol ------------------------------------------------- *)

(* The coordinator's engine selection rides along in every request so
   worker subprocesses (fresh processes, classic default) simulate on
   the same engine — reports are engine-identical either way, but the
   run should pay for the engine the user asked for. *)
let request_json ~attempt ~metrics job =
  J.Assoc
    [ ("op", J.String "campaign_job");
      ("attempt", J.Int attempt);
      ("metrics", J.Bool metrics);
      ( "sim_engine",
        J.String
          (Tabv_sim.Kernel.engine_name (Tabv_sim.Kernel.get_default_engine ())) );
      ("job", job_spec_json job) ]

(* --- results --------------------------------------------------------- *)

type outcome =
  | Completed
  | Crashed of { error : string }
  | Killed of { signal : int }
  | Timed_out

type job_result = {
  job_id : int;
  job : job;
  outcome : outcome;
  attempts : int;
  sim_time_ns : int;
  kernel_activations : int;
  delta_cycles : int;
  transactions : int;
  completed_ops : int;
  failures : int;
  checker_stats : Tabv_obs.Checker_snapshot.t list;
  metrics : Tabv_obs.Metrics.snapshot;
  diagnosis : Tabv_sim.Kernel.diagnosis;
  wall_seconds : float;
}

let result_of_payload ~job_id ~job ~attempts ~wall_seconds p =
  {
    job_id;
    job;
    outcome = Completed;
    attempts;
    sim_time_ns = p.p_sim_time_ns;
    kernel_activations = p.p_kernel_activations;
    delta_cycles = p.p_delta_cycles;
    transactions = p.p_transactions;
    completed_ops = p.p_completed_ops;
    failures = Tabv_obs.Checker_snapshot.total_failures p.p_checker_stats;
    checker_stats = p.p_checker_stats;
    metrics = p.p_metrics;
    diagnosis = p.p_diagnosis;
    wall_seconds;
  }

let result_of_failure ~job_id ~job ~attempts failure =
  let outcome, name, error =
    match (failure : Executor.failure) with
    | Executor.Crashed { error } -> (Crashed { error }, "campaign-job", error)
    | Executor.Killed { signal } ->
      ( Killed { signal },
        "campaign-worker",
        Printf.sprintf "killed by signal %d" signal )
    | Executor.Timed_out ->
      (Timed_out, "campaign-worker", "wall-clock watchdog expired")
  in
  {
    job_id;
    job;
    outcome;
    attempts;
    sim_time_ns = 0;
    kernel_activations = 0;
    delta_cycles = 0;
    transactions = 0;
    completed_ops = 0;
    failures = 0;
    checker_stats = [];
    metrics = [];
    diagnosis = Tabv_sim.Kernel.Process_crashed { name; error };
    wall_seconds = 0.;
  }

(* --- journal records ------------------------------------------------- *)

let journal_kind = "campaign"

let fingerprint ~retries jobs =
  Journal.fingerprint_of_string
    (J.to_string
       (J.Assoc
          [ ("kind", J.String journal_kind);
            ("retries", J.Int retries);
            ("jobs", J.List (List.map job_spec_json jobs)) ]))

let record_json ~attempts payload =
  J.Assoc [ ("attempts", J.Int attempts); ("payload", payload_json payload) ]

let record_of_json json =
  let what = "campaign journal record" in
  let* fields = Wire.open_assoc what json in
  let* attempts = Wire.int_field what "attempts" fields in
  let* payload =
    let* v = Wire.field what "payload" fields in
    payload_of_json v
  in
  Ok (attempts, payload)

(* --- the pool ------------------------------------------------------- *)

type summary = {
  results : job_result list;
  workers : int;
  retries : int;
  completed : int;
  crashed : int;
  killed : int;
  timed_out : int;
  replayed : int;
  pending : int;
  total_failures : int;
  total_sim_time_ns : int;
  total_activations : int;
  total_delta_cycles : int;
  total_transactions : int;
  total_completed_ops : int;
  checker_activations : int;
  checker_passes : int;
  checker_cache_hits : int;
  checker_cache_misses : int;
  failures_by_property : (string * int) list;
  merged_metrics : Tabv_obs.Metrics.snapshot;
  wall_seconds : float;
}

let summarize ~workers ~retries ~replayed ~pending ~wall_seconds results =
  let count p = List.length (List.filter p results) in
  let crashed = count (fun r -> match r.outcome with Crashed _ -> true | _ -> false) in
  let killed = count (fun r -> match r.outcome with Killed _ -> true | _ -> false) in
  let timed_out = count (fun r -> r.outcome = Timed_out) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 results in
  let stat_sum f =
    List.fold_left
      (fun acc r ->
        List.fold_left (fun acc s -> acc + f s) acc r.checker_stats)
      0 results
  in
  let failures_by_property =
    let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun r ->
        List.iter
          (fun (s : Tabv_obs.Checker_snapshot.t) ->
            let n = List.length s.failures in
            if n > 0 then
              Hashtbl.replace tbl s.property_name
                (n + Option.value ~default:0 (Hashtbl.find_opt tbl s.property_name)))
          r.checker_stats)
      results;
    Hashtbl.fold (fun name n acc -> (name, n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    results;
    workers;
    retries;
    completed = List.length results - crashed - killed - timed_out;
    crashed;
    killed;
    timed_out;
    replayed;
    pending;
    total_failures = sum (fun r -> r.failures);
    total_sim_time_ns = sum (fun r -> r.sim_time_ns);
    total_activations = sum (fun r -> r.kernel_activations);
    total_delta_cycles = sum (fun r -> r.delta_cycles);
    total_transactions = sum (fun r -> r.transactions);
    total_completed_ops = sum (fun r -> r.completed_ops);
    checker_activations =
      stat_sum (fun (s : Tabv_obs.Checker_snapshot.t) -> s.activations);
    checker_passes = stat_sum (fun (s : Tabv_obs.Checker_snapshot.t) -> s.passes);
    checker_cache_hits =
      stat_sum (fun (s : Tabv_obs.Checker_snapshot.t) -> s.cache_hits);
    checker_cache_misses =
      stat_sum (fun (s : Tabv_obs.Checker_snapshot.t) -> s.cache_misses);
    failures_by_property;
    merged_metrics =
      Tabv_obs.Metrics.merge_all (List.map (fun r -> r.metrics) results);
    wall_seconds;
  }

let run ?(workers = 1) ?(retries = 1) ?(clock = fun () -> 0.) ?(metrics = true)
    ?exec ?journal ?interrupted jobs =
  (match
     List.find_map
       (fun j -> Result.fold ~ok:(fun () -> None) ~error:Option.some (validate j))
       jobs
   with
   | Some reason -> invalid_arg ("Campaign.run: " ^ reason)
   | None -> ());
  if retries < 0 then invalid_arg "Campaign.run: retries must be >= 0";
  let workers = max 1 workers in
  let exec =
    match exec with
    | Some config -> config
    | None -> Executor.config Executor.In_domain
  in
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  (* Journal replay: completed results read back by [Journal.open_
     ~resume:true] are decoded here and their slots skipped.  A record
     the current code cannot decode is corruption, not a crash
     artifact — fail loudly rather than silently re-running. *)
  let replayed_tbl : (int, int * exec_payload) Hashtbl.t = Hashtbl.create 16 in
  (match journal with
   | None -> ()
   | Some jr ->
     List.iter
       (fun (id, record) ->
         if id < n then
           match record_of_json record with
           | Ok (attempts, payload) ->
             Hashtbl.replace replayed_tbl id (attempts, payload)
           | Error e ->
             invalid_arg (Printf.sprintf "Campaign.run: journal record %d: %s" id e))
       (Journal.replayed jr));
  let tasks =
    {
      Executor.count = n;
      skip = (fun i -> Hashtbl.mem replayed_tbl i);
      execute =
        (fun i ~attempt ->
          let t0 = clock () in
          let p = exec_job ~attempt ~metrics_enabled:metrics jobs.(i) in
          (p, clock () -. t0));
      request = (fun i ~attempt -> request_json ~attempt ~metrics jobs.(i));
      decode =
        (fun _ json -> Result.map (fun p -> (p, 0.)) (payload_of_json json));
      on_result =
        (fun i r ->
          match journal, r.Executor.outcome with
          | Some jr, Executor.Done (payload, _) ->
            Journal.append jr ~id:i (record_json ~attempts:r.Executor.attempts payload)
          | _ -> ());
    }
  in
  let t0 = clock () in
  let slots = Executor.run exec ~workers ~retries ?interrupted tasks in
  let wall_seconds = clock () -. t0 in
  let pending = ref 0 in
  let results =
    List.filter_map
      (fun i ->
        match Hashtbl.find_opt replayed_tbl i with
        | Some (attempts, payload) ->
          Some
            (result_of_payload ~job_id:i ~job:jobs.(i) ~attempts ~wall_seconds:0.
               payload)
        | None ->
          (match slots.(i) with
           | Some { Executor.attempts; outcome = Executor.Done (payload, wall) } ->
             Some
               (result_of_payload ~job_id:i ~job:jobs.(i) ~attempts
                  ~wall_seconds:wall payload)
           | Some { Executor.attempts; outcome = Executor.Failed failure } ->
             Some (result_of_failure ~job_id:i ~job:jobs.(i) ~attempts failure)
           | None ->
             (* Interrupted before this job ran: no row at all — the
                job re-runs on [--resume]. *)
             incr pending;
             None))
      (List.init n Fun.id)
  in
  summarize ~workers ~retries ~replayed:(Hashtbl.length replayed_tbl)
    ~pending:!pending ~wall_seconds results

let all_green summary =
  summary.total_failures = 0
  && summary.crashed = 0
  && summary.killed = 0
  && summary.timed_out = 0
  && summary.pending = 0

(* --- deterministic report ------------------------------------------- *)

let campaign_schema_version = 1

let outcome_name = function
  | Completed -> "completed"
  | Crashed _ -> "crashed"
  | Killed _ -> "killed"
  | Timed_out -> "timed_out"

let job_json r =
  let open J in
  let base =
    [ ("id", Int r.job_id);
      ("duv", String (duv_name r.job.duv));
      ("level", String (level_name r.job.level));
      ("seed", Int r.job.seed);
      ("ops", Int r.job.ops);
      ("props", String (selection_name r.job.selection));
      ("outcome", String (outcome_name r.outcome));
      ("attempts", Int r.attempts) ]
  in
  let error =
    match r.outcome with
    | Completed -> []
    | Crashed { error } -> [ ("error", String error) ]
    | Killed { signal } ->
      [ ("error", String (Printf.sprintf "killed by signal %d" signal));
        ("signal", Int signal) ]
    | Timed_out -> [ ("error", String "wall-clock watchdog expired") ]
  in
  let body =
    match r.outcome with
    | Crashed _ | Killed _ | Timed_out -> []
    | Completed ->
      [ ("sim_time_ns", Int r.sim_time_ns);
        ("kernel_activations", Int r.kernel_activations);
        ("delta_cycles", Int r.delta_cycles);
        ("transactions", Int r.transactions);
        ("completed_ops", Int r.completed_ops);
        ("failures", Int r.failures);
        ("diagnosis", Tabv_fault.Fault.diagnosis_json r.diagnosis);
        ("properties", List (List.map checker_snapshot_json r.checker_stats));
        ("metrics", metrics_snapshot_json r.metrics) ]
  in
  Assoc (base @ error @ body)

let report_json summary =
  let open J in
  let cache_total = summary.checker_cache_hits + summary.checker_cache_misses in
  let cache_hit_rate =
    if cache_total = 0 then 0.
    else float_of_int summary.checker_cache_hits /. float_of_int cache_total
  in
  Assoc
    [ ("schema", Int campaign_schema_version);
      ( "campaign",
        Assoc
          [ ("jobs", Int (List.length summary.results));
            ("retries", Int summary.retries) ] );
      ("jobs", List (List.map job_json summary.results));
      ( "aggregate",
        Assoc
          [ ("completed", Int summary.completed);
            ("crashed", Int summary.crashed);
            ("killed", Int summary.killed);
            ("timed_out", Int summary.timed_out);
            ("failures", Int summary.total_failures);
            ("sim_time_ns", Int summary.total_sim_time_ns);
            ("kernel_activations", Int summary.total_activations);
            ("delta_cycles", Int summary.total_delta_cycles);
            ("transactions", Int summary.total_transactions);
            ("completed_ops", Int summary.total_completed_ops);
            ( "checker",
              Assoc
                [ ("activations", Int summary.checker_activations);
                  ("passes", Int summary.checker_passes);
                  ("cache_hits", Int summary.checker_cache_hits);
                  ("cache_misses", Int summary.checker_cache_misses);
                  ("cache_hit_rate", Float cache_hit_rate) ] );
            ( "failures_by_property",
              Assoc
                (List.map (fun (name, n) -> (name, Int n)) summary.failures_by_property)
            );
            ("metrics", metrics_snapshot_json summary.merged_metrics) ] ) ]

(* --- printing ------------------------------------------------------- *)

let pp_summary ppf summary =
  Format.fprintf ppf "%-34s %9s %8s %12s %12s %9s@." "job" "outcome" "attempts"
    "sim time" "activations" "failures";
  List.iter
    (fun r ->
      let outcome =
        match r.outcome with
        | Completed -> "ok"
        | Crashed _ -> "CRASHED"
        | Killed _ -> "KILLED"
        | Timed_out -> "TIMEOUT"
      in
      Format.fprintf ppf "%-34s %9s %8d %10dns %12d %9d@." (job_name r.job)
        outcome r.attempts r.sim_time_ns r.kernel_activations r.failures;
      match r.outcome with
      | Crashed { error } -> Format.fprintf ppf "    error: %s@." error
      | Killed { signal } ->
        Format.fprintf ppf "    error: killed by signal %d@." signal
      | Timed_out -> Format.fprintf ppf "    error: wall-clock watchdog expired@."
      | Completed -> ())
    summary.results;
  Format.fprintf ppf
    "%d jobs on %d worker(s): %d completed, %d crashed, %d killed, %d timed \
     out, %d property failure(s)@."
    (List.length summary.results) summary.workers summary.completed
    summary.crashed summary.killed summary.timed_out summary.total_failures;
  if summary.replayed > 0 then
    Format.fprintf ppf "replayed from journal: %d job(s)@." summary.replayed;
  if summary.pending > 0 then
    Format.fprintf ppf "interrupted: %d job(s) not run@." summary.pending;
  Format.fprintf ppf
    "aggregate: %dns simulated, %d activations, %d transactions, %d ops, \
     checker cache %d/%d@."
    summary.total_sim_time_ns summary.total_activations
    summary.total_transactions summary.total_completed_ops
    summary.checker_cache_hits
    (summary.checker_cache_hits + summary.checker_cache_misses);
  if summary.failures_by_property <> [] then begin
    Format.fprintf ppf "failures by property:@.";
    List.iter
      (fun (name, n) -> Format.fprintf ppf "  %-24s %d@." name n)
      summary.failures_by_property
  end;
  if summary.wall_seconds > 0. then
    Format.fprintf ppf "wall time: %.3fs@." summary.wall_seconds
