(* Benchmark harness reproducing the paper's evaluation:
     - Fig. 3  : abstraction of the published DES56 properties
     - Table I : simulation overhead of checkers at RTL / TLM-CA /
                 TLM-AT with 1 / 5 / all checkers, two testcases
     - Fig. 6  : RTL/TLM average speedup with and without checkers
     - Ablations: naive next[n] reuse, wrapper instance-pool sizing
     - Bechamel micro-benchmarks (one group per table/figure)

   Absolute times differ from the paper (our substrate is a simulator
   written from scratch, not the authors' testbed); the shapes — who
   wins, how overhead scales with checker count, where the speedup
   moves when checkers are added — are the reproduction target.  See
   EXPERIMENTS.md. *)

open Tabv_psl
open Tabv_duv

let time_run f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

(* Minimum of several runs after one warmup: the workloads are
   deterministic and CPU-bound, so the fastest run is the one with the
   least outside interference.  A major collection before each run
   keeps one section's garbage out of the next measurement. *)
let timed ?(repeat = 5) f =
  let once () =
    Gc.major ();
    time_run f
  in
  ignore (once ());
  List.fold_left min infinity (List.init repeat (fun _ -> once ()))

(* --- Fig. 3 ------------------------------------------------------ *)

let fig3 () =
  print_endline
    "=== Fig. 3: RTL -> TLM abstraction of the published DES56 properties ===";
  let reports = Des56_props.abstraction_reports () in
  List.iteri
    (fun i report ->
      if i < 3 then Format.printf "%a@.@." Tabv_core.Methodology.pp_report report)
    reports;
  print_endline "Full DES56 set summary:";
  Format.printf "%a@.@." Tabv_core.Methodology.pp_summary reports;
  print_endline "Full ColorConv set summary:";
  Format.printf "%a@.@." Tabv_core.Methodology.pp_summary
    (Colorconv_props.abstraction_reports ())

(* --- Table I ----------------------------------------------------- *)

type level = {
  level_name : string;
  run : Property.t list -> Testbench.run_result;
  checker_sets : (string * Property.t list) list;
}

let print_table_header name =
  Printf.printf "=== Table I / %s ===\n" name;
  Printf.printf "%-14s %12s %12s %10s\n" "Abstr. level" "w/out c.(s)" "with c.(s)"
    "Overhead%"

(* Measured rows: (level, set, base seconds, with-checkers seconds).
   Fig. 6 is derived from these same measurements so the two sections
   are internally consistent.  All configurations are sampled in
   interleaved rounds (min over rounds): a sustained burst of outside
   load then inflates every cell instead of poisoning one column. *)
let table_for ?(rounds = 4) levels =
  (* One measurement closure per cell, base cells included. *)
  let cells =
    List.concat_map
      (fun level ->
        (`Base level.level_name, fun () -> ignore (level.run []))
        :: List.map
             (fun (set_name, props) ->
               ( `With (level.level_name, set_name),
                 fun () -> ignore (level.run props) ))
             level.checker_sets)
      levels
  in
  let best : (_, float) Hashtbl.t = Hashtbl.create 16 in
  (* Warmup round, then timed rounds. *)
  List.iter (fun (_, f) -> f ()) cells;
  for _ = 1 to rounds do
    List.iter
      (fun (key, f) ->
        Gc.major ();
        let t = time_run f in
        match Hashtbl.find_opt best key with
        | Some previous when previous <= t -> ()
        | Some _ | None -> Hashtbl.replace best key t)
      cells
  done;
  let rows =
    List.concat_map
      (fun level ->
        let base = Hashtbl.find best (`Base level.level_name) in
        List.map
          (fun (set_name, _) ->
            let with_c = Hashtbl.find best (`With (level.level_name, set_name)) in
            let overhead = (with_c -. base) /. base *. 100. in
            Printf.printf "%-14s %12.3f %12.3f %10.1f\n"
              (level.level_name ^ " " ^ set_name)
              base with_c overhead;
            (level.level_name, set_name, base, with_c))
          level.checker_sets)
      levels
  in
  print_newline ();
  rows

let take n xs = List.filteri (fun i _ -> i < n) xs

let des56_levels ops =
  let rtl_sets =
    [ ("1 C", Des56_props.take 1); ("5 C", Des56_props.take 5);
      ("All C", Des56_props.all) ]
  in
  let tlm = Des56_props.tlm_reviewed () in
  let tlm_sets = [ ("1 C", take 1 tlm); ("5 C", take 5 tlm); ("All C", tlm) ] in
  [ { level_name = "RTL";
      run = (fun properties -> Testbench.run_des56_rtl ~properties ops);
      checker_sets = rtl_sets };
    { level_name = "TLM-CA";
      run = (fun properties -> Testbench.run_des56_tlm_ca ~properties ops);
      checker_sets = rtl_sets };
    { level_name = "TLM-AT";
      run = (fun properties -> Testbench.run_des56_tlm_at ~properties ops);
      checker_sets = tlm_sets } ]

let colorconv_levels bursts =
  let rtl_sets =
    [ ("1 C", Colorconv_props.take 1); ("5 C", Colorconv_props.take 5);
      ("All C", Colorconv_props.all) ]
  in
  let tlm = Colorconv_props.tlm_reviewed () in
  let tlm_sets =
    [ ("1 C", take 1 tlm); ("5 C", take (min 5 (List.length tlm)) tlm); ("All C", tlm) ]
  in
  [ { level_name = "RTL";
      run = (fun properties -> Testbench.run_colorconv_rtl ~gap_cycles:6 ~properties bursts);
      checker_sets = rtl_sets };
    { level_name = "TLM-CA";
      run = (fun properties -> Testbench.run_colorconv_tlm_ca ~gap_cycles:6 ~properties bursts);
      checker_sets = rtl_sets };
    { level_name = "TLM-AT";
      run = (fun properties -> Testbench.run_colorconv_tlm_at ~gap_cycles:6 ~properties bursts);
      checker_sets = tlm_sets } ]

(* --- Fig. 6 ------------------------------------------------------ *)

(* Derived from the Table I measurements: speedup = T(RTL) / T(TLM-x),
   without checkers and with each level's full checker set. *)
let fig6_rows name rows =
  let find level set pick =
    match
      List.find_opt (fun (l, s, _, _) -> l = level && s = set) rows
    with
    | Some (_, _, base, with_c) -> pick (base, with_c)
    | None -> invalid_arg "fig6_rows: missing table row"
  in
  let base (b, _) = b and with_c (_, w) = w in
  let t_rtl = find "RTL" "All C" base and t_rtl_c = find "RTL" "All C" with_c in
  let t_ca = find "TLM-CA" "All C" base and t_ca_c = find "TLM-CA" "All C" with_c in
  let t_at = find "TLM-AT" "All C" base and t_at_c = find "TLM-AT" "All C" with_c in
  Printf.printf "%-22s %10.2f %10.2f\n" (name ^ " TLM-CA") (t_rtl /. t_ca)
    (t_rtl_c /. t_ca_c);
  Printf.printf "%-22s %10.2f %10.2f\n" (name ^ " TLM-AT") (t_rtl /. t_at)
    (t_rtl_c /. t_at_c)

let fig6 ~des_rows ~cc_rows =
  print_endline "=== Fig. 6: RTL/TLM average speedup (higher is better) ===";
  Printf.printf "%-22s %10s %10s\n" "" "w/out c." "with All C";
  fig6_rows "DES56" des_rows;
  fig6_rows "ColorConv" cc_rows;
  print_newline ()

(* --- Ablations ---------------------------------------------------- *)

let ablation_naive_scaling ops =
  print_endline "=== Ablation (Sec. III-A): naive next[n] reuse vs next_eps^tau ===";
  let naive =
    List.map
      (fun p ->
        Property.make ~name:(p.Property.name ^ "_naive")
          ~context:(Context.Transaction Context.Base_trans) p.Property.formula)
      [ Des56_props.p1; Des56_props.p3 ]
  in
  let naive_result = Testbench.run_des56_tlm_at ~properties:naive ops in
  let abstracted = Des56_props.tlm_auto_safe () in
  let abstracted_result = Testbench.run_des56_tlm_at ~properties:abstracted ops in
  let stuck result =
    List.fold_left (fun a s -> a + s.Testbench.pending) 0 result.Testbench.checker_stats
  in
  Printf.printf "naive reuse      : %d failures, %d stuck instances (incorrect verdicts)\n"
    (Testbench.total_failures naive_result) (stuck naive_result);
  Printf.printf "abstracted (ours): %d failures, %d stuck instances on the same workload\n\n"
    (Testbench.total_failures abstracted_result)
    (stuck abstracted_result)

let ablation_grid_wrapper ops =
  print_endline "=== Ablation: strict wrapper vs grid wrapper (TLM-AT, DES56) ===";
  let auto_safe = Des56_props.tlm_auto_safe () in
  let with_q2 =
    List.filter_map
      (fun r ->
        match r.Tabv_core.Methodology.output with
        | Some q when q.Property.name = "q2" -> Some q
        | _ -> None)
      (Des56_props.abstraction_reports ())
  in
  let t_base = timed (fun () -> Testbench.run_des56_tlm_at ops) in
  let t_strict = timed (fun () -> Testbench.run_des56_tlm_at ~properties:auto_safe ops) in
  let t_grid =
    timed (fun () ->
      Testbench.run_des56_tlm_at ~grid_properties:(auto_safe @ with_q2) ops)
  in
  Printf.printf "no checkers                          : %8.3f s\n" t_base;
  Printf.printf "strict wrapper (%d props, no q2)      : %8.3f s (+%.1f%%)\n"
    (List.length auto_safe) t_strict ((t_strict -. t_base) /. t_base *. 100.);
  Printf.printf "grid wrapper   (%d props, incl. q2)   : %8.3f s (+%.1f%%)\n\n"
    (List.length auto_safe + List.length with_q2)
    t_grid
    ((t_grid -. t_base) /. t_base *. 100.)

let ablation_checker_backend ops =
  print_endline
    "=== Ablation: checker synthesis backend (DES56 RTL, all 9 checkers) ===";
  let t_prog =
    timed (fun () ->
      Testbench.run_des56_rtl ~engine:`Progression ~properties:Des56_props.all ops)
  in
  let t_auto =
    timed (fun () ->
      Testbench.run_des56_rtl ~engine:`Automaton ~properties:Des56_props.all ops)
  in
  Printf.printf "formula progression (rewriting)  : %8.3f s\n" t_prog;
  Printf.printf "explicit-state automaton (tabled): %8.3f s  (%.2fx)\n\n" t_auto
    (t_prog /. t_auto)

let ablation_wrapper_stats ops =
  print_endline "=== Wrapper statistics (Sec. IV): instance pool sizing ===";
  let properties = Des56_props.tlm_auto_safe () in
  let result = Testbench.run_des56_tlm_at ~properties ops in
  Printf.printf "%-6s %18s %12s\n" "prop" "paper bound" "peak live";
  List.iter
    (fun stat ->
      Printf.printf "%-6s %18d %12d\n" stat.Testbench.property_name Des56_iface.latency
        stat.Testbench.peak_instances)
    result.Testbench.checker_stats;
  print_newline ()

(* --- Checker cache: interned progression vs legacy rewriting -------- *)

(* Replay-based measurement of the interned checker core: record one
   evaluation trace per abstraction level, then re-check a replicated
   always-property pool over it with the legacy tree-rewriting engine
   and with the interned/memoized engine.  Replaying isolates the
   checker cost from the simulation itself (both engines see the exact
   same (time, environment) sequence), and the replicated pool models
   the many-wrappers configuration where hash-consing pays: identical
   live instances collapse into one stepped state and the shared
   sampler evaluates each distinct atom once per instant. *)

let replicate_properties n props =
  List.concat_map
    (fun i ->
      List.map
        (fun p ->
          Property.make
            ~name:(Printf.sprintf "%s#%d" p.Property.name i)
            ~context:p.Property.context p.Property.formula)
        props)
    (List.init n (fun i -> i))

let assert_equivalent_outcomes level legacy interned =
  List.iter2
    (fun (l : Tabv_checker.Replay.outcome) (i : Tabv_checker.Replay.outcome) ->
      let open Tabv_checker in
      let summary o =
        ( List.map
            (fun (f : Monitor.failure) ->
              (f.Monitor.activation_time, f.Monitor.failure_time))
            (Monitor.failures o.Replay.monitor),
          Monitor.activations o.Replay.monitor,
          Monitor.passes o.Replay.monitor,
          Monitor.pending o.Replay.monitor )
      in
      if summary l <> summary i then
        failwith
          (Printf.sprintf "checker_cache %s: engines disagree on %s" level
             l.Replay.property.Property.name))
    legacy interned

(* Replay with the offline stutter fast path off: this section isolates
   the per-step engine cost (interned vs legacy rewriting), and the
   fast path would skip exactly the steps being compared — equally for
   both engines, diluting the ratio toward 1. *)
let replay_run ?engine props trace =
  let open Tabv_checker.Offline in
  List.map
    (fun (property, monitor) -> { Tabv_checker.Replay.property; monitor })
    (let module R = Run (Monitors) in
     R.over_trace (Monitors.config ?engine ~stutter:false props) trace)

let checker_cache_section ?(ops_count = 1000) ?(replicate = 8) () =
  print_endline
    "=== Checker cache: interned progression vs legacy rewriting (replay) ===";
  let ops = Workload.des56 ~seed:42 ~count:ops_count () in
  let trace_of result =
    match result.Testbench.trace with
    | Some trace -> trace
    | None -> failwith "checker_cache: testbench recorded no trace"
  in
  let levels =
    [ ( "RTL",
        trace_of (Testbench.run_des56_rtl ~record_trace:true ops),
        replicate_properties replicate Des56_props.all );
      ( "TLM-CA",
        trace_of (Testbench.run_des56_tlm_ca ~record_trace:true ops),
        replicate_properties replicate Des56_props.all );
      ( "TLM-AT",
        trace_of (Testbench.run_des56_tlm_at ~record_trace:true ops),
        replicate_properties replicate (Des56_props.tlm_auto_safe ()) ) ]
  in
  Printf.printf "%-8s %6s %9s %12s %12s %9s %9s\n" "Level" "props" "entries"
    "legacy(s)" "interned(s)" "speedup" "hit rate";
  let rows =
    List.map
      (fun (level, trace, props) ->
        (* Correctness first: both engines must agree on everything
           observable before their times are worth comparing. *)
        let legacy_outcomes =
          replay_run ~engine:`Progression_legacy props trace
        in
        let interned_outcomes = replay_run props trace in
        assert_equivalent_outcomes level legacy_outcomes interned_outcomes;
        let t_legacy =
          timed (fun () ->
            replay_run ~engine:`Progression_legacy props trace)
        in
        let before = Tabv_checker.Progression.cache_stats () in
        let t_interned = timed (fun () -> replay_run props trace) in
        let after = Tabv_checker.Progression.cache_stats () in
        let hits = after.Tabv_checker.Progression.cache_hits - before.Tabv_checker.Progression.cache_hits in
        let misses =
          after.Tabv_checker.Progression.cache_misses - before.Tabv_checker.Progression.cache_misses
          + (after.Tabv_checker.Progression.cache_bypassed - before.Tabv_checker.Progression.cache_bypassed)
        in
        let hit_rate =
          if hits + misses = 0 then 0.
          else float_of_int hits /. float_of_int (hits + misses)
        in
        let speedup = t_legacy /. t_interned in
        Printf.printf "%-8s %6d %9d %12.3f %12.3f %8.2fx %8.1f%%\n" level
          (List.length props) (Trace.length trace) t_legacy t_interned speedup
          (hit_rate *. 100.);
        (level, List.length props, Trace.length trace, t_legacy, t_interned, hit_rate))
      levels
  in
  let total_legacy = List.fold_left (fun a (_, _, _, l, _, _) -> a +. l) 0. rows in
  let total_interned =
    List.fold_left (fun a (_, _, _, _, i, _) -> a +. i) 0. rows
  in
  let overall = total_legacy /. total_interned in
  Printf.printf "%-8s %6s %9s %12.3f %12.3f %8.2fx\n\n" "overall" "" ""
    total_legacy total_interned overall;
  let stats = Tabv_checker.Progression.cache_stats () in
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "checker_cache");
        ( "workload",
          Assoc
            [ ("des56_ops", Int ops_count);
              ("replication", Int replicate) ] );
        ( "levels",
          List
            (List.map
               (fun (level, props, entries, t_legacy, t_interned, hit_rate) ->
                 Assoc
                   [ ("level", String level);
                     ("properties", Int props);
                     ("trace_entries", Int entries);
                     ("legacy_seconds", Float t_legacy);
                     ("interned_seconds", Float t_interned);
                     ("speedup", Float (t_legacy /. t_interned));
                     ("cache_hit_rate", Float hit_rate) ])
               rows) );
        ("legacy_seconds_total", Float total_legacy);
        ("interned_seconds_total", Float total_interned);
        ("overall_speedup", Float overall);
        ( "engine_cache",
          engine_cache_json
            ~cache_hits:stats.Tabv_checker.Progression.cache_hits
            ~cache_misses:stats.Tabv_checker.Progression.cache_misses
            ~cache_bypassed:stats.Tabv_checker.Progression.cache_bypassed
            ~distinct_states:stats.Tabv_checker.Progression.distinct_states
            ~distinct_transitions:
              stats.Tabv_checker.Progression.distinct_transitions
            ~interned_formulas:stats.Tabv_checker.Progression.interned_formulas
            () ) ]
  in
  Out_channel.with_open_text "BENCH_checker_cache.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf "wrote BENCH_checker_cache.json (overall speedup %.2fx)\n\n" overall;
  overall

(* --- Observability: instrumentation overhead ------------------------ *)

(* The lib/obs contract is "near-zero cost when disabled, cheap when
   enabled": push instruments behind one branch, pull probes off the
   hot path entirely.  This section measures both sides on the densest
   checker configuration (DES56 RTL, all 9 checkers) and gates the
   enabled-registry overhead: activation throughput with metrics on
   must stay within [gate_pct] of throughput with metrics off. *)

let obs_gate_pct = 5.0

let obs_overhead_section ?(ops_count = 2000) ?(repeat = 7) () =
  print_endline
    "=== Observability: metrics-registry overhead (DES56 RTL, all 9 checkers) ===";
  let ops = Workload.des56 ~seed:42 ~count:ops_count () in
  let run_disabled () =
    Testbench.run_des56_rtl ~properties:Des56_props.all ops
  in
  let run_enabled () =
    (* A fresh registry per run: every attach appends pull probes, so
       reusing one registry across timed runs would make later runs
       snapshot ever-longer probe lists. *)
    let metrics = Tabv_obs.Metrics.create ~enabled:true () in
    Testbench.run_des56_rtl ~metrics ~properties:Des56_props.all ops
  in
  let t_disabled = timed ~repeat run_disabled in
  let t_enabled = timed ~repeat run_enabled in
  let reference = run_disabled () in
  let activations = reference.Testbench.kernel_activations in
  let throughput seconds = float_of_int activations /. seconds in
  let thr_disabled = throughput t_disabled in
  let thr_enabled = throughput t_enabled in
  let overhead_pct = (t_enabled -. t_disabled) /. t_disabled *. 100. in
  Printf.printf "metrics disabled : %8.3f s  (%10.0f activations/s)\n" t_disabled
    thr_disabled;
  Printf.printf "metrics enabled  : %8.3f s  (%10.0f activations/s)\n" t_enabled
    thr_enabled;
  Printf.printf "overhead         : %+7.2f %%  (gate: <= %.1f%%)\n" overhead_pct
    obs_gate_pct;
  (* One enabled run supplies the registry snapshot embedded in the
     JSON artefact, so CI history records what was being counted. *)
  let enabled_result = run_enabled () in
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "obs_overhead");
        ("schema", Int metrics_schema_version);
        ( "workload",
          Assoc [ ("des56_ops", Int ops_count); ("checkers", Int (List.length Des56_props.all)) ] );
        ("kernel_activations", Int activations);
        ("disabled_seconds", Float t_disabled);
        ("enabled_seconds", Float t_enabled);
        ("disabled_activations_per_s", Float thr_disabled);
        ("enabled_activations_per_s", Float thr_enabled);
        ("overhead_pct", Float overhead_pct);
        ("gate_pct", Float obs_gate_pct);
        ("metrics", metrics_snapshot_json enabled_result.Testbench.metrics) ]
  in
  Out_channel.with_open_text "BENCH_obs_overhead.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf "wrote BENCH_obs_overhead.json (overhead %+.2f%%)\n\n" overhead_pct;
  overhead_pct

(* --- Extension: the third IP ---------------------------------------- *)

let memctrl_section count =
  print_endline "=== Extension: MemCtrl (third IP, asymmetric latencies) ===";
  Printf.printf "%-14s %12s %12s %10s\n" "Abstr. level" "w/out c.(s)" "with c.(s)"
    "Overhead%";
  let ops = Workload.memctrl ~seed:42 ~count () in
  let row name run props =
    let base = timed (fun () -> run []) in
    let with_c = timed (fun () -> run props) in
    Printf.printf "%-14s %12.3f %12.3f %10.1f\n" name base with_c
      ((with_c -. base) /. base *. 100.)
  in
  row "RTL All C"
    (fun properties -> Memctrl_testbench.run_rtl ~properties ops)
    Memctrl_props.all;
  row "TLM-CA All C"
    (fun properties -> Memctrl_testbench.run_tlm_ca ~properties ops)
    Memctrl_props.all;
  row "TLM-AT All C"
    (fun properties -> Memctrl_testbench.run_tlm_at ~properties ops)
    (Memctrl_props.tlm_auto_safe ());
  print_newline ()

(* --- Campaign: multicore scaling ------------------------------------ *)

(* The campaign runner's contract is (a) determinism — byte-identical
   report JSON for any worker count — and (b) scaling — embarrassingly
   parallel jobs should speed up near-linearly with workers.  This
   section times the same job matrix on 1 and 4 worker domains, checks
   the two deterministic reports byte for byte, and gates the speedup.
   On machines without at least 4 recommended domains the measurement
   would be noise, so the CI entry point skips (recording why). *)

let campaign_gate = 2.0
let campaign_workers = 4

let campaign_section ?(ops = 300) ?(repeat = 3) () =
  print_endline "=== Campaign: multicore scaling (1 vs 4 worker domains) ===";
  let open Tabv_campaign.Campaign in
  let jobs =
    expand_matrix
      ~duvs:[ Des56; Colorconv; Memctrl ]
      ~levels:[ Rtl; Tlm_ca; Tlm_at ]
      ~seeds:[ 1; 2 ] ~ops ()
  in
  let report workers =
    Tabv_core.Report_json.to_string
      (report_json (run ~workers jobs))
  in
  let r1 = report 1 in
  let r4 = report campaign_workers in
  let identical = String.equal r1 r4 in
  let t1 = timed ~repeat (fun () -> run ~workers:1 jobs) in
  let t4 = timed ~repeat (fun () -> run ~workers:campaign_workers jobs) in
  let speedup = t1 /. t4 in
  Printf.printf "jobs             : %d (ops=%d each)\n" (List.length jobs) ops;
  Printf.printf "1 worker         : %8.3f s\n" t1;
  Printf.printf "%d workers        : %8.3f s\n" campaign_workers t4;
  Printf.printf "speedup          : %8.2fx  (gate: >= %.1fx)\n" speedup campaign_gate;
  Printf.printf "report identical : %b\n" identical;
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "campaign_scaling");
        ("skipped", Bool false);
        ("jobs", Int (List.length jobs));
        ("ops_per_job", Int ops);
        ("workers", Int campaign_workers);
        ("seconds_1_worker", Float t1);
        ("seconds_n_workers", Float t4);
        ("speedup", Float speedup);
        ("gate", Float campaign_gate);
        ("report_identical", Bool identical) ]
  in
  Out_channel.with_open_text "BENCH_campaign_scaling.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf "wrote BENCH_campaign_scaling.json (speedup %.2fx)\n\n" speedup;
  (speedup, identical)

let campaign_skip () =
  let available = Domain.recommended_domain_count () in
  Printf.printf
    "=== Campaign: multicore scaling — SKIPPED (%d recommended domain(s) < %d) ===\n\n"
    available campaign_workers;
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "campaign_scaling");
        ("skipped", Bool true);
        ("reason",
         String
           (Printf.sprintf "recommended_domain_count %d < %d" available
              campaign_workers));
        ("workers", Int campaign_workers);
        ("gate", Float campaign_gate) ]
  in
  Out_channel.with_open_text "BENCH_campaign_scaling.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n')

(* --- Subprocess isolation: overhead over in-domain workers --------- *)

(* The subprocess executor buys crash containment (a SIGSEGV, OOM kill
   or livelock in one job cannot take down the coordinator) at the
   price of forked workers and a length-prefixed JSON wire.  Workers
   are long-lived — one fork per worker slot, not per job — so the
   price must stay a bounded multiple of the in-domain pool on a
   healthy (crash-free) matrix.  This section times the same job
   matrix on both executors with the same worker count, checks the two
   reports byte for byte (the determinism contract spans executors),
   and gates the ratio. *)

let isolate_gate = 1.5
let isolate_workers = 2

let isolate_section ?(ops = 150) ?(repeat = 3) () =
  print_endline
    "=== Isolation: subprocess executor overhead (vs in-domain, 2 workers) ===";
  let open Tabv_campaign in
  let open Tabv_campaign.Campaign in
  let jobs =
    expand_matrix
      ~duvs:[ Des56; Colorconv ]
      ~levels:[ Rtl; Tlm_ca; Tlm_at ]
      ~seeds:[ 1; 2 ] ~ops ()
  in
  let exec_in = Executor.config Executor.In_domain in
  let exec_sub = Executor.config Executor.Subprocess in
  let report exec =
    Tabv_core.Report_json.to_string
      (report_json (run ~workers:isolate_workers ~exec jobs))
  in
  let identical = String.equal (report exec_in) (report exec_sub) in
  let t_in =
    timed ~repeat (fun () -> run ~workers:isolate_workers ~exec:exec_in jobs)
  in
  let t_sub =
    timed ~repeat (fun () -> run ~workers:isolate_workers ~exec:exec_sub jobs)
  in
  let ratio = t_sub /. t_in in
  Printf.printf "jobs             : %d (ops=%d each)\n" (List.length jobs) ops;
  Printf.printf "in-domain        : %8.3f s\n" t_in;
  Printf.printf "subprocess       : %8.3f s\n" t_sub;
  Printf.printf "ratio            : %8.2fx  (gate: <= %.1fx)\n" ratio isolate_gate;
  Printf.printf "report identical : %b\n" identical;
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "isolate_overhead");
        ("jobs", Int (List.length jobs));
        ("ops_per_job", Int ops);
        ("workers", Int isolate_workers);
        ("seconds_in_domain", Float t_in);
        ("seconds_subprocess", Float t_sub);
        ("ratio", Float ratio);
        ("gate", Float isolate_gate);
        ("report_identical", Bool identical) ]
  in
  Out_channel.with_open_text "BENCH_isolate_overhead.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf "wrote BENCH_isolate_overhead.json (ratio %.2fx)\n\n" ratio;
  (ratio, identical)

(* --- Trace capture: record once, recheck many ----------------------- *)

(* The simulate-once / check-many contract behind [tabv record] /
   [tabv recheck]: replaying a property set against the recorded
   binary trace must beat re-simulating the model with live checkers
   by a wide margin (the simulator, not the checkers, dominates a
   live run), and the compact binary encoding must stay a small
   fraction of the equivalent VCD.  This section records one
   des56-rtl run, times live check vs offline recheck on a
   ten-property handshake-invariant set, compares the two verdict
   reports byte for byte and gates both the speedup and the size
   ratio. *)

let trace_gate_speedup = 5.0
let trace_gate_size_pct = 20.0

(* The gate's 10-property set: boolean handshake invariants over the
   DES56 interface, the bread-and-butter regression properties a
   recheck campaign sweeps after every abstraction tweak.  Invariants
   keep the checker cost roughly proportional on both sides, so the
   ratio measures what the trace subsystem actually saves: replaying a
   stored valuation stream (plus the offline stutter fast path) versus
   re-running the RTL simulation. *)
let trace_gate_props =
  List.init 10 (fun i ->
      Parser.property_exn
        ~name:(Printf.sprintf "trace_inv_%d" i)
        (match i mod 5 with
        | 0 -> "always (!rdy || !rdy_next_cycle) @clk_pos"
        | 1 -> "always (!ds || !rdy) @clk_pos"
        | 2 -> "always (!(ds && indata = 0) || !rdy) @clk_pos"
        | 3 -> "always (!rdy_next_next_cycle || !rdy) @clk_pos"
        | _ -> "always (!decrypt || !rdy_next_cycle) @clk_pos"))

let trace_section ?(ops_count = 2000) ?(repeat = 5) () =
  print_endline
    "=== Trace: offline recheck vs live re-simulation (des56-rtl) ===";
  let ops = Workload.des56 ~seed:42 ~count:ops_count () in
  let props = trace_gate_props in
  let trace_path = Filename.temp_file "tabv_bench" ".trace" in
  let vcd_path = Filename.temp_file "tabv_bench" ".vcd" in
  let meta =
    Tabv_trace.Meta.
      { model = "des56-rtl";
        seed = 42;
        ops = ops_count;
        engine = Tabv_sim.Kernel.(engine_name (get_default_engine ())) }
  in
  (* Each measured run starts from a cold checker universe so neither
     side inherits the other's warm transition cache. *)
  (* Six idle cycles between operations: a bus master that issues
     back-to-back with zero think time is the unrealistic extreme, and
     idle cycles are exactly where the trace subsystem earns its keep
     (a stuttered sample is two bytes on disk and a counter bump on
     replay, but a full simulated cycle plus checker steps live). *)
  let gap_cycles = 8 in
  let live () =
    Tabv_checker.Progression.reset_universe ();
    Testbench.run_des56_rtl ~gap_cycles ~properties:props ops
  in
  (* One recording pass: the binary trace via the writer tap, the VCD
     via the legacy in-memory trace. *)
  let recorded =
    Tabv_trace.Writer.with_file ~path:trace_path meta (fun w ->
        Tabv_checker.Progression.reset_universe ();
        Testbench.run_des56_rtl ~gap_cycles ~properties:props
          ~record_trace:true ~trace_writer:w ops)
  in
  (match recorded.Testbench.trace with
  | Some trace -> Tabv_sim.Trace_dump.to_file trace vcd_path
  | None -> failwith "trace bench: testbench recorded no trace");
  let recheck () =
    Tabv_campaign.Recheck.run ~workers:1 ~retries:0 ~trace:trace_path props
  in
  let live_report =
    let open Tabv_core.Report_json in
    to_string
      (verdict_report_json
         ~run:
           [ ("model", String meta.Tabv_trace.Meta.model);
             ("seed", Int meta.Tabv_trace.Meta.seed);
             ("ops", Int meta.Tabv_trace.Meta.ops) ]
         ~properties:(live ()).Testbench.checker_stats ())
  in
  let recheck_report =
    Tabv_core.Report_json.to_string
      (Tabv_campaign.Recheck.report_json (recheck ()))
  in
  let identical = String.equal live_report recheck_report in
  let t_live = timed ~repeat live in
  let t_recheck = timed ~repeat recheck in
  let speedup = t_live /. t_recheck in
  let trace_bytes = (Unix.stat trace_path).Unix.st_size in
  let vcd_bytes = (Unix.stat vcd_path).Unix.st_size in
  let size_pct = 100.0 *. float_of_int trace_bytes /. float_of_int vcd_bytes in
  Sys.remove trace_path;
  Sys.remove vcd_path;
  Printf.printf "properties       : %d\n" (List.length props);
  Printf.printf "ops              : %d\n" ops_count;
  Printf.printf "live check       : %8.3f s\n" t_live;
  Printf.printf "offline recheck  : %8.3f s\n" t_recheck;
  Printf.printf "speedup          : %8.2fx  (gate: >= %.1fx)\n" speedup
    trace_gate_speedup;
  Printf.printf "trace size       : %8d B\n" trace_bytes;
  Printf.printf "vcd size         : %8d B\n" vcd_bytes;
  Printf.printf "trace/vcd        : %8.2f%%  (gate: <= %.0f%%)\n" size_pct
    trace_gate_size_pct;
  Printf.printf "report identical : %b\n" identical;
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "trace_recheck");
        ("properties", Int (List.length props));
        ("ops", Int ops_count);
        ("seconds_live_check", Float t_live);
        ("seconds_recheck", Float t_recheck);
        ("speedup", Float speedup);
        ("trace_bytes", Int trace_bytes);
        ("vcd_bytes", Int vcd_bytes);
        ("trace_vcd_pct", Float size_pct);
        ("gate_speedup", Float trace_gate_speedup);
        ("gate_size_pct", Float trace_gate_size_pct);
        ("report_identical", Bool identical) ]
  in
  Out_channel.with_open_text "BENCH_trace_recheck.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf
    "wrote BENCH_trace_recheck.json (speedup %.2fx, %.1f%% of VCD)\n\n" speedup
    size_pct;
  (speedup, size_pct, identical)

(* --- Fault subsystem: armed-but-idle overhead ----------------------- *)

(* The fault subsystem's contract is "free when unused": the Signal /
   Tlm interposition hooks, the watchdog checks and the crash
   containment must not tax fault-free runs.  This section measures
   the worst case short of an actual injection — a latent saboteur
   installed on the output signal plus the qualification guard
   (delta-cycle cap + crash containment) — against the plain run, on
   the densest checker configuration, and gates the slowdown at
   [fault_gate_pct].  The latent plan must also leave the run
   bit-identical (same outputs, zero triggers, Completed). *)

let fault_gate_pct = 2.0

let fault_overhead_section ?(ops_count = 2000) ?(repeat = 9) () =
  print_endline
    "=== Fault injection: armed-but-idle overhead (DES56 RTL, all 9 checkers) ===";
  let ops = Workload.des56 ~seed:42 ~count:ops_count () in
  let latent_plan =
    match Duv_fault.plan_for Duv_fault.Des56 Duv_fault.Rtl "out_stuck0_late" with
    | Some plan -> plan
    | None -> failwith "out_stuck0_late has no RTL carrier"
  in
  let guard =
    { Tabv_sim.Kernel.max_delta_cycles = Some 10_000;
      max_steps = None;
      contain_crashes = true }
  in
  let run_plain () = Testbench.run_des56_rtl ~properties:Des56_props.all ops in
  let run_armed () =
    Testbench.run_des56_rtl ~properties:Des56_props.all
      ~fault_plan:latent_plan ~guard ops
  in
  let reference = run_plain () in
  let armed = run_armed () in
  let unperturbed =
    armed.Testbench.outputs = reference.Testbench.outputs
    && armed.Testbench.faults_triggered = 0
    && armed.Testbench.diagnosis = Tabv_sim.Kernel.Completed
    && Testbench.total_failures armed = 0
  in
  let t_plain = timed ~repeat run_plain in
  let t_armed = timed ~repeat run_armed in
  let overhead_pct = (t_armed -. t_plain) /. t_plain *. 100. in
  Printf.printf "plain run        : %8.3f s\n" t_plain;
  Printf.printf "latent plan+guard: %8.3f s\n" t_armed;
  Printf.printf "overhead         : %+7.2f %%  (gate: <= %.1f%%)\n" overhead_pct
    fault_gate_pct;
  Printf.printf "run unperturbed  : %b\n" unperturbed;
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "fault_overhead");
        ( "workload",
          Assoc
            [ ("des56_ops", Int ops_count);
              ("checkers", Int (List.length Des56_props.all)) ] );
        ("latent_plan", String "out_stuck0_late");
        ("guard_delta_cap", Int 10_000);
        ("plain_seconds", Float t_plain);
        ("armed_seconds", Float t_armed);
        ("overhead_pct", Float overhead_pct);
        ("gate_pct", Float fault_gate_pct);
        ("unperturbed", Bool unperturbed) ]
  in
  Out_channel.with_open_text "BENCH_fault_overhead.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf "wrote BENCH_fault_overhead.json (overhead %+.2f%%)\n\n"
    overhead_pct;
  (overhead_pct, unperturbed)

(* --- Compiled scheduler: static schedule vs dynamic reference ------- *)

(* The compiled engine replaces the dynamic kernel's queue-of-closures
   scheduling (a heap cell per scheduled action, a closure allocation
   per signal update, a [List.rev] per event fire and per update
   phase) with levelized vector queues over a dense signal arena.  Two
   gates:

   - identity: the cache-bench workload (DES56 seed 42, all nine
     checkers, full metrics) must produce byte-identical observability
     documents on both engines — the refactor's correctness contract;
   - speed: a scheduling-dense netlist — hundreds of clocked processes
     with trivial bodies, so event fan-out and dispatch are the whole
     cost — must run at least [sched_gate]x faster compiled than
     classic.  The classic path pays a [List.rev] cons plus a queue
     cell per subscriber per fire and a closure per update request;
     the compiled path pushes one fused activation block per fire into
     a preallocated vector.  A register-toggle variant (every process
     also drives signals, whose update semantics cost the same on both
     engines) and the des56-rtl end-to-end run are recorded for
     context, not gated. *)

let sched_gate = 3.0

let sched_netlist kernel ~procs ~writes =
  let open Tabv_sim in
  let el = Elab.create kernel in
  let clock = Clock.create kernel ~name:"clk" ~period:10 () in
  for p = 0 to procs - 1 do
    let mine =
      Array.init writes (fun w -> Elab.signal_bool el (Printf.sprintf "o_%d_%d" p w))
    in
    let packs = Array.to_list (Array.map (fun s -> Elab.Pack s) mine) in
    (* [writes = 0] leaves the body trivial: the run is pure event
       fan-out and process dispatch, the machinery under test. *)
    Elab.process el ~name:(Printf.sprintf "reg%d" p) ~pos:__POS__
      ~initialize:false
      ~sensitivity:[ Clock.posedge clock ]
      ~reads:packs ~writes:packs
      (fun () ->
        for w = 0 to writes - 1 do
          Signal.write mine.(w) (not (Signal.read mine.(w)))
        done)
  done;
  el

let sched_run engine ~procs ~writes ~cycles =
  let open Tabv_sim in
  let kernel = Kernel.create ~engine () in
  ignore (sched_netlist kernel ~procs ~writes);
  ignore (Kernel.run ~until:(cycles * 10) kernel);
  ( Kernel.activation_count kernel,
    Kernel.delta_count kernel,
    Kernel.update_action_count kernel,
    Kernel.now kernel )

let sched_section ?(procs = 512) ?(writes = 4) ?(cycles = 2_000) ?(ops_count = 1000)
    () =
  let open Tabv_sim in
  print_endline "=== Compiled scheduler: levelized static schedule vs classic ===";
  (* Correctness before speed: identical counters on both synthetic
     netlists, byte-identical metrics documents on the cache-bench
     workload. *)
  List.iter
    (fun writes ->
      let counters_classic = sched_run Kernel.Classic ~procs ~writes ~cycles in
      let counters_compiled = sched_run Kernel.Compiled ~procs ~writes ~cycles in
      if counters_classic <> counters_compiled then
        failwith "sched: engines disagree on kernel counters")
    [ 0; writes ];
  let ops = Workload.des56 ~seed:42 ~count:ops_count () in
  let cache_doc engine =
    Tabv_checker.Progression.reset_universe ();
    let metrics = Tabv_obs.Metrics.create ~enabled:true () in
    Tabv_core.Report_json.to_string
      (Testbench.metrics_json
         (Testbench.run_des56_rtl ~metrics ~sim_engine:engine
            ~properties:Des56_props.all ops))
  in
  let identical = cache_doc Kernel.Classic = cache_doc Kernel.Compiled in
  if not identical then
    failwith "sched: cache-bench metrics documents differ between engines";
  let t_classic =
    timed (fun () -> sched_run Kernel.Classic ~procs ~writes:0 ~cycles)
  in
  let t_compiled =
    timed (fun () -> sched_run Kernel.Compiled ~procs ~writes:0 ~cycles)
  in
  let speedup = t_classic /. t_compiled in
  let t_reg_classic =
    timed (fun () -> sched_run Kernel.Classic ~procs ~writes ~cycles)
  in
  let t_reg_compiled =
    timed (fun () -> sched_run Kernel.Compiled ~procs ~writes ~cycles)
  in
  let reg_ratio = t_reg_classic /. t_reg_compiled in
  let t_duv_classic =
    timed (fun () -> Testbench.run_des56_rtl ~sim_engine:Kernel.Classic ops)
  in
  let t_duv_compiled =
    timed (fun () -> Testbench.run_des56_rtl ~sim_engine:Kernel.Compiled ops)
  in
  let duv_ratio = t_duv_classic /. t_duv_compiled in
  Printf.printf
    "fan-out netlist (%d procs, %d cycles): classic %.3fs, compiled %.3fs, \
     speedup %.2fx\n"
    procs cycles t_classic t_compiled speedup;
  Printf.printf
    "register netlist (%d procs x %d signals, signal-bound, not gated): \
     classic %.3fs, compiled %.3fs, ratio %.2fx\n"
    procs writes t_reg_classic t_reg_compiled reg_ratio;
  Printf.printf
    "des56-rtl end-to-end (%d ops, body-bound, not gated): classic %.3fs, \
     compiled %.3fs, ratio %.2fx\n"
    ops_count t_duv_classic t_duv_compiled duv_ratio;
  Printf.printf "metrics documents byte-identical across engines: %b\n" identical;
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "sched_speedup");
        ( "fanout_netlist",
          Assoc
            [ ("processes", Int procs);
              ("cycles", Int cycles);
              ("classic_seconds", Float t_classic);
              ("compiled_seconds", Float t_compiled);
              ("speedup", Float speedup) ] );
        ( "register_netlist",
          Assoc
            [ ("processes", Int procs);
              ("writes_per_process", Int writes);
              ("cycles", Int cycles);
              ("classic_seconds", Float t_reg_classic);
              ("compiled_seconds", Float t_reg_compiled);
              ("speedup", Float reg_ratio) ] );
        ( "cache_bench",
          Assoc
            [ ("des56_ops", Int ops_count);
              ("metrics_byte_identical", Bool identical);
              ("classic_seconds", Float t_duv_classic);
              ("compiled_seconds", Float t_duv_compiled);
              ("speedup", Float duv_ratio) ] );
        ("gate", Float sched_gate) ]
  in
  Out_channel.with_open_text "BENCH_sched_speedup.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf "wrote BENCH_sched_speedup.json (fan-out netlist speedup %.2fx)\n\n"
    speedup;
  (speedup, identical)

(* --- Bechamel micro-benchmarks ------------------------------------ *)

let bechamel_section () =
  print_endline "=== Bechamel micro-benchmarks (small fixed workloads) ===";
  let open Bechamel in
  let des_ops = Workload.des56 ~seed:11 ~count:40 () in
  let cc_bursts = Workload.colorconv ~seed:11 ~count:200 () in
  let stage f = Staged.stage (fun () -> ignore (f ())) in
  let table1_des56 =
    Test.make_grouped ~name:"table1_des56"
      [ Test.make ~name:"rtl_0c" (stage (fun () -> Testbench.run_des56_rtl des_ops));
        Test.make ~name:"rtl_all_c"
          (stage (fun () -> Testbench.run_des56_rtl ~properties:Des56_props.all des_ops));
        Test.make ~name:"tlm_ca_0c" (stage (fun () -> Testbench.run_des56_tlm_ca des_ops));
        Test.make ~name:"tlm_ca_all_c"
          (stage (fun () ->
             Testbench.run_des56_tlm_ca ~properties:Des56_props.all des_ops));
        Test.make ~name:"tlm_at_0c" (stage (fun () -> Testbench.run_des56_tlm_at des_ops));
        Test.make ~name:"tlm_at_all_c"
          (stage (fun () ->
             Testbench.run_des56_tlm_at ~properties:(Des56_props.tlm_reviewed ()) des_ops)) ]
  in
  let table1_colorconv =
    Test.make_grouped ~name:"table1_colorconv"
      [ Test.make ~name:"rtl_0c" (stage (fun () -> Testbench.run_colorconv_rtl cc_bursts));
        Test.make ~name:"rtl_all_c"
          (stage (fun () ->
             Testbench.run_colorconv_rtl ~properties:Colorconv_props.all cc_bursts));
        Test.make ~name:"tlm_ca_all_c"
          (stage (fun () ->
             Testbench.run_colorconv_tlm_ca ~properties:Colorconv_props.all cc_bursts));
        Test.make ~name:"tlm_at_all_c"
          (stage (fun () ->
             Testbench.run_colorconv_tlm_at
               ~properties:(Colorconv_props.tlm_reviewed ()) cc_bursts)) ]
  in
  let fig3_bench =
    Test.make_grouped ~name:"fig3_abstraction"
      [ Test.make ~name:"des56_9_properties"
          (stage (fun () -> Des56_props.abstraction_reports ()));
        Test.make ~name:"colorconv_12_properties"
          (stage (fun () -> Colorconv_props.abstraction_reports ())) ]
  in
  let fig6_bench =
    Test.make_grouped ~name:"fig6_speedup_inputs"
      [ Test.make ~name:"des56_rtl" (stage (fun () -> Testbench.run_des56_rtl des_ops));
        Test.make ~name:"des56_tlm_at"
          (stage (fun () -> Testbench.run_des56_tlm_at des_ops)) ]
  in
  let grouped =
    Test.make_grouped ~name:"tabv"
      [ table1_des56; table1_colorconv; fig3_bench; fig6_bench ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some (estimate :: _) ->
        Printf.printf "  %-45s %12.3f ms/run\n" name (estimate /. 1e6)
      | Some [] | None -> Printf.printf "  %-45s (no estimate)\n" name)
    rows;
  print_newline ()

(* --- verification service (tabv serve) ---------------------------- *)

(* Throughput and warm-reuse of the daemon under concurrent load:
   [serve_clients] client threads drive one in-process daemon over its
   Unix socket through three phases — cold checks (every request
   executes), the identical checks again (every request is a warm
   cache replay), and a mixed check/recheck round.  Gates: a floor on
   sustained requests/sec, warm >= [serve_warm_gate]x faster than
   cold, and every response byte-identical to the one-shot report
   computed in this process. *)

let serve_clients = 8
let serve_rps_floor = 5.0
let serve_warm_gate = 2.0

let serve_section ~ops () =
  let open Tabv_serve in
  Printf.printf
    "## verification service: %d concurrent clients over one daemon\n\n"
    serve_clients;
  let dir = Filename.temp_file "tabv_bench_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "s.sock" in
  let trace_path = Filename.concat dir "bench.trace" in
  let workers = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let config =
    { (Server.default_config ~socket ()) with workers; queue_bound = 256 }
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        ignore
          (Server.run ~on_ready:(fun () -> Atomic.set ready true) config))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  let check_job seed =
    Protocol.Check
      { model = Models.Des56_rtl; seed; ops; props = None; engine = None;
        trace_out = None }
  in
  (* The one-shot reference bytes: fresh universe, same model run,
     same rendering — what `tabv check --report-json` would write. *)
  let expected seed =
    Tabv_checker.Progression.reset_universe ();
    let properties, grid_properties =
      Models.properties_for Models.Des56_rtl None
    in
    let result =
      Models.run Models.Des56_rtl ~seed ~ops ~properties ~grid_properties
    in
    Tabv_core.Report_json.to_string
      (Models.verdict_report Models.Des56_rtl ~seed ~ops result)
    ^ "\n"
  in
  let identical = Atomic.make true in
  let note_mismatch () = Atomic.set identical false in
  let connect () =
    match Client.connect (`Unix socket) with
    | Ok c -> c
    | Error e -> failwith e
  in
  let recheck_expected = expected 42 in
  (* Record once so the mixed phase has a trace to recheck; the record
     request's own report must already match the live check's. *)
  let ctl = connect () in
  (match
     Client.request ctl
       (Protocol.Check
          { model = Models.Des56_rtl; seed = 42; ops; props = None;
            engine = None; trace_out = Some trace_path })
   with
   | Client.Result { ok = true; report; _ } ->
     if report <> recheck_expected then note_mismatch ()
   | _ -> failwith "record request failed");
  (* One phase: every client thread opens its own connection and
     drains its request list; wall time covers all of them. *)
  let run_phase jobs_for =
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init serve_clients (fun c ->
          Thread.create
            (fun () ->
              let client = connect () in
              Fun.protect
                ~finally:(fun () -> Client.close client)
                (fun () ->
                  List.iter
                    (fun (job, check_report) ->
                      match Client.request_with_retry client job with
                      | Client.Result { report; _ } -> check_report report
                      | Client.Rejected _ | Client.Failed _ ->
                        note_mismatch ())
                    (jobs_for c)))
            ())
    in
    List.iter Thread.join threads;
    Unix.gettimeofday () -. t0
  in
  let seeds c = [ 1000 + (2 * c); 1001 + (2 * c) ] in
  let expected_tbl = Hashtbl.create 32 in
  List.iter
    (fun c ->
      List.iter (fun s -> Hashtbl.replace expected_tbl s (expected s)) (seeds c))
    (List.init serve_clients Fun.id);
  let expect_seed s report =
    if report <> Hashtbl.find expected_tbl s then note_mismatch ()
  in
  let check_phase () =
    run_phase (fun c ->
        List.map (fun s -> (check_job s, expect_seed s)) (seeds c))
  in
  let t_cold = check_phase () in
  let t_warm = check_phase () in
  let t_mixed =
    run_phase (fun c ->
        let s = 1000 + (2 * c) in
        [ (check_job s, expect_seed s);
          ( Protocol.Recheck
              { trace = trace_path; props = None; workers = 1; retries = 1 },
            fun report ->
              if report <> recheck_expected then note_mismatch () ) ])
  in
  (match Client.control ctl Protocol.Shutdown with
   | Client.Shutting_down -> ()
   | _ -> note_mismatch ());
  Client.close ctl;
  Domain.join server;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let requests = (serve_clients * 2 * 3) + 1 in
  let wall = t_cold +. t_warm +. t_mixed in
  let rps = float_of_int requests /. wall in
  let warm_speedup = t_cold /. Float.max t_warm 1e-6 in
  Printf.printf "daemon           : %d in-domain workers, %d ops/check\n"
    workers ops;
  Printf.printf "cold checks      : %8.4f s  (%d requests)\n" t_cold
    (serve_clients * 2);
  Printf.printf "warm replays     : %8.4f s  (same requests, cache hits)\n"
    t_warm;
  Printf.printf "mixed round      : %8.4f s  (warm checks + rechecks)\n"
    t_mixed;
  Printf.printf "throughput       : %8.2f req/s  (floor: >= %.1f)\n" rps
    serve_rps_floor;
  Printf.printf "warm speedup     : %8.2fx  (gate: >= %.1fx)\n" warm_speedup
    serve_warm_gate;
  Printf.printf "byte-identical   : %s\n"
    (if Atomic.get identical then "yes" else "NO");
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("clients", Int serve_clients);
        ("workers", Int workers);
        ("ops", Int ops);
        ("requests", Int requests);
        ("wall_s", Float wall);
        ("cold_s", Float t_cold);
        ("warm_s", Float t_warm);
        ("mixed_s", Float t_mixed);
        ("requests_per_s", Float rps);
        ("rps_floor", Float serve_rps_floor);
        ("warm_speedup", Float warm_speedup);
        ("warm_gate", Float serve_warm_gate);
        ("identical", Bool (Atomic.get identical)) ]
  in
  Out_channel.with_open_text "BENCH_serve_throughput.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf
    "wrote BENCH_serve_throughput.json (%.2f req/s, warm %.2fx)\n\n" rps
    warm_speedup;
  (rps, warm_speedup, Atomic.get identical)

(* --- Chaos soak: the daemon under wire-level fault injection -------- *)

(* Survival gate for the serving stack.  [chaos_clients] client threads
   hammer one daemon through seeded {!Tabv_fault.Fault.Net} plans
   installed on their own outbound sockets — torn frames, truncated and
   corrupted length prefixes, slow-loris dribble, mid-request resets,
   duplicated frames, handshake garbage — reconnecting and retrying
   around every injected failure, while a fault-free control client
   pushes journaled campaigns through the same daemon.  Gates:

   - every request eventually completes and every completed report is
     byte-identical to the one-shot reference (the fault plan may cost
     retries, never answers);
   - the daemon ends drained and leak-free: no inflight keys, no
     active journals, an empty state dir, and no file descriptors
     leaked in this process;
   - the hooks are free when idle: a latent (empty-plan) interpose on
     a warm request stream costs at most [chaos_idle_gate_pct] over
     the plain path (or [chaos_idle_slack_s] absolute, whichever is
     larger), min over interleaved rounds. *)

let chaos_clients = 8
let chaos_requests = 6
let chaos_attempt_cap = 60
let chaos_idle_gate_pct = 2.0

(* Absolute slack under the percentage gate: a warm round trip bottoms
   out around 45 us, so [chaos_idle_gate_pct] of it is under a
   microsecond — below [Unix.gettimeofday]'s useful resolution and the
   socket noise floor of a shared box.  The gate exists to catch a hook
   that does real per-frame work (allocation bursts, serialization),
   which costs tens of microseconds per request; a minimum-latency diff
   under this slack is measurement noise, not a tax. *)
let chaos_idle_slack_s = 20e-6

let count_open_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

let chaos_section ~ops () =
  let open Tabv_serve in
  let module Net = Tabv_fault.Fault.Net in
  Printf.printf
    "## chaos soak: %d fault-injected clients over one daemon\n\n"
    chaos_clients;
  let fds_before = count_open_fds () in
  let metrics = Tabv_obs.Metrics.create ~enabled:true () in
  let dir = Filename.temp_file "tabv_bench_chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let state = Filename.concat dir "state" in
  Unix.mkdir state 0o700;
  let socket = Filename.concat dir "s.sock" in
  let workers = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let config =
    { (Server.default_config ~socket ()) with
      workers;
      queue_bound = 64;
      conn_idle_timeout_s = 2.0;
      state_dir = Some state;
      obs = Some metrics }
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        ignore
          (Server.run ~on_ready:(fun () -> Atomic.set ready true) config))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  (* Four distinct seeds shared by all clients: the first completion of
     each executes cold, the rest replay warm — the soak hammers the
     wire, not the simulator. *)
  let seeds = [ 3001; 3002; 3003; 3004 ] in
  let expected seed =
    Tabv_checker.Progression.reset_universe ();
    let properties, grid_properties =
      Models.properties_for Models.Des56_rtl None
    in
    let result =
      Models.run Models.Des56_rtl ~seed ~ops ~properties ~grid_properties
    in
    Tabv_core.Report_json.to_string
      (Models.verdict_report Models.Des56_rtl ~seed ~ops result)
    ^ "\n"
  in
  let expected_tbl = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace expected_tbl s (expected s)) seeds;
  let check_job seed =
    Protocol.Check
      { model = Models.Des56_rtl; seed; ops; props = None; engine = None;
        trace_out = None }
  in
  let mismatches = Atomic.make 0 in
  let exhausted = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let reconnects = Atomic.make 0 in
  (* One armed plan per client, surviving its reconnects: the frame
     counter and trigger count span the whole soak. *)
  let armed =
    Array.init chaos_clients (fun c ->
        Net.arm (Net.generate ~seed:(900 + c) ~frames:10 ~count:8))
  in
  let chaos_thread c =
    let conn = ref None in
    let drop () =
      match !conn with
      | Some client ->
        Client.close client;
        conn := None
      | None -> ()
    in
    let rec get tries =
      match !conn with
      | Some client -> client
      | None ->
        (match Client.connect (`Unix socket) with
         | Ok client ->
           Client.interpose client (Net.apply armed.(c));
           Atomic.incr reconnects;
           conn := Some client;
           client
         | Error e ->
           if tries = 0 then failwith e;
           Thread.delay 0.01;
           get (tries - 1))
    in
    for r = 0 to chaos_requests - 1 do
      let seed = List.nth seeds ((c + r) mod List.length seeds) in
      let rec go attempt =
        if attempt > chaos_attempt_cap then Atomic.incr exhausted
        else
          match Client.request (get 500) (check_job seed) with
          | Client.Result { report; _ } ->
            Atomic.incr completed;
            if report <> Hashtbl.find expected_tbl seed then
              Atomic.incr mismatches
          | Client.Rejected _ ->
            Thread.delay 0.05;
            go (attempt + 1)
          | Client.Failed _ ->
            drop ();
            go (attempt + 1)
      in
      go 1
    done;
    drop ()
  in
  (* The control client sees no faults: its journaled campaigns must
     run to completion through whatever the chaos clients do to the
     daemon, and must leave no journal behind. *)
  let manifest_json =
    let job level =
      Tabv_core.Report_json.Assoc
        [ ("duv", Tabv_core.Report_json.String "des56");
          ("level", Tabv_core.Report_json.String level);
          ("seed", Tabv_core.Report_json.Int 1);
          ("ops", Tabv_core.Report_json.Int 10) ]
    in
    Tabv_core.Report_json.Assoc
      [ ("jobs", Tabv_core.Report_json.List [ job "rtl"; job "tlm-ca" ]) ]
  in
  let expected_campaign =
    match Tabv_campaign.Campaign.manifest_of_json manifest_json with
    | Error msg -> failwith msg
    | Ok m ->
      Tabv_core.Report_json.to_string
        (Tabv_campaign.Campaign.report_json
           (Tabv_campaign.Campaign.run ~workers:2 ~retries:1
              m.Tabv_campaign.Campaign.manifest_jobs))
      ^ "\n"
  in
  let campaigns = 3 in
  let campaigns_ok = Atomic.make 0 in
  let control_thread () =
    match Client.connect (`Unix socket) with
    | Error e -> failwith e
    | Ok client ->
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          for _ = 1 to campaigns do
            match
              Client.request_with_retry ~attempts:30 client
                (Protocol.Campaign
                   { manifest = manifest_json; workers = 2;
                     retries = Some 1; journal = true })
            with
            | Client.Result { report; _ } when report = expected_campaign ->
              Atomic.incr campaigns_ok
            | _ -> ()
          done)
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Thread.create control_thread ()
    :: List.init chaos_clients (fun c -> Thread.create chaos_thread c)
  in
  List.iter Thread.join threads;
  let soak_s = Unix.gettimeofday () -. t0 in
  let triggered =
    Array.fold_left (fun a s -> a + Net.net_triggered s) 0 armed
  in
  let frames =
    Array.fold_left (fun a s -> a + Net.frames_sent s) 0 armed
  in
  (* Armed-but-idle overhead: two clean connections replay the same
     warm request in strict alternation — one bare, one with a latent
     empty-plan interpose installed — and the minimum single-request
     latency per arm is compared.  The min over hundreds of identical
     round trips is the scheduling-noise-free cost of the path, and a
     hook tax would be a constant add to exactly that path; burst
     totals at this scale are dominated by thread-scheduling jitter.
     The latent hook's only work is counting the frame and scanning an
     empty plan. *)
  let idle_samples = 400 in
  let warm_job = check_job (List.hd seeds) in
  let idle_client latent =
    match Client.connect (`Unix socket) with
    | Error e -> failwith e
    | Ok client ->
      if latent then
        Client.interpose client (Net.apply (Net.arm Net.no_faults));
      client
  in
  let plain_client = idle_client false in
  let latent_client = idle_client true in
  let once client =
    let t0 = Unix.gettimeofday () in
    (match Client.request client warm_job with
     | Client.Result _ -> ()
     | Client.Rejected _ | Client.Failed _ -> Atomic.incr mismatches);
    Unix.gettimeofday () -. t0
  in
  ignore (once plain_client);
  ignore (once latent_client);
  let min_plain = ref infinity and min_latent = ref infinity in
  for _ = 1 to idle_samples do
    min_plain := Float.min !min_plain (once plain_client);
    min_latent := Float.min !min_latent (once latent_client)
  done;
  let idle_diff_s = !min_latent -. !min_plain in
  let idle_overhead_pct = idle_diff_s /. !min_plain *. 100. in
  let idle_gate_ok =
    idle_overhead_pct <= chaos_idle_gate_pct || idle_diff_s <= chaos_idle_slack_s
  in
  (match Client.control plain_client Protocol.Shutdown with
   | Client.Shutting_down -> ()
   | _ -> Atomic.incr mismatches);
  Client.close plain_client;
  Client.close latent_client;
  Domain.join server;
  (* Leak audit, after the daemon has fully wound down: the probes
     still answer (they read the server's tables), the state dir must
     hold nothing, and this process must be back to its fd baseline. *)
  let gauge_after name =
    match Tabv_obs.Metrics.find metrics name with
    | Some (Tabv_obs.Metrics.Gauge n) -> n
    | _ -> -1
  in
  let inflight_after = gauge_after "serve.inflight_keys" in
  let journals_after = gauge_after "serve.active_journals" in
  let state_clean =
    match Sys.readdir state with
    | [||] -> true
    | _ -> false
  in
  Array.iter
    (fun f -> try Sys.remove (Filename.concat state f) with Sys_error _ -> ())
    (try Sys.readdir state with Sys_error _ -> [||]);
  (try Unix.rmdir state with Unix.Unix_error _ -> ());
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let fd_leak =
    match (fds_before, count_open_fds ()) with
    | Some before, Some after -> Some (after - before)
    | _ -> None
  in
  let requests = chaos_clients * chaos_requests in
  let survived =
    Atomic.get mismatches = 0
    && Atomic.get exhausted = 0
    && Atomic.get completed = requests
    && Atomic.get campaigns_ok = campaigns
    && triggered > 0
  in
  let drained =
    inflight_after = 0 && journals_after = 0 && state_clean
  in
  Printf.printf "daemon           : %d in-domain workers, %d ops/check\n"
    workers ops;
  Printf.printf "soak             : %8.2f s  (%d requests, %d campaigns)\n"
    soak_s requests campaigns;
  Printf.printf "faults           : %d armed, %d triggered over %d frames\n"
    (Array.fold_left (fun a s -> a + Net.armed_faults s) 0 armed)
    triggered frames;
  Printf.printf "connections      : %d (incl. reconnects after resets)\n"
    (Atomic.get reconnects);
  Printf.printf "completed        : %d/%d  (mismatches %d, exhausted %d)\n"
    (Atomic.get completed) requests (Atomic.get mismatches)
    (Atomic.get exhausted);
  Printf.printf "journaled runs   : %d/%d\n" (Atomic.get campaigns_ok) campaigns;
  Printf.printf "drained          : inflight %d, journals %d, state clean %b\n"
    inflight_after journals_after state_clean;
  Printf.printf "fd leak          : %s\n"
    (match fd_leak with
     | Some n -> string_of_int n
     | None -> "unmeasurable (no /proc)");
  Printf.printf
    "idle hook cost   : %+7.2f %%  (%+.1f us on a %.0f us floor; gate: \
     <= %.1f%% or <= %.0f us)\n"
    idle_overhead_pct (idle_diff_s *. 1e6) (!min_plain *. 1e6)
    chaos_idle_gate_pct (chaos_idle_slack_s *. 1e6);
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "serve_chaos");
        ("clients", Int chaos_clients);
        ("requests_per_client", Int chaos_requests);
        ("ops", Int ops);
        ("workers", Int workers);
        ("soak_s", Float soak_s);
        ("faults_armed",
         Int (Array.fold_left (fun a s -> a + Net.armed_faults s) 0 armed));
        ("faults_triggered", Int triggered);
        ("frames_sent", Int frames);
        ("connections", Int (Atomic.get reconnects));
        ("completed", Int (Atomic.get completed));
        ("mismatches", Int (Atomic.get mismatches));
        ("exhausted", Int (Atomic.get exhausted));
        ("journaled_campaigns_ok", Int (Atomic.get campaigns_ok));
        ("inflight_keys_after", Int inflight_after);
        ("active_journals_after", Int journals_after);
        ("state_dir_clean", Bool state_clean);
        ( "fd_leak",
          match fd_leak with Some n -> Int n | None -> Null );
        ("idle_overhead_pct", Float idle_overhead_pct);
        ("idle_min_plain_us", Float (!min_plain *. 1e6));
        ("idle_min_latent_us", Float (!min_latent *. 1e6));
        ("idle_gate_pct", Float chaos_idle_gate_pct);
        ("idle_slack_us", Float (chaos_idle_slack_s *. 1e6));
        ("idle_gate_ok", Bool idle_gate_ok);
        ("survived", Bool survived);
        ("drained", Bool drained) ]
  in
  Out_channel.with_open_text "BENCH_serve_chaos.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf
    "wrote BENCH_serve_chaos.json (%d faults triggered, idle cost %+.2f%%)\n\n"
    triggered idle_overhead_pct;
  (survived, drained, fd_leak, idle_overhead_pct, idle_gate_ok)

(* --- Durability: power-cut recovery soak + IO seam overhead -------- *)

(* The byte-identity contract now rests on durable storage, so the
   storage layer gets the same treatment the wire got in the chaos
   soak: run a journaled campaign with the [Fault.Io] observer
   recording every write boundary, then simulate a power cut at each
   boundary (the journal truncated to exactly the bytes that were
   durable at that instant), resume every crash image, and require
   each resumed report byte-identical to the uninterrupted run with
   no [*.tmp] debris left anywhere.  An ENOSPC round rides along: a
   budgeted disk cuts a mid-campaign append short (a torn, CRC-failing
   record), the run surfaces an honest [Io_error], and a faultless
   resume salvages the journaled prefix and still reports identically.
   Finally the seam itself is priced: appends through the hookless
   [Tabv_core.Io] path must cost within [durability_gate_pct] of a raw
   out_channel write+fsync loop — the production tax of hookability is
   ~zero or the seam does not ship. *)

let durability_gate_pct = 2.0

let durability_section ?(ops = 60) ?(append_count = 50_000) ?(repeat = 5) () =
  print_endline
    "=== Durability: power-cut recovery soak (journaled campaign) ===";
  let open Tabv_campaign in
  let open Tabv_campaign.Campaign in
  let jobs =
    expand_matrix ~duvs:[ Des56; Colorconv ] ~levels:[ Rtl; Tlm_ca ]
      ~seeds:[ 1; 2 ] ~ops ()
  in
  let fp = fingerprint ~retries:1 jobs in
  let dir = Filename.temp_file "tabv_bench_dur" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Journal.state_path ~dir ~kind:journal_kind ~fingerprint:fp in
  let with_journal ~resume f =
    match Journal.open_ ~path ~kind:journal_kind ~fingerprint:fp ~resume () with
    | Error msg -> failwith ("durability bench: " ^ msg)
    | Ok j -> Fun.protect ~finally:(fun () -> Journal.close j) (fun () -> f j)
  in
  let report_of summary = Tabv_core.Report_json.to_string (report_json summary) in
  (* Uninterrupted run, with the observer hook enumerating the write
     boundaries a real crash could stop at. *)
  let observer = Tabv_fault.Fault.Io.arm (Tabv_fault.Fault.Io.plan ~name:"observe" ~scope:".journal" []) in
  Tabv_fault.Fault.Io.install observer;
  let expected =
    Fun.protect ~finally:Tabv_fault.Fault.Io.uninstall (fun () ->
        with_journal ~resume:false (fun journal ->
            report_of (run ~workers:2 ~journal jobs)))
  in
  let full = In_channel.with_open_bin path In_channel.input_all in
  let boundaries = Tabv_fault.Fault.Io.write_boundaries observer path in
  let header_len =
    match String.index_opt full '\n' with
    | Some i -> i + 1
    | None -> failwith "durability bench: journal has no header line"
  in
  (* Every prefix a power cut could leave: nothing, the header commit,
     and each fsynced append boundary. *)
  let cuts = 0 :: header_len :: boundaries in
  let resumes = ref 0 and mismatches = ref 0 in
  List.iter
    (fun cut ->
      let cut = min cut (String.length full) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 cut));
      let resumed = with_journal ~resume:true (fun journal -> run ~workers:2 ~journal jobs) in
      incr resumes;
      if report_of resumed <> expected then incr mismatches)
    cuts;
  (* ENOSPC round: the disk fills mid-campaign, cutting one append
     short — a torn record the CRC framing must refuse to replay.  The
     run dies with an honest storage error; clearing the fault and
     resuming must still converge on the identical report. *)
  let enospc_ok =
    Sys.remove path;
    let budget =
      match boundaries with
      | _ :: _ ->
        (* Mid-record, halfway down the journal: a short write. *)
        List.nth boundaries (List.length boundaries / 2) + 7
      | [] -> header_len + 7
    in
    let armed =
      Tabv_fault.Fault.Io.arm
        (Tabv_fault.Fault.Io.plan ~name:"enospc" ~scope:".journal"
           [ Tabv_fault.Fault.Io.Enospc_after { bytes = budget } ])
    in
    Tabv_fault.Fault.Io.install armed;
    let died_honestly =
      Fun.protect ~finally:Tabv_fault.Fault.Io.uninstall (fun () ->
          match with_journal ~resume:false (fun journal -> run ~workers:2 ~journal jobs) with
          | _ -> false (* the budget should have been exceeded *)
          | exception Tabv_core.Io.Io_error { error = Unix.ENOSPC; _ } -> true)
    in
    let recovered =
      with_journal ~resume:true (fun journal ->
          report_of (run ~workers:2 ~journal jobs) = expected)
    in
    died_honestly && recovered
  in
  (* Debris check: no orphaned temp files anywhere in the state dir. *)
  let stale_tmp =
    Sys.readdir dir |> Array.to_list
    |> List.filter Tabv_core.Io.is_temp_path
    |> List.length
  in
  (* Passthrough price of the IO seam on the append path: framed
     buffered appends through hookless [Tabv_core.Io] vs a raw
     out_channel write+flush loop on the same bytes, one fsync at the
     end of each batch.  Per-append fsyncs would drown the seam's CPU
     cost in device-latency noise (±15% run to run, against a 2%
     gate); the hookability tax lives in [write]/[flush], which is
     what this prices. *)
  let record =
    Tabv_core.Report_json.to_string
      (Tabv_core.Report_json.Assoc
         [ ("id", Tabv_core.Report_json.Int 12);
           ("record", Tabv_core.Report_json.String (String.make 160 'r')) ])
  in
  let line = record ^ "\n" in
  let raw_path = Filename.concat dir "baseline.raw" in
  let run_raw () =
    let oc = open_out_bin raw_path in
    for _ = 1 to append_count do
      output_string oc line;
      flush oc
    done;
    Unix.fsync (Unix.descr_of_out_channel oc);
    close_out oc
  in
  let io_path = Filename.concat dir "baseline.io" in
  let run_io () =
    let io = Tabv_core.Io.create io_path in
    for _ = 1 to append_count do
      Tabv_core.Io.write io line;
      Tabv_core.Io.flush io
    done;
    Tabv_core.Io.fsync io;
    Tabv_core.Io.close io
  in
  (* Interleave the two sides within each repeat (after one warmup
     apiece) so page-cache and writeback drift hits both equally;
     min-of-repeats then cancels what remains. *)
  run_raw ();
  run_io ();
  let t_raw = ref infinity and t_io = ref infinity in
  for _ = 1 to repeat do
    Gc.major ();
    t_raw := min !t_raw (time_run run_raw);
    t_io := min !t_io (time_run run_io)
  done;
  let t_raw = !t_raw and t_io = !t_io in
  let overhead_pct = (t_io -. t_raw) /. t_raw *. 100. in
  let identical = !mismatches = 0 in
  (* Clean up the scratch directory. *)
  Array.iter
    (fun entry -> try Sys.remove (Filename.concat dir entry) with Sys_error _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Printf.printf "jobs                : %d (ops=%d each)\n" (List.length jobs) ops;
  Printf.printf "write boundaries    : %d (journal %d bytes)\n"
    (List.length boundaries) (String.length full);
  Printf.printf "crash images resumed: %d (mismatches: %d)\n" !resumes !mismatches;
  Printf.printf "enospc round        : %s\n" (if enospc_ok then "honest error + identical resume" else "FAILED");
  Printf.printf "stale temp files    : %d\n" stale_tmp;
  Printf.printf "append path         : raw %8.3f s, io seam %8.3f s (%+.2f%%, gate <= %.1f%%)\n"
    t_raw t_io overhead_pct durability_gate_pct;
  let open Tabv_core.Report_json in
  let json =
    Assoc
      [ ("benchmark", String "io_durability");
        ("jobs", Int (List.length jobs));
        ("ops_per_job", Int ops);
        ("journal_bytes", Int (String.length full));
        ("write_boundaries", Int (List.length boundaries));
        ("crash_images_resumed", Int !resumes);
        ("resume_mismatches", Int !mismatches);
        ("resumes_identical", Bool identical);
        ("enospc_recovered", Bool enospc_ok);
        ("stale_tmp_files", Int stale_tmp);
        ("appends_timed", Int append_count);
        ("seconds_raw_append", Float t_raw);
        ("seconds_io_append", Float t_io);
        ("append_overhead_pct", Float overhead_pct);
        ("gate_pct", Float durability_gate_pct) ]
  in
  Out_channel.with_open_text "BENCH_io_durability.json" (fun oc ->
    Out_channel.output_string oc (to_string json);
    Out_channel.output_char oc '\n');
  Printf.printf
    "wrote BENCH_io_durability.json (%d crash images, overhead %+.2f%%)\n\n"
    !resumes overhead_pct;
  (identical, stale_tmp, enospc_ok, overhead_pct)

(* --- driver ------------------------------------------------------- *)

(* Hidden subprocess-executor hook: the isolation-overhead gate runs
   campaigns on the subprocess executor with the default worker argv,
   which re-executes *this* binary with [_worker]. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "_worker" then begin
    Tabv_campaign.Worker.main ();
    exit 0
  end

let () =
  let quick = Array.exists (fun a -> a = "--quick") Sys.argv in
  let skip_bechamel = Array.exists (fun a -> a = "--no-bechamel") Sys.argv in
  let cache_only = Array.exists (fun a -> a = "--cache-only") Sys.argv in
  let obs_only = Array.exists (fun a -> a = "--obs-only") Sys.argv in
  let campaign_only = Array.exists (fun a -> a = "--campaign-only") Sys.argv in
  let isolate_only = Array.exists (fun a -> a = "--isolate-only") Sys.argv in
  let fault_only = Array.exists (fun a -> a = "--fault-only") Sys.argv in
  let sched_only = Array.exists (fun a -> a = "--sched-only") Sys.argv in
  let trace_only = Array.exists (fun a -> a = "--trace-only") Sys.argv in
  let serve_only = Array.exists (fun a -> a = "--serve-only") Sys.argv in
  let chaos_only = Array.exists (fun a -> a = "--chaos-only") Sys.argv in
  let durability_only =
    Array.exists (fun a -> a = "--durability-only") Sys.argv
  in
  let des_count = if quick then 1000 else 8000 in
  let pixel_count = if quick then 20_000 else 150_000 in
  if obs_only then begin
    (* CI entry point (bench/check.sh): only the instrumentation
       overhead measurement, with a hard ceiling on the cost of an
       enabled registry. *)
    let overhead =
      obs_overhead_section ~ops_count:(if quick then 1000 else 2000) ()
    in
    if overhead > obs_gate_pct then begin
      Printf.eprintf "FAIL: metrics-enabled overhead %.2f%% > %.1f%%\n" overhead
        obs_gate_pct;
      exit 1
    end;
    exit 0
  end;
  if campaign_only then begin
    (* CI entry point (bench/check.sh): multicore scaling of the
       campaign runner, gated on byte-identical reports and a >= 2x
       speedup at 4 workers.  Skips (exit 0, with a JSON record of
       why) on machines that cannot host 4 domains. *)
    if Domain.recommended_domain_count () < campaign_workers then begin
      campaign_skip ();
      exit 0
    end;
    let speedup, identical =
      campaign_section ~ops:(if quick then 100 else 300) ()
    in
    if not identical then begin
      Printf.eprintf
        "FAIL: campaign reports differ between 1 and %d workers\n"
        campaign_workers;
      exit 1
    end;
    if speedup < campaign_gate then begin
      Printf.eprintf "FAIL: campaign scaling %.2fx < %.1fx\n" speedup
        campaign_gate;
      exit 1
    end;
    exit 0
  end;
  if isolate_only then begin
    (* CI entry point (bench/check.sh): the price of process
       isolation — the subprocess executor must produce the same
       report bytes as the in-domain pool and cost at most
       [isolate_gate]x its wall-clock on a crash-free matrix. *)
    let ratio, identical = isolate_section ~ops:(if quick then 60 else 150) () in
    if not identical then begin
      Printf.eprintf
        "FAIL: subprocess and in-domain campaign reports differ\n";
      exit 1
    end;
    if ratio > isolate_gate then begin
      Printf.eprintf "FAIL: subprocess isolation overhead %.2fx > %.1fx\n"
        ratio isolate_gate;
      exit 1
    end;
    exit 0
  end;
  if fault_only then begin
    (* CI entry point (bench/check.sh): the fault subsystem's
       zero-cost claim — a latent plan plus the qualification guard
       must neither slow the densest run by more than the gate nor
       perturb it. *)
    let overhead, unperturbed =
      fault_overhead_section ~ops_count:(if quick then 1000 else 2000) ()
    in
    if not unperturbed then begin
      Printf.eprintf
        "FAIL: latent fault plan / guard perturbed the reference run\n";
      exit 1
    end;
    if overhead > fault_gate_pct then begin
      Printf.eprintf "FAIL: armed-but-idle fault overhead %.2f%% > %.1f%%\n"
        overhead fault_gate_pct;
      exit 1
    end;
    exit 0
  end;
  if sched_only then begin
    (* CI entry point (bench/check.sh): compiled-vs-classic on the
       scheduling-dense netlist, with a hard floor on the speedup and
       byte-identity of the cache-bench metrics documents. *)
    let speedup, identical =
      sched_section
        ~cycles:(if quick then 1_000 else 4_000)
        ~ops_count:(if quick then 500 else 1000)
        ()
    in
    if not identical then begin
      Printf.eprintf "FAIL: metrics documents differ between engines\n";
      exit 1
    end;
    if speedup < sched_gate then begin
      Printf.eprintf "FAIL: compiled scheduler speedup %.2fx < %.1fx\n" speedup
        sched_gate;
      exit 1
    end;
    exit 0
  end;
  if trace_only then begin
    (* CI entry point (bench/check.sh): the simulate-once / check-many
       contract — offline recheck must beat live re-simulation by the
       speedup floor, the binary trace must stay under the VCD size
       ceiling, and the two verdict reports must match byte for
       byte. *)
    let speedup, size_pct, identical =
      trace_section ~ops_count:(if quick then 1500 else 4000) ()
    in
    if not identical then begin
      Printf.eprintf "FAIL: live and recheck verdict reports differ\n";
      exit 1
    end;
    if speedup < trace_gate_speedup then begin
      Printf.eprintf "FAIL: recheck speedup %.2fx < %.1fx\n" speedup
        trace_gate_speedup;
      exit 1
    end;
    if size_pct > trace_gate_size_pct then begin
      Printf.eprintf "FAIL: trace is %.1f%% of the VCD > %.0f%%\n" size_pct
        trace_gate_size_pct;
      exit 1
    end;
    exit 0
  end;
  if serve_only then begin
    (* CI entry point (bench/check.sh): the daemon under concurrent
       load — sustained requests/sec over the floor, warm replays at
       least [serve_warm_gate]x faster than cold execution, and every
       socket response byte-identical to the one-shot report. *)
    let rps, warm_speedup, identical =
      serve_section ~ops:(if quick then 100 else 250) ()
    in
    if not identical then begin
      Printf.eprintf "FAIL: serve responses differ from one-shot reports\n";
      exit 1
    end;
    if rps < serve_rps_floor then begin
      Printf.eprintf "FAIL: serve throughput %.2f req/s < %.1f\n" rps
        serve_rps_floor;
      exit 1
    end;
    if warm_speedup < serve_warm_gate then begin
      Printf.eprintf "FAIL: warm replay speedup %.2fx < %.1fx\n" warm_speedup
        serve_warm_gate;
      exit 1
    end;
    exit 0
  end;
  if chaos_only then begin
    (* CI entry point (bench/check.sh): the daemon under seeded
       wire-level fault injection — every request must eventually
       complete byte-identically, the daemon must end drained and
       leak-free, and the latent net-fault hook must cost at most
       [chaos_idle_gate_pct] on a warm request stream. *)
    let survived, drained, fd_leak, idle_overhead_pct, idle_gate_ok =
      chaos_section ~ops:(if quick then 60 else 150) ()
    in
    if not survived then begin
      Printf.eprintf
        "FAIL: chaos soak lost, corrupted or never-triggered requests \
         (see BENCH_serve_chaos.json)\n";
      exit 1
    end;
    if not drained then begin
      Printf.eprintf
        "FAIL: daemon ended with leaked reservations, journals or state \
         files\n";
      exit 1
    end;
    (match fd_leak with
     | Some n when n <> 0 ->
       Printf.eprintf "FAIL: %d file descriptor(s) leaked across the soak\n" n;
       exit 1
     | Some _ | None -> ());
    if not idle_gate_ok then begin
      Printf.eprintf
        "FAIL: latent net-fault hook costs %.2f%% > %.1f%% (and more than \
         %.0f us)\n"
        idle_overhead_pct chaos_idle_gate_pct (chaos_idle_slack_s *. 1e6);
      exit 1
    end;
    exit 0
  end;
  if durability_only then begin
    (* CI entry point (bench/check.sh): the power-cut recovery soak —
       every crash image the write-boundary enumeration can produce
       must resume to a byte-identical report, an ENOSPC mid-append
       must fail honestly and still recover, no temp-file debris may
       survive, and the hookless IO seam must cost at most
       [durability_gate_pct] on the flushed append path. *)
    let identical, stale_tmp, enospc_ok, overhead_pct =
      durability_section ~ops:(if quick then 30 else 60)
        ~append_count:(if quick then 20_000 else 50_000) ()
    in
    if not identical then begin
      Printf.eprintf
        "FAIL: a resumed crash image produced a report that differs from \
         the uninterrupted run (see BENCH_io_durability.json)\n";
      exit 1
    end;
    if stale_tmp <> 0 then begin
      Printf.eprintf "FAIL: %d stale temp file(s) left behind\n" stale_tmp;
      exit 1
    end;
    if not enospc_ok then begin
      Printf.eprintf
        "FAIL: ENOSPC round did not fail honestly or did not resume to \
         the identical report\n";
      exit 1
    end;
    if overhead_pct > durability_gate_pct then begin
      Printf.eprintf "FAIL: IO seam append overhead %.2f%% > %.1f%%\n"
        overhead_pct durability_gate_pct;
      exit 1
    end;
    exit 0
  end;
  if cache_only then begin
    (* CI entry point (bench/check.sh): only the interned-vs-legacy
       replay comparison, with a hard floor on the speedup. *)
    let overall =
      checker_cache_section ~ops_count:(if quick then 500 else 1000) ()
    in
    if overall < 1.5 then begin
      Printf.eprintf "FAIL: checker cache speedup %.2fx < 1.5x\n" overall;
      exit 1
    end;
    exit 0
  end;
  Printf.printf
    "tabv benchmark harness (workload: %d DES56 ops, %d ColorConv pixels)%s\n\n"
    des_count pixel_count
    (if quick then " [--quick]" else "");
  fig3 ();
  let des_ops = Workload.des56 ~seed:42 ~count:des_count () in
  let cc_bursts = Workload.colorconv ~seed:42 ~count:pixel_count () in
  print_table_header "DES56";
  let des_rows = table_for (des56_levels des_ops) in
  print_table_header "ColorConv";
  let cc_rows = table_for (colorconv_levels cc_bursts) in
  fig6 ~des_rows ~cc_rows;
  ablation_naive_scaling (Workload.des56 ~seed:42 ~count:(des_count / 4) ());
  ablation_grid_wrapper (Workload.des56 ~seed:42 ~count:(des_count / 4) ());
  ablation_checker_backend (Workload.des56 ~seed:42 ~count:(des_count / 4) ());
  ablation_wrapper_stats (Workload.des56 ~seed:42 ~count:(des_count / 4) ());
  ignore (checker_cache_section ~ops_count:(des_count / 4) ());
  ignore (sched_section ~ops_count:(des_count / 4) ());
  ignore (obs_overhead_section ~ops_count:(des_count / 4) ());
  ignore (fault_overhead_section ~ops_count:(des_count / 4) ());
  (if Domain.recommended_domain_count () >= campaign_workers then
     ignore (campaign_section ~ops:(des_count / 20) ())
   else campaign_skip ());
  ignore (isolate_section ~ops:(des_count / 50) ());
  ignore (serve_section ~ops:(des_count / 10) ());
  ignore (chaos_section ~ops:(des_count / 50) ());
  ignore (durability_section ~ops:(des_count / 50) ());
  memctrl_section (des_count * 2);
  if not skip_bechamel then bechamel_section ();
  print_endline "done."
