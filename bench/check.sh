#!/usr/bin/env sh
# Local / CI gate for the checker-engine refactor.
#
#   sh bench/check.sh
#
# Runs, in order:
#   1. dune build @fmt   (only when ocamlformat is installed — the
#                         format check is advisory on machines without it)
#   2. dune build        (whole tree, warnings-as-errors per dune-project)
#   3. dune runtest      (tier-1: unit + property-based suites, including
#                         the interned-vs-legacy engine equivalence)
#   4. bench/main.exe --quick --cache-only
#                        (replays recorded traces under both engines,
#                         asserts outcome equivalence, writes
#                         BENCH_checker_cache.json, and FAILS if the
#                         interned engine is below the 1.5x speedup floor)
#   5. bench/main.exe --quick --obs-only
#                        (measures the cost of an enabled metrics
#                         registry on the densest checker configuration,
#                         writes BENCH_obs_overhead.json, and FAILS if
#                         metrics-enabled activation throughput drops
#                         more than 5% below metrics-disabled)
#   6. bench/main.exe --quick --campaign-only
#                        (times the same campaign job matrix on 1 and 4
#                         worker domains, asserts byte-identical report
#                         JSON, writes BENCH_campaign_scaling.json, and
#                         FAILS below the 2x speedup floor; on machines
#                         with fewer than 4 recommended domains the
#                         gate records a skip and exits 0)
#   7. bench/main.exe --quick --fault-only
#                        (measures the armed-but-idle cost of the fault
#                         subsystem -- a latent plan plus the
#                         qualification guard on the densest checker
#                         run -- writes BENCH_fault_overhead.json, and
#                         FAILS if the slowdown exceeds 2% or the
#                         latent plan perturbs the run)
#   8. bench/main.exe --quick --isolate-only
#                        (times the same crash-free job matrix on the
#                         in-domain and subprocess executors, asserts
#                         byte-identical report JSON across executors,
#                         writes BENCH_isolate_overhead.json, and
#                         FAILS if process isolation costs more than
#                         1.5x the in-domain pool)
#   9. bench/main.exe --quick --sched-only
#                        (times a scheduling-dense netlist under the
#                         classic and compiled kernel engines, asserts
#                         byte-identical metrics documents on the
#                         cache-bench workload, writes
#                         BENCH_sched_speedup.json, and FAILS if the
#                         compiled engine is below the 3x speedup
#                         floor)
#  10. bench/main.exe --quick --trace-only
#                        (records one des56-rtl run to a compact binary
#                         trace, times live check vs offline recheck on
#                         a 10-property invariant set, asserts the two
#                         verdict reports are byte-identical, writes
#                         BENCH_trace_recheck.json, and FAILS if the
#                         recheck is below the 5x speedup floor or the
#                         trace exceeds 20% of the equivalent VCD)
#  11. bench/main.exe --quick --serve-only
#                        (boots a tabv-serve daemon with a warm worker
#                         pool, drives it with 8 concurrent clients
#                         through cold, warm and mixed check/recheck
#                         rounds, asserts every socket response is
#                         byte-identical to the one-shot report, writes
#                         BENCH_serve_throughput.json, and FAILS below
#                         the 5 req/s throughput floor or the 2x
#                         warm-replay speedup gate)
#  12. bench/main.exe --quick --chaos-only
#                        (boots a tabv-serve daemon and soaks it with 8
#                         clients, each with a seeded wire-fault plan
#                         interposed -- torn frames, truncated and
#                         corrupted headers, slow-loris trickles,
#                         mid-frame resets, duplicated frames and
#                         handshake garbage -- plus journaled campaigns
#                         riding along; asserts every completed request
#                         stays byte-identical to the one-shot report,
#                         the daemon ends drained and leak-free (no
#                         inflight keys, journals, stale state files or
#                         fds), writes BENCH_serve_chaos.json, and
#                         FAILS if anything leaks or the armed-but-idle
#                         cost of the net-fault hook exceeds 2% and
#                         20 us absolute)
#  13. bench/main.exe --quick --durability-only
#                        (runs a journaled campaign under the Fault.Io
#                         observer to enumerate every durable write
#                         boundary, truncates the journal at each one
#                         -- simulated power cuts -- and resumes every
#                         crash image, asserting each resumed report is
#                         byte-identical to the uninterrupted run; also
#                         fills the disk mid-append (ENOSPC) expecting
#                         an honest storage error plus an identical
#                         faultless resume, sweeps for stale *.tmp
#                         debris, writes BENCH_io_durability.json, and
#                         FAILS on any mismatch, debris, or if the
#                         hookless IO seam costs more than 2% over a
#                         raw fsynced append loop)
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping format check (ocamlformat not installed)"
fi

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== checker-cache bench gate (>= 1.5x)"
dune exec bench/main.exe -- --quick --cache-only

echo "== observability overhead gate (<= 5%)"
dune exec bench/main.exe -- --quick --obs-only

echo "== campaign scaling gate (>= 2x at 4 workers; skips below 4 domains)"
dune exec bench/main.exe -- --quick --campaign-only

echo "== fault-subsystem overhead gate (<= 2% armed-but-idle)"
dune exec bench/main.exe -- --quick --fault-only

echo "== subprocess isolation overhead gate (<= 1.5x in-domain)"
dune exec bench/main.exe -- --quick --isolate-only

echo "== compiled scheduler gate (>= 3x on the scheduling-dense netlist)"
dune exec bench/main.exe -- --quick --sched-only

echo "== trace recheck gate (>= 5x, <= 20% of VCD)"
dune exec bench/main.exe -- --quick --trace-only

echo "== serve throughput gate (8 clients; floor >= 5 req/s, warm >= 2x, byte-identical)"
dune exec bench/main.exe -- --quick --serve-only

echo "== chaos soak gate (8 faulted clients; drained, leak-free, byte-identical)"
dune exec bench/main.exe -- --quick --chaos-only

echo "== durability gate (power-cut recovery soak; byte-identical resumes, <= 2% seam overhead)"
dune exec bench/main.exe -- --quick --durability-only

echo "== all checks passed"
