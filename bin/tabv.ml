(* tabv — RTL-to-TLM property abstraction toolbox.

   Subcommands:
     abstract  rewrite an RTL property file into TLM properties
     check     simulate a built-in DUV model with checkers attached
     record    check + capture the evaluation trace to a binary file
     recheck   re-check properties against a recorded trace, in parallel
     campaign  run a job matrix on a pool of worker domains
     qualify   build the fault x property detection matrix
     serve     persistent concurrent verification daemon over a socket
     client    submit one request to a running serve daemon
     trace     dump a VCD waveform of a short DES56 RTL run
     replay    check properties offline against a VCD waveform
     fig3      reproduce the paper's Fig. 3 rewriting demonstration

   The flag specs shared between subcommands (model/workload/engine
   flags, executor and journal plumbing, report writers) live in
   {!Cli}. *)

open Cmdliner
open Tabv_psl
open Tabv_duv

(* --- abstract ----------------------------------------------------- *)

let abstract_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Property file: lines of 'property NAME = FORMULA [@context];'")
  in
  let clock_period =
    Arg.(value & opt int 10 & info [ "clock-period"; "c" ] ~docv:"NS"
           ~doc:"Clock period of the RTL implementation in nanoseconds.")
  in
  let removed =
    Arg.(value & opt (list string) [] & info [ "remove"; "r" ] ~docv:"SIGNALS"
           ~doc:"Comma-separated signals removed by the RTL-to-TLM abstraction.")
  in
  let clock_periods =
    Arg.(value & opt (list (pair ~sep:'=' string int)) []
         & info [ "clock-periods" ] ~docv:"NAME=NS,..."
             ~doc:"Periods of named clocks used in '@NAME_pos'-style contexts.")
  in
  let summary =
    Arg.(value & flag & info [ "summary"; "s" ] ~doc:"Print one line per property.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the reports as JSON.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Write the surviving TLM properties to FILE in the property \
                 language (ready for 'tabv check -p FILE' or 'tabv replay').")
  in
  let run file clock_period clock_periods removed summary json output =
    match Parser.file (Cli.read_file file) with
    | exception Parser.Parse_error { line; col; message } ->
      Printf.eprintf "%s:%d:%d: %s\n" file line col message;
      exit 1
    | properties ->
      let reports =
        Tabv_core.Methodology.abstract_all ~clock_period ~clock_periods
          ~abstracted_signals:removed properties
      in
      if json then
        print_endline
          (Tabv_core.Report_json.to_string (Tabv_core.Report_json.of_reports reports))
      else if summary then Format.printf "%a@." Tabv_core.Methodology.pp_summary reports
      else
        List.iter (fun r -> Format.printf "%a@.@." Tabv_core.Methodology.pp_report r) reports;
      (* Emit the surviving TLM property set on stdout in re-parseable
         form. *)
      let survivors = Tabv_core.Methodology.surviving reports in
      if survivors <> [] && not json then begin
        print_endline "-- abstracted TLM properties:";
        List.iter
          (fun q ->
            Format.printf "property %s = %a %a;@." q.Property.name Ltl.pp
              q.Property.formula Context.pp q.Property.context)
          survivors
      end;
      match output with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        let ppf = Format.formatter_of_out_channel oc in
        Format.fprintf ppf "-- abstracted from %s (clock %d ns%s)@." file clock_period
          (if removed = [] then ""
           else "; removed: " ^ String.concat ", " removed);
        List.iter
          (fun r ->
            match r.Tabv_core.Methodology.output with
            | None -> ()
            | Some q ->
              if r.Tabv_core.Methodology.requires_review then
                Format.fprintf ppf
                  "-- NOTE: %s requires human review (signal abstraction was not a \
                   pure weakening)@."
                  q.Property.name;
              if Tabv_core.Methodology.needs_dense_trace q.Property.formula then
                Format.fprintf ppf
                  "-- NOTE: %s needs full-grid transactions (use the grid wrapper)@."
                  q.Property.name;
              Format.fprintf ppf "property %s = %a %a;@." q.Property.name Ltl.pp
                q.Property.formula Context.pp q.Property.context)
          reports;
        Format.pp_print_flush ppf ();
        close_out oc;
        Printf.printf "wrote %d properties to %s\n" (List.length survivors) path
  in
  let doc = "Abstract RTL properties into TLM properties (Methodology III.1)." in
  Cmd.v (Cmd.info "abstract" ~doc)
    Term.(
      const run $ file $ clock_period $ clock_periods $ removed $ summary $ json
      $ output)

(* --- check / record ----------------------------------------------- *)

let metrics_flag_arg =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Enable the observability registry for the run and print it: \
               kernel phase counters, signal/TLM activity, per-property \
               checker statistics (transition-cache hit rate, peak live \
               instances, peak distinct hash-consed states), shared-sampler \
               counters and the process-global interning counters.")

let metrics_json_arg =
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE"
         ~doc:"Write the observability report as schema-versioned JSON to \
               FILE (deterministic: byte-identical across runs with the \
               same seed).")

let stats_flag_arg =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Deprecated alias of $(b,--metrics).")

let stats_json_arg =
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE"
         ~doc:"Deprecated alias of $(b,--metrics-json).")

let check_report_json_arg =
  Cli.report_json_arg
    ~doc:
      "Write the deterministic per-property verdict report as JSON to FILE \
       ('-' for stdout).  The same document 'tabv recheck --report-json' \
       emits for a recording of this run — byte for byte."

(* The one simulation driver behind `check` and `record`; [trace_out]
   is what separates them. *)
let simulate_run ~cmd trace_out model count seed props_file metrics_flag
    metrics_json stats_flag stats_json report_out engine =
  Cli.apply_engine engine;
  let fail = Cli.fail cmd in
  if stats_flag then
    Printf.eprintf "tabv %s: --stats is deprecated; use --metrics\n" cmd;
  if stats_json <> None then
    Printf.eprintf "tabv %s: --stats-json is deprecated; use --metrics-json\n"
      cmd;
  let metrics_flag = metrics_flag || stats_flag in
  let metrics_json =
    match metrics_json with
    | Some _ as path -> path
    | None -> stats_json
  in
  let metrics =
    if metrics_flag || metrics_json <> None then begin
      let m = Tabv_obs.Metrics.create ~enabled:true () in
      (* Wall-clock phase timers feed the human table only; the JSON
         report is deterministic and excludes them, so the clock is
         installed just for --metrics. *)
      if metrics_flag then Tabv_obs.Metrics.set_clock m Sys.time;
      Some m
    end
    else None
  in
  let user = Option.map Cli.parse_props_file props_file in
  (* Lint user properties against the model's interface. *)
  (match user with
   | Some properties ->
     Cli.lint_props ~known:(Cli.known_signals model) properties
   | None -> ());
  let properties, grid_properties = Cli.properties_for model user in
  let writer =
    match trace_out with
    | None -> None
    | Some path ->
      if not (Cli.supports_trace model) then
        fail
          (Printf.sprintf
             "%s records no trace (the loosely-timed model is deliberately \
              not timing equivalent, so a recording would not replay \
              meaningfully)"
             (Cli.model_name model));
      let meta =
        { Tabv_trace.Meta.model = Cli.model_name model; seed; ops = count;
          engine =
            Tabv_sim.Kernel.engine_name (Tabv_sim.Kernel.get_default_engine ())
        }
      in
      Some (Tabv_trace.Writer.create ~path meta)
  in
  let result =
    Fun.protect
      ~finally:(fun () -> Option.iter Tabv_trace.Writer.close writer)
      (fun () ->
        Cli.run_model ?metrics ?trace_writer:writer model ~seed ~ops:count
          ~properties ~grid_properties)
  in
  Printf.printf "simulated %dns, %d operations, %d kernel activations, %d transactions\n"
    result.Testbench.sim_time_ns result.Testbench.completed_ops
    result.Testbench.kernel_activations result.Testbench.transactions;
  List.iter
    (fun stat -> Format.printf "%a@." Testbench.pp_checker_stat stat)
    result.Testbench.checker_stats;
  (match (trace_out, writer) with
   | Some path, Some w ->
     Printf.printf "wrote trace to %s (%d samples, %d spans, %d bytes)\n" path
       (Tabv_trace.Writer.samples w)
       (Tabv_trace.Writer.spans w)
       (Tabv_trace.Writer.bytes_written w)
   | _ -> ());
  if metrics_flag then begin
    print_endline "checker-engine statistics:";
    List.iter
      (fun stat ->
        Printf.printf
          "  %-24s cache %d/%d (%.1f%% hit), peak live %d, peak distinct \
           states %d\n"
          stat.Testbench.property_name stat.Testbench.cache_hits
          (stat.Testbench.cache_hits + stat.Testbench.cache_misses)
          (100. *. Testbench.cache_hit_rate stat)
          stat.Testbench.peak_instances stat.Testbench.peak_distinct_states)
      result.Testbench.checker_stats;
    let c = Tabv_checker.Progression.cache_stats () in
    Printf.printf
      "  global: %d distinct states, %d memoized transitions, %d interned \
       formulas, %d bypassed steps\n"
      c.Tabv_checker.Progression.distinct_states
      c.Tabv_checker.Progression.distinct_transitions
      c.Tabv_checker.Progression.interned_formulas
      c.Tabv_checker.Progression.cache_bypassed;
    if result.Testbench.metrics <> [] then begin
      print_endline "metrics:";
      Format.printf "%a@." Tabv_obs.Metrics.pp_snapshot result.Testbench.metrics
    end;
    match metrics with
    | Some m when Tabv_obs.Metrics.timers m <> [] ->
      print_endline "phase timers (wall clock, excluded from JSON):";
      List.iter
        (fun (name, seconds, laps) ->
          Printf.printf "  %-24s %.6fs over %d laps\n" name seconds laps)
        (Tabv_obs.Metrics.timers m)
    | Some _ | None -> ()
  end;
  (match metrics_json with
   | None -> ()
   | Some path ->
     let open Tabv_core.Report_json in
     Cli.write_json ~announce:"metrics" path
       (Testbench.metrics_json
          ~run:
            [ ("model", String (Cli.model_name model));
              ("seed", Int seed);
              ("ops", Int count) ]
          result));
  (match report_out with
   | None -> ()
   | Some path ->
     Cli.write_json ~announce:"verdict report" path
       (Cli.verdict_report ~model ~seed ~ops:count result));
  let failures = Testbench.total_failures result in
  if failures = 0 then print_endline "all checkers passed"
  else begin
    Printf.printf "%d failure(s):\n" failures;
    List.iter
      (fun stat ->
        List.iter
          (fun f -> Format.printf "  %a@." Tabv_checker.Monitor.pp_failure f)
          stat.Testbench.failures)
      result.Testbench.checker_stats;
    exit 1
  end

let check_cmd =
  let doc = "Run a built-in DUV model with its property checkers attached." in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const (simulate_run ~cmd:"check") $ const None $ Cli.model_arg
      $ Cli.ops_arg $ Cli.seed_arg $ Cli.props_arg $ metrics_flag_arg
      $ metrics_json_arg $ stats_flag_arg $ stats_json_arg
      $ check_report_json_arg $ Cli.engine_arg)

let record_cmd =
  let trace_out =
    Arg.(required & opt (some string) None & info [ "trace-out"; "o" ]
           ~docv:"FILE"
           ~doc:"Capture the run's evaluation trace (dictionary-encoded, \
                 delta-timed binary format) to FILE for later 'tabv recheck'.")
  in
  let doc =
    "Run a model with checkers attached (exactly like $(b,check)) and \
     capture the evaluation trace to a compact binary file for offline \
     re-checking."
  in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(
      const (fun path -> simulate_run ~cmd:"record" (Some path))
      $ trace_out $ Cli.model_arg $ Cli.ops_arg $ Cli.seed_arg $ Cli.props_arg
      $ metrics_flag_arg $ metrics_json_arg $ stats_flag_arg $ stats_json_arg
      $ check_report_json_arg $ Cli.engine_arg)

(* --- recheck ------------------------------------------------------ *)

let recheck_cmd =
  let trace_in =
    Arg.(required & opt (some file) None & info [ "trace-in"; "i" ]
           ~docv:"FILE"
           ~doc:"Binary trace recorded by 'tabv record'.")
  in
  let props =
    Arg.(value & opt (some file) None & info [ "props"; "p" ] ~docv:"FILE"
           ~doc:"Property file to re-check instead of the recorded model's \
                 built-in set.  Abstracted for approximately-timed models \
                 exactly as 'tabv check --props' would.")
  in
  let workers =
    Arg.(value & opt (some int) None & info [ "workers"; "j" ] ~docv:"N"
           ~doc:"Worker count (default: the machine's recommended domain \
                 count, capped by the property count).  The report is \
                 byte-identical for any worker count.")
  in
  let executor =
    Arg.(value
         & opt (Arg.enum [ ("in-domain", `In_domain); ("subprocess", `Subprocess) ])
             `In_domain
         & info [ "executor" ] ~docv:"KIND"
             ~doc:"Where chunks run: $(b,in-domain) (worker domains in this \
                   process) or $(b,subprocess) (crash-isolated worker \
                   processes).  Reports are byte-identical across both.")
  in
  let retries =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
           ~doc:"Retries per crashing chunk (default 1).")
  in
  let report_out =
    Cli.report_json_arg
      ~doc:
        "Write the deterministic per-property verdict report as JSON to FILE \
         ('-' for stdout) — byte-identical to 'tabv check --report-json' of \
         the recorded run."
  in
  let run trace_in props workers executor retries report_out =
    let fail = Cli.fail "recheck" in
    let open Tabv_campaign in
    (* Header + dictionary gate: a non-trace file, a stale version or
       a truncated header is a usage error (exit 2), reported with the
       trace's identity when we have one. *)
    let meta, trace_signals =
      try Recheck.probe trace_in with
      | Tabv_trace.Reader.Format_error { path; message; offset; valid_prefix } ->
        fail
          (Printf.sprintf "%s: %s (at byte %d; verified prefix %d bytes)" path
             message offset valid_prefix)
    in
    let model =
      match Cli.model_of_name meta.Tabv_trace.Meta.model with
      | Some model -> model
      | None ->
        fail
          (Format.asprintf
             "%s: recorded from unknown model %a — stale trace or newer tabv?"
             trace_in Tabv_trace.Meta.pp meta)
    in
    let user = Option.map Cli.parse_props_file props in
    (match user with
     | Some properties ->
       Cli.lint_props ~known:(Cli.known_signals model) properties
     | None -> ());
    let properties, grid_properties = Cli.properties_for model user in
    if grid_properties <> [] then
      fail
        (Printf.sprintf
           "%d propert%s need full-grid transactions (grid wrapper) and \
            cannot be re-checked against a recorded trace: %s"
           (List.length grid_properties)
           (if List.length grid_properties = 1 then "y" else "ies")
           (String.concat ", "
              (List.map (fun p -> p.Property.name) grid_properties)));
    if properties = [] then fail "no properties to re-check";
    (* Fingerprint/dictionary gate: every signal a property samples
       must have been recorded, or the verdicts would silently differ
       from a live check.  (An empty trace has no dictionary; nothing
       is sampled either, so any property set is fine.) *)
    if trace_signals <> [] then begin
      let missing =
        List.concat_map
          (fun p ->
            List.filter
              (fun s -> not (List.mem s trace_signals))
              (Property.signals p))
          properties
        |> List.sort_uniq compare
      in
      if missing <> [] then
        fail
          (Format.asprintf
             "%s: trace (%a) does not record signal(s) %s — stale trace or \
              mismatched property set"
             trace_in Tabv_trace.Meta.pp meta
             (String.concat ", " missing))
    end;
    let workers =
      match workers with
      | Some w when w >= 1 -> w
      | Some w -> fail (Printf.sprintf "--workers must be >= 1 (got %d)" w)
      | None ->
        min (Domain.recommended_domain_count ()) (List.length properties)
    in
    let exec =
      match executor with
      | `In_domain -> Executor.config Executor.In_domain
      | `Subprocess -> Executor.config Executor.Subprocess
    in
    let result =
      try
        Cli.with_interrupt (fun interrupted ->
            Recheck.run ~exec ~interrupted ~workers ~retries ~trace:trace_in
              properties)
      with
      | Tabv_trace.Reader.Format_error { path; message; offset; valid_prefix } ->
        fail
          (Printf.sprintf "%s: %s (at byte %d; verified prefix %d bytes)" path
             message offset valid_prefix)
      | Recheck.Chunk_failed message ->
        Printf.eprintf "tabv recheck: chunk failed: %s\n" message;
        exit 1
    in
    Format.printf "rechecked %d properties against %a: %d samples, %d spans@."
      (List.length properties) Tabv_trace.Meta.pp result.Recheck.meta
      result.Recheck.samples result.Recheck.spans;
    List.iter
      (fun stat -> Format.printf "%a@." Testbench.pp_checker_stat stat)
      result.Recheck.snapshots;
    (match report_out with
     | None -> ()
     | Some path ->
       Cli.write_json ~announce:"verdict report" path
         (Recheck.report_json result));
    let failures = Recheck.total_failures result in
    if failures = 0 then print_endline "all checkers passed"
    else begin
      Printf.printf "%d failure(s):\n" failures;
      List.iter
        (fun stat ->
          List.iter
            (fun f -> Format.printf "  %a@." Tabv_checker.Monitor.pp_failure f)
            stat.Tabv_obs.Checker_snapshot.failures)
        result.Recheck.snapshots;
      exit 1
    end
  in
  let doc =
    "Re-check a property set against a recorded binary trace — in parallel, \
     without re-simulating; the verdict report is byte-identical to the \
     live $(b,check) of the recorded run."
  in
  Cmd.v (Cmd.info "recheck" ~doc)
    Term.(
      const run $ trace_in $ props $ workers $ executor $ retries $ report_out)

(* --- trace -------------------------------------------------------- *)

let trace_cmd =
  let out =
    Arg.(value & opt string "des56.vcd" & info [ "output"; "o" ] ~docv:"FILE"
           ~doc:"Output VCD file.")
  in
  let count =
    Arg.(value & opt int 3 & info [ "ops"; "n" ] ~docv:"N" ~doc:"Operations to trace.")
  in
  let run out count =
    let ops = Workload.des56 ~seed:1 ~count () in
    let result = Testbench.run_des56_rtl ~record_trace:true ops in
    match result.Testbench.trace with
    | None -> prerr_endline "no trace recorded"; exit 1
    | Some trace ->
      Tabv_sim.Trace_dump.to_file trace out;
      Printf.printf "wrote %s (%d evaluation points)\n" out (Trace.length trace)
  in
  let doc = "Dump a VCD waveform of a short DES56 RTL simulation." in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ out $ count)

(* --- replay ------------------------------------------------------- *)

let replay_cmd =
  let vcd =
    Arg.(required & opt (some file) None & info [ "vcd" ] ~docv:"FILE"
           ~doc:"Recorded waveform (VCD) whose timestamps are the evaluation points.")
  in
  let props =
    Arg.(required & opt (some file) None & info [ "props"; "p" ] ~docv:"FILE"
           ~doc:"Property file to check against the waveform.")
  in
  let run vcd props =
    let waveform =
      try Tabv_sim.Vcd_reader.load vcd with
      | Tabv_sim.Vcd_reader.Parse_error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" vcd line message;
        exit 1
    in
    let properties =
      match Parser.file (Cli.read_file props) with
      | properties -> properties
      | exception Parser.Parse_error { line; col; message } ->
        Printf.eprintf "%s:%d:%d: %s\n" props line col message;
        exit 1
    in
    Printf.printf "replaying %d evaluation points over %d signals\n"
      (Trace.length waveform.Tabv_sim.Vcd_reader.trace)
      (List.length waveform.Tabv_sim.Vcd_reader.signals);
    let outcomes =
      (Tabv_checker.Replay.run [@alert "-deprecated"])
        properties waveform.Tabv_sim.Vcd_reader.trace
    in
    let monitors =
      List.map (fun o -> o.Tabv_checker.Replay.monitor) outcomes
    in
    Format.printf "%a@." Tabv_checker.Coverage.pp_table monitors;
    if not (Tabv_checker.Replay.all_passed outcomes) then exit 1
  in
  let doc = "Check properties offline against a recorded VCD waveform." in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ vcd $ props)

(* --- campaign ----------------------------------------------------- *)

let campaign_cmd =
  let open Tabv_campaign in
  let manifest =
    Arg.(value & opt (some file) None & info [ "manifest" ] ~docv:"FILE"
           ~doc:"JSON campaign manifest ('jobs' and/or 'matrix'; see the \
                 examples/ directory).  Mutually exclusive with the matrix \
                 flags.")
  in
  let duvs =
    Arg.(value & opt (list string) [ "des56" ] & info [ "duvs" ] ~docv:"DUVS"
           ~doc:"Comma-separated DUVs: des56, colorconv, memctrl.")
  in
  let levels =
    Arg.(value & opt (list string) [ "rtl"; "tlm-ca"; "tlm-at" ]
         & info [ "levels" ] ~docv:"LEVELS"
             ~doc:"Comma-separated abstraction levels: rtl, tlm-ca, tlm-at, \
                   tlm-lt (DES56 only).")
  in
  let seeds =
    Arg.(value & opt (list int) [ 1 ] & info [ "seeds" ] ~docv:"SEEDS"
           ~doc:"Comma-separated workload seeds.")
  in
  let ops =
    Arg.(value & opt int 40 & info [ "ops"; "n" ] ~docv:"N"
           ~doc:"Workload size per job (operations / pixels).")
  in
  let props =
    Arg.(value & opt string "all" & info [ "props" ] ~docv:"SEL"
           ~doc:"Property selection: 'all', 'none', or an integer N (attach \
                 the first N checkers).")
  in
  let workers =
    Arg.(value & opt (some int) None & info [ "workers"; "j" ] ~docv:"N"
           ~doc:"Worker domains (default: the machine's recommended domain \
                 count, capped by the job count).")
  in
  let retries =
    Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N"
           ~doc:"Retries per crashing job (default 1; a manifest's 'retries' \
                 key is used when this flag is absent).")
  in
  let report_out =
    Cli.report_json_arg
      ~doc:
        "Write the deterministic campaign report as JSON to FILE ('-' for \
         stdout)."
  in
  let run manifest duvs levels seeds ops props workers retries report_out
      isolate timeout journal_path resume engine =
    Cli.apply_engine engine;
    let fail = Cli.fail "campaign" in
    let manifest =
      match manifest with
      | Some path ->
        (match Campaign.manifest_of_string (Cli.read_file path) with
         | Ok m -> m
         | Error msg -> fail (Printf.sprintf "%s: %s" path msg))
      | None ->
        let parse_with what of_name name =
          match of_name name with
          | Some v -> v
          | None -> fail (Printf.sprintf "unknown %s %S" what name)
        in
        let duvs = List.map (parse_with "DUV" Campaign.duv_of_name) duvs in
        let levels =
          List.map (parse_with "level" Campaign.level_of_name) levels
        in
        let selection = parse_with "selection" Campaign.selection_of_name props in
        { Campaign.manifest_jobs =
            Campaign.expand_matrix ~selection ~duvs ~levels ~seeds ~ops ();
          manifest_retries = None }
    in
    let jobs = manifest.Campaign.manifest_jobs in
    if jobs = [] then fail "empty campaign (no jobs)";
    List.iter
      (fun job ->
        match Campaign.validate job with
        | Ok () -> ()
        | Error msg -> fail msg)
      jobs;
    let retries =
      match (retries, manifest.Campaign.manifest_retries) with
      | Some r, _ -> r
      | None, Some r -> r
      | None, None -> 1
    in
    let workers =
      match workers with
      | Some w when w >= 1 -> w
      | Some w -> fail (Printf.sprintf "--workers must be >= 1 (got %d)" w)
      | None -> min (Domain.recommended_domain_count ()) (List.length jobs)
    in
    let exec = Cli.executor_of_flags ~fail ~isolate ~timeout in
    let journal =
      Cli.journal_of_flags ~fail ~kind:Campaign.journal_kind
        ~fingerprint:(Campaign.fingerprint ~retries jobs) ~path:journal_path
        ~resume
    in
    let summary =
      Fun.protect
        ~finally:(fun () -> Option.iter Journal.close journal)
        (fun () ->
          Cli.with_interrupt (fun interrupted ->
            Campaign.run ~workers ~retries ~clock:Unix.gettimeofday ~exec
              ?journal ~interrupted jobs))
    in
    Format.printf "%a@." Campaign.pp_summary summary;
    (match report_out with
     | None -> ()
     | Some path ->
       Cli.write_json ~announce:"campaign report" path
         (Campaign.report_json summary));
    if summary.Campaign.pending > 0 then begin
      Printf.eprintf "tabv campaign: interrupted with %d job(s) pending%s\n"
        summary.Campaign.pending (Cli.resume_hint journal_path);
      exit 130
    end;
    if not (Campaign.all_green summary) then exit 1
  in
  let doc =
    "Run a verification campaign (job matrix) on a pool of worker domains \
     or crash-isolated worker subprocesses."
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ manifest $ duvs $ levels $ seeds $ ops $ props $ workers
      $ retries $ report_out $ Cli.isolate_arg $ Cli.timeout_arg
      $ Cli.journal_arg $ Cli.resume_arg $ Cli.engine_arg)

(* --- qualify ------------------------------------------------------ *)

let qualify_cmd =
  let open Tabv_campaign in
  let duv =
    Arg.(value & opt string "des56" & info [ "duv" ] ~docv:"DUV"
           ~doc:"Device under verification: des56, colorconv or memctrl.")
  in
  let levels =
    Arg.(value & opt_all string [] & info [ "level" ] ~docv:"LEVEL"
           ~doc:"Abstraction level to qualify (repeatable): rtl, tlm-ca, \
                 tlm-at, tlm-lt (DES56 only).  Default: rtl tlm-ca tlm-at.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Workload seed (shared by every job in the matrix).")
  in
  let ops =
    Arg.(value & opt int 40 & info [ "ops"; "n" ] ~docv:"N"
           ~doc:"Workload size per job (operations / pixels).")
  in
  let workers =
    Arg.(value & opt (some int) None & info [ "workers"; "j" ] ~docv:"N"
           ~doc:"Worker domains (default: the machine's recommended domain \
                 count).")
  in
  let retries =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
           ~doc:"Retries per crashing pool job (default 1).")
  in
  let report_out =
    Cli.report_json_arg
      ~doc:
        "Write the deterministic detection-matrix report as JSON to FILE \
         ('-' for stdout)."
  in
  let run duv levels seed ops workers retries report_out isolate timeout
      journal_path resume engine =
    Cli.apply_engine engine;
    let fail = Cli.fail "qualify" in
    let duv =
      match Campaign.duv_of_name duv with
      | Some d -> d
      | None -> fail (Printf.sprintf "unknown DUV %S" duv)
    in
    let levels =
      let names =
        if levels = [] then [ "rtl"; "tlm-ca"; "tlm-at" ] else levels
      in
      List.map
        (fun name ->
          match Campaign.level_of_name name with
          | Some l -> l
          | None -> fail (Printf.sprintf "unknown level %S" name))
        names
    in
    let workers =
      match workers with
      | Some w when w >= 1 -> w
      | Some w -> fail (Printf.sprintf "--workers must be >= 1 (got %d)" w)
      | None -> Domain.recommended_domain_count ()
    in
    let exec = Cli.executor_of_flags ~fail ~isolate ~timeout in
    let journal =
      Cli.journal_of_flags ~fail ~kind:Qualify.journal_kind
        ~fingerprint:(Qualify.fingerprint ~duv ~levels ~seed ~ops)
        ~path:journal_path ~resume
    in
    let report =
      try
        Fun.protect
          ~finally:(fun () -> Option.iter Journal.close journal)
          (fun () ->
            Cli.with_interrupt (fun interrupted ->
              Qualify.run ~workers ~retries ~exec ?journal ~interrupted ~duv
                ~levels ~seed ~ops ()))
      with
      | Invalid_argument msg -> fail msg
      | Qualify.Interrupted ->
        Printf.eprintf
          "tabv qualify: interrupted before the pool drained; a partial \
           detection matrix is meaningless, so no report was produced%s\n"
          (Cli.resume_hint journal_path);
        exit 130
    in
    Format.printf "%a@." Qualify.pp_report report;
    (match report_out with
     | None -> ()
     | Some path ->
       Cli.write_json ~announce:"qualification report" path
         (Qualify.report_json report));
    if not (Qualify.ok report) then exit 1
  in
  let doc =
    "Fault-qualify the property suites: build the fault x property \
     detection matrix across abstraction levels and check the seeded \
     resilience scenarios."
  in
  Cmd.v (Cmd.info "qualify" ~doc)
    Term.(
      const run $ duv $ levels $ seed $ ops $ workers $ retries $ report_out
      $ Cli.isolate_arg $ Cli.timeout_arg $ Cli.journal_arg $ Cli.resume_arg
      $ Cli.engine_arg)

(* --- serve -------------------------------------------------------- *)

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path of the daemon.")

let tcp_arg =
  Arg.(value & opt (some (pair ~sep:':' string int)) None
       & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"TCP endpoint of the daemon (in addition to, or instead \
                 of, the Unix-domain socket).")

let serve_cmd =
  let open Tabv_serve in
  let workers =
    Arg.(value & opt int 2 & info [ "workers"; "j" ] ~docv:"N"
           ~doc:"Warm worker count (default 2).")
  in
  let queue_bound =
    Arg.(value & opt int 64 & info [ "queue-bound" ] ~docv:"N"
           ~doc:"Total queued requests across all clients before new \
                 submissions are rejected with retry advice (default 64).")
  in
  let retry_after_ms =
    Arg.(value & opt int 250 & info [ "retry-after-ms" ] ~docv:"MS"
           ~doc:"Retry advice carried by backpressure rejections (default \
                 250).")
  in
  let warm_bound =
    Arg.(value & opt int 32 & info [ "warm-bound" ] ~docv:"N"
           ~doc:"Warm result-cache entries kept under LRU (default 32).")
  in
  let state_dir =
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR"
           ~doc:"Directory for journaled campaign state (crash recovery); \
                 created if missing, stale journals are collected on \
                 startup.  Without it, journaled campaign requests are \
                 refused.")
  in
  let job_timeout =
    Arg.(value & opt float 300. & info [ "job-timeout" ] ~docv:"SECONDS"
           ~doc:"Per-request deadline: a job running longer is cancelled \
                 and its client answered with an error echoing the \
                 deadline (default 300; 0 disables).  Subprocess workers \
                 (--isolate) are killed outright; in-domain jobs are \
                 interrupted at their next interruption point.")
  in
  let idle_timeout =
    Arg.(value & opt float 60. & info [ "idle-timeout" ] ~docv:"SECONDS"
           ~doc:"Mid-frame silence budget: a client that stops sending \
                 halfway through a request frame is disconnected and its \
                 reservations released (default 60).  Fully idle \
                 connections (no partial frame) are unaffected.")
  in
  let breaker_threshold =
    Arg.(value & opt int 3 & info [ "breaker-threshold" ] ~docv:"N"
           ~doc:"Consecutive worker-infrastructure failures before the \
                 worker slot's circuit breaker opens (default 3).")
  in
  let breaker_cooldown =
    Arg.(value & opt float 5. & info [ "breaker-cooldown" ] ~docv:"SECONDS"
           ~doc:"Quarantine length of an open worker circuit breaker \
                 before a single half-open probe job is admitted \
                 (default 5).")
  in
  let shed_watermark =
    Arg.(value & opt (some int) None & info [ "shed-watermark" ] ~docv:"N"
           ~doc:"Queue depth at which lower-priority submissions (bulk \
                 campaigns before trace work before interactive checks) \
                 start being shed with retry advice (default: 3/4 of \
                 --queue-bound).")
  in
  let run socket tcp workers isolate queue_bound retry_after_ms warm_bound
      state_dir job_timeout idle_timeout breaker_threshold breaker_cooldown
      shed_watermark =
    let fail = Cli.fail "serve" in
    let socket =
      match socket with
      | Some path -> path
      | None -> fail "--socket is required"
    in
    if workers < 1 then fail "--workers must be >= 1";
    if queue_bound < 1 then fail "--queue-bound must be >= 1";
    if warm_bound < 1 then fail "--warm-bound must be >= 1";
    if job_timeout < 0. then fail "--job-timeout must be >= 0";
    if idle_timeout <= 0. then fail "--idle-timeout must be > 0";
    if breaker_threshold < 1 then fail "--breaker-threshold must be >= 1";
    if breaker_cooldown < 0. then fail "--breaker-cooldown must be >= 0";
    (match shed_watermark with
     | Some w when w < 1 || w > queue_bound ->
       fail "--shed-watermark must be in [1, --queue-bound]"
     | _ -> ());
    (match state_dir with
     | Some dir when not (Sys.file_exists dir) ->
       (try Unix.mkdir dir 0o755 with
        | Unix.Unix_error (e, _, _) ->
          fail (Printf.sprintf "cannot create state dir %s: %s" dir
                  (Unix.error_message e)))
     | _ -> ());
    let config =
      { (Server.default_config ~socket ()) with
        tcp;
        workers;
        executor =
          (if isolate then Server.Subprocess_workers
           else Server.In_domain_workers);
        queue_bound;
        retry_after_ms;
        warm_bound;
        job_timeout_s = (if job_timeout = 0. then None else Some job_timeout);
        conn_idle_timeout_s = idle_timeout;
        breaker_threshold;
        breaker_cooldown_s = breaker_cooldown;
        shed_watermark;
        state_dir }
    in
    let banner () =
      Printf.printf "tabv serve: listening on %s%s (%d %s worker%s)\n%!" socket
        (match tcp with
         | Some (host, port) -> Printf.sprintf " and %s:%d" host port
         | None -> "")
        workers
        (if isolate then "subprocess" else "in-domain")
        (if workers = 1 then "" else "s")
    in
    let obs =
      (* Bind-time problems (socket already served by a live daemon,
         unresolvable --tcp host) surface as [Failure]. *)
      match
        Cli.with_interrupt (fun interrupted ->
            Server.run ~interrupted ~on_ready:banner config)
      with
      | obs -> obs
      | exception Failure msg -> fail msg
    in
    print_endline "tabv serve: drained";
    Format.printf "%a@." Tabv_obs.Metrics.pp_snapshot (Tabv_obs.Metrics.snapshot obs)
  in
  let doc =
    "Run the persistent verification daemon: concurrent check / record / \
     recheck / campaign / qualify requests over a Unix-domain (optionally \
     TCP) socket, with a bounded fair queue, a warm worker pool and \
     journal-backed crash recovery.  Reports are byte-identical to the \
     one-shot CLI."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ tcp_arg $ workers $ Cli.isolate_arg
      $ queue_bound $ retry_after_ms $ warm_bound $ state_dir $ job_timeout
      $ idle_timeout $ breaker_threshold $ breaker_cooldown $ shed_watermark)

(* --- client ------------------------------------------------------- *)

let client_cmd =
  let open Tabv_serve in
  let op =
    Arg.(required
         & pos 0
             (some
                (Arg.enum
                   [ ("check", `Check); ("record", `Record);
                     ("recheck", `Recheck); ("campaign", `Campaign);
                     ("qualify", `Qualify); ("ping", `Ping);
                     ("stats", `Stats); ("invalidate", `Invalidate);
                     ("shutdown", `Shutdown) ]))
             None
         & info [] ~docv:"OP"
             ~doc:"Request to submit: a job (check, record, recheck, \
                   campaign, qualify) or a control op (ping, stats, \
                   invalidate, shutdown).")
  in
  let model =
    Arg.(value & opt (some (Arg.enum Models.names)) None
         & info [ "model"; "m" ] ~docv:"MODEL"
             ~doc:"DUV model for check/record requests.")
  in
  let ops =
    Arg.(value & opt int 40 & info [ "ops"; "n" ] ~docv:"N"
           ~doc:"Workload size (operations / pixels).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")
  in
  let props =
    Arg.(value & opt (some file) None & info [ "props"; "p" ] ~docv:"FILE"
           ~doc:"Property file; its source is sent inline, so the daemon \
                 needs no view of the client's filesystem.")
  in
  let trace_out =
    Arg.(value & opt (some string) None & info [ "trace-out"; "o" ]
           ~docv:"FILE"
           ~doc:"Trace output path for record requests (server-side path).")
  in
  let trace_in =
    Arg.(value & opt (some string) None & info [ "trace-in"; "i" ]
           ~docv:"FILE"
           ~doc:"Recorded trace path for recheck requests (server-side \
                 path).")
  in
  let manifest =
    Arg.(value & opt (some file) None & info [ "manifest" ] ~docv:"FILE"
           ~doc:"JSON campaign manifest for campaign requests (sent \
                 inline).")
  in
  let journal =
    Arg.(value & flag & info [ "journal" ]
           ~doc:"Journal the campaign into the daemon's state dir (crash \
                 recovery; concurrent identical campaigns are refused).")
  in
  let duv =
    Arg.(value & opt string "des56" & info [ "duv" ] ~docv:"DUV"
           ~doc:"DUV for qualify requests.")
  in
  let levels =
    Arg.(value & opt_all string [] & info [ "level" ] ~docv:"LEVEL"
           ~doc:"Abstraction level for qualify requests (repeatable; \
                 default: rtl tlm-ca tlm-at).")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers"; "j" ] ~docv:"N"
           ~doc:"Worker count used by the daemon for this request's inner \
                 pool (recheck/campaign/qualify; default 2).")
  in
  let retries =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
           ~doc:"Retries per crashing inner job (default 1).")
  in
  let attempts =
    Arg.(value & opt int 10 & info [ "retry-attempts" ] ~docv:"N"
           ~doc:"Resubmissions on backpressure rejection before giving up \
                 (default 10).")
  in
  let retry_seed =
    Arg.(value & opt (some int) None & info [ "retry-seed" ] ~docv:"SEED"
           ~doc:"Seed for decorrelated-jitter backoff between backpressure \
                 retries, grown from the server's advice (default: this \
                 process id, so concurrent clients spread out).  Pass an \
                 explicit seed for reproducible retry timing.")
  in
  let report_out =
    Cli.report_json_arg
      ~doc:
        "Write the report to FILE ('-' or absent: stdout).  The bytes are \
         exactly what the one-shot CLI's --report-json would have written."
  in
  let run op socket tcp model ops seed props engine trace_out trace_in
      manifest journal duv levels workers retries attempts retry_seed
      report_out =
    let fail = Cli.fail "client" in
    let endpoint =
      match (tcp, socket) with
      | Some (host, port), _ -> `Tcp (host, port)
      | None, Some path -> `Unix path
      | None, None -> fail "--socket or --tcp is required"
    in
    let client =
      match Client.connect endpoint with
      | Ok c -> c
      | Error e -> fail e
    in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        let props_src = Option.map Cli.read_file props in
        let require_model () =
          match model with
          | Some m -> m
          | None -> fail "--model is required for this op"
        in
        let job =
          match op with
          | `Check ->
            Some
              (Protocol.Check
                 { model = require_model (); seed; ops; props = props_src;
                   engine; trace_out = None })
          | `Record ->
            let path =
              match trace_out with
              | Some p -> p
              | None -> fail "--trace-out is required for record"
            in
            Some
              (Protocol.Check
                 { model = require_model (); seed; ops; props = props_src;
                   engine; trace_out = Some path })
          | `Recheck ->
            let trace =
              match trace_in with
              | Some p -> p
              | None -> fail "--trace-in is required for recheck"
            in
            Some (Protocol.Recheck { trace; props = props_src; workers; retries })
          | `Campaign ->
            let path =
              match manifest with
              | Some p -> p
              | None -> fail "--manifest is required for campaign"
            in
            let manifest =
              match Tabv_core.Report_json.of_string (Cli.read_file path) with
              | json -> json
              | exception Tabv_core.Report_json.Parse_error
                  { line; col; message } ->
                fail (Printf.sprintf "%s:%d:%d: %s" path line col message)
            in
            Some
              (Protocol.Campaign
                 { manifest; workers; retries = Some retries; journal })
          | `Qualify ->
            let duv =
              match Tabv_campaign.Campaign.duv_of_name duv with
              | Some d -> d
              | None -> fail (Printf.sprintf "unknown DUV %S" duv)
            in
            let levels =
              let names =
                if levels = [] then [ "rtl"; "tlm-ca"; "tlm-at" ] else levels
              in
              List.map
                (fun name ->
                  match Tabv_campaign.Campaign.level_of_name name with
                  | Some l -> l
                  | None -> fail (Printf.sprintf "unknown level %S" name))
                names
            in
            Some (Protocol.Qualify { duv; levels; seed; ops; workers; retries })
          | `Ping | `Stats | `Invalidate | `Shutdown -> None
        in
        match job with
        | Some job ->
          let backoff_seed =
            match retry_seed with
            | Some s -> s
            | None -> Unix.getpid ()
          in
          (match Client.request_with_retry ~attempts ~backoff_seed client job with
           | Client.Result { ok; warm; report } ->
             (match report_out with
              | Some "-" | None -> print_string report
              | Some path ->
                (* Same commit discipline as Cli.write_json: the
                   served report bytes land atomically or not at
                   all. *)
                Tabv_core.Io.write_file_atomic ~path report;
                Printf.printf "wrote report to %s%s\n" path
                  (if warm then " (warm)" else ""));
             if not ok then exit 1
           | Client.Rejected { retry_after_ms } ->
             Printf.eprintf
               "tabv client: server busy; giving up (server advice: retry \
                after %dms)\n"
               retry_after_ms;
             exit 75
           | Client.Failed message -> fail message)
        | None ->
          let control =
            match op with
            | `Ping -> Protocol.Ping
            | `Stats -> Protocol.Stats
            | `Invalidate -> Protocol.Invalidate
            | `Shutdown -> Protocol.Shutdown
            | _ -> assert false
          in
          (match Client.control client control with
           | Client.Pong -> print_endline "pong"
           | Client.Stats json ->
             print_endline (Tabv_core.Report_json.to_string json)
           | Client.Invalidated n ->
             Printf.printf "invalidated %d warm entr%s\n" n
               (if n = 1 then "y" else "ies")
           | Client.Shutting_down -> print_endline "server draining"
           | Client.Control_failed message -> fail message))
  in
  let doc =
    "Submit one request to a running $(b,tabv serve) daemon and print or \
     save its report — byte-identical to the one-shot CLI's."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ op $ socket_arg $ tcp_arg $ model $ ops $ seed $ props
      $ Cli.engine_arg $ trace_out $ trace_in $ manifest $ journal $ duv
      $ levels $ workers $ retries $ attempts $ retry_seed $ report_out)

(* --- doctor ------------------------------------------------------- *)

let doctor_cmd =
  let run () =
    let failures = ref 0 in
    let check name ok =
      Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAIL") name;
      if not ok then incr failures
    in
    print_endline "tabv doctor: internal consistency checks";
    check "DES known-answer vector"
      (Des.encrypt ~key:0x133457799BBCDFF1L 0x0123456789ABCDEFL = 0x85E813540F0AB405L);
    check "ColorConv black pixel"
      (Colorconv.equal_ycbcr
         (Colorconv.convert { Colorconv.r = 0; g = 0; b = 0 })
         { Colorconv.y = 16; cb = 128; cr = 128 });
    let q1_expected =
      "q1: always(!(ds && indata == 0) || nexte[1,170](out != 0)) @tb"
    in
    check "Fig. 3 rewriting (p1 -> q1)"
      (match (List.hd (Des56_props.abstraction_reports ())).Tabv_core.Methodology.output with
       | Some q -> Property.to_string q = q1_expected
       | None -> false);
    check "push-ahead law: next(a until b) (exhaustive to depth 4)"
      (Exhaustive.equivalent ~signals:[ "a"; "b" ] ~max_depth:4
         (Parser.formula_only "next(a until b)")
         (Parser.formula_only "next(a) until next(b)")
       = Exhaustive.Holds);
    let quick_ops = Workload.des56 ~seed:1 ~count:10 () in
    check "DES56 RTL end-to-end with all checkers"
      (Testbench.total_failures
         (Testbench.run_des56_rtl ~properties:Des56_props.all quick_ops)
       = 0);
    check "DES56 TLM-AT end-to-end with reviewed checkers"
      (Testbench.total_failures
         (Testbench.run_des56_tlm_at ~properties:(Des56_props.tlm_reviewed ()) quick_ops)
       = 0);
    check "wrong abstraction is detected"
      (Testbench.total_failures
         (Testbench.run_des56_tlm_at ~model_latency_ns:160
            ~properties:(Des56_props.tlm_auto_safe ()) quick_ops)
       > 0);
    let quick_bursts = Workload.colorconv ~seed:1 ~count:50 () in
    check "ColorConv TLM-AT end-to-end with reviewed checkers"
      (Testbench.total_failures
         (Testbench.run_colorconv_tlm_at
            ~properties:(Colorconv_props.tlm_reviewed ()) quick_bursts)
       = 0);
    let mem_ops = Workload.memctrl ~seed:1 ~count:20 () in
    check "MemCtrl RTL read-back"
      ((Memctrl_testbench.run_rtl mem_ops).Testbench.outputs
       = List.map Int64.of_int (Memctrl_testbench.reference_reads mem_ops));
    let engine_identity =
      (* Same workload on both kernel engines, full metrics on: the
         observability documents must be byte-identical (the compiled
         engine's contract), with a fresh checker universe per run so
         interning order cannot leak between them. *)
      let report sim_engine =
        Tabv_checker.Progression.reset_universe ();
        let metrics = Tabv_obs.Metrics.create ~enabled:true () in
        Tabv_core.Report_json.to_string
          (Testbench.metrics_json
             (Testbench.run_des56_rtl ~metrics ~sim_engine
                ~properties:Des56_props.all quick_ops))
      in
      report Tabv_sim.Kernel.Classic = report Tabv_sim.Kernel.Compiled
    in
    check "engine_identity: compiled run reports byte-identically to classic"
      engine_identity;
    let record_recheck_identity =
      (* Record a short run with a binary trace tapped in, then replay
         the same property set offline: the verdict documents must be
         byte-identical (the recheck contract, end to end). *)
      let path = Filename.temp_file "tabv_doctor" ".trace" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let meta =
            { Tabv_trace.Meta.model = "des56-rtl"; seed = 1; ops = 10;
              engine =
                Tabv_sim.Kernel.engine_name
                  (Tabv_sim.Kernel.get_default_engine ()) }
          in
          let live =
            Tabv_trace.Writer.with_file ~path meta (fun writer ->
                Testbench.run_des56_rtl ~trace_writer:writer
                  ~properties:Des56_props.all quick_ops)
          in
          let live_doc =
            Tabv_core.Report_json.to_string
              (Tabv_core.Report_json.verdict_report_json
                 ~run:[ ("model", Tabv_core.Report_json.String "des56-rtl") ]
                 ~properties:live.Testbench.checker_stats ())
          in
          let rechecked =
            Tabv_campaign.Recheck.run ~workers:2 ~retries:0 ~trace:path
              Des56_props.all
          in
          let recheck_doc =
            Tabv_core.Report_json.to_string
              (Tabv_core.Report_json.verdict_report_json
                 ~run:[ ("model", Tabv_core.Report_json.String "des56-rtl") ]
                 ~properties:rechecked.Tabv_campaign.Recheck.snapshots ())
          in
          live_doc = recheck_doc)
    in
    check "record + recheck reports byte-identically to the live check"
      record_recheck_identity;
    let mini_campaign =
      let open Tabv_campaign.Campaign in
      run ~workers:2
        (expand_matrix ~duvs:[ Des56; Colorconv ] ~levels:[ Rtl; Tlm_ca ]
           ~seeds:[ 1 ] ~ops:10 ())
    in
    check "mini-campaign (4 jobs, 2 worker domains)"
      (Tabv_campaign.Campaign.all_green mini_campaign
       && mini_campaign.Tabv_campaign.Campaign.completed = 4);
    let executor_smoke =
      let open Tabv_campaign in
      let jobs =
        Campaign.expand_matrix ~duvs:[ Campaign.Des56 ]
          ~levels:[ Campaign.Rtl; Campaign.Tlm_ca ] ~seeds:[ 1 ] ~ops:10 ()
      in
      let report exec =
        Tabv_core.Report_json.to_string
          (Campaign.report_json (Campaign.run ~workers:2 ~exec jobs))
      in
      report (Executor.config Executor.In_domain)
      = report (Executor.config Executor.Subprocess)
    in
    check "subprocess executor matches in-domain (byte-identical report)"
      executor_smoke;
    let journal_smoke =
      let open Tabv_campaign in
      let jobs =
        Campaign.expand_matrix ~duvs:[ Campaign.Colorconv ]
          ~levels:[ Campaign.Rtl ] ~seeds:[ 1; 2 ] ~ops:10 ()
      in
      let fingerprint = Campaign.fingerprint ~retries:1 jobs in
      let path = Filename.temp_file "tabv_doctor" ".journal" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let with_journal ~resume f =
            match
              Journal.open_ ~path ~kind:Campaign.journal_kind ~fingerprint
                ~resume ()
            with
            | Error msg -> failwith msg
            | Ok j ->
              Fun.protect ~finally:(fun () -> Journal.close j) (fun () -> f j)
          in
          let fresh =
            with_journal ~resume:false (fun journal ->
              Campaign.run ~workers:2 ~journal jobs)
          in
          let resumed =
            with_journal ~resume:true (fun journal ->
              Campaign.run ~workers:2 ~journal jobs)
          in
          resumed.Campaign.replayed = List.length jobs
          && Tabv_core.Report_json.to_string (Campaign.report_json fresh)
             = Tabv_core.Report_json.to_string (Campaign.report_json resumed))
    in
    check "journal round-trip (resume replays all jobs byte-identically)"
      journal_smoke;
    let journal_recovery =
      (* Crash-image recovery: run a journaled campaign, truncate the
         journal at arbitrary bytes (torn appends, lost fsyncs), and
         resume each image — the CRC framing must salvage the valid
         prefix and every resumed report must be byte-identical to the
         uninterrupted one. *)
      let open Tabv_campaign in
      let jobs =
        Campaign.expand_matrix ~duvs:[ Campaign.Colorconv ]
          ~levels:[ Campaign.Rtl ] ~seeds:[ 1; 2 ] ~ops:10 ()
      in
      let fingerprint = Campaign.fingerprint ~retries:1 jobs in
      let path = Filename.temp_file "tabv_doctor" ".journal" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let with_journal ~resume f =
            match
              Journal.open_ ~path ~kind:Campaign.journal_kind ~fingerprint
                ~resume ()
            with
            | Error msg -> failwith msg
            | Ok j ->
              Fun.protect ~finally:(fun () -> Journal.close j) (fun () -> f j)
          in
          let fresh =
            with_journal ~resume:false (fun journal ->
                Campaign.run ~workers:2 ~journal jobs)
          in
          let expected =
            Tabv_core.Report_json.to_string (Campaign.report_json fresh)
          in
          let full = In_channel.with_open_bin path In_channel.input_all in
          let len = String.length full in
          let cuts = [ 1; len / 3; len / 2; len - 2 ] in
          List.for_all
            (fun cut ->
              let cut = max 0 (min cut len) in
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc (String.sub full 0 cut));
              let resumed =
                with_journal ~resume:true (fun journal ->
                    Campaign.run ~workers:2 ~journal jobs)
              in
              Tabv_core.Report_json.to_string (Campaign.report_json resumed)
              = expected)
            cuts)
    in
    check "journal recovery (resume from truncated crash images, byte-identical)"
      journal_recovery;
    (* Serve smoke: an in-process daemon on a temp socket must answer a
       check and a 2-job campaign with exactly the bytes the one-shot
       paths produce, replay the check warm, and drain cleanly on a
       shutdown request. *)
    let serve_check_cold = ref false
    and serve_check_warm = ref false
    and serve_campaign_ok = ref false
    and serve_journal_ok = ref false
    and serve_state_clean = ref false
    and serve_shutdown_ok = ref false in
    (let expected_check =
       Tabv_checker.Progression.reset_universe ();
       let properties, grid_properties =
         Cli.properties_for Models.Des56_rtl None
       in
       let result =
         Cli.run_model Models.Des56_rtl ~seed:5 ~ops:15 ~properties
           ~grid_properties
       in
       Tabv_core.Report_json.to_string
         (Models.verdict_report Models.Des56_rtl ~seed:5 ~ops:15 result)
       ^ "\n"
     in
     let manifest_json =
       let job level =
         Tabv_core.Report_json.Assoc
           [ ("duv", Tabv_core.Report_json.String "des56");
             ("level", Tabv_core.Report_json.String level);
             ("seed", Tabv_core.Report_json.Int 1);
             ("ops", Tabv_core.Report_json.Int 10) ]
       in
       Tabv_core.Report_json.Assoc
         [ ("jobs", Tabv_core.Report_json.List [ job "rtl"; job "tlm-ca" ]) ]
     in
     let expected_campaign =
       match Tabv_campaign.Campaign.manifest_of_json manifest_json with
       | Error msg -> failwith msg
       | Ok m ->
         Tabv_core.Report_json.to_string
           (Tabv_campaign.Campaign.report_json
              (Tabv_campaign.Campaign.run ~workers:2 ~retries:1
                 m.Tabv_campaign.Campaign.manifest_jobs))
         ^ "\n"
     in
     let dir = Filename.temp_file "tabv_doctor" ".serve" in
     Sys.remove dir;
     Unix.mkdir dir 0o700;
     let state = Filename.concat dir "state" in
     Unix.mkdir state 0o700;
     let socket = Filename.concat dir "tabv.sock" in
     (* The sweep must run on *every* exit path — a failed smoke check
        must not leave stale journals (or the socket) behind in the
        temp tree. *)
     let sweep d =
       match Sys.readdir d with
       | entries ->
         Array.iter
           (fun entry ->
             try Sys.remove (Filename.concat d entry) with Sys_error _ -> ())
           entries;
         (try Unix.rmdir d with Unix.Unix_error _ -> ())
       | exception Sys_error _ -> ()
     in
     Fun.protect
       ~finally:(fun () ->
         sweep state;
         sweep dir)
       (fun () ->
         let config =
           { (Tabv_serve.Server.default_config ~socket ()) with
             workers = 2;
             state_dir = Some state }
         in
         let ready = Atomic.make false in
         let server =
           Domain.spawn (fun () ->
               ignore
                 (Tabv_serve.Server.run
                    ~on_ready:(fun () -> Atomic.set ready true)
                    config))
         in
         while not (Atomic.get ready) do
           Unix.sleepf 0.002
         done;
         (match Tabv_serve.Client.connect (`Unix socket) with
          | Error msg -> prerr_endline ("serve smoke: " ^ msg)
          | Ok client ->
            let job =
              Tabv_serve.Protocol.Check
                { model = Models.Des56_rtl; seed = 5; ops = 15; props = None;
                  engine = None; trace_out = None }
            in
            (match Tabv_serve.Client.request client job with
             | Tabv_serve.Client.Result { ok = true; warm = false; report } ->
               serve_check_cold := report = expected_check
             | _ -> ());
            (match Tabv_serve.Client.request client job with
             | Tabv_serve.Client.Result { ok = true; warm = true; report } ->
               serve_check_warm := report = expected_check
             | _ -> ());
            (match
               Tabv_serve.Client.request client
                 (Tabv_serve.Protocol.Campaign
                    { manifest = manifest_json; workers = 2;
                      retries = Some 1; journal = false })
             with
             | Tabv_serve.Client.Result { ok = true; warm = false; report } ->
               serve_campaign_ok := report = expected_campaign
             | _ -> ());
            (match
               Tabv_serve.Client.request client
                 (Tabv_serve.Protocol.Campaign
                    { manifest = manifest_json; workers = 2;
                      retries = Some 1; journal = true })
             with
             | Tabv_serve.Client.Result { ok = true; report; _ } ->
               serve_journal_ok := report = expected_campaign
             | _ -> ());
            (* A completed journaled campaign must collect its own
               journal: nothing may be left in the state dir. *)
            serve_state_clean := Sys.readdir state = [||];
            (match
               Tabv_serve.Client.control client Tabv_serve.Protocol.Shutdown
             with
             | Tabv_serve.Client.Shutting_down -> serve_shutdown_ok := true
             | _ -> ());
            Tabv_serve.Client.close client);
         Domain.join server));
    check "serve: socket check is byte-identical to the one-shot path"
      !serve_check_cold;
    check "serve: warm replay is byte-identical" !serve_check_warm;
    check "serve: 2-job campaign over the socket is byte-identical"
      !serve_campaign_ok;
    check "serve: journaled campaign matches the plain one byte-for-byte"
      !serve_journal_ok;
    check "serve: state dir holds no stale journals after the smoke"
      !serve_state_clean;
    check "serve: graceful shutdown drains" !serve_shutdown_ok;
    if !failures = 0 then print_endline "all checks passed"
    else begin
      Printf.printf "%d check(s) FAILED\n" !failures;
      exit 1
    end
  in
  let doc = "Run the built-in consistency checks (known answers, laws, flows)." in
  Cmd.v (Cmd.info "doctor" ~doc) Term.(const run $ const ())

(* --- fig3 --------------------------------------------------------- *)

let fig3_cmd =
  let run () =
    List.iteri
      (fun i report ->
        if i < 3 then Format.printf "%a@.@." Tabv_core.Methodology.pp_report report)
      (Des56_props.abstraction_reports ())
  in
  let doc = "Reproduce the paper's Fig. 3 property rewriting (p1-p3 to q1-q3)." in
  Cmd.v (Cmd.info "fig3" ~doc) Term.(const run $ const ())

(* The hidden worker hook: `tabv _worker` never parses a command line —
   it turns this process into a frame server for a subprocess-executor
   coordinator (usually another tabv).  Must run before Cmd.eval so no
   cmdliner output pollutes the frame protocol on stdout. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "_worker" then begin
    (* Serve daemons delegate whole requests to subprocess workers via
       a registered op; the worker must know how to decode it. *)
    Tabv_serve.Handler.register_worker_op ();
    Tabv_campaign.Worker.main ();
    exit 0
  end

(* Hidden two-process golden hook: `tabv _serve_golden OUT` boots a
   daemon on a temp socket with *subprocess* workers, submits the same
   check the rc_des56_rtl_live.json golden rule runs, verifies the
   warm replay is byte-identical, and writes the report bytes to OUT
   so the test suite can diff them against the one-shot CLI's file. *)
let () =
  if Array.length Sys.argv > 2 && Sys.argv.(1) = "_serve_golden" then begin
    let out = Sys.argv.(2) in
    let die msg =
      prerr_endline ("tabv _serve_golden: " ^ msg);
      exit 1
    in
    let dir = Filename.temp_file "tabv_serve" ".golden" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let socket = Filename.concat dir "tabv.sock" in
    let config =
      { (Tabv_serve.Server.default_config ~socket ()) with
        workers = 2;
        executor = Tabv_serve.Server.Subprocess_workers }
    in
    let ready = Atomic.make false in
    let server =
      Domain.spawn (fun () ->
          ignore
            (Tabv_serve.Server.run
               ~on_ready:(fun () -> Atomic.set ready true)
               config))
    in
    while not (Atomic.get ready) do
      Unix.sleepf 0.002
    done;
    let client =
      match Tabv_serve.Client.connect (`Unix socket) with
      | Ok c -> c
      | Error msg -> die msg
    in
    let job =
      Tabv_serve.Protocol.Check
        { model = Models.Des56_rtl; seed = 42; ops = 20; props = None;
          engine = None; trace_out = None }
    in
    let cold =
      match Tabv_serve.Client.request client job with
      | Tabv_serve.Client.Result { ok = true; warm = false; report } -> report
      | Tabv_serve.Client.Result _ -> die "unexpected first reply shape"
      | Tabv_serve.Client.Rejected _ -> die "rejected"
      | Tabv_serve.Client.Failed msg -> die msg
    in
    (match Tabv_serve.Client.request client job with
     | Tabv_serve.Client.Result { ok = true; warm = true; report }
       when report = cold ->
       ()
     | _ -> die "warm replay is not byte-identical");
    (match Tabv_serve.Client.control client Tabv_serve.Protocol.Shutdown with
     | Tabv_serve.Client.Shutting_down -> ()
     | _ -> die "shutdown refused");
    Tabv_serve.Client.close client;
    Domain.join server;
    Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc cold);
    (try Sys.remove socket with Sys_error _ -> ());
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    exit 0
  end

let () =
  let doc = "RTL property abstraction for TLM assertion-based verification" in
  let info = Cmd.info "tabv" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ abstract_cmd; check_cmd; record_cmd; recheck_cmd; campaign_cmd;
            qualify_cmd; serve_cmd; client_cmd; trace_cmd; replay_cmd;
            doctor_cmd; fig3_cmd ]))
