(* Shared flag specs and run plumbing for the tabv subcommands.

   `check`, `record` and `recheck` must agree on everything that shapes
   a run — the model enumeration, the workload flags, property-file
   parsing and linting, the AT abstraction split, the executor /
   journal / interrupt plumbing and the JSON report writers — because
   the whole point of recording is that `record` + `recheck` is
   byte-identical to the live `check`.  One spec here, many terms
   there. *)

open Cmdliner
open Tabv_psl
open Tabv_duv

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [fail] prints `tabv CMD: message` and exits with the usage status
   (2): flag-level problems, not verification verdicts. *)
let fail cmd msg =
  Printf.eprintf "tabv %s: %s\n" cmd msg;
  exit 2

(* --- models ------------------------------------------------------- *)

type model =
  | Des56_rtl_m
  | Des56_ca_m
  | Des56_at_m
  | Des56_lt_m
  | Colorconv_rtl_m
  | Colorconv_ca_m
  | Colorconv_at_m
  | Memctrl_rtl_m
  | Memctrl_ca_m
  | Memctrl_at_m

let model_names =
  [ ("des56-rtl", Des56_rtl_m); ("des56-tlm-ca", Des56_ca_m);
    ("des56-tlm-at", Des56_at_m); ("des56-tlm-lt", Des56_lt_m);
    ("colorconv-rtl", Colorconv_rtl_m); ("colorconv-tlm-ca", Colorconv_ca_m);
    ("colorconv-tlm-at", Colorconv_at_m); ("memctrl-rtl", Memctrl_rtl_m);
    ("memctrl-tlm-ca", Memctrl_ca_m); ("memctrl-tlm-at", Memctrl_at_m) ]

let model_conv = Arg.enum model_names

let model_name model =
  fst (List.find (fun (_, m) -> m = model) model_names)

let model_of_name name =
  List.assoc_opt name model_names

let model_arg =
  Arg.(
    required
    & opt (some model_conv) None
    & info [ "model"; "m" ] ~docv:"MODEL"
        ~doc:
          "One of des56-rtl, des56-tlm-ca, des56-tlm-at, des56-tlm-lt, \
           colorconv-rtl, colorconv-tlm-ca, colorconv-tlm-at, memctrl-rtl, \
           memctrl-tlm-ca, memctrl-tlm-at.")

let known_signals = function
  | Des56_rtl_m | Des56_ca_m | Des56_at_m | Des56_lt_m ->
    Des56_iface.signal_names
  | Colorconv_rtl_m | Colorconv_ca_m | Colorconv_at_m ->
    Colorconv_iface.signal_names
  | Memctrl_rtl_m | Memctrl_ca_m | Memctrl_at_m -> Memctrl_iface.signal_names

(* --- workload flags ----------------------------------------------- *)

let ops_arg =
  Arg.(
    value & opt int 200
    & info [ "ops"; "n" ] ~docv:"N" ~doc:"Workload size (operations or pixels).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let props_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "props"; "p" ] ~docv:"FILE"
        ~doc:
          "Check the RTL properties from this file instead of the built-in \
           set.  On an approximately-timed model the properties are first \
           abstracted with Methodology III.1 (clock 10 ns, the model's \
           abstracted signals); only the automatically-safe results are \
           attached.")

(* --- engine ------------------------------------------------------- *)

(* Engine selection is a process-wide default ([Kernel.create] reads
   it), so one flag covers every kernel a subcommand creates —
   including worker subprocesses, which receive the selection over the
   wire ([sim_engine] in every request). *)
let engine_arg =
  let engine_enum =
    Arg.enum
      [ ("classic", Tabv_sim.Kernel.Classic);
        ("compiled", Tabv_sim.Kernel.Compiled) ]
  in
  Arg.(
    value
    & opt (some engine_enum) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Simulation kernel engine: $(b,classic) (the dynamic event-driven \
           reference) or $(b,compiled) (levelized static schedule over a \
           dense signal arena).  Reports and metrics are byte-identical \
           across engines; compiled is faster on scheduling-bound runs.")

let apply_engine = Option.iter Tabv_sim.Kernel.set_default_engine

(* --- property files ----------------------------------------------- *)

let parse_props_file path =
  match Parser.file (read_file path) with
  | properties -> properties
  | exception Parser.Parse_error { line; col; message } ->
    Printf.eprintf "%s:%d:%d: %s\n" path line col message;
    exit 1

let lint_props ~known properties =
  List.iter
    (fun p ->
      match Property.unknown_signals ~known p with
      | [] -> ()
      | unknown ->
        Printf.eprintf "warning: property %s mentions unknown signal(s): %s\n"
          p.Property.name
          (String.concat ", " unknown))
    properties

(* Split the automatically-safe abstractions into strict-wrapper
   properties and grid-wrapper ones (timed operators under
   until/release need the full clock grid). *)
let abstract_for_at ~abstracted_signals properties =
  let reports =
    Tabv_core.Methodology.abstract_all ~clock_period:10 ~abstracted_signals
      properties
  in
  List.fold_left
    (fun (strict, grid) r ->
      match r.Tabv_core.Methodology.output with
      | Some q when not r.Tabv_core.Methodology.requires_review ->
        if Tabv_core.Methodology.needs_dense_trace q.Property.formula then
          (strict, q :: grid)
        else (q :: strict, grid)
      | Some _ | None -> (strict, grid))
    ([], []) reports
  |> fun (strict, grid) -> (List.rev strict, List.rev grid)

(* The property sets a run actually attaches for [model], given the
   optional user property set: [(properties, grid_properties)] in
   attach (= report) order.  Shared by `check`/`record` (what to
   attach) and `recheck` (the default property set of a trace). *)
let properties_for model user =
  let rtl_or builtin =
    match user with
    | Some properties -> properties
    | None -> builtin
  in
  match model with
  | Des56_rtl_m | Des56_ca_m -> (rtl_or Des56_props.all, [])
  | Des56_at_m ->
    (match user with
     | Some properties ->
       abstract_for_at ~abstracted_signals:Des56_props.abstracted_signals
         properties
     | None -> (Des56_props.tlm_reviewed (), []))
  | Des56_lt_m ->
    (* Boolean invariants only: the LT model is not timing equivalent,
       timed properties would fail by design. *)
    (match user with
     | Some properties ->
       ( List.filter
           (fun p -> Simple_subset.is_boolean p.Property.formula)
           (fst
              (abstract_for_at
                 ~abstracted_signals:Des56_props.abstracted_signals properties)),
         [] )
     | None ->
       ( [ Property.make ~name:"lt_inv"
             ~context:(Context.Transaction Context.Base_trans)
             (Parser.formula_only "always(!rdy || ds)") ],
         [] ))
  | Colorconv_rtl_m | Colorconv_ca_m -> (rtl_or Colorconv_props.all, [])
  | Colorconv_at_m ->
    (match user with
     | Some properties ->
       abstract_for_at ~abstracted_signals:Colorconv_props.abstracted_signals
         properties
     | None -> (Colorconv_props.tlm_reviewed (), []))
  | Memctrl_rtl_m | Memctrl_ca_m -> (rtl_or Memctrl_props.all, [])
  | Memctrl_at_m ->
    (match user with
     | Some properties ->
       ( fst
           (abstract_for_at
              ~abstracted_signals:Memctrl_props.abstracted_signals properties),
         [] )
     | None -> (Memctrl_props.tlm_auto_safe (), []))

(* Drive [model] over its seeded workload with [properties] attached
   (and, on the AT models, [grid_properties] under the grid wrapper).
   [trace_writer] taps the checker evaluation points into a binary
   trace; `check` leaves it [None], `record` supplies one. *)
let run_model ?metrics ?trace_writer model ~seed ~ops ~properties
    ~grid_properties =
  match model with
  | Des56_rtl_m ->
    Testbench.run_des56_rtl ?metrics ?trace_writer ~properties
      (Workload.des56 ~seed ~count:ops ())
  | Des56_ca_m ->
    Testbench.run_des56_tlm_ca ?metrics ?trace_writer ~properties
      (Workload.des56 ~seed ~count:ops ())
  | Des56_at_m ->
    Testbench.run_des56_tlm_at ?metrics ?trace_writer ~properties
      ~grid_properties
      (Workload.des56 ~seed ~count:ops ())
  | Des56_lt_m ->
    Testbench.run_des56_tlm_lt ?metrics ~properties
      (Workload.des56 ~seed ~count:ops ())
  | Colorconv_rtl_m ->
    Testbench.run_colorconv_rtl ?metrics ?trace_writer ~properties
      (Workload.colorconv ~seed ~count:ops ())
  | Colorconv_ca_m ->
    Testbench.run_colorconv_tlm_ca ?metrics ?trace_writer ~properties
      (Workload.colorconv ~seed ~count:ops ())
  | Colorconv_at_m ->
    Testbench.run_colorconv_tlm_at ?metrics ?trace_writer ~properties
      ~grid_properties
      (Workload.colorconv ~seed ~count:ops ())
  | Memctrl_rtl_m ->
    Memctrl_testbench.run_rtl ?metrics ?trace_writer ~properties
      (Workload.memctrl ~seed ~count:ops ())
  | Memctrl_ca_m ->
    Memctrl_testbench.run_tlm_ca ?metrics ?trace_writer ~properties
      (Workload.memctrl ~seed ~count:ops ())
  | Memctrl_at_m ->
    Memctrl_testbench.run_tlm_at ?metrics ?trace_writer ~properties
      (Workload.memctrl ~seed ~count:ops ())

(* The LT model records nothing: it exists to violate timing
   equivalence, so a trace of it would not replay meaningfully. *)
let supports_trace = function
  | Des56_lt_m -> false
  | Des56_rtl_m | Des56_ca_m | Des56_at_m | Colorconv_rtl_m | Colorconv_ca_m
  | Colorconv_at_m | Memctrl_rtl_m | Memctrl_ca_m | Memctrl_at_m ->
    true

(* --- executor / journal / interrupt plumbing ---------------------- *)

let isolate_arg =
  Arg.(
    value & flag
    & info [ "isolate" ]
        ~doc:
          "Run jobs in crash-isolated worker subprocesses instead of \
           in-process domains.  A job that aborts, segfaults, allocates \
           without bound or busy-loops kills only its worker; the campaign \
           records the death and continues.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Per-job wall-clock watchdog (requires $(b,--isolate)): a worker \
           still running after SECS is SIGKILLed and the job recorded as \
           timed out after its retries are exhausted.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Write-ahead journal: append every completed job's result durably \
           to FILE as it finishes, so an interrupted run can be finished \
           later with $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay completed jobs from the $(b,--journal) file instead of \
           re-running them.  The journal must belong to exactly this \
           campaign (same jobs, same retry budget); the final report is \
           byte-identical to an uninterrupted run.")

(* Build the executor configuration from the flags. *)
let executor_of_flags ~fail ~isolate ~timeout =
  let open Tabv_campaign.Executor in
  match (isolate, timeout) with
  | false, Some _ -> fail "--timeout requires --isolate"
  | false, None -> config In_domain
  | true, timeout -> config ?job_timeout_s:timeout Subprocess

(* Open (or not) the journal named by the flags. *)
let journal_of_flags ~fail ~kind ~fingerprint ~path ~resume =
  match (path, resume) with
  | None, true -> fail "--resume requires --journal"
  | None, false -> None
  | Some path, resume ->
    (match Tabv_campaign.Journal.open_ ~path ~kind ~fingerprint ~resume () with
     | Ok j -> Some j
     | Error msg -> fail (Printf.sprintf "%s: %s" path msg))

(* Run [f interrupted] with SIGINT/SIGTERM captured into [interrupted]
   (restoring the previous dispositions afterwards), so a ^C drains
   gracefully: workers die, the journal keeps its completed records,
   and the command reports what is pending instead of vanishing. *)
let with_interrupt f =
  let flag = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set flag true) in
  let previous_int = Sys.signal Sys.sigint handler in
  let previous_term = Sys.signal Sys.sigterm handler in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint previous_int;
      Sys.set_signal Sys.sigterm previous_term)
    (fun () -> f (fun () -> Atomic.get flag))

(* The "how to pick the run back up" part of an interrupt message. *)
let resume_hint = function
  | Some path -> Printf.sprintf "; resume with --journal %s --resume" path
  | None -> " (no --journal, so completed work is lost)"

(* --- report writers ----------------------------------------------- *)

(* Write a JSON document to FILE, or stdout for "-"; the trailing
   newline makes the file diff-friendly (the byte-identity tests diff
   these files directly). *)
let write_json ?(announce = "report") path doc =
  let text = Tabv_core.Report_json.to_string doc in
  match path with
  | "-" -> print_endline text
  | path ->
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc text;
        Out_channel.output_char oc '\n');
    Printf.printf "wrote %s to %s\n" announce path

let report_json_arg ~doc =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-json" ] ~docv:"FILE" ~doc)

(* The deterministic verdict report of one live run: run identification
   from the command line, per-property counters from the testbench in
   attach order.  `recheck` builds the same document from the trace
   meta + merged snapshots; the two must be byte-identical. *)
let verdict_report ~model ~seed ~ops result =
  let open Tabv_core.Report_json in
  verdict_report_json
    ~run:
      [ ("model", String (model_name model)); ("seed", Int seed);
        ("ops", Int ops) ]
    ~properties:result.Testbench.checker_stats ()
