(* Shared flag specs and run plumbing for the tabv subcommands.

   `check`, `record` and `recheck` must agree on everything that shapes
   a run — the model enumeration, the workload flags, property-file
   parsing and linting, the AT abstraction split, the executor /
   journal / interrupt plumbing and the JSON report writers — because
   the whole point of recording is that `record` + `recheck` is
   byte-identical to the live `check`.  One spec here, many terms
   there. *)

open Cmdliner
open Tabv_psl
open Tabv_duv

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [fail] prints `tabv CMD: message` and exits with the usage status
   (2): flag-level problems, not verification verdicts. *)
let fail cmd msg =
  Printf.eprintf "tabv %s: %s\n" cmd msg;
  exit 2

(* --- models --------------------------------------------------------

   The catalog itself (names, property sets, testbench dispatch) lives
   in [Tabv_duv.Models] so the serve daemon executes requests through
   exactly the plumbing the one-shot subcommands use; this section only
   dresses it in cmdliner clothes. *)

type model = Models.t

let model_conv = Arg.enum Models.names
let model_name = Models.name
let model_of_name = Models.of_name

let model_arg =
  Arg.(
    required
    & opt (some model_conv) None
    & info [ "model"; "m" ] ~docv:"MODEL"
        ~doc:
          "One of des56-rtl, des56-tlm-ca, des56-tlm-at, des56-tlm-lt, \
           colorconv-rtl, colorconv-tlm-ca, colorconv-tlm-at, memctrl-rtl, \
           memctrl-tlm-ca, memctrl-tlm-at.")

let known_signals = Models.known_signals

(* --- workload flags ----------------------------------------------- *)

let ops_arg =
  Arg.(
    value & opt int 200
    & info [ "ops"; "n" ] ~docv:"N" ~doc:"Workload size (operations or pixels).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let props_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "props"; "p" ] ~docv:"FILE"
        ~doc:
          "Check the RTL properties from this file instead of the built-in \
           set.  On an approximately-timed model the properties are first \
           abstracted with Methodology III.1 (clock 10 ns, the model's \
           abstracted signals); only the automatically-safe results are \
           attached.")

(* --- engine ------------------------------------------------------- *)

(* Engine selection is a process-wide default ([Kernel.create] reads
   it), so one flag covers every kernel a subcommand creates —
   including worker subprocesses, which receive the selection over the
   wire ([sim_engine] in every request). *)
let engine_arg =
  let engine_enum =
    Arg.enum
      [ ("classic", Tabv_sim.Kernel.Classic);
        ("compiled", Tabv_sim.Kernel.Compiled) ]
  in
  Arg.(
    value
    & opt (some engine_enum) None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Simulation kernel engine: $(b,classic) (the dynamic event-driven \
           reference) or $(b,compiled) (levelized static schedule over a \
           dense signal arena).  Reports and metrics are byte-identical \
           across engines; compiled is faster on scheduling-bound runs.")

let apply_engine = Option.iter Tabv_sim.Kernel.set_default_engine

(* --- property files ----------------------------------------------- *)

let parse_props_file path =
  match Parser.file (read_file path) with
  | properties -> properties
  | exception Parser.Parse_error { line; col; message } ->
    Printf.eprintf "%s:%d:%d: %s\n" path line col message;
    exit 1

let lint_props ~known properties =
  List.iter
    (fun p ->
      match Property.unknown_signals ~known p with
      | [] -> ()
      | unknown ->
        Printf.eprintf "warning: property %s mentions unknown signal(s): %s\n"
          p.Property.name
          (String.concat ", " unknown))
    properties

let properties_for = Models.properties_for
let run_model = Models.run
let supports_trace = Models.supports_trace

(* --- executor / journal / interrupt plumbing ---------------------- *)

let isolate_arg =
  Arg.(
    value & flag
    & info [ "isolate" ]
        ~doc:
          "Run jobs in crash-isolated worker subprocesses instead of \
           in-process domains.  A job that aborts, segfaults, allocates \
           without bound or busy-loops kills only its worker; the campaign \
           records the death and continues.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:
          "Per-job wall-clock watchdog (requires $(b,--isolate)): a worker \
           still running after SECS is SIGKILLed and the job recorded as \
           timed out after its retries are exhausted.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Write-ahead journal: append every completed job's result durably \
           to FILE as it finishes, so an interrupted run can be finished \
           later with $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay completed jobs from the $(b,--journal) file instead of \
           re-running them.  The journal must belong to exactly this \
           campaign (same jobs, same retry budget); the final report is \
           byte-identical to an uninterrupted run.")

(* Build the executor configuration from the flags. *)
let executor_of_flags ~fail ~isolate ~timeout =
  let open Tabv_campaign.Executor in
  match (isolate, timeout) with
  | false, Some _ -> fail "--timeout requires --isolate"
  | false, None -> config In_domain
  | true, timeout -> config ?job_timeout_s:timeout Subprocess

(* Open (or not) the journal named by the flags. *)
let journal_of_flags ~fail ~kind ~fingerprint ~path ~resume =
  match (path, resume) with
  | None, true -> fail "--resume requires --journal"
  | None, false -> None
  | Some path, resume ->
    (match Tabv_campaign.Journal.open_ ~path ~kind ~fingerprint ~resume () with
     | Ok j ->
       let dropped = Tabv_campaign.Journal.truncated_bytes j in
       if dropped > 0 then
         Printf.eprintf
           "%s: dropped %d bytes of torn/corrupt journal suffix (the \
            affected jobs will re-run)\n%!"
           path dropped;
       Some j
     | Error msg -> fail (Printf.sprintf "%s: %s" path msg))

(* Run [f interrupted] with SIGINT/SIGTERM captured into [interrupted]
   (restoring the previous dispositions afterwards), so a ^C drains
   gracefully: workers die, the journal keeps its completed records,
   and the command reports what is pending instead of vanishing. *)
let with_interrupt f =
  let flag = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set flag true) in
  let previous_int = Sys.signal Sys.sigint handler in
  let previous_term = Sys.signal Sys.sigterm handler in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint previous_int;
      Sys.set_signal Sys.sigterm previous_term)
    (fun () -> f (fun () -> Atomic.get flag))

(* The "how to pick the run back up" part of an interrupt message. *)
let resume_hint = function
  | Some path -> Printf.sprintf "; resume with --journal %s --resume" path
  | None -> " (no --journal, so completed work is lost)"

(* --- report writers ----------------------------------------------- *)

(* Write a JSON document to FILE, or stdout for "-"; the trailing
   newline makes the file diff-friendly (the byte-identity tests diff
   these files directly).  Files commit via temp + fsync + atomic
   rename, so an interrupted run leaves either the previous report or
   the complete new one — never a torn file. *)
let write_json ?(announce = "report") path doc =
  let text = Tabv_core.Report_json.to_string doc in
  match path with
  | "-" -> print_endline text
  | path ->
    Tabv_core.Io.write_file_atomic ~path (text ^ "\n");
    Printf.printf "wrote %s to %s\n" announce path

let report_json_arg ~doc =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-json" ] ~docv:"FILE" ~doc)

let verdict_report ~model ~seed ~ops result =
  Models.verdict_report model ~seed ~ops result
