(* Offline ABV: record a waveform once, check properties against it
   later — no re-simulation, exactly like replaying a VCD produced by
   any simulator.

     1. simulate the DES56 RTL model and dump the evaluation trace to
        a VCD file;
     2. read the VCD back (any VCD in the supported subset works);
     3. replay the RTL property set over the parsed waveform and print
        the coverage report;
     4. do the same against a tampered waveform to show detection.

   Run with: dune exec examples/offline_replay.exe *)

open Tabv_psl
open Tabv_sim
open Tabv_duv

let vcd_path = Filename.temp_file "tabv_offline" ".vcd"

let dump_trace trace = Trace_dump.to_file trace vcd_path

let replay title trace =
  Printf.printf "\n=== %s ===\n" title;
  let outcomes =
    (Tabv_checker.Replay.run [@alert "-deprecated"]) Des56_props.all trace
  in
  let monitors = List.map (fun o -> o.Tabv_checker.Replay.monitor) outcomes in
  Format.printf "%a@." Tabv_checker.Coverage.pp_table monitors

let () =
  (* 1. Record. *)
  let ops = Workload.des56 ~seed:77 ~count:40 ~zero_fraction:0.4 () in
  let result = Testbench.run_des56_rtl ~record_trace:true ops in
  let trace =
    match result.Testbench.trace with
    | Some trace -> trace
    | None -> failwith "no trace recorded"
  in
  dump_trace trace;
  Printf.printf "recorded %d evaluation points into %s\n" (Trace.length trace) vcd_path;

  (* 2. Read back. *)
  let waveform = Vcd_reader.load vcd_path in
  Printf.printf "parsed back: %d signals, %d evaluation points\n"
    (List.length waveform.Vcd_reader.signals)
    (Trace.length waveform.Vcd_reader.trace);

  (* 3. Replay. *)
  replay "replaying the recorded waveform" waveform.Vcd_reader.trace;

  (* 4. Tamper with the waveform: delay every rdy pulse by one
     evaluation point, as a faulty simulator run would. *)
  let entries = Trace.to_list waveform.Vcd_reader.trace in
  let tampered =
    List.mapi
      (fun i (entry : Trace.entry) ->
        let rdy_of (e : Trace.entry) =
          match Trace.lookup e "rdy" with
          | Some (Expr.VBool b) -> b
          | Some (Expr.VInt _) | None -> false
        in
        let previous_rdy = if i = 0 then false else rdy_of (List.nth entries (i - 1)) in
        { entry with
          Trace.env =
            List.map
              (fun (name, value) ->
                if name = "rdy" then (name, Expr.VBool previous_rdy) else (name, value))
              entry.Trace.env })
      entries
  in
  replay "replaying a tampered waveform (rdy one point late)"
    (Trace.of_list tampered);
  Sys.remove vcd_path
