(* Quickstart: take one RTL property, abstract it with Methodology
   III.1, and check the result on the approximately-timed DES56 model.

   Run with: dune exec examples/quickstart.exe *)

open Tabv_psl
open Tabv_duv

let () =
  (* 1. An RTL property, written exactly as in the paper's Fig. 3. *)
  let p1 =
    Parser.property_exn ~name:"p1"
      "always (!(ds && indata = 0) || next[17](out != 0)) @clk_pos"
  in
  Format.printf "RTL property:  %a@." Property.pp p1;

  (* 2. Abstract it for a TLM model (clock period 10 ns; the TLM-AT
     abstraction removed the two early-warning handshake signals). *)
  let report =
    Tabv_core.Methodology.abstract ~clock_period:10
      ~abstracted_signals:[ "rdy_next_cycle"; "rdy_next_next_cycle" ]
      ~rename:(fun _ -> "q1") p1
  in
  let q1 =
    match report.Tabv_core.Methodology.output with
    | Some q -> q
    | None -> failwith "p1 should survive abstraction"
  in
  Format.printf "TLM property:  %a@." Property.pp q1;
  if report.Tabv_core.Methodology.requires_review then
    print_endline "(flagged for human review)";

  (* 3. Check it dynamically on the TLM-AT model: the checker wrapper
     evaluates q1 at transaction events and verifies out != 0 exactly
     170 ns after each zero-block strobe. *)
  let ops = Workload.des56 ~seed:2024 ~count:100 ~zero_fraction:0.5 () in
  let result = Testbench.run_des56_tlm_at ~properties:[ q1 ] ops in
  Printf.printf "simulated %d operations in %d ns of virtual time\n"
    result.Testbench.completed_ops result.Testbench.sim_time_ns;
  List.iter
    (fun stat -> Format.printf "%a@." Testbench.pp_checker_stat stat)
    result.Testbench.checker_stats;
  if Testbench.total_failures result = 0 then
    print_endline "q1 holds on the TLM-AT model — abstraction verified."
  else print_endline "q1 failed: the TLM model does not match its RTL source!"
