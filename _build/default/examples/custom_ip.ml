(* Bringing your own IP to the framework, end to end, using only the
   public API:

     1. model an RTL IP on the simulation kernel (here: an 8x8-bit
        shift-add multiplier, 2 bits per cycle, latency 4);
     2. write its RTL properties in the property language;
     3. verify them with the RTL checker;
     4. abstract them with Methodology III.1;
     5. model the approximately-timed TLM version (one write + one
        read) and verify the abstracted properties with the wrapper;
     6. break the TLM model's timing and watch the checkers object.

   Run with: dune exec examples/custom_ip.exe *)

open Tabv_psl
open Tabv_sim
open Tabv_checker

let clock_period = 10
let latency = 4  (* load + 4 shift-add steps are folded into 4 cycles *)

(* ------------------------------------------------------------------ *)
(* 1. The RTL model: start/a/b in, done/product out.                   *)

module Mul8_rtl = struct
  type t = {
    start : bool Signal.t;
    a : int Signal.t;
    b : int Signal.t;
    done_ : bool Signal.t;
    product : int Signal.t;
    mutable busy : bool;
    mutable step : int;
    mutable acc : int;
    mutable mcand : int;
    mutable mplier : int;
  }

  let create kernel clock =
    let t =
      {
        start = Signal.create kernel ~name:"start" false;
        a = Signal.create kernel ~name:"a" 0;
        b = Signal.create kernel ~name:"b" 0;
        done_ = Signal.create kernel ~name:"done" false;
        product = Signal.create kernel ~name:"product" 0;
        busy = false;
        step = 0;
        acc = 0;
        mcand = 0;
        mplier = 0;
      }
    in
    (* Two shift-add steps per cycle: 8 bits in 4 cycles.  The first
       cycle both captures the operands and performs a step, so [done]
       is visible exactly [latency] evaluation points after [start]. *)
    let advance () =
      for _ = 1 to 2 do
        if t.mplier land 1 = 1 then t.acc <- t.acc + t.mcand;
        t.mcand <- t.mcand lsl 1;
        t.mplier <- t.mplier lsr 1
      done;
      t.step <- t.step + 1;
      if t.step = latency then begin
        Signal.write t.product t.acc;
        Signal.write t.done_ true;
        t.busy <- false
      end
    in
    let on_posedge () =
      Signal.write t.done_ false;
      if t.busy then advance ()
      else if Signal.read t.start then begin
        t.busy <- true;
        t.step <- 0;
        t.acc <- 0;
        t.mcand <- Signal.read t.a;
        t.mplier <- Signal.read t.b;
        advance ()
      end
    in
    Process.method_process kernel ~name:"mul8" ~initialize:false
      ~sensitivity:[ Clock.posedge clock ] on_posedge;
    t

  let lookup t name =
    match name with
    | "start" -> Some (Expr.VBool (Signal.read t.start))
    | "a" -> Some (Expr.VInt (Signal.read t.a))
    | "b" -> Some (Expr.VInt (Signal.read t.b))
    | "done" -> Some (Expr.VBool (Signal.read t.done_))
    | "product" -> Some (Expr.VInt (Signal.read t.product))
    | _ -> None
end

(* ------------------------------------------------------------------ *)
(* 2. The RTL properties.  ["done"] is a keyword-free identifier in
   the property language, so we can use it directly. *)

let rtl_properties =
  List.map
    (fun (name, source) -> Parser.property_exn ~name source)
    [ ("m1", "always (!start || next[4](done)) @clk_pos");
      ("m2", "always (!done || next(!done)) @clk_pos");
      ("m3", "always (!done || (product >= 0 && product <= 65025)) @clk_pos");
      ("m4", "always (!(start && a = 0) || next[4](product = 0)) @clk_pos");
      ("m5", "always (!start || next(!done until done)) @clk_pos") ]

(* ------------------------------------------------------------------ *)
(* 3. RTL verification. *)

let workload =
  let state = Random.State.make [| 2718 |] in
  List.init 60 (fun _ ->
    let zero = Random.State.float state 1.0 < 0.2 in
    ((if zero then 0 else Random.State.int state 256), Random.State.int state 256))

let run_rtl ~properties =
  let kernel = Kernel.create () in
  let clock = Clock.create kernel ~name:"clk" ~period:clock_period () in
  let model = Mul8_rtl.create kernel clock in
  let checkers =
    List.map
      (fun p -> Rtl_checker.attach kernel clock p ~lookup:(Mul8_rtl.lookup model))
      properties
  in
  let results = ref [] in
  Process.method_process kernel ~name:"collect" ~initialize:false
    ~sensitivity:[ Clock.posedge clock ]
    (fun () ->
      if Signal.read model.Mul8_rtl.done_ then
        results := Signal.read model.Mul8_rtl.product :: !results);
  Process.spawn kernel ~name:"driver" (fun () ->
    let negedge = Clock.negedge clock in
    Process.wait_event negedge;
    List.iter
      (fun (a, b) ->
        Signal.write model.Mul8_rtl.start true;
        Signal.write model.Mul8_rtl.a a;
        Signal.write model.Mul8_rtl.b b;
        Process.wait_event negedge;
        Signal.write model.Mul8_rtl.start false;
        for _ = 1 to latency + 2 do
          Process.wait_event negedge
        done)
      workload;
    for _ = 1 to 3 do
      Process.wait_event negedge
    done;
    Kernel.stop kernel);
  ignore (Kernel.run kernel);
  (List.rev !results, checkers)

(* ------------------------------------------------------------------ *)
(* 5. The TLM-AT model: one write, one blocking read per operation.   *)

type Tlm.ext += Mul_write of int * int | Mul_idle | Mul_read of int ref * bool ref

let run_tlm ~model_latency_ns ~properties =
  let kernel = Kernel.create () in
  (* Observable mirror. *)
  let start_obs = ref false and a_obs = ref 0 and b_obs = ref 0 in
  let done_obs = ref false and product_obs = ref 0 in
  let lookup = function
    | "start" -> Some (Expr.VBool !start_obs)
    | "a" -> Some (Expr.VInt !a_obs)
    | "b" -> Some (Expr.VInt !b_obs)
    | "done" -> Some (Expr.VBool !done_obs)
    | "product" -> Some (Expr.VInt !product_obs)
    | _ -> None
  in
  let ready_time = ref 0 and result = ref 0 in
  let transport payload =
    match payload.Tlm.extension with
    | Some (Mul_write (a, b)) ->
      result := a * b;
      ready_time := Kernel.now kernel + model_latency_ns;
      start_obs := true;
      a_obs := a;
      b_obs := b;
      done_obs := false
    | Some Mul_idle -> start_obs := false
    | Some (Mul_read (product, valid)) ->
      let now = Kernel.now kernel in
      if now < !ready_time then Process.wait_ns kernel (!ready_time - now);
      product := !result;
      valid := true;
      start_obs := false;
      done_obs := true;
      product_obs := !result
    | Some _ | None -> payload.Tlm.response_ok <- false
  in
  let target = Tlm.Target.create kernel ~name:"mul8_at" transport in
  let initiator = Tlm.Initiator.create kernel ~name:"mul8_init" in
  Tlm.Initiator.bind initiator target;
  let checkers =
    List.map (fun p -> Wrapper.attach kernel initiator p ~lookup) properties
  in
  let results = ref [] in
  Process.spawn kernel ~name:"driver" (fun () ->
    Process.wait_ns kernel clock_period;
    let transport extension =
      Tlm.Initiator.b_transport initiator (Tlm.make_payload ~extension Tlm.Write)
    in
    List.iter
      (fun (a, b) ->
        transport (Mul_write (a, b));
        Process.wait_ns kernel clock_period;
        transport Mul_idle;
        let product = ref 0 and valid = ref false in
        transport (Mul_read (product, valid));
        if !valid then results := !product :: !results;
        (* done falls one period later: emit the instant. *)
        Process.wait_ns kernel clock_period;
        done_obs := false;
        transport Mul_idle;
        Process.wait_ns kernel (2 * clock_period))
      workload;
    Process.wait_ns kernel clock_period;
    Kernel.stop kernel);
  ignore (Kernel.run kernel);
  (List.rev !results, checkers)

(* ------------------------------------------------------------------ *)

let print_monitor monitor =
  let failures = Monitor.failures monitor in
  Printf.printf "  %-4s %s (%d activations, %d failures)\n"
    (Monitor.property monitor).Property.name
    (if failures = [] then "pass" else "FAIL")
    (Monitor.activations monitor)
    (List.length failures)

let () =
  let expected = List.map (fun (a, b) -> a * b) workload in

  print_endline "=== Custom IP: 8x8 shift-add multiplier, latency 4 ===";
  print_endline "\nStep 1-3: RTL model + RTL ABV";
  let rtl_results, rtl_checkers = run_rtl ~properties:rtl_properties in
  Printf.printf "  functional: %s\n"
    (if rtl_results = expected then "all products correct" else "WRONG RESULTS");
  List.iter (fun c -> print_monitor (Rtl_checker.monitor c)) rtl_checkers;

  print_endline "\nStep 4: abstraction (clock 10 ns, no signals removed)";
  let reports =
    Tabv_core.Methodology.abstract_all ~clock_period
      ~rename:(fun n -> "t" ^ n) rtl_properties
  in
  Format.printf "%a@." Tabv_core.Methodology.pp_summary reports;
  let tlm_properties =
    List.filter
      (fun q ->
        not (Tabv_core.Methodology.needs_dense_trace q.Property.formula))
      (Tabv_core.Methodology.surviving reports)
  in
  List.iter (fun q -> Format.printf "  %a@." Property.pp q) tlm_properties;

  print_endline "\nStep 5: TLM-AT model + abstracted checkers";
  let tlm_results, tlm_checkers =
    run_tlm ~model_latency_ns:(latency * clock_period) ~properties:tlm_properties
  in
  Printf.printf "  functional: %s\n"
    (if tlm_results = expected then "all products correct" else "WRONG RESULTS");
  List.iter (fun c -> print_monitor (Wrapper.monitor c)) tlm_checkers;

  print_endline "\nStep 6: a wrong abstraction (latency 30 ns instead of 40)";
  let _, bad_checkers = run_tlm ~model_latency_ns:30 ~properties:tlm_properties in
  List.iter (fun c -> print_monitor (Wrapper.monitor c)) bad_checkers
