(* Fault injection: the reused checkers catch both RTL design bugs and
   wrong TLM abstractions.

   Theorem III.2 guarantees that an abstracted property that held at
   RTL can only fail at TLM when the TLM model is not timing
   equivalent to the RTL implementation — so a TLM failure is a
   genuine abstraction bug.  This example demonstrates both directions.

   Run with: dune exec examples/fault_injection.exe *)

open Tabv_duv

let banner title = Printf.printf "\n=== %s ===\n" title

let report (result : Testbench.run_result) =
  List.iter
    (fun stat ->
      if stat.Testbench.failures <> [] then begin
        Printf.printf "  %s: %d failure(s), first:\n" stat.Testbench.property_name
          (List.length stat.Testbench.failures);
        match stat.Testbench.failures with
        | f :: _ -> Format.printf "    %a@." Tabv_checker.Monitor.pp_failure f
        | [] -> ()
      end)
    result.Testbench.checker_stats;
  if Testbench.total_failures result = 0 then print_endline "  no failures"

let () =
  let ops = Workload.des56 ~seed:99 ~count:50 ~zero_fraction:0.4 () in

  banner "Healthy RTL model: all 9 properties pass";
  report (Testbench.run_des56_rtl ~properties:Des56_props.all ops);

  banner "RTL bug: result delivered one cycle late";
  print_endline "  (caught by the next[n] latency properties; the until-based p2";
  print_endline "   tolerates it — until does not count time, Sec. III-A)";
  report
    (Testbench.run_des56_rtl ~fault:Des56_rtl.Rdy_one_cycle_late
       ~properties:Des56_props.all ops);

  banner "RTL bug: rdy_next_cycle stuck low";
  report
    (Testbench.run_des56_rtl ~fault:Des56_rtl.Rdy_next_cycle_stuck_low
       ~properties:Des56_props.all ops);

  banner "RTL bug: datapath zeroes the result";
  report
    (Testbench.run_des56_rtl ~fault:Des56_rtl.Result_zeroed
       ~properties:Des56_props.all ops);

  banner "Correct TLM-AT abstraction: abstracted properties pass";
  report (Testbench.run_des56_tlm_at ~properties:(Des56_props.tlm_reviewed ()) ops);

  banner "Wrong TLM-AT abstraction: model completes in 160 ns instead of 170";
  print_endline "  (Theorem III.2: the failure proves the TLM model is not timing";
  print_endline "   equivalent to its RTL source)";
  report
    (Testbench.run_des56_tlm_at ~model_latency_ns:160
       ~properties:(Des56_props.tlm_reviewed ()) ops);

  banner "Wrong TLM-AT abstraction: model completes in 180 ns";
  report
    (Testbench.run_des56_tlm_at ~model_latency_ns:180
       ~properties:(Des56_props.tlm_reviewed ()) ops)
