(* The complete bottom-up reuse flow of the paper on the DES56 IP:

     1. verify the 9 RTL properties on the RTL model;
     2. reuse them unabstracted on the cycle-accurate TLM model
        (possible because one transaction per cycle preserves the
        evaluation points);
     3. abstract them with Methodology III.1 and review the outcome;
     4. verify the reviewed TLM property set on the TLM-AT model.

   Run with: dune exec examples/des56_flow.exe *)

open Tabv_duv

let banner title = Printf.printf "\n=== %s ===\n" title

let show (result : Testbench.run_result) =
  List.iter
    (fun stat -> Format.printf "  %a@." Testbench.pp_checker_stat stat)
    result.Testbench.checker_stats;
  let failures = Testbench.total_failures result in
  Printf.printf "  -> %s\n"
    (if failures = 0 then "all checkers passed" else Printf.sprintf "%d FAILURES" failures)

let () =
  let ops = Workload.des56 ~seed:7 ~count:200 () in

  banner "Step 1: RTL ABV (9 properties at the clock edges)";
  show (Testbench.run_des56_rtl ~properties:Des56_props.all ops);

  banner "Step 2: unabstracted reuse on TLM-CA (one transaction per cycle)";
  show (Testbench.run_des56_tlm_ca ~properties:Des56_props.all ops);

  banner "Step 3: automatic abstraction (Methodology III.1)";
  let reports = Des56_props.abstraction_reports () in
  Format.printf "%a@." Tabv_core.Methodology.pp_summary reports;
  print_endline "\n  review-flagged abstractions (Sec. III-B):";
  List.iter
    (fun r ->
      if r.Tabv_core.Methodology.requires_review then
        match r.Tabv_core.Methodology.output with
        | Some q -> Format.printf "    %a@." Tabv_psl.Property.pp q
        | None ->
          Printf.printf "    %s: deleted (protocol-only property)\n"
            r.Tabv_core.Methodology.input.Tabv_psl.Property.name)
    reports;

  banner "Step 4: TLM-AT ABV with the post-review property set";
  show (Testbench.run_des56_tlm_at ~properties:(Des56_props.tlm_reviewed ()) ops);

  banner "Why abstraction is needed: raw RTL checkers on TLM-AT misfire";
  let raw =
    List.map
      (fun p ->
        Tabv_psl.Property.make
          ~name:(p.Tabv_psl.Property.name ^ "_raw")
          ~context:(Tabv_psl.Context.Transaction Tabv_psl.Context.Base_trans)
          p.Tabv_psl.Property.formula)
      [ Des56_props.p1; Des56_props.p3 ]
  in
  show (Testbench.run_des56_tlm_at ~properties:raw ops)
