(* The reuse flow on the pipelined ColorConv IP, showcasing the signal
   abstraction rules of Fig. 4: the seven stage-valid flags v1..v7
   disappear in the TLM-AT model, deleting the pipeline-chaining
   properties entirely and rewriting the others.

   Run with: dune exec examples/colorconv_flow.exe *)

open Tabv_duv

let banner title = Printf.printf "\n=== %s ===\n" title

let show (result : Testbench.run_result) =
  List.iter
    (fun stat -> Format.printf "  %a@." Testbench.pp_checker_stat stat)
    result.Testbench.checker_stats;
  Printf.printf "  -> %s\n"
    (if Testbench.total_failures result = 0 then "all checkers passed"
     else Printf.sprintf "%d FAILURES" (Testbench.total_failures result))

let () =
  let bursts = Workload.colorconv ~seed:7 ~count:500 () in

  banner "Step 1: RTL ABV (12 properties: latency, pipeline chaining, ranges)";
  show (Testbench.run_colorconv_rtl ~properties:Colorconv_props.all bursts);

  banner "Step 2: unabstracted reuse on TLM-CA";
  show (Testbench.run_colorconv_tlm_ca ~properties:Colorconv_props.all bursts);

  banner "Step 3: abstraction — v1..v7 are removed by the AT model";
  let reports = Colorconv_props.abstraction_reports () in
  Format.printf "%a@." Tabv_core.Methodology.pp_summary reports;
  let deleted =
    List.filter (fun r -> r.Tabv_core.Methodology.output = None) reports
  in
  Printf.printf
    "\n  %d pipeline-chaining properties were deleted outright: their whole\n\
    \  semantics lived in the abstracted handshake (Fig. 4, Sec. III-B).\n"
    (List.length deleted);

  banner "Step 4: TLM-AT ABV with the post-review set";
  show (Testbench.run_colorconv_tlm_at ~properties:(Colorconv_props.tlm_reviewed ()) bursts);

  banner "Detailed report for c12 (black-pixel luma, timed across 8 stages)";
  List.iter
    (fun r ->
      if r.Tabv_core.Methodology.input.Tabv_psl.Property.name = "c12" then
        Format.printf "%a@." Tabv_core.Methodology.pp_report r)
    reports
