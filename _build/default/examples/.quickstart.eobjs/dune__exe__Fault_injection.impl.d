examples/fault_injection.ml: Des56_props Des56_rtl Format List Printf Tabv_checker Tabv_duv Testbench Workload
