examples/colorconv_flow.mli:
