examples/quickstart.mli:
