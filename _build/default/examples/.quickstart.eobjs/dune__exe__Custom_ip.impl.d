examples/custom_ip.ml: Clock Expr Format Kernel List Monitor Parser Printf Process Property Random Rtl_checker Signal Tabv_checker Tabv_core Tabv_psl Tabv_sim Tlm Wrapper
