examples/offline_replay.ml: Des56_props Expr Filename Format List Printf Sys Tabv_checker Tabv_duv Tabv_psl Tabv_sim Testbench Trace Trace_dump Vcd_reader Workload
