examples/quickstart.ml: Format List Parser Printf Property Tabv_core Tabv_duv Tabv_psl Testbench Workload
