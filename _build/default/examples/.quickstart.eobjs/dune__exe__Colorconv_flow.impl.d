examples/colorconv_flow.ml: Colorconv_props Format List Printf Tabv_core Tabv_duv Tabv_psl Testbench Workload
