examples/offline_replay.mli:
