examples/des56_flow.mli:
