examples/des56_flow.ml: Des56_props Format List Printf Tabv_core Tabv_duv Tabv_psl Testbench Workload
