(** Minimal VCD (Value Change Dump) writer for waveform inspection.

    Register variables before the first {!change}; the header is
    emitted lazily on the first value change.  Times must be
    non-decreasing. *)

type t

type var

val create : out_channel -> timescale:string -> t

(** Register a variable. [width] in bits (1 for booleans). *)
val add_var : t -> name:string -> width:int -> var

(** Record a scalar (1-bit) change. *)
val change_bool : t -> time:int -> var -> bool -> unit

(** Record a vector change (binary format). *)
val change_int64 : t -> time:int -> var -> int64 -> unit

(** Flush the trailing timestamp and the channel. *)
val close : t -> unit
