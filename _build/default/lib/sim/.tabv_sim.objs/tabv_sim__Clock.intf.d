lib/sim/clock.mli: Event Kernel Signal
