lib/sim/trace_rec.ml: List Printf Tabv_psl
