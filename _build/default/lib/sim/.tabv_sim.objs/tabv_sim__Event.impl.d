lib/sim/event.ml: Kernel List
