lib/sim/event.mli: Kernel
