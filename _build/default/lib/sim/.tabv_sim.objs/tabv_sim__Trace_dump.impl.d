lib/sim/trace_dump.ml: Expr Fun Int64 List Tabv_psl Trace Vcd
