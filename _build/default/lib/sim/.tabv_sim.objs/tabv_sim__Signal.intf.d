lib/sim/signal.mli: Event Kernel
