lib/sim/vcd.mli:
