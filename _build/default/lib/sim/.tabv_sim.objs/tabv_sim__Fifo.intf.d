lib/sim/fifo.mli: Kernel
