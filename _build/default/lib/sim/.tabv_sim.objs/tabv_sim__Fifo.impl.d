lib/sim/fifo.ml: Event Kernel Process Queue
