lib/sim/process.ml: Effect Event Kernel List
