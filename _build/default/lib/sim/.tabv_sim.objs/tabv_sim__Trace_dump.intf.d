lib/sim/trace_dump.mli: Tabv_psl
