lib/sim/tlm.mli: Kernel
