lib/sim/clock.ml: Event Kernel Signal
