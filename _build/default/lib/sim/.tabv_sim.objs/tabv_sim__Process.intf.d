lib/sim/process.mli: Event Kernel
