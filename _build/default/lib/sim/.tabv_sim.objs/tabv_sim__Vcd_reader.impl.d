lib/sim/vcd_reader.ml: Fun Hashtbl List Printf String Tabv_psl
