lib/sim/trace_rec.mli: Tabv_psl
