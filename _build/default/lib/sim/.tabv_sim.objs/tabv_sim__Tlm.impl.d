lib/sim/tlm.ml: Kernel List Printf
