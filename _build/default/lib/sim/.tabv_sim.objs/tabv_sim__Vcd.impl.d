lib/sim/vcd.ml: Bytes Char Int64 List Printf String
