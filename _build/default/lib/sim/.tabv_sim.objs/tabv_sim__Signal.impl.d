lib/sim/signal.ml: Event Kernel
