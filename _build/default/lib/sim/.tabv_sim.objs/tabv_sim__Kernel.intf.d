lib/sim/kernel.mli:
