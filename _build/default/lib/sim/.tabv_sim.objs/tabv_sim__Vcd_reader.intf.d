lib/sim/vcd_reader.mli: Tabv_psl
