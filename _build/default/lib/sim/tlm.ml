type command =
  | Read
  | Write

type ext = ..

type payload = {
  command : command;
  address : int;
  mutable data : int64;
  mutable response_ok : bool;
  mutable extension : ext option;
}

let make_payload ?(address = 0) ?(data = 0L) ?extension command =
  { command; address; data; response_ok = true; extension }

type transaction = {
  payload : payload;
  start_time : int;
  end_time : int;
}

module Target = struct
  type t = {
    name : string;
    transport : payload -> unit;
  }

  let create _kernel ~name transport = { name; transport }
  let name t = t.name
end

module Initiator = struct
  type t = {
    kernel : Kernel.t;
    name : string;
    mutable target : Target.t option;
    mutable observers : (transaction -> unit) list;  (* reversed *)
    mutable completed : int;
  }

  let create kernel ~name =
    { kernel; name; target = None; observers = []; completed = 0 }

  let name t = t.name

  let bind t target =
    match t.target with
    | Some _ -> invalid_arg (Printf.sprintf "Tlm.Initiator.bind: %s already bound" t.name)
    | None -> t.target <- Some target

  let b_transport t payload =
    match t.target with
    | None -> invalid_arg (Printf.sprintf "Tlm.Initiator.b_transport: %s unbound" t.name)
    | Some target ->
      let start_time = Kernel.now t.kernel in
      target.Target.transport payload;
      let end_time = Kernel.now t.kernel in
      t.completed <- t.completed + 1;
      let transaction = { payload; start_time; end_time } in
      List.iter (fun observe -> observe transaction) (List.rev t.observers)

  let on_transaction t observe = t.observers <- observe :: t.observers
  let transaction_count t = t.completed
end
