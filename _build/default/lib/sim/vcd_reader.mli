(** VCD (Value Change Dump) reader: offline assertion checking on
    recorded waveforms.

    Parses the common VCD subset (scalar and binary-vector changes;
    [$var] declarations; [x]/[z] bits read as 0) and folds the value
    changes into a {!Tabv_psl.Trace}: one entry per timestamp carrying
    the {e post-change} value of every declared signal
    (sample-and-hold).  The result can be fed directly to
    {!Tabv_psl.Semantics} or replayed through checker monitors. *)

exception Parse_error of {
  line : int;
  message : string;
}

type t = {
  timescale : string option;
  signals : (string * int) list;  (** name, width (declaration order) *)
  trace : Tabv_psl.Trace.t;
}

(** Parse VCD text.
    @raise Parse_error on malformed input. *)
val parse : string -> t

(** Load and parse a file. *)
val load : string -> t
