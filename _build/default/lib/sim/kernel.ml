(* Array-backed binary min-heap on (time, seq): earliest time first,
   FIFO among equal times. *)
module Heap = struct
  type entry = {
    time : int;
    seq : int;
    action : unit -> unit;
  }

  type t = {
    mutable data : entry array;
    mutable size : int;
  }

  let dummy = { time = 0; seq = 0; action = ignore }
  let create () = { data = Array.make 64 dummy; size = 0 }

  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h entry =
    if h.size = Array.length h.data then begin
      let grown = Array.make (2 * h.size) dummy in
      Array.blit h.data 0 grown 0 h.size;
      h.data <- grown
    end;
    let rec up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if less h.data.(i) h.data.(parent) then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(parent);
          h.data.(parent) <- tmp;
          up parent
        end
      end
    in
    h.data.(h.size) <- entry;
    h.size <- h.size + 1;
    up (h.size - 1)

  let peek h = if h.size = 0 then None else Some h.data.(0)

  let pop h =
    match peek h with
    | None -> None
    | Some top ->
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy;
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest = ref i in
        if left < h.size && less h.data.(left) h.data.(!smallest) then smallest := left;
        if right < h.size && less h.data.(right) h.data.(!smallest) then smallest := right;
        if !smallest <> i then begin
          let tmp = h.data.(i) in
          h.data.(i) <- h.data.(!smallest);
          h.data.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0;
      Some top
end

type t = {
  mutable now : int;
  mutable delta : int;
  timed : Heap.t;
  runnable : (unit -> unit) Queue.t;
  next_delta : (unit -> unit) Queue.t;
  mutable updates : (unit -> unit) list;
  mutable seq : int;
  mutable stopping : bool;
  mutable running : bool;
  mutable activations : int;
  mutable deltas : int;
}

let create () =
  {
    now = 0;
    delta = 0;
    timed = Heap.create ();
    runnable = Queue.create ();
    next_delta = Queue.create ();
    updates = [];
    seq = 0;
    stopping = false;
    running = false;
    activations = 0;
    deltas = 0;
  }

let now t = t.now
let delta t = t.delta

let schedule_at t ~time action =
  if time < t.now then
    invalid_arg
      (Printf.sprintf "Kernel.schedule_at: time %d is in the past (now %d)" time t.now);
  t.seq <- t.seq + 1;
  Heap.push t.timed { Heap.time; seq = t.seq; action }

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Kernel.schedule_after: negative delay";
  schedule_at t ~time:(t.now + delay) action

let schedule_now t action = Queue.add action t.runnable
let schedule_next_delta t action = Queue.add action t.next_delta
let request_update t action = t.updates <- action :: t.updates
let stop t = t.stopping <- true

let run ?until t =
  if t.running then invalid_arg "Kernel.run: already running";
  t.running <- true;
  t.stopping <- false;
  let horizon_ok time =
    match until with
    | None -> true
    | Some h -> time <= h
  in
  let rec loop () =
    if t.stopping then ()
    else begin
      (* Evaluation phase. *)
      while not (Queue.is_empty t.runnable) && not t.stopping do
        let action = Queue.pop t.runnable in
        t.activations <- t.activations + 1;
        action ()
      done;
      if t.stopping then ()
      else begin
        (* Update phase (FIFO order of requests). *)
        let updates = List.rev t.updates in
        t.updates <- [];
        List.iter (fun u -> u ()) updates;
        (* Delta notification phase. *)
        if not (Queue.is_empty t.next_delta) then begin
          Queue.transfer t.next_delta t.runnable;
          t.delta <- t.delta + 1;
          t.deltas <- t.deltas + 1;
          loop ()
        end
        else
          (* Advance time to the next timed action, if any. *)
          match Heap.peek t.timed with
          | Some { Heap.time; _ } when horizon_ok time ->
            t.now <- time;
            t.delta <- 0;
            let rec drain () =
              match Heap.peek t.timed with
              | Some entry when entry.Heap.time = time ->
                ignore (Heap.pop t.timed);
                Queue.add entry.Heap.action t.runnable;
                drain ()
              | Some _ | None -> ()
            in
            drain ();
            loop ()
          | Some _ | None -> ()
      end
    end
  in
  loop ();
  t.running <- false;
  t.now

let activation_count t = t.activations
let delta_count t = t.deltas
