(** Simulation events.

    Events carry two kinds of subscribers:
    {ul
    {- {e static} subscribers (method-process sensitivity): invoked on
       every notification;}
    {- {e dynamic} subscribers (thread waits): invoked once and then
       removed.}}

    Notifications use delta semantics: subscribers run in the next
    delta cycle of the current instant, never within the notifying
    phase. *)

type t

val create : Kernel.t -> string -> t
val name : t -> string
val kernel : t -> Kernel.t

(** Delta notification: subscribers run in the next delta cycle. *)
val notify : t -> unit

(** Timed notification after [delay >= 0] ns ([delay = 0] is a delta
    notification at the current instant). *)
val notify_after : t -> delay:int -> unit

(** Subscribe statically (persistent). *)
val on_event : t -> (unit -> unit) -> unit

(** Subscribe for a single notification. *)
val once : t -> (unit -> unit) -> unit

(** Number of notifications delivered so far. *)
val notification_count : t -> int
